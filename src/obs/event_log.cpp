#include "obs/event_log.hpp"

#include <cstdio>
#include <stdexcept>

namespace cnd::obs {

namespace {

void append_double(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

FileSink::FileSink(const std::string& path) : file_(std::fopen(path.c_str(), "w")) {
  if (!file_) throw std::runtime_error("FileSink: cannot open '" + path + "'");
}

FileSink::~FileSink() {
  if (file_) std::fclose(file_);
}

void FileSink::write(std::string_view line) {
  runtime::MutexLock lk(mutex_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
}

void FileSink::flush() {
  runtime::MutexLock lk(mutex_);
  std::fflush(file_);
}

void MemorySink::write(std::string_view line) {
  runtime::MutexLock lk(mutex_);
  lines_.emplace_back(line);
}

std::vector<std::string> MemorySink::lines() const {
  runtime::MutexLock lk(mutex_);
  return lines_;
}

void EventLog::set_sink(std::shared_ptr<EventSink> sink) {
  runtime::MutexLock lk(mutex_);
  sink_ = std::move(sink);
  enabled_.store(sink_ != nullptr, std::memory_order_relaxed);
}

void EventLog::emit(std::string_view event, std::initializer_list<Field> fields) {
  if (!enabled()) return;

  std::string line = "{\"event\":\"" + json_escape(event) +
                     "\",\"seq\":" + std::to_string(seq_.fetch_add(1)) ;
  for (const Field& f : fields) {
    line += ",\"";
    line += json_escape(f.key);
    line += "\":";
    switch (f.type) {
      case Field::Type::kDouble: append_double(&line, f.d); break;
      case Field::Type::kInt: line += std::to_string(f.i); break;
      case Field::Type::kUint: line += std::to_string(f.u); break;
      case Field::Type::kBool: line += f.b ? "true" : "false"; break;
      case Field::Type::kString: line += '"' + json_escape(f.s) + '"'; break;
    }
  }
  line += '}';
  emit_raw(line);
}

void EventLog::emit_raw(std::string_view json_line) {
  runtime::MutexLock lk(mutex_);
  if (sink_) sink_->write(json_line);
}

void EventLog::flush() {
  runtime::MutexLock lk(mutex_);
  if (sink_) sink_->flush();
}

EventLog& events() {
  static EventLog* log = new EventLog();  // never destroyed: instrumented
  return *log;  // code may emit during static teardown (atexit snapshot).
}

}  // namespace cnd::obs
