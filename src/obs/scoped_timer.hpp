// RAII phase timer recording into a metrics histogram.
//
// Construction checks obs::enabled() once: when observability is off the
// timer never reads the clock or touches the registry, so instrumenting a
// hot path costs a single relaxed atomic load. When on, the destructor (or
// an explicit stop_ms()) records the elapsed milliseconds into the named
// histogram of the given registry.
#pragma once

#include <chrono>
#include <string_view>

#include "obs/metrics.hpp"

namespace cnd::obs {

class ScopedTimer {
 public:
  /// Times into `registry.histogram(name)` (default ms buckets).
  ScopedTimer(MetricsRegistry& registry, std::string_view name) {
    if (enabled()) {
      hist_ = &registry.histogram(name);
      start_ = clock::now();
    }
  }

  /// Times into an already-resolved histogram (for per-call hot paths that
  /// cache the handle).
  explicit ScopedTimer(Histogram& hist) {
    if (enabled()) {
      hist_ = &hist;
      start_ = clock::now();
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Record now instead of at scope exit. Returns the elapsed milliseconds
  /// (0.0 when observability is off).
  double stop_ms() {
    if (!hist_) return 0.0;
    const double ms =
        std::chrono::duration<double, std::milli>(clock::now() - start_).count();  // cnd-det-ok(write-only telemetry — durations feed obs histograms, never results)
    hist_->record(ms);
    hist_ = nullptr;
    return ms;
  }

  ~ScopedTimer() {
    if (hist_) stop_ms();
  }

 private:
  using clock = std::chrono::steady_clock;
  Histogram* hist_ = nullptr;
  clock::time_point start_{};
};

}  // namespace cnd::obs
