// Observability substrate: process-wide metrics registry.
//
// Counters, gauges, and fixed-bucket histograms, all safe to update from any
// thread (including runtime::parallel_for workers) with exact totals under
// contention. Instrumented code holds references obtained from a
// MetricsRegistry; the handles live as long as the registry, so hot paths
// update lock-free atomics and never repeat the name lookup.
//
// Interaction with the determinism contract (docs/PARALLELISM.md): metrics
// are a write-only side channel. Nothing in the library reads a metric back
// into a computation, so enabling or disabling observability can never
// change a result CSV. Wall-clock and thread-attributed values live here and
// in the event log (event_log.hpp) only.
//
// Timers (scoped_timer.hpp) and the per-chunk runtime instrumentation are
// additionally gated on the global `enabled()` flag so the hot paths do not
// even read a clock when observability is off; plain counter/gauge updates
// are single relaxed atomics and stay on unconditionally.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/annotated_mutex.hpp"

namespace cnd::obs {

/// Global observability switch. Off by default: ScopedTimer and the thread
/// pool's busy-time instrumentation become no-ops (no clock reads). Flipped
/// on by `--metrics-out` in the bench harness or explicitly by embedders.
bool enabled();
void set_enabled(bool on);

namespace detail {
/// CAS add for pre-C++20-fetch_add portability on atomic<double>.
inline void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}
inline void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Monotonic event count. Exact under concurrent add() from any number of
/// threads.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written scalar with add/max combinators (for sizes, thresholds,
/// high-water marks, accumulated busy time).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double v) { detail::atomic_add(v_, v); }
  void record_max(double v) { detail::atomic_max(v_, v); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram. A sample lands in the first bucket whose upper
/// bound is >= the value (bounds are inclusive upper edges); values above
/// the last bound land in the overflow bucket. Bucket layout is fixed at
/// construction so record() is a binary search plus one atomic increment.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> bounds);

  void record(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Buckets = bounds().size() + 1; the last index is the overflow bucket.
  std::size_t n_buckets() const { return counts_.size(); }
  std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  const std::vector<double>& bounds() const { return bounds_; }
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  ///< bounds_.size() + 1.
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default histogram edges for millisecond timings: 0.1 ms .. 10 s.
const std::vector<double>& default_time_buckets_ms();

/// Named metric store. Lookup is mutex-protected; the returned references
/// are stable for the registry's lifetime (entries are never removed), so
/// callers cache them across calls. All three families share one namespace
/// convention ("layer.metric_unit", e.g. "cnd.cfe_fit_ms") but live in
/// separate maps, so a counter and a gauge may not share a name within
/// their family.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Registers with `bounds` on first use; later calls with the same name
  /// return the existing histogram and ignore `bounds`.
  Histogram& histogram(std::string_view name,
                       const std::vector<double>& bounds = default_time_buckets_ms());

  /// Zero every registered metric (registrations survive). For test
  /// isolation and per-run bench records.
  void reset();

  std::vector<std::string> counter_names() const;
  std::vector<std::string> gauge_names() const;
  std::vector<std::string> histogram_names() const;

  /// Full snapshot as one JSON object:
  ///   {"counters":{...},"gauges":{...},"histograms":{...}}
  /// Names are emitted in sorted order. See docs/OBSERVABILITY.md for the
  /// histogram encoding.
  std::string to_json() const;
  /// Same content without the outer braces, for embedding into a larger
  /// JSON object (the bench harness's metrics_snapshot event).
  std::string to_json_fields() const;

 private:
  /// Guards the name->metric maps only; the metrics themselves are lock-free
  /// atomics, so cached handles never touch this mutex again.
  mutable runtime::AnnotatedMutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_ CND_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_ CND_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_ CND_GUARDED_BY(mutex_);
};

/// The process-global registry every instrumented layer writes to.
MetricsRegistry& metrics();

}  // namespace cnd::obs
