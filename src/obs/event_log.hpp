// Structured JSONL event sink.
//
// Instrumented layers emit discrete events (an adaptation round, a drift
// signal, a run summary) as one JSON object per line through the process
// EventLog. The default backend is null: emit() returns after one relaxed
// atomic load, builds nothing, and allocates nothing, so event call sites
// are free when observability is off. Attaching a FileSink (bench
// `--metrics-out`) or MemorySink (tests) turns the stream on.
//
// Line schema (docs/OBSERVABILITY.md):
//   {"event":"<name>","seq":<n>,<field>...}
// "event" and "seq" are reserved keys; seq is a process-wide monotonic
// sequence number so interleaved writers can be ordered. Field values are
// numbers, booleans, or JSON-escaped strings. Telemetry may contain
// wall-clock durations — the determinism contract only constrains result
// CSVs, never this stream.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/annotated_mutex.hpp"

namespace cnd::obs {

/// One key/value pair of an event. Holds views only — fields are meant to
/// be built inline in the emit() call from live locals; nothing is copied
/// unless a sink is attached.
struct Field {
  enum class Type { kDouble, kInt, kUint, kBool, kString };

  std::string_view key;
  Type type;
  double d = 0.0;
  std::int64_t i = 0;
  std::uint64_t u = 0;
  bool b = false;
  std::string_view s;

  Field(std::string_view k, double v) : key(k), type(Type::kDouble), d(v) {}
  Field(std::string_view k, bool v) : key(k), type(Type::kBool), b(v) {}
  Field(std::string_view k, const char* v) : key(k), type(Type::kString), s(v) {}
  Field(std::string_view k, std::string_view v) : key(k), type(Type::kString), s(v) {}
  Field(std::string_view k, int v) : key(k), type(Type::kInt), i(v) {}
  Field(std::string_view k, long v) : key(k), type(Type::kInt), i(v) {}
  Field(std::string_view k, long long v) : key(k), type(Type::kInt), i(v) {}
  Field(std::string_view k, unsigned v) : key(k), type(Type::kUint), u(v) {}
  Field(std::string_view k, unsigned long v) : key(k), type(Type::kUint), u(v) {}
  Field(std::string_view k, unsigned long long v) : key(k), type(Type::kUint), u(v) {}
};

/// Where finished JSONL lines go. write() receives one complete line
/// without the trailing newline and must be safe to call from any thread.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void write(std::string_view line) = 0;
  virtual void flush() {}
};

/// Appends lines to a file (created/truncated at construction).
class FileSink final : public EventSink {
 public:
  explicit FileSink(const std::string& path);
  ~FileSink() override;
  void write(std::string_view line) override;
  void flush() override;

 private:
  runtime::AnnotatedMutex mutex_;
  /// The handle itself is set once in the constructor and cleared in the
  /// destructor (both exempt from the analysis); the guarded part is the
  /// stream's write position, so all writes/flushes hold mutex_.
  std::FILE* file_ CND_GUARDED_BY(mutex_) = nullptr;
};

/// Collects lines in memory (tests).
class MemorySink final : public EventSink {
 public:
  void write(std::string_view line) override;
  std::vector<std::string> lines() const;

 private:
  mutable runtime::AnnotatedMutex mutex_;
  std::vector<std::string> lines_ CND_GUARDED_BY(mutex_);
};

class EventLog {
 public:
  /// True when a sink is attached; emit() is a no-op otherwise.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Attach (or detach with nullptr) the backend. Thread-safe.
  void set_sink(std::shared_ptr<EventSink> sink);

  /// Emit one event line. With no sink attached this returns immediately
  /// without formatting or allocating.
  void emit(std::string_view event, std::initializer_list<Field> fields = {});

  /// Write a pre-formatted JSON object as its own line (the caller
  /// guarantees it is a valid single-line object). Used for the bench
  /// harness's metrics_snapshot record.
  void emit_raw(std::string_view json_line);

  void flush();

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> seq_{0};
  runtime::AnnotatedMutex mutex_;  ///< guards sink_ swap vs use.
  std::shared_ptr<EventSink> sink_ CND_GUARDED_BY(mutex_);
};

/// The process-global event log every instrumented layer emits to.
EventLog& events();

/// JSON-escape a string value (quotes, backslashes, control characters).
/// Exposed for the snapshot writer and tests.
std::string json_escape(std::string_view s);

}  // namespace cnd::obs
