#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace cnd::obs {

namespace {

std::atomic<bool> g_enabled{false};

/// Shortest representation that round-trips a double through strtod.
std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: empty bucket bounds");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (!(bounds_[i - 1] < bounds_[i]))
      throw std::invalid_argument("Histogram: bucket bounds must be strictly increasing");
}

void Histogram::record(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t b = static_cast<std::size_t>(it - bounds_.begin());
  counts_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, v);
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& default_time_buckets_ms() {
  static const std::vector<double> buckets{0.1,  0.25, 0.5,  1.0,   2.5,   5.0,
                                           10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
                                           1000.0, 2500.0, 5000.0, 10000.0};
  return buckets;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  runtime::MutexLock lk(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  runtime::MutexLock lk(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const std::vector<double>& bounds) {
  runtime::MutexLock lk(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  return *it->second;
}

void MetricsRegistry::reset() {
  runtime::MutexLock lk(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::vector<std::string> MetricsRegistry::counter_names() const {
  runtime::MutexLock lk(mutex_);
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.push_back(name);
  return out;
}

std::vector<std::string> MetricsRegistry::gauge_names() const {
  runtime::MutexLock lk(mutex_);
  std::vector<std::string> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.push_back(name);
  return out;
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  runtime::MutexLock lk(mutex_);
  std::vector<std::string> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.push_back(name);
  return out;
}

std::string MetricsRegistry::to_json_fields() const {
  runtime::MutexLock lk(mutex_);
  std::string out = "\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + format_double(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":{\"count\":" + std::to_string(h->count()) +
           ",\"sum\":" + format_double(h->sum()) + ",\"bounds\":[";
    for (std::size_t i = 0; i < h->bounds().size(); ++i) {
      if (i) out += ',';
      out += format_double(h->bounds()[i]);
    }
    out += "],\"buckets\":[";
    for (std::size_t i = 0; i < h->n_buckets(); ++i) {
      if (i) out += ',';
      out += std::to_string(h->bucket_count(i));
    }
    out += "]}";
  }
  out += '}';
  return out;
}

std::string MetricsRegistry::to_json() const { return '{' + to_json_fields() + '}'; }

MetricsRegistry& metrics() {
  static MetricsRegistry* reg = new MetricsRegistry();  // never destroyed:
  return *reg;  // instrumented code may run during static teardown.
}

}  // namespace cnd::obs
