// Register-blocked GEMM/distance kernels and their caller-allocated `_into`
// entry points — the numeric substrate's hot core.
//
// Every kernel here obeys one canonical accumulation-order contract
// (docs/PARALLELISM.md, "Kernel accumulation-order contract"): each output
// element c(i, j) is accumulated over the inner dimension p in strictly
// ascending order, one fused term at a time, exactly as the naive triple
// loop would. Cache blocking and register tiling only change *which* output
// elements are in flight together, never the order of adds within one
// element — so the blocked kernels are bit-identical to the naive reference
// kernels below, at any tile size and any CND_THREADS. tests/test_kernels.cpp
// enforces this over a sweep of tile-straddling shapes.
//
// The `_into` variants write a caller-provided output Matrix (resized in
// place, reusing its allocation when the shape already matches) so
// steady-state training/scoring loops run with zero heap allocations; the
// `Workspace` below is the small reusable buffer pool those loops thread
// through.
#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

#include "tensor/matrix.hpp"

namespace cnd {

namespace kernels {

// Tile geometry, exposed so the equivalence tests can sweep shapes that
// straddle every boundary. MR x NR output elements are held in registers
// while the inner dimension streams; KC bounds the p-panel so the A/B
// working set stays L1/L2-resident between the round-trips through C.
inline constexpr std::size_t kMr = 4;
inline constexpr std::size_t kNr = 8;
inline constexpr std::size_t kKc = 256;

}  // namespace kernels

// ---- Reusable buffer pool --------------------------------------------------

/// A small pool of scratch buffers for steady-state hot loops. Slots are
/// keyed by index; `mat`/`vec` return the slot resized to the requested
/// shape, reusing the existing allocation whenever it is large enough, so a
/// loop that requests the same shapes every iteration performs zero heap
/// allocations after the first pass. Contents are unspecified on return —
/// callers overwrite. Returned references stay valid when later slots are
/// created (deque storage), so callers may hold several slots at once. Not
/// thread-safe: one Workspace per thread/loop.
class Workspace {
 public:
  Matrix& mat(std::size_t slot, std::size_t rows, std::size_t cols);
  std::vector<double>& vec(std::size_t slot, std::size_t size);

 private:
  std::deque<Matrix> mats_;
  std::deque<std::vector<double>> vecs_;
};

// ---- Blocked kernels, caller-allocated outputs -----------------------------
//
// All `_into` kernels resize `c`/`out` (allocation-free when the shape
// already matches), require the output not to alias an input, and validate
// input shapes with `require` (std::invalid_argument on mismatch).

/// c = a(m x k) * b(k x n).
void matmul_into(Matrix& c, const Matrix& a, const Matrix& b);

/// c = a(m x k) * b(n x k)^T. Avoids materializing b^T.
void matmul_bt_into(Matrix& c, const Matrix& a, const Matrix& b);

/// c = a(k x m)^T * b(k x n). Avoids materializing a^T.
void matmul_at_into(Matrix& c, const Matrix& a, const Matrix& b);

/// c += a(k x m)^T * b(k x n); c must already be m x n. The gradient
/// accumulation kernel: continues each element's canonical p-ascending
/// chain on top of the value already in c.
void matmul_at_add_into(Matrix& c, const Matrix& a, const Matrix& b);

/// Row-slice product c = a[lo:hi) * b^T for chunked distance pipelines;
/// c gets (hi - lo) x b.rows(). Runs serially (callers sit inside a
/// parallel region).
void matmul_bt_rows_into(Matrix& c, const Matrix& a, std::size_t lo,
                         std::size_t hi, const Matrix& b);

/// out = a with `v` subtracted from every row.
void sub_rowvec_into(Matrix& out, const Matrix& a, std::span<const double> v);

/// a += v broadcast over rows (the bias add).
void add_rowvec_inplace(Matrix& a, std::span<const double> v);

/// out = a ⊙ b (element-wise product).
void hadamard_into(Matrix& out, const Matrix& a, const Matrix& b);

namespace kernels {

/// out[i - lo] = ||a.row(i)||² for i in [lo, hi), accumulated p-ascending.
/// Lives in this translation unit ON PURPOSE: the fused squared distance
/// ||a||² + ||b||² − 2·a·b is exactly 0.0 for identical rows only when the
/// norm and the Gram entry are produced by the same instruction pattern
/// (same FP-contraction setting), which is guaranteed by compiling both in
/// this file — kernels.cpp may be built with wider ISA/FMA flags than the
/// rest of the tree (see src/CMakeLists.txt, CND_KERNEL_MARCH).
void row_sq_norms(const Matrix& a, std::size_t lo, std::size_t hi,
                  std::vector<double>& out);

/// One Gram element's canonical chain: Σ_p madd(a[p]·b[p]) with p strictly
/// ascending — exactly the instruction pattern of one blocked-GEMM output
/// element, exposed as a scalar so the IVF re-rank (linalg/ivf_index.cpp)
/// can promote a float32 shortlist back to the bit-identical double distance
/// the exact kernels would have produced.
double dot_canonical(std::span<const double> a, std::span<const double> b);

// ---- float32 IVF scan variants ---------------------------------------------
//
// The ONE sanctioned float32 surface in the bit-exactness layers
// (docs/ANN.md): the IVF probe loop scans contiguous per-cluster float32
// blocks for CANDIDATE SELECTION only — every distance that leaves the index
// is re-ranked in double via dot_canonical. The scan lives in this TU so a
// single ISA/contraction setting (src/CMakeLists.txt, CND_KERNEL_MARCH)
// covers it: candidate sets are then a pure function of the stored bytes,
// identical at any thread count and across sanitizer builds.

/// Cast one double row into a packed float32 row (posting-block storage).
// cnd-lint: allow(no-float) — the sanctioned float32 IVF scan surface
void cast_row_f32(std::span<const double> row, float* out);

/// out[i] = ||rows[i]||² over n packed float32 rows of width d, accumulated
/// p-ascending in float32 (matches the scan's own accumulation pattern).
// cnd-lint: allow(no-float) — the sanctioned float32 IVF scan surface
void sq_norms_f32(const float* rows, std::size_t n, std::size_t d, float* out);

/// Fused float32 scan of one query against a packed block:
/// out[j] = max(0, qn + norms[j] − 2·q·rows[j]), j in [0, n).
// cnd-lint: allow(no-float) — the sanctioned float32 IVF scan surface
void ivf_scan_f32(const float* q, float qn, const float* rows,
                  // cnd-lint: allow(no-float) — continuation of the decl above
                  const float* norms, std::size_t n, std::size_t d, float* out);

// Naive reference kernels: the canonical accumulation order written as the
// obvious triple loop, no blocking, no parallelism. The blocked kernels
// above must match these bit-for-bit (tests/test_kernels.cpp); they are the
// executable definition of the contract, not a fast path.
void matmul_ref(Matrix& c, const Matrix& a, const Matrix& b);
void matmul_bt_ref(Matrix& c, const Matrix& a, const Matrix& b);
void matmul_at_ref(Matrix& c, const Matrix& a, const Matrix& b);
void matmul_at_add_ref(Matrix& c, const Matrix& a, const Matrix& b);

}  // namespace kernels

}  // namespace cnd
