// Dense row-major matrix of double.
//
// This is the numeric workhorse for the whole repository: the NN library,
// PCA/eigen solvers, clustering, and the data generators all operate on
// cnd::Matrix. It deliberately stays small — value semantics, bounds-checked
// element access through operator(), and free functions for algebra — rather
// than growing into a full expression-template library.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace cnd {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized (or filled with `fill`).
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Construct from nested initializer list: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Contiguous view of row r.
  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Copy of row r as a vector.
  std::vector<double> row_vec(std::size_t r) const;
  /// Copy of column c as a vector.
  std::vector<double> col_vec(std::size_t c) const;

  /// Overwrite row r with `v` (v.size() must equal cols()).
  void set_row(std::size_t r, std::span<const double> v);

  /// New matrix containing the given rows, in order.
  Matrix take_rows(const std::vector<std::size_t>& idx) const;

  /// Reshape to rows x cols in place, reusing the existing allocation when
  /// it is large enough (free when the shape already matches — the steady
  /// batch case). Element values are unspecified afterwards unless the
  /// shape was unchanged; callers overwrite. This is what the `_into`
  /// kernels (tensor/kernels.hpp) call on their outputs.
  void resize(std::size_t rows, std::size_t cols);

  /// Stack `other` below this matrix (column counts must match; stacking
  /// onto an empty matrix adopts the other's width).
  void append_rows(const Matrix& other);

  // Element-wise in-place arithmetic (shapes must match).
  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);

  bool same_shape(const Matrix& o) const { return rows_ == o.rows_ && cols_ == o.cols_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// ---- Free-function algebra -------------------------------------------------

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, double s);
Matrix operator*(double s, Matrix a);

/// Matrix product a(m x k) * b(k x n) -> (m x n). Register-blocked kernel
/// (tensor/kernels.hpp); canonical p-ascending accumulation per element.
Matrix matmul(const Matrix& a, const Matrix& b);

/// a(m x k) * b^T where b is (n x k) -> (m x n). Avoids materializing b^T.
Matrix matmul_bt(const Matrix& a, const Matrix& b);

/// a^T(k x m) * b(k x n) -> (m x n). Avoids materializing a^T.
Matrix matmul_at(const Matrix& a, const Matrix& b);

Matrix transpose(const Matrix& a);

/// Element-wise (Hadamard) product.
Matrix hadamard(const Matrix& a, const Matrix& b);

/// Column means -> vector of length cols.
std::vector<double> col_mean(const Matrix& a);

/// Column standard deviations (population, ddof=0) -> length cols.
std::vector<double> col_stddev(const Matrix& a, const std::vector<double>& mean);

/// Subtract a row vector from every row (in place on a copy).
Matrix sub_rowvec(Matrix a, std::span<const double> v);

/// Sum of squares of all elements.
double frobenius_sq(const Matrix& a);

/// Squared Euclidean distance between two equal-length spans.
double sq_dist(std::span<const double> a, std::span<const double> b);

/// Dot product of two equal-length spans.
double dot(std::span<const double> a, std::span<const double> b);

/// Identity matrix n x n.
Matrix identity(std::size_t n);

/// Mean of squared element-wise difference (the MSE between two matrices).
double mse(const Matrix& a, const Matrix& b);

}  // namespace cnd
