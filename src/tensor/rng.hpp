// Seeded random number generation.
//
// All stochastic components (weight init, K-Means++, data generators,
// isolation forests, triplet sampling) draw from a cnd::Rng so that every
// experiment in the repository is reproducible from a single seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace cnd {

/// Thin, copyable wrapper around std::mt19937_64 with the distributions the
/// library needs. Copy a parent Rng (or use `split`) to give a component an
/// independent, deterministic stream.
///
/// Every distribution is implemented here with a portable, pinned algorithm
/// (53-bit uniform, Box–Muller normal, Lemire bounded integers, inverse-CDF
/// exponential, Marsaglia–Tsang gamma) on top of the raw mt19937_64 word
/// stream. The std::*_distribution adapters are deliberately NOT used: their
/// algorithms are implementation-defined, so the same seed yields different
/// streams on libstdc++ vs libc++ and every downstream table would become
/// toolchain-dependent. tests/test_rng.cpp pins the exact first draws of
/// each distribution; tools/cnd_lint.py (no-std-distribution) and
/// tools/cnd_analyze (rng-confinement) keep std distributions from creeping
/// back in anywhere else.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EED'CAFEULL) : gen_(seed) {}

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal (mean 0, stddev 1) scaled to (mean, stddev).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t randint(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// Exponential with rate lambda (> 0).
  double exponential(double lambda);

  /// Student-t-like heavy tail: normal / sqrt(chi2/df). Used by the flow
  /// generators to model bursty network features.
  double heavy_tail(double df);

  /// Sample an index according to non-negative weights (need not sum to 1).
  std::size_t categorical(const std::vector<double>& weights);

  /// In-place Fisher–Yates shuffle of an index vector.
  void shuffle(std::vector<std::size_t>& idx);

  /// Random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derive an independent child stream; deterministic in (current state, salt).
  Rng split(std::uint64_t salt);

  /// One raw 64-bit engine word. For deriving seeds of components that own
  /// their own Rng (e.g. Dropout); prefer split() for full child streams.
  std::uint64_t draw_u64();

 private:
  /// Gamma(shape alpha, scale 1) via Marsaglia–Tsang; building block for
  /// heavy_tail's chi-squared draw.
  double gamma(double alpha);

  std::mt19937_64 gen_;
};

}  // namespace cnd
