#include "tensor/rng.hpp"

#include <cmath>
#include <numeric>

#include "tensor/assert.hpp"

namespace cnd {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(gen_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(gen_);
}

std::int64_t Rng::randint(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::randint: empty range");
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(gen_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution d(p);
  return d(gen_);
}

double Rng::exponential(double lambda) {
  require(lambda > 0.0, "Rng::exponential: lambda must be > 0");
  std::exponential_distribution<double> d(lambda);
  return d(gen_);
}

double Rng::heavy_tail(double df) {
  require(df > 0.0, "Rng::heavy_tail: df must be > 0");
  const double z = normal();
  std::chi_squared_distribution<double> chi(df);
  const double c = chi(gen_);
  return z / std::sqrt(c / df + 1e-12);
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  require(!weights.empty(), "Rng::categorical: empty weights");
  double total = 0.0;
  for (double w : weights) {
    require(w >= 0.0, "Rng::categorical: negative weight");
    total += w;
  }
  require(total > 0.0, "Rng::categorical: all-zero weights");
  double r = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

void Rng::shuffle(std::vector<std::size_t>& idx) {
  for (std::size_t i = idx.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(randint(0, static_cast<std::int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  shuffle(idx);
  return idx;
}

Rng Rng::split(std::uint64_t salt) {
  // Mix the parent stream with the salt so children are independent and the
  // parent advances (two splits with different salts differ; repeated splits
  // with the same salt also differ).
  const std::uint64_t a = gen_();
  const std::uint64_t b = gen_();
  return Rng(a ^ (salt * 0x9E3779B97F4A7C15ULL) ^ (b << 1));
}

}  // namespace cnd
