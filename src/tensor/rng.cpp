// Portable distribution implementations on top of the mt19937_64 word
// stream.
//
// The mt19937_64 engine itself is pinned by the C++ standard (same seed →
// same 64-bit words everywhere), but the std::*_distribution adapters are
// not: libstdc++ and libc++ use different algorithms, so routing draws
// through them makes every downstream experiment toolchain-dependent. Each
// distribution below is therefore spelled out with one fixed algorithm:
//
//   uniform      53-bit mantissa scaling: (word >> 11) * 2^-53 ∈ [0, 1)
//   normal       Box–Muller (two words per draw, cosine branch only — no
//                cached spare, so copies/splits of an Rng stay independent
//                of draw parity)
//   randint      Lemire multiply-shift with rejection (unbiased, bounded)
//   bernoulli    uniform() < p
//   exponential  inverse CDF: -log1p(-u) / lambda
//   heavy_tail   normal / sqrt(chi2/df); chi2 = 2·Gamma(df/2) via
//                Marsaglia–Tsang squeeze (normal + uniform rejection)
//
// All math funnels through libm (log/cos/sqrt), which both toolchains share
// on a given platform; tests/test_rng.cpp pins the exact bit patterns of the
// first draws so any algorithmic drift is caught immediately.
#include "tensor/rng.hpp"

#include <cmath>
#include <numbers>
#include <numeric>

#include "tensor/assert.hpp"

namespace cnd {

namespace {

/// Map one engine word to the 53-bit-exact uniform grid on [0, 1).
inline double to_unit(std::uint64_t word) {
  return static_cast<double>(word >> 11) * 0x1.0p-53;
}

}  // namespace

std::uint64_t Rng::draw_u64() { return gen_(); }

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * to_unit(gen_());
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller. u1 ∈ (0, 1] keeps the log finite; u2 ∈ [0, 1) spins the
  // angle. Only the cosine branch is used: a cached sine spare would make
  // the stream depend on how many draws a copied parent already made.
  const double u1 = 1.0 - to_unit(gen_());
  const double u2 = to_unit(gen_());
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

std::int64_t Rng::randint(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::randint: empty range");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  // Two's-complement wrap makes `span` the count of values in [lo, hi];
  // span == 0 encodes the full 2^64 range (every word is acceptable).
  const std::uint64_t span = static_cast<std::uint64_t>(hi) -
                             static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(gen_());
  // Lemire multiply-shift: map word·span >> 64; reject the low-product
  // fringe so every value in [0, span) keeps exactly the same probability.
  std::uint64_t word = gen_();
  auto prod = static_cast<unsigned __int128>(word) * span;
  auto low = static_cast<std::uint64_t>(prod);
  if (low < span) {
    const std::uint64_t threshold = (0 - span) % span;  // 2^64 mod span
    while (low < threshold) {
      word = gen_();
      prod = static_cast<unsigned __int128>(word) * span;
      low = static_cast<std::uint64_t>(prod);
    }
  }
  const auto offset = static_cast<std::uint64_t>(prod >> 64);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + offset);
}

bool Rng::bernoulli(double p) {
  // u ∈ [0, 1): p == 0 can never fire and p == 1 always does.
  return to_unit(gen_()) < p;
}

double Rng::exponential(double lambda) {
  require(lambda > 0.0, "Rng::exponential: lambda must be > 0");
  // Inverse CDF with u ∈ [0, 1); log1p keeps precision for small u.
  return -std::log1p(-to_unit(gen_())) / lambda;
}

double Rng::gamma(double alpha) {
  // Marsaglia–Tsang (2000). For alpha < 1, boost with Gamma(alpha + 1) and
  // the u^(1/alpha) power trick. Rejection loops are deterministic given the
  // engine stream, so portability is unaffected.
  if (alpha < 1.0) {
    const double u = 1.0 - to_unit(gen_());  // (0, 1]: pow/log stay finite
    return gamma(alpha + 1.0) * std::pow(u, 1.0 / alpha);
  }
  const double d = alpha - 1.0 / 3.0;
  const double c = 1.0 / (3.0 * std::sqrt(d));
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = 1.0 - to_unit(gen_());  // (0, 1]: log(u) finite
    if (u < 1.0 - 0.0331 * (x * x) * (x * x)) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

double Rng::heavy_tail(double df) {
  require(df > 0.0, "Rng::heavy_tail: df must be > 0");
  const double z = normal();
  const double chi2 = 2.0 * gamma(0.5 * df);
  return z / std::sqrt(chi2 / df + 1e-12);
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  require(!weights.empty(), "Rng::categorical: empty weights");
  double total = 0.0;
  for (double w : weights) {
    require(w >= 0.0, "Rng::categorical: negative weight");
    total += w;
  }
  require(total > 0.0, "Rng::categorical: all-zero weights");
  double r = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

void Rng::shuffle(std::vector<std::size_t>& idx) {
  for (std::size_t i = idx.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(randint(0, static_cast<std::int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  shuffle(idx);
  return idx;
}

Rng Rng::split(std::uint64_t salt) {
  // Mix the parent stream with the salt so children are independent and the
  // parent advances (two splits with different salts differ; repeated splits
  // with the same salt also differ).
  const std::uint64_t a = gen_();
  const std::uint64_t b = gen_();
  return Rng(a ^ (salt * 0x9E3779B97F4A7C15ULL) ^ (b << 1));
}

}  // namespace cnd
