#include "tensor/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/parallel_for.hpp"
#include "tensor/assert.hpp"
#include "tensor/check.hpp"

namespace cnd {

using kernels::kKc;
using kernels::kMr;
using kernels::kNr;

namespace {

// The one multiply-add every kernel in this TU is built from. Written
// explicitly — NOT left to -ffp-contract — because the compiler contracts
// per loop, not per program: GCC's unroller happily emits fused FMA for one
// copy of an accumulation and separate mul+add for another, which breaks
// blocked-vs-reference bit-identity. With the op spelled out (and
// -ffp-contract=off pinned on this TU, see src/CMakeLists.txt) every
// kernel, every reference kernel, and row_sq_norms perform the identical
// operation: a true fused multiply-add when the kernel ISA has hardware FMA,
// plain mul+add otherwise. One definition per binary; all build types
// (Release / ASan / TSan) configure the same CND_KERNEL_MARCH, so
// cross-build CSV diffs stay byte-clean.
#if defined(__FMA__)
inline double madd(double a, double b, double c) { return std::fma(a, b, c); }
#else
inline double madd(double a, double b, double c) { return a * b + c; }
#endif

// The float32 sibling, used only by the IVF probe-scan kernels at the bottom
// of this file. Same rationale: spell the contraction out so the scan's
// rounding pattern is one fixed choice per binary, never the unroller's.
#if defined(__FMA__)
// cnd-lint: allow(no-float) — the sanctioned float32 IVF scan surface
inline float maddf(float a, float b, float c) { return std::fmaf(a, b, c); }
#else
// cnd-lint: allow(no-float) — the sanctioned float32 IVF scan surface
inline float maddf(float a, float b, float c) { return a * b + c; }
#endif

}  // namespace

// cnd-alloc-ok(slot pool: grows on first use of a slot/shape, then reuses storage)
Matrix& Workspace::mat(std::size_t slot, std::size_t rows, std::size_t cols) {
  if (slot >= mats_.size()) mats_.resize(slot + 1);
  mats_[slot].resize(rows, cols);
  return mats_[slot];
}

// cnd-alloc-ok(slot pool: grows on first use of a slot/shape, then reuses storage)
std::vector<double>& Workspace::vec(std::size_t slot, std::size_t size) {
  if (slot >= vecs_.size()) vecs_.resize(slot + 1);
  vecs_[slot].resize(size);
  return vecs_[slot];
}

namespace {

// ---- C = A * B tiles -------------------------------------------------------
//
// Each tile holds an mr x nr block of C in registers and streams the p-panel
// [p0, p0 + kc). `init_zero` distinguishes the first p-panel (start each
// element's chain at 0.0, or at C's prior value for the accumulate kernels)
// from later panels (resume the chain from C). Per element the adds are
// applied for p strictly ascending — the canonical order — so tiling and the
// C round-trips between panels never change a rounding step.

inline void mm_tile(double* cp, std::size_t n, const double* ap, std::size_t k,
                    const double* bp, std::size_t mr, std::size_t nr,
                    std::size_t p0, std::size_t kc, bool init_zero) {
  double acc[kMr][kNr];
  for (std::size_t ii = 0; ii < mr; ++ii)
    for (std::size_t jj = 0; jj < nr; ++jj)
      acc[ii][jj] = init_zero ? 0.0 : cp[ii * n + jj];
  const double* bpp = bp + p0 * n;
  if (mr == kMr && nr == kNr) {
    for (std::size_t p = p0; p < p0 + kc; ++p, bpp += n) {
      const double a0 = ap[0 * k + p];
      const double a1 = ap[1 * k + p];
      const double a2 = ap[2 * k + p];
      const double a3 = ap[3 * k + p];
      for (std::size_t jj = 0; jj < kNr; ++jj) {
        const double bv = bpp[jj];
        acc[0][jj] = madd(a0, bv, acc[0][jj]);
        acc[1][jj] = madd(a1, bv, acc[1][jj]);
        acc[2][jj] = madd(a2, bv, acc[2][jj]);
        acc[3][jj] = madd(a3, bv, acc[3][jj]);
      }
    }
  } else {
    for (std::size_t p = p0; p < p0 + kc; ++p, bpp += n) {
      for (std::size_t ii = 0; ii < mr; ++ii) {
        const double av = ap[ii * k + p];
        for (std::size_t jj = 0; jj < nr; ++jj)
          acc[ii][jj] = madd(av, bpp[jj], acc[ii][jj]);
      }
    }
  }
  for (std::size_t ii = 0; ii < mr; ++ii)
    for (std::size_t jj = 0; jj < nr; ++jj) cp[ii * n + jj] = acc[ii][jj];
}

// C rows [lo, hi) of A(m x k) * B(k x n); C/A pointers are to row 0.
void mm_rows(double* c, const double* a, const double* b, std::size_t lo,
             std::size_t hi, std::size_t k, std::size_t n) {
  for (std::size_t i0 = lo; i0 < hi; i0 += kMr) {
    const std::size_t mr = std::min(kMr, hi - i0);
    for (std::size_t p0 = 0; p0 < k; p0 += kKc) {
      const std::size_t kc = std::min(kKc, k - p0);
      for (std::size_t j0 = 0; j0 < n; j0 += kNr) {
        const std::size_t nr = std::min(kNr, n - j0);
        mm_tile(c + i0 * n + j0, n, a + i0 * k, k, b + j0, mr, nr, p0, kc,
                /*init_zero=*/p0 == 0);
      }
    }
  }
}

// ---- C = A^T * B tiles -----------------------------------------------------
//
// A is k x m; output row i is A column i, contiguous across ii for a fixed p.

inline void at_tile(double* cp, std::size_t n, const double* ap, std::size_t m,
                    const double* bp, std::size_t mr, std::size_t nr,
                    std::size_t p0, std::size_t kc, bool init_zero) {
  double acc[kMr][kNr];
  for (std::size_t ii = 0; ii < mr; ++ii)
    for (std::size_t jj = 0; jj < nr; ++jj)
      acc[ii][jj] = init_zero ? 0.0 : cp[ii * n + jj];
  const double* app = ap + p0 * m;
  const double* bpp = bp + p0 * n;
  if (mr == kMr && nr == kNr) {
    for (std::size_t p = p0; p < p0 + kc; ++p, app += m, bpp += n) {
      const double a0 = app[0];
      const double a1 = app[1];
      const double a2 = app[2];
      const double a3 = app[3];
      for (std::size_t jj = 0; jj < kNr; ++jj) {
        const double bv = bpp[jj];
        acc[0][jj] = madd(a0, bv, acc[0][jj]);
        acc[1][jj] = madd(a1, bv, acc[1][jj]);
        acc[2][jj] = madd(a2, bv, acc[2][jj]);
        acc[3][jj] = madd(a3, bv, acc[3][jj]);
      }
    }
  } else {
    for (std::size_t p = p0; p < p0 + kc; ++p, app += m, bpp += n) {
      for (std::size_t ii = 0; ii < mr; ++ii) {
        const double av = app[ii];
        for (std::size_t jj = 0; jj < nr; ++jj)
          acc[ii][jj] = madd(av, bpp[jj], acc[ii][jj]);
      }
    }
  }
  for (std::size_t ii = 0; ii < mr; ++ii)
    for (std::size_t jj = 0; jj < nr; ++jj) cp[ii * n + jj] = acc[ii][jj];
}

// C rows [lo, hi) of A(k x m)^T * B(k x n). `accumulate` continues each
// element's chain from the value already in C (the gradient kernel).
void at_rows(double* c, const double* a, const double* b, std::size_t lo,
             std::size_t hi, std::size_t k, std::size_t m, std::size_t n,
             bool accumulate) {
  for (std::size_t i0 = lo; i0 < hi; i0 += kMr) {
    const std::size_t mr = std::min(kMr, hi - i0);
    for (std::size_t p0 = 0; p0 < k; p0 += kKc) {
      const std::size_t kc = std::min(kKc, k - p0);
      for (std::size_t j0 = 0; j0 < n; j0 += kNr) {
        const std::size_t nr = std::min(kNr, n - j0);
        at_tile(c + i0 * n + j0, n, a + i0, m, b + j0, mr, nr, p0, kc,
                /*init_zero=*/p0 == 0 && !accumulate);
      }
    }
  }
}

// ---- C = A * B^T tiles -----------------------------------------------------
//
// Dot-product shaped: both operands stream along p. An kMr x kMr tile gives
// 16 independent accumulation chains (ILP) while each chain stays strictly
// p-ascending.

inline void bt_tile(double* cp, std::size_t ldc, const double* ap,
                    const double* bp, std::size_t k, std::size_t mr,
                    std::size_t nr, std::size_t p0, std::size_t kc,
                    bool init_zero) {
  double acc[kMr][kMr];
  for (std::size_t ii = 0; ii < mr; ++ii)
    for (std::size_t jj = 0; jj < nr; ++jj)
      acc[ii][jj] = init_zero ? 0.0 : cp[ii * ldc + jj];
  if (mr == kMr && nr == kMr) {
    const double* a0 = ap + 0 * k;
    const double* a1 = ap + 1 * k;
    const double* a2 = ap + 2 * k;
    const double* a3 = ap + 3 * k;
    const double* b0 = bp + 0 * k;
    const double* b1 = bp + 1 * k;
    const double* b2 = bp + 2 * k;
    const double* b3 = bp + 3 * k;
    for (std::size_t p = p0; p < p0 + kc; ++p) {
      const double bv0 = b0[p], bv1 = b1[p], bv2 = b2[p], bv3 = b3[p];
      const double av0 = a0[p], av1 = a1[p], av2 = a2[p], av3 = a3[p];
      acc[0][0] = madd(av0, bv0, acc[0][0]); acc[0][1] = madd(av0, bv1, acc[0][1]);
      acc[0][2] = madd(av0, bv2, acc[0][2]); acc[0][3] = madd(av0, bv3, acc[0][3]);
      acc[1][0] = madd(av1, bv0, acc[1][0]); acc[1][1] = madd(av1, bv1, acc[1][1]);
      acc[1][2] = madd(av1, bv2, acc[1][2]); acc[1][3] = madd(av1, bv3, acc[1][3]);
      acc[2][0] = madd(av2, bv0, acc[2][0]); acc[2][1] = madd(av2, bv1, acc[2][1]);
      acc[2][2] = madd(av2, bv2, acc[2][2]); acc[2][3] = madd(av2, bv3, acc[2][3]);
      acc[3][0] = madd(av3, bv0, acc[3][0]); acc[3][1] = madd(av3, bv1, acc[3][1]);
      acc[3][2] = madd(av3, bv2, acc[3][2]); acc[3][3] = madd(av3, bv3, acc[3][3]);
    }
  } else {
    for (std::size_t p = p0; p < p0 + kc; ++p) {
      for (std::size_t ii = 0; ii < mr; ++ii) {
        const double av = ap[ii * k + p];
        for (std::size_t jj = 0; jj < nr; ++jj)
          acc[ii][jj] = madd(av, bp[jj * k + p], acc[ii][jj]);
      }
    }
  }
  for (std::size_t ii = 0; ii < mr; ++ii)
    for (std::size_t jj = 0; jj < nr; ++jj) cp[ii * ldc + jj] = acc[ii][jj];
}

// C rows [lo, hi) of A(m x k) * B(nb x k)^T; C is m x nb.
void bt_rows(double* c, const double* a, const double* b, std::size_t lo,
             std::size_t hi, std::size_t k, std::size_t nb) {
  for (std::size_t i0 = lo; i0 < hi; i0 += kMr) {
    const std::size_t mr = std::min(kMr, hi - i0);
    for (std::size_t p0 = 0; p0 < k; p0 += kKc) {
      const std::size_t kc = std::min(kKc, k - p0);
      for (std::size_t j0 = 0; j0 < nb; j0 += kMr) {
        const std::size_t nr = std::min(kMr, nb - j0);
        bt_tile(c + i0 * nb + j0, nb, a + i0 * k, b + j0 * k, k, mr, nr, p0,
                kc, /*init_zero=*/p0 == 0);
      }
    }
  }
}

void fill_zero_rows(Matrix& c, std::size_t lo, std::size_t hi) {
  if (c.cols() == 0) return;
  std::fill(c.data() + lo * c.cols(), c.data() + hi * c.cols(), 0.0);
}

}  // namespace

void matmul_into(Matrix& c, const Matrix& a, const Matrix& b) {
  require(a.cols() == b.rows(), "matmul_into: inner dimension mismatch");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  require(&c != &a && &c != &b, "matmul_into: output aliases an input");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  CND_DCHECK_ALL_FINITE(a, "matmul_into: lhs has non-finite elements");
  CND_DCHECK_ALL_FINITE(b, "matmul_into: rhs has non-finite elements");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  c.resize(m, n);
  if (m == 0 || n == 0) return;
  if (k == 0) {  // No p-panel ever runs; the product is all zeros.
    fill_zero_rows(c, 0, m);
    return;
  }
  runtime::parallel_for(0, m, runtime::grain_for_cost(k * n),
                        [&](std::size_t lo, std::size_t hi) {
    mm_rows(c.data(), a.data(), b.data(), lo, hi, k, n);
  });
}

void matmul_bt_into(Matrix& c, const Matrix& a, const Matrix& b) {
  require(a.cols() == b.cols(), "matmul_bt_into: inner dimension mismatch");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  require(&c != &a && &c != &b, "matmul_bt_into: output aliases an input");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  CND_DCHECK_ALL_FINITE(a, "matmul_bt_into: lhs has non-finite elements");
  CND_DCHECK_ALL_FINITE(b, "matmul_bt_into: rhs has non-finite elements");
  const std::size_t m = a.rows(), k = a.cols(), nb = b.rows();
  c.resize(m, nb);
  if (m == 0 || nb == 0) return;
  if (k == 0) {
    fill_zero_rows(c, 0, m);
    return;
  }
  runtime::parallel_for(0, m, runtime::grain_for_cost(nb * k),
                        [&](std::size_t lo, std::size_t hi) {
    bt_rows(c.data(), a.data(), b.data(), lo, hi, k, nb);
  });
}

void matmul_at_into(Matrix& c, const Matrix& a, const Matrix& b) {
  require(a.rows() == b.rows(), "matmul_at_into: inner dimension mismatch");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  require(&c != &a && &c != &b, "matmul_at_into: output aliases an input");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  CND_DCHECK_ALL_FINITE(a, "matmul_at_into: lhs has non-finite elements");
  CND_DCHECK_ALL_FINITE(b, "matmul_at_into: rhs has non-finite elements");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  c.resize(m, n);
  if (m == 0 || n == 0) return;
  if (k == 0) {
    fill_zero_rows(c, 0, m);
    return;
  }
  runtime::parallel_for(0, m, runtime::grain_for_cost(k * n),
                        [&](std::size_t lo, std::size_t hi) {
    at_rows(c.data(), a.data(), b.data(), lo, hi, k, m, n, /*accumulate=*/false);
  });
}

void matmul_at_add_into(Matrix& c, const Matrix& a, const Matrix& b) {
  require(a.rows() == b.rows(), "matmul_at_add_into: inner dimension mismatch");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  require(c.rows() == a.cols() && c.cols() == b.cols(),  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
          "matmul_at_add_into: output shape mismatch");
  require(&c != &a && &c != &b, "matmul_at_add_into: output aliases an input");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  CND_DCHECK_ALL_FINITE(a, "matmul_at_add_into: lhs has non-finite elements");
  CND_DCHECK_ALL_FINITE(b, "matmul_at_add_into: rhs has non-finite elements");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  if (m == 0 || n == 0 || k == 0) return;
  runtime::parallel_for(0, m, runtime::grain_for_cost(k * n),
                        [&](std::size_t lo, std::size_t hi) {
    at_rows(c.data(), a.data(), b.data(), lo, hi, k, m, n, /*accumulate=*/true);
  });
}

void matmul_bt_rows_into(Matrix& c, const Matrix& a, std::size_t lo,
                         std::size_t hi, const Matrix& b) {
  require(a.cols() == b.cols(), "matmul_bt_rows_into: inner dimension mismatch");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  require(lo <= hi && hi <= a.rows(), "matmul_bt_rows_into: row range out of bounds");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  require(&c != &a && &c != &b, "matmul_bt_rows_into: output aliases an input");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  const std::size_t k = a.cols(), nb = b.rows();
  c.resize(hi - lo, nb);
  if (hi == lo || nb == 0) return;
  if (k == 0) {
    fill_zero_rows(c, 0, hi - lo);
    return;
  }
  bt_rows(c.data(), a.data() + lo * k, b.data(), 0, hi - lo, k, nb);
}

void sub_rowvec_into(Matrix& out, const Matrix& a, std::span<const double> v) {
  require(v.size() == a.cols(), "sub_rowvec_into: width mismatch");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  require(&out != &a, "sub_rowvec_into: output aliases the input");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  out.resize(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* r = a.data() + i * a.cols();
    double* o = out.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) o[j] = r[j] - v[j];
  }
}

void add_rowvec_inplace(Matrix& a, std::span<const double> v) {
  require(v.size() == a.cols(), "add_rowvec_inplace: width mismatch");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double* r = a.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) r[j] += v[j];
  }
}

void hadamard_into(Matrix& out, const Matrix& a, const Matrix& b) {
  require(a.same_shape(b), "hadamard_into: shape mismatch");
  require(&out != &a && &out != &b, "hadamard_into: output aliases an input");
  out.resize(a.rows(), a.cols());
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  for (std::size_t i = 0; i < a.size(); ++i) po[i] = pa[i] * pb[i];
}

namespace kernels {

void row_sq_norms(const Matrix& a, std::size_t lo, std::size_t hi,
                  std::vector<double>& out) {
  require(lo <= hi && hi <= a.rows(), "row_sq_norms: row range out of bounds");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  out.resize(hi - lo);
  for (std::size_t i = lo; i < hi; ++i) {
    auto r = a.row(i);
    double s = 0.0;
    for (std::size_t p = 0; p < r.size(); ++p) s = madd(r[p], r[p], s);
    out[i - lo] = s;
  }
}

double dot_canonical(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "dot_canonical: length mismatch");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  double s = 0.0;
  for (std::size_t p = 0; p < a.size(); ++p) s = madd(a[p], b[p], s);
  return s;
}

// cnd-lint: allow(no-float) — the sanctioned float32 IVF scan surface
void cast_row_f32(std::span<const double> row, float* out) {
  for (std::size_t p = 0; p < row.size(); ++p)
    // cnd-lint: allow(no-float) — narrowing cast into posting-block storage
    out[p] = static_cast<float>(row[p]);
}

// cnd-lint: allow(no-float) — the sanctioned float32 IVF scan surface
void sq_norms_f32(const float* rows, std::size_t n, std::size_t d, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    // cnd-lint: allow(no-float) — float32 accumulator, matches the scan
    const float* r = rows + i * d;
    // cnd-lint: allow(no-float) — float32 accumulator, matches the scan
    float s = 0.0f;
    for (std::size_t p = 0; p < d; ++p) s = maddf(r[p], r[p], s);
    out[i] = s;
  }
}

// cnd-lint: allow(no-float) — the sanctioned float32 IVF scan surface
void ivf_scan_f32(const float* q, float qn, const float* rows,
                  // cnd-lint: allow(no-float) — continuation of the decl above
                  const float* norms, std::size_t n, std::size_t d, float* out) {
  for (std::size_t j = 0; j < n; ++j) {
    // cnd-lint: allow(no-float) — float32 probe scan, rows are float32 blocks
    const float* r = rows + j * d;
    // cnd-lint: allow(no-float) — float32 accumulator, p-ascending
    float dot = 0.0f;
    for (std::size_t p = 0; p < d; ++p) dot = maddf(q[p], r[p], dot);
    // cnd-lint: allow(no-float) — float32 fused distance, clamped at 0
    const float d2 = qn + norms[j] - 2.0f * dot;
    out[j] = d2 < 0.0f ? 0.0f : d2;
  }
}

void matmul_ref(Matrix& c, const Matrix& a, const Matrix& b) {
  require(a.cols() == b.rows(), "matmul_ref: inner dimension mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  c.resize(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s = madd(a(i, p), b(p, j), s);
      c(i, j) = s;
    }
}

void matmul_bt_ref(Matrix& c, const Matrix& a, const Matrix& b) {
  require(a.cols() == b.cols(), "matmul_bt_ref: inner dimension mismatch");
  const std::size_t m = a.rows(), k = a.cols(), nb = b.rows();
  c.resize(m, nb);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < nb; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s = madd(a(i, p), b(j, p), s);
      c(i, j) = s;
    }
}

void matmul_at_ref(Matrix& c, const Matrix& a, const Matrix& b) {
  require(a.rows() == b.rows(), "matmul_at_ref: inner dimension mismatch");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  c.resize(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s = madd(a(p, i), b(p, j), s);
      c(i, j) = s;
    }
}

void matmul_at_add_ref(Matrix& c, const Matrix& a, const Matrix& b) {
  require(a.rows() == b.rows(), "matmul_at_add_ref: inner dimension mismatch");
  require(c.rows() == a.cols() && c.cols() == b.cols(),
          "matmul_at_add_ref: output shape mismatch");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = c(i, j);
      for (std::size_t p = 0; p < k; ++p) s = madd(a(p, i), b(p, j), s);
      c(i, j) = s;
    }
}

}  // namespace kernels

}  // namespace cnd
