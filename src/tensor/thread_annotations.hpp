// Clang thread-safety annotation macros (docs/STATIC_ANALYSIS.md,
// "Concurrency contracts").
//
// Every concurrency invariant in this repository — which mutex guards which
// field, which functions require or exclude a lock — is written in these
// macros so Clang's -Wthread-safety analysis can check it at compile time.
// Under any other compiler the macros expand to nothing (verified by
// tests/test_thread_annotations.cpp), so the annotations cost exactly zero
// at runtime and GCC builds are unaffected. The CMake helper
// cnd_thread_safety() turns the analysis into a hard error gate on Clang
// builds; the CI clang-thread-safety job runs it over every annotated TU.
//
// This header is dependency-free and, together with
// runtime/annotated_mutex.hpp, sits BELOW the layer DAG: any layer
// (including src/obs, the bottom layer) may include it. cnd_lint's layering
// rule carries an explicit exemption for the pair.
//
// The macro set mirrors the canonical mutex.h example from the Clang
// thread-safety docs, CND_-prefixed to stay out of other libraries' way.
#pragma once

#if defined(__clang__)
#define CND_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CND_THREAD_ANNOTATION(x)  // expands to nothing: annotations are free
#endif

/// Marks a type as a lockable capability ("mutex" names the capability kind
/// in diagnostics).
#define CND_CAPABILITY(x) CND_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability (std::lock_guard shape).
#define CND_SCOPED_CAPABILITY CND_THREAD_ANNOTATION(scoped_lockable)

/// Field/variable may only be read or written while holding `x`.
#define CND_GUARDED_BY(x) CND_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field: the pointed-to data (not the pointer) is guarded by `x`.
#define CND_PT_GUARDED_BY(x) CND_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declared lock-acquisition order between two capabilities.
#define CND_ACQUIRED_BEFORE(...) CND_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define CND_ACQUIRED_AFTER(...) CND_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Caller must hold the capability when calling this function.
#define CND_REQUIRES(...) CND_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define CND_ACQUIRE(...) CND_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (caller must hold it on entry).
#define CND_RELEASE(...) CND_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define CND_TRY_ACQUIRE(...) CND_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock guard for re-entry).
#define CND_EXCLUDES(...) CND_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define CND_RETURN_CAPABILITY(x) CND_THREAD_ANNOTATION(lock_returned(x))

/// Opt one function out of the analysis (init/teardown paths that the
/// analysis cannot model; justify in a comment).
#define CND_NO_THREAD_SAFETY_ANALYSIS CND_THREAD_ANNOTATION(no_thread_safety_analysis)
