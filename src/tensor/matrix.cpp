#include "tensor/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/assert.hpp"
#include "tensor/check.hpp"
#include "tensor/kernels.hpp"

namespace cnd {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

// cnd-alloc-ok(constructing an owning matrix allocates by definition; hot loops use workspace slots)
Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : init) {
    require(r.size() == cols_, "Matrix: ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  CND_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  CND_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  CND_ASSERT(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  CND_ASSERT(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

std::vector<double> Matrix::row_vec(std::size_t r) const {
  auto s = row(r);
  return {s.begin(), s.end()};
}

std::vector<double> Matrix::col_vec(std::size_t c) const {
  CND_ASSERT(c < cols_);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

void Matrix::set_row(std::size_t r, std::span<const double> v) {
  require(v.size() == cols_, "Matrix::set_row: width mismatch");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  std::copy(v.begin(), v.end(), row(r).begin());
}

// cnd-alloc-ok(grows only when the shape changes; a steady batch shape is a no-op)
void Matrix::resize(std::size_t rows, std::size_t cols) {
  if (rows_ == rows && cols_ == cols) return;
  data_.resize(rows * cols);
  rows_ = rows;
  cols_ = cols;
}

Matrix Matrix::take_rows(const std::vector<std::size_t>& idx) const {
  Matrix out(idx.size(), cols_);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    require(idx[i] < rows_, "Matrix::take_rows: index out of range");
    out.set_row(i, row(idx[i]));
  }
  return out;
}

void Matrix::append_rows(const Matrix& other) {
  if (other.empty()) return;
  if (empty()) {
    *this = other;
    return;
  }
  require(cols_ == other.cols_, "Matrix::append_rows: column mismatch");
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  rows_ += other.rows_;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  require(same_shape(o), "Matrix::+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  require(same_shape(o), "Matrix::-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
Matrix operator*(Matrix a, double s) { return a *= s; }
Matrix operator*(double s, Matrix a) { return a *= s; }

// The three matmul variants are thin allocating wrappers over the blocked
// `_into` kernels (tensor/kernels.{hpp,cpp}): output rows are distributed
// over the runtime pool, and each element accumulates over the inner
// dimension in the canonical p-ascending order, so results are bit-identical
// at any thread count (docs/PARALLELISM.md).

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_into(c, a, b);
  return c;
}

Matrix matmul_bt(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_bt_into(c, a, b);
  return c;
}

Matrix matmul_at(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_at_into(c, a, b);
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  return t;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  require(a.same_shape(b), "hadamard: shape mismatch");
  Matrix c = a;
  for (std::size_t i = 0; i < c.rows(); ++i) {
    auto ci = c.row(i);
    auto bi = b.row(i);
    for (std::size_t j = 0; j < c.cols(); ++j) ci[j] *= bi[j];
  }
  return c;
}

std::vector<double> col_mean(const Matrix& a) {
  require(a.rows() > 0, "col_mean: empty matrix");
  std::vector<double> m(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto r = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) m[j] += r[j];
  }
  for (double& v : m) v /= static_cast<double>(a.rows());
  return m;
}

std::vector<double> col_stddev(const Matrix& a, const std::vector<double>& mean) {
  require(mean.size() == a.cols(), "col_stddev: mean size mismatch");
  require(a.rows() > 0, "col_stddev: empty matrix");
  std::vector<double> s(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto r = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double d = r[j] - mean[j];
      s[j] += d * d;
    }
  }
  for (double& v : s) v = std::sqrt(v / static_cast<double>(a.rows()));
  return s;
}

Matrix sub_rowvec(Matrix a, std::span<const double> v) {
  require(v.size() == a.cols(), "sub_rowvec: width mismatch");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto r = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) r[j] -= v[j];
  }
  return a;
}

double frobenius_sq(const Matrix& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (double v : a.row(i)) s += v * v;
  return s;
}

double sq_dist(std::span<const double> a, std::span<const double> b) {
  CND_ASSERT(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double dot(std::span<const double> a, std::span<const double> b) {
  CND_ASSERT(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

Matrix identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double mse(const Matrix& a, const Matrix& b) {
  require(a.same_shape(b), "mse: shape mismatch");
  require(a.size() > 0, "mse: empty matrices");
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto ra = a.row(i);
    auto rb = b.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double d = ra[j] - rb[j];
      s += d * d;
    }
  }
  return s / static_cast<double>(a.size());
}

}  // namespace cnd
