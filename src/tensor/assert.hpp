// Always-on invariant checking for the cnd libraries.
//
// Preconditions on public APIs throw std::invalid_argument with a message;
// internal invariants use CND_ASSERT, which throws std::logic_error so that
// a violated invariant is observable in Release builds and testable.
#pragma once

#include <stdexcept>
#include <string>

namespace cnd {

/// Throws std::invalid_argument if `cond` is false. Use for argument checks
/// on public entry points. The const char* overload is the hot one: string
/// literals bind to it directly, so a passing check touches neither the
/// heap nor the allocator (the zero-allocation steady-state contract of the
/// `_into` kernels depends on this).
inline void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(what);
}

inline void require(bool cond, const std::string& what) {
  if (!cond) throw std::invalid_argument(what);
}

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  throw std::logic_error(std::string("CND_ASSERT failed: ") + expr + " at " +
                         file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace cnd

#define CND_ASSERT(expr) \
  ((expr) ? static_cast<void>(0) : ::cnd::detail::assert_fail(#expr, __FILE__, __LINE__))
