// Runtime invariant checks for the numeric hot paths.
//
// Extends tensor/assert.hpp with two tiers (docs/STATIC_ANALYSIS.md):
//
//  - CND_CHECK(cond, msg): always on, in every build type. Use where the
//    check is O(1) relative to the work it guards (entry-point shape
//    checks, convergence invariants).
//  - CND_DCHECK* macros: compiled to nothing unless CND_ENABLE_DCHECKS is
//    defined (CMake -DCND_DCHECKS=ON; forced on for Debug and sanitizer
//    builds). Use for per-element work — NaN/Inf sweeps, per-access bounds
//    checks — that would perturb Release throughput and the BENCH_*.json
//    record.
//
// Both tiers throw std::logic_error like CND_ASSERT, so a violated
// invariant is observable and unit-testable rather than a silent abort.
#pragma once

#include <cmath>
#include <span>
#include <string>

#include "tensor/assert.hpp"
#include "tensor/matrix.hpp"

namespace cnd::check {

[[noreturn]] inline void fail(const char* kind, const std::string& what,
                              const char* file, int line) {
  throw std::logic_error(std::string(kind) + " failed: " + what + " at " + file +
                         ":" + std::to_string(line));
}

/// True when every element is finite (no NaN, no +-Inf).
inline bool all_finite(std::span<const double> v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

inline bool all_finite(const Matrix& m) {
  return all_finite(std::span<const double>(m.data(), m.size()));
}

}  // namespace cnd::check

#define CND_CHECK(cond, msg)     \
  ((cond) ? static_cast<void>(0) \
          : ::cnd::check::fail("CND_CHECK(" #cond ")", (msg), __FILE__, __LINE__))

#ifdef CND_ENABLE_DCHECKS

#define CND_DCHECK(cond, msg)    \
  ((cond) ? static_cast<void>(0) \
          : ::cnd::check::fail("CND_DCHECK(" #cond ")", (msg), __FILE__, __LINE__))

/// Index i must be < n.
#define CND_DCHECK_BOUNDS(i, n)                                               \
  (((i) < (n)) ? static_cast<void>(0)                                         \
               : ::cnd::check::fail("CND_DCHECK_BOUNDS",                      \
                                    std::string(#i "=") + std::to_string(i) + \
                                        " >= " #n "=" + std::to_string(n),    \
                                    __FILE__, __LINE__))

/// Scalar must be finite (not NaN/Inf).
#define CND_DCHECK_FINITE(x, what)                                         \
  (std::isfinite(x) ? static_cast<void>(0)                                 \
                    : ::cnd::check::fail("CND_DCHECK_FINITE",              \
                                         std::string(what) + " = " +       \
                                             std::to_string(x),            \
                                         __FILE__, __LINE__))

/// Every element of a Matrix or span<const double> must be finite.
#define CND_DCHECK_ALL_FINITE(m, what)                                  \
  (::cnd::check::all_finite(m)                                          \
       ? static_cast<void>(0)                                           \
       : ::cnd::check::fail("CND_DCHECK_ALL_FINITE", (what), __FILE__, \
                            __LINE__))

#else  // !CND_ENABLE_DCHECKS: every dcheck vanishes, operands unevaluated.

#define CND_DCHECK(cond, msg) static_cast<void>(0)
#define CND_DCHECK_BOUNDS(i, n) static_cast<void>(0)
#define CND_DCHECK_FINITE(x, what) static_cast<void>(0)
#define CND_DCHECK_ALL_FINITE(m, what) static_cast<void>(0)

#endif  // CND_ENABLE_DCHECKS
