#include "linalg/stats.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/assert.hpp"

namespace cnd::linalg {

Matrix covariance(const Matrix& x) {
  require(x.rows() > 0, "covariance: empty matrix");
  auto [c, mu] = center(x);
  Matrix cov = matmul_at(c, c);
  const double denom = x.rows() > 1 ? static_cast<double>(x.rows() - 1)
                                    : 1.0;
  cov *= 1.0 / denom;
  // Force exact symmetry (matmul_at is symmetric up to rounding).
  for (std::size_t i = 0; i < cov.rows(); ++i)
    for (std::size_t j = i + 1; j < cov.cols(); ++j) {
      const double v = 0.5 * (cov(i, j) + cov(j, i));
      cov(i, j) = v;
      cov(j, i) = v;
    }
  return cov;
}

std::pair<Matrix, std::vector<double>> center(const Matrix& x) {
  auto mu = col_mean(x);
  return {sub_rowvec(x, mu), mu};
}

double pearson(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size() && !a.empty(), "pearson: size mismatch/empty");
  const double ma = mean(a);
  const double mb = mean(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double xa = a[i] - ma;
    const double xb = b[i] - mb;
    num += xa * xb;
    da += xa * xa;
    db += xb * xb;
  }
  if (da <= 0.0 || db <= 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

double quantile(std::vector<double> v, double q) {
  require(!v.empty(), "quantile: empty vector");
  require(q >= 0.0 && q <= 1.0, "quantile: q out of [0,1]");
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double mean(std::span<const double> v) {
  require(!v.empty(), "mean: empty vector");
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double stddev(std::span<const double> v) {
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size()));
}

}  // namespace cnd::linalg
