#include "linalg/distance.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "runtime/parallel_for.hpp"
#include "tensor/assert.hpp"
#include "tensor/check.hpp"

namespace cnd::linalg {

Matrix pairwise_dist(const Matrix& a, const Matrix& b) {
  require(a.cols() == b.cols(), "pairwise_dist: feature mismatch");
  CND_DCHECK_ALL_FINITE(a, "pairwise_dist: lhs has non-finite elements");
  CND_DCHECK_ALL_FINITE(b, "pairwise_dist: rhs has non-finite elements");
  Matrix d(a.rows(), b.rows());
  runtime::parallel_for(0, a.rows(),
                        runtime::grain_for_cost(b.rows() * a.cols()),
                        [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      auto ra = a.row(i);
      for (std::size_t j = 0; j < b.rows(); ++j)
        d(i, j) = std::sqrt(sq_dist(ra, b.row(j)));
    }
  });
  return d;
}

Knn knn(const Matrix& query, const Matrix& ref, std::size_t k, bool exclude_self) {
  require(query.cols() == ref.cols(), "knn: feature mismatch");
  require(k > 0, "knn: k must be > 0");
  // NaN distances make partial_sort's strict-weak ordering undefined, which
  // would silently scramble neighbour lists.
  CND_DCHECK_ALL_FINITE(query, "knn: query has non-finite elements");
  CND_DCHECK_ALL_FINITE(ref, "knn: reference has non-finite elements");
  const std::size_t avail = ref.rows() - (exclude_self ? 1 : 0);
  require(k <= avail, "knn: k larger than reference set");

  Knn out;
  out.indices.resize(query.rows());
  out.distances.resize(query.rows());

  // Queries are independent; each chunk carries its own candidate scratch.
  runtime::parallel_for(0, query.rows(),
                        runtime::grain_for_cost(ref.rows() * query.cols()),
                        [&](std::size_t lo, std::size_t hi) {
    std::vector<std::pair<double, std::size_t>> cand(ref.rows());
    for (std::size_t i = lo; i < hi; ++i) {
      auto q = query.row(i);
      for (std::size_t j = 0; j < ref.rows(); ++j)
        cand[j] = {sq_dist(q, ref.row(j)), j};
      std::size_t skip = exclude_self ? 1 : 0;
      std::partial_sort(cand.begin(),
                        cand.begin() + static_cast<std::ptrdiff_t>(k + skip),
                        cand.end());
      auto& idx = out.indices[i];
      auto& dst = out.distances[i];
      idx.reserve(k);
      dst.reserve(k);
      for (std::size_t j = 0; j < k + skip && idx.size() < k; ++j) {
        if (exclude_self && cand[j].second == i && cand[j].first == 0.0) continue;
        idx.push_back(cand[j].second);
        dst.push_back(std::sqrt(cand[j].first));
      }
      // If the self-match was not at distance zero duplicated, we may still
      // need one more neighbour.
      for (std::size_t j = k + skip; idx.size() < k && j < cand.size(); ++j) {
        idx.push_back(cand[j].second);
        dst.push_back(std::sqrt(cand[j].first));
      }
    }
  });
  return out;
}

}  // namespace cnd::linalg
