#include "linalg/distance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "linalg/ivf_index.hpp"
#include "runtime/parallel_for.hpp"
#include "tensor/assert.hpp"
#include "tensor/check.hpp"

namespace cnd::linalg {

// Norms come from kernels::row_sq_norms — it lives in the kernels
// translation unit so the norm and the Gram entry for the same row are the
// same instruction pattern bit-for-bit, making the fused self-distance
// n + n − 2n exactly 0.0 (see kernels.hpp).
using kernels::row_sq_norms;

namespace {

// Query rows per Gram block inside knn: bounds the d² scratch to
// kQueryBlock x ref.rows() regardless of query size. Per-(i, j) values do
// not depend on the block boundaries, so this is a pure footprint knob.
constexpr std::size_t kQueryBlock = 64;

// Rows of x per Gram block in the fused nearest-centroid pass; bounds the
// per-chunk d² scratch to kRowBlock x k regardless of dataset size.
constexpr std::size_t kRowBlock = 256;

// Shared core of pairwise_sq_dist_into and the NeighborProvider variant:
// `nb` must already hold row_sq_norms(b) (cached or fresh — same bits either
// way, it is the same function on the same input).
// cnd-hot
void pairwise_sq_dist_impl(Matrix& d2, const Matrix& a, const Matrix& b,
                           const std::vector<double>& nb, Workspace& ws) {
  require(a.cols() == b.cols(), "pairwise_sq_dist: feature mismatch");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  CND_DCHECK_ALL_FINITE(a, "pairwise_sq_dist: lhs has non-finite elements");
  CND_DCHECK_ALL_FINITE(b, "pairwise_sq_dist: rhs has non-finite elements");
  auto& na = ws.vec(0, a.rows());
  row_sq_norms(a, 0, a.rows(), na);
  // The output doubles as the Gram buffer: G = a·bᵀ lands in d2, then the
  // norms fold in element-wise. max(0, ·) clamps the cancellation when two
  // rows are (nearly) identical.
  matmul_bt_into(d2, a, b);
  runtime::parallel_for(0, a.rows(), runtime::grain_for_cost(b.rows() * 4),
                        [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      auto di = d2.row(i);
      for (std::size_t j = 0; j < di.size(); ++j)
        di[j] = std::max(0.0, na[i] + nb[j] - 2.0 * di[j]);
    }
  });
}

// Shared core of knn and the NeighborProvider's exact path: `nref` must
// already hold row_sq_norms(ref). The provider caches it across calls — the
// bits are identical to a fresh computation, so so are the results.
// cnd-hot
void knn_impl(Knn& out, const Matrix& query, const Matrix& ref,
              const std::vector<double>& nref, std::size_t k,
              bool exclude_self) {
  require(query.cols() == ref.cols(), "knn: feature mismatch");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  require(k > 0, "knn: k must be > 0");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  // NaN distances have no place in an ordering; catch them before they
  // silently scramble neighbour lists.
  CND_DCHECK_ALL_FINITE(query, "knn: query has non-finite elements");
  CND_DCHECK_ALL_FINITE(ref, "knn: reference has non-finite elements");
  require(!exclude_self || &query == &ref,  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
          "knn: exclude_self requires query and ref to be the same matrix");
  const std::size_t avail = ref.rows() - (exclude_self ? 1 : 0);
  require(k <= avail, "knn: k larger than reference set");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)

  out.indices.resize(query.rows());
  out.distances.resize(query.rows());

  // Queries are independent; each chunk carries its own Gram/heap scratch,
  // reused across its fixed-size query blocks. Candidates are totally
  // ordered by (d², index), so the k survivors — and therefore the output —
  // are a deterministic function of the values alone, independent of heap
  // mechanics, block boundaries, and thread count.
  runtime::parallel_for(0, query.rows(),
                        runtime::grain_for_cost(ref.rows() * query.cols()),
                        [&](std::size_t lo, std::size_t hi) {
    Workspace ws;
    std::vector<double> nq;
    // Bounded size-k max-heap (std::*_heap with the default pair ordering:
    // the root is the current worst survivor).
    std::vector<std::pair<double, std::size_t>> heap;
    heap.reserve(k);  // cnd-analyze: allow(hot-path-alloc) — once per chunk, bounded by k
    for (std::size_t q0 = lo; q0 < hi; q0 += kQueryBlock) {
      const std::size_t q1 = std::min(hi, q0 + kQueryBlock);
      Matrix& g = ws.mat(0, q1 - q0, ref.rows());
      matmul_bt_rows_into(g, query, q0, q1, ref);
      row_sq_norms(query, q0, q1, nq);
      for (std::size_t i = q0; i < q1; ++i) {
        auto gr = g.row(i - q0);
        heap.clear();
        for (std::size_t j = 0; j < ref.rows(); ++j) {
          if (exclude_self && j == i) continue;
          const double d2 = std::max(0.0, nq[i - q0] + nref[j] - 2.0 * gr[j]);
          const std::pair<double, std::size_t> cand{d2, j};
          if (heap.size() < k) {
            heap.push_back(cand);  // cnd-analyze: allow(hot-path-alloc) — within reserve(k) capacity
            std::push_heap(heap.begin(), heap.end());
          } else if (cand < heap.front()) {
            std::pop_heap(heap.begin(), heap.end());
            heap.back() = cand;
            std::push_heap(heap.begin(), heap.end());
          }
        }
        std::sort(heap.begin(), heap.end());
        auto& idx = out.indices[i];
        auto& dst = out.distances[i];
        idx.resize(k);
        dst.resize(k);
        for (std::size_t j = 0; j < k; ++j) {
          idx[j] = heap[j].second;
          dst[j] = std::sqrt(heap[j].first);
        }
      }
    }
  });
}

}  // namespace

// cnd-hot
void pairwise_sq_dist_into(Matrix& d2, const Matrix& a, const Matrix& b,
                           Workspace& ws) {
  auto& nb = ws.vec(1, b.rows());
  row_sq_norms(b, 0, b.rows(), nb);
  pairwise_sq_dist_impl(d2, a, b, nb, ws);
}

// cnd-hot
Matrix pairwise_dist(const Matrix& a, const Matrix& b) {
  Workspace ws;
  Matrix d;
  pairwise_sq_dist_into(d, a, b, ws);
  runtime::parallel_for(0, d.rows(), runtime::grain_for_cost(d.cols() * 8),
                        [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      for (double& v : d.row(i)) v = std::sqrt(v);
  });
  return d;
}

// cnd-hot
Knn knn(const Matrix& query, const Matrix& ref, std::size_t k, bool exclude_self) {
  std::vector<double> nref;
  row_sq_norms(ref, 0, ref.rows(), nref);
  Knn out;
  knn_impl(out, query, ref, nref, k, exclude_self);
  return out;
}

// cnd-hot
void nearest_centroid(const Matrix& x, const Matrix& cen,
                      std::vector<std::size_t>* assign,
                      std::vector<double>* d2_out) {
  std::vector<double> ncen;
  row_sq_norms(cen, 0, cen.rows(), ncen);
  runtime::parallel_for(0, x.rows(),
                        runtime::grain_for_cost(cen.rows() * x.cols()),
                        [&](std::size_t lo, std::size_t hi) {
    Workspace ws;
    std::vector<double> nx;
    for (std::size_t b0 = lo; b0 < hi; b0 += kRowBlock) {
      const std::size_t b1 = std::min(hi, b0 + kRowBlock);
      Matrix& g = ws.mat(0, b1 - b0, cen.rows());
      matmul_bt_rows_into(g, x, b0, b1, cen);
      row_sq_norms(x, b0, b1, nx);
      for (std::size_t i = b0; i < b1; ++i) {
        auto gr = g.row(i - b0);
        std::size_t best = 0;
        double bd = std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < cen.rows(); ++c) {
          const double d2 = std::max(0.0, nx[i - b0] + ncen[c] - 2.0 * gr[c]);
          if (d2 < bd) {
            bd = d2;
            best = c;
          }
        }
        if (assign) (*assign)[i] = best;
        if (d2_out) (*d2_out)[i] = bd;
      }
    }
  });
}

// ---- AnnConfig / NeighborProvider ------------------------------------------

// cnd-throw-ok(config validation — runs once at construction/bootstrap, never per batch)
void AnnConfig::validate() const {
  if (nprobe == 0) return;  // exact mode: the other knobs are inert.
  require(build_iters > 0, "AnnConfig: build_iters must be > 0");
}

// cnd-alloc-ok(bind is the train-time rebind — reference set, norms, and
// index are rebuilt once per experience, never on a scoring path)
void NeighborProvider::bind(Matrix ref, const AnnConfig& cfg) {
  require(!ref.empty(), "NeighborProvider: empty reference set");
  cfg.validate();
  ref_ = std::move(ref);
  cfg_ = cfg;
  row_sq_norms(ref_, 0, ref_.rows(), ref_norms_);
  if (cfg_.nprobe > 0) {
    auto ix = std::make_shared<IvfIndex>();
    ix->build_from(ref_, cfg_);
    index_ = std::move(ix);
  } else {
    index_.reset();
  }
}

void NeighborProvider::unbind() {
  ref_ = Matrix();
  cfg_ = AnnConfig{};
  ref_norms_.clear();
  index_.reset();
}

Knn NeighborProvider::knn(const Matrix& query, std::size_t k,
                          bool exclude_self) const {
  require(ready(), "NeighborProvider::knn: no reference set bound");
  require(!exclude_self || &query == &ref_,
          "NeighborProvider::knn: exclude_self requires querying ref() itself");
  Knn out;
  if (exact()) {
    knn_impl(out, query, ref_, ref_norms_, k, exclude_self);
  } else {
    index_->search(query, ref_, ref_norms_, k, cfg_.nprobe, exclude_self, out);
  }
  return out;
}

void NeighborProvider::pairwise_sq_dist(Matrix& d2, const Matrix& a,
                                        Workspace& ws) const {
  require(ready(), "NeighborProvider::pairwise_sq_dist: no reference set bound");
  pairwise_sq_dist_impl(d2, a, ref_, ref_norms_, ws);
}

}  // namespace cnd::linalg
