#include "linalg/ivf_index.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>

#include "runtime/parallel_for.hpp"
#include "tensor/assert.hpp"
#include "tensor/rng.hpp"

namespace cnd::linalg {

namespace {

// Shortlist headroom over k before the double re-rank. The float32 scan only
// has to get the true neighbours somewhere into the top 2k+8 of the probed
// clusters for recall to survive the precision drop; tests/test_ann.cpp and
// BENCH_ann.json hold the resulting recall@10 above threshold.
constexpr std::size_t kShortlistSlack = 8;

std::size_t auto_cluster_count(std::size_t rows) {
  const auto c = static_cast<std::size_t>(
      std::llround(std::sqrt(static_cast<double>(rows))));
  return std::clamp<std::size_t>(c, 1, rows);
}

}  // namespace

// Index construction: audited steady state — everything that grows here is
// a build-time buffer sized once from (rows, clusters, dim), annotated
// below; the per-iteration Lloyd loop itself allocates nothing after the
// first pass (Workspace-style reuse via sums/counts).
// cnd-hot
void IvfIndex::build_from(const Matrix& ref, const AnnConfig& cfg) {
  require(!ref.empty(), "IvfIndex::build_from: empty reference set");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  require(ref.rows() <= std::numeric_limits<std::uint32_t>::max(),  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
          "IvfIndex::build_from: reference set exceeds uint32 id range");
  cfg.validate();
  rows_ = ref.rows();
  dim_ = ref.cols();

  const std::size_t c_req =
      cfg.clusters > 0 ? std::min(cfg.clusters, rows_) : auto_cluster_count(rows_);

  // Seed the coarse centroids from a seeded permutation of the reference
  // rows: cheap, duplicate-free, and bit-identical at any thread count (the
  // index owns a private Rng stream — the caller's RNG, and therefore every
  // seeded golden result downstream, is untouched). Lloyd refinement below
  // does the actual shaping; k-means++ buys little for a coarse quantizer.
  Rng rng(cfg.seed);
  const std::vector<std::size_t> perm = rng.permutation(rows_);
  centroids_.resize(c_req, dim_);
  for (std::size_t c = 0; c < c_req; ++c)
    centroids_.set_row(c, ref.row(perm[c]));

  // Lloyd refinement: the assignment step is the SAME fused blocked kernel
  // K-Means uses (linalg::nearest_centroid); the update step accumulates
  // sums serially in ascending row order so the centroid values — and hence
  // the final posting lists — are independent of CND_THREADS. Empty clusters
  // keep their previous centroid and get compacted away after the final
  // assignment.
  std::vector<std::size_t> assign(rows_);
  Matrix sums;
  std::vector<std::size_t> counts;
  for (std::size_t it = 0; it < cfg.build_iters; ++it) {
    nearest_centroid(ref, centroids_, &assign, nullptr);
    sums.resize(c_req, dim_);
    std::fill(sums.data(), sums.data() + sums.size(), 0.0);
    counts.assign(c_req, 0);  // cnd-analyze: allow(hot-path-alloc) — build-time setup, bounded by C
    for (std::size_t i = 0; i < rows_; ++i) {
      auto s = sums.row(assign[i]);
      auto r = ref.row(i);
      for (std::size_t p = 0; p < dim_; ++p) s[p] += r[p];
      ++counts[assign[i]];
    }
    for (std::size_t c = 0; c < c_req; ++c) {
      if (counts[c] == 0) continue;  // keep the old centroid.
      auto s = sums.row(c);
      auto dst = centroids_.row(c);
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (std::size_t p = 0; p < dim_; ++p) dst[p] = s[p] * inv;
    }
  }

  // Final assignment against the refined centroids, then compact empty
  // clusters (order-preserving) so every posting block is non-empty.
  nearest_centroid(ref, centroids_, &assign, nullptr);
  counts.assign(c_req, 0);  // cnd-analyze: allow(hot-path-alloc) — build-time setup, bounded by C
  for (std::size_t i = 0; i < rows_; ++i) ++counts[assign[i]];
  std::vector<std::size_t> remap(c_req);
  std::size_t n_live = 0;
  for (std::size_t c = 0; c < c_req; ++c) {
    remap[c] = n_live;
    if (counts[c] > 0) ++n_live;
  }
  if (n_live < c_req) {
    Matrix packed(n_live, dim_);
    for (std::size_t c = 0; c < c_req; ++c)
      if (counts[c] > 0) packed.set_row(remap[c], centroids_.row(c));
    centroids_ = std::move(packed);
  }

  // Posting layout: offsets_ is the prefix sum of live-cluster sizes; the id
  // and float32 code blocks are filled by a single ascending-i pass, so ids
  // within each cluster come out ascending — the (d², id) total order the
  // search relies on needs no per-cluster sort.
  offsets_.assign(n_live + 1, 0);  // cnd-analyze: allow(hot-path-alloc) — build-time layout, bounded by C
  max_cluster_ = 0;
  for (std::size_t c = 0; c < c_req; ++c) {
    if (counts[c] == 0) continue;
    offsets_[remap[c] + 1] = counts[c];
    max_cluster_ = std::max(max_cluster_, counts[c]);
  }
  for (std::size_t c = 0; c < n_live; ++c) offsets_[c + 1] += offsets_[c];

  ids_.assign(rows_, 0);  // cnd-analyze: allow(hot-path-alloc) — build-time layout, bounded by N
  codes_.assign(rows_ * dim_, 0.0f);  // cnd-lint: allow(no-float)  cnd-analyze: allow(hot-path-alloc) — build-time layout, bounded by N x d
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t i = 0; i < rows_; ++i) {
    const std::size_t slot = cursor[remap[assign[i]]]++;
    ids_[slot] = static_cast<std::uint32_t>(i);
    kernels::cast_row_f32(ref.row(i), codes_.data() + slot * dim_);
  }
  code_norms_.assign(rows_, 0.0f);  // cnd-lint: allow(no-float)  cnd-analyze: allow(hot-path-alloc) — build-time layout, bounded by N
  kernels::sq_norms_f32(codes_.data(), rows_, dim_, code_norms_.data());
  kernels::row_sq_norms(centroids_, 0, centroids_.rows(), cen_norms_);
}

void IvfIndex::search(const Matrix& query, const Matrix& ref,
                      std::span<const double> ref_sq_norms, std::size_t k,
                      std::size_t nprobe, bool exclude_self, Knn& out,
                      Scratch* scratch) const {
  require(built(), "IvfIndex::search: index not built");
  require(query.cols() == dim_, "IvfIndex::search: feature mismatch");
  require(ref.rows() == rows_ && ref.cols() == dim_,
          "IvfIndex::search: ref is not the matrix this index was built from");
  require(ref_sq_norms.size() == rows_,
          "IvfIndex::search: ref_sq_norms size mismatch");
  require(k > 0, "IvfIndex::search: k must be > 0");
  require(nprobe > 0, "IvfIndex::search: nprobe must be > 0 (0 selects the "
                      "exact path in NeighborProvider)");
  const std::size_t avail = rows_ - (exclude_self ? 1 : 0);
  require(k <= avail, "IvfIndex::search: k larger than reference set");

  out.indices.resize(query.rows());
  out.distances.resize(query.rows());

  // Per-row results are a pure function of (query row, stored bytes): the
  // probe order, shortlist, and re-rank never look across rows, so chunk
  // boundaries and thread count cannot change anything.
  auto run = [&](std::size_t lo, std::size_t hi, Scratch& sc) {
    kernels::row_sq_norms(query, lo, hi, sc.nq);
    for (std::size_t i = lo; i < hi; ++i)
      search_row(query, i, ref, ref_sq_norms, sc.nq[i - lo], k, nprobe,
                 exclude_self, sc, out.indices[i], out.distances[i]);
  };
  if (scratch != nullptr) {
    // Serial steady state through caller-owned scratch: zero heap
    // allocations once the scratch is warm (tests/test_ann.cpp).
    run(0, query.rows(), *scratch);
    return;
  }
  runtime::parallel_for(
      0, query.rows(),
      runtime::grain_for_cost((n_clusters() + max_cluster_ * nprobe) * dim_),
      [&](std::size_t lo, std::size_t hi) {
        Scratch sc;
        run(lo, hi, sc);
      });
}

// One query row: exact centroid ranking, float32 scan of the probed posting
// blocks into a bounded shortlist, double re-rank of the shortlist. Probes
// walk the (centroid d², centroid id) order and keep going past nprobe while
// fewer than k candidates have been seen (k > cluster-size edge).
// cnd-hot
void IvfIndex::search_row(const Matrix& query, std::size_t i, const Matrix& ref,
                          std::span<const double> ref_sq_norms,
                          double query_sq_norm, std::size_t k,
                          std::size_t nprobe, bool exclude_self, Scratch& sc,
                          std::vector<std::size_t>& out_idx,
                          std::vector<double>& out_dist) const {
  const auto qrow = query.row(i);
  const std::size_t n_cen = n_clusters();

  // Rank every coarse centroid by its exact double distance (dot_canonical,
  // the same chain as a Gram element); ties break on centroid id via the
  // pair's lexicographic order.
  sc.probes.resize(n_cen);  // cnd-analyze: allow(hot-path-alloc) — scratch warm-up, bounded by C
  for (std::size_t c = 0; c < n_cen; ++c) {
    const double d2 = std::max(
        0.0, query_sq_norm + cen_norms_[c] -
                 2.0 * kernels::dot_canonical(qrow, centroids_.row(c)));
    sc.probes[c] = {d2, c};
  }
  std::sort(sc.probes.begin(), sc.probes.end());

  // Query row in float32 plus its float32 norm, matching the posting blocks'
  // own accumulation pattern.
  sc.qf.resize(dim_);  // cnd-analyze: allow(hot-path-alloc) — scratch warm-up, bounded by d
  kernels::cast_row_f32(qrow, sc.qf.data());
  // cnd-lint: allow(no-float) — float32 scan epilogue (docs/ANN.md)
  float qnf = 0.0f;
  kernels::sq_norms_f32(sc.qf.data(), 1, dim_, &qnf);
  sc.scan.resize(max_cluster_);  // cnd-analyze: allow(hot-path-alloc) — scratch warm-up, bounded by max cluster

  // Bounded max-heap over (float32 d² widened to double, id): a deterministic
  // total order, so the surviving shortlist is a pure function of the values.
  const std::size_t avail = rows_ - (exclude_self ? 1 : 0);
  const std::size_t cap = std::min(avail, 2 * k + kShortlistSlack);
  sc.shortlist.clear();
  sc.shortlist.reserve(cap);  // cnd-analyze: allow(hot-path-alloc) — scratch warm-up, bounded by 2k+8
  const std::size_t nprobe_eff = std::min(nprobe, n_cen);
  std::size_t seen = 0;
  for (std::size_t p = 0; p < n_cen && (p < nprobe_eff || seen < k); ++p) {
    const std::size_t c = sc.probes[p].second;
    const std::size_t base = offsets_[c];
    const std::size_t n = cluster_size(c);
    kernels::ivf_scan_f32(sc.qf.data(), qnf, codes_.data() + base * dim_,
                          code_norms_.data() + base, n, dim_, sc.scan.data());
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint32_t id = ids_[base + j];
      if (exclude_self && id == i) continue;
      ++seen;
      const std::pair<double, std::uint32_t> cand{
          static_cast<double>(sc.scan[j]), id};
      if (sc.shortlist.size() < cap) {
        sc.shortlist.push_back(cand);  // cnd-analyze: allow(hot-path-alloc) — within reserve(cap) capacity
        std::push_heap(sc.shortlist.begin(), sc.shortlist.end());
      } else if (cand < sc.shortlist.front()) {
        std::pop_heap(sc.shortlist.begin(), sc.shortlist.end());
        sc.shortlist.back() = cand;
        std::push_heap(sc.shortlist.begin(), sc.shortlist.end());
      }
    }
  }

  // Double re-rank: replace every shortlisted float32 distance with the
  // exact double value the brute-force kernel would produce for that pair,
  // then keep the k best under the exact (d², id) order. Reported distances
  // are therefore bit-identical to linalg::knn's for the same pairs.
  for (auto& [d2, id] : sc.shortlist)
    d2 = std::max(0.0, query_sq_norm + ref_sq_norms[id] -
                           2.0 * kernels::dot_canonical(qrow, ref.row(id)));
  std::sort(sc.shortlist.begin(), sc.shortlist.end());
  out_idx.resize(k);
  out_dist.resize(k);
  for (std::size_t j = 0; j < k; ++j) {
    out_idx[j] = sc.shortlist[j].second;
    out_dist[j] = std::sqrt(sc.shortlist[j].first);
  }
}

}  // namespace cnd::linalg
