// Statistical helpers shared by PCA, the scalers, and the data generators.
#pragma once

#include "tensor/matrix.hpp"

namespace cnd::linalg {

/// Sample covariance matrix (rows = observations). Uses ddof = 1 when
/// rows > 1, else ddof = 0. Result is cols x cols, exactly symmetric.
Matrix covariance(const Matrix& x);

/// Center the matrix by its column means; returns {centered, means}.
std::pair<Matrix, std::vector<double>> center(const Matrix& x);

/// Pearson correlation between two equal-length vectors. Returns 0 when
/// either vector is constant.
double pearson(std::span<const double> a, std::span<const double> b);

/// Quantile of a vector (linear interpolation), q in [0, 1].
double quantile(std::vector<double> v, double q);

/// Arithmetic mean of a vector.
double mean(std::span<const double> v);

/// Population standard deviation of a vector.
double stddev(std::span<const double> v);

}  // namespace cnd::linalg
