// IVF (inverted-file) coarse-quantized approximate-neighbor index
// (docs/ANN.md).
//
// Layout — the classic `centroids / cluster_id` pair of a coarse quantizer:
// a small matrix of coarse centroids trained by the same blocked K-Means
// assignment kernel the ml layer uses (linalg::nearest_centroid), plus one
// contiguous posting block per cluster holding the member row ids
// (ascending) and their vectors re-packed as float32. A query first ranks
// centroids by the exact fused distance kernel, scans the `nprobe` closest
// clusters' float32 blocks with the kernels-TU float32 scan to shortlist
// candidates, then RE-RANKS the shortlist in double via
// kernels::dot_canonical — so every distance that leaves the index is the
// bit-identical value the exact brute-force kernel would have produced for
// that pair. The float32 stage only decides WHICH candidates are considered.
//
// Determinism contract: build and search are bit-identical at any
// CND_THREADS. Training uses a private portable cnd::Rng stream and a serial
// centroid-update loop; per-query work is value-independent of chunk/block
// boundaries; candidates are totally ordered by (d², id); probes are ordered
// by (centroid d², centroid id) and expand past nprobe only when the probed
// clusters hold fewer than k candidates (the k > cluster-size edge case).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "linalg/distance.hpp"
#include "tensor/kernels.hpp"
#include "tensor/matrix.hpp"

namespace cnd::linalg {

class IvfIndex {
 public:
  /// Train the coarse quantizer on `ref` and build the posting blocks.
  /// Deterministic at any thread count. Empty clusters are compacted away,
  /// so n_clusters() can come out below the requested count.
  void build_from(const Matrix& ref, const AnnConfig& cfg);

  bool built() const { return !offsets_.empty(); }
  std::size_t rows() const { return rows_; }
  std::size_t dim() const { return dim_; }
  std::size_t n_clusters() const { return centroids_.rows(); }
  std::size_t cluster_size(std::size_t c) const {
    return offsets_[c + 1] - offsets_[c];
  }
  std::size_t max_cluster_size() const { return max_cluster_; }
  const Matrix& centroids() const { return centroids_; }
  /// Member row ids of cluster c, ascending.
  std::span<const std::uint32_t> cluster_ids(std::size_t c) const {
    return {ids_.data() + offsets_[c], cluster_size(c)};
  }

  /// Per-query scratch for the probe loop. After two warm-up searches with
  /// the same shapes, a scratch-driven search performs zero heap
  /// allocations (tests/test_ann.cpp holds it to that with a counting
  /// operator new).
  struct Scratch {
    Workspace ws;                                        ///< centroid Gram.
    std::vector<double> nq;                              ///< query norms.
    std::vector<std::pair<double, std::size_t>> probes;  ///< (cen d², cen id).
    // cnd-lint: allow(no-float) — float32 probe-scan buffers (docs/ANN.md)
    std::vector<float> qf;    ///< query row cast to float32.
    // cnd-lint: allow(no-float) — float32 probe-scan buffers (docs/ANN.md)
    std::vector<float> scan;  ///< per-cluster scan output.
    std::vector<std::pair<double, std::uint32_t>> shortlist;  ///< (d², id).
  };

  /// Approximate k-nearest-neighbour search of every row of `query` against
  /// the matrix this index was built from, which the caller passes back as
  /// `ref` together with its double row norms (the NeighborProvider caches
  /// both) for the double re-rank. With `scratch` non-null the search runs
  /// serially through that scratch (the zero-allocation steady state);
  /// otherwise query chunks run in parallel with per-chunk scratch. Results
  /// are identical either way.
  void search(const Matrix& query, const Matrix& ref,
              std::span<const double> ref_sq_norms, std::size_t k,
              std::size_t nprobe, bool exclude_self, Knn& out,
              Scratch* scratch = nullptr) const;

 private:
  void search_row(const Matrix& query, std::size_t i, const Matrix& ref,
                  std::span<const double> ref_sq_norms, double query_sq_norm,
                  std::size_t k, std::size_t nprobe, bool exclude_self,
                  Scratch& sc, std::vector<std::size_t>& out_idx,
                  std::vector<double>& out_dist) const;

  std::size_t rows_ = 0;
  std::size_t dim_ = 0;
  std::size_t max_cluster_ = 0;
  Matrix centroids_;                     ///< coarse centroids (double).
  std::vector<double> cen_norms_;        ///< ||centroid||², kernels pattern.
  std::vector<std::size_t> offsets_;     ///< per-cluster ranges, size C+1.
  std::vector<std::uint32_t> ids_;       ///< concatenated member row ids.
  // cnd-lint: allow(no-float) — float32 posting blocks (docs/ANN.md)
  std::vector<float> codes_;             ///< concatenated float32 vectors.
  // cnd-lint: allow(no-float) — float32 posting blocks (docs/ANN.md)
  std::vector<float> code_norms_;        ///< float32 ||row||² per stored row.
};

}  // namespace cnd::linalg
