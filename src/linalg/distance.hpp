// Pairwise distances and k-nearest-neighbour queries (brute force).
//
// LOF, K-Means diagnostics, and the triplet miner all need distances; at the
// dataset sizes this repository runs (tens of thousands of rows, tens of
// features) brute force is the right tool. The distance computation itself
// is GEMM-shaped: d²(i, j) = ||a_i||² + ||b_j||² − 2·a_i·b_j with the cross
// term produced by the register-blocked Gram kernel (tensor/kernels.hpp),
// clamped at 0 against cancellation. Row norms accumulate in the same
// canonical p-ascending order as the Gram kernel, so a point's distance to
// itself is exactly 0.0.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/kernels.hpp"
#include "tensor/matrix.hpp"

namespace cnd::linalg {

/// Fused squared-distance matrix between rows of a and rows of b, written
/// into `d2` (resized in place; also serves as the Gram buffer, so the only
/// extra scratch is the two norm vectors in `ws`). Values are clamped at 0.
void pairwise_sq_dist_into(Matrix& d2, const Matrix& a, const Matrix& b,
                           Workspace& ws);

/// Full pairwise Euclidean distance matrix between rows of a and rows of b.
Matrix pairwise_dist(const Matrix& a, const Matrix& b);

/// Indices (and distances) of the k nearest rows of `ref` for each row of
/// `query`, excluding self-matches when `exclude_self` (which requires
/// query and ref to be the same object). Neighbours are ordered by
/// ascending distance with deterministic index-ascending tie-breaking.
struct Knn {
  std::vector<std::vector<std::size_t>> indices;  ///< per query row, size k.
  std::vector<std::vector<double>> distances;     ///< matching Euclidean dists.
};
Knn knn(const Matrix& query, const Matrix& ref, std::size_t k, bool exclude_self);

}  // namespace cnd::linalg
