// Pairwise distances and k-nearest-neighbour queries (brute force).
//
// LOF, K-Means diagnostics, and the triplet miner all need distances; at the
// dataset sizes this repository runs (tens of thousands of rows, tens of
// features) brute force is the right tool.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/matrix.hpp"

namespace cnd::linalg {

/// Full pairwise Euclidean distance matrix between rows of a and rows of b.
Matrix pairwise_dist(const Matrix& a, const Matrix& b);

/// Indices (and distances) of the k nearest rows of `ref` for each row of
/// `query`, excluding exact self-matches when `exclude_self` and the two
/// matrices are the same object.
struct Knn {
  std::vector<std::vector<std::size_t>> indices;  ///< per query row, size k.
  std::vector<std::vector<double>> distances;     ///< matching Euclidean dists.
};
Knn knn(const Matrix& query, const Matrix& ref, std::size_t k, bool exclude_self);

}  // namespace cnd::linalg
