// Pairwise distances and k-nearest-neighbour queries (brute force).
//
// LOF, K-Means diagnostics, and the triplet miner all need distances; at the
// dataset sizes this repository runs (tens of thousands of rows, tens of
// features) brute force is the right tool. The distance computation itself
// is GEMM-shaped: d²(i, j) = ||a_i||² + ||b_j||² − 2·a_i·b_j with the cross
// term produced by the register-blocked Gram kernel (tensor/kernels.hpp),
// clamped at 0 against cancellation. Row norms accumulate in the same
// canonical p-ascending order as the Gram kernel, so a point's distance to
// itself is exactly 0.0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/kernels.hpp"
#include "tensor/matrix.hpp"

namespace cnd::linalg {

/// Fused squared-distance matrix between rows of a and rows of b, written
/// into `d2` (resized in place; also serves as the Gram buffer, so the only
/// extra scratch is the two norm vectors in `ws`). Values are clamped at 0.
void pairwise_sq_dist_into(Matrix& d2, const Matrix& a, const Matrix& b,
                           Workspace& ws);

/// Full pairwise Euclidean distance matrix between rows of a and rows of b.
Matrix pairwise_dist(const Matrix& a, const Matrix& b);

/// Indices (and distances) of the k nearest rows of `ref` for each row of
/// `query`, excluding self-matches when `exclude_self` (which requires
/// query and ref to be the same object). Neighbours are ordered by
/// ascending distance with deterministic index-ascending tie-breaking.
struct Knn {
  std::vector<std::vector<std::size_t>> indices;  ///< per query row, size k.
  std::vector<std::vector<double>> distances;     ///< matching Euclidean dists.
};
Knn knn(const Matrix& query, const Matrix& ref, std::size_t k, bool exclude_self);

/// Fused blocked nearest-centroid pass (the K-Means assignment step, hoisted
/// here so the IVF index below can train with the identical kernel): blocked
/// Gram product of x row slices against the centroid matrix, d² = ||x||² +
/// ||c||² − 2·x·c clamped at 0, argmin scanning centroids in ascending index
/// with strict < (ties go to the smallest index, matching a scalar linear
/// scan). Fills assign[i] and/or d2_out[i] when non-null (both sized
/// x.rows() by the caller). Deterministic at any thread count: each (i, c)
/// value is independent of chunk and block boundaries.
void nearest_centroid(const Matrix& x, const Matrix& cen,
                      std::vector<std::size_t>* assign,
                      std::vector<double>* d2_out);

// ---- Approximate-neighbor seam (docs/ANN.md) -------------------------------

/// Knobs for the IVF approximate-neighbor path. The default (nprobe = 0)
/// means EXACT brute force — the executable contract, same pattern as the
/// naive reference kernels — so every neighbor-driven detector behaves
/// byte-identically to the pre-ANN tree unless a caller opts in.
struct AnnConfig {
  /// Coarse clusters scanned per query; 0 = exact brute force (default).
  std::size_t nprobe = 0;
  /// Coarse centroid count for the index; 0 = auto (≈ √N, clamped to [1, N]).
  std::size_t clusters = 0;
  /// Lloyd refinement passes when training the coarse quantizer.
  std::size_t build_iters = 8;
  /// Seed for the index's private RNG stream (portable cnd::Rng), so builds
  /// are bit-identical at any thread count.
  std::uint64_t seed = 0x1df5eedULL;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

class IvfIndex;

/// NeighborProvider: the one seam every repeated-neighbor-query path (LOF,
/// the kNN detector, K-Means assignment, CND-IDS pseudo-labeling) goes
/// through. It owns the reference matrix, caches its kernels::row_sq_norms
/// once per reset (LOF used to recompute them on every score call), and —
/// when AnnConfig::nprobe > 0 — builds and holds an IVF index over it.
/// Exact mode routes to the same brute-force kernel as linalg::knn, so its
/// results are bit-identical to a direct call.
class NeighborProvider {
 public:
  /// Take ownership of the reference set; recompute cached norms; build the
  /// IVF index iff cfg.nprobe > 0. Validates cfg.
  void bind(Matrix ref, const AnnConfig& cfg = {});
  void unbind();

  bool ready() const { return !ref_.empty(); }
  bool exact() const { return cfg_.nprobe == 0; }
  const Matrix& ref() const { return ref_; }
  const AnnConfig& config() const { return cfg_; }
  /// Cached ||ref_i||² in the kernels-TU accumulation pattern.
  const std::vector<double>& ref_sq_norms() const { return ref_norms_; }
  /// Non-null iff an ANN index is active.
  const IvfIndex* index() const { return index_.get(); }

  /// k nearest reference rows per query row. exclude_self requires `query`
  /// to be this provider's own ref() object (same contract as linalg::knn).
  /// Exact mode is bit-identical to linalg::knn(query, ref(), k, ...).
  Knn knn(const Matrix& query, std::size_t k, bool exclude_self) const;

  /// Fused squared distances of `a` against the owned reference set, using
  /// the cached reference norms (d2 gets a.rows() x ref().rows(); values
  /// bit-identical to pairwise_sq_dist_into against ref()).
  void pairwise_sq_dist(Matrix& d2, const Matrix& a, Workspace& ws) const;

 private:
  Matrix ref_;
  AnnConfig cfg_;
  std::vector<double> ref_norms_;
  std::shared_ptr<const IvfIndex> index_;  ///< shared: providers are copyable.
};

}  // namespace cnd::linalg
