// Thin singular value decomposition.
//
// Computed from the eigendecomposition of the smaller Gram matrix (A^T A or
// A A^T), which is accurate enough for the well-conditioned, low-dimensional
// problems in this repository (PCA bases, whitening).
#pragma once

#include "tensor/matrix.hpp"

namespace cnd::linalg {

struct SvdResult {
  Matrix u;                    ///< m x r, orthonormal columns.
  std::vector<double> sigma;   ///< r singular values, descending.
  Matrix v;                    ///< n x r, orthonormal columns (A = U S V^T).
};

/// Thin SVD of a (m x n). r = min(m, n); singular values below
/// `rank_tol * sigma_max` are dropped along with their vectors. The default
/// tolerance reflects the Gram-matrix route: eigenvalues carry ~1e-14
/// relative error, so singular values are trustworthy to ~1e-7 relative.
SvdResult svd_thin(const Matrix& a, double rank_tol = 1e-7);

}  // namespace cnd::linalg
