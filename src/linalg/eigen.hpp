// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// Sufficient for the covariance matrices PCA works on (dimension = feature
// count or autoencoder latent width, i.e. tens), where Jacobi is simple,
// numerically robust, and produces orthonormal eigenvectors.
#pragma once

#include "tensor/matrix.hpp"

namespace cnd::linalg {

struct EigenResult {
  /// Eigenvalues sorted descending.
  std::vector<double> values;
  /// Column j of `vectors` is the unit eigenvector for values[j].
  Matrix vectors;
};

/// Eigendecomposition of a symmetric matrix `a` (n x n). Throws if `a` is not
/// square or departs from symmetry by more than `sym_tol` (relative).
EigenResult eigen_symmetric(const Matrix& a, double sym_tol = 1e-8,
                            int max_sweeps = 100);

}  // namespace cnd::linalg
