#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/assert.hpp"
#include "tensor/check.hpp"

namespace cnd::linalg {

EigenResult eigen_symmetric(const Matrix& a, double sym_tol, int max_sweeps) {
  require(a.rows() == a.cols(), "eigen_symmetric: matrix must be square");
  const std::size_t n = a.rows();
  require(n > 0, "eigen_symmetric: empty matrix");

  // Symmetry check, relative to the matrix scale.
  double scale = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) scale = std::max(scale, std::abs(a(i, j)));
  const double tol = sym_tol * std::max(scale, 1.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      require(std::abs(a(i, j) - a(j, i)) <= tol, "eigen_symmetric: matrix not symmetric");

  Matrix d = a;       // Working copy, driven to diagonal.
  Matrix v = identity(n);  // Accumulated rotations.

  const double conv_eps = 1e-14 * std::max(scale, 1.0);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += d(p, q) * d(p, q);
    if (std::sqrt(off) <= conv_eps) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::abs(apq) <= conv_eps) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Apply rotation J(p,q,theta) on both sides of d: d = J^T d J.
        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        // Accumulate eigenvectors: v = v J.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs descending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = d(i, i);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return diag[x] > diag[y]; });

  EigenResult res;
  res.values.resize(n);
  res.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    res.values[j] = diag[order[j]];
    for (std::size_t i = 0; i < n; ++i) res.vectors(i, j) = v(i, order[j]);
  }
  // A non-finite input slips past the symmetry check (NaN compares false);
  // catch it where the rotation sweeps would have amplified it.
  CND_DCHECK_ALL_FINITE(std::span<const double>(res.values),
                        "eigen_symmetric: non-finite eigenvalue");
  CND_DCHECK_ALL_FINITE(res.vectors, "eigen_symmetric: non-finite eigenvector");
  return res;
}

}  // namespace cnd::linalg
