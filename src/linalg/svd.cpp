#include "linalg/svd.hpp"

#include <cmath>

#include "linalg/eigen.hpp"
#include "tensor/assert.hpp"
#include "tensor/check.hpp"

namespace cnd::linalg {

SvdResult svd_thin(const Matrix& a, double rank_tol) {
  require(a.rows() > 0 && a.cols() > 0, "svd_thin: empty matrix");
  const bool tall = a.rows() >= a.cols();

  // Eigendecompose the smaller Gram matrix.
  const Matrix gram = tall ? matmul_at(a, a) : matmul_bt(a, a);
  EigenResult eig = eigen_symmetric(gram);

  const std::size_t r_full = gram.rows();
  std::vector<double> sigma;
  sigma.reserve(r_full);
  const double smax = std::sqrt(std::max(eig.values.empty() ? 0.0 : eig.values[0], 0.0));
  std::size_t r = 0;
  for (std::size_t i = 0; i < r_full; ++i) {
    const double s = std::sqrt(std::max(eig.values[i], 0.0));
    if (s <= rank_tol * std::max(smax, 1e-300)) break;
    sigma.push_back(s);
    ++r;
  }
  require(r > 0, "svd_thin: matrix is numerically zero");

  SvdResult out;
  out.sigma = std::move(sigma);
  if (tall) {
    // gram = A^T A, eigenvectors are V. U = A V / sigma.
    out.v = Matrix(a.cols(), r);
    for (std::size_t i = 0; i < a.cols(); ++i)
      for (std::size_t j = 0; j < r; ++j) out.v(i, j) = eig.vectors(i, j);
    Matrix av = matmul(a, out.v);
    out.u = Matrix(a.rows(), r);
    for (std::size_t j = 0; j < r; ++j)
      for (std::size_t i = 0; i < a.rows(); ++i) out.u(i, j) = av(i, j) / out.sigma[j];
  } else {
    // gram = A A^T, eigenvectors are U. V = A^T U / sigma.
    out.u = Matrix(a.rows(), r);
    for (std::size_t i = 0; i < a.rows(); ++i)
      for (std::size_t j = 0; j < r; ++j) out.u(i, j) = eig.vectors(i, j);
    Matrix atv = matmul_at(a, out.u);
    out.v = Matrix(a.cols(), r);
    for (std::size_t j = 0; j < r; ++j)
      for (std::size_t i = 0; i < a.cols(); ++i) out.v(i, j) = atv(i, j) / out.sigma[j];
  }
  // sigma[j] > 0 is guaranteed by the rank cutoff above; the divisions can
  // still blow up if the Gram eigenbasis degenerated.
  CND_DCHECK_ALL_FINITE(out.u, "svd_thin: non-finite left singular vectors");
  CND_DCHECK_ALL_FINITE(out.v, "svd_thin: non-finite right singular vectors");
  return out;
}

}  // namespace cnd::linalg
