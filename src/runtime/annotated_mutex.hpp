// Annotated mutex, scoped lock, and condition variable wrappers
// (docs/STATIC_ANALYSIS.md, "Concurrency contracts").
//
// std::mutex carries no thread-safety annotations, so Clang's analysis
// cannot connect a std::lock_guard to the fields it protects. These three
// wrappers close that gap: AnnotatedMutex is a CND_CAPABILITY the analysis
// tracks, MutexLock is the only sanctioned way to hold one (cnd_lint's
// no-naked-mutex rule bans raw std::mutex/std::lock_guard outside this
// header), and CondVar waits through the MutexLock so the capability
// bookkeeping survives the sleep. The wrappers add zero overhead over the
// std primitives they delegate to; the annotations compile away entirely
// outside Clang (tensor/thread_annotations.hpp).
//
// Like the annotation macro header, this file is layer-neutral by declared
// exemption: src/obs (the bottom layer) guards its registries with it, so
// it must not itself depend on anything above the standard library.
//
// Condition-variable idiom: Clang's analysis cannot see that wait()
// releases and reacquires the mutex, so predicates must be written as
// explicit while-loops in the caller — where the analysis correctly treats
// the guarded fields as protected — never as wait(lock, pred) lambdas:
//
//   MutexLock lk(mutex_);
//   while (!ready_) cv_.wait(lk);   // ready_ is CND_GUARDED_BY(mutex_)
#pragma once

#include <condition_variable>  // cnd-lint: allow(no-naked-mutex)
#include <mutex>

#include "tensor/thread_annotations.hpp"

namespace cnd::runtime {

/// std::mutex promoted to a Clang thread-safety capability. Fields guarded
/// by one declare it with CND_GUARDED_BY(that_mutex).
class CND_CAPABILITY("mutex") AnnotatedMutex {
 public:
  AnnotatedMutex() = default;
  AnnotatedMutex(const AnnotatedMutex&) = delete;
  AnnotatedMutex& operator=(const AnnotatedMutex&) = delete;

  void lock() CND_ACQUIRE() { mu_.lock(); }
  void unlock() CND_RELEASE() { mu_.unlock(); }
  bool try_lock() CND_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;  // cnd-lint: allow(no-naked-mutex) — the wrapper's own storage
};

/// RAII lock over an AnnotatedMutex; the capability is held for the
/// object's whole lifetime. The lock()/unlock() pair exists only so
/// CondVar::wait can release and reacquire around the sleep — the lock is
/// always held again when wait returns, so the destructor's release is
/// unconditional.
class CND_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(AnnotatedMutex& mu) CND_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CND_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // BasicLockable surface for CondVar::wait only.
  void lock() CND_ACQUIRE() { mu_.lock(); }
  void unlock() CND_RELEASE() { mu_.unlock(); }

 private:
  AnnotatedMutex& mu_;
};

/// Condition variable waiting through a MutexLock. wait() must be called
/// with the lock held and in a while-loop re-checking the guarded
/// predicate (see the header comment); notify_* never needs the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `lock`, sleep until notified, reacquire. Spurious
  /// wakeups happen; callers loop on their predicate.
  void wait(MutexLock& lock) { cv_.wait(lock); }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;  // cnd-lint: allow(no-naked-mutex) — the wrapper's own storage
};

}  // namespace cnd::runtime
