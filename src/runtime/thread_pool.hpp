// Fixed-size thread pool and global thread-count configuration.
//
// This is the parallel compute substrate for the whole repository: matmul,
// detector batch scoring, tree-ensemble fitting, and the bench fan-outs all
// distribute work through it (via parallel_for.hpp). The design is
// deliberately minimal — a fixed set of std::thread workers pulling chunk
// indices from one job at a time, no work stealing, no task graph — because
// the hot paths are all flat index ranges and the repository's determinism
// contract (docs/PARALLELISM.md) forbids anything whose output depends on
// scheduling order.
//
// Threading contract in one line: work is partitioned by index, every index
// runs exactly once, and no hot path changes its per-index floating-point
// arithmetic based on the thread count — so outputs are bit-identical for
// any CND_THREADS, and CND_THREADS=1 is a true serial fallback.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "runtime/annotated_mutex.hpp"

namespace cnd::runtime {

/// Fixed set of worker threads executing one chunked job at a time. The
/// calling thread participates in every job, so a pool of W workers gives
/// W + 1 execution lanes. Use through parallel_for unless you need direct
/// control (tests do).
class ThreadPool {
 public:
  /// Spawns `n_workers` (>= 1) threads immediately; they idle on a condition
  /// variable until run() is called.
  explicit ThreadPool(std::size_t n_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t n_workers() const { return workers_.size(); }

  /// Execute chunk_fn(c) for every c in [0, n_chunks), distributing chunks
  /// over the workers plus the calling thread. Blocks until every chunk has
  /// finished (even if some threw); the first exception raised by any chunk
  /// is rethrown here. Safe to call concurrently from multiple threads
  /// (calls are serialized). A chunk function calling run() again on the
  /// same pool would deadlock — parallel_for prevents this by running
  /// nested regions serially.
  void run(std::size_t n_chunks, const std::function<void(std::size_t)>& chunk_fn);

 private:
  struct Job;
  void worker_loop(std::size_t worker_index);
  /// Pull chunks until the job is drained. `lane` identifies the executing
  /// thread for telemetry only (0 = calling thread, 1..W = workers).
  void work_on(Job& job, std::size_t lane);

  std::vector<std::thread> workers_;
  /// Guards job_, epoch_, stop_, and the Job bookkeeping fields
  /// (Job::workers_inside / Job::error — a nested struct cannot name its
  /// owning pool's mutex in an annotation, so those two stay prose-guarded).
  AnnotatedMutex mutex_;
  CondVar cv_work_;  // workers wait here for a new job
  CondVar cv_done_;  // run() waits here for completion
  /// Serializes concurrent run() callers; always taken before mutex_ (the
  /// declared order lets Clang flag an inversion at compile time).
  AnnotatedMutex run_mutex_ CND_ACQUIRED_BEFORE(mutex_);
  Job* job_ CND_GUARDED_BY(mutex_) = nullptr;
  /// Bumped per job so workers join each job exactly once.
  std::uint64_t epoch_ CND_GUARDED_BY(mutex_) = 0;
  bool stop_ CND_GUARDED_BY(mutex_) = false;
};

/// Effective lane count (caller + workers) used by parallel_for; always
/// >= 1. Initialized on first use from CND_THREADS if set (positive
/// integer), else std::thread::hardware_concurrency().
std::size_t threads();

/// Override the lane count. n = 0 resets to the default (CND_THREADS env or
/// hardware concurrency). n = 1 disables parallelism entirely — the serial
/// fallback. The shared pool is torn down and lazily rebuilt at the new
/// size; do not call concurrently with in-flight parallel_for work.
void set_threads(std::size_t n);

/// True on a thread currently executing parallel_for chunks (worker or
/// participating caller). parallel_for consults this to run nested calls
/// serially instead of deadlocking on the shared pool.
bool in_parallel_region();

namespace detail {
/// Shared pool sized threads() - 1, created lazily. Only called when
/// threads() > 1.
ThreadPool& shared_pool();
}  // namespace detail

}  // namespace cnd::runtime
