#include "runtime/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>

#include "obs/metrics.hpp"

namespace cnd::runtime {

namespace {

thread_local bool t_in_region = false;

/// RAII flag so nested parallel_for calls detect they are already inside a
/// parallel region and fall back to serial execution.
struct RegionGuard {
  bool prev;
  RegionGuard() : prev(t_in_region) { t_in_region = true; }
  ~RegionGuard() { t_in_region = prev; }
};

std::size_t default_threads() {
  if (const char* env = std::getenv("CND_THREADS")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) return static_cast<std::size_t>(v);
    // Malformed or zero CND_THREADS falls through to the hardware default
    // rather than aborting the process.
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

AnnotatedMutex g_config_mutex;
std::size_t g_threads CND_GUARDED_BY(g_config_mutex) = 0;  // 0 = not yet initialized
std::unique_ptr<ThreadPool> g_pool CND_GUARDED_BY(g_config_mutex);

}  // namespace

struct ThreadPool::Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n_chunks = 0;
  std::atomic<std::size_t> next{0};   // next unclaimed chunk
  std::atomic<std::size_t> done{0};   // finished chunks
  std::size_t workers_inside = 0;     // guarded by pool mutex_
  std::exception_ptr error;           // first failure; guarded by pool mutex_
};

ThreadPool::ThreadPool(std::size_t n_workers) {
  if (n_workers == 0) n_workers = 1;
  workers_.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::work_on(Job& job, std::size_t lane) {
  // Telemetry is strictly write-only (docs/OBSERVABILITY.md): it never feeds
  // back into chunk assignment or arithmetic, so the determinism contract is
  // untouched. The clock is only read when observability is on.
  const bool timed = obs::enabled();
  const auto t0 = timed ? std::chrono::steady_clock::now()  // cnd-lint: allow(no-clock) cnd-det-ok(obs-gated lane telemetry — never feeds chunk assignment or results)
                        : std::chrono::steady_clock::time_point{};
  std::size_t executed = 0;

  RegionGuard region;
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.n_chunks) break;
    try {
      (*job.fn)(c);
    } catch (...) {
      MutexLock lk(mutex_);
      if (!job.error) job.error = std::current_exception();
    }
    ++executed;
    job.done.fetch_add(1, std::memory_order_release);
  }

  if (executed > 0)
    obs::metrics().counter("runtime.tasks_total").add(executed);
  if (timed) {
    const double busy_ms = std::chrono::duration<double, std::milli>(
                               // cnd-lint: allow(no-clock) cnd-det-ok(obs-gated lane telemetry — never feeds chunk assignment or results)
                               std::chrono::steady_clock::now() - t0)
                               .count();
    obs::metrics().gauge("runtime.lane_busy_ms." + std::to_string(lane)).add(busy_ms);
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Job* job = nullptr;
    {
      MutexLock lk(mutex_);
      // Explicit predicate loop (not wait(lk, pred)): the guarded reads must
      // sit in this function's scope for the thread-safety analysis.
      while (!stop_ && !(job_ != nullptr && epoch_ != seen_epoch)) cv_work_.wait(lk);
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
      ++job->workers_inside;
    }
    // Lane 0 is the calling thread; workers are lanes 1..W.
    work_on(*job, worker_index + 1);
    {
      MutexLock lk(mutex_);
      --job->workers_inside;
      if (job->workers_inside == 0 &&
          job->done.load(std::memory_order_acquire) == job->n_chunks)
        cv_done_.notify_all();
    }
  }
}

// cnd-alloc-ok(job bookkeeping + obs metric names; the chunk fn itself is scanned at its definition site)
void ThreadPool::run(std::size_t n_chunks,
                     const std::function<void(std::size_t)>& chunk_fn) {
  if (n_chunks == 0) return;
  MutexLock serialize(run_mutex_);

  {
    obs::MetricsRegistry& m = obs::metrics();
    m.counter("runtime.jobs_total").add(1);
    m.counter("runtime.chunks_total").add(n_chunks);
    m.gauge("runtime.queue_depth_hwm").record_max(static_cast<double>(n_chunks));
  }

  Job job;
  job.fn = &chunk_fn;
  job.n_chunks = n_chunks;
  {
    MutexLock lk(mutex_);
    job_ = &job;
    ++epoch_;
  }
  cv_work_.notify_all();

  work_on(job, /*lane=*/0);  // the caller is a lane too

  // Wait until every chunk is done AND every worker has left work_on —
  // only then is it safe to pop `job` off this stack frame.
  {
    MutexLock lk(mutex_);
    while (!(job.done.load(std::memory_order_acquire) == n_chunks &&
             job.workers_inside == 0))
      cv_done_.wait(lk);
    job_ = nullptr;
  }

  if (job.error) std::rethrow_exception(job.error);
}

// cnd-block-ok(bounded O(1) config read under g_config_mutex; never waits)
std::size_t threads() {
  MutexLock lk(g_config_mutex);
  if (g_threads == 0) g_threads = default_threads();
  return g_threads;
}

void set_threads(std::size_t n) {
  MutexLock lk(g_config_mutex);
  g_threads = n ? n : default_threads();
  g_pool.reset();  // rebuilt lazily at the new size
}

bool in_parallel_region() { return t_in_region; }

namespace detail {

// cnd-alloc-ok(lazily (re)builds the process-wide pool when the lane count changes)
ThreadPool& shared_pool() {
  const std::size_t lanes = threads();
  MutexLock lk(g_config_mutex);
  if (!g_pool || g_pool->n_workers() != lanes - 1)
    g_pool = std::make_unique<ThreadPool>(lanes - 1);
  return *g_pool;
}

}  // namespace detail

}  // namespace cnd::runtime
