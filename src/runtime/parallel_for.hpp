// parallel_for: deterministic range parallelism over the shared ThreadPool.
//
// The single entry point the hot paths use. Work is partitioned into
// contiguous index chunks; a worker (or the calling thread) executes
// fn(lo, hi) over each chunk. Because the partition is by index and fn is
// handed a contiguous range, the per-index arithmetic — including
// floating-point accumulation order within a row/sample — is exactly the
// code the serial path runs, so outputs are bit-identical at every thread
// count (the determinism contract, docs/PARALLELISM.md). With threads() == 1,
// a range not worth splitting, or when already inside a parallel region,
// fn(begin, end) is invoked inline: a true serial fallback.
#pragma once

#include <algorithm>
#include <cstddef>

#include "runtime/thread_pool.hpp"

namespace cnd::runtime {

/// Grain (indices per task) sized so each task carries at least ~`target`
/// floating-point operations; `cost_per_index` is the approximate flop count
/// of one index. Doubles as the serial small-problem cutoff: parallel_for
/// runs ranges of at most one grain inline.
inline std::size_t grain_for_cost(std::size_t cost_per_index,
                                  std::size_t target = 32768) {
  if (cost_per_index == 0) cost_per_index = 1;
  return std::max<std::size_t>(1, target / cost_per_index);
}

/// Run fn(lo, hi) over a disjoint cover of [begin, end), in parallel when
/// profitable. fn must be safe to invoke concurrently on disjoint ranges
/// (i.e. write only to per-index slots). Exceptions thrown by fn are
/// rethrown in the caller after all chunks finish. Nested calls (fn itself
/// calling parallel_for) execute serially inline.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain, Fn&& fn) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  if (grain == 0) grain = 1;

  const std::size_t lanes = threads();
  if (lanes <= 1 || n <= grain || in_parallel_region()) {
    fn(begin, end);
    return;
  }

  // Mild over-decomposition (4 chunks per lane) for load balance; the chunk
  // size never drops below the grain so tiny tasks are not worth stealing.
  const std::size_t chunk =
      std::max(grain, (n + 4 * lanes - 1) / (4 * lanes));
  const std::size_t n_chunks = (n + chunk - 1) / chunk;
  if (n_chunks <= 1) {
    fn(begin, end);
    return;
  }

  detail::shared_pool().run(n_chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    fn(lo, hi);
  });
}

}  // namespace cnd::runtime
