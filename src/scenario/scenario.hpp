// Avalanche-style continual-learning scenarios (docs/SCENARIOS.md).
//
// A Scenario turns one labeled dataset into an ordered stream of Experience
// batches — the same data::ExperienceSet every detector and bench already
// consumes — but controls *what changes* between experiences:
//
//   class-incremental    new attack families per experience (paper §III-A)
//   domain-incremental   all families everywhere; the input distribution
//                        shifts further with every experience
//   task-free-recurring  all families everywhere; two domain regimes
//                        alternate A/B/A/B with no novel task boundary
//   contamination-ramp   paper family split; the unlabeled training stream
//                        carries a rising share of attack rows
//
// Every generator is deterministic under the portable cnd::Rng streams:
// the same (dataset, options) pair replays bit-identically at any thread
// count (tests/test_scenario.cpp pins this).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "data/experiences.hpp"

namespace cnd::scenario {

struct ScenarioOptions {
  std::size_t n_experiences = 5;  ///< m.
  std::uint64_t seed = 7;
  /// Domain-shift endpoint for the drifting scenarios: the mean of the
  /// final regime moves this far (in post-z-score units) along a seeded
  /// random unit direction.
  double drift_magnitude = 4.0;
  /// Contamination endpoint: the share of the *last* experience's training
  /// stream swapped for attack rows in the contamination-ramp scenario.
  double max_contamination = 0.30;
  double clean_frac = 0.10;  ///< |N_c| / |N| (paper: 10%).
  double train_frac = 0.70;  ///< train/test split within an experience.

  /// Check every field; throws std::invalid_argument naming the offending
  /// one. Called by every Scenario::build.
  void validate() const;
};

/// One scenario generator. Implementations are stateless: build() derives
/// everything from (dataset, options), so a Scenario can be shared freely.
class Scenario {
 public:
  virtual ~Scenario() = default;

  /// Registry name, e.g. "domain-incremental".
  virtual std::string name() const = 0;

  /// One-line description for CLI/bench listings.
  virtual std::string summary() const = 0;

  /// Produce the ordered experience stream. Throws std::invalid_argument
  /// when the dataset cannot support the requested split.
  virtual data::ExperienceSet build(const data::Dataset& ds,
                                    const ScenarioOptions& opt) const = 0;
};

/// Construct a scenario by registry name; throws std::invalid_argument for
/// an unknown name (the message lists every registered name).
std::unique_ptr<Scenario> make_scenario(const std::string& name);

/// Every scenario name, sorted.
std::vector<std::string> scenario_names();

}  // namespace cnd::scenario
