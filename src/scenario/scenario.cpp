#include "scenario/scenario.hpp"

#include <cmath>
#include <span>
#include <stdexcept>

#include "tensor/assert.hpp"
#include "tensor/rng.hpp"

namespace cnd::scenario {

namespace {

// Add `scale * dir` to every row of x — the scenario streaming hot path,
// called once per experience matrix. O(rows * cols), in place.
// cnd-hot
void add_shift_inplace(Matrix& x, std::span<const double> dir, double scale) {
  for (std::size_t r = 0; r < x.rows(); ++r) {
    std::span<double> row = x.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) row[c] += scale * dir[c];
  }
}

/// Seeded random unit vector: the single "domain axis" a drifting scenario
/// moves the population along. Salted off the scenario seed so the stream
/// never collides with prepare_experiences' own Rng(seed) draws.
std::vector<double> unit_direction(std::size_t dim, std::uint64_t seed) {
  Rng rng = Rng(seed).split(/*salt=*/0xD81F7ULL);
  std::vector<double> dir(dim);
  double norm2 = 0.0;
  for (double& v : dir) {
    v = rng.normal();
    norm2 += v * v;
  }
  const double inv = 1.0 / std::sqrt(std::max(norm2, 1e-300));
  for (double& v : dir) v *= inv;
  return dir;
}

data::PrepConfig base_prep(const ScenarioOptions& opt,
                           data::FamilyPartition part,
                           double contamination_ramp = 0.0) {
  return {.n_experiences = opt.n_experiences,
          .clean_frac = opt.clean_frac,
          .train_frac = opt.train_frac,
          .standardize = true,
          .seed = opt.seed,
          .family_partition = part,
          .contamination_ramp = contamination_ramp};
}

class ClassIncremental final : public Scenario {
 public:
  std::string name() const override { return "class-incremental"; }
  std::string summary() const override {
    return "new attack families per experience (the paper's protocol)";
  }
  data::ExperienceSet build(const data::Dataset& ds,
                            const ScenarioOptions& opt) const override {
    opt.validate();
    return data::prepare_experiences(
        ds, base_prep(opt, data::FamilyPartition::kIncremental));
  }
};

class DomainIncremental final : public Scenario {
 public:
  std::string name() const override { return "domain-incremental"; }
  std::string summary() const override {
    return "all families everywhere; inputs shift further each experience";
  }
  data::ExperienceSet build(const data::Dataset& ds,
                            const ScenarioOptions& opt) const override {
    opt.validate();
    data::ExperienceSet es = data::prepare_experiences(
        ds, base_prep(opt, data::FamilyPartition::kSpread));
    const std::vector<double> dir = unit_direction(es.n_clean.cols(), opt.seed);
    // Experience e lives drift_magnitude * e/(m-1) along the domain axis;
    // N_c stays at the origin (it is pre-deployment traffic by definition).
    for (std::size_t e = 1; e < es.size(); ++e) {
      const double scale = opt.drift_magnitude * static_cast<double>(e) /
                           static_cast<double>(es.size() - 1);
      add_shift_inplace(es.experiences[e].x_train, dir, scale);
      add_shift_inplace(es.experiences[e].x_test, dir, scale);
    }
    return es;
  }
};

class TaskFreeRecurring final : public Scenario {
 public:
  std::string name() const override { return "task-free-recurring"; }
  std::string summary() const override {
    return "two domain regimes alternate A/B/A/B; no novel task boundary";
  }
  data::ExperienceSet build(const data::Dataset& ds,
                            const ScenarioOptions& opt) const override {
    opt.validate();
    data::ExperienceSet es = data::prepare_experiences(
        ds, base_prep(opt, data::FamilyPartition::kSpread));
    const std::vector<double> dir = unit_direction(es.n_clean.cols(), opt.seed);
    // Odd experiences sit in regime B (shifted by the full magnitude), even
    // ones in regime A (the N_c domain) — every regime recurs, so a
    // detector that forgets regime A while adapting to B is punished when
    // A returns.
    for (std::size_t e = 1; e < es.size(); e += 2) {
      add_shift_inplace(es.experiences[e].x_train, dir, opt.drift_magnitude);
      add_shift_inplace(es.experiences[e].x_test, dir, opt.drift_magnitude);
    }
    return es;
  }
};

class ContaminationRamp final : public Scenario {
 public:
  std::string name() const override { return "contamination-ramp"; }
  std::string summary() const override {
    return "paper family split; training streams carry rising attack share";
  }
  data::ExperienceSet build(const data::Dataset& ds,
                            const ScenarioOptions& opt) const override {
    opt.validate();
    return data::prepare_experiences(
        ds, base_prep(opt, data::FamilyPartition::kIncremental,
                      opt.max_contamination));
  }
};

}  // namespace

// cnd-throw-ok(config validation — runs once at construction/bootstrap, never per batch)
void ScenarioOptions::validate() const {
  require(n_experiences >= 2, "ScenarioOptions: n_experiences must be >= 2");
  require(drift_magnitude >= 0.0,
          "ScenarioOptions: drift_magnitude must be >= 0");
  require(max_contamination >= 0.0 && max_contamination < 1.0,
          "ScenarioOptions: max_contamination out of [0,1)");
  require(clean_frac > 0.0 && clean_frac < 1.0,
          "ScenarioOptions: clean_frac out of (0,1)");
  require(train_frac > 0.0 && train_frac < 1.0,
          "ScenarioOptions: train_frac out of (0,1)");
}

std::unique_ptr<Scenario> make_scenario(const std::string& name) {
  if (name == "class-incremental") return std::make_unique<ClassIncremental>();
  if (name == "contamination-ramp") return std::make_unique<ContaminationRamp>();
  if (name == "domain-incremental") return std::make_unique<DomainIncremental>();
  if (name == "task-free-recurring") return std::make_unique<TaskFreeRecurring>();
  std::string msg = "unknown scenario '" + name + "'; registered:";
  for (const std::string& n : scenario_names()) msg += " " + n;
  throw std::invalid_argument(msg);
}

std::vector<std::string> scenario_names() {
  return {"class-incremental", "contamination-ramp", "domain-incremental",
          "task-free-recurring"};
}

}  // namespace cnd::scenario
