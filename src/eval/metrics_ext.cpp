#include "eval/metrics_ext.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/assert.hpp"
#include "tensor/rng.hpp"

namespace cnd::eval {

double mcc(const Confusion& c) {
  const double tp = static_cast<double>(c.tp), fp = static_cast<double>(c.fp);
  const double tn = static_cast<double>(c.tn), fn = static_cast<double>(c.fn);
  const double denom =
      std::sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn));
  if (denom <= 0.0) return 0.0;
  return (tp * tn - fp * fn) / denom;
}

double balanced_accuracy(const Confusion& c) {
  const double pos = static_cast<double>(c.tp + c.fn);
  const double neg = static_cast<double>(c.tn + c.fp);
  const double tpr = pos > 0.0 ? static_cast<double>(c.tp) / pos : 0.0;
  const double tnr = neg > 0.0 ? static_cast<double>(c.tn) / neg : 0.0;
  return 0.5 * (tpr + tnr);
}

double f_beta(const Confusion& c, double beta) {
  require(beta > 0.0, "f_beta: beta must be > 0");
  const double p = precision(c);
  const double r = recall(c);
  const double b2 = beta * beta;
  const double denom = b2 * p + r;
  return denom > 0.0 ? (1.0 + b2) * p * r / denom : 0.0;
}

double fpr_at_tpr(const std::vector<double>& scores,
                  const std::vector<int>& y_true, double min_tpr) {
  require(scores.size() == y_true.size() && !scores.empty(), "fpr_at_tpr: bad inputs");
  require(min_tpr > 0.0 && min_tpr <= 1.0, "fpr_at_tpr: min_tpr out of (0,1]");

  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  double pos = 0.0, neg = 0.0;
  for (int v : y_true) (v == 1 ? pos : neg) += 1.0;
  if (pos == 0.0) return 0.0;

  double tp = 0.0, fp = 0.0;
  double best = 1.0;
  bool reached = false;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (y_true[order[i]] == 1)
      tp += 1.0;
    else
      fp += 1.0;
    if (i + 1 < order.size() && scores[order[i + 1]] == scores[order[i]]) continue;
    if (tp / pos >= min_tpr) {
      best = std::min(best, neg > 0.0 ? fp / neg : 0.0);
      reached = true;
    }
  }
  return reached ? best : 1.0;
}

std::size_t detection_delay(const std::vector<double>& scores, double threshold,
                            std::size_t attack_start) {
  require(attack_start < scores.size(), "detection_delay: start out of range");
  for (std::size_t i = attack_start; i < scores.size(); ++i)
    if (scores[i] > threshold) return i - attack_start;
  return scores.size();
}

BootstrapCi bootstrap_f1_ci(const std::vector<int>& y_pred,
                            const std::vector<int>& y_true,
                            std::size_t n_resamples, double alpha,
                            std::uint64_t seed) {
  require(y_pred.size() == y_true.size() && !y_pred.empty(),
          "bootstrap_f1_ci: bad inputs");
  require(n_resamples >= 10, "bootstrap_f1_ci: too few resamples");
  require(alpha > 0.0 && alpha < 1.0, "bootstrap_f1_ci: alpha out of (0,1)");

  BootstrapCi out;
  out.point = f1_score(y_pred, y_true);

  Rng rng(seed);
  const std::size_t n = y_pred.size();
  std::vector<double> stats(n_resamples);
  for (std::size_t r = 0; r < n_resamples; ++r) {
    Confusion c;
    for (std::size_t i = 0; i < n; ++i) {
      const auto k = static_cast<std::size_t>(
          rng.randint(0, static_cast<std::int64_t>(n) - 1));
      if (y_true[k] == 1)
        (y_pred[k] == 1 ? c.tp : c.fn)++;
      else
        (y_pred[k] == 1 ? c.fp : c.tn)++;
    }
    stats[r] = f1_score(c);
  }
  std::sort(stats.begin(), stats.end());
  const auto lo_idx = static_cast<std::size_t>(
      (alpha / 2.0) * static_cast<double>(n_resamples - 1));
  const auto hi_idx = static_cast<std::size_t>(
      (1.0 - alpha / 2.0) * static_cast<double>(n_resamples - 1));
  out.lo = stats[lo_idx];
  out.hi = stats[hi_idx];
  return out;
}

}  // namespace cnd::eval
