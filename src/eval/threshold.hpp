// Anomaly-score thresholding.
//
// The paper uses Best-F [24] (OmniAnomaly's protocol): sweep every candidate
// threshold induced by the observed scores and keep the one maximizing F1.
// A label-free quantile alternative is provided for the thresholding
// ablation bench.
#pragma once

#include <vector>

namespace cnd::eval {

struct ThresholdResult {
  double threshold = 0.0;
  double f1 = 0.0;
};

/// Best-F: maximize F1 over all thresholds of the form "predict attack when
/// score > t", with t taken from the distinct observed scores (plus one
/// below the minimum). O(n log n).
ThresholdResult best_f_threshold(const std::vector<double>& scores,
                                 const std::vector<int>& y_true);

/// Label-free alternative: threshold at the q-quantile of the scores of the
/// (assumed mostly normal) calibration set.
double quantile_threshold(std::vector<double> calibration_scores, double q);

/// Apply: predictions are score > threshold.
std::vector<int> apply_threshold(const std::vector<double>& scores, double threshold);

}  // namespace cnd::eval
