#include "eval/threshold.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/assert.hpp"

namespace cnd::eval {

ThresholdResult best_f_threshold(const std::vector<double>& scores,
                                 const std::vector<int>& y_true) {
  require(scores.size() == y_true.size() && !scores.empty(),
          "best_f_threshold: bad inputs");

  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  double pos = 0.0;
  for (int v : y_true) pos += (v == 1);

  // Walking the sorted scores, after consuming i+1 items with "predict
  // positive above this cut" we have tp/fp counts; only cuts between
  // distinct scores are valid thresholds.
  ThresholdResult best;
  best.threshold = scores[order[0]];  // predict-nothing default
  best.f1 = pos > 0.0 ? 0.0 : 1.0;

  double tp = 0.0, fp = 0.0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (y_true[order[i]] == 1)
      tp += 1.0;
    else
      fp += 1.0;
    if (i + 1 < order.size() && scores[order[i + 1]] == scores[order[i]]) continue;
    const double denom = 2.0 * tp + fp + (pos - tp);
    const double f1 = denom > 0.0 ? 2.0 * tp / denom : 0.0;
    if (f1 > best.f1) {
      best.f1 = f1;
      // Threshold strictly below the current score block, at the midpoint to
      // the next block (or just below the minimum for the all-positive cut).
      const double cur = scores[order[i]];
      const double next = i + 1 < order.size() ? scores[order[i + 1]] : cur - 1.0;
      best.threshold = 0.5 * (cur + next);
    }
  }
  return best;
}

double quantile_threshold(std::vector<double> calibration_scores, double q) {
  require(!calibration_scores.empty(), "quantile_threshold: empty calibration");
  require(q > 0.0 && q < 1.0, "quantile_threshold: q out of (0,1)");
  std::sort(calibration_scores.begin(), calibration_scores.end());
  const double pos = q * static_cast<double>(calibration_scores.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, calibration_scores.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return calibration_scores[lo] * (1.0 - frac) + calibration_scores[hi] * frac;
}

std::vector<int> apply_threshold(const std::vector<double>& scores, double threshold) {
  std::vector<int> out(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) out[i] = scores[i] > threshold ? 1 : 0;
  return out;
}

}  // namespace cnd::eval
