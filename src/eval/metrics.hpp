// Binary classification metrics for intrusion detection.
//
// Attack = positive class (label 1). PR-AUC uses Davis–Goadrich style
// interpolation over the score-induced operating points, which is the
// threshold-free metric the paper reports (Fig. 5).
#pragma once

#include <vector>

namespace cnd::eval {

struct Confusion {
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;
};

/// Tally a prediction/label pair list (values must be 0/1).
Confusion confusion(const std::vector<int>& y_pred, const std::vector<int>& y_true);

double precision(const Confusion& c);
double recall(const Confusion& c);
/// F1 = harmonic mean; 0 when there are no predicted or actual positives.
double f1_score(const Confusion& c);
double f1_score(const std::vector<int>& y_pred, const std::vector<int>& y_true);
double accuracy(const Confusion& c);

/// Area under the precision-recall curve from continuous anomaly scores
/// (higher score = more attack-like). Returns the positive-class prevalence
/// when scores are all equal (the random-classifier PR-AUC).
double pr_auc(const std::vector<double>& scores, const std::vector<int>& y_true);

/// Area under the ROC curve (reported for completeness; the paper prefers
/// PR-AUC under class imbalance).
double roc_auc(const std::vector<double>& scores, const std::vector<int>& y_true);

}  // namespace cnd::eval
