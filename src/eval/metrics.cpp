#include "eval/metrics.hpp"

#include <algorithm>
#include <numeric>

#include "tensor/assert.hpp"

namespace cnd::eval {

Confusion confusion(const std::vector<int>& y_pred, const std::vector<int>& y_true) {
  require(y_pred.size() == y_true.size(), "confusion: size mismatch");
  Confusion c;
  for (std::size_t i = 0; i < y_pred.size(); ++i) {
    require((y_pred[i] == 0 || y_pred[i] == 1) && (y_true[i] == 0 || y_true[i] == 1),
            "confusion: labels must be 0/1");
    if (y_true[i] == 1)
      (y_pred[i] == 1 ? c.tp : c.fn)++;
    else
      (y_pred[i] == 1 ? c.fp : c.tn)++;
  }
  return c;
}

double precision(const Confusion& c) {
  const auto denom = c.tp + c.fp;
  return denom ? static_cast<double>(c.tp) / static_cast<double>(denom) : 0.0;
}

double recall(const Confusion& c) {
  const auto denom = c.tp + c.fn;
  return denom ? static_cast<double>(c.tp) / static_cast<double>(denom) : 0.0;
}

double f1_score(const Confusion& c) {
  const double p = precision(c);
  const double r = recall(c);
  return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

double f1_score(const std::vector<int>& y_pred, const std::vector<int>& y_true) {
  return f1_score(confusion(y_pred, y_true));
}

double accuracy(const Confusion& c) {
  const auto total = c.tp + c.fp + c.tn + c.fn;
  return total ? static_cast<double>(c.tp + c.tn) / static_cast<double>(total) : 0.0;
}

namespace {

/// Rows sorted by descending score; returns cumulative (tp, fp) at each
/// distinct score cut, plus totals.
struct SweepPoint {
  double tp, fp;
};

std::vector<SweepPoint> score_sweep(const std::vector<double>& scores,
                                    const std::vector<int>& y, double* pos_total,
                                    double* neg_total) {
  require(scores.size() == y.size() && !scores.empty(), "auc: bad inputs");
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
  double tp = 0.0, fp = 0.0, pos = 0.0, neg = 0.0;
  for (int v : y) (v == 1 ? pos : neg) += 1.0;
  *pos_total = pos;
  *neg_total = neg;

  std::vector<SweepPoint> pts;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (y[order[i]] == 1)
      tp += 1.0;
    else
      fp += 1.0;
    // Emit an operating point only after the last element of a tied block.
    if (i + 1 == order.size() || scores[order[i + 1]] != scores[order[i]])
      pts.push_back({tp, fp});
  }
  return pts;
}

}  // namespace

double pr_auc(const std::vector<double>& scores, const std::vector<int>& y_true) {
  double pos = 0.0, neg = 0.0;
  const auto pts = score_sweep(scores, y_true, &pos, &neg);
  if (pos == 0.0) return 0.0;

  // Integrate precision over recall (step-wise, averaging precision across
  // each recall increment — equivalent to sklearn's average_precision when
  // points are per-sample).
  double auc = 0.0;
  double prev_tp = 0.0;
  for (const auto& p : pts) {
    const double d_recall = (p.tp - prev_tp) / pos;
    if (d_recall > 0.0) {
      const double prec = p.tp / (p.tp + p.fp);
      auc += prec * d_recall;
    }
    prev_tp = p.tp;
  }
  return auc;
}

double roc_auc(const std::vector<double>& scores, const std::vector<int>& y_true) {
  double pos = 0.0, neg = 0.0;
  const auto pts = score_sweep(scores, y_true, &pos, &neg);
  if (pos == 0.0 || neg == 0.0) return 0.5;
  double auc = 0.0, prev_tp = 0.0, prev_fp = 0.0;
  for (const auto& p : pts) {
    auc += (p.fp - prev_fp) * (p.tp + prev_tp) * 0.5;  // trapezoid
    prev_tp = p.tp;
    prev_fp = p.fp;
  }
  return auc / (pos * neg);
}

}  // namespace cnd::eval
