// Label-free threshold rules beyond the quantile baseline.
//
// MAD: median + k * 1.4826 * MAD of the calibration scores — robust to the
// heavy tails flow features produce.
// POT-lite: a simplified peaks-over-threshold rule — fit an exponential tail
// to the calibration excesses over a high quantile and place the threshold
// at a target tail probability; the standard EVT recipe (SPOT) with the GPD
// specialized to its exponential case.
#pragma once

#include <vector>

namespace cnd::eval {

/// median(cal) + k * 1.4826 * median(|cal - median(cal)|).
double mad_threshold(std::vector<double> calibration_scores, double k = 3.0);

struct PotConfig {
  double tail_quantile = 0.95;  ///< excesses above this quantile form the tail.
  double target_prob = 1e-3;    ///< desired P(score > threshold) on normal data.
};

/// Exponential-tail peaks-over-threshold threshold.
double pot_threshold(std::vector<double> calibration_scores,
                     const PotConfig& cfg = {});

}  // namespace cnd::eval
