#include "eval/cl_metrics.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "tensor/assert.hpp"

namespace cnd::eval {

ClResultMatrix::ClResultMatrix(std::size_t m) : r_(m, m) {
  require(m >= 2, "ClResultMatrix: need at least 2 experiences");
}

void ClResultMatrix::set(std::size_t i, std::size_t j, double value) {
  require(i < m() && j < m(), "ClResultMatrix::set: out of range");
  r_(i, j) = value;
}

double ClResultMatrix::get(std::size_t i, std::size_t j) const {
  require(i < m() && j < m(), "ClResultMatrix::get: out of range");
  return r_(i, j);
}

double ClResultMatrix::avg_current() const {
  double s = 0.0;
  for (std::size_t i = 0; i < m(); ++i) s += r_(i, i);
  return s / static_cast<double>(m());
}

double ClResultMatrix::fwd_transfer() const {
  double s = 0.0;
  for (std::size_t i = 0; i < m(); ++i)
    for (std::size_t j = i + 1; j < m(); ++j) s += r_(i, j);
  const double pairs = static_cast<double>(m() * (m() - 1)) / 2.0;
  return s / pairs;
}

double ClResultMatrix::bwd_transfer() const {
  const std::size_t last = m() - 1;
  double s = 0.0;
  for (std::size_t i = 0; i < m(); ++i) s += r_(last, i) - r_(i, i);
  const double pairs = static_cast<double>(m() * (m() - 1)) / 2.0;
  return s / pairs;
}

double ClResultMatrix::bwt() const {
  const std::size_t last = m() - 1;
  double s = 0.0;
  for (std::size_t j = 0; j < last; ++j) s += r_(last, j) - r_(j, j);
  return s / static_cast<double>(last);
}

double ClResultMatrix::fwt(const std::vector<double>& baseline) const {
  require(baseline.empty() || baseline.size() == m() - 1,
          "ClResultMatrix::fwt: baseline needs one entry per experience j>=1");
  double s = 0.0;
  for (std::size_t j = 1; j < m(); ++j) {
    const double b = baseline.empty() ? 0.0 : baseline[j - 1];
    s += r_(j - 1, j) - b;
  }
  return s / static_cast<double>(m() - 1);
}

double ClResultMatrix::forgetting(std::size_t test_exp) const {
  require(test_exp < m(), "ClResultMatrix::forgetting: out of range");
  const std::size_t last = m() - 1;
  if (test_exp == last) return 0.0;
  double best = r_(test_exp, test_exp);
  for (std::size_t i = test_exp + 1; i < last; ++i)
    best = std::max(best, r_(i, test_exp));
  return best - r_(last, test_exp);
}

double ClResultMatrix::avg_forgetting() const {
  double s = 0.0;
  for (std::size_t j = 0; j + 1 < m(); ++j) s += forgetting(j);
  return s / static_cast<double>(m() - 1);
}

double ClResultMatrix::avg_all() const {
  double s = 0.0;
  for (std::size_t i = 0; i < m(); ++i)
    for (std::size_t j = 0; j < m(); ++j) s += r_(i, j);
  return s / static_cast<double>(m() * m());
}

std::string ClResultMatrix::to_string(const std::string& name) const {
  std::ostringstream os;
  os << name << " result matrix R[train, test]:\n";
  os << std::fixed << std::setprecision(4);
  os << "        ";
  for (std::size_t j = 0; j < m(); ++j) os << "  test" << j << " ";
  os << "\n";
  for (std::size_t i = 0; i < m(); ++i) {
    os << "  train" << i;
    for (std::size_t j = 0; j < m(); ++j) os << "  " << std::setw(6) << r_(i, j);
    os << "\n";
  }
  os << "  AVG=" << avg_current() << "  FwdTrans=" << fwd_transfer()
     << "  BwdTrans=" << bwd_transfer() << "\n";
  return os.str();
}

}  // namespace cnd::eval
