#include "eval/robust_threshold.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/assert.hpp"

namespace cnd::eval {

namespace {

double median_inplace(std::vector<double>& v) {
  CND_ASSERT(!v.empty());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    const auto lower =
        std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
    m = 0.5 * (m + *lower);
  }
  return m;
}

}  // namespace

double mad_threshold(std::vector<double> cal, double k) {
  require(!cal.empty(), "mad_threshold: empty calibration");
  require(k > 0.0, "mad_threshold: k must be > 0");
  const double med = median_inplace(cal);
  for (double& v : cal) v = std::abs(v - med);
  const double mad = median_inplace(cal);
  return med + k * 1.4826 * mad;
}

double pot_threshold(std::vector<double> cal, const PotConfig& cfg) {
  require(cal.size() >= 20, "pot_threshold: need at least 20 calibration scores");
  require(cfg.tail_quantile > 0.0 && cfg.tail_quantile < 1.0,
          "pot_threshold: tail_quantile out of (0,1)");
  require(cfg.target_prob > 0.0 && cfg.target_prob < 1.0 - cfg.tail_quantile,
          "pot_threshold: target_prob must be below the tail mass");

  std::sort(cal.begin(), cal.end());
  const auto cut_idx = static_cast<std::size_t>(
      cfg.tail_quantile * static_cast<double>(cal.size() - 1));
  const double u = cal[cut_idx];

  // Excesses over u; exponential MLE for the tail scale.
  double sum = 0.0;
  std::size_t n_exc = 0;
  for (std::size_t i = cut_idx + 1; i < cal.size(); ++i) {
    sum += cal[i] - u;
    ++n_exc;
  }
  if (n_exc == 0 || sum <= 0.0) return u;  // Degenerate tail: threshold at u.
  const double beta = sum / static_cast<double>(n_exc);

  // P(score > u + z) = p_tail * exp(-z / beta); solve for target_prob.
  const double p_tail =
      static_cast<double>(n_exc) / static_cast<double>(cal.size());
  const double z = beta * std::log(p_tail / cfg.target_prob);
  return u + std::max(z, 0.0);
}

}  // namespace cnd::eval
