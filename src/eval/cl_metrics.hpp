// Continual-learning result matrix and summary metrics (paper §IV-A).
//
// R(i, j) is the metric (F1 or PR-AUC) on test experience j measured after
// training on experience i. The paper's summaries:
//   AVG       = sum_{i==j} R_ij / m                  (seen attacks)
//   FwdTrans  = sum_{j>i}  R_ij / (m(m-1)/2)         (zero-day attacks)
//   BwdTrans  = sum_i (R_{m-1,i} - R_{i,i}) / (m(m-1)/2)   (forgetting)
// BwdTrans uses the paper's own normalizer m(m-1)/2 (not GEM's m-1); the
// sign convention matches: negative = catastrophic forgetting.
//
// The GEM/Avalanche-convention summaries (bwt, fwt, forgetting — normalized
// by m-1, per Lopez-Paz & Ranzato and Chaudhry et al.) live alongside the
// paper's so bench tables can print both; formulas in docs/SCENARIOS.md.
#pragma once

#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace cnd::eval {

class ClResultMatrix {
 public:
  explicit ClResultMatrix(std::size_t m);

  std::size_t m() const { return r_.rows(); }
  void set(std::size_t train_exp, std::size_t test_exp, double value);
  double get(std::size_t train_exp, std::size_t test_exp) const;
  const Matrix& raw() const { return r_; }

  double avg_current() const;
  double fwd_transfer() const;
  double bwd_transfer() const;

  /// Mean of every entry (used by the Fig-4 "average F1 on all experiences"
  /// comparison against static ND methods).
  double avg_all() const;

  /// GEM backward transfer: sum_{j<m-1} (R(m-1, j) - R(j, j)) / (m-1).
  /// Negative = catastrophic forgetting, like the paper's bwd_transfer()
  /// but with the continual-learning literature's m-1 normalizer.
  double bwt() const;

  /// GEM forward transfer: sum_{j>=1} (R(j-1, j) - b_j) / (m-1), the metric
  /// on each experience just *before* training on it. `baseline` holds b_j
  /// for j = 1..m-1 — an untrained reference's metric on each test split;
  /// empty means b_j = 0 (raw zero-shot performance).
  double fwt(const std::vector<double>& baseline = {}) const;

  /// Forgetting of test experience j after the final training step:
  /// max_{i in [j, m-2]} R(i, j) - R(m-1, j) (Chaudhry et al.), i.e. how far
  /// the final model fell from the best result any intermediate model
  /// achieved once j had been seen. Zero for j = m-1 (nothing trained
  /// after it). Positive = forgot, negative = kept improving.
  double forgetting(std::size_t test_exp) const;

  /// Mean forgetting over j in [0, m-1).
  double avg_forgetting() const;

  /// Pretty-print with row/column headers to any ostream.
  std::string to_string(const std::string& name) const;

 private:
  Matrix r_;
};

}  // namespace cnd::eval
