// Continual-learning result matrix and summary metrics (paper §IV-A).
//
// R(i, j) is the metric (F1 or PR-AUC) on test experience j measured after
// training on experience i. The paper's summaries:
//   AVG       = sum_{i==j} R_ij / m                  (seen attacks)
//   FwdTrans  = sum_{j>i}  R_ij / (m(m-1)/2)         (zero-day attacks)
//   BwdTrans  = sum_i (R_{m-1,i} - R_{i,i}) / (m(m-1)/2)   (forgetting)
// BwdTrans uses the paper's own normalizer m(m-1)/2 (not GEM's m-1); the
// sign convention matches: negative = catastrophic forgetting.
#pragma once

#include <string>

#include "tensor/matrix.hpp"

namespace cnd::eval {

class ClResultMatrix {
 public:
  explicit ClResultMatrix(std::size_t m);

  std::size_t m() const { return r_.rows(); }
  void set(std::size_t train_exp, std::size_t test_exp, double value);
  double get(std::size_t train_exp, std::size_t test_exp) const;
  const Matrix& raw() const { return r_; }

  double avg_current() const;
  double fwd_transfer() const;
  double bwd_transfer() const;

  /// Mean of every entry (used by the Fig-4 "average F1 on all experiences"
  /// comparison against static ND methods).
  double avg_all() const;

  /// Pretty-print with row/column headers to any ostream.
  std::string to_string(const std::string& name) const;

 private:
  Matrix r_;
};

}  // namespace cnd::eval
