#include "eval/timer.hpp"

// Header-only; this TU exists so cnd_eval always has at least one object
// file and the header is compiled standalone at least once.
