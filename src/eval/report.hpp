// Per-family diagnostic reports.
//
// Aggregate metrics hide which attacks a detector actually misses; this
// module breaks scored test sets down by attack family: per-family recall
// at a fixed operating point, family-conditional score statistics, and a
// markdown rendering for reports.
#pragma once

#include <string>
#include <vector>

namespace cnd::eval {

struct FamilyStat {
  int family = -1;               ///< attack family id (-1 = normal traffic).
  std::string name;              ///< family name (or "normal").
  std::size_t count = 0;
  double mean_score = 0.0;
  double recall = 0.0;           ///< detection rate at the given threshold
                                 ///< (for family -1: false-positive rate).
};

struct FamilyReport {
  double threshold = 0.0;
  std::vector<FamilyStat> families;  ///< normal first, then ids ascending.

  /// The family with the worst recall (ties broken by size). Returns -1 if
  /// there are no attack rows.
  int hardest_family() const;

  /// Render as a markdown table.
  std::string to_markdown() const;
};

/// Build a report from scores, binary labels, per-row family ids (-1 =
/// normal) and class names (indexed by family id).
FamilyReport family_breakdown(const std::vector<double>& scores,
                              const std::vector<int>& y_true,
                              const std::vector<int>& family,
                              const std::vector<std::string>& class_names,
                              double threshold);

}  // namespace cnd::eval
