// Extended classification metrics beyond the paper's F1 / PR-AUC.
//
// MCC and balanced accuracy are the imbalance-robust alternatives reviewers
// ask for; FPR@TPR is the operating-point metric IDS deployments actually
// budget against ("what false-alarm rate do I pay for 95% detection?").
#pragma once

#include <cstdint>
#include <vector>

#include "eval/metrics.hpp"

namespace cnd::eval {

/// Matthews correlation coefficient in [-1, 1]; 0 for degenerate tables.
double mcc(const Confusion& c);

/// (TPR + TNR) / 2.
double balanced_accuracy(const Confusion& c);

/// F-beta score (beta > 1 weights recall higher). beta = 1 reduces to F1.
double f_beta(const Confusion& c, double beta);

/// Lowest achievable false-positive rate among operating points with true-
/// positive rate >= `min_tpr`, sweeping thresholds over `scores`. Returns
/// 1.0 when no threshold reaches the requested TPR.
double fpr_at_tpr(const std::vector<double>& scores,
                  const std::vector<int>& y_true, double min_tpr);

/// Detection delay: given scores in stream order and a threshold, the index
/// of the first alarm at or after `attack_start`, minus attack_start.
/// Returns scores.size() when the attack is never flagged.
std::size_t detection_delay(const std::vector<double>& scores, double threshold,
                            std::size_t attack_start);

struct BootstrapCi {
  double point = 0.0;  ///< F1 on the full sample.
  double lo = 0.0;     ///< lower percentile bound.
  double hi = 0.0;     ///< upper percentile bound.
};

/// Percentile-bootstrap confidence interval for F1: resample
/// (prediction, label) pairs with replacement `n_resamples` times.
/// `alpha` = 0.05 gives a 95% interval. Deterministic given `seed`.
BootstrapCi bootstrap_f1_ci(const std::vector<int>& y_pred,
                            const std::vector<int>& y_true,
                            std::size_t n_resamples = 1000, double alpha = 0.05,
                            std::uint64_t seed = 1337);

}  // namespace cnd::eval
