#include "eval/report.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "tensor/assert.hpp"

namespace cnd::eval {

FamilyReport family_breakdown(const std::vector<double>& scores,
                              const std::vector<int>& y_true,
                              const std::vector<int>& family,
                              const std::vector<std::string>& class_names,
                              double threshold) {
  require(scores.size() == y_true.size() && scores.size() == family.size(),
          "family_breakdown: size mismatch");
  require(!scores.empty(), "family_breakdown: empty inputs");

  struct Acc {
    std::size_t count = 0, flagged = 0;
    double score_sum = 0.0;
  };
  std::map<int, Acc> accs;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    require((family[i] == -1) == (y_true[i] == 0),
            "family_breakdown: family/label inconsistency");
    Acc& a = accs[family[i]];
    ++a.count;
    a.score_sum += scores[i];
    a.flagged += (scores[i] > threshold);
  }

  FamilyReport rep;
  rep.threshold = threshold;
  for (const auto& [fam, a] : accs) {
    FamilyStat st;
    st.family = fam;
    if (fam == -1) {
      st.name = "normal";
    } else {
      require(static_cast<std::size_t>(fam) < class_names.size(),
              "family_breakdown: family id out of range");
      st.name = class_names[static_cast<std::size_t>(fam)];
    }
    st.count = a.count;
    st.mean_score = a.score_sum / static_cast<double>(a.count);
    st.recall = static_cast<double>(a.flagged) / static_cast<double>(a.count);
    rep.families.push_back(std::move(st));
  }
  // std::map ordering already puts -1 (normal) first, families ascending.
  return rep;
}

int FamilyReport::hardest_family() const {
  int hardest = -1;
  double worst = 2.0;
  std::size_t worst_count = 0;
  for (const auto& f : families) {
    if (f.family < 0) continue;
    if (f.recall < worst || (f.recall == worst && f.count > worst_count)) {
      worst = f.recall;
      worst_count = f.count;
      hardest = f.family;
    }
  }
  return hardest;
}

std::string FamilyReport::to_markdown() const {
  std::ostringstream os;
  os << "| family | count | mean score | detection rate |\n";
  os << "|---|---:|---:|---:|\n";
  os.precision(4);
  os << std::fixed;
  for (const auto& f : families) {
    os << "| " << f.name << " | " << f.count << " | " << f.mean_score << " | "
       << f.recall;
    if (f.family == -1) os << " (FPR)";
    os << " |\n";
  }
  return os.str();
}

}  // namespace cnd::eval
