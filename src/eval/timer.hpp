// Wall-clock timing helper for the overhead analysis (Table IV).
#pragma once

#include <chrono>

namespace cnd::eval {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }

  /// Elapsed milliseconds since construction or last reset().
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace cnd::eval
