// Wall-clock timing helper for the overhead analysis (Table IV).
#pragma once

#include <chrono>

namespace cnd::eval {

class Timer {
 public:
  Timer() : start_(now()) {}
  void reset() { start_ = now(); }

  /// Elapsed milliseconds since construction or last reset().
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  // Table IV reports wall-clock fit/infer overhead, so this header is a
  // sanctioned measurement surface outside src/obs.
  // cnd-det-ok(sanctioned measurement surface — timings feed bench/eval timing fields, never scores)
  static clock::time_point now() { return clock::now(); }  // cnd-lint: allow(no-clock)
  clock::time_point start_;
};

}  // namespace cnd::eval
