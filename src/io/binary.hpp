// Minimal binary serialization primitives for model artifacts.
//
// Little-endian, host-order doubles (artifacts are machine-local deployment
// files, not interchange formats); every stream starts with a magic tag and
// a format version so stale artifacts fail loudly instead of mis-loading.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace cnd::io {

inline constexpr std::uint32_t kMagic = 0xC9D51D50;  // "CND-IDS" tag
inline constexpr std::uint32_t kVersion = 2;  // v2: checksummed snapshot envelope

void write_header(std::ostream& os);
/// Throws std::runtime_error on magic/version mismatch.
void read_header(std::istream& is);

void write_u64(std::ostream& os, std::uint64_t v);
std::uint64_t read_u64(std::istream& is);

void write_f64(std::ostream& os, double v);
double read_f64(std::istream& is);

void write_string(std::ostream& os, const std::string& s);
std::string read_string(std::istream& is);

void write_vec(std::ostream& os, const std::vector<double>& v);
std::vector<double> read_vec(std::istream& is);

void write_matrix(std::ostream& os, const Matrix& m);
Matrix read_matrix(std::istream& is);

/// FNV-1a 64-bit over a byte range (offset basis 0xcbf29ce484222325).
std::uint64_t fnv1a64(const char* data, std::size_t n);

/// Checksummed framing for snapshot payloads: header, tag, payload length,
/// payload bytes, FNV-1a-64 of the payload. The tag stays outside the
/// checksummed region so restoring from the wrong detector's bytes reports
/// a tag mismatch, not a generic corruption error.
void write_envelope(std::ostream& os, std::uint64_t tag,
                    const std::string& payload);

/// Reads and verifies an envelope written by write_envelope. Throws
/// std::runtime_error on a bad header, a tag mismatch (message names
/// `what`), a truncated stream, or a checksum mismatch; returns the
/// verified payload bytes.
std::string read_envelope(std::istream& is, std::uint64_t expected_tag,
                          const char* what);

}  // namespace cnd::io
