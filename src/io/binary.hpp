// Minimal binary serialization primitives for model artifacts.
//
// Little-endian, host-order doubles (artifacts are machine-local deployment
// files, not interchange formats); every stream starts with a magic tag and
// a format version so stale artifacts fail loudly instead of mis-loading.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace cnd::io {

inline constexpr std::uint32_t kMagic = 0xC9D51D50;  // "CND-IDS" tag
inline constexpr std::uint32_t kVersion = 1;

void write_header(std::ostream& os);
/// Throws std::runtime_error on magic/version mismatch.
void read_header(std::istream& is);

void write_u64(std::ostream& os, std::uint64_t v);
std::uint64_t read_u64(std::istream& is);

void write_f64(std::ostream& os, double v);
double read_f64(std::istream& is);

void write_string(std::ostream& os, const std::string& s);
std::string read_string(std::istream& is);

void write_vec(std::ostream& os, const std::vector<double>& v);
std::vector<double> read_vec(std::istream& is);

void write_matrix(std::ostream& os, const Matrix& m);
Matrix read_matrix(std::istream& is);

}  // namespace cnd::io
