#include "io/binary.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "tensor/assert.hpp"

namespace cnd::io {

namespace {

void check_stream(const std::ios& s, const char* what) {
  if (!s.good()) throw std::runtime_error(std::string("cnd::io: ") + what);
}

}  // namespace

void write_header(std::ostream& os) {
  const std::uint32_t magic = kMagic, version = kVersion;
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  os.write(reinterpret_cast<const char*>(&version), sizeof(version));
  check_stream(os, "header write failed");
}

void read_header(std::istream& is) {
  std::uint32_t magic = 0, version = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  is.read(reinterpret_cast<char*>(&version), sizeof(version));
  check_stream(is, "header read failed");
  if (magic != kMagic) throw std::runtime_error("cnd::io: not a CND-IDS artifact");
  if (version != kVersion)
    throw std::runtime_error("cnd::io: unsupported artifact version " +
                             std::to_string(version));
}

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  check_stream(os, "u64 write failed");
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  check_stream(is, "u64 read failed");
  return v;
}

void write_f64(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  check_stream(os, "f64 write failed");
}

double read_f64(std::istream& is) {
  double v = 0.0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  check_stream(is, "f64 read failed");
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
  check_stream(os, "string write failed");
}

std::string read_string(std::istream& is) {
  const std::uint64_t n = read_u64(is);
  if (n > (1u << 20)) throw std::runtime_error("cnd::io: implausible string size");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  check_stream(is, "string read failed");
  return s;
}

void write_vec(std::ostream& os, const std::vector<double>& v) {
  write_u64(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(double)));
  check_stream(os, "vector write failed");
}

std::vector<double> read_vec(std::istream& is) {
  const std::uint64_t n = read_u64(is);
  if (n > (1u << 28)) throw std::runtime_error("cnd::io: implausible vector size");
  std::vector<double> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  check_stream(is, "vector read failed");
  return v;
}

void write_matrix(std::ostream& os, const Matrix& m) {
  write_u64(os, m.rows());
  write_u64(os, m.cols());
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(m.size() * sizeof(double)));
  check_stream(os, "matrix write failed");
}

Matrix read_matrix(std::istream& is) {
  const std::uint64_t rows = read_u64(is);
  const std::uint64_t cols = read_u64(is);
  if (rows * cols > (1u << 28))
    throw std::runtime_error("cnd::io: implausible matrix size");
  Matrix m(rows, cols);
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(double)));
  check_stream(is, "matrix read failed");
  return m;
}

std::uint64_t fnv1a64(const char* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x00000100000001b3ull;
  }
  return h;
}

void write_envelope(std::ostream& os, std::uint64_t tag,
                    const std::string& payload) {
  write_header(os);
  write_u64(os, tag);
  write_u64(os, payload.size());
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  check_stream(os, "envelope payload write failed");
  write_u64(os, fnv1a64(payload.data(), payload.size()));
}

std::string read_envelope(std::istream& is, std::uint64_t expected_tag,
                          const char* what) {
  read_header(is);
  const std::uint64_t tag = read_u64(is);
  if (tag != expected_tag)
    throw std::runtime_error(std::string("cnd::io: ") + what +
                             ": stream carries another detector's snapshot "
                             "(tag " + std::to_string(tag) + ")");
  const std::uint64_t n = read_u64(is);
  if (n > (1ull << 30))
    throw std::runtime_error(std::string("cnd::io: ") + what +
                             ": implausible snapshot payload size");
  std::string payload(static_cast<std::size_t>(n), '\0');
  is.read(payload.data(), static_cast<std::streamsize>(n));
  check_stream(is, "envelope payload read failed");
  const std::uint64_t want = read_u64(is);
  const std::uint64_t got = fnv1a64(payload.data(), payload.size());
  if (got != want)
    throw std::runtime_error(std::string("cnd::io: ") + what +
                             ": snapshot payload checksum mismatch — "
                             "artifact is corrupt");
  return payload;
}

}  // namespace cnd::io
