// Snapshot/restore of detector scoring state — the implementation of
// core::ContinualDetector's serving hot-swap contract for CndIds and
// AdaptiveCndIds, routed through io::binary + io::model_io.
//
// These are member functions of core:: classes defined in an io-layer TU on
// purpose: core cannot depend on io (layering), but a member function may
// be defined in any translation unit, and this one lives in cnd_io where
// the serialization primitives are. Consequence: the CndIds/AdaptiveCndIds
// vtables reference these symbols, so every binary linking cnd_core must
// also link cnd_io (see cnd_add_bench/cnd_add_example/cnd_add_test).
//
// A snapshot is model state only, never data — the same storage argument
// the paper makes for L_CL. For CndIds that is the CFE encoder plus the PCA
// moments; restored detectors are inference-only (Cfe::restore_encoder sets
// the restored flag, so a later fit_experience throws std::logic_error).
//
// Wire format (io::binary v2): each snapshot is a checksummed envelope —
// header, detector tag, payload length, payload bytes, FNV-1a-64 of the
// payload. The whole payload is buffered and verified before any member is
// touched, so a truncated or bit-flipped artifact throws from restore()
// without half-mutating the detector. The Adaptive payload nests the full
// inner CndIds envelope, so the inner state is independently checksummed.
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "core/adaptive_cnd_ids.hpp"
#include "core/cnd_ids.hpp"
#include "io/binary.hpp"
#include "io/model_io.hpp"
#include "tensor/assert.hpp"

namespace cnd::core {

namespace {

// Detector tags on a snapshot envelope: restoring from the wrong
// detector's bytes must fail loudly, not mis-load.
constexpr std::uint64_t kTagCndIds = 1;
constexpr std::uint64_t kTagAdaptive = 2;

}  // namespace

void CndIds::snapshot(std::ostream& os) const {
  require(pca_.fitted(), "CndIds::snapshot: no experience observed yet");
  std::ostringstream payload(std::ios::binary);
  io::write_u64(payload, cfe_.autoencoder().config().input_dim);
  // encoder_copy() deep-clones, giving write_sequential the non-const
  // Sequential its params() walk needs without const_cast.
  nn::Sequential enc = cfe_.autoencoder().encoder_copy();
  io::write_sequential(payload, enc);
  io::write_vec(payload, pca_.center());
  io::write_matrix(payload, pca_.components());
  require(payload.good(), "CndIds::snapshot: payload write failed");
  io::write_envelope(os, kTagCndIds, payload.str());
  require(os.good(), "CndIds::snapshot: write failed");
}

void CndIds::restore(std::istream& is) {
  std::istringstream payload(io::read_envelope(is, kTagCndIds, "CndIds"),
                             std::ios::binary);
  const auto input_dim = static_cast<std::size_t>(io::read_u64(payload));
  nn::Sequential enc = io::read_sequential(payload);
  std::vector<double> mean = io::read_vec(payload);
  Matrix comps = io::read_matrix(payload);
  require(payload.good(), "CndIds::restore: truncated snapshot");
  cfe_.restore_encoder(std::move(enc), input_dim);
  pca_ = ml::Pca(std::move(mean), std::move(comps));
}

void AdaptiveCndIds::snapshot(std::ostream& os) const {
  std::ostringstream payload(std::ios::binary);
  detector_.snapshot(payload);
  io::write_f64(payload, ref_mean_);
  io::write_u64(payload, fitted_ ? 1 : 0);
  io::write_u64(payload, updates_);
  io::write_u64(payload, skips_);
  io::write_u64(payload, drift_signals_);
  const ml::PageHinkley::State ph = ph_.state();
  io::write_u64(payload, ph.n);
  io::write_f64(payload, ph.mean);
  io::write_f64(payload, ph.mt);
  io::write_f64(payload, ph.min_mt);
  require(payload.good(), "AdaptiveCndIds::snapshot: payload write failed");
  io::write_envelope(os, kTagAdaptive, payload.str());
  require(os.good(), "AdaptiveCndIds::snapshot: write failed");
}

void AdaptiveCndIds::restore(std::istream& is) {
  std::istringstream payload(io::read_envelope(is, kTagAdaptive, "Adaptive"),
                             std::ios::binary);
  detector_.restore(payload);
  ref_mean_ = io::read_f64(payload);
  fitted_ = io::read_u64(payload) == 1;
  updates_ = static_cast<std::size_t>(io::read_u64(payload));
  skips_ = static_cast<std::size_t>(io::read_u64(payload));
  drift_signals_ = static_cast<std::size_t>(io::read_u64(payload));
  ml::PageHinkley::State ph;
  ph.n = static_cast<std::size_t>(io::read_u64(payload));
  ph.mean = io::read_f64(payload);
  ph.mt = io::read_f64(payload);
  ph.min_mt = io::read_f64(payload);
  require(payload.good(), "AdaptiveCndIds::restore: truncated snapshot");
  ph_.set_state(ph);
}

}  // namespace cnd::core
