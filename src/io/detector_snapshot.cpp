// Snapshot/restore of detector scoring state — the implementation of
// core::ContinualDetector's serving hot-swap contract for CndIds and
// AdaptiveCndIds, routed through io::binary + io::model_io.
//
// These are member functions of core:: classes defined in an io-layer TU on
// purpose: core cannot depend on io (layering), but a member function may
// be defined in any translation unit, and this one lives in cnd_io where
// the serialization primitives are. Consequence: the CndIds/AdaptiveCndIds
// vtables reference these symbols, so every binary linking cnd_core must
// also link cnd_io (see cnd_add_bench/cnd_add_example/cnd_add_test).
//
// A snapshot is model state only, never data — the same storage argument
// the paper makes for L_CL. For CndIds that is the CFE encoder plus the PCA
// moments; restored detectors are inference-only (Cfe::restore_encoder sets
// the restored flag, so a later fit_experience throws std::logic_error).
#include <istream>
#include <ostream>

#include "core/adaptive_cnd_ids.hpp"
#include "core/cnd_ids.hpp"
#include "io/binary.hpp"
#include "io/model_io.hpp"
#include "tensor/assert.hpp"

namespace cnd::core {

namespace {

// Detector tags inside a snapshot stream: restoring from the wrong
// detector's bytes must fail loudly, not mis-load.
constexpr std::uint64_t kTagCndIds = 1;
constexpr std::uint64_t kTagAdaptive = 2;

}  // namespace

void CndIds::snapshot(std::ostream& os) const {
  require(pca_.fitted(), "CndIds::snapshot: no experience observed yet");
  io::write_header(os);
  io::write_u64(os, kTagCndIds);
  io::write_u64(os, cfe_.autoencoder().config().input_dim);
  // encoder_copy() deep-clones, giving write_sequential the non-const
  // Sequential its params() walk needs without const_cast.
  nn::Sequential enc = cfe_.autoencoder().encoder_copy();
  io::write_sequential(os, enc);
  io::write_vec(os, pca_.center());
  io::write_matrix(os, pca_.components());
  require(os.good(), "CndIds::snapshot: write failed");
}

void CndIds::restore(std::istream& is) {
  io::read_header(is);
  require(io::read_u64(is) == kTagCndIds,
          "CndIds::restore: stream is not a CND-IDS snapshot");
  const auto input_dim = static_cast<std::size_t>(io::read_u64(is));
  nn::Sequential enc = io::read_sequential(is);
  std::vector<double> mean = io::read_vec(is);
  Matrix comps = io::read_matrix(is);
  require(is.good(), "CndIds::restore: truncated snapshot");
  cfe_.restore_encoder(std::move(enc), input_dim);
  pca_ = ml::Pca(std::move(mean), std::move(comps));
}

void AdaptiveCndIds::snapshot(std::ostream& os) const {
  io::write_header(os);
  io::write_u64(os, kTagAdaptive);
  detector_.snapshot(os);
  io::write_f64(os, ref_mean_);
  io::write_u64(os, fitted_ ? 1 : 0);
  io::write_u64(os, updates_);
  io::write_u64(os, skips_);
  io::write_u64(os, drift_signals_);
  const ml::PageHinkley::State ph = ph_.state();
  io::write_u64(os, ph.n);
  io::write_f64(os, ph.mean);
  io::write_f64(os, ph.mt);
  io::write_f64(os, ph.min_mt);
  require(os.good(), "AdaptiveCndIds::snapshot: write failed");
}

void AdaptiveCndIds::restore(std::istream& is) {
  io::read_header(is);
  require(io::read_u64(is) == kTagAdaptive,
          "AdaptiveCndIds::restore: stream is not an Adaptive snapshot");
  detector_.restore(is);
  ref_mean_ = io::read_f64(is);
  fitted_ = io::read_u64(is) == 1;
  updates_ = static_cast<std::size_t>(io::read_u64(is));
  skips_ = static_cast<std::size_t>(io::read_u64(is));
  drift_signals_ = static_cast<std::size_t>(io::read_u64(is));
  ml::PageHinkley::State ph;
  ph.n = static_cast<std::size_t>(io::read_u64(is));
  ph.mean = io::read_f64(is);
  ph.mt = io::read_f64(is);
  ph.min_mt = io::read_f64(is);
  require(is.good(), "AdaptiveCndIds::restore: truncated snapshot");
  ph_.set_state(ph);
}

}  // namespace cnd::core
