#include "io/model_io.hpp"

#include <fstream>

#include "io/binary.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "tensor/assert.hpp"
#include "eval/threshold.hpp"

namespace cnd::io {

namespace {

// Layer type tags in the artifact format.
constexpr std::uint64_t kLinear = 1, kRelu = 2, kTanh = 3, kSigmoid = 4;

}  // namespace

void write_sequential(std::ostream& os, nn::Sequential& net) {
  // Sequential does not expose its layer list, so the writer reconstructs
  // the structure from the Param list (each Linear contributes a (W, b)
  // pair) and assumes the library's canonical encoder shape
  // [Linear, ReLU]* Linear — which is what every CFE encoder is. The
  // artifact format itself supports Tanh/Sigmoid tags for readers.
  auto params = net.params();
  require(params.size() % 2 == 0 && !params.empty(),
          "write_sequential: unexpected parameter layout");
  const std::size_t n_linear = params.size() / 2;
  write_u64(os, 2 * n_linear - 1);  // layer count: Linear + interleaved ReLU
  for (std::size_t l = 0; l < n_linear; ++l) {
    write_u64(os, kLinear);
    write_matrix(os, *params[2 * l].value);      // W
    write_matrix(os, *params[2 * l + 1].value);  // b
    if (l + 1 < n_linear) write_u64(os, kRelu);
  }
}

nn::Sequential read_sequential(std::istream& is) {
  const std::uint64_t n_layers = read_u64(is);
  require(n_layers >= 1 && n_layers < 1024, "read_sequential: bad layer count");
  nn::Sequential net;
  Rng dummy(0);
  for (std::uint64_t l = 0; l < n_layers; ++l) {
    const std::uint64_t tag = read_u64(is);
    switch (tag) {
      case kLinear: {
        Matrix w = read_matrix(is);
        Matrix b = read_matrix(is);
        auto lin = std::make_unique<nn::Linear>(w.rows(), w.cols(), dummy);
        lin->set_weights(w, b);
        net.add(std::move(lin));
        break;
      }
      case kRelu:
        net.add(std::make_unique<nn::ReLU>());
        break;
      case kTanh:
        net.add(std::make_unique<nn::Tanh>());
        break;
      case kSigmoid:
        net.add(std::make_unique<nn::Sigmoid>());
        break;
      default:
        throw std::runtime_error("read_sequential: unknown layer tag");
    }
  }
  return net;
}

InferenceModel::InferenceModel(const core::CndIds& detector,
                               const ml::StandardScaler& scaler, double threshold)
    : pca_(detector.pca()), scaler_(scaler), threshold_(threshold) {
  require(detector.pca().fitted(),
          "InferenceModel: detector has not observed any experience");
  // Deep-copy the encoder (Sequential copy ctor clones layers).
  encoder_ = detector.cfe().autoencoder().encoder_copy();
}

Matrix InferenceModel::encode(const Matrix& x_raw) {
  require(ready(), "InferenceModel::encode: empty model");
  const Matrix x = scaler_.fitted() ? scaler_.transform(x_raw) : x_raw;
  return encoder_.forward(x, /*train=*/false);
}

std::vector<double> InferenceModel::score(const Matrix& x_raw) {
  require(ready(), "InferenceModel::score: empty model");
  const Matrix x = scaler_.fitted() ? scaler_.transform(x_raw) : x_raw;
  return pca_.score(encoder_.forward(x, /*train=*/false));
}

std::vector<int> InferenceModel::predict(const Matrix& x_raw) {
  return eval::apply_threshold(score(x_raw), threshold_);
}

void InferenceModel::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  require(f.good(), "InferenceModel::save: cannot open " + path);
  write_header(f);
  // Encoder.
  auto& self = const_cast<InferenceModel&>(*this);
  write_sequential(f, self.encoder_);
  // PCA.
  write_vec(f, pca_.center());
  write_matrix(f, pca_.components());
  // Scaler (flag + stats).
  write_u64(f, scaler_.fitted() ? 1 : 0);
  if (scaler_.fitted()) {
    write_vec(f, scaler_.mean());
    write_vec(f, scaler_.stddev());
  }
  write_f64(f, threshold_);
  require(f.good(), "InferenceModel::save: write failed");
}

InferenceModel InferenceModel::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  require(f.good(), "InferenceModel::load: cannot open " + path);
  read_header(f);
  InferenceModel m;
  m.encoder_ = read_sequential(f);
  auto mean = read_vec(f);
  Matrix comps = read_matrix(f);
  m.pca_ = ml::Pca(std::move(mean), std::move(comps));
  if (read_u64(f) == 1) {
    auto smean = read_vec(f);
    auto sstd = read_vec(f);
    m.scaler_ = ml::StandardScaler(std::move(smean), std::move(sstd));
  }
  m.threshold_ = read_f64(f);
  return m;
}

}  // namespace cnd::io
