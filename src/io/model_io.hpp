// Serialization of trained models to deployment artifacts.
//
// An InferenceModel is the frozen scoring path of a trained CND-IDS
// detector: feature scaler -> CFE encoder -> PCA FRE -> threshold. It is
// everything a sensor needs at the edge; training state (decoder, Adam
// moments, snapshots, replay buffers) deliberately stays behind.
#pragma once

#include <string>

#include "core/cnd_ids.hpp"
#include "ml/pca.hpp"
#include "ml/scaler.hpp"
#include "nn/sequential.hpp"

namespace cnd::io {

class InferenceModel {
 public:
  InferenceModel() = default;

  /// Freeze a trained detector into a deployable artifact. `scaler` may be
  /// unfitted when the pipeline feeds pre-scaled features.
  InferenceModel(const core::CndIds& detector, const ml::StandardScaler& scaler,
                 double threshold);

  /// Anomaly score per raw input row (scaling applied when present).
  std::vector<double> score(const Matrix& x_raw);

  /// 0/1 verdicts via the stored threshold.
  std::vector<int> predict(const Matrix& x_raw);

  double threshold() const { return threshold_; }
  bool has_scaler() const { return scaler_.fitted(); }
  bool ready() const { return pca_.fitted(); }

  /// The PCA head (read access, e.g. for core::explain_fre attribution).
  const ml::Pca& pca() const { return pca_; }
  /// Encode raw rows into the latent space the PCA head scores.
  Matrix encode(const Matrix& x_raw);

  void save(const std::string& path) const;
  static InferenceModel load(const std::string& path);

 private:
  nn::Sequential encoder_;
  ml::Pca pca_;
  ml::StandardScaler scaler_;
  double threshold_ = 0.0;
};

/// Serialize an MLP-style Sequential (Linear / ReLU / Tanh / Sigmoid
/// layers). Throws std::invalid_argument on unsupported layer types.
void write_sequential(std::ostream& os, nn::Sequential& net);
nn::Sequential read_sequential(std::istream& is);

}  // namespace cnd::io
