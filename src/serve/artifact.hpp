// Versioned scoring artifacts — the unit of hot-swap in the scoring
// service (docs/SERVING.md).
//
// An artifact freezes everything a shard needs to score flows: the registry
// name of the detector, its serialized snapshot (core snapshot/restore
// contract: model state only, never data), and the calibrated alarm
// threshold. Artifacts are immutable once published; replicas restored from
// the same artifact score byte-identically to each other and to the trainer
// that produced it, which is what makes the service's results independent
// of the shard count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/detector.hpp"
#include "core/detector_factory.hpp"

namespace cnd::serve {

struct ServingArtifact {
  std::uint64_t version = 0;   ///< monotone; bumped on every adaptation.
  std::string detector;        ///< registry name (core::make_detector).
  double threshold = 0.0;      ///< alarm level: verdict = score > threshold.
  std::string model_bytes;     ///< opaque detector snapshot stream.
};

/// Snapshot `det` into a fresh immutable artifact. Throws std::logic_error
/// when the detector does not support snapshots.
std::shared_ptr<const ServingArtifact> make_artifact(
    std::uint64_t version, const std::string& detector_name, double threshold,
    const core::ContinualDetector& det);

/// Build an inference-only replica: construct the artifact's detector
/// through the registry and restore the snapshot into it. `cfg` supplies
/// the non-serialized structural knobs and must match the trainer's.
std::unique_ptr<core::ContinualDetector> restore_replica(
    const ServingArtifact& a, const core::DetectorConfig& cfg = {});

/// Persist an artifact to / load one from a file (io::binary framing, magic
/// + version header). The `cnd snapshot` / `cnd restore` pair round-trips
/// through these.
void save_artifact(const std::string& path, const ServingArtifact& a);
ServingArtifact load_artifact(const std::string& path);

}  // namespace cnd::serve
