// Binary flow-record files — the serving layer's wire format for batches of
// flow feature vectors (docs/SERVING.md).
//
// Layout (little-endian, fvecs/ivecs-style fixed header + payload):
//
//   u32 magic      0xC9D5F10A  ("CND flow")
//   u32 version    1
//   u32 dim        features per flow
//   u64 count      number of flows
//   f32 payload    count x dim, row-major
//
// The payload is float32 on purpose: flow features are sensor readings, not
// accumulators — single precision halves the file and doubles the flows a
// page of cache holds, and every consumer widens to double before any
// arithmetic (the determinism contract is stated for double accumulation,
// and float->double widening is exact). src/serve is deliberately outside
// the lint no-float layers.
//
// FlowRecordFile memory-maps the payload read-only and hands out zero-copy
// row spans; when mmap is unavailable it falls back to reading the file
// into an owned buffer with identical semantics. FlowRecordWriter is the
// producer side used by benches, tests, and `cnd pack`.
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace cnd::serve {

inline constexpr std::uint32_t kFlowMagic = 0xC9D5F10A;
inline constexpr std::uint32_t kFlowVersion = 1;
/// Header size in bytes: magic + version + dim + count.
inline constexpr std::size_t kFlowHeaderBytes = 4 + 4 + 4 + 8;

/// Read-only view over a flow-record file. Rows are zero-copy spans into
/// the mapped payload. Move-only (owns the mapping).
class FlowRecordFile {
 public:
  FlowRecordFile() = default;
  /// Opens and maps `path`; throws std::runtime_error on open/parse
  /// failure, std::invalid_argument on a malformed header.
  explicit FlowRecordFile(const std::string& path);
  ~FlowRecordFile();

  FlowRecordFile(const FlowRecordFile&) = delete;
  FlowRecordFile& operator=(const FlowRecordFile&) = delete;
  FlowRecordFile(FlowRecordFile&& o) noexcept;
  FlowRecordFile& operator=(FlowRecordFile&& o) noexcept;

  bool open() const { return data_ != nullptr; }
  std::size_t rows() const { return rows_; }
  std::size_t dim() const { return dim_; }
  /// True when the payload is a live mmap (false: owned-buffer fallback).
  bool mapped() const { return mapped_; }

  /// Zero-copy view of one flow (length dim()).
  std::span<const float> row(std::size_t i) const;

  /// Widen rows [lo, hi) into `out` (resized to (hi-lo) x dim; reuses its
  /// allocation when the shape already matches). This is the batch-assembly
  /// path of the serving loop.
  void copy_rows_into(std::size_t lo, std::size_t hi, Matrix& out) const;

 private:
  void close() noexcept;

  const float* data_ = nullptr;     ///< payload start (mapped or owned).
  std::size_t rows_ = 0;
  std::size_t dim_ = 0;
  bool mapped_ = false;
  void* map_base_ = nullptr;        ///< mmap base (header included).
  std::size_t map_len_ = 0;
  std::vector<float> owned_;        ///< fallback storage when !mapped_.
};

/// Streaming writer: append batches, then close() patches the row count
/// into the header. The file is invalid until close() (or the destructor)
/// runs.
class FlowRecordWriter {
 public:
  /// Throws std::runtime_error when `path` cannot be opened.
  FlowRecordWriter(const std::string& path, std::size_t dim);
  ~FlowRecordWriter();

  FlowRecordWriter(const FlowRecordWriter&) = delete;
  FlowRecordWriter& operator=(const FlowRecordWriter&) = delete;

  /// Narrow `rows` (n x dim) to float32 and append.
  void append(const Matrix& rows);

  std::size_t rows_written() const { return rows_; }

  /// Flush, patch the header's count, and close. Idempotent.
  void close();

 private:
  std::FILE* f_ = nullptr;
  std::string path_;
  std::size_t dim_ = 0;
  std::size_t rows_ = 0;
};

}  // namespace cnd::serve
