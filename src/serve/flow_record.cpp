#include "serve/flow_record.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "tensor/assert.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define CND_SERVE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define CND_SERVE_HAVE_MMAP 0
#endif

namespace cnd::serve {

namespace {

struct Header {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t dim = 0;
  std::uint64_t count = 0;
};

Header parse_header(const unsigned char* bytes) {
  Header h;
  std::memcpy(&h.magic, bytes, 4);
  std::memcpy(&h.version, bytes + 4, 4);
  std::memcpy(&h.dim, bytes + 8, 4);
  std::memcpy(&h.count, bytes + 12, 8);
  return h;
}

void validate_header(const Header& h, std::size_t payload_bytes,
                     const std::string& path) {
  require(h.magic == kFlowMagic,
          "FlowRecordFile: " + path + " is not a flow-record file");
  require(h.version == kFlowVersion,
          "FlowRecordFile: " + path + " has unsupported format version");
  require(h.dim > 0, "FlowRecordFile: " + path + " has zero feature width");
  const std::uint64_t need = h.count * h.dim * sizeof(float);
  require(payload_bytes >= need,
          "FlowRecordFile: " + path + " is truncated (header promises more "
          "rows than the payload holds)");
}

}  // namespace

FlowRecordFile::FlowRecordFile(const std::string& path) {
#if CND_SERVE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st{};
    if (::fstat(fd, &st) == 0 &&
        static_cast<std::size_t>(st.st_size) >= kFlowHeaderBytes) {
      const auto len = static_cast<std::size_t>(st.st_size);
      void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);  // the mapping keeps the file alive
      if (base != MAP_FAILED) {
        const Header h = parse_header(static_cast<const unsigned char*>(base));
        try {
          validate_header(h, len - kFlowHeaderBytes, path);
        } catch (...) {
          ::munmap(base, len);
          throw;
        }
        map_base_ = base;
        map_len_ = len;
        mapped_ = true;
        data_ = reinterpret_cast<const float*>(
            static_cast<const unsigned char*>(base) + kFlowHeaderBytes);
        dim_ = h.dim;
        rows_ = static_cast<std::size_t>(h.count);
        return;
      }
    } else {
      ::close(fd);
    }
  }
#endif
  // Fallback: read the whole file into an owned buffer. Same semantics,
  // no zero-copy. Also the path taken for files too small to hold a header
  // (so the error message comes from the validator, not from mmap).
  std::ifstream in(path, std::ios::binary);
  if (!in.good())
    throw std::runtime_error("FlowRecordFile: cannot open " + path);
  unsigned char hdr[kFlowHeaderBytes];
  in.read(reinterpret_cast<char*>(hdr), static_cast<std::streamsize>(kFlowHeaderBytes));
  require(in.gcount() == static_cast<std::streamsize>(kFlowHeaderBytes),
          "FlowRecordFile: " + path + " is too small to hold a header");
  const Header h = parse_header(hdr);
  owned_.resize(static_cast<std::size_t>(h.count) * h.dim);
  in.read(reinterpret_cast<char*>(owned_.data()),
          static_cast<std::streamsize>(owned_.size() * sizeof(float)));
  validate_header(h, static_cast<std::size_t>(in.gcount()), path);
  data_ = owned_.data();
  dim_ = h.dim;
  rows_ = static_cast<std::size_t>(h.count);
}

void FlowRecordFile::close() noexcept {
#if CND_SERVE_HAVE_MMAP
  if (mapped_ && map_base_ != nullptr) ::munmap(map_base_, map_len_);
#endif
  map_base_ = nullptr;
  map_len_ = 0;
  mapped_ = false;
  data_ = nullptr;
  rows_ = 0;
  dim_ = 0;
  owned_.clear();
}

FlowRecordFile::~FlowRecordFile() { close(); }

FlowRecordFile::FlowRecordFile(FlowRecordFile&& o) noexcept { *this = std::move(o); }

FlowRecordFile& FlowRecordFile::operator=(FlowRecordFile&& o) noexcept {
  if (this == &o) return *this;
  close();
  owned_ = std::move(o.owned_);
  data_ = o.data_;
  rows_ = o.rows_;
  dim_ = o.dim_;
  mapped_ = o.mapped_;
  map_base_ = o.map_base_;
  map_len_ = o.map_len_;
  o.data_ = nullptr;
  o.map_base_ = nullptr;
  o.map_len_ = 0;
  o.mapped_ = false;
  o.rows_ = 0;
  o.dim_ = 0;
  o.owned_.clear();
  return *this;
}

std::span<const float> FlowRecordFile::row(std::size_t i) const {
  require(open(), "FlowRecordFile::row: no file open");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  require(i < rows_, "FlowRecordFile::row: row index out of range");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  return {data_ + i * dim_, dim_};
}

void FlowRecordFile::copy_rows_into(std::size_t lo, std::size_t hi,
                                    Matrix& out) const {
  require(open(), "FlowRecordFile::copy_rows_into: no file open");
  require(lo <= hi && hi <= rows_, "FlowRecordFile::copy_rows_into: bad range");
  out.resize(hi - lo, dim_);
  for (std::size_t i = lo; i < hi; ++i) {
    const float* src = data_ + i * dim_;
    auto dst = out.row(i - lo);
    // float -> double widening is exact: the serving scores are bit-equal
    // to scoring the same values from any other double-typed source.
    for (std::size_t j = 0; j < dim_; ++j) dst[j] = static_cast<double>(src[j]);
  }
}

FlowRecordWriter::FlowRecordWriter(const std::string& path, std::size_t dim)
    : path_(path), dim_(dim) {
  require(dim > 0, "FlowRecordWriter: dim must be > 0");
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr)
    throw std::runtime_error("FlowRecordWriter: cannot open " + path);
  const std::uint32_t magic = kFlowMagic, version = kFlowVersion;
  const auto dim32 = static_cast<std::uint32_t>(dim);
  const std::uint64_t count = 0;  // patched by close()
  std::fwrite(&magic, 4, 1, f_);
  std::fwrite(&version, 4, 1, f_);
  std::fwrite(&dim32, 4, 1, f_);
  std::fwrite(&count, 8, 1, f_);
}

void FlowRecordWriter::append(const Matrix& rows) {
  require(f_ != nullptr, "FlowRecordWriter::append: writer is closed");
  require(rows.cols() == dim_, "FlowRecordWriter::append: feature mismatch");
  std::vector<float> buf(rows.cols());
  for (std::size_t i = 0; i < rows.rows(); ++i) {
    auto r = rows.row(i);
    for (std::size_t j = 0; j < rows.cols(); ++j)
      buf[j] = static_cast<float>(r[j]);
    std::fwrite(buf.data(), sizeof(float), buf.size(), f_);
  }
  rows_ += rows.rows();
}

void FlowRecordWriter::close() {
  if (f_ == nullptr) return;
  // Patch the row count now that it is known.
  const auto count = static_cast<std::uint64_t>(rows_);
  std::fseek(f_, 12, SEEK_SET);
  std::fwrite(&count, 8, 1, f_);
  const int rc = std::fclose(f_);
  f_ = nullptr;
  if (rc != 0)
    throw std::runtime_error("FlowRecordWriter: close failed for " + path_);
}

FlowRecordWriter::~FlowRecordWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; an unflushed file surfaces on read.
  }
}

}  // namespace cnd::serve
