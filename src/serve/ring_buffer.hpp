// Fixed-capacity admission queue for the scoring service (docs/SERVING.md).
//
// Single policy decision, stated once: the producer is NEVER blocked
// unboundedly. A full queue rejects the push (`try_push` returns false and
// the caller counts the rejection); consumers block on `pop` because shard
// workers have nothing else to do. Capacity is fixed at construction — a
// bounded queue is the backpressure mechanism, not an optimization.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "runtime/annotated_mutex.hpp"
#include "tensor/assert.hpp"

namespace cnd::serve {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : capacity_(capacity), slots_(capacity) {
    require(capacity > 0, "RingBuffer: capacity must be > 0");
  }

  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  /// Admit one item. Returns false immediately when the queue is full or
  /// closed — the caller decides whether to retry, drop, or shed load. The
  /// producer never sleeps here: one bounded O(1) critical section, no
  /// cv wait, no allocation (the slot vector is sized at construction).
  // cnd-wait-free
  bool try_push(T item) {
    {
      runtime::MutexLock lock(mu_);  // cnd-block-ok(bounded O(1) admission critical section; never waits on a cv)
      if (closed_ || size_ == slots_.size()) return false;
      slots_[(head_ + size_) % slots_.size()] = std::move(item);
      ++size_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed AND drained.
  /// std::nullopt means shutdown: no more items will ever arrive.
  std::optional<T> pop() {
    runtime::MutexLock lock(mu_);
    while (!(size_ > 0 || closed_)) not_empty_.wait(lock);
    if (size_ == 0) return std::nullopt;
    T item = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --size_;
    return item;
  }

  /// Stop admitting; consumers drain the remaining items, then see nullopt.
  void close() {
    {
      runtime::MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  std::size_t capacity() const { return capacity_; }

  // cnd-block-ok(bounded O(1) size probe under mu_; never waits on a cv)
  std::size_t size() const {
    runtime::MutexLock lock(mu_);
    return size_;
  }

 private:
  mutable runtime::AnnotatedMutex mu_;
  runtime::CondVar not_empty_;
  /// Fixed at construction; duplicated outside the guarded state so
  /// capacity() stays lock-free for producer-side sizing decisions.
  std::size_t capacity_;
  std::vector<T> slots_ CND_GUARDED_BY(mu_);
  std::size_t head_ CND_GUARDED_BY(mu_) = 0;
  std::size_t size_ CND_GUARDED_BY(mu_) = 0;
  bool closed_ CND_GUARDED_BY(mu_) = false;
};

}  // namespace cnd::serve
