// Fixed-capacity admission queue for the scoring service (docs/SERVING.md).
//
// Single policy decision, stated once: the producer is NEVER blocked
// unboundedly. A full queue rejects the push (`try_push` returns false and
// the caller counts the rejection); consumers block on `pop` because shard
// workers have nothing else to do. Capacity is fixed at construction — a
// bounded queue is the backpressure mechanism, not an optimization.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

#include "tensor/assert.hpp"

namespace cnd::serve {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : slots_(capacity) {
    require(capacity > 0, "RingBuffer: capacity must be > 0");
  }

  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  /// Admit one item. Returns false immediately when the queue is full or
  /// closed — the caller decides whether to retry, drop, or shed load.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || size_ == slots_.size()) return false;
      slots_[(head_ + size_) % slots_.size()] = std::move(item);
      ++size_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed AND drained.
  /// std::nullopt means shutdown: no more items will ever arrive.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) return std::nullopt;
    T item = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --size_;
    return item;
  }

  /// Stop admitting; consumers drain the remaining items, then see nullopt.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  std::size_t capacity() const { return slots_.size(); }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace cnd::serve
