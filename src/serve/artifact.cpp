#include "serve/artifact.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/binary.hpp"
#include "tensor/assert.hpp"

namespace cnd::serve {

std::shared_ptr<const ServingArtifact> make_artifact(
    std::uint64_t version, const std::string& detector_name, double threshold,
    const core::ContinualDetector& det) {
  if (!det.supports_snapshot())
    throw std::logic_error("make_artifact: " + detector_name +
                           " does not support snapshots");
  auto a = std::make_shared<ServingArtifact>();
  a->version = version;
  a->detector = detector_name;
  a->threshold = threshold;
  std::ostringstream os(std::ios::binary);
  det.snapshot(os);
  a->model_bytes = std::move(os).str();
  return a;
}

std::unique_ptr<core::ContinualDetector> restore_replica(
    const ServingArtifact& a, const core::DetectorConfig& cfg) {
  auto det = core::make_detector(a.detector, cfg);
  std::istringstream is(a.model_bytes, std::ios::binary);
  det->restore(is);
  return det;
}

void save_artifact(const std::string& path, const ServingArtifact& a) {
  std::ofstream os(path, std::ios::binary);
  if (!os.good())
    throw std::runtime_error("save_artifact: cannot open " + path);
  io::write_header(os);
  io::write_u64(os, a.version);
  io::write_string(os, a.detector);
  io::write_f64(os, a.threshold);
  io::write_string(os, a.model_bytes);
  require(os.good(), "save_artifact: write failed for " + path);
}

ServingArtifact load_artifact(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good())
    throw std::runtime_error("load_artifact: cannot open " + path);
  io::read_header(is);
  ServingArtifact a;
  a.version = io::read_u64(is);
  a.detector = io::read_string(is);
  a.threshold = io::read_f64(is);
  a.model_bytes = io::read_string(is);
  require(is.good(), "load_artifact: truncated artifact " + path);
  return a;
}

}  // namespace cnd::serve
