// Sharded scoring service — StreamingCndIds promoted to a production shape
// (docs/SERVING.md).
//
// Topology: one producer thread (the caller of try_submit) feeds a bounded
// admission queue; N shard workers pop batches and score them against an
// inference-only replica of the current artifact. A trainer detector — the
// "background copy" — holds the full training state and never serves; an
// adaptation round runs on it synchronously inside try_submit at
// deterministic admitted-flow boundaries, then publishes a new artifact
// version. Batches admitted after the publish carry the new version, so
// every shard hot-swaps its replica on the next batch it pops — the swap is
// a wholesale pointer exchange, never an in-place mutation of a scoring
// model.
//
// Determinism across shard counts: a batch's artifact version is fixed at
// admission (a function of the admitted-flow count only, never of worker
// timing), and replicas restored from one artifact score byte-identically
// to each other and to the trainer. Hence the scores and verdicts of every
// admitted batch are the same at 1 shard and at 16 — check_determinism.sh
// holds the serving leg to exactly that.
//
// Backpressure: a full queue rejects the submission (try_submit returns
// false, serve.rejected_total counts it). The producer is never blocked;
// shedding or retrying is its call.
//
// Shard workers are dedicated std::threads, not runtime::ThreadPool lanes:
// they block on the queue for their whole life, which would starve the
// pool's chunk lanes. A replica's own batch scoring still runs through the
// pool (ThreadPool::run serializes concurrent callers).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/detector_factory.hpp"
#include "runtime/annotated_mutex.hpp"
#include "serve/artifact.hpp"
#include "serve/ring_buffer.hpp"
#include "tensor/matrix.hpp"

namespace cnd::serve {

struct ServiceConfig {
  /// Registry name of the detector; must support_snapshot().
  std::string detector = "CND-IDS";
  core::DetectorConfig detector_cfg;
  std::size_t shards = 1;
  std::size_t queue_capacity = 64;
  /// POT target false-alarm probability for the calibrated threshold.
  double target_fpr = 0.01;
  /// 0 = adaptation off. Otherwise an adaptation round (trainer
  /// observe_experience on the flows admitted since the last round +
  /// threshold recalibration on the clean window + artifact publish) runs
  /// each time the admitted-flow count crosses a multiple of this value.
  std::size_t adapt_interval_flows = 0;
  /// Free each batch's input rows once it is scored. On a million-flow soak
  /// the retained inputs would dwarf everything else; tests that assert on
  /// BatchResult::input after drain() turn this off.
  bool release_scored_inputs = true;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// One admitted batch: the input rows, the artifact version that must score
/// them, and the worker-filled outputs.
struct BatchResult {
  Matrix input;
  std::shared_ptr<const ServingArtifact> artifact;
  std::uint64_t first_flow = 0;  ///< global index of the batch's first flow.
  std::vector<double> scores;
  std::vector<int> verdicts;
};

class ScoringService {
 public:
  explicit ScoringService(const ServiceConfig& cfg);
  /// Joins the shard workers (drains the queue first).
  ~ScoringService();

  ScoringService(const ScoringService&) = delete;
  ScoringService& operator=(const ScoringService&) = delete;

  /// Train the trainer on the operator-vouched clean window, calibrate the
  /// threshold, publish artifact v1, and start the shard workers. Must be
  /// called exactly once before try_submit.
  void bootstrap(const Matrix& n_clean);

  /// Admit one batch for scoring. Returns false (and counts the rejection)
  /// when the queue is full — backpressure, never blocking. May run a
  /// synchronous adaptation round after admission (see
  /// ServiceConfig::adapt_interval_flows). Only one thread may submit.
  bool try_submit(const Matrix& batch);

  /// Block until every admitted batch has been scored.
  void drain();

  /// Stop admitting, drain, and join the workers. Idempotent.
  void shutdown();

  /// All admitted batches in admission order. Stable references; outputs of
  /// a batch are valid once drain() returns (or shutdown()).
  const std::deque<BatchResult>& results() const { return results_; }

  std::uint64_t artifact_version() const { return version_; }
  double threshold() const { return threshold_; }
  std::uint64_t flows_admitted() const { return flows_admitted_; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t adaptations() const { return adaptations_; }
  /// Replica (re)builds across all shards, initial loads included.
  std::uint64_t swaps() const { return swaps_.load(std::memory_order_relaxed); }

 private:
  void worker_loop();
  /// Buffer admitted flows and run the adaptation round when due.
  void maybe_adapt(const Matrix& batch);
  /// Snapshot the trainer into artifact version_ + 1.
  void publish();

  ServiceConfig cfg_;
  std::unique_ptr<core::ContinualDetector> trainer_;
  Matrix n_clean_;
  Matrix adapt_buffer_;
  std::shared_ptr<const ServingArtifact> artifact_;  ///< producer-only.
  std::uint64_t version_ = 0;
  double threshold_ = 0.0;
  std::uint64_t flows_admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t adaptations_ = 0;
  std::atomic<std::uint64_t> swaps_{0};

  /// Admission order; std::deque for reference stability — workers write
  /// through pointers into elements while the producer appends new ones.
  std::deque<BatchResult> results_;
  RingBuffer<BatchResult*> queue_;
  std::vector<std::thread> workers_;
  runtime::AnnotatedMutex pending_mu_;
  runtime::CondVar drained_cv_;  ///< drain() sleeps here until pending_ hits 0.
  std::size_t pending_ CND_GUARDED_BY(pending_mu_) = 0;  ///< admitted but not yet scored.
  bool running_ = false;  ///< producer-only, like the artifact_/version_ block above.
};

}  // namespace cnd::serve
