#include "serve/service.hpp"

#include <stdexcept>

#include "eval/robust_threshold.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "tensor/assert.hpp"

namespace cnd::serve {

// cnd-throw-ok(config validation — runs once at construction/bootstrap, never per batch)
void ServiceConfig::validate() const {
  require(!detector.empty(), "ServiceConfig: detector name is empty");
  require(shards >= 1, "ServiceConfig: shards must be >= 1");
  require(queue_capacity >= 1, "ServiceConfig: queue_capacity must be >= 1");
  require(target_fpr > 0.0 && target_fpr < 0.05,
          "ServiceConfig: target_fpr out of (0, 0.05)");
}

ScoringService::ScoringService(const ServiceConfig& cfg)
    : cfg_((cfg.validate(), cfg)), queue_(cfg.queue_capacity) {}

ScoringService::~ScoringService() { shutdown(); }

void ScoringService::bootstrap(const Matrix& n_clean) {
  if (trainer_)
    throw std::logic_error("ScoringService::bootstrap: already bootstrapped");
  require(n_clean.rows() >= 32, "ScoringService::bootstrap: clean window too small");
  n_clean_ = n_clean;
  trainer_ = core::make_detector(cfg_.detector, cfg_.detector_cfg);
  if (!trainer_->supports_snapshot())
    throw std::invalid_argument("ScoringService: " + cfg_.detector +
                                " does not support snapshots and cannot serve");
  Matrix seed_x;
  std::vector<int> seed_y;
  trainer_->setup(core::SetupContext{n_clean_, seed_x, seed_y});
  // Bootstrap round: the clean window doubles as the first training stream
  // (same protocol as StreamingCndIds::bootstrap).
  trainer_->observe_experience(n_clean_);
  threshold_ = eval::pot_threshold(
      trainer_->score(n_clean_),
      {.tail_quantile = 0.9, .target_prob = cfg_.target_fpr});
  publish();

  running_ = true;
  workers_.reserve(cfg_.shards);
  for (std::size_t s = 0; s < cfg_.shards; ++s)
    workers_.emplace_back(&ScoringService::worker_loop, this);

  obs::metrics().gauge("serve.threshold").set(threshold_);
  obs::metrics().gauge("serve.shards").set(static_cast<double>(cfg_.shards));
  obs::events().emit("serve.bootstrap", {{"clean_rows", n_clean.rows()},
                                         {"shards", cfg_.shards},
                                         {"threshold", threshold_}});
}

void ScoringService::publish() {
  ++version_;
  artifact_ = make_artifact(version_, cfg_.detector, threshold_, *trainer_);
  obs::metrics().gauge("serve.artifact_version").set(static_cast<double>(version_));
}

bool ScoringService::try_submit(const Matrix& batch) {
  if (!running_)
    throw std::logic_error(
        "ScoringService::try_submit: bootstrap() not called (or the service "
        "was shut down)");
  require(batch.rows() > 0, "ScoringService::try_submit: empty batch");
  require(batch.cols() == n_clean_.cols(),
          "ScoringService::try_submit: batch width differs from the clean window");

  results_.push_back(BatchResult{});
  BatchResult& slot = results_.back();
  slot.input = batch;
  slot.artifact = artifact_;
  slot.first_flow = flows_admitted_;
  {
    runtime::MutexLock lock(pending_mu_);
    ++pending_;
  }
  if (!queue_.try_push(&slot)) {
    {
      runtime::MutexLock lock(pending_mu_);
      --pending_;
    }
    // No worker ever saw the slot; dropping it keeps results() = admitted
    // batches exactly.
    results_.pop_back();
    ++rejected_;
    obs::metrics().counter("serve.rejected_total").add(1);
    return false;
  }
  flows_admitted_ += batch.rows();
  obs::metrics().gauge("serve.queue_depth").set(static_cast<double>(queue_.size()));
  maybe_adapt(batch);
  return true;
}

void ScoringService::maybe_adapt(const Matrix& batch) {
  if (cfg_.adapt_interval_flows == 0) return;
  adapt_buffer_.append_rows(batch);
  const std::uint64_t rounds_due = flows_admitted_ / cfg_.adapt_interval_flows;
  if (rounds_due <= adaptations_) return;

  const std::size_t buffer_rows = adapt_buffer_.rows();
  obs::ScopedTimer timer(obs::metrics(), "serve.adaptation_ms");
  trainer_->observe_experience(adapt_buffer_);
  // Recalibrate on the vouched clean window, never the live buffer — the
  // same argument as StreamingCndIds::adapt.
  threshold_ = eval::pot_threshold(
      trainer_->score(n_clean_),
      {.tail_quantile = 0.9, .target_prob = cfg_.target_fpr});
  adapt_buffer_ = Matrix();
  publish();
  ++adaptations_;
  const double duration_ms = timer.stop_ms();
  obs::MetricsRegistry& m = obs::metrics();
  m.counter("serve.adaptations_total").add(1);
  m.gauge("serve.threshold").set(threshold_);
  obs::events().emit("serve.adaptation", {{"round", adaptations_},
                                          {"buffer_rows", buffer_rows},
                                          {"version", version_},
                                          {"threshold", threshold_},
                                          {"duration_ms", duration_ms}});
}

namespace {

// The serving hot loop: score the batch and apply the artifact's threshold,
// all through slot-owned storage — steady state (fixed batch shape, no
// swap) never touches the heap, takes no lock, and never sleeps.
// cnd-hot cnd-wait-free
void score_slot(core::ContinualDetector& replica, BatchResult& slot) {
  replica.score_into(slot.input, slot.scores);
  const double thr = slot.artifact->threshold;
  slot.verdicts.resize(slot.scores.size());
  for (std::size_t i = 0; i < slot.scores.size(); ++i)
    slot.verdicts[i] = slot.scores[i] > thr ? 1 : 0;
}

}  // namespace

void ScoringService::worker_loop() {
  std::unique_ptr<core::ContinualDetector> replica;
  std::uint64_t local_version = 0;
  obs::MetricsRegistry& m = obs::metrics();
  // Cache the handles: the loop body must not repeat name lookups.
  obs::Histogram& score_ms = m.histogram("serve.score_ms");
  obs::Counter& batches = m.counter("serve.batches_total");
  obs::Counter& flows = m.counter("serve.flows_total");
  obs::Counter& swaps = m.counter("serve.swaps_total");

  while (auto slot = queue_.pop()) {
    BatchResult& b = **slot;
    if (!replica || b.artifact->version != local_version) {
      // Hot swap: build the new replica, then exchange wholesale. The old
      // model keeps scoring nothing — it is destroyed, never mutated.
      replica = restore_replica(*b.artifact, cfg_.detector_cfg);
      local_version = b.artifact->version;
      swaps_.fetch_add(1, std::memory_order_relaxed);
      swaps.add(1);
    }
    {
      obs::ScopedTimer timer(score_ms);
      score_slot(*replica, b);
    }
    batches.add(1);
    flows.add(b.scores.size());
    if (cfg_.release_scored_inputs) b.input = Matrix();
    {
      runtime::MutexLock lock(pending_mu_);
      --pending_;
      if (pending_ == 0) drained_cv_.notify_all();
    }
  }
}

void ScoringService::drain() {
  runtime::MutexLock lock(pending_mu_);
  while (pending_ != 0) drained_cv_.wait(lock);
}

void ScoringService::shutdown() {
  if (!running_) return;
  queue_.close();
  for (auto& w : workers_) w.join();
  workers_.clear();
  running_ = false;
}

}  // namespace cnd::serve
