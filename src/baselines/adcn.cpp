#include "baselines/adcn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/stats.hpp"
#include "ml/elbow.hpp"
#include "ml/kmeans.hpp"
#include "nn/losses.hpp"
#include "tensor/assert.hpp"

namespace cnd::baselines {

Adcn::Adcn(const AdcnConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed), opt_(cfg.lr) {}

void Adcn::setup(const core::SetupContext& ctx) {
  require(!ctx.seed_x.empty(), "Adcn::setup: needs a labeled seed set");
  require(ctx.seed_x.rows() == ctx.seed_y.size(), "Adcn::setup: seed size mismatch");
  seed_x_ = ctx.seed_x;
  seed_y_ = ctx.seed_y;
}

std::vector<std::size_t> Adcn::assign(const Matrix& latent) const {
  std::vector<std::size_t> out(latent.rows());
  for (std::size_t i = 0; i < latent.rows(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t arg = 0;
    for (std::size_t c = 0; c < centroids_.rows(); ++c) {
      const double d = sq_dist(latent.row(i), centroids_.row(c));
      if (d < best) {
        best = d;
        arg = c;
      }
    }
    out[i] = arg;
  }
  return out;
}

void Adcn::observe_experience(const Matrix& x_train) {
  require(!seed_x_.empty(), "Adcn::observe_experience: setup() not called");
  if (!ae_.initialized()) {
    ae_ = nn::Autoencoder({.input_dim = x_train.cols(),
                           .hidden_dim = cfg_.hidden_dim,
                           .latent_dim = cfg_.latent_dim},
                          rng_);
  }

  // Train the AE: reconstruction + cluster pull + latent distillation.
  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    auto order = rng_.permutation(x_train.rows());
    for (std::size_t start = 0; start < order.size(); start += cfg_.batch_size) {
      const std::size_t end = std::min(start + cfg_.batch_size, order.size());
      if (end - start < 4) break;
      std::vector<std::size_t> idx(order.begin() + static_cast<std::ptrdiff_t>(start),
                                   order.begin() + static_cast<std::ptrdiff_t>(end));
      Matrix xb = x_train.take_rows(idx);

      ae_.zero_grad();
      Matrix h = ae_.encoder().forward(xb, /*train=*/true);
      Matrix grad_h(h.rows(), h.cols());

      Matrix xhat = ae_.decoder().forward(h, /*train=*/true);
      nn::LossGrad r = nn::mse_loss(xhat, xb);
      grad_h += ae_.decoder().backward(r.grad);

      // Cluster pull: move latents toward their nearest centroid (deep
      // clustering term); only once centroids exist.
      if (!centroids_.empty()) {
        const auto a = assign(h);
        Matrix target = h;
        for (std::size_t i = 0; i < h.rows(); ++i) target.set_row(i, centroids_.row(a[i]));
        nn::LossGrad cl = nn::mse_loss(h, target);
        cl.grad *= cfg_.lambda_cluster;
        grad_h += cl.grad;
      }

      if (has_prev_) {
        Matrix h_prev = prev_encoder_.forward(xb, /*train=*/false);
        nn::LossGrad d = nn::mse_loss(h, h_prev);
        d.grad *= cfg_.lambda_distill;
        grad_h += d.grad;
      }

      ae_.encoder().backward(grad_h);
      opt_.step(ae_.params());
    }
  }

  // Cluster maintenance in the new latent space.
  Matrix latent = ae_.encoder().forward(x_train, /*train=*/false);
  if (centroids_.empty()) {
    const std::size_t k =
        cfg_.init_k != 0 ? cfg_.init_k : ml::elbow_k(latent, rng_);
    ml::KMeans km({.k = k});
    km.fit(latent, rng_);
    centroids_ = km.centroids();
  } else {
    // Autonomous growth: points far from every centroid spawn new clusters.
    std::vector<double> dmin(latent.rows());
    for (std::size_t i = 0; i < latent.rows(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < centroids_.rows(); ++c)
        best = std::min(best, sq_dist(latent.row(i), centroids_.row(c)));
      dmin[i] = std::sqrt(best);
    }
    const double cut = linalg::quantile(dmin, cfg_.spawn_quantile);
    std::vector<std::size_t> far;
    for (std::size_t i = 0; i < dmin.size(); ++i)
      if (dmin[i] > cut) far.push_back(i);
    if (far.size() >= 8 && centroids_.rows() < cfg_.max_clusters) {
      const std::size_t spawn = std::min<std::size_t>(
          {2, cfg_.max_clusters - centroids_.rows(), far.size() / 4});
      if (spawn >= 1) {
        ml::KMeans km({.k = spawn});
        Matrix far_latent = latent.take_rows(far);
        km.fit(far_latent, rng_);
        centroids_.append_rows(km.centroids());
      }
    }
    // One refinement pass: recenter each centroid on its assigned points.
    const auto a = assign(latent);
    Matrix sums(centroids_.rows(), centroids_.cols());
    std::vector<std::size_t> counts(centroids_.rows(), 0);
    for (std::size_t i = 0; i < latent.rows(); ++i) {
      auto s = sums.row(a[i]);
      auto l = latent.row(i);
      for (std::size_t j = 0; j < latent.cols(); ++j) s[j] += l[j];
      ++counts[a[i]];
    }
    for (std::size_t c = 0; c < centroids_.rows(); ++c) {
      if (counts[c] == 0) continue;
      auto s = sums.row(c);
      auto ct = centroids_.row(c);
      for (std::size_t j = 0; j < centroids_.cols(); ++j)
        ct[j] = s[j] / static_cast<double>(counts[c]);
    }
  }

  relabel_clusters();
  prev_encoder_ = ae_.encoder();
  has_prev_ = true;
}

void Adcn::relabel_clusters() {
  // Majority label of the seed points assigned to each cluster; clusters
  // with no seed points inherit the label of the nearest seed point's
  // cluster-free vote (label of the single nearest seed row).
  Matrix seed_latent = ae_.encoder().forward(seed_x_, /*train=*/false);
  const auto a = assign(seed_latent);
  std::vector<int> pos(centroids_.rows(), 0), neg(centroids_.rows(), 0);
  for (std::size_t i = 0; i < a.size(); ++i)
    (seed_y_[i] == 1 ? pos[a[i]] : neg[a[i]])++;

  cluster_label_.assign(centroids_.rows(), -1);
  for (std::size_t c = 0; c < centroids_.rows(); ++c)
    if (pos[c] + neg[c] > 0) cluster_label_[c] = pos[c] > neg[c] ? 1 : 0;

  for (std::size_t c = 0; c < centroids_.rows(); ++c) {
    if (cluster_label_[c] != -1) continue;
    double best = std::numeric_limits<double>::infinity();
    int lbl = 0;
    for (std::size_t i = 0; i < seed_latent.rows(); ++i) {
      const double d = sq_dist(centroids_.row(c), seed_latent.row(i));
      if (d < best) {
        best = d;
        lbl = seed_y_[i];
      }
    }
    cluster_label_[c] = lbl;
  }
}

std::vector<double> Adcn::score(const Matrix&) {
  throw std::logic_error("Adcn: cluster classifier has no anomaly scores");
}

std::vector<int> Adcn::predict(const Matrix& x_test) {
  require(!centroids_.empty(), "Adcn::predict: no experience observed yet");
  Matrix latent = ae_.encoder().forward(x_test, /*train=*/false);
  const auto a = assign(latent);
  std::vector<int> out(x_test.rows());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = cluster_label_[a[i]];
  return out;
}

}  // namespace cnd::baselines
