#include "baselines/lwf.hpp"

#include <algorithm>
#include <limits>

#include "ml/elbow.hpp"
#include "nn/losses.hpp"
#include "tensor/assert.hpp"

namespace cnd::baselines {

Lwf::Lwf(const LwfConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed), opt_(cfg.lr), km_({.k = 1}) {}

void Lwf::setup(const core::SetupContext& ctx) {
  require(!ctx.seed_x.empty(), "Lwf::setup: needs a labeled seed set");
  require(ctx.seed_x.rows() == ctx.seed_y.size(), "Lwf::setup: seed size mismatch");
  seed_x_ = ctx.seed_x;
  seed_y_ = ctx.seed_y;
}

void Lwf::observe_experience(const Matrix& x_train) {
  require(!seed_x_.empty(), "Lwf::observe_experience: setup() not called");
  if (!ae_.initialized()) {
    ae_ = nn::Autoencoder({.input_dim = x_train.cols(),
                           .hidden_dim = cfg_.hidden_dim,
                           .latent_dim = cfg_.latent_dim},
                          rng_);
  }

  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    auto order = rng_.permutation(x_train.rows());
    for (std::size_t start = 0; start < order.size(); start += cfg_.batch_size) {
      const std::size_t end = std::min(start + cfg_.batch_size, order.size());
      if (end - start < 4) break;
      std::vector<std::size_t> idx(order.begin() + static_cast<std::ptrdiff_t>(start),
                                   order.begin() + static_cast<std::ptrdiff_t>(end));
      Matrix xb = x_train.take_rows(idx);

      ae_.zero_grad();
      Matrix h = ae_.encoder().forward(xb, /*train=*/true);
      Matrix grad_h(h.rows(), h.cols());

      // New-task objective: reconstruct the incoming stream.
      Matrix xhat = ae_.decoder().forward(h, /*train=*/true);
      nn::LossGrad r = nn::mse_loss(xhat, xb);
      Matrix grad_xhat = r.grad;

      // LwF: distill the previous model's responses on the *new* data into
      // the updated model (both latent and reconstruction heads).
      if (has_prev_) {
        Matrix h_prev = prev_encoder_.forward(xb, /*train=*/false);
        nn::LossGrad dl = nn::mse_loss(h, h_prev);
        dl.grad *= cfg_.lambda_distill;
        grad_h += dl.grad;

        Matrix xhat_prev = prev_decoder_.forward(h_prev, /*train=*/false);
        nn::LossGrad dr = nn::mse_loss(xhat, xhat_prev);
        dr.grad *= cfg_.lambda_distill;
        grad_xhat += dr.grad;
      }

      grad_h += ae_.decoder().backward(grad_xhat);
      ae_.encoder().backward(grad_h);
      opt_.step(ae_.params());
    }
  }

  // Re-cluster the latent space of the current stream.
  Matrix latent = ae_.encoder().forward(x_train, /*train=*/false);
  const std::size_t k = cfg_.k != 0 ? cfg_.k : ml::elbow_k(latent, rng_);
  km_ = ml::KMeans({.k = k});
  km_.fit(latent, rng_);

  // Label clusters from the seed set.
  Matrix seed_latent = ae_.encoder().forward(seed_x_, /*train=*/false);
  const auto a = km_.predict(seed_latent);
  std::vector<int> pos(k, 0), neg(k, 0);
  for (std::size_t i = 0; i < a.size(); ++i)
    (seed_y_[i] == 1 ? pos[a[i]] : neg[a[i]])++;
  cluster_label_.assign(k, -1);
  for (std::size_t c = 0; c < k; ++c)
    if (pos[c] + neg[c] > 0) cluster_label_[c] = pos[c] > neg[c] ? 1 : 0;
  for (std::size_t c = 0; c < k; ++c) {
    if (cluster_label_[c] != -1) continue;
    double best = std::numeric_limits<double>::infinity();
    int lbl = 0;
    for (std::size_t i = 0; i < seed_latent.rows(); ++i) {
      const double d = sq_dist(km_.centroids().row(c), seed_latent.row(i));
      if (d < best) {
        best = d;
        lbl = seed_y_[i];
      }
    }
    cluster_label_[c] = lbl;
  }

  prev_encoder_ = ae_.encoder();
  prev_decoder_ = ae_.decoder();
  has_prev_ = true;
}

std::vector<double> Lwf::score(const Matrix&) {
  throw std::logic_error("Lwf: cluster classifier has no anomaly scores");
}

std::vector<int> Lwf::predict(const Matrix& x_test) {
  require(km_.fitted(), "Lwf::predict: no experience observed yet");
  Matrix latent = ae_.encoder().forward(x_test, /*train=*/false);
  const auto a = km_.predict(latent);
  std::vector<int> out(x_test.rows());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = cluster_label_[a[i]];
  return out;
}

}  // namespace cnd::baselines
