// ADCN baseline — Autonomous Deep Clustering Network (Ashfahani & Pratama,
// TNNLS 2023), as used by the paper for its UCL comparison.
//
// Faithful-at-the-protocol-level reimplementation: an autoencoder learns a
// latent space per experience (reconstruction + cluster-pull loss with a
// latent-distillation anchor against the previous model), latent clusters
// grow autonomously when new structure appears (far-point spawning), and
// classification assigns each cluster the majority label of the small
// labeled seed set — the paper notes ADCN "require[s] a small amount of
// labeled normal and attack data to perform classification".
#pragma once

#include "core/detector.hpp"
#include "nn/autoencoder.hpp"
#include "nn/optimizer.hpp"
#include "tensor/rng.hpp"

namespace cnd::baselines {

struct AdcnConfig {
  std::size_t hidden_dim = 256;
  std::size_t latent_dim = 32;
  std::size_t epochs = 10;
  std::size_t batch_size = 128;
  double lr = 1e-3;
  double lambda_cluster = 0.1;   ///< weight of the cluster-pull loss.
  double lambda_distill = 0.1;   ///< latent anchor against previous model.
  std::size_t init_k = 0;        ///< 0 = elbow on first experience latent.
  double spawn_quantile = 0.98;  ///< farther than this spawns new clusters.
  std::size_t max_clusters = 64;
  std::uint64_t seed = 4321;
};

class Adcn final : public core::ContinualDetector {
 public:
  explicit Adcn(const AdcnConfig& cfg = {});

  std::string name() const override { return "ADCN"; }
  void setup(const core::SetupContext& ctx) override;
  void observe_experience(const Matrix& x_train) override;
  bool has_scores() const override { return false; }
  std::vector<double> score(const Matrix& x_test) override;
  std::vector<int> predict(const Matrix& x_test) override;

  std::size_t n_clusters() const { return centroids_.rows(); }

 private:
  void relabel_clusters();
  std::vector<std::size_t> assign(const Matrix& latent) const;

  AdcnConfig cfg_;
  Rng rng_;
  nn::Autoencoder ae_;
  nn::Adam opt_;
  nn::Sequential prev_encoder_;
  bool has_prev_ = false;

  Matrix centroids_;              ///< k x latent_dim.
  std::vector<int> cluster_label_;  ///< 0/1 per centroid.
  Matrix seed_x_;
  std::vector<int> seed_y_;
};

}  // namespace cnd::baselines
