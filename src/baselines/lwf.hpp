// LwF baseline — autoencoder + K-Means with a Learning-without-Forgetting
// distillation loss (Li & Hoiem), exactly the composite the paper evaluates
// as "LwF": per experience, the AE is trained on the new stream while its
// outputs are distilled toward the previous model's outputs; K-Means
// clusters the latent space and each cluster takes the majority label of
// the small labeled seed set.
#pragma once

#include "core/detector.hpp"
#include "ml/kmeans.hpp"
#include "nn/autoencoder.hpp"
#include "nn/optimizer.hpp"
#include "tensor/rng.hpp"

namespace cnd::baselines {

struct LwfConfig {
  std::size_t hidden_dim = 256;
  std::size_t latent_dim = 32;
  std::size_t epochs = 10;
  std::size_t batch_size = 128;
  double lr = 1e-3;
  double lambda_distill = 0.5;  ///< LwF strength (old-task preservation).
  std::size_t k = 0;            ///< 0 = elbow per experience.
  std::uint64_t seed = 8765;
};

class Lwf final : public core::ContinualDetector {
 public:
  explicit Lwf(const LwfConfig& cfg = {});

  std::string name() const override { return "LwF"; }
  void setup(const core::SetupContext& ctx) override;
  void observe_experience(const Matrix& x_train) override;
  bool has_scores() const override { return false; }
  std::vector<double> score(const Matrix& x_test) override;
  std::vector<int> predict(const Matrix& x_test) override;

 private:
  LwfConfig cfg_;
  Rng rng_;
  nn::Autoencoder ae_;
  nn::Adam opt_;
  nn::Sequential prev_encoder_;
  nn::Sequential prev_decoder_;
  bool has_prev_ = false;

  ml::KMeans km_;
  std::vector<int> cluster_label_;
  Matrix seed_x_;
  std::vector<int> seed_y_;
};

}  // namespace cnd::baselines
