// Template implementation for run_static_scorer (included by
// experience_runner.hpp; do not include directly).
#pragma once

#include "eval/metrics.hpp"
#include "eval/threshold.hpp"

namespace cnd::core {

template <typename ScoreFn>
RunResult run_static_scorer(const std::string& name, ScoreFn&& scorer,
                            const data::ExperienceSet& es) {
  const std::size_t m = es.size();
  RunResult res{.detector_name = name,
                .dataset_name = es.dataset_name,
                .f1 = eval::ClResultMatrix(m),
                .pr_auc = eval::ClResultMatrix(m),
                .has_pr_auc = true};
  // A static model gives the same scores regardless of the training
  // experience; evaluate each test set once and broadcast across rows.
  for (std::size_t j = 0; j < m; ++j) {
    const auto& e = es.experiences[j];
    const std::vector<double> s = scorer(e.x_test);
    const auto best = eval::best_f_threshold(s, e.y_test);
    const double ap = eval::pr_auc(s, e.y_test);
    for (std::size_t i = 0; i < m; ++i) {
      res.f1.set(i, j, best.f1);
      res.pr_auc.set(i, j, ap);
    }
  }
  return res;
}

}  // namespace cnd::core
