// Streaming deployment wrapper around CND-IDS.
//
// The paper's protocol hands the detector whole experiences. A deployed
// monitor sees flows one mini-batch at a time and has no experience
// boundaries; this wrapper buffers the live stream, scores each batch
// immediately, feeds the mean batch score into a Page-Hinkley drift
// detector, and triggers a CND-IDS adaptation round (CFE fit + PCA refit)
// when drift is signaled OR the buffer reaches a size cap — whichever comes
// first. This is the "future-work" deployment mode the paper's streaming
// framing implies but never spells out.
//
// Threading: single-writer by design. All mutable state (buffer, drift
// statistic, model) is confined to the one thread driving process_batch /
// adapt; there are no mutexes to annotate (docs/STATIC_ANALYSIS.md,
// "Concurrency contracts"). Concurrent serving wraps a *snapshot* of this
// detector behind serve::ScoringService instead of sharing it.
#pragma once

#include <stdexcept>

#include "core/cnd_ids.hpp"
#include "ml/drift_detector.hpp"

namespace cnd::core {

struct StreamingConfig {
  CndIdsConfig detector;
  /// Adaptation triggers: whichever fires first.
  std::size_t max_buffer_rows = 2048;   ///< hard cap on buffered flows.
  std::size_t min_buffer_rows = 256;    ///< never adapt on less than this.
  double ph_delta = 0.02;               ///< Page-Hinkley tolerance.
  double ph_lambda = 8.0;               ///< Page-Hinkley alarm level.
  /// Label-free alarm threshold: peaks-over-threshold on the vouched clean
  /// window's scores, placed at this target false-alarm probability.
  double target_fpr = 0.01;

  /// Check every field (including the nested detector config); throws
  /// std::invalid_argument naming the offending field. Called by the
  /// StreamingCndIds constructor.
  void validate() const;
};

/// One processed batch: per-flow scores/verdicts plus adaptation telemetry.
struct StreamBatchResult {
  std::vector<double> scores;
  std::vector<int> verdicts;
  bool adapted = false;          ///< an adaptation round ran after this batch.
  bool drift_signal = false;     ///< Page-Hinkley fired on this batch.
  double threshold = 0.0;
};

class StreamingCndIds {
 public:
  explicit StreamingCndIds(const StreamingConfig& cfg = {});

  /// Provide the operator-vouched clean window; runs the first adaptation
  /// bootstrap so scoring works from the first batch (the clean window
  /// doubles as the first training stream).
  void bootstrap(const Matrix& n_clean);

  /// Score a batch of live flows, update drift state, maybe adapt.
  /// Thin wrapper over process_batch_into with fresh result storage.
  StreamBatchResult process_batch(const Matrix& batch);

  /// Same contract as process_batch, writing into a caller-owned result so
  /// a serving loop that reuses `out` keeps score/verdict storage across
  /// batches — zero heap allocations in steady state (fixed batch shape, no
  /// adaptation round). Calling before bootstrap() throws std::logic_error.
  void process_batch_into(const Matrix& batch, StreamBatchResult& out);

  std::size_t adaptations() const { return adaptations_; }
  std::size_t flows_seen() const { return flows_seen_; }
  std::size_t buffered() const {
    if (!ready_)
      throw std::logic_error("StreamingCndIds::buffered: bootstrap() not called");
    return buffer_.rows();
  }
  const CndIds& detector() const { return detector_; }

 private:
  void adapt();
  /// State/shape guards ahead of the hot core; std::logic_error before
  /// bootstrap(), std::invalid_argument on bad batches.
  void check_batch(const Matrix& batch) const;
  /// Telemetry + buffering + (maybe) the adaptation round after the hot
  /// core has filled `out`.
  void finish_batch(const Matrix& batch, double mean_score, StreamBatchResult& out);

  StreamingConfig cfg_;
  CndIds detector_;
  ml::PageHinkley ph_;
  Matrix n_clean_;
  Matrix buffer_;
  double threshold_ = 0.0;
  std::size_t adaptations_ = 0;
  std::size_t flows_seen_ = 0;
  bool ready_ = false;
};

}  // namespace cnd::core
