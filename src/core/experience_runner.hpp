// Drives a ContinualDetector through the paper's evaluation protocol.
//
// After training on each experience the detector is evaluated on the test
// split of *every* experience, filling the R[train, test] matrices for F1
// (Best-F thresholded per test set, as in the paper) and PR-AUC
// (score-based detectors only). Also records fit and per-sample inference
// time for the Table IV overhead analysis.
#pragma once

#include <cstdint>

#include "core/detector.hpp"
#include "data/experiences.hpp"
#include "eval/cl_metrics.hpp"

namespace cnd::core {

struct RunConfig {
  /// Labeled seed size (per class) handed to UCL baselines via
  /// SetupContext; drawn from experience 0's test split.
  std::size_t seed_per_class = 32;
  std::uint64_t seed = 99;
  bool verbose = false;  ///< print the R matrix after the run.
};

struct RunResult {
  std::string detector_name;
  std::string dataset_name;
  eval::ClResultMatrix f1;
  eval::ClResultMatrix pr_auc;       ///< all-zero for predict-only detectors.
  bool has_pr_auc = false;
  double fit_ms_total = 0.0;
  double infer_ms_per_sample = 0.0;  ///< averaged over every evaluation call.

  double avg() const { return f1.avg_current(); }
  double fwd() const { return f1.fwd_transfer(); }
  double bwd() const { return f1.bwd_transfer(); }
};

/// Run the full protocol. Throws if the experience set is empty or the
/// detector misbehaves (wrong score length etc.).
RunResult run_protocol(ContinualDetector& det, const data::ExperienceSet& es,
                       const RunConfig& cfg = {});

/// Evaluate a *static* (fit once on N_c, never updated) scorer through the
/// same matrix, for the Fig-4/Fig-5 ND baselines. `scorer` is called with
/// each test matrix and must return one score per row.
template <typename ScoreFn>
RunResult run_static_scorer(const std::string& name, ScoreFn&& scorer,
                            const data::ExperienceSet& es);

}  // namespace cnd::core

#include "core/experience_runner_impl.hpp"
