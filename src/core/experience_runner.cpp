#include "core/experience_runner.hpp"

#include <iostream>

#include "eval/metrics.hpp"
#include "eval/threshold.hpp"
#include "eval/timer.hpp"
#include "tensor/assert.hpp"
#include "tensor/check.hpp"
#include "tensor/rng.hpp"

namespace cnd::core {

namespace {

/// Draw a small labeled seed (per-class balanced) from experience 0's test
/// split. This is the bootstrap the UCL baselines need; CND-IDS ignores it.
void build_seed(const data::ExperienceSet& es, std::size_t per_class, Rng& rng,
                Matrix* seed_x, std::vector<int>* seed_y) {
  const auto& e0 = es.experiences.front();
  std::vector<std::size_t> normals, attacks;
  for (std::size_t i = 0; i < e0.y_test.size(); ++i)
    (e0.y_test[i] == 0 ? normals : attacks).push_back(i);
  rng.shuffle(normals);
  rng.shuffle(attacks);
  normals.resize(std::min(per_class, normals.size()));
  attacks.resize(std::min(per_class, attacks.size()));

  std::vector<std::size_t> rows = normals;
  rows.insert(rows.end(), attacks.begin(), attacks.end());
  *seed_x = e0.x_test.take_rows(rows);
  seed_y->clear();
  for (std::size_t i = 0; i < normals.size(); ++i) seed_y->push_back(0);
  for (std::size_t i = 0; i < attacks.size(); ++i) seed_y->push_back(1);
}

}  // namespace

RunResult run_protocol(ContinualDetector& det, const data::ExperienceSet& es,
                       const RunConfig& cfg) {
  require(es.size() >= 2, "run_protocol: need at least 2 experiences");
  const std::size_t m = es.size();

  RunResult res{.detector_name = det.name(),
                .dataset_name = es.dataset_name,
                .f1 = eval::ClResultMatrix(m),
                .pr_auc = eval::ClResultMatrix(m),
                .has_pr_auc = det.has_scores()};

  Rng rng(cfg.seed);
  Matrix seed_x;
  std::vector<int> seed_y;
  build_seed(es, cfg.seed_per_class, rng, &seed_x, &seed_y);
  det.setup(SetupContext{es.n_clean, seed_x, seed_y});

  double infer_ms = 0.0;
  std::size_t infer_samples = 0;

  for (std::size_t i = 0; i < m; ++i) {
    eval::Timer fit_timer;
    det.observe_experience(es.experiences[i].x_train);
    res.fit_ms_total += fit_timer.elapsed_ms();

    for (std::size_t j = 0; j < m; ++j) {
      const auto& e = es.experiences[j];
      eval::Timer t;
      if (det.has_scores()) {
        const std::vector<double> s = det.score(e.x_test);
        infer_ms += t.elapsed_ms();
        infer_samples += e.x_test.rows();
        require(s.size() == e.y_test.size(), "run_protocol: bad score length");
        CND_DCHECK_ALL_FINITE(std::span<const double>(s),
                              "run_protocol: non-finite detector score");
        const auto best = eval::best_f_threshold(s, e.y_test);
        res.f1.set(i, j, best.f1);
        res.pr_auc.set(i, j, eval::pr_auc(s, e.y_test));
      } else {
        const std::vector<int> p = det.predict(e.x_test);
        infer_ms += t.elapsed_ms();
        infer_samples += e.x_test.rows();
        require(p.size() == e.y_test.size(), "run_protocol: bad prediction length");
        res.f1.set(i, j, eval::f1_score(p, e.y_test));
      }
    }
  }
  res.infer_ms_per_sample =
      infer_samples > 0 ? infer_ms / static_cast<double>(infer_samples) : 0.0;

  if (cfg.verbose)
    std::cout << res.f1.to_string(res.detector_name + " on " + res.dataset_name);
  return res;
}

}  // namespace cnd::core
