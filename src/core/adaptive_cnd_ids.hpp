// ACORN-style adaptive-trigger wrapper around CND-IDS.
//
// CND-IDS refits on every experience; when the stream has not drifted that
// spends a full CFE + PCA round to stand still (and risks needless
// forgetting). This wrapper scores each incoming training stream with the
// *current* model, feeds chunk-mean score ratios (relative to the model's
// own clean-window level) into a Page-Hinkley test, and only refits when
// the statistic alarms. The first experience always fits — there is no
// model to score with before it.
//
// Telemetry (docs/OBSERVABILITY.md): counters adaptive.updates_total /
// adaptive.skips_total / adaptive.drift_signals_total, gauge
// adaptive.ref_score_mean, one adaptive.gate event per experience. All obs
// calls sit outside the cnd-hot drift statistic (src/obs strings allocate).
//
// Threading: single-writer by design — all mutable state is confined to
// the experience-runner thread, so there are no mutexes to annotate
// (docs/STATIC_ANALYSIS.md, "Concurrency contracts"). Cross-thread use
// goes through serve::ScoringService snapshots, never a shared instance.
#pragma once

#include "core/cnd_ids.hpp"
#include "ml/drift_detector.hpp"

namespace cnd::core {

struct AdaptiveTriggerConfig {
  double ph_delta = 0.1;   ///< Page-Hinkley tolerance on the score ratio.
  double ph_lambda = 3.0;  ///< Page-Hinkley alarm level.
  /// Stream chunk size for the drift statistic (one PH observation per
  /// chunk-mean score ratio).
  std::size_t chunk_rows = 64;

  /// Check every field; throws std::invalid_argument naming the offending
  /// field. Called by the AdaptiveCndIds constructor.
  void validate() const;
};

class AdaptiveCndIds final : public ContinualDetector {
 public:
  explicit AdaptiveCndIds(const CndIdsConfig& detector = {},
                          const AdaptiveTriggerConfig& trigger = {});

  std::string name() const override;
  void setup(const SetupContext& ctx) override;
  void observe_experience(const Matrix& x_train) override;
  std::vector<double> score(const Matrix& x_test) override;
  void score_into(const Matrix& x_test, std::vector<double>& out) override;

  bool supports_snapshot() const override { return true; }
  /// Inner CND-IDS scoring state plus the trigger's runtime statistics
  /// (reference level, Page-Hinkley state, gate counters); defined in
  /// src/io/detector_snapshot.cpp.
  void snapshot(std::ostream& os) const override;
  void restore(std::istream& is) override;

  std::size_t updates() const { return updates_; }
  std::size_t skips() const { return skips_; }
  std::size_t drift_signals() const { return drift_signals_; }
  const CndIds& detector() const { return detector_; }

 private:
  /// Refit on `x_train`, recalibrate the reference level and the
  /// Page-Hinkley baseline on the clean window.
  void refit(const Matrix& x_train);

  AdaptiveTriggerConfig trig_;  // cnd-snapshot: skip(construction-time config — the restoring detector is built with it)
  CndIds detector_;
  ml::PageHinkley ph_;
  // cnd-snapshot: skip(clean-window data, not model state — snapshots ship the model only)
  Matrix n_clean_;
  double ref_mean_ = 1.0;  ///< mean score on N_c under the current model.
  bool fitted_ = false;
  std::size_t updates_ = 0;
  std::size_t skips_ = 0;
  std::size_t drift_signals_ = 0;
};

}  // namespace cnd::core
