#include "core/explanation.hpp"

#include <algorithm>
#include <sstream>

#include "tensor/assert.hpp"

namespace cnd::core {

std::vector<std::vector<FeatureAttribution>> explain_fre(const ml::Pca& pca,
                                                         const Matrix& x,
                                                         std::size_t top_k) {
  require(pca.fitted(), "explain_fre: PCA not fitted");
  const Matrix recon = pca.inverse_transform(pca.transform(x));

  std::vector<std::vector<FeatureAttribution>> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    auto xr = x.row(i);
    auto rr = recon.row(i);
    double total = 0.0;
    std::vector<FeatureAttribution> attr(x.cols());
    for (std::size_t j = 0; j < x.cols(); ++j) {
      const double d = xr[j] - rr[j];
      attr[j].feature = j;
      attr[j].contribution = d * d;
      total += d * d;
    }
    const double denom = std::max(total, 1e-300);
    for (auto& a : attr) a.fraction = a.contribution / denom;
    std::sort(attr.begin(), attr.end(),
              [](const FeatureAttribution& a, const FeatureAttribution& b) {
                return a.contribution > b.contribution;
              });
    if (top_k > 0 && attr.size() > top_k) attr.resize(top_k);
    out[i] = std::move(attr);
  }
  return out;
}

std::string format_attribution(const std::vector<FeatureAttribution>& attr,
                               const std::vector<std::string>& names) {
  std::ostringstream os;
  for (std::size_t k = 0; k < attr.size(); ++k) {
    if (k) os << ", ";
    if (attr[k].feature < names.size())
      os << names[attr[k].feature];
    else
      os << "f" << attr[k].feature;
    os << " (" << static_cast<int>(attr[k].fraction * 100.0 + 0.5) << "%)";
  }
  return os.str();
}

}  // namespace cnd::core
