#include "core/cfe.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/cluster_separation.hpp"
#include "nn/losses.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "tensor/assert.hpp"

namespace cnd::core {

Cfe::Cfe(const CfeConfig& cfg, std::uint64_t seed)
    : cfg_(cfg),
      rng_(seed),
      opt_(cfg.lr),
      replay_(cfg.replay_capacity, seed ^ 0x5E5A11ULL) {
  require(cfg.lambda_r >= 0.0 && cfg.lambda_r <= 1.0, "Cfe: lambda_r out of [0,1]");
  require(cfg.lambda_cl >= 0.0 && cfg.lambda_cl <= 1.0, "Cfe: lambda_cl out of [0,1]");
  require(cfg.margin > 0.0, "Cfe: margin must be > 0");
  require(cfg.epochs > 0 && cfg.batch_size > 0, "Cfe: bad training schedule");
  require(cfg.replay_per_batch > 0, "Cfe: replay_per_batch must be > 0");
}

CfeFitStats Cfe::fit_experience(const Matrix& x_train, const Matrix& n_clean) {
  if (restored_)
    throw std::logic_error(
        "Cfe::fit_experience: this CFE was restored from a snapshot and is "
        "inference-only; train a fresh detector instead");
  require(x_train.rows() >= 8, "Cfe::fit_experience: too few rows");
  require(x_train.cols() == n_clean.cols(), "Cfe::fit_experience: feature mismatch");

  if (!ae_.initialized()) {
    ae_ = nn::Autoencoder(
        {.input_dim = x_train.cols(), .hidden_dim = cfg_.hidden_dim,
         .latent_dim = cfg_.latent_dim, .dropout = cfg_.dropout},
        rng_);
  }
  require(x_train.cols() == ae_.config().input_dim,
          "Cfe::fit_experience: input width changed between experiences");

  CfeFitStats stats;

  // Pseudo-labels for L_CS are computed once per experience in input space.
  std::vector<int> pseudo;
  if (cfg_.use_cs) {
    // Covers k-means and the elbow sweep when kmeans_k == 0.
    obs::ScopedTimer timer(obs::metrics(), "cnd.pseudo_label_ms");
    PseudoLabels pl =
        cluster_separation_labels(x_train, n_clean, cfg_.kmeans_k, rng_, cfg_.ann);
    pseudo = std::move(pl.labels);
    stats.pseudo_k = pl.k;
    stats.pseudo_anomalous = pl.n_anomalous;
    obs::metrics().gauge("cnd.pseudo_k").set(static_cast<double>(pl.k));
  }

  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    auto order = rng_.permutation(x_train.rows());
    double ep_cs = 0.0, ep_r = 0.0, ep_cl = 0.0;
    std::size_t batches = 0;

    for (std::size_t start = 0; start < order.size(); start += cfg_.batch_size) {
      const std::size_t end = std::min(start + cfg_.batch_size, order.size());
      if (end - start < 4) break;  // skip degenerate tail batch
      std::vector<std::size_t> idx(order.begin() + static_cast<std::ptrdiff_t>(start),
                                   order.begin() + static_cast<std::ptrdiff_t>(end));
      Matrix xb = x_train.take_rows(idx);

      ae_.zero_grad();
      Matrix h = ae_.encoder().forward(xb, /*train=*/true);
      Matrix grad_h(h.rows(), h.cols());

      // L_CS: triplet margin on latent with pseudo-labels.
      if (cfg_.use_cs && !pseudo.empty()) {
        std::vector<int> yb(idx.size());
        for (std::size_t i = 0; i < idx.size(); ++i) yb[i] = pseudo[idx[i]];
        nn::LossGrad cs = nn::triplet_margin_loss(h, yb, cfg_.margin, rng_,
                                                  cfg_.triplets_per_batch);
        grad_h += cs.grad;
        ep_cs += cs.loss;
      }

      // L_R: reconstruction MSE; its gradient reaches the encoder through
      // the decoder's backward pass.
      if (cfg_.use_r) {
        Matrix xhat = ae_.decoder().forward(h, /*train=*/true);
        nn::LossGrad r = nn::mse_loss(xhat, xb);
        r.grad *= cfg_.lambda_r;
        grad_h += ae_.decoder().backward(r.grad);
        ep_r += r.loss;
      }

      // L_CL, snapshot mode: keep the current embedding close to what every
      // past encoder produced for the same inputs.
      if (cfg_.use_cl && cfg_.cl_mode == ClMode::kSnapshots &&
          !past_encoders_.empty()) {
        for (auto& past : past_encoders_) {
          Matrix h_past = past.forward(xb, /*train=*/false);
          nn::LossGrad cl = nn::mse_loss(h, h_past);
          cl.grad *= cfg_.lambda_cl;
          grad_h += cl.grad;
          ep_cl += cl.loss;
        }
      }

      ae_.encoder().backward(grad_h);

      // L_CL, replay mode: rehearse reconstruction of buffered past inputs
      // (a separate pass so gradients accumulate before the Adam step).
      if (cfg_.use_cl && cfg_.cl_mode == ClMode::kReplay && !replay_.empty()) {
        Matrix xr = replay_.sample(cfg_.replay_per_batch, rng_);
        Matrix hr = ae_.encoder().forward(xr, /*train=*/true);
        Matrix xr_hat = ae_.decoder().forward(hr, /*train=*/true);
        nn::LossGrad rl = nn::mse_loss(xr_hat, xr);
        rl.grad *= cfg_.lambda_cl;
        ep_cl += rl.loss;
        Matrix ghr = ae_.decoder().backward(rl.grad);
        ae_.encoder().backward(ghr);
      }

      // L_CL, EWC mode: Fisher-weighted quadratic pull toward the
      // consolidated anchor, added straight to the accumulated gradients.
      if (cfg_.use_cl && cfg_.cl_mode == ClMode::kEwc && !fisher_.empty()) {
        auto params = ae_.params();
        double penalty = 0.0;
        for (std::size_t k = 0; k < params.size(); ++k) {
          const double scale = cfg_.lambda_cl * cfg_.ewc_strength;
          for (std::size_t i = 0; i < params[k].value->rows(); ++i) {
            auto w = params[k].value->row(i);
            auto g = params[k].grad->row(i);
            auto fr = fisher_[k].row(i);
            auto ar = anchor_[k].row(i);
            for (std::size_t j = 0; j < params[k].value->cols(); ++j) {
              const double diff = w[j] - ar[j];
              g[j] += scale * fr[j] * diff;
              penalty += 0.5 * fr[j] * diff * diff;
            }
          }
        }
        ep_cl += penalty;
      }

      opt_.step(ae_.params());
      ++batches;
    }

    if (epoch + 1 == cfg_.epochs && batches > 0) {
      const double nb = static_cast<double>(batches);
      stats.loss_cs = ep_cs / nb;
      stats.loss_r = ep_r / nb;
      stats.loss_cl = ep_cl / nb;
      stats.loss_total =
          stats.loss_cs + cfg_.lambda_r * stats.loss_r + cfg_.lambda_cl * stats.loss_cl;
    }
  }

  switch (cfg_.cl_mode) {
    case ClMode::kSnapshots:
      // Snapshot the encoder for future experiences' L_CL (model state only
      // — no data is retained, matching the paper's storage argument).
      past_encoders_.push_back(ae_.encoder());
      if (cfg_.max_snapshots > 0 && past_encoders_.size() > cfg_.max_snapshots)
        past_encoders_.erase(past_encoders_.begin());
      break;
    case ClMode::kReplay:
      replay_.add(x_train);
      break;
    case ClMode::kEwc:
      accumulate_fisher(x_train);
      break;
  }
  ++experiences_seen_;
  return stats;
}

void Cfe::accumulate_fisher(const Matrix& x_train) {
  // Empirical Fisher diagonal of the reconstruction loss: mean squared
  // per-parameter gradient over mini-batches of this experience, folded
  // into the running (online EWC) estimate with decay gamma.
  auto params = ae_.params();
  std::vector<Matrix> sq(params.size());
  for (std::size_t k = 0; k < params.size(); ++k)
    sq[k] = Matrix(params[k].value->rows(), params[k].value->cols());

  const std::size_t n_batches =
      std::min<std::size_t>(8, std::max<std::size_t>(1, x_train.rows() / cfg_.batch_size));
  auto order = rng_.permutation(x_train.rows());
  for (std::size_t b = 0; b < n_batches; ++b) {
    const std::size_t start = b * cfg_.batch_size;
    const std::size_t end = std::min(start + cfg_.batch_size, order.size());
    if (end - start < 2) break;
    std::vector<std::size_t> idx(order.begin() + static_cast<std::ptrdiff_t>(start),
                                 order.begin() + static_cast<std::ptrdiff_t>(end));
    Matrix xb = x_train.take_rows(idx);
    ae_.zero_grad();
    Matrix h = ae_.encoder().forward(xb, true);
    Matrix xhat = ae_.decoder().forward(h, true);
    nn::LossGrad lg = nn::mse_loss(xhat, xb);
    ae_.encoder().backward(ae_.decoder().backward(lg.grad));
    for (std::size_t k = 0; k < params.size(); ++k)
      for (std::size_t i = 0; i < sq[k].rows(); ++i) {
        auto s = sq[k].row(i);
        auto g = params[k].grad->row(i);
        for (std::size_t j = 0; j < sq[k].cols(); ++j) s[j] += g[j] * g[j];
      }
  }
  ae_.zero_grad();

  const double inv = 1.0 / static_cast<double>(std::max<std::size_t>(n_batches, 1));
  if (fisher_.empty()) {
    fisher_.resize(params.size());
    anchor_.resize(params.size());
    for (std::size_t k = 0; k < params.size(); ++k)
      fisher_[k] = Matrix(params[k].value->rows(), params[k].value->cols());
  }
  for (std::size_t k = 0; k < params.size(); ++k) {
    for (std::size_t i = 0; i < fisher_[k].rows(); ++i) {
      auto f = fisher_[k].row(i);
      auto s = sq[k].row(i);
      for (std::size_t j = 0; j < fisher_[k].cols(); ++j)
        f[j] = cfg_.ewc_decay * f[j] + s[j] * inv;
    }
    anchor_[k] = *params[k].value;
  }
}

Matrix Cfe::encode(const Matrix& x) {
  require(ae_.initialized(), "Cfe::encode: no experience observed yet");
  return ae_.encoder().forward(x, /*train=*/false);
}

void Cfe::encode_into(const Matrix& x, Matrix& out) {
  require(ae_.initialized(), "Cfe::encode: no experience observed yet");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  ae_.encode_into(x, out);
}

void Cfe::restore_encoder(nn::Sequential encoder, std::size_t input_dim) {
  ae_.restore_encoder(std::move(encoder),
                      {.input_dim = input_dim,
                       .hidden_dim = cfg_.hidden_dim,
                       .latent_dim = cfg_.latent_dim,
                       .dropout = 0.0});
  restored_ = true;
}

}  // namespace cnd::core
