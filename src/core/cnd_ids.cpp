#include "core/cnd_ids.hpp"

#include "tensor/assert.hpp"

namespace cnd::core {

std::vector<int> ContinualDetector::predict(const Matrix&) {
  throw std::logic_error(name() + ": predict() not implemented (score-based detector)");
}

CndIds::CndIds(const CndIdsConfig& cfg)
    : cfg_(cfg), cfe_(cfg.cfe, cfg.seed), pca_(cfg.pca) {}

std::string CndIds::name() const {
  std::string n = "CND-IDS";
  if (!cfg_.cfe.use_cs) n += " (w/o L_CS)";
  if (!cfg_.cfe.use_r && !cfg_.cfe.use_cl)
    n += " (w/o L_R and L_CL)";
  else if (!cfg_.cfe.use_r)
    n += " (w/o L_R)";
  else if (!cfg_.cfe.use_cl)
    n += " (w/o L_CL)";
  return n;
}

void CndIds::setup(const SetupContext& ctx) {
  require(ctx.n_clean.rows() >= 8, "CndIds::setup: N_c too small");
  n_clean_ = ctx.n_clean;  // Labeled seed deliberately unused: label-free method.
}

void CndIds::observe_experience(const Matrix& x_train) {
  require(!n_clean_.empty(), "CndIds::observe_experience: setup() not called");
  last_stats_ = cfe_.fit_experience(x_train, n_clean_);
  pca_ = ml::Pca(cfg_.pca);
  pca_.fit(cfe_.encode(n_clean_));
}

std::vector<double> CndIds::score(const Matrix& x_test) {
  require(pca_.fitted(), "CndIds::score: no experience observed yet");
  return pca_.score(cfe_.encode(x_test));
}

}  // namespace cnd::core
