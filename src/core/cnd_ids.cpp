#include "core/cnd_ids.hpp"

#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "tensor/assert.hpp"
#include "tensor/check.hpp"

namespace cnd::core {

std::vector<int> ContinualDetector::predict(const Matrix&) {
  throw std::logic_error(name() + ": predict() not implemented (score-based detector)");
}

// Generic adapter for detectors without an allocation-free scoring path.
// cnd-alloc-ok(default adapter copies one score vector through score())
void ContinualDetector::score_into(const Matrix& x_test, std::vector<double>& out) {
  out = score(x_test);
}

void ContinualDetector::snapshot(std::ostream&) const {
  throw std::logic_error(name() + ": snapshot() not supported");
}

void ContinualDetector::restore(std::istream&) {
  throw std::logic_error(name() + ": restore() not supported");
}

// cnd-throw-ok(config validation — runs once at construction/bootstrap, never per batch)
void CndIdsConfig::validate() const {
  require(cfe.hidden_dim > 0, "CndIdsConfig: cfe.hidden_dim must be > 0");
  require(cfe.latent_dim > 0, "CndIdsConfig: cfe.latent_dim must be > 0");
  require(cfe.dropout >= 0.0 && cfe.dropout < 1.0,
          "CndIdsConfig: cfe.dropout out of [0,1)");
  require(cfe.lambda_r >= 0.0 && cfe.lambda_r <= 1.0,
          "CndIdsConfig: cfe.lambda_r out of [0,1]");
  require(cfe.lambda_cl >= 0.0 && cfe.lambda_cl <= 1.0,
          "CndIdsConfig: cfe.lambda_cl out of [0,1]");
  require(cfe.margin > 0.0, "CndIdsConfig: cfe.margin must be > 0");
  require(cfe.epochs > 0, "CndIdsConfig: cfe.epochs must be > 0");
  require(cfe.batch_size > 0, "CndIdsConfig: cfe.batch_size must be > 0");
  require(cfe.lr > 0.0, "CndIdsConfig: cfe.lr must be > 0");
  require(cfe.triplets_per_batch > 0,
          "CndIdsConfig: cfe.triplets_per_batch must be > 0");
  require(cfe.replay_capacity > 0,
          "CndIdsConfig: cfe.replay_capacity must be > 0");
  require(cfe.replay_per_batch > 0,
          "CndIdsConfig: cfe.replay_per_batch must be > 0");
  require(cfe.ewc_strength >= 0.0,
          "CndIdsConfig: cfe.ewc_strength must be >= 0");
  require(cfe.ewc_decay >= 0.0 && cfe.ewc_decay <= 1.0,
          "CndIdsConfig: cfe.ewc_decay out of [0,1]");
  require(pca.explained_variance > 0.0 && pca.explained_variance <= 1.0,
          "CndIdsConfig: pca.explained_variance out of (0,1]");
  cfe.ann.validate();
}

CndIds::CndIds(const CndIdsConfig& cfg)
    : cfg_((cfg.validate(), cfg)), cfe_(cfg.cfe, cfg.seed), pca_(cfg.pca) {}

std::string CndIds::name() const {
  std::string n = "CND-IDS";
  if (!cfg_.cfe.use_cs) n += " (w/o L_CS)";
  if (!cfg_.cfe.use_r && !cfg_.cfe.use_cl)
    n += " (w/o L_R and L_CL)";
  else if (!cfg_.cfe.use_r)
    n += " (w/o L_R)";
  else if (!cfg_.cfe.use_cl)
    n += " (w/o L_CL)";
  return n;
}

void CndIds::setup(const SetupContext& ctx) {
  require(ctx.n_clean.rows() >= 8, "CndIds::setup: N_c too small");
  n_clean_ = ctx.n_clean;  // Labeled seed deliberately unused: label-free method.
}

void CndIds::observe_experience(const Matrix& x_train) {
  require(!n_clean_.empty(), "CndIds::observe_experience: setup() not called");
  obs::MetricsRegistry& m = obs::metrics();
  {
    obs::ScopedTimer timer(m, "cnd.cfe_fit_ms");
    last_stats_ = cfe_.fit_experience(x_train, n_clean_);
  }
  {
    obs::ScopedTimer timer(m, "cnd.pca_fit_ms");
    pca_ = ml::Pca(cfg_.pca);
    pca_.fit(cfe_.encode(n_clean_));
  }
  m.counter("cnd.experiences_total").add(1);
  m.gauge("cnd.cfe_snapshots").set(static_cast<double>(cfe_.n_snapshots()));
  m.gauge("cnd.replay_rows").set(static_cast<double>(cfe_.replay_rows_stored()));
}

std::vector<double> CndIds::score(const Matrix& x_test) {
  require(pca_.fitted(), "CndIds::score: no experience observed yet");
  obs::ScopedTimer timer(obs::metrics(), "cnd.score_ms");
  obs::metrics().counter("cnd.rows_scored_total").add(x_test.rows());
  std::vector<double> s;
  score_into(x_test, s);
  return s;
}

// The serving replicas' scoring entry point: encode + FRE with every
// temporary in the member scratch, so steady-state batches of a fixed shape
// never touch the heap. Same operation sequence as encode()+Pca::score(),
// hence bit-identical scores.
// cnd-hot
void CndIds::score_into(const Matrix& x_test, std::vector<double>& out) {
  require(pca_.fitted(), "CndIds::score: no experience observed yet");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  cfe_.encode_into(x_test, latent_);
  pca_.score_into(latent_, out, score_ws_);
  // Scores feed threshold search and CSV output; a NaN would scramble both.
  CND_DCHECK_ALL_FINITE(std::span<const double>(out),
                        "CndIds::score: non-finite score");
}

}  // namespace cnd::core
