#include "core/detector_factory.hpp"

#include <map>
#include <stdexcept>
#include <utility>

#include "runtime/annotated_mutex.hpp"
#include "tensor/rng.hpp"

namespace cnd::core {

namespace {

/// Adapts a fit-once scorer (PCA, DIF, LOF, ...) to the ContinualDetector
/// interface. kStaticNovelty fits on N_c at setup(); kStaticOutlier fits on
/// the first observed training stream; both ignore every later experience.
class FrozenScorer final : public ContinualDetector {
 public:
  FrozenScorer(std::string name, DetectorKind kind,
               std::function<void(const Matrix&)> fit,
               std::function<std::vector<double>(const Matrix&)> score)
      : name_(std::move(name)),
        kind_(kind),
        fit_(std::move(fit)),
        score_(std::move(score)) {}

  std::string name() const override { return name_; }

  void setup(const SetupContext& ctx) override {
    if (kind_ == DetectorKind::kStaticNovelty) {
      fit_(ctx.n_clean);
      fitted_ = true;
    }
  }

  void observe_experience(const Matrix& x_train) override {
    if (kind_ == DetectorKind::kStaticOutlier && !fitted_) {
      fit_(x_train);
      fitted_ = true;
    }
  }

  std::vector<double> score(const Matrix& x_test) override {
    if (!fitted_)
      throw std::logic_error("FrozenScorer(" + name_ + "): score before fit");
    return score_(x_test);
  }

 private:
  std::string name_;
  DetectorKind kind_;
  std::function<void(const Matrix&)> fit_;
  std::function<std::vector<double>(const Matrix&)> score_;
  bool fitted_ = false;
};

struct Entry {
  DetectorKind kind;
  DetectorFactory factory;
  std::string description;
};

struct Registry {
  runtime::AnnotatedMutex mutex;
  std::map<std::string, Entry> entries CND_GUARDED_BY(mutex);
};

/// Wrap a detector object in a FrozenScorer; the object lives in a
/// shared_ptr captured by both closures.
template <typename Det, typename FitFn>
std::unique_ptr<ContinualDetector> frozen(const std::string& name,
                                          DetectorKind kind, Det det,
                                          FitFn fit) {
  auto ptr = std::make_shared<Det>(std::move(det));
  return std::make_unique<FrozenScorer>(
      name, kind, [ptr, fit](const Matrix& x) { fit(*ptr, x); },
      [ptr](const Matrix& x) { return ptr->score(x); });
}

void register_builtins(Registry& r) CND_REQUIRES(r.mutex) {
  auto add = [&](const std::string& name, DetectorKind kind, DetectorFactory f,
                 std::string description) {
    r.entries.emplace(name, Entry{kind, std::move(f), std::move(description)});
  };

  // Continual detectors.
  add("CND-IDS", DetectorKind::kContinual, [](const DetectorConfig& c) {
    return std::make_unique<CndIds>(c.cnd);
  },
      "the paper's detector: CFE encoder + PCA scoring, refits every "
      "experience");
  add("Adaptive", DetectorKind::kContinual, [](const DetectorConfig& c) {
    return std::make_unique<AdaptiveCndIds>(c.cnd, c.adaptive);
  },
      "drift-gated CND-IDS: Page-Hinkley on stream scores decides when to "
      "refit");
  add("ADCN", DetectorKind::kContinual, [](const DetectorConfig& c) {
    return std::make_unique<baselines::Adcn>(c.adcn);
  },
      "UCL baseline: autonomous deep clustering network");
  add("LwF", DetectorKind::kContinual, [](const DetectorConfig& c) {
    return std::make_unique<baselines::Lwf>(c.lwf);
  },
      "UCL baseline: learning-without-forgetting classifier");

  // Static novelty detectors: fit on the clean-normal holdout N_c.
  add("PCA", DetectorKind::kStaticNovelty, [](const DetectorConfig& c) {
    return frozen("PCA", DetectorKind::kStaticNovelty, ml::Pca(c.pca),
                  [](ml::Pca& d, const Matrix& x) { d.fit(x); });
  },
      "static novelty: PCA feature reconstruction error, fit on N_c");
  add("DIF", DetectorKind::kStaticNovelty, [](const DetectorConfig& c) {
    const std::uint64_t seed = c.seed;
    return frozen("DIF", DetectorKind::kStaticNovelty,
                  ml::DeepIsolationForest(c.dif),
                  [seed](ml::DeepIsolationForest& d, const Matrix& x) {
                    Rng rng(seed);
                    d.fit(x, rng);
                  });
  },
      "static novelty: deep isolation forest, fit on N_c");
  add("GMM", DetectorKind::kStaticNovelty, [](const DetectorConfig& c) {
    const std::uint64_t seed = c.seed;
    return frozen("GMM", DetectorKind::kStaticNovelty, ml::Gmm(c.gmm),
                  [seed](ml::Gmm& d, const Matrix& x) {
                    Rng rng(seed);
                    d.fit(x, rng);
                  });
  },
      "static novelty: Gaussian mixture negative log-likelihood");
  add("Maha", DetectorKind::kStaticNovelty, [](const DetectorConfig& c) {
    return frozen("Maha", DetectorKind::kStaticNovelty,
                  ml::MahalanobisDetector(c.maha),
                  [](ml::MahalanobisDetector& d, const Matrix& x) { d.fit(x); });
  },
      "static novelty: Mahalanobis distance to the N_c distribution");
  add("kNN", DetectorKind::kStaticNovelty, [](const DetectorConfig& c) {
    return frozen("kNN", DetectorKind::kStaticNovelty, ml::KnnDetector(c.knn),
                  [](ml::KnnDetector& d, const Matrix& x) { d.fit(x); });
  },
      "static novelty: k-nearest-neighbor distance to N_c");
  add("HBOS", DetectorKind::kStaticNovelty, [](const DetectorConfig& c) {
    return frozen("HBOS", DetectorKind::kStaticNovelty, ml::Hbos(c.hbos),
                  [](ml::Hbos& d, const Matrix& x) { d.fit(x); });
  },
      "static novelty: histogram-based outlier score");
  add("AE", DetectorKind::kStaticNovelty, [](const DetectorConfig& c) {
    return frozen("AE", DetectorKind::kStaticNovelty,
                  ml::AeDetector(c.ae, c.seed),
                  [](ml::AeDetector& d, const Matrix& x) { d.fit(x); });
  },
      "static novelty: autoencoder reconstruction error");

  // Static outlier detectors: fit on the first observed stream (Faber et
  // al. [15] usage), frozen afterwards.
  add("LOF", DetectorKind::kStaticOutlier, [](const DetectorConfig& c) {
    return frozen("LOF", DetectorKind::kStaticOutlier, ml::Lof(c.lof),
                  [](ml::Lof& d, const Matrix& x) { d.fit(x); });
  },
      "static outlier: local outlier factor, fit on the first stream");
  add("OC-SVM", DetectorKind::kStaticOutlier, [](const DetectorConfig& c) {
    return frozen("OC-SVM", DetectorKind::kStaticOutlier, ml::OcSvm(c.ocsvm),
                  [](ml::OcSvm& d, const Matrix& x) { d.fit(x); });
  },
      "static outlier: one-class SVM, fit on the first stream");
}

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry();  // never destroyed: usable during teardown
    runtime::MutexLock lk(reg->mutex);  // other threads exist before first use
    register_builtins(*reg);
    return reg;
  }();
  return *r;
}

// Caller must hold r.mutex (so this must not re-lock via detector_names()).
[[noreturn]] void throw_unknown(const Registry& r, const std::string& name)
    CND_REQUIRES(r.mutex) {
  std::string msg = "unknown detector '" + name + "'; registered:";
  for (const auto& [n, entry] : r.entries) msg += " " + n;
  throw std::invalid_argument(msg);
}

Entry lookup(const std::string& name) {
  Registry& r = registry();
  runtime::MutexLock lk(r.mutex);
  const auto it = r.entries.find(name);
  if (it == r.entries.end()) throw_unknown(r, name);
  return it->second;
}

}  // namespace

std::unique_ptr<ContinualDetector> make_detector(const std::string& name,
                                                 const DetectorConfig& cfg) {
  return lookup(name).factory(cfg);
}

DetectorKind detector_kind(const std::string& name) {
  return lookup(name).kind;
}

std::string detector_description(const std::string& name) {
  return lookup(name).description;
}

std::vector<std::string> detector_names() {
  Registry& r = registry();
  runtime::MutexLock lk(r.mutex);
  std::vector<std::string> names;
  names.reserve(r.entries.size());
  for (const auto& [name, entry] : r.entries) names.push_back(name);
  return names;  // std::map iteration order is already sorted
}

bool register_detector(const std::string& name, DetectorKind kind,
                       DetectorFactory factory, std::string description) {
  Registry& r = registry();
  runtime::MutexLock lk(r.mutex);
  const bool replaced = r.entries.count(name) > 0;
  r.entries[name] = Entry{kind, std::move(factory), std::move(description)};
  return replaced;
}

RunResult run_detector(const std::string& name, const DetectorConfig& cfg,
                       const data::ExperienceSet& es, const RunConfig& rc) {
  const Entry entry = lookup(name);
  std::unique_ptr<ContinualDetector> det = entry.factory(cfg);
  if (entry.kind == DetectorKind::kContinual)
    return run_protocol(*det, es, rc);

  if (es.experiences.empty())
    throw std::invalid_argument("run_detector: empty experience set");

  // Static path: one-time fit per the detector's kind, then broadcast the
  // frozen scorer over every test split — identical to the pre-factory
  // run_static_* helpers.
  static const Matrix kNoSeedX;
  static const std::vector<int> kNoSeedY;
  det->setup(SetupContext{es.n_clean, kNoSeedX, kNoSeedY});
  det->observe_experience(es.experiences.front().x_train);
  return run_static_scorer(
      name, [&](const Matrix& x) { return det->score(x); }, es);
}

}  // namespace cnd::core
