#include "core/cluster_separation.hpp"

#include <algorithm>

#include "ml/elbow.hpp"
#include "ml/kmeans.hpp"
#include "tensor/assert.hpp"

namespace cnd::core {

PseudoLabels cluster_separation_labels(const Matrix& x_train, const Matrix& n_clean,
                                       std::size_t k, Rng& rng,
                                       const linalg::AnnConfig& ann) {
  require(x_train.rows() >= 4, "cluster_separation: too few training points");
  require(n_clean.rows() >= 1, "cluster_separation: empty N_c");
  require(x_train.cols() == n_clean.cols(), "cluster_separation: feature mismatch");

  PseudoLabels out;
  // The elbow search starts at 4: the cluster count must exceed the number
  // of normal traffic modes or every cluster captures an N_c point and the
  // pseudo-labeling degenerates to "all normal".
  out.k = k != 0 ? k : ml::elbow_k(x_train, rng, /*k_min=*/4, /*k_max=*/20);
  out.k = std::min(out.k, x_train.rows());

  ml::KMeans km({.k = out.k, .ann = ann});
  km.fit(x_train, rng);

  // Clusters owning at least one N_c point are "normal" clusters.
  std::vector<char> is_normal_cluster(out.k, 0);
  for (std::size_t c : km.predict(n_clean)) is_normal_cluster[c] = 1;
  out.n_normal_clusters = static_cast<std::size_t>(
      std::count(is_normal_cluster.begin(), is_normal_cluster.end(), char{1}));

  const auto assign = km.predict(x_train);
  out.labels.resize(x_train.rows());
  for (std::size_t i = 0; i < assign.size(); ++i) {
    out.labels[i] = is_normal_cluster[assign[i]] ? 0 : 1;
    out.n_anomalous += static_cast<std::size_t>(out.labels[i]);
  }
  return out;
}

}  // namespace cnd::core
