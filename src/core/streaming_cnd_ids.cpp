#include "core/streaming_cnd_ids.hpp"

#include "eval/robust_threshold.hpp"
#include "eval/threshold.hpp"
#include "tensor/assert.hpp"

namespace cnd::core {

StreamingCndIds::StreamingCndIds(const StreamingConfig& cfg)
    : cfg_(cfg),
      detector_(cfg.detector),
      ph_(cfg.ph_delta, cfg.ph_lambda, /*min_samples=*/8) {
  require(cfg.min_buffer_rows >= 32, "StreamingCndIds: min_buffer_rows too small");
  require(cfg.max_buffer_rows >= cfg.min_buffer_rows,
          "StreamingCndIds: max_buffer_rows < min_buffer_rows");
  require(cfg.target_fpr > 0.0 && cfg.target_fpr < 0.05,
          "StreamingCndIds: target_fpr out of (0, 0.05)");
}

void StreamingCndIds::bootstrap(const Matrix& n_clean) {
  require(n_clean.rows() >= 32, "StreamingCndIds::bootstrap: clean window too small");
  n_clean_ = n_clean;
  Matrix seed_x;
  std::vector<int> seed_y;
  detector_.setup(SetupContext{n_clean_, seed_x, seed_y});
  // Bootstrap round: the clean window doubles as the first "stream".
  detector_.observe_experience(n_clean_);
  threshold_ = eval::pot_threshold(
      detector_.score(n_clean_), {.tail_quantile = 0.9, .target_prob = cfg_.target_fpr});
  ready_ = true;
}

void StreamingCndIds::adapt() {
  detector_.observe_experience(buffer_);
  // Recalibrate the alarm level on the vouched clean window under the
  // freshly adapted encoder. Calibrating on the live buffer instead would
  // break whenever an attack wave dominates it; N_c is the only data whose
  // label the operator actually knows.
  threshold_ = eval::pot_threshold(
      detector_.score(n_clean_), {.tail_quantile = 0.9, .target_prob = cfg_.target_fpr});
  buffer_ = Matrix();
  ph_.reset();
  ++adaptations_;
}

StreamBatchResult StreamingCndIds::process_batch(const Matrix& batch) {
  require(ready_, "StreamingCndIds::process_batch: bootstrap() not called");
  require(batch.rows() > 0, "StreamingCndIds::process_batch: empty batch");

  StreamBatchResult res;
  res.scores = detector_.score(batch);
  res.threshold = threshold_;
  res.verdicts = eval::apply_threshold(res.scores, threshold_);
  flows_seen_ += batch.rows();

  // Drift statistic: mean score of the batch. A drifting normal population
  // raises the mean even when no attack wave is in progress.
  double mean = 0.0;
  for (double v : res.scores) mean += v;
  mean /= static_cast<double>(res.scores.size());
  res.drift_signal = ph_.update(mean);

  buffer_.append_rows(batch);
  const bool buffer_full = buffer_.rows() >= cfg_.max_buffer_rows;
  const bool can_adapt = buffer_.rows() >= cfg_.min_buffer_rows;
  if ((res.drift_signal && can_adapt) || buffer_full) {
    adapt();
    res.adapted = true;
  }
  return res;
}

}  // namespace cnd::core
