#include "core/streaming_cnd_ids.hpp"

#include <stdexcept>

#include "eval/robust_threshold.hpp"
#include "eval/threshold.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "tensor/assert.hpp"

namespace cnd::core {

// cnd-throw-ok(config validation — runs once at construction/bootstrap, never per batch)
void StreamingConfig::validate() const {
  // Surface nested detector-config errors with a "detector." prefix so the
  // caller can tell which layer rejected the value.
  try {
    detector.validate();
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("StreamingConfig: detector." +
                                std::string(e.what()));
  }
  require(min_buffer_rows >= 32,
          "StreamingConfig: min_buffer_rows must be >= 32");
  require(max_buffer_rows >= min_buffer_rows,
          "StreamingConfig: max_buffer_rows < min_buffer_rows");
  require(ph_delta >= 0.0, "StreamingConfig: ph_delta must be >= 0");
  require(ph_lambda > 0.0, "StreamingConfig: ph_lambda must be > 0");
  require(target_fpr > 0.0 && target_fpr < 0.05,
          "StreamingConfig: target_fpr out of (0, 0.05)");
}

StreamingCndIds::StreamingCndIds(const StreamingConfig& cfg)
    : cfg_((cfg.validate(), cfg)),
      detector_(cfg.detector),
      ph_(cfg.ph_delta, cfg.ph_lambda, /*min_samples=*/8) {}

void StreamingCndIds::bootstrap(const Matrix& n_clean) {
  require(n_clean.rows() >= 32, "StreamingCndIds::bootstrap: clean window too small");
  n_clean_ = n_clean;
  Matrix seed_x;
  std::vector<int> seed_y;
  detector_.setup(SetupContext{n_clean_, seed_x, seed_y});
  // Bootstrap round: the clean window doubles as the first "stream".
  detector_.observe_experience(n_clean_);
  threshold_ = eval::pot_threshold(
      detector_.score(n_clean_), {.tail_quantile = 0.9, .target_prob = cfg_.target_fpr});
  ready_ = true;
  obs::metrics().gauge("stream.threshold").set(threshold_);
  obs::events().emit("stream.bootstrap",
                     {{"clean_rows", n_clean.rows()}, {"threshold", threshold_}});
}

void StreamingCndIds::adapt() {
  const std::size_t buffer_rows = buffer_.rows();
  obs::ScopedTimer timer(obs::metrics(), "stream.adaptation_ms");
  detector_.observe_experience(buffer_);
  // Recalibrate the alarm level on the vouched clean window under the
  // freshly adapted encoder. Calibrating on the live buffer instead would
  // break whenever an attack wave dominates it; N_c is the only data whose
  // label the operator actually knows.
  threshold_ = eval::pot_threshold(
      detector_.score(n_clean_), {.tail_quantile = 0.9, .target_prob = cfg_.target_fpr});
  buffer_ = Matrix();
  ph_.reset();
  ++adaptations_;
  const double duration_ms = timer.stop_ms();
  obs::MetricsRegistry& m = obs::metrics();
  m.counter("stream.adaptations_total").add(1);
  m.gauge("stream.threshold").set(threshold_);
  obs::events().emit("stream.adaptation", {{"round", adaptations_},
                                           {"buffer_rows", buffer_rows},
                                           {"threshold", threshold_},
                                           {"duration_ms", duration_ms}});
}

StreamBatchResult StreamingCndIds::process_batch(const Matrix& batch) {
  StreamBatchResult res;
  process_batch_into(batch, res);
  return res;
}

// cnd-alloc-ok(the column-mismatch diagnostic builds a message string eagerly)
void StreamingCndIds::check_batch(const Matrix& batch) const {
  if (!ready_)
    throw std::logic_error(
        "StreamingCndIds::process_batch: bootstrap() not called — the "
        "detector has no model or threshold to score with");
  require(batch.rows() > 0, "StreamingCndIds::process_batch: empty batch");
  require(batch.cols() == n_clean_.cols(),
          "StreamingCndIds::process_batch: batch has " +
              std::to_string(batch.cols()) + " columns, bootstrap window had " +
              std::to_string(n_clean_.cols()));
}

// Hot serving core: score + verdicts + the drift statistic, all through
// caller-owned storage. Guards, telemetry, and the (allocating by design)
// adaptation round sit behind the two barrier helpers.
// cnd-hot
void StreamingCndIds::process_batch_into(const Matrix& batch,
                                         StreamBatchResult& out) {
  check_batch(batch);
  detector_.score_into(batch, out.scores);
  out.threshold = threshold_;
  out.verdicts.resize(out.scores.size());
  for (std::size_t i = 0; i < out.scores.size(); ++i)
    out.verdicts[i] = out.scores[i] > threshold_ ? 1 : 0;
  out.adapted = false;
  flows_seen_ += batch.rows();

  // Drift statistic: mean score of the batch. A drifting normal population
  // raises the mean even when no attack wave is in progress.
  double mean = 0.0;
  for (double v : out.scores) mean += v;
  mean /= static_cast<double>(out.scores.size());
  out.drift_signal = ph_.update(mean);

  finish_batch(batch, mean, out);
}

// cnd-alloc-ok(telemetry name strings, the stream buffer, and the adaptation round allocate by design)
void StreamingCndIds::finish_batch(const Matrix& batch, double mean_score,
                                   StreamBatchResult& out) {
  obs::MetricsRegistry& m = obs::metrics();
  m.counter("stream.batches_total").add(1);
  m.counter("stream.flows_total").add(batch.rows());
  if (out.drift_signal) {
    m.counter("stream.drift_signals_total").add(1);
    obs::events().emit("stream.drift",
                       {{"flows_seen", flows_seen_}, {"mean_score", mean_score}});
  }

  buffer_.append_rows(batch);
  const bool buffer_full = buffer_.rows() >= cfg_.max_buffer_rows;
  const bool can_adapt = buffer_.rows() >= cfg_.min_buffer_rows;
  if ((out.drift_signal && can_adapt) || buffer_full) {
    adapt();
    out.adapted = true;
  }
  m.gauge("stream.buffer_rows").set(static_cast<double>(buffer_.rows()));
}

}  // namespace cnd::core
