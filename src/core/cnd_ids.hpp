// CND-IDS: the paper's full detector (Fig. 2 / Algorithm 1).
//
// Per experience: (i) train the CFE on the unlabeled stream, (ii) encode the
// clean-normal holdout N_c, (iii) fit the PCA novelty detector on the
// encoded N_c. Scoring encodes test rows and returns their PCA feature
// reconstruction error; the runner (or caller) thresholds the scores.
#pragma once

#include <memory>

#include "core/cfe.hpp"
#include "core/detector.hpp"
#include "ml/pca.hpp"
#include "tensor/kernels.hpp"

namespace cnd::core {

struct CndIdsConfig {
  CfeConfig cfe;
  ml::PcaConfig pca{.explained_variance = 0.95};  ///< paper: 95%.
  std::uint64_t seed = 1234;

  /// Check every field; throws std::invalid_argument naming the offending
  /// field. Called by the CndIds constructor, so a detector can only be
  /// built from a coherent config.
  void validate() const;
};

class CndIds final : public ContinualDetector {
 public:
  explicit CndIds(const CndIdsConfig& cfg = {});

  std::string name() const override;
  void setup(const SetupContext& ctx) override;
  void observe_experience(const Matrix& x_train) override;
  std::vector<double> score(const Matrix& x_test) override;

  /// Allocation-free scoring through the member workspace; bit-identical
  /// to score(). The serving replicas' hot path.
  void score_into(const Matrix& x_test, std::vector<double>& out) override;

  bool supports_snapshot() const override { return true; }
  /// Scoring state only (encoder + PCA moments); defined in
  /// src/io/detector_snapshot.cpp, which routes through io::model_io.
  void snapshot(std::ostream& os) const override;
  /// Restored detectors are inference-only: observe_experience() throws
  /// std::logic_error afterwards (the CFE keeps no training state).
  void restore(std::istream& is) override;

  const Cfe& cfe() const { return cfe_; }
  const ml::Pca& pca() const { return pca_; }
  const CfeFitStats& last_fit_stats() const { return last_stats_; }

 private:
  CndIdsConfig cfg_;  // cnd-snapshot: skip(construction-time config — the restoring detector is built with it)
  Cfe cfe_;
  ml::Pca pca_;
  // cnd-snapshot: skip(clean-window data, not model state — snapshots ship the model only)
  Matrix n_clean_;
  CfeFitStats last_stats_;  // cnd-snapshot: skip(fit diagnostics — not part of the scoring function)
  // Scratch for score_into: latent batch + PCA workspace. Scoring reuses
  // these across calls, so one detector serves one thread at a time.
  Matrix latent_;  // cnd-snapshot: skip(scoring scratch — resized on every batch)
  Workspace score_ws_;  // cnd-snapshot: skip(scoring scratch — resized on every batch)
};

}  // namespace cnd::core
