// Continual Feature Extractor (paper §III-C).
//
// An MLP autoencoder trained per experience with the continual novelty
// detection loss
//     L_CND = L_CS + lambda_R * L_R + lambda_CL * L_CL
// where L_CS is the cluster-separation triplet loss on pseudo-labels,
// L_R the input reconstruction MSE, and L_CL a latent distillation term
// against a frozen snapshot of the encoder from every previous experience
// (no replay data is stored — only past model states).
#pragma once

#include <vector>

#include "data/replay_buffer.hpp"
#include "linalg/distance.hpp"
#include "nn/autoencoder.hpp"
#include "nn/optimizer.hpp"
#include "tensor/rng.hpp"

namespace cnd::core {

/// How the CFE fights catastrophic forgetting.
///  - kSnapshots: the paper's L_CL — latent distillation against frozen
///    encoder snapshots from past experiences (stores models, no data).
///  - kReplay: rehearsal — a reservoir of past inputs is mixed into the
///    reconstruction objective (stores data, no past models). Provided as
///    the storage/accuracy trade-off the paper contrasts its choice against.
///  - kEwc: online Elastic Weight Consolidation — a Fisher-weighted
///    quadratic penalty anchors parameters important to past experiences
///    (stores one Fisher diagonal + one anchor, no data). The CL strategy
///    Kumar et al. applied to IDS, per the paper's related work.
enum class ClMode { kSnapshots, kReplay, kEwc };

struct CfeConfig {
  std::size_t hidden_dim = 256;  ///< paper: 256-unit hidden layers.
  std::size_t latent_dim = 256;  ///< over-complete latent ("256 neurons").
  double dropout = 0.0;          ///< optional hidden-layer dropout.
  double lambda_r = 0.1;         ///< paper: 0.1.
  double lambda_cl = 0.1;        ///< paper: 0.1.
  double margin = 1.0;           ///< triplet margin m.
  std::size_t epochs = 10;
  std::size_t batch_size = 128;
  double lr = 1e-3;              ///< paper: Adam, 0.001.
  std::size_t triplets_per_batch = 64;
  std::size_t kmeans_k = 0;      ///< 0 = elbow method (paper's choice).
  /// Approximate-neighbor knob for the pseudo-label K-Means predict passes
  /// (docs/ANN.md). Default (nprobe = 0) is exact — byte-identical scores.
  linalg::AnnConfig ann{};
  // Ablation switches (Table III).
  bool use_cs = true;
  bool use_r = true;
  bool use_cl = true;
  /// Cap on encoder snapshots kept for L_CL (0 = keep all, as in the paper;
  /// a cap bounds memory for very long streams).
  std::size_t max_snapshots = 0;
  // Continual-learning mode (see ClMode).
  ClMode cl_mode = ClMode::kSnapshots;
  std::size_t replay_capacity = 512;   ///< kReplay: reservoir size (rows).
  std::size_t replay_per_batch = 32;   ///< kReplay: rehearsal rows per batch.
  double ewc_strength = 100.0;         ///< kEwc: penalty scale (x lambda_cl).
  double ewc_decay = 0.9;              ///< kEwc: online Fisher decay (gamma).
};

/// Per-experience training diagnostics.
struct CfeFitStats {
  double loss_cs = 0.0;
  double loss_r = 0.0;
  double loss_cl = 0.0;
  double loss_total = 0.0;
  std::size_t pseudo_k = 0;
  std::size_t pseudo_anomalous = 0;
};

class Cfe {
 public:
  explicit Cfe(const CfeConfig& cfg, std::uint64_t seed = 1234);

  /// Train on one experience's unlabeled stream (plus N_c for the
  /// pseudo-labels), then snapshot the encoder for future L_CL terms.
  /// Lazily initializes the autoencoder on the first call (the input width
  /// is only known then). Returns mean last-epoch loss components.
  CfeFitStats fit_experience(const Matrix& x_train, const Matrix& n_clean);

  /// Encode rows into the latent feature space.
  Matrix encode(const Matrix& x);

  /// Allocation-free encode into a caller-owned matrix; bit-identical to
  /// encode(). The serving replicas' scoring path.
  void encode_into(const Matrix& x, Matrix& out);

  /// Rebuild the scoring half from a deserialized encoder (the detector
  /// snapshot/restore path). The result is inference-only: encode() works,
  /// fit_experience() throws std::logic_error — training state (decoder,
  /// optimizer moments, L_CL snapshots) is deliberately not in a snapshot.
  void restore_encoder(nn::Sequential encoder, std::size_t input_dim);

  /// True when this CFE was rebuilt from a snapshot (inference-only).
  bool restored() const { return restored_; }

  std::size_t n_experiences_seen() const { return experiences_seen_; }
  std::size_t n_snapshots() const { return past_encoders_.size(); }
  const CfeConfig& config() const { return cfg_; }
  bool initialized() const { return ae_.initialized(); }
  std::size_t latent_dim() const { return cfg_.latent_dim; }

  std::size_t replay_rows_stored() const { return replay_.size(); }

  /// Read access to the trained autoencoder (serialization path).
  const nn::Autoencoder& autoencoder() const { return ae_; }

 private:
  void accumulate_fisher(const Matrix& x_train);

  CfeConfig cfg_;
  Rng rng_;
  nn::Autoencoder ae_;
  nn::Adam opt_;
  std::vector<nn::Sequential> past_encoders_;
  data::ReplayBuffer replay_;
  std::vector<Matrix> fisher_;      ///< kEwc: per-param Fisher diagonal.
  std::vector<Matrix> anchor_;      ///< kEwc: per-param consolidated weights.
  std::size_t experiences_seen_ = 0;
  bool restored_ = false;           ///< rebuilt from a snapshot: no training.
};

}  // namespace cnd::core
