#include "core/adaptive_cnd_ids.hpp"

#include <algorithm>
#include <span>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "tensor/assert.hpp"

namespace cnd::core {

namespace {

// Feed chunk-mean score ratios into the Page-Hinkley test; true when any
// chunk alarms. The adaptive streaming gate: pure arithmetic over the
// score vector, runs on every incoming training stream.
// cnd-hot
bool drift_gate(ml::PageHinkley& ph, std::span<const double> scores,
                std::size_t chunk, double ref_mean) {
  bool drift = false;
  for (std::size_t lo = 0; lo < scores.size(); lo += chunk) {
    const std::size_t hi = std::min(scores.size(), lo + chunk);
    double mean = 0.0;
    for (std::size_t i = lo; i < hi; ++i) mean += scores[i];
    mean /= static_cast<double>(hi - lo);
    drift = ph.update(mean / ref_mean) || drift;
  }
  return drift;
}

double mean_of(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x;
  return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}

}  // namespace

// cnd-throw-ok(config validation — runs once at construction/bootstrap, never per batch)
void AdaptiveTriggerConfig::validate() const {
  require(ph_delta >= 0.0, "AdaptiveTriggerConfig: ph_delta must be >= 0");
  require(ph_lambda > 0.0, "AdaptiveTriggerConfig: ph_lambda must be > 0");
  require(chunk_rows >= 8, "AdaptiveTriggerConfig: chunk_rows must be >= 8");
}

AdaptiveCndIds::AdaptiveCndIds(const CndIdsConfig& detector,
                               const AdaptiveTriggerConfig& trigger)
    : trig_((trigger.validate(), trigger)),
      detector_(detector),
      ph_(trigger.ph_delta, trigger.ph_lambda, /*min_samples=*/4) {}

std::string AdaptiveCndIds::name() const { return "Adaptive"; }

void AdaptiveCndIds::setup(const SetupContext& ctx) {
  n_clean_ = ctx.n_clean;
  detector_.setup(ctx);
}

void AdaptiveCndIds::refit(const Matrix& x_train) {
  detector_.observe_experience(x_train);
  // Recalibrate: the reference level is the adapted model's mean score on
  // the vouched clean window, and the Page-Hinkley baseline is re-anchored
  // by feeding it the clean window's own chunk ratios (~1.0). A later
  // stream that sits uniformly above that level then alarms even though
  // the test never saw the shift happen mid-stream.
  const std::vector<double> clean_scores = detector_.score(n_clean_);
  ref_mean_ = std::max(mean_of(clean_scores), 1e-12);
  ph_.reset();
  const std::size_t cal_chunk = std::max<std::size_t>(
      1, std::min(trig_.chunk_rows, clean_scores.size() / 4));
  (void)drift_gate(ph_, clean_scores, cal_chunk, ref_mean_);
  ++updates_;
  obs::MetricsRegistry& m = obs::metrics();
  m.counter("adaptive.updates_total").add(1);
  m.gauge("adaptive.ref_score_mean").set(ref_mean_);
  obs::events().emit("adaptive.update", {{"round", updates_},
                                         {"train_rows", x_train.rows()},
                                         {"ref_score_mean", ref_mean_}});
}

void AdaptiveCndIds::observe_experience(const Matrix& x_train) {
  require(x_train.rows() > 0, "AdaptiveCndIds: empty training stream");
  if (!fitted_) {
    // No model to score the stream with yet: the first experience is the
    // bootstrap fit, exactly like plain CND-IDS.
    refit(x_train);
    fitted_ = true;
    return;
  }
  const std::vector<double> scores = detector_.score(x_train);
  const double mean_ratio = mean_of(scores) / ref_mean_;
  const bool drift = drift_gate(ph_, scores, trig_.chunk_rows, ref_mean_);
  obs::MetricsRegistry& m = obs::metrics();
  obs::events().emit("adaptive.gate", {{"stream_rows", x_train.rows()},
                                       {"mean_ratio", mean_ratio},
                                       {"drift", drift ? 1 : 0}});
  if (drift) {
    ++drift_signals_;
    m.counter("adaptive.drift_signals_total").add(1);
    refit(x_train);
  } else {
    ++skips_;
    m.counter("adaptive.skips_total").add(1);
  }
}

std::vector<double> AdaptiveCndIds::score(const Matrix& x_test) {
  return detector_.score(x_test);
}

// Pure delegation to the inner detector's allocation-free path.
// cnd-hot
void AdaptiveCndIds::score_into(const Matrix& x_test, std::vector<double>& out) {
  detector_.score_into(x_test, out);
}

}  // namespace cnd::core
