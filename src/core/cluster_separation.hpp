// Cluster-separation pseudo-labeling (paper §III-C).
//
// K-Means is fit on the unlabeled training stream; every cluster that
// captures at least one clean-normal (N_c) point is declared a "normal"
// cluster, its members get pseudo-label 0, and all other points get
// pseudo-label 1. The triplet-margin loss then pushes the two pseudo-classes
// apart in the CFE's latent space.
#pragma once

#include <vector>

#include "linalg/distance.hpp"
#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace cnd::core {

struct PseudoLabels {
  std::vector<int> labels;          ///< 0 = normal-like, 1 = anomalous-like.
  std::size_t k = 0;                ///< cluster count actually used.
  std::size_t n_normal_clusters = 0;
  std::size_t n_anomalous = 0;      ///< points labeled 1.
};

/// Compute pseudo-labels for every row of `x_train`.
/// `k = 0` selects the cluster count with the elbow method (the paper's
/// choice); otherwise the given k is used directly. `ann` (default exact)
/// routes the two K-Means predict() passes through the IVF index
/// (docs/ANN.md); K-Means training itself always runs exact.
PseudoLabels cluster_separation_labels(const Matrix& x_train, const Matrix& n_clean,
                                       std::size_t k, Rng& rng,
                                       const linalg::AnnConfig& ann = {});

}  // namespace cnd::core
