// Unified detector factory and registry.
//
// Every detector the experiments compare — the continual methods (CND-IDS,
// its drift-gated Adaptive variant, ADCN, LwF) and the static
// novelty/outlier baselines (PCA, DIF, GMM, Maha, kNN, HBOS, AE, LOF,
// OC-SVM) — is constructible by name through make_detector(). The registry's names are the single source of truth for
// the detector identifiers written into result CSVs, so a bench and the CLI
// can never drift apart on what "DIF" means.
//
// Static baselines are wrapped as ContinualDetectors that fit exactly once:
//   kStaticNovelty  — fit on the clean-normal holdout N_c at setup()
//                     (PCA [23], DIF [33], and the extension zoo);
//   kStaticOutlier  — fit on the first observed (contaminated) training
//                     stream, as LOF / OC-SVM are used in Faber et al. [15],
//                     then frozen.
// run_detector() drives either kind through the paper's §III-A protocol and
// reproduces the pre-factory bench numerics bit-for-bit: the same fit data,
// the same fresh Rng(seed) for the stochastic detectors, the same
// run_protocol / run_static_scorer dispatch.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/adcn.hpp"
#include "baselines/lwf.hpp"
#include "core/adaptive_cnd_ids.hpp"
#include "core/cnd_ids.hpp"
#include "core/detector.hpp"
#include "core/experience_runner.hpp"
#include "data/experiences.hpp"
#include "ml/ae_detector.hpp"
#include "ml/deep_isolation_forest.hpp"
#include "ml/gmm.hpp"
#include "ml/hbos.hpp"
#include "ml/knn_detector.hpp"
#include "ml/lof.hpp"
#include "ml/mahalanobis.hpp"
#include "ml/ocsvm.hpp"
#include "ml/pca.hpp"

namespace cnd::core {

/// One bag of per-detector hyperparameters; each factory reads only its own
/// slice. Defaults reproduce the paper benches' settings (see
/// bench::paper_detector_config for the paper-scale network sizes).
struct DetectorConfig {
  /// Seed for the stochastic static baselines (DIF, GMM, AE). The continual
  /// detectors carry their own seed inside their sub-config.
  std::uint64_t seed = 42;

  CndIdsConfig cnd;
  baselines::AdcnConfig adcn;
  baselines::LwfConfig lwf;
  /// Drift-gate knobs for "Adaptive" (which shares `cnd` for its inner
  /// CND-IDS model).
  AdaptiveTriggerConfig adaptive;

  ml::PcaConfig pca{.explained_variance = 0.95};
  ml::DeepIsolationForestConfig dif{.n_representations = 24, .trees_per_repr = 6};
  ml::LofConfig lof{.k = 20};
  ml::OcSvmConfig ocsvm{.nu = 0.05};
  ml::GmmConfig gmm{.n_components = 4};
  ml::MahalanobisConfig maha;
  ml::KnnDetectorConfig knn{.k = 10};
  ml::HbosConfig hbos;
  ml::AeDetectorConfig ae{.hidden_dim = 128, .latent_dim = 16, .epochs = 20};
};

enum class DetectorKind {
  kContinual,      ///< adapts per experience (run via run_protocol).
  kStaticNovelty,  ///< fit once on the clean-normal holdout N_c, frozen.
  kStaticOutlier,  ///< fit once on the first observed stream, frozen.
};

using DetectorFactory =
    std::function<std::unique_ptr<ContinualDetector>(const DetectorConfig&)>;

/// Construct a registered detector by its CSV name. Throws
/// std::invalid_argument for an unknown name (the message lists every
/// registered name).
std::unique_ptr<ContinualDetector> make_detector(const std::string& name,
                                                 const DetectorConfig& cfg = {});

/// Kind of a registered detector; throws std::invalid_argument when unknown.
DetectorKind detector_kind(const std::string& name);

/// Every registered name, sorted.
std::vector<std::string> detector_names();

/// One-line human description of a registered detector (shown by
/// `cnd detectors`); throws std::invalid_argument when unknown.
std::string detector_description(const std::string& name);

/// Add (or replace) a registry entry. Returns true when a previous entry
/// with the same name was replaced. Thread-safe.
bool register_detector(const std::string& name, DetectorKind kind,
                       DetectorFactory factory, std::string description = "");

/// Construct `name` and drive it through the evaluation protocol:
/// continual detectors through run_protocol, static ones through a
/// one-time fit (on N_c or the first stream per their kind) followed by
/// run_static_scorer. The RunResult's detector_name is the registry name.
RunResult run_detector(const std::string& name, const DetectorConfig& cfg,
                       const data::ExperienceSet& es, const RunConfig& rc = {});

}  // namespace cnd::core
