// Per-feature attribution for PCA-FRE detections.
//
// A verdict alone ("flow 8123 is an attack") is not actionable; operators
// ask *which features* made it anomalous. For an FRE score
// ||h - T^{-1}(T(h))||^2 the exact additive decomposition over latent
// features is the squared residual per dimension; this module maps that
// back to a ranked list. For CND-IDS the attribution lives in the CFE's
// latent space; for raw-feature PCA it lands directly on input features.
#pragma once

#include <string>
#include <vector>

#include "ml/pca.hpp"
#include "tensor/matrix.hpp"

namespace cnd::core {

struct FeatureAttribution {
  std::size_t feature = 0;   ///< index in the scored space.
  double contribution = 0.0; ///< additive share of the FRE score.
  double fraction = 0.0;     ///< contribution / total score.
};

/// Exact additive decomposition of each row's FRE over the scored space's
/// dimensions. attributions[i] is sorted by descending contribution and
/// truncated to `top_k` (0 = keep all).
std::vector<std::vector<FeatureAttribution>> explain_fre(
    const ml::Pca& pca, const Matrix& x, std::size_t top_k = 5);

/// One-line rendering, e.g. "f3 (62%), f7 (21%), f1 (9%)".
std::string format_attribution(const std::vector<FeatureAttribution>& attr,
                               const std::vector<std::string>& names = {});

}  // namespace cnd::core
