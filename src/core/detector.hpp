// Common interface for continual intrusion detectors.
//
// The ExperienceRunner drives any implementation through the paper's
// protocol (Algorithm 1): setup with the clean-normal holdout, then for each
// experience observe the unlabeled training stream and evaluate on every
// experience's test set. Score-based detectors (CND-IDS, static ND methods
// wrapped as detectors) return continuous anomaly scores and are thresholded
// with Best-F by the runner; cluster-classification baselines (ADCN, LwF)
// return hard predictions and additionally consume the small labeled seed
// set the paper notes they require.
#pragma once

#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace cnd::core {

/// Everything a detector may use before the stream starts. `n_clean` is
/// N_c. The labeled seed (a handful of rows) is only consulted by the UCL
/// baselines, mirroring the paper's note that ADCN/LwF need a small amount
/// of labeled normal and attack data to classify.
struct SetupContext {
  const Matrix& n_clean;
  const Matrix& seed_x;
  const std::vector<int>& seed_y;
};

class ContinualDetector {
 public:
  virtual ~ContinualDetector() = default;

  virtual std::string name() const = 0;

  virtual void setup(const SetupContext& ctx) = 0;

  /// Consume one experience's unlabeled (contaminated) training stream.
  virtual void observe_experience(const Matrix& x_train) = 0;

  /// True when the detector emits continuous anomaly scores (thresholded by
  /// the runner); false when it emits hard 0/1 predictions directly.
  virtual bool has_scores() const { return true; }

  /// Anomaly score per row; higher = more attack-like. Only called when
  /// has_scores().
  virtual std::vector<double> score(const Matrix& x_test) = 0;

  /// Hard predictions; default derives nothing and must be overridden by
  /// detectors with has_scores() == false.
  virtual std::vector<int> predict(const Matrix& x_test);
};

}  // namespace cnd::core
