// Common interface for continual intrusion detectors.
//
// The ExperienceRunner drives any implementation through the paper's
// protocol (Algorithm 1): setup with the clean-normal holdout, then for each
// experience observe the unlabeled training stream and evaluate on every
// experience's test set. Score-based detectors (CND-IDS, static ND methods
// wrapped as detectors) return continuous anomaly scores and are thresholded
// with Best-F by the runner; cluster-classification baselines (ADCN, LwF)
// return hard predictions and additionally consume the small labeled seed
// set the paper notes they require.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace cnd::core {

/// Everything a detector may use before the stream starts. `n_clean` is
/// N_c. The labeled seed (a handful of rows) is only consulted by the UCL
/// baselines, mirroring the paper's note that ADCN/LwF need a small amount
/// of labeled normal and attack data to classify.
struct SetupContext {
  const Matrix& n_clean;
  const Matrix& seed_x;
  const std::vector<int>& seed_y;
};

class ContinualDetector {
 public:
  virtual ~ContinualDetector() = default;

  virtual std::string name() const = 0;

  virtual void setup(const SetupContext& ctx) = 0;

  /// Consume one experience's unlabeled (contaminated) training stream.
  virtual void observe_experience(const Matrix& x_train) = 0;

  /// True when the detector emits continuous anomaly scores (thresholded by
  /// the runner); false when it emits hard 0/1 predictions directly.
  virtual bool has_scores() const { return true; }

  /// Anomaly score per row; higher = more attack-like. Only called when
  /// has_scores().
  virtual std::vector<double> score(const Matrix& x_test) = 0;

  /// Hard predictions; default derives nothing and must be overridden by
  /// detectors with has_scores() == false.
  virtual std::vector<int> predict(const Matrix& x_test);

  /// Score into a caller-owned vector (resized to x_test.rows()); values
  /// are bit-identical to score(). The default adapter routes through
  /// score(); detectors on the serving hot path override it so steady-state
  /// batches of a fixed shape never touch the heap.
  virtual void score_into(const Matrix& x_test, std::vector<double>& out);

  // ---- Snapshot/restore: the serving hot-swap contract ----------------
  // A snapshot captures the *scoring* state only (model state, not data —
  // the same storage argument the paper makes for L_CL). A detector
  // restored from it must score byte-identically to the one that produced
  // it, but is inference-only: further training throws std::logic_error.

  /// True when snapshot()/restore() are implemented.
  virtual bool supports_snapshot() const { return false; }

  /// Serialize scoring state to `os`. Default: throws std::logic_error.
  virtual void snapshot(std::ostream& os) const;

  /// Rebuild scoring state from `is`. Default: throws std::logic_error.
  virtual void restore(std::istream& is);
};

}  // namespace cnd::core
