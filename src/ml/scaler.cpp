#include "ml/scaler.hpp"

#include <algorithm>

#include "tensor/assert.hpp"

namespace cnd::ml {

StandardScaler::StandardScaler(std::vector<double> mean, std::vector<double> stddev)
    : mean_(std::move(mean)), std_(std::move(stddev)) {
  require(!mean_.empty() && mean_.size() == std_.size(),
          "StandardScaler: invalid restored statistics");
}

void StandardScaler::fit(const Matrix& x) {
  require(x.rows() > 0, "StandardScaler::fit: empty matrix");
  mean_ = col_mean(x);
  std_ = col_stddev(x, mean_);
}

Matrix StandardScaler::transform(const Matrix& x) const {
  require(fitted(), "StandardScaler::transform: not fitted");
  require(x.cols() == mean_.size(), "StandardScaler::transform: feature mismatch");
  Matrix out = x;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    auto r = out.row(i);
    for (std::size_t j = 0; j < out.cols(); ++j)
      r[j] = std_[j] > 1e-12 ? (r[j] - mean_[j]) / std_[j] : 0.0;
  }
  return out;
}

Matrix StandardScaler::fit_transform(const Matrix& x) {
  fit(x);
  return transform(x);
}

void MinMaxScaler::fit(const Matrix& x) {
  require(x.rows() > 0, "MinMaxScaler::fit: empty matrix");
  min_.assign(x.cols(), 0.0);
  range_.assign(x.cols(), 0.0);
  for (std::size_t j = 0; j < x.cols(); ++j) {
    double mn = x(0, j), mx = x(0, j);
    for (std::size_t i = 1; i < x.rows(); ++i) {
      mn = std::min(mn, x(i, j));
      mx = std::max(mx, x(i, j));
    }
    min_[j] = mn;
    range_[j] = mx - mn;
  }
}

Matrix MinMaxScaler::transform(const Matrix& x) const {
  require(fitted(), "MinMaxScaler::transform: not fitted");
  require(x.cols() == min_.size(), "MinMaxScaler::transform: feature mismatch");
  Matrix out = x;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    auto r = out.row(i);
    for (std::size_t j = 0; j < out.cols(); ++j)
      r[j] = range_[j] > 1e-12 ? (r[j] - min_[j]) / range_[j] : 0.0;
  }
  return out;
}

Matrix MinMaxScaler::fit_transform(const Matrix& x) {
  fit(x);
  return transform(x);
}

}  // namespace cnd::ml
