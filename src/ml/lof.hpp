// Local Outlier Factor (Breunig et al. 2000), novelty-detection variant:
// fit on reference (normal) data, score queries against it. One of the
// paper's static ND baselines (LOF [15]).
#pragma once

#include <vector>

#include "linalg/distance.hpp"
#include "tensor/matrix.hpp"

namespace cnd::ml {

struct LofConfig {
  std::size_t k = 20;  ///< neighbourhood size (MinPts).
  /// Neighbor-query knob: nprobe = 0 (default) is exact brute force,
  /// bit-identical to the pre-ANN path; nprobe > 0 routes fit-time and
  /// score-time kNN through an IVF index over the reference set.
  linalg::AnnConfig ann{};
};

class Lof {
 public:
  explicit Lof(const LofConfig& cfg = {}) : cfg_(cfg) {}

  /// Store reference data and precompute its k-distances and lrd values.
  void fit(const Matrix& x);

  /// LOF score per query row (≈1 for inliers, >1 for outliers).
  std::vector<double> score(const Matrix& x) const;

  bool fitted() const { return nn_.ready(); }

 private:
  /// Reachability-based local density of a point given its neighbours in ref.
  double lrd_of(std::span<const double> dists,
                const std::vector<std::size_t>& idx) const;

  LofConfig cfg_;
  /// Owns the reference matrix, its cached row norms (score() used to
  /// recompute them on every call), and the optional IVF index.
  linalg::NeighborProvider nn_;
  std::vector<double> ref_kdist_;  ///< k-distance of each reference point.
  std::vector<double> ref_lrd_;    ///< local reachability density of refs.
};

}  // namespace cnd::ml
