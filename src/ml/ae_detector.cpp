#include "ml/ae_detector.hpp"

#include <algorithm>

#include "nn/losses.hpp"
#include "tensor/assert.hpp"

namespace cnd::ml {

AeDetector::AeDetector(const AeDetectorConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed), opt_(cfg.lr) {
  require(cfg.epochs > 0 && cfg.batch_size > 0, "AeDetector: bad schedule");
}

double AeDetector::fit(const Matrix& x) {
  require(x.rows() >= 8, "AeDetector::fit: too few rows");
  if (!ae_.initialized()) {
    ae_ = nn::Autoencoder({.input_dim = x.cols(),
                           .hidden_dim = cfg_.hidden_dim,
                           .latent_dim = cfg_.latent_dim},
                          rng_);
  }
  require(x.cols() == ae_.config().input_dim, "AeDetector::fit: width changed");

  double last = 0.0;
  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    auto order = rng_.permutation(x.rows());
    double sum = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size(); start += cfg_.batch_size) {
      const std::size_t end = std::min(start + cfg_.batch_size, order.size());
      if (end - start < 2) break;
      std::vector<std::size_t> idx(order.begin() + static_cast<std::ptrdiff_t>(start),
                                   order.begin() + static_cast<std::ptrdiff_t>(end));
      Matrix xb = x.take_rows(idx);
      ae_.zero_grad();
      Matrix h = ae_.encoder().forward(xb, true);
      Matrix xhat = ae_.decoder().forward(h, true);
      nn::LossGrad lg = nn::mse_loss(xhat, xb);
      Matrix gh = ae_.decoder().backward(lg.grad);
      ae_.encoder().backward(gh);
      opt_.step(ae_.params());
      sum += lg.loss;
      ++batches;
    }
    last = sum / static_cast<double>(std::max<std::size_t>(batches, 1));
  }
  return last;
}

std::vector<double> AeDetector::score(const Matrix& x) {
  require(fitted(), "AeDetector::score: not fitted");
  const Matrix xhat = ae_.reconstruct(x);
  std::vector<double> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i)
    out[i] = sq_dist(x.row(i), xhat.row(i)) / static_cast<double>(x.cols());
  return out;
}

}  // namespace cnd::ml
