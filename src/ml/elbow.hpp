// Elbow-method selection of the K-Means cluster count (the paper's choice
// for the cluster-separation loss, citing Han et al.).
#pragma once

#include <cstddef>

#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace cnd::ml {

/// Fit K-Means for k in [k_min, k_max], compute the inertia curve, and
/// return the k at the point of maximum curvature (largest second
/// difference of the normalized inertia). Subsamples x to at most
/// `max_points` rows for speed.
std::size_t elbow_k(const Matrix& x, Rng& rng, std::size_t k_min = 2,
                    std::size_t k_max = 10, std::size_t max_points = 2000);

}  // namespace cnd::ml
