#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/parallel_for.hpp"
#include "tensor/assert.hpp"

namespace cnd::ml {

void RandomForest::fit(const Matrix& x, const std::vector<std::size_t>& y,
                       std::size_t n_classes, Rng& rng) {
  require(x.rows() == y.size() && x.rows() > 0, "RandomForest::fit: bad inputs");
  require(cfg_.n_trees > 0, "RandomForest::fit: need at least 1 tree");
  n_classes_ = n_classes;

  const std::size_t mtry =
      cfg_.max_features > 0
          ? cfg_.max_features
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(std::sqrt(static_cast<double>(x.cols()))));

  // One RNG stream per tree, derived serially so the bootstrap and split
  // draws of tree t are independent of the thread count (bit-identical
  // forests for any CND_THREADS).
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(cfg_.n_trees);
  for (std::size_t t = 0; t < cfg_.n_trees; ++t) tree_rngs.push_back(rng.split(t));

  trees_.assign(cfg_.n_trees,
                DecisionTree({.max_depth = cfg_.max_depth,
                              .min_samples_split = 2,
                              .min_samples_leaf = cfg_.min_samples_leaf,
                              .max_features = mtry}));
  runtime::parallel_for(0, cfg_.n_trees, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t t = lo; t < hi; ++t) {
      Rng& trng = tree_rngs[t];
      // Bootstrap sample.
      std::vector<std::size_t> boot(x.rows());
      for (auto& v : boot)
        v = static_cast<std::size_t>(
            trng.randint(0, static_cast<std::int64_t>(x.rows()) - 1));
      Matrix xb = x.take_rows(boot);
      std::vector<std::size_t> yb(boot.size());
      for (std::size_t i = 0; i < boot.size(); ++i) yb[i] = y[boot[i]];

      trees_[t].fit(xb, yb, n_classes, trng);
    }
  });
}

Matrix RandomForest::predict_proba(const Matrix& x) const {
  require(fitted(), "RandomForest::predict_proba: not fitted");
  Matrix acc(x.rows(), n_classes_);
  for (const auto& t : trees_) acc += t.predict_proba(x);
  acc *= 1.0 / static_cast<double>(trees_.size());
  return acc;
}

std::vector<std::size_t> RandomForest::predict(const Matrix& x) const {
  const Matrix proba = predict_proba(x);
  std::vector<std::size_t> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    auto r = proba.row(i);
    out[i] = static_cast<std::size_t>(
        std::max_element(r.begin(), r.end()) - r.begin());
  }
  return out;
}

}  // namespace cnd::ml
