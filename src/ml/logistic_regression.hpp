// L2-regularized logistic regression (binary), trained by mini-batch Adam.
//
// The linear supervised reference point for the Fig-1 study: if even a
// linear decision boundary scores well on known families, the collapse on
// unknown families is a property of supervision itself, not of model class.
#pragma once

#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace cnd::ml {

struct LogisticRegressionConfig {
  double l2 = 1e-4;
  double lr = 0.05;
  std::size_t epochs = 50;
  std::size_t batch_size = 128;
};

class LogisticRegression {
 public:
  explicit LogisticRegression(const LogisticRegressionConfig& cfg = {})
      : cfg_(cfg) {}

  /// y in {0, 1}. Returns final epoch mean loss (cross-entropy + L2).
  double fit(const Matrix& x, const std::vector<int>& y, Rng& rng);

  /// P(y = 1 | x) per row.
  std::vector<double> predict_proba(const Matrix& x) const;
  std::vector<int> predict(const Matrix& x, double threshold = 0.5) const;

  bool fitted() const { return !w_.empty(); }
  const std::vector<double>& weights() const { return w_; }
  double bias() const { return b_; }

 private:
  LogisticRegressionConfig cfg_;
  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace cnd::ml
