#include "ml/logistic_regression.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/assert.hpp"

namespace cnd::ml {

namespace {

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

double LogisticRegression::fit(const Matrix& x, const std::vector<int>& y,
                               Rng& rng) {
  require(x.rows() == y.size() && x.rows() > 0, "LogisticRegression::fit: bad inputs");
  for (int v : y)
    require(v == 0 || v == 1, "LogisticRegression::fit: labels must be 0/1");

  const std::size_t d = x.cols();
  w_.assign(d, 0.0);
  b_ = 0.0;

  // Adam state.
  std::vector<double> mw(d, 0.0), vw(d, 0.0);
  double mb = 0.0, vb = 0.0;
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  long t = 0;

  double last = 0.0;
  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    auto order = rng.permutation(x.rows());
    double loss_sum = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size(); start += cfg_.batch_size) {
      const std::size_t end = std::min(start + cfg_.batch_size, order.size());
      const double bn = static_cast<double>(end - start);
      std::vector<double> gw(d, 0.0);
      double gb = 0.0, loss = 0.0;
      for (std::size_t k = start; k < end; ++k) {
        auto r = x.row(order[k]);
        double z = b_;
        for (std::size_t j = 0; j < d; ++j) z += w_[j] * r[j];
        const double p = sigmoid(z);
        const double t_lbl = static_cast<double>(y[order[k]]);
        loss += -(t_lbl * std::log(std::max(p, 1e-12)) +
                  (1.0 - t_lbl) * std::log(std::max(1.0 - p, 1e-12)));
        const double g = (p - t_lbl) / bn;
        for (std::size_t j = 0; j < d; ++j) gw[j] += g * r[j];
        gb += g;
      }
      for (std::size_t j = 0; j < d; ++j) gw[j] += cfg_.l2 * w_[j];

      ++t;
      const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(t));
      const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(t));
      for (std::size_t j = 0; j < d; ++j) {
        mw[j] = beta1 * mw[j] + (1.0 - beta1) * gw[j];
        vw[j] = beta2 * vw[j] + (1.0 - beta2) * gw[j] * gw[j];
        w_[j] -= cfg_.lr * (mw[j] / bc1) / (std::sqrt(vw[j] / bc2) + eps);
      }
      mb = beta1 * mb + (1.0 - beta1) * gb;
      vb = beta2 * vb + (1.0 - beta2) * gb * gb;
      b_ -= cfg_.lr * (mb / bc1) / (std::sqrt(vb / bc2) + eps);

      loss_sum += loss / bn;
      ++batches;
    }
    last = loss_sum / static_cast<double>(std::max<std::size_t>(batches, 1));
  }
  return last;
}

std::vector<double> LogisticRegression::predict_proba(const Matrix& x) const {
  require(fitted(), "LogisticRegression::predict_proba: not fitted");
  require(x.cols() == w_.size(), "LogisticRegression: feature mismatch");
  std::vector<double> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    auto r = x.row(i);
    double z = b_;
    for (std::size_t j = 0; j < w_.size(); ++j) z += w_[j] * r[j];
    out[i] = sigmoid(z);
  }
  return out;
}

std::vector<int> LogisticRegression::predict(const Matrix& x, double threshold) const {
  const auto p = predict_proba(x);
  std::vector<int> out(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) out[i] = p[i] > threshold ? 1 : 0;
  return out;
}

}  // namespace cnd::ml
