// Gaussian mixture model (diagonal covariance, EM) with negative
// log-likelihood anomaly scoring.
//
// A classic density-based novelty detector for IDS: fit on clean normal
// traffic, score by how unlikely a flow is under the mixture. Diagonal
// covariances keep EM robust at flow-feature dimensionality.
#pragma once

#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace cnd::ml {

struct GmmConfig {
  std::size_t n_components = 4;
  std::size_t max_iters = 100;
  double tol = 1e-5;        ///< stop when mean log-likelihood improves less.
  double reg_covar = 1e-6;  ///< variance floor, keeps EM from collapsing.
};

class Gmm {
 public:
  explicit Gmm(const GmmConfig& cfg = {}) : cfg_(cfg) {}

  /// EM fit; means initialized by k-means++-style seeding.
  void fit(const Matrix& x, Rng& rng);

  /// Per-row log-likelihood under the mixture.
  std::vector<double> log_likelihood(const Matrix& x) const;

  /// Anomaly score = negative log-likelihood (higher = more anomalous).
  std::vector<double> score(const Matrix& x) const;

  bool fitted() const { return !weights_.empty(); }
  std::size_t n_components() const { return weights_.size(); }
  const std::vector<double>& weights() const { return weights_; }

 private:
  GmmConfig cfg_;
  std::vector<double> weights_;  ///< mixing proportions, sum to 1.
  Matrix means_;                 ///< k x d.
  Matrix vars_;                  ///< k x d diagonal covariances.
};

}  // namespace cnd::ml
