// HBOS — Histogram-Based Outlier Score (Goldstein & Dengel 2012).
//
// Per-feature equal-width histograms of the reference data; a flow's score
// is the sum of negative log densities of its feature values. Assumes
// feature independence, which makes it extremely fast and a standard
// lightweight IDS baseline.
#pragma once

#include <vector>

#include "tensor/matrix.hpp"

namespace cnd::ml {

struct HbosConfig {
  std::size_t n_bins = 20;
};

class Hbos {
 public:
  explicit Hbos(const HbosConfig& cfg = {}) : cfg_(cfg) {}

  void fit(const Matrix& x);

  /// Sum over features of -log(bin density); values outside the fitted
  /// range fall into virtual empty bins (maximum surprise for that feature).
  std::vector<double> score(const Matrix& x) const;

  bool fitted() const { return !lo_.empty(); }

 private:
  HbosConfig cfg_;
  std::vector<double> lo_, width_;           ///< per-feature bin geometry.
  std::vector<std::vector<double>> neglog_;  ///< per-feature -log density.
  double empty_penalty_ = 0.0;               ///< score for out-of-range/empty.
};

}  // namespace cnd::ml
