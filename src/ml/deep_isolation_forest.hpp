// Deep Isolation Forest (Xu et al., TKDE 2023).
//
// An ensemble of randomly-initialized (never trained) neural representations;
// each representation feeds its own isolation forest, and scores average
// across the ensemble. The random non-linear maps give axis-parallel iForest
// splits the effect of non-linear partitions in input space. One of the
// paper's strongest static ND baselines (DIF [33]).
#pragma once

#include <vector>

#include "ml/isolation_forest.hpp"
#include "nn/sequential.hpp"
#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace cnd::ml {

struct DeepIsolationForestConfig {
  std::size_t n_representations = 50;  ///< ensemble size (r=50 in Xu et al.).
  std::size_t repr_dim = 20;           ///< output width of each random net.
  std::size_t hidden_dim = 64;         ///< hidden width of each random net.
  std::size_t trees_per_repr = 6;      ///< iForest trees per representation.
  std::size_t subsample = 256;
};

class DeepIsolationForest {
 public:
  explicit DeepIsolationForest(const DeepIsolationForestConfig& cfg = {})
      : cfg_(cfg) {}

  void fit(const Matrix& x, Rng& rng);

  /// Mean iForest score across the representation ensemble; higher = more
  /// anomalous.
  std::vector<double> score(const Matrix& x) const;

  bool fitted() const { return !forests_.empty(); }

 private:
  Matrix represent(std::size_t r, const Matrix& x) const;

  DeepIsolationForestConfig cfg_;
  std::vector<nn::Sequential> nets_;  // mutable forward is const-free: stored by value
  std::vector<IsolationForest> forests_;
};

}  // namespace cnd::ml
