// Online drift detectors over univariate statistics (e.g. anomaly-score
// streams): Page-Hinkley and a sliding-window mean-shift test.
//
// Used by the streaming CND-IDS wrapper to decide *when* to trigger an
// adaptation round instead of adapting on a fixed window schedule.
#pragma once

#include <cstddef>
#include <deque>

namespace cnd::ml {

/// Page-Hinkley test for an upward shift in the mean of a stream.
/// Alarms when the cumulative positive deviation from the running mean
/// exceeds `lambda`. `delta` is the magnitude tolerance (shifts smaller
/// than delta are ignored).
class PageHinkley {
 public:
  explicit PageHinkley(double delta = 0.05, double lambda = 50.0,
                       std::size_t min_samples = 30);

  /// Feed one observation; returns true if drift is signaled (the detector
  /// resets itself after signaling).
  bool update(double value);

  void reset();
  std::size_t n_seen() const { return n_; }
  double statistic() const { return mt_ - min_mt_; }

  /// Runtime statistic of the test, exposed for detector snapshots: a
  /// restored replica must alarm at exactly the observation the live one
  /// would, so its drift state travels with the model state.
  struct State {
    std::size_t n = 0;
    double mean = 0.0;
    double mt = 0.0;
    double min_mt = 0.0;
  };
  State state() const { return {n_, mean_, mt_, min_mt_}; }
  void set_state(const State& s) {
    n_ = s.n;
    mean_ = s.mean;
    mt_ = s.mt;
    min_mt_ = s.min_mt;
  }

 private:
  double delta_, lambda_;
  std::size_t min_samples_;
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double mt_ = 0.0;      ///< cumulative deviation.
  double min_mt_ = 0.0;  ///< running minimum of mt.
};

/// Two-window mean-shift detector: compares the mean of the most recent
/// `window` values against the mean of the `window` values before them and
/// alarms when they differ by more than `threshold` pooled standard
/// deviations. A pragmatic stand-in for ADWIN at fixed memory.
class WindowShiftDetector {
 public:
  explicit WindowShiftDetector(std::size_t window = 64, double threshold = 3.0);

  bool update(double value);
  void reset();
  std::size_t n_seen() const { return n_; }

 private:
  std::size_t window_;
  double threshold_;
  std::size_t n_ = 0;
  std::deque<double> buf_;  ///< at most 2 * window values.
};

}  // namespace cnd::ml
