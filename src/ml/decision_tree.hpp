// CART-style binary decision tree classifier (Gini impurity).
//
// Substrate for the RandomForest below; both exist so the Fig-1 bench can
// pit the *classic* supervised ML-IDS (random forests are the de-facto
// standard in the IDS literature) against unseen attack families, not just
// an MLP.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace cnd::ml {

struct DecisionTreeConfig {
  std::size_t max_depth = 12;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Features examined per split; 0 = all (single tree), sqrt(d) typical in
  /// a forest.
  std::size_t max_features = 0;
};

class DecisionTree {
 public:
  explicit DecisionTree(const DecisionTreeConfig& cfg = {}) : cfg_(cfg) {}

  /// Fit on rows of x with labels y in [0, n_classes). `rng` drives feature
  /// subsampling (used by forests; harmless for single trees).
  void fit(const Matrix& x, const std::vector<std::size_t>& y,
           std::size_t n_classes, Rng& rng);

  std::vector<std::size_t> predict(const Matrix& x) const;

  /// Per-class probability (leaf class frequencies) for each row.
  Matrix predict_proba(const Matrix& x) const;

  bool fitted() const { return !nodes_.empty(); }
  std::size_t n_nodes() const { return nodes_.size(); }
  std::size_t depth() const { return depth_; }

 private:
  struct Node {
    int feature = -1;      ///< -1 = leaf.
    double threshold = 0.0;
    std::size_t left = 0, right = 0;
    std::vector<double> class_frac;  ///< leaf class distribution.
  };

  std::size_t build(const Matrix& x, const std::vector<std::size_t>& y,
                    std::vector<std::size_t>& idx, std::size_t lo, std::size_t hi,
                    std::size_t depth, std::size_t n_classes, Rng& rng);
  const Node& descend(std::span<const double> row) const;

  DecisionTreeConfig cfg_;
  std::vector<Node> nodes_;
  std::size_t n_classes_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace cnd::ml
