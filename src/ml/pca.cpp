#include "ml/pca.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.hpp"
#include "linalg/stats.hpp"
#include "tensor/assert.hpp"

namespace cnd::ml {

Pca::Pca(std::vector<double> mean, Matrix components)
    : mean_(std::move(mean)), components_(std::move(components)) {
  require(!mean_.empty() && components_.rows() == mean_.size() &&
              components_.cols() >= 1,
          "Pca: invalid restored parameters");
}

void Pca::fit(const Matrix& x) {
  require(x.rows() >= 2, "Pca::fit: need at least 2 rows");
  require(cfg_.explained_variance > 0.0 && cfg_.explained_variance <= 1.0,
          "Pca::fit: explained_variance must be in (0, 1]");

  const Matrix cov = linalg::covariance(x);
  mean_ = col_mean(x);
  linalg::EigenResult eig = linalg::eigen_symmetric(cov);

  double total = 0.0;
  for (double v : eig.values) total += std::max(v, 0.0);
  if (total <= 0.0) total = 1.0;  // Degenerate constant data: keep 1 component.

  evr_.clear();
  std::size_t k = 0;
  double cum = 0.0;
  const std::size_t cap = cfg_.max_components ? std::min(cfg_.max_components, x.cols())
                                              : x.cols();
  for (std::size_t i = 0; i < eig.values.size() && k < cap; ++i) {
    const double ratio = std::max(eig.values[i], 0.0) / total;
    evr_.push_back(ratio);
    cum += ratio;
    ++k;
    if (cum >= cfg_.explained_variance) break;
  }
  CND_ASSERT(k >= 1);

  components_ = Matrix(x.cols(), k);
  for (std::size_t i = 0; i < x.cols(); ++i)
    for (std::size_t j = 0; j < k; ++j) components_(i, j) = eig.vectors(i, j);
}

Matrix Pca::transform(const Matrix& x) const {
  require(fitted(), "Pca::transform: not fitted");
  require(x.cols() == mean_.size(), "Pca::transform: feature mismatch");
  return matmul(sub_rowvec(x, mean_), components_);
}

Matrix Pca::inverse_transform(const Matrix& l) const {
  require(fitted(), "Pca::inverse_transform: not fitted");
  require(l.cols() == components_.cols(), "Pca::inverse_transform: width mismatch");
  Matrix x = matmul_bt(l, components_);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    auto r = x.row(i);
    for (std::size_t j = 0; j < x.cols(); ++j) r[j] += mean_[j];
  }
  return x;
}

std::vector<double> Pca::score(const Matrix& x) const {
  Workspace ws;
  std::vector<double> s;
  score_into(x, s, ws);
  return s;
}

void Pca::transform_into(const Matrix& x, Matrix& out, Workspace& ws) const {
  require(fitted(), "Pca::transform: not fitted");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  require(x.cols() == mean_.size(), "Pca::transform: feature mismatch");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  Matrix& centered = ws.mat(0, x.rows(), x.cols());
  sub_rowvec_into(centered, x, mean_);
  matmul_into(out, centered, components_);
}

// cnd-hot
void Pca::score_into(const Matrix& x, std::vector<double>& out, Workspace& ws) const {
  require(fitted(), "Pca::score: not fitted");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  // Same operation sequence as transform() + inverse_transform() + sq_dist,
  // just through workspace buffers — scores are bit-identical to score().
  Matrix& l = ws.mat(1, x.rows(), components_.cols());
  transform_into(x, l, ws);
  Matrix& recon = ws.mat(2, x.rows(), x.cols());
  matmul_bt_into(recon, l, components_);
  add_rowvec_inplace(recon, mean_);
  out.resize(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out[i] = sq_dist(x.row(i), recon.row(i));
}

}  // namespace cnd::ml
