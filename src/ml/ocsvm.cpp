#include "ml/ocsvm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/stats.hpp"
#include "runtime/parallel_for.hpp"
#include "tensor/assert.hpp"

namespace cnd::ml {

double OcSvm::kernel(std::span<const double> a, std::span<const double> b) const {
  return std::exp(-gamma_ * sq_dist(a, b));
}

void OcSvm::fit(const Matrix& x_full) {
  require(x_full.rows() >= 2, "OcSvm::fit: need at least 2 points");
  require(cfg_.nu > 0.0 && cfg_.nu <= 1.0, "OcSvm::fit: nu must be in (0, 1]");

  // Deterministic stride subsample to respect the kernel-matrix budget.
  Matrix x = x_full;
  if (x_full.rows() > cfg_.max_train) {
    std::vector<std::size_t> idx;
    const double stride =
        static_cast<double>(x_full.rows()) / static_cast<double>(cfg_.max_train);
    for (std::size_t i = 0; i < cfg_.max_train; ++i)
      idx.push_back(static_cast<std::size_t>(static_cast<double>(i) * stride));
    x = x_full.take_rows(idx);
  }
  const std::size_t n = x.rows();

  if (cfg_.gamma > 0.0) {
    gamma_ = cfg_.gamma;
  } else {
    // sklearn "scale": 1 / (d * Var[all features]).
    double var = 0.0;
    auto mu = col_mean(x);
    auto sd = col_stddev(x, mu);
    for (double s : sd) var += s * s;
    var /= static_cast<double>(x.cols());
    gamma_ = 1.0 / (static_cast<double>(x.cols()) * std::max(var, 1e-12));
  }

  // Dense kernel matrix. Row i fills (i, j>=i) and mirrors into (j, i);
  // every element is written by exactly one task, so rows parallelize.
  Matrix k(n, n);
  runtime::parallel_for(0, n, runtime::grain_for_cost(n * x.cols() / 2),
                        [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      k(i, i) = 1.0;
      for (std::size_t j = i + 1; j < n; ++j) {
        const double v = kernel(x.row(i), x.row(j));
        k(i, j) = v;
        k(j, i) = v;
      }
    }
  });

  // Feasible start: uniform alpha = 1/n (satisfies sum = 1, 0 <= a <= C
  // because C = 1/(nu*n) >= 1/n).
  const double c_up = 1.0 / (cfg_.nu * static_cast<double>(n));
  std::vector<double> alpha(n, 1.0 / static_cast<double>(n));

  // Gradient of 1/2 a^T K a is g = K a.
  std::vector<double> g(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += k(i, j) * alpha[j];
    g[i] = s;
  }

  for (std::size_t iter = 0; iter < cfg_.max_iters; ++iter) {
    // Most-violating pair: move mass from the highest-gradient point that
    // can still give (alpha > 0) to the lowest-gradient point that can
    // still receive (alpha < C).
    std::size_t i_up = n, j_dn = n;
    double g_max = -std::numeric_limits<double>::infinity();
    double g_min = std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < n; ++t) {
      if (alpha[t] > 0.0 && g[t] > g_max) {
        g_max = g[t];
        i_up = t;
      }
      if (alpha[t] < c_up && g[t] < g_min) {
        g_min = g[t];
        j_dn = t;
      }
    }
    if (i_up == n || j_dn == n || g_max - g_min < cfg_.tol) break;

    const double eta = std::max(k(i_up, i_up) + k(j_dn, j_dn) - 2.0 * k(i_up, j_dn), 1e-12);
    // Transfer delta from i_up to j_dn.
    double delta = (g_max - g_min) / eta;
    delta = std::min(delta, alpha[i_up]);
    delta = std::min(delta, c_up - alpha[j_dn]);
    if (delta <= 0.0) break;

    alpha[i_up] -= delta;
    alpha[j_dn] += delta;
    for (std::size_t t = 0; t < n; ++t) g[t] += delta * (k(j_dn, t) - k(i_up, t));
  }

  // rho = decision value at free support vectors (0 < a < C): rho = g_i.
  double rho_sum = 0.0;
  std::size_t rho_cnt = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-10 && alpha[i] < c_up - 1e-10) {
      rho_sum += g[i];
      ++rho_cnt;
    }
  }
  if (rho_cnt > 0) {
    rho_ = rho_sum / static_cast<double>(rho_cnt);
  } else {
    // All alphas at bounds; use midpoint of the violating interval.
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (alpha[i] > 1e-10) hi = std::max(hi, g[i]);
      if (alpha[i] < c_up - 1e-10) lo = std::min(lo, g[i]);
    }
    rho_ = 0.5 * (lo + hi);
  }

  // Keep only support vectors.
  std::vector<std::size_t> sv_idx;
  for (std::size_t i = 0; i < n; ++i)
    if (alpha[i] > 1e-10) sv_idx.push_back(i);
  CND_ASSERT(!sv_idx.empty());
  sv_ = x.take_rows(sv_idx);
  alpha_.clear();
  for (std::size_t i : sv_idx) alpha_.push_back(alpha[i]);
}

std::vector<double> OcSvm::score(const Matrix& x) const {
  require(fitted(), "OcSvm::score: not fitted");
  require(x.cols() == sv_.cols(), "OcSvm::score: feature mismatch");
  std::vector<double> out(x.rows());
  runtime::parallel_for(0, x.rows(),
                        runtime::grain_for_cost(sv_.rows() * x.cols()),
                        [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      double f = 0.0;
      auto q = x.row(i);
      for (std::size_t s = 0; s < sv_.rows(); ++s)
        f += alpha_[s] * kernel(q, sv_.row(s));
      out[i] = rho_ - f;
    }
  });
  return out;
}

}  // namespace cnd::ml
