#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "tensor/assert.hpp"

namespace cnd::ml {

namespace {

/// Gini impurity of a class-count vector with `total` samples.
double gini(const std::vector<double>& counts, double total) {
  if (total <= 0.0) return 0.0;
  double s = 1.0;
  for (double c : counts) {
    const double p = c / total;
    s -= p * p;
  }
  return s;
}

}  // namespace

void DecisionTree::fit(const Matrix& x, const std::vector<std::size_t>& y,
                       std::size_t n_classes, Rng& rng) {
  require(x.rows() == y.size() && x.rows() > 0, "DecisionTree::fit: bad inputs");
  require(n_classes >= 2, "DecisionTree::fit: need >= 2 classes");
  for (std::size_t v : y)
    require(v < n_classes, "DecisionTree::fit: label out of range");

  n_classes_ = n_classes;
  depth_ = 0;
  nodes_.clear();
  nodes_.reserve(2 * x.rows());
  std::vector<std::size_t> idx(x.rows());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  build(x, y, idx, 0, idx.size(), 0, n_classes, rng);
}

std::size_t DecisionTree::build(const Matrix& x, const std::vector<std::size_t>& y,
                                std::vector<std::size_t>& idx, std::size_t lo,
                                std::size_t hi, std::size_t depth,
                                std::size_t n_classes, Rng& rng) {
  const std::size_t me = nodes_.size();
  nodes_.push_back(Node{});
  depth_ = std::max(depth_, depth);

  // Leaf distribution (always stored; interior nodes keep it empty later).
  std::vector<double> counts(n_classes, 0.0);
  for (std::size_t i = lo; i < hi; ++i) counts[y[idx[i]]] += 1.0;
  const double total = static_cast<double>(hi - lo);

  auto make_leaf = [&]() {
    auto& frac = nodes_[me].class_frac;
    frac = counts;
    for (double& v : frac) v /= total;
    return me;
  };

  const double node_gini = gini(counts, total);
  if (hi - lo < cfg_.min_samples_split || depth >= cfg_.max_depth ||
      node_gini <= 0.0)
    return make_leaf();

  // Candidate features: all, or a random subset of max_features.
  std::vector<std::size_t> feats(x.cols());
  std::iota(feats.begin(), feats.end(), std::size_t{0});
  std::size_t n_feats = x.cols();
  if (cfg_.max_features > 0 && cfg_.max_features < x.cols()) {
    rng.shuffle(feats);
    n_feats = cfg_.max_features;
  }

  // Best split by exhaustive sorted scan per candidate feature. The best
  // candidate is taken even when it does not immediately reduce impurity
  // (standard CART greediness): XOR-like structure only pays off a level
  // deeper, and the depth cap bounds fruitless recursion.
  int best_feat = -1;
  double best_thr = 0.0;
  double best_score = std::numeric_limits<double>::infinity();
  std::vector<std::pair<double, std::size_t>> vals(hi - lo);

  for (std::size_t fi = 0; fi < n_feats; ++fi) {
    const std::size_t f = feats[fi];
    for (std::size_t i = lo; i < hi; ++i)
      vals[i - lo] = {x(idx[i], f), y[idx[i]]};
    std::sort(vals.begin(), vals.end());
    if (vals.front().first == vals.back().first) continue;

    std::vector<double> left_counts(n_classes, 0.0);
    std::vector<double> right_counts = counts;
    for (std::size_t i = 0; i + 1 < vals.size(); ++i) {
      left_counts[vals[i].second] += 1.0;
      right_counts[vals[i].second] -= 1.0;
      if (vals[i + 1].first == vals[i].first) continue;
      const double nl = static_cast<double>(i + 1);
      const double nr = total - nl;
      const double min_leaf = static_cast<double>(cfg_.min_samples_leaf);
      if (nl < min_leaf || nr < min_leaf) continue;
      const double score =
          (nl * gini(left_counts, nl) + nr * gini(right_counts, nr)) / total;
      if (score < best_score - 1e-12) {
        best_score = score;
        best_feat = static_cast<int>(f);
        best_thr = 0.5 * (vals[i].first + vals[i + 1].first);
      }
    }
  }
  if (best_feat < 0) return make_leaf();

  const auto mid_it =
      std::partition(idx.begin() + static_cast<std::ptrdiff_t>(lo),
                     idx.begin() + static_cast<std::ptrdiff_t>(hi),
                     [&](std::size_t r) {
                       return x(r, static_cast<std::size_t>(best_feat)) <= best_thr;
                     });
  const auto mid = static_cast<std::size_t>(mid_it - idx.begin());
  if (mid == lo || mid == hi) return make_leaf();

  nodes_[me].feature = best_feat;
  nodes_[me].threshold = best_thr;
  const std::size_t l = build(x, y, idx, lo, mid, depth + 1, n_classes, rng);
  const std::size_t r = build(x, y, idx, mid, hi, depth + 1, n_classes, rng);
  nodes_[me].left = l;
  nodes_[me].right = r;
  return me;
}

const DecisionTree::Node& DecisionTree::descend(std::span<const double> row) const {
  std::size_t node = 0;
  while (nodes_[node].feature >= 0)
    node = row[static_cast<std::size_t>(nodes_[node].feature)] <=
                   nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  return nodes_[node];
}

std::vector<std::size_t> DecisionTree::predict(const Matrix& x) const {
  require(fitted(), "DecisionTree::predict: not fitted");
  std::vector<std::size_t> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto& frac = descend(x.row(i)).class_frac;
    out[i] = static_cast<std::size_t>(
        std::max_element(frac.begin(), frac.end()) - frac.begin());
  }
  return out;
}

Matrix DecisionTree::predict_proba(const Matrix& x) const {
  require(fitted(), "DecisionTree::predict_proba: not fitted");
  Matrix out(x.rows(), n_classes_);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto& frac = descend(x.row(i)).class_frac;
    for (std::size_t c = 0; c < n_classes_; ++c) out(i, c) = frac[c];
  }
  return out;
}

}  // namespace cnd::ml
