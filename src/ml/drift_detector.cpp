#include "ml/drift_detector.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/assert.hpp"

namespace cnd::ml {

PageHinkley::PageHinkley(double delta, double lambda, std::size_t min_samples)
    : delta_(delta), lambda_(lambda), min_samples_(min_samples) {
  require(lambda > 0.0, "PageHinkley: lambda must be > 0");
  require(delta >= 0.0, "PageHinkley: delta must be >= 0");
}

// One observation of the Page-Hinkley statistic: pure arithmetic, sits on
// the adaptive/streaming drift gates that run per incoming chunk.
// cnd-hot
bool PageHinkley::update(double value) {
  ++n_;
  mean_ += (value - mean_) / static_cast<double>(n_);
  mt_ += value - mean_ - delta_;
  min_mt_ = std::min(min_mt_, mt_);
  if (n_ >= min_samples_ && mt_ - min_mt_ > lambda_) {
    reset();
    return true;
  }
  return false;
}

void PageHinkley::reset() {
  n_ = 0;
  mean_ = 0.0;
  mt_ = 0.0;
  min_mt_ = 0.0;
}

WindowShiftDetector::WindowShiftDetector(std::size_t window, double threshold)
    : window_(window), threshold_(threshold) {
  require(window >= 8, "WindowShiftDetector: window too small");
  require(threshold > 0.0, "WindowShiftDetector: threshold must be > 0");
}

// cnd-alloc-ok(two-window deque is this detector's state; hot gates use PageHinkley)
bool WindowShiftDetector::update(double value) {
  ++n_;
  buf_.push_back(value);
  if (buf_.size() > 2 * window_) buf_.pop_front();
  if (buf_.size() < 2 * window_) return false;

  double m_old = 0.0, m_new = 0.0;
  for (std::size_t i = 0; i < window_; ++i) {
    m_old += buf_[i];
    m_new += buf_[window_ + i];
  }
  m_old /= static_cast<double>(window_);
  m_new /= static_cast<double>(window_);

  double var = 0.0;
  for (std::size_t i = 0; i < window_; ++i) {
    var += (buf_[i] - m_old) * (buf_[i] - m_old);
    var += (buf_[window_ + i] - m_new) * (buf_[window_ + i] - m_new);
  }
  var /= static_cast<double>(2 * window_ - 2);
  const double se = std::sqrt(std::max(var, 1e-12) * 2.0 /
                              static_cast<double>(window_));
  if (std::abs(m_new - m_old) > threshold_ * se) {
    reset();
    return true;
  }
  return false;
}

void WindowShiftDetector::reset() {
  n_ = 0;
  buf_.clear();
}

}  // namespace cnd::ml
