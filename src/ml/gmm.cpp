#include "ml/gmm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/assert.hpp"

namespace cnd::ml {

namespace {

constexpr double kLog2Pi = 1.8378770664093453;

/// log N(x | mu, diag(var)) for one row.
double log_gauss(std::span<const double> x, std::span<const double> mu,
                 std::span<const double> var) {
  double s = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) {
    const double d = x[j] - mu[j];
    s += -0.5 * (kLog2Pi + std::log(var[j]) + d * d / var[j]);
  }
  return s;
}

double logsumexp(std::span<const double> v) {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : v) m = std::max(m, x);
  if (!std::isfinite(m)) return m;
  double s = 0.0;
  for (double x : v) s += std::exp(x - m);
  return m + std::log(s);
}

}  // namespace

void Gmm::fit(const Matrix& x, Rng& rng) {
  require(x.rows() >= cfg_.n_components * 2, "Gmm::fit: too few rows");
  require(cfg_.n_components >= 1, "Gmm::fit: need at least one component");
  const std::size_t n = x.rows(), d = x.cols(), k = cfg_.n_components;

  // Seed means with k-means++-style spread; variances at the global scale.
  auto mu0 = col_mean(x);
  auto sd0 = col_stddev(x, mu0);
  means_ = Matrix(k, d);
  vars_ = Matrix(k, d);
  weights_.assign(k, 1.0 / static_cast<double>(k));
  std::vector<double> d2(n, std::numeric_limits<double>::infinity());
  const auto first = static_cast<std::size_t>(
      rng.randint(0, static_cast<std::int64_t>(n) - 1));
  means_.set_row(0, x.row(first));
  for (std::size_t c = 1; c < k; ++c) {
    for (std::size_t i = 0; i < n; ++i)
      d2[i] = std::min(d2[i], sq_dist(x.row(i), means_.row(c - 1)));
    double total = 0.0;
    for (double v : d2) total += v;
    std::size_t chosen = n - 1;
    double r = rng.uniform(0.0, std::max(total, 1e-300));
    for (std::size_t i = 0; i < n; ++i) {
      r -= d2[i];
      if (r <= 0.0) {
        chosen = i;
        break;
      }
    }
    means_.set_row(c, x.row(chosen));
  }
  for (std::size_t c = 0; c < k; ++c)
    for (std::size_t j = 0; j < d; ++j)
      vars_(c, j) = std::max(sd0[j] * sd0[j], cfg_.reg_covar);

  // EM.
  Matrix resp(n, k);
  double prev_ll = -std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < cfg_.max_iters; ++iter) {
    // E-step.
    double ll = 0.0;
    std::vector<double> logp(k);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < k; ++c)
        logp[c] = std::log(std::max(weights_[c], 1e-300)) +
                  log_gauss(x.row(i), means_.row(c), vars_.row(c));
      const double lse = logsumexp(logp);
      ll += lse;
      for (std::size_t c = 0; c < k; ++c) resp(i, c) = std::exp(logp[c] - lse);
    }
    ll /= static_cast<double>(n);

    // M-step.
    for (std::size_t c = 0; c < k; ++c) {
      double nk = 0.0;
      for (std::size_t i = 0; i < n; ++i) nk += resp(i, c);
      nk = std::max(nk, 1e-10);
      weights_[c] = nk / static_cast<double>(n);
      for (std::size_t j = 0; j < d; ++j) {
        double m = 0.0;
        for (std::size_t i = 0; i < n; ++i) m += resp(i, c) * x(i, j);
        means_(c, j) = m / nk;
      }
      for (std::size_t j = 0; j < d; ++j) {
        double v = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double diff = x(i, j) - means_(c, j);
          v += resp(i, c) * diff * diff;
        }
        vars_(c, j) = std::max(v / nk, cfg_.reg_covar);
      }
    }

    if (ll - prev_ll < cfg_.tol && iter > 0) break;
    prev_ll = ll;
  }
}

std::vector<double> Gmm::log_likelihood(const Matrix& x) const {
  require(fitted(), "Gmm: not fitted");
  require(x.cols() == means_.cols(), "Gmm: feature mismatch");
  std::vector<double> out(x.rows());
  std::vector<double> logp(weights_.size());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t c = 0; c < weights_.size(); ++c)
      logp[c] = std::log(std::max(weights_[c], 1e-300)) +
                log_gauss(x.row(i), means_.row(c), vars_.row(c));
    out[i] = logsumexp(logp);
  }
  return out;
}

std::vector<double> Gmm::score(const Matrix& x) const {
  auto ll = log_likelihood(x);
  for (double& v : ll) v = -v;
  return ll;
}

}  // namespace cnd::ml
