// One-class SVM (Schölkopf et al. 2001) with RBF kernel.
//
// Dual problem:  min 1/2 a^T K a   s.t.  0 <= a_i <= 1/(nu*n),  sum a_i = 1.
// Solved with SMO-style pairwise coordinate descent that preserves the
// equality constraint. One of the paper's static ND baselines (OC-SVM [15]).
#pragma once

#include <vector>

#include "tensor/matrix.hpp"

namespace cnd::ml {

struct OcSvmConfig {
  double nu = 0.1;        ///< fraction bound on outliers / support vectors.
  double gamma = 0.0;     ///< RBF width; 0 = auto "scale" (1 / (d * var)).
  std::size_t max_iters = 20000;  ///< pairwise SMO updates.
  double tol = 1e-5;      ///< KKT violation tolerance.
  std::size_t max_train = 1500;   ///< subsample cap (kernel matrix is n^2).
};

class OcSvm {
 public:
  explicit OcSvm(const OcSvmConfig& cfg = {}) : cfg_(cfg) {}

  /// Fit on (subsampled) reference data. Deterministic subsample: stride.
  void fit(const Matrix& x);

  /// Anomaly score per row: rho - sum_i a_i K(x_i, x). Positive = outlier
  /// side of the boundary; higher = more anomalous.
  std::vector<double> score(const Matrix& x) const;

  bool fitted() const { return !sv_.empty(); }
  double rho() const { return rho_; }
  std::size_t n_support() const { return sv_.rows(); }

 private:
  double kernel(std::span<const double> a, std::span<const double> b) const;

  OcSvmConfig cfg_;
  double gamma_ = 1.0;
  double rho_ = 0.0;
  Matrix sv_;                  ///< support vectors (alpha > 0).
  std::vector<double> alpha_;  ///< matching dual coefficients.
};

}  // namespace cnd::ml
