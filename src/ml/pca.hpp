// Principal component analysis with feature-reconstruction-error scoring.
//
// This is both the paper's ND baseline (PCA [23]) and the novelty-detection
// head of CND-IDS: PCA is fit on (encoded) clean normal data, the number of
// components is chosen by explained variance (95% in the paper), and the
// anomaly score of a point h is FRE = ||h - T^{-1}(T(h))||^2.
#pragma once

#include <vector>

#include "tensor/kernels.hpp"
#include "tensor/matrix.hpp"

namespace cnd::ml {

struct PcaConfig {
  /// Keep the smallest number of components whose cumulative explained
  /// variance ratio reaches this threshold.
  double explained_variance = 0.95;
  /// Optional hard cap on components (0 = no cap).
  std::size_t max_components = 0;
};

class Pca {
 public:
  explicit Pca(const PcaConfig& cfg = {}) : cfg_(cfg) {}

  /// Restore a fitted PCA from its parameters (deserialization path).
  Pca(std::vector<double> mean, Matrix components);

  /// Fit mean and principal basis on rows of x.
  void fit(const Matrix& x);

  /// Project to the principal subspace: (x - mu) W, shape n x k.
  Matrix transform(const Matrix& x) const;

  /// Back-project: l W^T + mu, shape n x d.
  Matrix inverse_transform(const Matrix& l) const;

  /// Feature reconstruction error per row: ||h - T^{-1}(T(h))||^2.
  std::vector<double> score(const Matrix& x) const;

  /// Allocation-free projection: out = (x - mu) W using `ws` for the
  /// centered temporary. Same values as transform(), bit-for-bit.
  void transform_into(const Matrix& x, Matrix& out, Workspace& ws) const;

  /// Allocation-free FRE scoring through `ws`; steady-state calls with a
  /// fixed batch shape touch the heap zero times. Same values as score().
  void score_into(const Matrix& x, std::vector<double>& out, Workspace& ws) const;

  std::size_t n_components() const { return components_.cols(); }
  const std::vector<double>& explained_variance_ratio() const { return evr_; }
  const std::vector<double>& center() const { return mean_; }
  const Matrix& components() const { return components_; }
  bool fitted() const { return !components_.empty(); }

 private:
  PcaConfig cfg_;
  std::vector<double> mean_;
  Matrix components_;  ///< d x k, orthonormal columns.
  std::vector<double> evr_;
};

}  // namespace cnd::ml
