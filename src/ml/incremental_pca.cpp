#include "ml/incremental_pca.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.hpp"
#include "tensor/assert.hpp"

namespace cnd::ml {

// cnd-hot
void IncrementalPca::partial_fit(const Matrix& x) {
  require(x.rows() > 0, "IncrementalPca::partial_fit: empty batch");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  if (n_ == 0) {
    mean_.assign(x.cols(), 0.0);  // cnd-analyze: allow(hot-path-alloc) — first batch only
    comoment_ = Matrix(x.cols(), x.cols());
  }
  require(x.cols() == mean_.size(), "IncrementalPca::partial_fit: width mismatch");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)

  // Chan et al. pairwise update: merge batch moments into running moments.
  // Temporaries live in the member workspace so a stream of equally-shaped
  // batches updates the moments without heap traffic.
  const double n_a = static_cast<double>(n_);
  const double n_b = static_cast<double>(x.rows());
  auto& mean_b = ws_.vec(0, x.cols());
  std::fill(mean_b.begin(), mean_b.end(), 0.0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    auto r = x.row(i);
    for (std::size_t j = 0; j < x.cols(); ++j) mean_b[j] += r[j];
  }
  for (double& v : mean_b) v /= n_b;
  Matrix& centered = ws_.mat(0, x.rows(), x.cols());
  sub_rowvec_into(centered, x, mean_b);
  Matrix& m2_b = ws_.mat(1, x.cols(), x.cols());
  matmul_at_into(m2_b, centered, centered);

  const double n_ab = n_a + n_b;
  auto& delta = ws_.vec(1, mean_.size());
  for (std::size_t j = 0; j < mean_.size(); ++j) delta[j] = mean_b[j] - mean_[j];

  comoment_ += m2_b;
  const double corr = n_a * n_b / n_ab;
  for (std::size_t i = 0; i < comoment_.rows(); ++i)
    for (std::size_t j = 0; j < comoment_.cols(); ++j)
      comoment_(i, j) += corr * delta[i] * delta[j];

  for (std::size_t j = 0; j < mean_.size(); ++j)
    mean_[j] += delta[j] * (n_b / n_ab);
  n_ += x.rows();
  refreshed_ = false;
}

Matrix IncrementalPca::covariance() const {
  require(n_ >= 2, "IncrementalPca::covariance: need at least 2 rows");
  Matrix cov = comoment_;
  cov *= 1.0 / static_cast<double>(n_ - 1);
  // Exact symmetry for the eigensolver.
  for (std::size_t i = 0; i < cov.rows(); ++i)
    for (std::size_t j = i + 1; j < cov.cols(); ++j) {
      const double v = 0.5 * (cov(i, j) + cov(j, i));
      cov(i, j) = v;
      cov(j, i) = v;
    }
  return cov;
}

void IncrementalPca::refresh() {
  const Matrix cov = covariance();
  const linalg::EigenResult eig = linalg::eigen_symmetric(cov);

  double total = 0.0;
  for (double v : eig.values) total += std::max(v, 0.0);
  if (total <= 0.0) total = 1.0;

  const std::size_t cap = cfg_.max_components
                              ? std::min(cfg_.max_components, cov.cols())
                              : cov.cols();
  std::size_t k = 0;
  double cum = 0.0;
  for (std::size_t i = 0; i < eig.values.size() && k < cap; ++i) {
    cum += std::max(eig.values[i], 0.0) / total;
    ++k;
    if (cum >= cfg_.explained_variance) break;
  }
  CND_ASSERT(k >= 1);

  components_ = Matrix(cov.cols(), k);
  for (std::size_t i = 0; i < cov.cols(); ++i)
    for (std::size_t j = 0; j < k; ++j) components_(i, j) = eig.vectors(i, j);
  basis_mean_ = mean_;
  refreshed_ = true;
}

std::size_t IncrementalPca::n_components() const {
  require(refreshed_, "IncrementalPca: refresh() not called");
  return components_.cols();
}

Matrix IncrementalPca::transform(const Matrix& x) const {
  require(refreshed_, "IncrementalPca::transform: refresh() not called");
  require(x.cols() == basis_mean_.size(), "IncrementalPca::transform: width mismatch");
  return matmul(sub_rowvec(x, basis_mean_), components_);
}

std::vector<double> IncrementalPca::score(const Matrix& x) const {
  Workspace ws;
  std::vector<double> out;
  score_into(x, out, ws);
  return out;
}

// cnd-hot
void IncrementalPca::score_into(const Matrix& x, std::vector<double>& out,
                                Workspace& ws) const {
  require(refreshed_, "IncrementalPca::score: refresh() not called");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  require(x.cols() == basis_mean_.size(), "IncrementalPca::score: width mismatch");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  // Same operation sequence as transform() + the naive score loop, through
  // workspace buffers — scores are bit-identical to score().
  Matrix& centered = ws.mat(0, x.rows(), x.cols());
  sub_rowvec_into(centered, x, basis_mean_);
  Matrix& l = ws.mat(1, x.rows(), components_.cols());
  matmul_into(l, centered, components_);
  Matrix& recon = ws.mat(2, x.rows(), x.cols());
  matmul_bt_into(recon, l, components_);
  out.resize(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    auto rr = recon.row(i);
    auto xr = x.row(i);
    double s = 0.0;
    for (std::size_t j = 0; j < x.cols(); ++j) {
      const double d = (xr[j] - basis_mean_[j]) - rr[j];
      s += d * d;
    }
    out[i] = s;
  }
}

}  // namespace cnd::ml
