#include "ml/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/assert.hpp"

namespace cnd::ml {

// The fused blocked nearest-centroid pass used to live here as a file-local
// helper; it is now linalg::nearest_centroid (hoisted verbatim so the IVF
// index can train with the identical kernel — see linalg/distance.hpp).
using linalg::nearest_centroid;

void KMeans::fit(const Matrix& x, Rng& rng) {
  require(cfg_.k > 0, "KMeans: k must be > 0");
  require(x.rows() >= cfg_.k, "KMeans: fewer points than clusters");

  // k-means++ seeding (scalar: k single-centroid sweeps, RNG-coupled).
  centroids_ = Matrix(cfg_.k, x.cols());
  const auto first =
      static_cast<std::size_t>(rng.randint(0, static_cast<std::int64_t>(x.rows()) - 1));
  centroids_.set_row(0, x.row(first));
  std::vector<double> d2(x.rows(), std::numeric_limits<double>::infinity());
  for (std::size_t c = 1; c < cfg_.k; ++c) {
    for (std::size_t i = 0; i < x.rows(); ++i)
      d2[i] = std::min(d2[i], sq_dist(x.row(i), centroids_.row(c - 1)));
    double total = 0.0;
    for (double v : d2) total += v;
    std::size_t chosen;
    if (total <= 0.0) {
      chosen = static_cast<std::size_t>(
          rng.randint(0, static_cast<std::int64_t>(x.rows()) - 1));
    } else {
      double r = rng.uniform(0.0, total);
      chosen = x.rows() - 1;
      for (std::size_t i = 0; i < x.rows(); ++i) {
        r -= d2[i];
        if (r <= 0.0) {
          chosen = i;
          break;
        }
      }
    }
    centroids_.set_row(c, x.row(chosen));
  }

  // Lloyd iterations; the assignment step is the hot part and runs fused.
  std::vector<std::size_t> assign(x.rows());
  for (std::size_t iter = 0; iter < cfg_.max_iters; ++iter) {
    nearest_centroid(x, centroids_, &assign, nullptr);

    Matrix sums(cfg_.k, x.cols());
    std::vector<std::size_t> counts(cfg_.k, 0);
    for (std::size_t i = 0; i < x.rows(); ++i) {
      auto s = sums.row(assign[i]);
      auto r = x.row(i);
      for (std::size_t j = 0; j < x.cols(); ++j) s[j] += r[j];
      ++counts[assign[i]];
    }

    double movement = 0.0;
    for (std::size_t c = 0; c < cfg_.k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        const auto r = static_cast<std::size_t>(
            rng.randint(0, static_cast<std::int64_t>(x.rows()) - 1));
        movement += sq_dist(centroids_.row(c), x.row(r));
        centroids_.set_row(c, x.row(r));
        continue;
      }
      auto s = sums.row(c);
      auto old = centroids_.row(c);
      for (std::size_t j = 0; j < x.cols(); ++j) {
        const double nc = s[j] / static_cast<double>(counts[c]);
        const double d = nc - old[j];
        movement += d * d;
        old[j] = nc;
      }
    }
    if (movement < cfg_.tol) break;
  }

  // Opt-in ANN assignment: index the fitted centroids eagerly so the const
  // predict() never mutates state. Exact mode keeps the provider empty.
  if (cfg_.ann.nprobe > 0) {
    Matrix cen = centroids_;
    nn_.bind(std::move(cen), cfg_.ann);
  } else {
    nn_.unbind();
  }
}

std::vector<std::size_t> KMeans::predict(const Matrix& x) const {
  require(fitted(), "KMeans::predict: not fitted");
  require(x.cols() == centroids_.cols(), "KMeans::predict: feature mismatch");
  std::vector<std::size_t> out(x.rows());
  if (nn_.ready() && !nn_.exact()) {
    // IVF fast path (k = 1). Re-ranked distances are the exact fused values
    // and ties break on the smaller centroid id — the same total order as
    // the strict-< argmin below — so this only differs from exact when the
    // probed clusters miss the true nearest centroid.
    const linalg::Knn nn = nn_.knn(x, 1, /*exclude_self=*/false);
    for (std::size_t i = 0; i < x.rows(); ++i) out[i] = nn.indices[i][0];
    return out;
  }
  nearest_centroid(x, centroids_, &out, nullptr);
  return out;
}

double KMeans::inertia(const Matrix& x) const {
  require(fitted(), "KMeans::inertia: not fitted");
  require(x.cols() == centroids_.cols(), "KMeans::inertia: feature mismatch");
  std::vector<double> d2(x.rows());
  nearest_centroid(x, centroids_, nullptr, &d2);
  double total = 0.0;
  for (double v : d2) total += v;
  return total;
}

}  // namespace cnd::ml
