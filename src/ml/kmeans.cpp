#include "ml/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "runtime/parallel_for.hpp"
#include "tensor/assert.hpp"
#include "tensor/kernels.hpp"

namespace cnd::ml {

// Norms come from kernels::row_sq_norms — same translation unit (and hence
// FP-contraction pattern) as the Gram kernel, so a point sitting exactly on
// a centroid gets a fused distance of exactly 0.0 (see kernels.hpp).
using kernels::row_sq_norms;

namespace {

// Rows of x per Gram block in the fused nearest-centroid pass; bounds the
// per-chunk d² scratch to kRowBlock x k regardless of dataset size.
constexpr std::size_t kRowBlock = 256;

// Fused nearest-centroid pass: blocked Gram product of x row slices against
// the centroid matrix, d² = ||x||² + ||c||² − 2·x·c clamped at 0, argmin
// scanning centroids in ascending index with strict < (ties go to the
// smallest index, matching a scalar linear scan). Fills assign[i] and/or
// d2_out[i] when non-null. Deterministic at any thread count: each (i, c)
// value is independent of chunk and block boundaries.
// cnd-hot
void assign_nearest(const Matrix& x, const Matrix& cen,
                    std::vector<std::size_t>* assign,
                    std::vector<double>* d2_out) {
  std::vector<double> ncen;
  row_sq_norms(cen, 0, cen.rows(), ncen);
  runtime::parallel_for(0, x.rows(),
                        runtime::grain_for_cost(cen.rows() * x.cols()),
                        [&](std::size_t lo, std::size_t hi) {
    Workspace ws;
    std::vector<double> nx;
    for (std::size_t b0 = lo; b0 < hi; b0 += kRowBlock) {
      const std::size_t b1 = std::min(hi, b0 + kRowBlock);
      Matrix& g = ws.mat(0, b1 - b0, cen.rows());
      matmul_bt_rows_into(g, x, b0, b1, cen);
      row_sq_norms(x, b0, b1, nx);
      for (std::size_t i = b0; i < b1; ++i) {
        auto gr = g.row(i - b0);
        std::size_t best = 0;
        double bd = std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < cen.rows(); ++c) {
          const double d2 = std::max(0.0, nx[i - b0] + ncen[c] - 2.0 * gr[c]);
          if (d2 < bd) {
            bd = d2;
            best = c;
          }
        }
        if (assign) (*assign)[i] = best;
        if (d2_out) (*d2_out)[i] = bd;
      }
    }
  });
}

}  // namespace

void KMeans::fit(const Matrix& x, Rng& rng) {
  require(cfg_.k > 0, "KMeans: k must be > 0");
  require(x.rows() >= cfg_.k, "KMeans: fewer points than clusters");

  // k-means++ seeding (scalar: k single-centroid sweeps, RNG-coupled).
  centroids_ = Matrix(cfg_.k, x.cols());
  const auto first =
      static_cast<std::size_t>(rng.randint(0, static_cast<std::int64_t>(x.rows()) - 1));
  centroids_.set_row(0, x.row(first));
  std::vector<double> d2(x.rows(), std::numeric_limits<double>::infinity());
  for (std::size_t c = 1; c < cfg_.k; ++c) {
    for (std::size_t i = 0; i < x.rows(); ++i)
      d2[i] = std::min(d2[i], sq_dist(x.row(i), centroids_.row(c - 1)));
    double total = 0.0;
    for (double v : d2) total += v;
    std::size_t chosen;
    if (total <= 0.0) {
      chosen = static_cast<std::size_t>(
          rng.randint(0, static_cast<std::int64_t>(x.rows()) - 1));
    } else {
      double r = rng.uniform(0.0, total);
      chosen = x.rows() - 1;
      for (std::size_t i = 0; i < x.rows(); ++i) {
        r -= d2[i];
        if (r <= 0.0) {
          chosen = i;
          break;
        }
      }
    }
    centroids_.set_row(c, x.row(chosen));
  }

  // Lloyd iterations; the assignment step is the hot part and runs fused.
  std::vector<std::size_t> assign(x.rows());
  for (std::size_t iter = 0; iter < cfg_.max_iters; ++iter) {
    assign_nearest(x, centroids_, &assign, nullptr);

    Matrix sums(cfg_.k, x.cols());
    std::vector<std::size_t> counts(cfg_.k, 0);
    for (std::size_t i = 0; i < x.rows(); ++i) {
      auto s = sums.row(assign[i]);
      auto r = x.row(i);
      for (std::size_t j = 0; j < x.cols(); ++j) s[j] += r[j];
      ++counts[assign[i]];
    }

    double movement = 0.0;
    for (std::size_t c = 0; c < cfg_.k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        const auto r = static_cast<std::size_t>(
            rng.randint(0, static_cast<std::int64_t>(x.rows()) - 1));
        movement += sq_dist(centroids_.row(c), x.row(r));
        centroids_.set_row(c, x.row(r));
        continue;
      }
      auto s = sums.row(c);
      auto old = centroids_.row(c);
      for (std::size_t j = 0; j < x.cols(); ++j) {
        const double nc = s[j] / static_cast<double>(counts[c]);
        const double d = nc - old[j];
        movement += d * d;
        old[j] = nc;
      }
    }
    if (movement < cfg_.tol) break;
  }
}

std::vector<std::size_t> KMeans::predict(const Matrix& x) const {
  require(fitted(), "KMeans::predict: not fitted");
  require(x.cols() == centroids_.cols(), "KMeans::predict: feature mismatch");
  std::vector<std::size_t> out(x.rows());
  assign_nearest(x, centroids_, &out, nullptr);
  return out;
}

double KMeans::inertia(const Matrix& x) const {
  require(fitted(), "KMeans::inertia: not fitted");
  require(x.cols() == centroids_.cols(), "KMeans::inertia: feature mismatch");
  std::vector<double> d2(x.rows());
  assign_nearest(x, centroids_, nullptr, &d2);
  double total = 0.0;
  for (double v : d2) total += v;
  return total;
}

}  // namespace cnd::ml
