// Feature scalers.
//
// Network flow features span wildly different ranges (bytes vs flags), so
// every pipeline in this repository standardizes features before training.
#pragma once

#include <vector>

#include "tensor/matrix.hpp"

namespace cnd::ml {

/// z-score standardization per column; constant columns map to 0.
class StandardScaler {
 public:
  StandardScaler() = default;
  /// Restore a fitted scaler from its statistics (deserialization path).
  StandardScaler(std::vector<double> mean, std::vector<double> stddev);

  void fit(const Matrix& x);
  Matrix transform(const Matrix& x) const;
  Matrix fit_transform(const Matrix& x);
  bool fitted() const { return !mean_.empty(); }

  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return std_; }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

/// Min-max scaling to [0, 1] per column; constant columns map to 0.
class MinMaxScaler {
 public:
  void fit(const Matrix& x);
  Matrix transform(const Matrix& x) const;
  Matrix fit_transform(const Matrix& x);
  bool fitted() const { return !min_.empty(); }

 private:
  std::vector<double> min_;
  std::vector<double> range_;
};

}  // namespace cnd::ml
