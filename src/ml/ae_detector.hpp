// Autoencoder-reconstruction novelty detector.
//
// The standard deep ND baseline for IDS: train an MLP autoencoder on clean
// normal flows with plain reconstruction loss, score by per-row
// reconstruction MSE. Structurally this is "CND-IDS without the continual
// parts and without PCA" — useful as a reference point for the ablation
// story and as a strong static baseline in its own right.
#pragma once

#include <vector>

#include "nn/autoencoder.hpp"
#include "nn/optimizer.hpp"
#include "tensor/rng.hpp"

namespace cnd::ml {

struct AeDetectorConfig {
  std::size_t hidden_dim = 128;
  std::size_t latent_dim = 16;  ///< bottleneck: reconstruction must compress.
  std::size_t epochs = 20;
  std::size_t batch_size = 128;
  double lr = 1e-3;
};

class AeDetector {
 public:
  explicit AeDetector(const AeDetectorConfig& cfg = {}, std::uint64_t seed = 77);

  /// Train on (assumed clean) reference rows. Returns final epoch mean loss.
  double fit(const Matrix& x);

  /// Per-row reconstruction MSE; higher = more anomalous.
  std::vector<double> score(const Matrix& x);

  bool fitted() const { return ae_.initialized(); }

 private:
  AeDetectorConfig cfg_;
  Rng rng_;
  nn::Autoencoder ae_;
  nn::Adam opt_;
};

}  // namespace cnd::ml
