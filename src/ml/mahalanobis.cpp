#include "ml/mahalanobis.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.hpp"
#include "linalg/stats.hpp"
#include "tensor/assert.hpp"

namespace cnd::ml {

void MahalanobisDetector::fit(const Matrix& x) {
  require(x.rows() >= 2, "MahalanobisDetector::fit: need at least 2 rows");
  mean_ = col_mean(x);
  const Matrix cov = linalg::covariance(x);
  const linalg::EigenResult eig = linalg::eigen_symmetric(cov);

  const double floor = std::max(eig.values.front(), 1.0) * cfg_.reg;
  // whitener = V diag(lambda^-1/2) V^T; distance = ||W (x - mu)||^2.
  Matrix vs = eig.vectors;  // n x n, columns scaled by lambda^-1/2
  for (std::size_t j = 0; j < vs.cols(); ++j) {
    const double inv = 1.0 / std::sqrt(std::max(eig.values[j], floor));
    for (std::size_t i = 0; i < vs.rows(); ++i) vs(i, j) *= inv;
  }
  whitener_ = matmul_bt(vs, eig.vectors);
}

std::vector<double> MahalanobisDetector::score(const Matrix& x) const {
  require(fitted(), "MahalanobisDetector::score: not fitted");
  require(x.cols() == mean_.size(), "MahalanobisDetector::score: feature mismatch");
  const Matrix centered = sub_rowvec(x, mean_);
  const Matrix w = matmul_bt(centered, whitener_);
  std::vector<double> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    double s = 0.0;
    for (double v : w.row(i)) s += v * v;
    out[i] = s;
  }
  return out;
}

}  // namespace cnd::ml
