#include "ml/elbow.hpp"

#include <algorithm>

#include "ml/kmeans.hpp"
#include "tensor/assert.hpp"

namespace cnd::ml {

std::size_t elbow_k(const Matrix& x, Rng& rng, std::size_t k_min,
                    std::size_t k_max, std::size_t max_points) {
  require(k_min >= 2 && k_max >= k_min, "elbow_k: invalid k range");
  require(x.rows() > 0, "elbow_k: empty data");
  k_max = std::min(k_max, x.rows());
  if (k_max < k_min) return std::min<std::size_t>(x.rows(), k_min);

  Matrix sample = x;
  if (x.rows() > max_points) {
    auto perm = rng.permutation(x.rows());
    perm.resize(max_points);
    sample = x.take_rows(perm);
  }

  std::vector<double> inertia;
  for (std::size_t k = k_min; k <= k_max; ++k) {
    KMeans km({.k = k, .max_iters = 50, .tol = 1e-5});
    km.fit(sample, rng);
    inertia.push_back(km.inertia(sample));
  }
  if (inertia.size() < 3) return k_min;

  // Normalize and find the largest positive second difference (sharpest
  // bend in the decreasing inertia curve).
  const double i0 = inertia.front();
  const double scale = i0 > 0.0 ? i0 : 1.0;
  std::size_t best = k_min;
  double best_curv = -1.0;
  for (std::size_t i = 1; i + 1 < inertia.size(); ++i) {
    const double curv =
        (inertia[i - 1] - 2.0 * inertia[i] + inertia[i + 1]) / scale;
    if (curv > best_curv) {
      best_curv = curv;
      best = k_min + i;
    }
  }
  return best;
}

}  // namespace cnd::ml
