#include "ml/isolation_forest.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/parallel_for.hpp"
#include "tensor/assert.hpp"

namespace cnd::ml {

double iforest_c(double n) {
  if (n <= 1.0) return 0.0;
  const double h = std::log(n - 1.0) + 0.5772156649015329;  // harmonic approx
  return 2.0 * h - 2.0 * (n - 1.0) / n;
}

void IsolationForest::fit(const Matrix& x, Rng& rng) {
  require(x.rows() >= 2, "IsolationForest::fit: need at least 2 points");
  require(cfg_.n_trees > 0, "IsolationForest::fit: need at least 1 tree");
  const std::size_t psi = std::min(cfg_.subsample, x.rows());
  const auto max_depth =
      static_cast<std::size_t>(
          std::ceil(std::log2(std::max(2.0, static_cast<double>(psi)))));
  c_norm_ = std::max(iforest_c(static_cast<double>(psi)), 1e-12);

  // Derive one RNG stream per tree up front (serially, from the caller's
  // stream) so tree t consumes the same draws no matter which worker builds
  // it — fitting is bit-identical at any thread count.
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(cfg_.n_trees);
  for (std::size_t t = 0; t < cfg_.n_trees; ++t) tree_rngs.push_back(rng.split(t));

  trees_.assign(cfg_.n_trees, Tree{});
  runtime::parallel_for(0, cfg_.n_trees, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t t = lo; t < hi; ++t) {
      Rng& trng = tree_rngs[t];
      // Sample psi distinct rows.
      auto perm = trng.permutation(x.rows());
      std::vector<std::size_t> idx(perm.begin(),
                                   perm.begin() + static_cast<std::ptrdiff_t>(psi));
      Tree tree;
      tree.reserve(2 * psi);
      build(tree, x, idx, 0, idx.size(), 0, max_depth, trng);
      trees_[t] = std::move(tree);
    }
  });
}

std::size_t IsolationForest::build(Tree& tree, const Matrix& x,
                                   std::vector<std::size_t>& idx, std::size_t lo,
                                   std::size_t hi, std::size_t depth,
                                   std::size_t max_depth, Rng& rng) {
  const std::size_t me = tree.size();
  tree.push_back(Node{});
  tree[me].size = hi - lo;

  if (hi - lo <= 1 || depth >= max_depth) return me;  // leaf

  // Pick a feature with spread; give up after a few attempts (all-constant).
  int feat = -1;
  double fmin = 0.0, fmax = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const auto f = static_cast<std::size_t>(
        rng.randint(0, static_cast<std::int64_t>(x.cols()) - 1));
    double mn = x(idx[lo], f), mx = mn;
    for (std::size_t i = lo + 1; i < hi; ++i) {
      const double v = x(idx[i], f);
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    if (mx > mn) {
      feat = static_cast<int>(f);
      fmin = mn;
      fmax = mx;
      break;
    }
  }
  if (feat < 0) return me;  // all sampled features constant: leaf

  const double thr = rng.uniform(fmin, fmax);
  auto mid_it = std::partition(
      idx.begin() + static_cast<std::ptrdiff_t>(lo),
      idx.begin() + static_cast<std::ptrdiff_t>(hi),
      [&](std::size_t r) { return x(r, static_cast<std::size_t>(feat)) < thr; });
  const auto mid = static_cast<std::size_t>(mid_it - idx.begin());
  if (mid == lo || mid == hi) return me;  // degenerate split: leaf

  tree[me].feature = feat;
  tree[me].threshold = thr;
  const std::size_t l = build(tree, x, idx, lo, mid, depth + 1, max_depth, rng);
  const std::size_t r = build(tree, x, idx, mid, hi, depth + 1, max_depth, rng);
  tree[me].left = l;
  tree[me].right = r;
  return me;
}

double IsolationForest::path_length(const Tree& tree, std::span<const double> p) const {
  std::size_t node = 0;
  double depth = 0.0;
  while (tree[node].feature >= 0) {
    node = p[static_cast<std::size_t>(tree[node].feature)] < tree[node].threshold
               ? tree[node].left
               : tree[node].right;
    depth += 1.0;
  }
  // Unresolved leaf of size s contributes the expected extra depth c(s).
  return depth + iforest_c(static_cast<double>(tree[node].size));
}

std::vector<double> IsolationForest::score(const Matrix& x) const {
  require(fitted(), "IsolationForest::score: not fitted");
  std::vector<double> out(x.rows());
  runtime::parallel_for(0, x.rows(), runtime::grain_for_cost(trees_.size() * 16),
                        [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      double h = 0.0;
      for (const auto& t : trees_) h += path_length(t, x.row(i));
      h /= static_cast<double>(trees_.size());
      out[i] = std::pow(2.0, -h / c_norm_);
    }
  });
  return out;
}

}  // namespace cnd::ml
