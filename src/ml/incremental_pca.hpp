// Incremental PCA over a data stream.
//
// Maintains exact running first and second moments (Welford/Chan parallel
// co-moment updates) so the principal basis can be refreshed at any point
// without revisiting past batches — the streaming-deployment counterpart of
// ml::Pca and the natural extension of the paper's per-experience PCA refit
// (incDFM-style) to true per-batch operation.
#pragma once

#include <vector>

#include "ml/pca.hpp"
#include "tensor/kernels.hpp"
#include "tensor/matrix.hpp"

namespace cnd::ml {

class IncrementalPca {
 public:
  explicit IncrementalPca(const PcaConfig& cfg = {}) : cfg_(cfg) {}

  /// Fold a batch of rows into the running moments. Feature width is fixed
  /// by the first batch.
  void partial_fit(const Matrix& x);

  /// Recompute the principal basis from the current moments. Requires at
  /// least 2 accumulated rows. Idempotent between partial_fit calls.
  void refresh();

  /// FRE anomaly score per row (requires refresh() after the last
  /// partial_fit to be up to date; scores against the last refreshed basis).
  std::vector<double> score(const Matrix& x) const;

  /// Allocation-free FRE scoring through `ws` (same values as score(),
  /// bit-for-bit); steady-state calls at a fixed batch shape touch the heap
  /// zero times.
  void score_into(const Matrix& x, std::vector<double>& out, Workspace& ws) const;

  Matrix transform(const Matrix& x) const;

  std::size_t n_seen() const { return n_; }
  std::size_t n_components() const;
  bool fitted() const { return refreshed_; }

  /// Exact covariance of everything seen so far (ddof = 1).
  Matrix covariance() const;
  const std::vector<double>& mean() const { return mean_; }

 private:
  PcaConfig cfg_;
  std::size_t n_ = 0;
  std::vector<double> mean_;
  Matrix comoment_;  ///< sum of outer products of centered rows.
  Workspace ws_;     ///< partial_fit scratch; steady batch shapes never allocate.

  // Last refreshed basis (mirrors ml::Pca's internals).
  bool refreshed_ = false;
  std::vector<double> basis_mean_;
  Matrix components_;
};

}  // namespace cnd::ml
