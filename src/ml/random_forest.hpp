// Random forest classifier (bagged CART trees, sqrt-feature subsampling).
//
// The de-facto supervised ML-IDS baseline; used by the Fig-1 bench to show
// that even the strongest classic supervised model collapses on attack
// families absent from its training labels.
#pragma once

#include "ml/decision_tree.hpp"

namespace cnd::ml {

struct RandomForestConfig {
  std::size_t n_trees = 50;
  std::size_t max_depth = 12;
  std::size_t min_samples_leaf = 1;
  /// 0 = sqrt(n_features).
  std::size_t max_features = 0;
};

class RandomForest {
 public:
  explicit RandomForest(const RandomForestConfig& cfg = {}) : cfg_(cfg) {}

  void fit(const Matrix& x, const std::vector<std::size_t>& y,
           std::size_t n_classes, Rng& rng);

  /// Majority vote over trees.
  std::vector<std::size_t> predict(const Matrix& x) const;

  /// Mean per-class probability over trees.
  Matrix predict_proba(const Matrix& x) const;

  bool fitted() const { return !trees_.empty(); }
  std::size_t n_trees() const { return trees_.size(); }

 private:
  RandomForestConfig cfg_;
  std::vector<DecisionTree> trees_;
  std::size_t n_classes_ = 0;
};

}  // namespace cnd::ml
