#include "ml/knn_detector.hpp"

#include "linalg/distance.hpp"
#include "runtime/parallel_for.hpp"
#include "tensor/assert.hpp"

namespace cnd::ml {

void KnnDetector::fit(const Matrix& x) {
  require(x.rows() > cfg_.k, "KnnDetector::fit: need more than k rows");
  nn_.bind(x, cfg_.ann);
}

std::vector<double> KnnDetector::score(const Matrix& x) const {
  require(fitted(), "KnnDetector::score: not fitted");
  // The neighbour search inside the provider is the hot part and is itself
  // batch-parallel; the reduction below parallelizes per sample. Exact mode
  // (ann.nprobe = 0) is bit-identical to linalg::knn(x, ref, k, false).
  const linalg::Knn nn = nn_.knn(x, cfg_.k, /*exclude_self=*/false);
  std::vector<double> out(x.rows());
  runtime::parallel_for(0, x.rows(), runtime::grain_for_cost(cfg_.k),
                        [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (cfg_.use_kth_only) {
        out[i] = nn.distances[i].back();
      } else {
        double s = 0.0;
        for (double d : nn.distances[i]) s += d;
        out[i] = s / static_cast<double>(nn.distances[i].size());
      }
    }
  });
  return out;
}

}  // namespace cnd::ml
