#include "ml/knn_detector.hpp"

#include "linalg/distance.hpp"
#include "tensor/assert.hpp"

namespace cnd::ml {

void KnnDetector::fit(const Matrix& x) {
  require(x.rows() > cfg_.k, "KnnDetector::fit: need more than k rows");
  ref_ = x;
}

std::vector<double> KnnDetector::score(const Matrix& x) const {
  require(fitted(), "KnnDetector::score: not fitted");
  const linalg::Knn nn = linalg::knn(x, ref_, cfg_.k, /*exclude_self=*/false);
  std::vector<double> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    if (cfg_.use_kth_only) {
      out[i] = nn.distances[i].back();
    } else {
      double s = 0.0;
      for (double d : nn.distances[i]) s += d;
      out[i] = s / static_cast<double>(nn.distances[i].size());
    }
  }
  return out;
}

}  // namespace cnd::ml
