// k-nearest-neighbour distance novelty detector.
//
// Scores a flow by its mean distance to the k nearest reference (clean
// normal) flows — the simplest non-parametric ND baseline and the usual
// sanity check against which LOF's locality correction is measured.
#pragma once

#include <vector>

#include "linalg/distance.hpp"
#include "tensor/matrix.hpp"

namespace cnd::ml {

struct KnnDetectorConfig {
  std::size_t k = 10;
  /// Use the k-th neighbour distance instead of the mean of all k.
  bool use_kth_only = false;
  /// Neighbor-query knob: nprobe = 0 (default) is exact brute force,
  /// bit-identical to the pre-ANN path; nprobe > 0 routes score-time kNN
  /// through an IVF index over the reference set.
  linalg::AnnConfig ann{};
};

class KnnDetector {
 public:
  explicit KnnDetector(const KnnDetectorConfig& cfg = {}) : cfg_(cfg) {}

  void fit(const Matrix& x);

  /// Mean (or k-th) neighbour distance; higher = more anomalous.
  std::vector<double> score(const Matrix& x) const;

  bool fitted() const { return nn_.ready(); }

 private:
  KnnDetectorConfig cfg_;
  /// Owns the reference matrix, its cached row norms, and the optional IVF
  /// index (docs/ANN.md).
  linalg::NeighborProvider nn_;
};

}  // namespace cnd::ml
