// k-nearest-neighbour distance novelty detector.
//
// Scores a flow by its mean distance to the k nearest reference (clean
// normal) flows — the simplest non-parametric ND baseline and the usual
// sanity check against which LOF's locality correction is measured.
#pragma once

#include <vector>

#include "tensor/matrix.hpp"

namespace cnd::ml {

struct KnnDetectorConfig {
  std::size_t k = 10;
  /// Use the k-th neighbour distance instead of the mean of all k.
  bool use_kth_only = false;
};

class KnnDetector {
 public:
  explicit KnnDetector(const KnnDetectorConfig& cfg = {}) : cfg_(cfg) {}

  void fit(const Matrix& x);

  /// Mean (or k-th) neighbour distance; higher = more anomalous.
  std::vector<double> score(const Matrix& x) const;

  bool fitted() const { return !ref_.empty(); }

 private:
  KnnDetectorConfig cfg_;
  Matrix ref_;
};

}  // namespace cnd::ml
