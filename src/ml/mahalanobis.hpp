// Mahalanobis-distance novelty detector.
//
// Scores a flow by its squared Mahalanobis distance to the clean-normal
// distribution (full covariance, eigendecomposed once at fit time with a
// variance floor for stability). The classic parametric single-Gaussian
// baseline — cheap, strong when normal traffic is unimodal, brittle when it
// is not, which is exactly the gap the multi-modal generators exercise.
#pragma once

#include <vector>

#include "tensor/matrix.hpp"

namespace cnd::ml {

struct MahalanobisConfig {
  double reg = 1e-6;  ///< eigenvalue floor relative to the largest.
};

class MahalanobisDetector {
 public:
  explicit MahalanobisDetector(const MahalanobisConfig& cfg = {}) : cfg_(cfg) {}

  void fit(const Matrix& x);

  /// Squared Mahalanobis distance per row; higher = more anomalous.
  std::vector<double> score(const Matrix& x) const;

  bool fitted() const { return !mean_.empty(); }

 private:
  MahalanobisConfig cfg_;
  std::vector<double> mean_;
  Matrix whitener_;  ///< d x d: V diag(1/sqrt(lambda)) V^T.
};

}  // namespace cnd::ml
