// K-Means clustering with k-means++ initialization (Lloyd iterations).
//
// Used for the CND-IDS cluster-separation pseudo-labels (§III-C) and by the
// ADCN / LwF baselines' latent clustering.
#pragma once

#include <vector>

#include "linalg/distance.hpp"
#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace cnd::ml {

struct KMeansConfig {
  std::size_t k = 8;
  std::size_t max_iters = 100;
  double tol = 1e-6;  ///< stop when centroid movement (sq) drops below this.
  /// Approximate-assignment knob for predict(): nprobe = 0 (default) keeps
  /// the exact fused nearest-centroid pass; nprobe > 0 routes predict()
  /// through an IVF index built over the fitted centroids (docs/ANN.md).
  /// fit() itself always runs exact — the k-means++/Lloyd RNG stream and
  /// every seeded golden result depend on it.
  linalg::AnnConfig ann{};
};

class KMeans {
 public:
  explicit KMeans(const KMeansConfig& cfg) : cfg_(cfg) {}

  /// Fit on rows of x. Requires x.rows() >= k.
  void fit(const Matrix& x, Rng& rng);

  /// Nearest-centroid index per row.
  std::vector<std::size_t> predict(const Matrix& x) const;

  /// Sum of squared distances of each row to its nearest centroid.
  double inertia(const Matrix& x) const;

  const Matrix& centroids() const { return centroids_; }
  std::size_t k() const { return cfg_.k; }
  bool fitted() const { return !centroids_.empty(); }

 private:
  KMeansConfig cfg_;
  Matrix centroids_;
  /// Bound to a copy of centroids_ at the end of fit() iff cfg_.ann.nprobe
  /// > 0 (eager, so the const predict() stays safe to call concurrently).
  linalg::NeighborProvider nn_;
};

}  // namespace cnd::ml
