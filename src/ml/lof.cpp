#include "ml/lof.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/parallel_for.hpp"
#include "tensor/assert.hpp"

namespace cnd::ml {

void Lof::fit(const Matrix& x) {
  require(x.rows() > cfg_.k, "Lof::fit: need more than k reference points");
  nn_.bind(x, cfg_.ann);
  const std::size_t n = nn_.ref().rows();

  // Provider kNN: exact mode is bit-identical to linalg::knn on the same
  // arguments (same kernel, cached norms); ANN mode probes the IVF index.
  const linalg::Knn nn = nn_.knn(nn_.ref(), cfg_.k, /*exclude_self=*/true);
  ref_kdist_.resize(n);
  for (std::size_t i = 0; i < n; ++i) ref_kdist_[i] = nn.distances[i].back();

  // lrd reads the complete ref_kdist_ array, so it only starts after the
  // loop above finishes; per-point lrds are then independent.
  ref_lrd_.resize(n);
  runtime::parallel_for(0, n, runtime::grain_for_cost(cfg_.k),
                        [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      ref_lrd_[i] = lrd_of(nn.distances[i], nn.indices[i]);
  });
}

double Lof::lrd_of(std::span<const double> dists,
                   const std::vector<std::size_t>& idx) const {
  double reach_sum = 0.0;
  for (std::size_t j = 0; j < idx.size(); ++j)
    reach_sum += std::max(dists[j], ref_kdist_[idx[j]]);
  const double avg = reach_sum / static_cast<double>(idx.size());
  return 1.0 / std::max(avg, 1e-12);
}

std::vector<double> Lof::score(const Matrix& x) const {
  require(fitted(), "Lof::score: not fitted");
  const linalg::Knn nn = nn_.knn(x, cfg_.k, /*exclude_self=*/false);
  std::vector<double> out(x.rows());
  runtime::parallel_for(0, x.rows(), runtime::grain_for_cost(cfg_.k),
                        [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const double lrd_q = lrd_of(nn.distances[i], nn.indices[i]);
      double neigh_lrd = 0.0;
      for (std::size_t j : nn.indices[i]) neigh_lrd += ref_lrd_[j];
      neigh_lrd /= static_cast<double>(nn.indices[i].size());
      out[i] = neigh_lrd / std::max(lrd_q, 1e-12);
    }
  });
  return out;
}

}  // namespace cnd::ml
