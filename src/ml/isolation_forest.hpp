// Isolation Forest (Liu, Ting, Zhou 2008).
//
// Substrate for the Deep Isolation Forest baseline and usable standalone.
// Trees isolate points with axis-parallel random splits; anomalies have
// short average path lengths.
#pragma once

#include <memory>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace cnd::ml {

struct IsolationForestConfig {
  std::size_t n_trees = 100;
  std::size_t subsample = 256;  ///< psi; capped at the dataset size.
};

class IsolationForest {
 public:
  explicit IsolationForest(const IsolationForestConfig& cfg = {}) : cfg_(cfg) {}

  void fit(const Matrix& x, Rng& rng);

  /// Standard iForest anomaly score in (0, 1): s = 2^{-E[h(x)] / c(psi)}.
  /// Higher = more anomalous.
  std::vector<double> score(const Matrix& x) const;

  bool fitted() const { return !trees_.empty(); }

 private:
  struct Node {
    int feature = -1;         ///< -1 marks a leaf.
    double threshold = 0.0;
    std::size_t left = 0;     ///< child indices within the tree's node pool.
    std::size_t right = 0;
    std::size_t size = 0;     ///< points that reached this node during build.
  };
  using Tree = std::vector<Node>;

  std::size_t build(Tree& tree, const Matrix& x, std::vector<std::size_t>& idx,
                    std::size_t lo, std::size_t hi, std::size_t depth,
                    std::size_t max_depth, Rng& rng);
  double path_length(const Tree& tree, std::span<const double> p) const;

  IsolationForestConfig cfg_;
  std::vector<Tree> trees_;
  double c_norm_ = 1.0;  ///< c(psi), the expected path normalizer.
};

/// Average path length of an unsuccessful BST search among n points;
/// the normalizing constant c(n) from the iForest paper.
double iforest_c(double n);

}  // namespace cnd::ml
