#include "ml/deep_isolation_forest.hpp"

#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "tensor/assert.hpp"

namespace cnd::ml {

void DeepIsolationForest::fit(const Matrix& x, Rng& rng) {
  require(x.rows() >= 2, "DeepIsolationForest::fit: need at least 2 points");
  require(cfg_.n_representations > 0, "DeepIsolationForest::fit: empty ensemble");

  nets_.clear();
  forests_.clear();
  for (std::size_t r = 0; r < cfg_.n_representations; ++r) {
    nn::Sequential net;
    net.add(std::make_unique<nn::Linear>(x.cols(), cfg_.hidden_dim, rng));
    net.add(std::make_unique<nn::Tanh>());
    net.add(std::make_unique<nn::Linear>(cfg_.hidden_dim, cfg_.repr_dim, rng));
    nets_.push_back(std::move(net));

    IsolationForest forest(
        {.n_trees = cfg_.trees_per_repr, .subsample = cfg_.subsample});
    Matrix z = nets_.back().forward(x, /*train=*/false);
    forest.fit(z, rng);
    forests_.push_back(std::move(forest));
  }
}

Matrix DeepIsolationForest::represent(std::size_t r, const Matrix& x) const {
  // forward() only mutates caches when train=true; cast is confined here.
  auto& net = const_cast<nn::Sequential&>(nets_[r]);
  return net.forward(x, /*train=*/false);
}

std::vector<double> DeepIsolationForest::score(const Matrix& x) const {
  require(fitted(), "DeepIsolationForest::score: not fitted");
  // The representation loop stays serial (forward() touches shared layer
  // buffers); the batch parallelism lives one level down, in the matmuls of
  // represent() and the per-row IsolationForest::score.
  std::vector<double> out(x.rows(), 0.0);
  for (std::size_t r = 0; r < forests_.size(); ++r) {
    const Matrix z = represent(r, x);
    const auto s = forests_[r].score(z);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += s[i];
  }
  for (double& v : out) v /= static_cast<double>(forests_.size());
  return out;
}

}  // namespace cnd::ml
