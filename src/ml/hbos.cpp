#include "ml/hbos.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/parallel_for.hpp"
#include "tensor/assert.hpp"

namespace cnd::ml {

void Hbos::fit(const Matrix& x) {
  require(x.rows() >= 2, "Hbos::fit: need at least 2 rows");
  require(cfg_.n_bins >= 2, "Hbos::fit: need at least 2 bins");
  const std::size_t d = x.cols();
  lo_.assign(d, 0.0);
  width_.assign(d, 1.0);
  neglog_.assign(d, {});

  const double n = static_cast<double>(x.rows());
  for (std::size_t j = 0; j < d; ++j) {
    double mn = x(0, j), mx = x(0, j);
    for (std::size_t i = 1; i < x.rows(); ++i) {
      mn = std::min(mn, x(i, j));
      mx = std::max(mx, x(i, j));
    }
    lo_[j] = mn;
    width_[j] = std::max((mx - mn) / static_cast<double>(cfg_.n_bins), 1e-12);

    std::vector<double> counts(cfg_.n_bins, 0.0);
    for (std::size_t i = 0; i < x.rows(); ++i) {
      auto b = static_cast<std::size_t>((x(i, j) - mn) / width_[j]);
      counts[std::min(b, cfg_.n_bins - 1)] += 1.0;
    }
    auto& nl = neglog_[j];
    nl.resize(cfg_.n_bins);
    for (std::size_t b = 0; b < cfg_.n_bins; ++b)
      nl[b] = -std::log(std::max(counts[b] / n, 0.5 / n));  // floor: half a count
  }
  // Out-of-range values are at most as likely as half a sample.
  empty_penalty_ = -std::log(0.5 / n);
}

std::vector<double> Hbos::score(const Matrix& x) const {
  require(fitted(), "Hbos::score: not fitted");
  require(x.cols() == lo_.size(), "Hbos::score: feature mismatch");
  std::vector<double> out(x.rows(), 0.0);
  runtime::parallel_for(0, x.rows(), runtime::grain_for_cost(x.cols()),
                        [&](std::size_t r_lo, std::size_t r_hi) {
    for (std::size_t i = r_lo; i < r_hi; ++i) {
      auto r = x.row(i);
      for (std::size_t j = 0; j < x.cols(); ++j) {
        const double pos = (r[j] - lo_[j]) / width_[j];
        if (pos < 0.0 || pos >= static_cast<double>(cfg_.n_bins)) {
          out[i] += empty_penalty_;
        } else {
          out[i] += neglog_[j][static_cast<std::size_t>(pos)];
        }
      }
    }
  });
  return out;
}

}  // namespace cnd::ml
