// Continual-learning data preparation (paper §III-A).
//
// From a labeled dataset, produce:
//   - N_c: the clean-normal holdout (10% of normal rows, taken from the
//     start of the stream — the pre-deployment traffic an operator can
//     actually vouch for),
//   - m experiences, each with an *unlabeled* training split (a slice of
//     normal traffic plus the attack families first appearing in that
//     experience) and a labeled test split.
// Attack families are partitioned across experiences (|C|/m per experience)
// so future experiences contain genuinely unseen (zero-day) families — or
// spread across all of them (FamilyPartition::kSpread) for the
// domain-incremental scenarios in src/scenario.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "tensor/rng.hpp"

namespace cnd::data {

struct Experience {
  Matrix x_train;                        ///< unlabeled, contaminated stream.
  Matrix x_test;
  std::vector<int> y_test;               ///< 0 normal / 1 attack.
  std::vector<int> test_class;           ///< attack family id, -1 = normal.
  std::vector<int> attack_classes_here;  ///< family ids introduced here.
};

struct ExperienceSet {
  std::string dataset_name;
  std::vector<std::string> class_names;
  Matrix n_clean;  ///< N_c, already standardized like everything else.
  std::vector<Experience> experiences;

  std::size_t size() const { return experiences.size(); }
};

/// How attack families map onto experiences (docs/SCENARIOS.md).
enum class FamilyPartition {
  /// Paper §III-A: families split across experiences in first-appearance
  /// order, so later experiences contain genuinely unseen (zero-day)
  /// families — class-incremental in Avalanche terms.
  kIncremental,
  /// Every family appears in every experience (each family's rows are cut
  /// into m contiguous slices, like the normal stream). Domain-incremental /
  /// task-free in Avalanche terms: what changes between experiences is the
  /// input distribution, never the label space.
  kSpread,
};

struct PrepConfig {
  std::size_t n_experiences = 5;   ///< m.
  double clean_frac = 0.10;        ///< |N_c| / |N|.
  double train_frac = 0.70;        ///< train/test split within an experience.
  bool standardize = true;         ///< z-score using N_c statistics.
  std::uint64_t seed = 7;
  FamilyPartition family_partition = FamilyPartition::kIncremental;
  /// When > 0, experience e's *training* stream swaps an extra
  /// `contamination_ramp * e / (m-1)` share of its normal rows for attack
  /// rows already present in the same training split — a deployment whose
  /// stream hygiene degrades over time. Test splits, labels, and N_c are
  /// untouched, and 0 (the default) reproduces the paper protocol
  /// byte-for-byte (no extra RNG draws).
  double contamination_ramp = 0.0;
};

/// Implements Algorithm/§III-A. Throws std::invalid_argument when the
/// dataset cannot support the requested split (fewer attack classes than
/// experiences, too little normal data, ...).
ExperienceSet prepare_experiences(const Dataset& ds, const PrepConfig& cfg);

}  // namespace cnd::data
