#include "data/replay_buffer.hpp"

#include <algorithm>

#include "tensor/assert.hpp"

namespace cnd::data {

ReplayBuffer::ReplayBuffer(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  require(capacity > 0, "ReplayBuffer: zero capacity");
}

void ReplayBuffer::add(const Matrix& x) {
  if (x.empty()) return;
  if (!buf_.empty())
    require(x.cols() == buf_.cols(), "ReplayBuffer::add: width mismatch");

  for (std::size_t i = 0; i < x.rows(); ++i) {
    ++seen_;
    if (buf_.rows() < capacity_) {
      Matrix one(1, x.cols());
      one.set_row(0, x.row(i));
      buf_.append_rows(one);
      continue;
    }
    // Reservoir: replace a random slot with probability capacity / seen.
    const auto j = static_cast<std::size_t>(
        rng_.randint(0, static_cast<std::int64_t>(seen_) - 1));
    if (j < capacity_) buf_.set_row(j, x.row(i));
  }
}

Matrix ReplayBuffer::sample(std::size_t n, Rng& rng) const {
  require(!buf_.empty(), "ReplayBuffer::sample: empty buffer");
  auto perm = rng.permutation(buf_.rows());
  perm.resize(std::min(n, buf_.rows()));
  return buf_.take_rows(perm);
}

}  // namespace cnd::data
