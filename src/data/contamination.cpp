#include "data/contamination.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/assert.hpp"

namespace cnd::data {

Matrix contaminate(const Matrix& clean, const Matrix& attacks, double frac,
                   Rng& rng, std::vector<std::size_t>* poisoned_rows) {
  require(frac >= 0.0 && frac < 1.0, "contaminate: frac out of [0,1)");
  require(!attacks.empty(), "contaminate: empty attack pool");
  require(clean.cols() == attacks.cols(), "contaminate: width mismatch");

  Matrix out = clean;
  const auto n_poison = static_cast<std::size_t>(
      std::floor(frac * static_cast<double>(clean.rows())));
  auto victims = rng.permutation(clean.rows());
  victims.resize(n_poison);
  for (std::size_t v : victims) {
    const auto a = static_cast<std::size_t>(
        rng.randint(0, static_cast<std::int64_t>(attacks.rows()) - 1));
    out.set_row(v, attacks.row(a));
  }
  if (poisoned_rows) *poisoned_rows = std::move(victims);
  return out;
}

std::vector<int> flip_labels(const std::vector<int>& y, double frac, Rng& rng) {
  require(frac >= 0.0 && frac <= 1.0, "flip_labels: frac out of [0,1]");
  std::vector<int> out = y;
  const auto n_flip = static_cast<std::size_t>(
      std::floor(frac * static_cast<double>(y.size())));
  auto victims = rng.permutation(y.size());
  victims.resize(n_flip);
  for (std::size_t v : victims) {
    require(out[v] == 0 || out[v] == 1, "flip_labels: labels must be 0/1");
    out[v] = 1 - out[v];
  }
  return out;
}

}  // namespace cnd::data
