#include "data/flow_generator.hpp"

#include <cmath>

#include "tensor/assert.hpp"

namespace cnd::data {

FlowGenerator::FlowGenerator(std::size_t n_features, std::size_t q,
                             double base_mix_scale, Rng& rng)
    : d_(n_features), q_(q), base_mixing_(n_features, q) {
  require(d_ > 0, "FlowGenerator: zero features");
  require(q_ > 0 && q_ <= d_, "FlowGenerator: bad latent rank");
  require(base_mix_scale >= 0.0, "FlowGenerator: negative base_mix_scale");
  for (std::size_t i = 0; i < d_; ++i)
    for (std::size_t j = 0; j < q_; ++j)
      base_mixing_(i, j) = rng.normal(0.0, base_mix_scale);
}

std::size_t FlowGenerator::add_profile(const std::string& name, double center_dist,
                                       double spread, double heavy_df,
                                       double drift_mag, double subspace_shift,
                                       double in_subspace_frac, double cov_drift,
                                       Rng& rng) {
  require(spread > 0.0, "FlowGenerator: spread must be > 0");
  require(subspace_shift >= 0.0, "FlowGenerator: negative subspace_shift");
  require(in_subspace_frac >= 0.0 && in_subspace_frac <= 1.0,
          "FlowGenerator: in_subspace_frac out of [0,1]");

  Profile pr;
  pr.name = name;
  pr.heavy_df = heavy_df;

  // Mean offset: a blend of a direction inside span(B_base) — invisible to
  // base-traffic PCA — and a fully random (mostly orthogonal) direction.
  std::vector<double> u_in(d_, 0.0), u_out(d_);
  {
    std::vector<double> g(q_);
    for (double& v : g) v = rng.normal();
    for (std::size_t i = 0; i < d_; ++i)
      for (std::size_t l = 0; l < q_; ++l) u_in[i] += base_mixing_(i, l) * g[l];
    double n_in = 0.0;
    for (double v : u_in) n_in += v * v;
    n_in = std::sqrt(std::max(n_in, 1e-12));
    for (double& v : u_in) v /= n_in;

    double n_out = 0.0;
    for (double& v : u_out) {
      v = rng.normal();
      n_out += v * v;
    }
    n_out = std::sqrt(std::max(n_out, 1e-12));
    for (double& v : u_out) v /= n_out;
  }
  pr.mu.resize(d_);
  double norm = 0.0;
  for (std::size_t i = 0; i < d_; ++i) {
    pr.mu[i] = in_subspace_frac * u_in[i] + (1.0 - in_subspace_frac) * u_out[i];
    norm += pr.mu[i] * pr.mu[i];
  }
  norm = std::sqrt(std::max(norm, 1e-12));
  for (double& v : pr.mu) v *= center_dist / norm;

  // Per-feature scales vary ±50% around `spread` (flows mix counters and
  // flags with very different variability).
  pr.scale.resize(d_);
  for (double& v : pr.scale) v = spread * rng.uniform(0.5, 1.5);

  // Shared structure plus a controlled per-profile deviation.
  pr.mixing = base_mixing_;
  if (subspace_shift > 0.0)
    for (std::size_t i = 0; i < d_; ++i)
      for (std::size_t j = 0; j < q_; ++j)
        pr.mixing(i, j) += rng.normal(0.0, subspace_shift);

  // Covariance drift: the correlation structure itself rotates across the
  // stream (mixing + phase * mixing_drift at sample time).
  pr.mixing_drift = Matrix(d_, q_);
  if (cov_drift > 0.0)
    for (std::size_t i = 0; i < d_; ++i)
      for (std::size_t j = 0; j < q_; ++j)
        pr.mixing_drift(i, j) = rng.normal(0.0, cov_drift);

  pr.drift.resize(d_);
  double dn = 0.0;
  for (double& v : pr.drift) {
    v = rng.normal();
    dn += v * v;
  }
  dn = std::sqrt(std::max(dn, 1e-12));
  for (double& v : pr.drift) v *= drift_mag / dn;

  profiles_.push_back(std::move(pr));
  return profiles_.size() - 1;
}

Matrix FlowGenerator::sample(std::size_t p, std::size_t n, double phase,
                             Rng& rng) const {
  require(p < profiles_.size(), "FlowGenerator::sample: bad profile index");
  const Profile& pr = profiles_[p];

  Matrix out(n, d_);
  std::vector<double> z(q_);
  for (std::size_t i = 0; i < n; ++i) {
    for (double& v : z) v = rng.normal();
    auto row = out.row(i);
    for (std::size_t j = 0; j < d_; ++j) {
      double corr = 0.0;
      for (std::size_t l = 0; l < q_; ++l)
        corr += (pr.mixing(j, l) + phase * pr.mixing_drift(j, l)) * z[l];
      const double eps =
          pr.heavy_df > 0.0 ? rng.heavy_tail(pr.heavy_df) : rng.normal();
      row[j] = pr.mu[j] + pr.drift[j] * phase + corr + pr.scale[j] * eps;
    }
  }
  return out;
}

}  // namespace cnd::data
