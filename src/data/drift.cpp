#include "data/drift.hpp"

#include <cmath>

#include "tensor/assert.hpp"

namespace cnd::data {

double drift_profile(const DriftSpec& spec, double position) {
  require(position >= 0.0 && position <= 1.0, "drift_profile: position out of [0,1]");
  switch (spec.kind) {
    case DriftKind::kSudden:
      return position >= spec.start_frac ? 1.0 : 0.0;
    case DriftKind::kGradual: {
      if (position <= spec.start_frac) return 0.0;
      const double span = std::max(1.0 - spec.start_frac, 1e-12);
      return (position - spec.start_frac) / span;
    }
    case DriftKind::kRecurring: {
      require(spec.period_frac > 0.0, "drift_profile: period must be > 0");
      const double cycles = position / spec.period_frac;
      return (static_cast<long long>(std::floor(cycles)) % 2 == 0) ? 0.0 : 1.0;
    }
  }
  return 0.0;
}

Matrix inject_drift(const Matrix& x, const DriftSpec& spec) {
  require(x.rows() >= 2, "inject_drift: need at least 2 rows");
  require(spec.magnitude >= 0.0, "inject_drift: negative magnitude");

  // Deterministic unit direction scaled to the magnitude.
  Rng rng(spec.seed);
  std::vector<double> dir(x.cols());
  double norm = 0.0;
  for (double& v : dir) {
    v = rng.normal();
    norm += v * v;
  }
  norm = std::sqrt(std::max(norm, 1e-12));
  for (double& v : dir) v *= spec.magnitude / norm;

  Matrix out = x;
  const double denom = static_cast<double>(x.rows() - 1);
  for (std::size_t i = 0; i < out.rows(); ++i) {
    const double w = drift_profile(spec, static_cast<double>(i) / denom);
    if (w == 0.0) continue;
    auto r = out.row(i);
    for (std::size_t j = 0; j < out.cols(); ++j) r[j] += w * dir[j];
  }
  return out;
}

}  // namespace cnd::data
