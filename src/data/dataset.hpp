// Labeled intrusion dataset container.
#pragma once

#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace cnd::data {

/// A labeled intrusion dataset. Row i of `x` is one network flow;
/// y[i] in {0 = normal, 1 = attack}; attack_class[i] is the attack family id
/// (-1 for normal rows) indexing into `class_names`.
struct Dataset {
  std::string name;
  Matrix x;
  std::vector<int> y;
  std::vector<int> attack_class;
  std::vector<std::string> class_names;

  std::size_t size() const { return x.rows(); }
  std::size_t n_features() const { return x.cols(); }
  std::size_t n_attack_classes() const { return class_names.size(); }

  /// Count of rows with y == 1.
  std::size_t n_attacks() const;
  /// Count of rows with y == 0.
  std::size_t n_normals() const;

  /// Throws std::logic_error if the parallel arrays disagree or labels are
  /// inconsistent (y==0 with attack_class != -1, class id out of range, ...).
  void validate() const;

  /// Subset by row indices (preserves order given).
  Dataset take(const std::vector<std::size_t>& idx) const;
};

}  // namespace cnd::data
