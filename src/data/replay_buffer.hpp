// Reservoir-sampled replay buffer.
//
// Supports the replay-based continual-learning variant of the CFE (the
// storage/accuracy trade-off the paper discusses: its latent-regularization
// loss stores model snapshots instead of data "which can significantly
// reduce storage overhead"; this buffer is the data-storing alternative).
#pragma once

#include <cstdint>

#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace cnd::data {

class ReplayBuffer {
 public:
  /// `capacity` rows are kept; insertion uses reservoir sampling so the
  /// buffer is a uniform sample of everything ever added.
  explicit ReplayBuffer(std::size_t capacity, std::uint64_t seed = 23);

  /// Add all rows of x to the stream (reservoir update).
  void add(const Matrix& x);

  /// Uniform sample of min(n, size()) buffered rows.
  Matrix sample(std::size_t n, Rng& rng) const;

  /// The full buffer contents (row order unspecified).
  const Matrix& data() const { return buf_; }

  std::size_t size() const { return buf_.rows(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t seen() const { return seen_; }
  bool empty() const { return buf_.empty(); }

 private:
  std::size_t capacity_;
  std::size_t seen_ = 0;
  Matrix buf_;
  Rng rng_;
};

}  // namespace cnd::data
