#include "data/csv.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "tensor/assert.hpp"

namespace cnd::data {

void save_csv(const Dataset& ds, const std::string& path) {
  ds.validate();
  std::ofstream f(path);
  require(f.good(), "save_csv: cannot open " + path);
  for (std::size_t j = 0; j < ds.n_features(); ++j) f << "f" << j << ",";
  f << "label,attack_class\n";
  f.precision(10);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    auto r = ds.x.row(i);
    for (double v : r) f << v << ",";
    f << ds.y[i] << "," << ds.attack_class[i] << "\n";
  }
  require(f.good(), "save_csv: write failed for " + path);
}

Dataset load_csv(const std::string& path, const std::string& name) {
  std::ifstream f(path);
  require(f.good(), "load_csv: cannot open " + path);

  std::string line;
  require(static_cast<bool>(std::getline(f, line)), "load_csv: empty file");
  const auto n_cols = static_cast<std::size_t>(
      std::count(line.begin(), line.end(), ',') + 1);
  require(n_cols >= 3, "load_csv: need at least one feature + label + class");
  const std::size_t d = n_cols - 2;

  Dataset ds;
  ds.name = name;
  int max_class = -1;
  std::vector<double> row(n_cols);
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string cell;
    for (std::size_t j = 0; j < n_cols; ++j) {
      require(static_cast<bool>(std::getline(ss, cell, ',')),
              "load_csv: short row in " + path);
      row[j] = std::stod(cell);
    }
    Matrix one(1, d);
    for (std::size_t j = 0; j < d; ++j) one(0, j) = row[j];
    ds.x.append_rows(one);
    ds.y.push_back(static_cast<int>(row[d]));
    ds.attack_class.push_back(static_cast<int>(row[d + 1]));
    max_class = std::max(max_class, ds.attack_class.back());
  }
  for (int c = 0; c <= max_class; ++c)
    ds.class_names.push_back("class_" + std::to_string(c));
  ds.validate();
  return ds;
}

void save_table_csv(const std::string& path,
                    const std::vector<std::string>& header,
                    const std::vector<std::vector<double>>& rows,
                    const std::vector<std::string>& row_labels) {
  require(row_labels.empty() || row_labels.size() == rows.size(),
          "save_table_csv: row label count mismatch");
  std::ofstream f(path);
  require(f.good(), "save_table_csv: cannot open " + path);
  for (std::size_t j = 0; j < header.size(); ++j)
    f << header[j] << (j + 1 < header.size() ? "," : "\n");
  f.precision(8);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (!row_labels.empty()) f << row_labels[i] << ",";
    for (std::size_t j = 0; j < rows[i].size(); ++j)
      f << rows[i][j] << (j + 1 < rows[i].size() ? "," : "");
    f << "\n";
  }
}

}  // namespace cnd::data
