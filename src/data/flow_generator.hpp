// Synthetic network-flow feature generator.
//
// Substitute for the real intrusion captures (X-IIoTID, WUSTL-IIoT,
// CICIDS2017, UNSW-NB15), which are licence/size gated. Each traffic
// profile — a normal mode or an attack family — is a correlated,
// heavy-tailed component distribution in feature space:
//
//   x = mu + drift * phase + B_p z + s .* eps,
//   z ~ N(0, I_q),   eps heavy-tailed per feature,
//   B_p = B_base + subspace_shift * Delta_p
//
// All profiles share a base mixing matrix B_base (real flow features share
// most of their covariance structure: bytes track packets, rates track
// durations), and each profile perturbs it by a controlled amount. Attack
// "difficulty" therefore has two knobs that mirror real families:
// `center_dist` (how far the family's mean sits from normal traffic) and
// `subspace_shift` (how much its correlation structure deviates — what a
// PCA novelty detector keys on). Profiles drift linearly with the stream
// phase to model the evolving environments the paper targets.
#pragma once

#include <string>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace cnd::data {

/// One traffic profile (a normal mode or an attack family).
struct Profile {
  std::string name;
  std::vector<double> mu;      ///< component mean, length d.
  std::vector<double> scale;   ///< per-feature noise scale, length d.
  Matrix mixing;               ///< d x q latent mixing matrix.
  Matrix mixing_drift;         ///< d x q, applied as mixing + phase * this.
  double heavy_df = 0.0;       ///< 0 = Gaussian noise; >0 = Student-t df.
  std::vector<double> drift;   ///< added as drift * phase, length d.
};

class FlowGenerator {
 public:
  /// `q` is the latent rank shared by all profiles; `base_mix_scale` the
  /// entry scale of the shared mixing matrix.
  FlowGenerator(std::size_t n_features, std::size_t q, double base_mix_scale,
                Rng& rng);

  std::size_t n_features() const { return d_; }
  std::size_t latent_rank() const { return q_; }
  std::size_t n_profiles() const { return profiles_.size(); }
  const Profile& profile(std::size_t i) const { return profiles_[i]; }

  /// Procedurally build a profile:
  ///  - `center_dist`: Euclidean distance of mu from the origin region.
  ///  - `spread`: typical per-feature noise scale.
  ///  - `heavy_df`: 0 for Gaussian tails, else Student-t df.
  ///  - `drift_mag`: magnitude of the per-phase linear drift.
  ///  - `subspace_shift`: entry scale of this profile's perturbation of the
  ///    shared mixing matrix (0 = identical covariance structure to base).
  ///  - `in_subspace_frac`: fraction of the mean offset placed inside the
  ///    span of the shared mixing matrix. Offsets inside that span are
  ///    reconstructed perfectly by a PCA fit on base traffic — such
  ///    families are invisible to raw-feature FRE (hard), while offsets
  ///    orthogonal to it are easy.
  ///  - `cov_drift`: entry scale of a random matrix added to the mixing as
  ///    `phase * cov_drift`-scaled rotation — the correlation structure of
  ///    the traffic itself evolves over the stream, not just its mean. This
  ///    is what forces feature extractors to keep adapting (and lets
  ///    unregularized ones forget).
  /// Returns the profile index.
  std::size_t add_profile(const std::string& name, double center_dist,
                          double spread, double heavy_df, double drift_mag,
                          double subspace_shift, double in_subspace_frac,
                          double cov_drift, Rng& rng);

  /// Sample `n` rows from profile `p` at stream phase `phase` in [0, 1].
  Matrix sample(std::size_t p, std::size_t n, double phase, Rng& rng) const;

 private:
  std::size_t d_;
  std::size_t q_;
  Matrix base_mixing_;  ///< d x q, shared by all profiles.
  std::vector<Profile> profiles_;
};

}  // namespace cnd::data
