// Minimal CSV I/O for datasets and result tables.
//
// Format for datasets: header row `f0,f1,...,label,attack_class`, label in
// {0,1}, attack_class an integer (-1 for normal). Used by the
// custom-dataset example and for exporting bench results.
#pragma once

#include <string>

#include "data/dataset.hpp"

namespace cnd::data {

/// Write a dataset (features + label + attack_class columns).
void save_csv(const Dataset& ds, const std::string& path);

/// Load a dataset written by save_csv (or hand-authored in that format).
/// Class names are synthesized as "class_<id>".
Dataset load_csv(const std::string& path, const std::string& name = "csv");

/// Write an arbitrary numeric table with a header, for bench outputs.
void save_table_csv(const std::string& path,
                    const std::vector<std::string>& header,
                    const std::vector<std::vector<double>>& rows,
                    const std::vector<std::string>& row_labels = {});

}  // namespace cnd::data
