#include "data/synth.hpp"

#include <algorithm>
#include <cmath>

#include "data/flow_generator.hpp"
#include "tensor/assert.hpp"

namespace cnd::data {

Dataset make_synthetic(const SynthSpec& spec) {
  require(spec.n_features > 0, "make_synthetic: zero features");
  require(spec.n_normal > 0 && spec.n_attack > 0, "make_synthetic: empty classes");
  require(spec.n_attack_classes > 0, "make_synthetic: zero attack classes");
  require(spec.n_attack >= spec.n_attack_classes,
          "make_synthetic: fewer attacks than classes");

  Rng rng(spec.seed);
  FlowGenerator gen(spec.n_features, spec.latent_rank, spec.base_mix_scale, rng);

  // Normal traffic: several modes around the origin sharing most of their
  // covariance structure, all drifting across the stream.
  std::vector<std::size_t> normal_profiles;
  for (std::size_t m = 0; m < spec.n_normal_modes; ++m) {
    normal_profiles.push_back(gen.add_profile(
        "normal_mode_" + std::to_string(m),
        /*center_dist=*/rng.uniform(0.0, 1.5 * spec.normal_spread),
        /*spread=*/spec.normal_spread, spec.normal_heavy_df,
        /*drift_mag=*/spec.drift_mag, spec.normal_subspace_shift,
        spec.normal_in_sub, spec.cov_drift, rng));
  }

  // Attack families at controlled difficulty. Two decoupled axes mirror
  // real traffic:
  //  - `center_dist` (how far the family sits in full feature space) is
  //    drawn randomly per family — floods and scans are far, stealthier
  //    misuse closer — and is what clustering/distance methods perceive;
  //  - `in_subspace_frac` is the PCA-difficulty axis: family index 0 (the
  //    most voluminous family under the Zipf size law below) hides almost
  //    entirely inside the normal principal subspace, the rarest family
  //    sticks out of it. Common attacks mimicking benign feature structure
  //    is exactly the regime the paper motivates (Fig. 1).
  // Difficulty rank is a random permutation of the families, so experiences
  // (which receive families in appearance order) each mix hard and easy
  // attacks rather than getting monotonically easier over the stream.
  const std::vector<std::size_t> hard_rank = rng.permutation(spec.n_attack_classes);

  std::vector<std::size_t> attack_profiles;
  std::vector<std::string> class_names;
  for (std::size_t c = 0; c < spec.n_attack_classes; ++c) {
    const double t = spec.n_attack_classes == 1
                         ? 0.5
                         : static_cast<double>(hard_rank[c]) /
                               static_cast<double>(spec.n_attack_classes - 1);
    const double dist = rng.uniform(spec.attack_dist_min, spec.attack_dist_max);
    const double shift =
        spec.attack_shift_min + t * (spec.attack_shift_max - spec.attack_shift_min);
    const double in_sub = spec.attack_in_sub_hard +
                          t * (spec.attack_in_sub_easy - spec.attack_in_sub_hard);
    // Hard families also match normal traffic's noise signature: same
    // per-feature spread and Gaussian tails. Easy families are burstier
    // (heavy-tailed, wider spread) — residual noise alone betrays them.
    const double spread =
        spec.normal_spread + t * (spec.attack_spread - spec.normal_spread);
    const double df = t < 0.5 ? spec.normal_heavy_df : spec.heavy_df;

    const std::string nm = c < spec.family_names.size()
                               ? spec.family_names[c]
                               : "attack_" + std::to_string(c);
    class_names.push_back(nm);
    attack_profiles.push_back(gen.add_profile(
        nm, dist, spread, df, /*drift_mag=*/spec.drift_mag * 0.3, shift, in_sub,
        spec.cov_drift * 0.3, rng));
  }

  // Zipf-like class sizes keyed to the difficulty rank: the hardest
  // families are also the most voluminous (common attacks mimic benign
  // traffic; exotic ones are rare), which is the regime Fig. 1 motivates.
  std::vector<double> w(spec.n_attack_classes);
  double wsum = 0.0;
  for (std::size_t c = 0; c < spec.n_attack_classes; ++c) {
    w[c] = 1.0 / std::pow(static_cast<double>(hard_rank[c] + 1), spec.imbalance);
    wsum += w[c];
  }
  std::vector<std::size_t> counts(spec.n_attack_classes);
  std::size_t assigned = 0;
  for (std::size_t c = 0; c < spec.n_attack_classes; ++c) {
    counts[c] = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(w[c] / wsum *
                                               static_cast<double>(spec.n_attack))));
    assigned += counts[c];
  }
  // Distribute rounding remainder to the largest class.
  std::size_t largest = 0;
  for (std::size_t c = 1; c < spec.n_attack_classes; ++c)
    if (w[c] > w[largest]) largest = c;
  while (assigned < spec.n_attack) {
    ++counts[largest];
    ++assigned;
  }
  while (assigned > spec.n_attack) {
    for (std::size_t c = 0; c < spec.n_attack_classes && assigned > spec.n_attack; ++c) {
      if (counts[c] > 1) {
        --counts[c];
        --assigned;
      }
    }
  }

  Dataset ds;
  ds.name = spec.name;
  ds.class_names = class_names;

  // Normal rows in time order; phase ramps 0 -> 1 across the stream.
  for (std::size_t i = 0; i < spec.n_normal; ++i) {
    const double phase =
        static_cast<double>(i) / static_cast<double>(spec.n_normal);
    const std::size_t mode = normal_profiles[rng.categorical(
        std::vector<double>(spec.n_normal_modes, 1.0))];
    ds.x.append_rows(gen.sample(mode, 1, phase, rng));
    ds.y.push_back(0);
    ds.attack_class.push_back(-1);
  }

  // Attack rows grouped by family; each family is active around its
  // first-appearance window, phase = c / |C| with small jitter.
  for (std::size_t c = 0; c < spec.n_attack_classes; ++c) {
    const double base_phase =
        static_cast<double>(c) / static_cast<double>(spec.n_attack_classes);
    Matrix rows = gen.sample(attack_profiles[c], counts[c],
                             base_phase + rng.uniform(0.0, 0.05), rng);
    ds.x.append_rows(rows);
    for (std::size_t i = 0; i < counts[c]; ++i) {
      ds.y.push_back(1);
      ds.attack_class.push_back(static_cast<int>(c));
    }
  }

  ds.validate();
  return ds;
}

namespace {

std::size_t scaled(double base, double scale) {
  return std::max<std::size_t>(64, static_cast<std::size_t>(base * scale));
}

}  // namespace

// Table I ratios: X-IIoTID 820,502 rows (51.4% normal), 18 attack types.
Dataset make_x_iiotid(std::uint64_t seed, double size_scale) {
  SynthSpec s;
  s.name = "X-IIoTID";
  s.n_features = 48;
  s.n_normal = scaled(8400, size_scale);
  s.n_attack = scaled(7960, size_scale);
  s.n_attack_classes = 18;
  s.n_normal_modes = 5;
  s.attack_dist_min = 9.0;
  s.attack_dist_max = 28.0;
  s.drift_mag = 3.5;       // IIoT process re-configuration drift
  s.heavy_df = 4.0;
  s.imbalance = 0.6;
  s.seed = seed ^ 0x1107ULL;
  s.family_names = {"Generic_scan", "Fuzzing", "Discovering_resources",
                    "BruteForce", "Dictionary", "insider_malicious",
                    "Reverse_shell", "MITM", "MQTT_cloud_broker_subscription",
                    "Modbus_register_reading", "TCP_Relay", "C&C",
                    "Exfiltration", "Fake_notification", "False_data_injection",
                    "RDOS", "Crypto-ransomware", "Ransom_DoS"};
  return make_synthetic(s);
}

// WUSTL-IIoT: 1,194,464 rows, only 7.3% attack, 4 attack types.
Dataset make_wustl_iiot(std::uint64_t seed, double size_scale) {
  SynthSpec s;
  s.name = "WUSTL-IIoT";
  s.n_features = 32;
  s.n_normal = scaled(11100, size_scale);
  s.n_attack = scaled(870, size_scale);
  s.n_attack_classes = 4;
  s.n_normal_modes = 3;
  s.attack_dist_min = 11.0;
  s.attack_dist_max = 30.0;
  s.drift_mag = 2.5;
  s.heavy_df = 5.0;
  s.imbalance = 0.5;
  s.seed = seed ^ 0x3057ULL;
  s.family_names = {"Command_injection", "DoS", "Reconnaissance", "Backdoor"};
  return make_synthetic(s);
}

// CICIDS2017: 2,830,743 rows (80.3% normal), 15 attack types.
Dataset make_cicids2017(std::uint64_t seed, double size_scale) {
  SynthSpec s;
  s.name = "CICIDS2017";
  s.n_features = 64;
  s.n_normal = scaled(11350, size_scale);
  s.n_attack = scaled(2790, size_scale);
  s.n_attack_classes = 15;
  s.n_normal_modes = 5;
  s.attack_dist_min = 8.0;   // includes near-normal web attacks
  s.attack_dist_max = 26.0;
  s.drift_mag = 3.0;
  s.heavy_df = 4.5;
  s.imbalance = 0.8;         // CICIDS is the most imbalanced across families
  s.seed = seed ^ 0xC1C1ULL;
  s.family_names = {"DoS_Hulk", "PortScan", "DDoS", "DoS_GoldenEye", "FTP-Patator",
                    "SSH-Patator", "DoS_slowloris", "DoS_Slowhttptest", "Bot",
                    "Web_BruteForce", "Web_XSS", "Infiltration", "Web_SqlInjection",
                    "Heartbleed", "PortScan_stealth"};
  return make_synthetic(s);
}

// UNSW-NB15: 257,673 rows (63.9% normal), 10 attack types.
Dataset make_unsw_nb15(std::uint64_t seed, double size_scale) {
  SynthSpec s;
  s.name = "UNSW-NB15";
  s.n_features = 40;
  s.n_normal = scaled(6400, size_scale);
  s.n_attack = scaled(3600, size_scale);
  s.n_attack_classes = 10;
  s.n_normal_modes = 4;
  s.attack_dist_min = 7.0;   // UNSW has notoriously hard "analysis/backdoor"
  s.attack_dist_max = 24.0;
  s.attack_in_sub_easy = 0.50;  // even UNSW's "easy" families mimic benign flows
  s.drift_mag = 2.2;
  s.heavy_df = 3.5;
  s.imbalance = 0.8;
  s.seed = seed ^ 0x0B15ULL;
  s.family_names = {"Generic", "Exploits", "Fuzzers", "DoS", "Reconnaissance",
                    "Analysis", "Backdoor", "Shellcode", "Worms", "Exploits_SMB"};
  return make_synthetic(s);
}

std::vector<Dataset> make_all_paper_datasets(std::uint64_t seed, double size_scale) {
  std::vector<Dataset> out;
  out.push_back(make_x_iiotid(seed, size_scale));
  out.push_back(make_wustl_iiot(seed, size_scale));
  out.push_back(make_cicids2017(seed, size_scale));
  out.push_back(make_unsw_nb15(seed, size_scale));
  return out;
}

}  // namespace cnd::data
