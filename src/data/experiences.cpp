#include "data/experiences.hpp"

#include <algorithm>
#include <cmath>

#include "ml/scaler.hpp"
#include "tensor/assert.hpp"

namespace cnd::data {

ExperienceSet prepare_experiences(const Dataset& ds, const PrepConfig& cfg) {
  ds.validate();
  const std::size_t m = cfg.n_experiences;
  require(m >= 2, "prepare_experiences: need at least 2 experiences");
  require(cfg.family_partition == FamilyPartition::kSpread ||
              ds.n_attack_classes() >= m,
          "prepare_experiences: fewer attack classes than experiences");
  require(cfg.clean_frac > 0.0 && cfg.clean_frac < 1.0,
          "prepare_experiences: clean_frac out of (0,1)");
  require(cfg.train_frac > 0.0 && cfg.train_frac < 1.0,
          "prepare_experiences: train_frac out of (0,1)");
  require(cfg.contamination_ramp >= 0.0 && cfg.contamination_ramp < 1.0,
          "prepare_experiences: contamination_ramp out of [0,1)");

  Rng rng(cfg.seed);
  // Contamination swaps draw from their own salted stream so that enabling
  // the ramp never perturbs the shuffle permutations: train/test splits stay
  // byte-identical to the ramp-free protocol.
  Rng contam_rng = Rng(cfg.seed).split(0xC0'47A3ULL);

  // Collect row indices: normal rows in stream order; attack rows per family.
  std::vector<std::size_t> normal_idx;
  std::vector<std::vector<std::size_t>> family_idx(ds.n_attack_classes());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (ds.y[i] == 0)
      normal_idx.push_back(i);
    else
      family_idx[static_cast<std::size_t>(ds.attack_class[i])].push_back(i);
  }
  const std::size_t n_clean =
      static_cast<std::size_t>(std::floor(cfg.clean_frac *
                                          static_cast<double>(normal_idx.size())));
  require(n_clean >= 16, "prepare_experiences: too little normal data for N_c");
  require(normal_idx.size() - n_clean >= m * 8,
          "prepare_experiences: too little normal data for the experiences");

  // N_c = first clean_frac of the normal stream (pre-deployment traffic).
  std::vector<std::size_t> clean_idx(normal_idx.begin(),
                                     normal_idx.begin() + static_cast<std::ptrdiff_t>(n_clean));
  std::vector<std::size_t> stream_normal(normal_idx.begin() + static_cast<std::ptrdiff_t>(n_clean),
                                         normal_idx.end());

  ExperienceSet out;
  out.dataset_name = ds.name;
  out.class_names = ds.class_names;

  // Standardization statistics come from N_c only: it is the single piece of
  // data the operator has verified, and fitting on later traffic would leak.
  ml::StandardScaler scaler;
  Matrix clean_raw = ds.x.take_rows(clean_idx);
  if (cfg.standardize) {
    scaler.fit(clean_raw);
    out.n_clean = scaler.transform(clean_raw);
  } else {
    out.n_clean = clean_raw;
  }
  auto maybe_scale = [&](Matrix v) {
    return cfg.standardize ? scaler.transform(v) : std::move(v);
  };

  // Partition attack families across experiences. kIncremental: family c is
  // wholly owned by experience c*m/|C| (first-appearance order), so future
  // experiences contain zero-day families. kSpread: each family's rows are
  // cut into m contiguous slices, one per experience, so every experience
  // carries every large-enough family (families with fewer than m rows land
  // wholly in the last experience).
  const std::size_t n_classes = ds.n_attack_classes();
  std::vector<std::vector<int>> classes_per_exp(m);
  std::vector<std::vector<std::size_t>> attack_rows_per_exp(m);
  std::vector<std::vector<int>> attack_cls_per_exp(m);
  if (cfg.family_partition == FamilyPartition::kIncremental) {
    for (std::size_t c = 0; c < n_classes; ++c)
      classes_per_exp[std::min(c * m / n_classes, m - 1)].push_back(static_cast<int>(c));
    for (std::size_t e = 0; e < m; ++e)
      for (int c : classes_per_exp[e])
        for (std::size_t i : family_idx[static_cast<std::size_t>(c)]) {
          attack_rows_per_exp[e].push_back(i);
          attack_cls_per_exp[e].push_back(c);
        }
  } else {
    for (std::size_t c = 0; c < n_classes; ++c) {
      const auto& fam = family_idx[c];
      const std::size_t per = fam.size() / m;
      for (std::size_t e = 0; e < m; ++e) {
        const std::size_t lo = e * per;
        const std::size_t hi = (e + 1 == m) ? fam.size() : (e + 1) * per;
        if (lo >= hi) continue;
        classes_per_exp[e].push_back(static_cast<int>(c));
        for (std::size_t i = lo; i < hi; ++i) {
          attack_rows_per_exp[e].push_back(fam[i]);
          attack_cls_per_exp[e].push_back(static_cast<int>(c));
        }
      }
    }
  }

  // Normal stream is cut into m contiguous slices (time order preserved so
  // drift lands in the right experience).
  const std::size_t per_exp = stream_normal.size() / m;

  for (std::size_t e = 0; e < m; ++e) {
    Experience exp;
    exp.attack_classes_here = classes_per_exp[e];

    std::vector<std::size_t> rows;
    std::vector<int> row_class;  // -1 normal
    const std::size_t lo = e * per_exp;
    const std::size_t hi = (e + 1 == m) ? stream_normal.size() : (e + 1) * per_exp;
    for (std::size_t i = lo; i < hi; ++i) {
      rows.push_back(stream_normal[i]);
      row_class.push_back(-1);
    }
    for (std::size_t k = 0; k < attack_rows_per_exp[e].size(); ++k) {
      rows.push_back(attack_rows_per_exp[e][k]);
      row_class.push_back(attack_cls_per_exp[e][k]);
    }
    require(rows.size() >= 8, "prepare_experiences: experience too small");

    // Shuffle within the experience, then split train/test.
    auto perm = rng.permutation(rows.size());
    const auto n_train =
        static_cast<std::size_t>(std::floor(cfg.train_frac *
                                            static_cast<double>(rows.size())));
    CND_ASSERT(n_train >= 1 && n_train < rows.size());

    std::vector<std::size_t> train_rows, test_rows;
    std::vector<int> train_cls, test_cls;
    for (std::size_t i = 0; i < perm.size(); ++i) {
      const std::size_t r = rows[perm[i]];
      if (i < n_train) {
        train_rows.push_back(r);
        train_cls.push_back(row_class[perm[i]]);
      } else {
        test_rows.push_back(r);
        test_cls.push_back(row_class[perm[i]]);
      }
    }

    // Contamination ramp: swap a growing share of the normal training rows
    // for duplicates of attack rows already in this training split. Drawing
    // only from the train split keeps train and test disjoint.
    if (cfg.contamination_ramp > 0.0) {
      const double frac = cfg.contamination_ramp * static_cast<double>(e) /
                          static_cast<double>(m - 1);
      std::vector<std::size_t> normal_pos, attack_pos;
      for (std::size_t i = 0; i < train_rows.size(); ++i)
        (train_cls[i] < 0 ? normal_pos : attack_pos).push_back(i);
      const auto n_swap = static_cast<std::size_t>(
          std::floor(frac * static_cast<double>(normal_pos.size())));
      if (n_swap > 0 && !attack_pos.empty()) {
        auto pick = contam_rng.permutation(normal_pos.size());
        for (std::size_t k = 0; k < n_swap; ++k) {
          const auto a = static_cast<std::size_t>(contam_rng.randint(
              0, static_cast<std::int64_t>(attack_pos.size()) - 1));
          train_rows[normal_pos[pick[k]]] = train_rows[attack_pos[a]];
        }
      }
    }

    exp.x_train = maybe_scale(ds.x.take_rows(train_rows));
    exp.x_test = maybe_scale(ds.x.take_rows(test_rows));
    exp.test_class = std::move(test_cls);
    exp.y_test.reserve(exp.test_class.size());
    for (int c : exp.test_class) exp.y_test.push_back(c >= 0 ? 1 : 0);

    out.experiences.push_back(std::move(exp));
  }
  return out;
}

}  // namespace cnd::data
