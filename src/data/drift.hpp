// Drift injection utilities for robustness experiments.
//
// The synthetic generators already drift smoothly; these helpers inject
// *additional*, controlled drift patterns into any feature matrix so tests
// and benches can probe a detector's response to the standard drift
// taxonomy: sudden (step change), gradual (ramp), and recurring (periodic
// alternation between two regimes).
#pragma once

#include <cstdint>

#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace cnd::data {

enum class DriftKind { kSudden, kGradual, kRecurring };

struct DriftSpec {
  DriftKind kind = DriftKind::kGradual;
  double magnitude = 2.0;   ///< Euclidean length of the drift direction.
  double start_frac = 0.5;  ///< stream position where the drift begins.
  double period_frac = 0.25;  ///< recurring: fraction of stream per cycle.
  std::uint64_t seed = 17;  ///< direction seed (deterministic).
};

/// Apply the drift to rows of x in stream order (row i is at stream position
/// i / (rows - 1)). Returns the drifted copy.
Matrix inject_drift(const Matrix& x, const DriftSpec& spec);

/// Per-row drift multiplier in [0, 1] for the given spec (exposed for tests
/// and for plotting drift profiles).
double drift_profile(const DriftSpec& spec, double position);

}  // namespace cnd::data
