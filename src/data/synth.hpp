// Synthetic stand-ins for the paper's four intrusion datasets.
//
// Each constructor mirrors the real dataset's shape (feature count,
// normal/attack ratio, number of attack families, class imbalance) at a
// laptop-friendly scale, per the substitution policy in DESIGN.md §1.
// Rows are in stream (time) order: normal traffic drifts linearly over the
// stream, which is what makes the continual-learning protocol meaningful.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace cnd::data {

/// Knobs shared by all four dataset constructors.
struct SynthSpec {
  std::string name;
  std::size_t n_features = 40;
  std::size_t n_normal = 10000;
  std::size_t n_attack = 5000;
  std::size_t n_attack_classes = 10;
  std::size_t n_normal_modes = 4;   ///< normal traffic is multi-modal.
  std::size_t latent_rank = 4;      ///< shared correlation rank q.
  double base_mix_scale = 1.2;      ///< shared mixing entry scale.
  double normal_spread = 1.0;       ///< per-feature noise scale of normal.
  double normal_subspace_shift = 0.15;  ///< how much normal modes differ.
  double attack_dist_min = 2.5;     ///< nearest attack family mean distance.
  double attack_dist_max = 28.0;    ///< farthest attack family mean distance.
  double attack_shift_min = 0.10;   ///< covariance deviation of hard families.
  double attack_shift_max = 0.80;   ///< covariance deviation of easy families.
  double attack_in_sub_hard = 0.95; ///< hard families hide in the PCA subspace.
  double attack_in_sub_easy = 0.35; ///< easy families stick out of it (partly).
  double normal_in_sub = 0.80;      ///< normal modes mostly share the subspace.
  double attack_spread = 1.2;
  double drift_mag = 3.0;           ///< normal-mode mean drift across the stream.
  double cov_drift = 0.45;          ///< covariance rotation across the stream.
  double heavy_df = 5.0;            ///< Student-t df of easy attack tails.
  double normal_heavy_df = 8.0;     ///< mild bursts in benign traffic too.
  double imbalance = 0.8;           ///< Zipf exponent for class sizes.
  std::uint64_t seed = 42;
  /// Attack family names in first-appearance order; families beyond the
  /// list fall back to "attack_<i>". The four paper-dataset constructors
  /// fill these with the real datasets' family names.
  std::vector<std::string> family_names;
};

/// Build a dataset from a spec. Normal rows appear in time order with
/// phase in [0, 1]; attack rows are interleaved at the position of their
/// family (families are ordered by first appearance).
Dataset make_synthetic(const SynthSpec& spec);

// The four paper datasets (Table I), scaled to ~1.5-2% of the original row
// counts with ratios preserved. `size_scale` rescales further if needed.
Dataset make_x_iiotid(std::uint64_t seed = 42, double size_scale = 1.0);
Dataset make_wustl_iiot(std::uint64_t seed = 42, double size_scale = 1.0);
Dataset make_cicids2017(std::uint64_t seed = 42, double size_scale = 1.0);
Dataset make_unsw_nb15(std::uint64_t seed = 42, double size_scale = 1.0);

/// All four, in the order the paper's figures list them.
std::vector<Dataset> make_all_paper_datasets(std::uint64_t seed = 42,
                                             double size_scale = 1.0);

}  // namespace cnd::data
