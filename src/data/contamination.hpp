// Contamination and label-noise injection for failure-mode experiments.
//
// The paper's protocol assumes N_c is perfectly clean. Real operators
// vouching for "normal" windows are sometimes wrong; these helpers
// deliberately poison a clean matrix with attack rows (contaminate) or flip
// labels (label_noise) so tests and benches can measure how gracefully each
// method degrades.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace cnd::data {

/// Replace a `frac` fraction of rows in `clean` with rows drawn uniformly
/// from `attacks`. Returns the contaminated copy; `poisoned_rows` (optional)
/// receives the replaced indices.
Matrix contaminate(const Matrix& clean, const Matrix& attacks, double frac,
                   Rng& rng, std::vector<std::size_t>* poisoned_rows = nullptr);

/// Flip a `frac` fraction of binary labels in place-on-a-copy.
std::vector<int> flip_labels(const std::vector<int>& y, double frac, Rng& rng);

}  // namespace cnd::data
