#include "data/dataset.hpp"

#include "tensor/assert.hpp"

namespace cnd::data {

std::size_t Dataset::n_attacks() const {
  std::size_t n = 0;
  for (int v : y) n += (v == 1);
  return n;
}

std::size_t Dataset::n_normals() const { return y.size() - n_attacks(); }

void Dataset::validate() const {
  CND_ASSERT(y.size() == x.rows());
  CND_ASSERT(attack_class.size() == x.rows());
  for (std::size_t i = 0; i < y.size(); ++i) {
    CND_ASSERT(y[i] == 0 || y[i] == 1);
    if (y[i] == 0) {
      CND_ASSERT(attack_class[i] == -1);
    } else {
      CND_ASSERT(attack_class[i] >= 0);
      CND_ASSERT(static_cast<std::size_t>(attack_class[i]) < class_names.size());
    }
  }
}

Dataset Dataset::take(const std::vector<std::size_t>& idx) const {
  Dataset out;
  out.name = name;
  out.class_names = class_names;
  out.x = x.take_rows(idx);
  out.y.reserve(idx.size());
  out.attack_class.reserve(idx.size());
  for (std::size_t i : idx) {
    require(i < y.size(), "Dataset::take: index out of range");
    out.y.push_back(y[i]);
    out.attack_class.push_back(attack_class[i]);
  }
  return out;
}

}  // namespace cnd::data
