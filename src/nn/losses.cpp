#include "nn/losses.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/assert.hpp"
#include "tensor/check.hpp"

namespace cnd::nn {

LossGrad mse_loss(const Matrix& pred, const Matrix& target) {
  require(pred.same_shape(target), "mse_loss: shape mismatch");
  require(pred.size() > 0, "mse_loss: empty input");
  LossGrad out;
  out.grad = Matrix(pred.rows(), pred.cols());
  const double n = static_cast<double>(pred.size());
  double loss = 0.0;
  for (std::size_t i = 0; i < pred.rows(); ++i) {
    auto p = pred.row(i);
    auto t = target.row(i);
    auto g = out.grad.row(i);
    for (std::size_t j = 0; j < pred.cols(); ++j) {
      const double d = p[j] - t[j];
      loss += d * d;
      g[j] = 2.0 * d / n;
    }
  }
  out.loss = loss / n;
  CND_DCHECK_FINITE(out.loss, "mse_loss: loss");
  return out;
}

LossGrad triplet_margin_loss(const Matrix& emb, const std::vector<int>& labels,
                             double margin, Rng& rng, std::size_t n_triplets) {
  require(labels.size() == emb.rows(), "triplet_margin_loss: label count mismatch");
  require(margin > 0.0, "triplet_margin_loss: margin must be > 0");

  LossGrad out;
  out.grad = Matrix(emb.rows(), emb.cols());

  // Partition indices by pseudo-class.
  std::vector<std::size_t> cls0, cls1;
  for (std::size_t i = 0; i < labels.size(); ++i)
    (labels[i] == 0 ? cls0 : cls1).push_back(i);
  if (cls0.size() < 2 && cls1.size() < 2) return out;  // No valid anchors.
  if (cls0.empty() || cls1.empty()) return out;        // No negatives.

  const double eps = 1e-12;
  std::size_t active = 0;
  std::size_t total = 0;
  auto pick = [&](const std::vector<std::size_t>& pool) {
    return pool[static_cast<std::size_t>(
        rng.randint(0, static_cast<std::int64_t>(pool.size()) - 1))];
  };

  std::vector<std::pair<std::size_t, std::size_t>> triplet_buf;  // (a,p) pairs + n
  for (std::size_t t = 0; t < n_triplets; ++t) {
    // Alternate anchor class when both classes can anchor.
    const bool use0 = (cls0.size() >= 2 && cls1.size() >= 2) ? (t % 2 == 0)
                                                              : (cls0.size() >= 2);
    const auto& pos_pool = use0 ? cls0 : cls1;
    const auto& neg_pool = use0 ? cls1 : cls0;
    if (pos_pool.size() < 2) continue;

    const std::size_t a = pick(pos_pool);
    std::size_t p = pick(pos_pool);
    for (int tries = 0; p == a && tries < 8; ++tries) p = pick(pos_pool);
    if (p == a) continue;
    const std::size_t n = pick(neg_pool);
    ++total;

    const double dap = std::sqrt(sq_dist(emb.row(a), emb.row(p))) + eps;
    const double dan = std::sqrt(sq_dist(emb.row(a), emb.row(n))) + eps;
    const double l = dap - dan + margin;
    if (l <= 0.0) continue;
    ++active;
    out.loss += l;

    // d(dap)/da = (a - p)/dap etc.
    auto ea = emb.row(a);
    auto ep = emb.row(p);
    auto en = emb.row(n);
    auto ga = out.grad.row(a);
    auto gp = out.grad.row(p);
    auto gn = out.grad.row(n);
    for (std::size_t j = 0; j < emb.cols(); ++j) {
      const double uap = (ea[j] - ep[j]) / dap;
      const double uan = (ea[j] - en[j]) / dan;
      ga[j] += uap - uan;
      gp[j] += -uap;
      gn[j] += uan;
    }
  }

  if (total == 0) return out;
  const double scale = 1.0 / static_cast<double>(total);
  out.loss *= scale;
  out.grad *= scale;
  (void)active;
  CND_DCHECK_FINITE(out.loss, "triplet_margin_loss: loss");
  CND_DCHECK_ALL_FINITE(out.grad, "triplet_margin_loss: non-finite gradient");
  return out;
}

LossGrad softmax_cross_entropy(const Matrix& logits,
                               const std::vector<std::size_t>& labels) {
  require(labels.size() == logits.rows(), "softmax_ce: label count mismatch");
  require(logits.cols() >= 2, "softmax_ce: need at least 2 classes");
  LossGrad out;
  out.grad = Matrix(logits.rows(), logits.cols());
  const double bn = static_cast<double>(logits.rows());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    require(labels[i] < logits.cols(), "softmax_ce: label out of range");
    auto z = logits.row(i);
    const double zmax = *std::max_element(z.begin(), z.end());
    double denom = 0.0;
    for (double v : z) denom += std::exp(v - zmax);
    auto g = out.grad.row(i);
    for (std::size_t j = 0; j < logits.cols(); ++j) {
      const double pj = std::exp(z[j] - zmax) / denom;
      g[j] = (pj - (j == labels[i] ? 1.0 : 0.0)) / bn;
      if (j == labels[i]) out.loss += -(z[j] - zmax - std::log(denom)) / bn;
    }
  }
  CND_DCHECK_FINITE(out.loss, "softmax_ce: loss");
  return out;
}

}  // namespace cnd::nn
