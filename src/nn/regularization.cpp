#include "nn/regularization.hpp"

#include <cmath>

#include "tensor/assert.hpp"

namespace cnd::nn {

Dropout::Dropout(double p, std::uint64_t seed) : p_(p), rng_(seed) {
  require(p >= 0.0 && p < 1.0, "Dropout: p out of [0, 1)");
}

Matrix Dropout::forward(const Matrix& x, bool train) {
  if (!train || p_ == 0.0) return x;
  const double keep_scale = 1.0 / (1.0 - p_);
  mask_ = Matrix(x.rows(), x.cols());
  Matrix y = x;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    auto m = mask_.row(i);
    auto r = y.row(i);
    for (std::size_t j = 0; j < x.cols(); ++j) {
      m[j] = rng_.bernoulli(p_) ? 0.0 : keep_scale;
      r[j] *= m[j];
    }
  }
  return y;
}

Matrix Dropout::backward(const Matrix& grad_out) {
  require(grad_out.same_shape(mask_), "Dropout::backward: shape mismatch");
  return hadamard(grad_out, mask_);
}

std::unique_ptr<Layer> Dropout::clone() const {
  return std::make_unique<Dropout>(*this);
}

LayerNorm::LayerNorm(std::size_t dim, double eps)
    : eps_(eps),
      gamma_(1, dim, 1.0),
      beta_(1, dim, 0.0),
      ggamma_(1, dim),
      gbeta_(1, dim) {
  require(dim > 0, "LayerNorm: zero dim");
}

Matrix LayerNorm::forward(const Matrix& x, bool train) {
  require(x.cols() == gamma_.cols(), "LayerNorm::forward: width mismatch");
  Matrix y(x.rows(), x.cols());
  if (train) {
    xhat_cache_ = Matrix(x.rows(), x.cols());
    inv_std_cache_.assign(x.rows(), 0.0);
  }
  const double d = static_cast<double>(x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    auto r = x.row(i);
    double mean = 0.0;
    for (double v : r) mean += v;
    mean /= d;
    double var = 0.0;
    for (double v : r) var += (v - mean) * (v - mean);
    var /= d;
    const double inv_std = 1.0 / std::sqrt(var + eps_);
    auto out = y.row(i);
    auto g = gamma_.row(0);
    auto b = beta_.row(0);
    for (std::size_t j = 0; j < x.cols(); ++j) {
      const double xh = (r[j] - mean) * inv_std;
      if (train) xhat_cache_(i, j) = xh;
      out[j] = g[j] * xh + b[j];
    }
    if (train) inv_std_cache_[i] = inv_std;
  }
  return y;
}

Matrix LayerNorm::backward(const Matrix& grad_out) {
  require(grad_out.same_shape(xhat_cache_), "LayerNorm::backward: shape mismatch");
  const double d = static_cast<double>(grad_out.cols());
  Matrix gx(grad_out.rows(), grad_out.cols());
  for (std::size_t i = 0; i < grad_out.rows(); ++i) {
    auto go = grad_out.row(i);
    auto xh = xhat_cache_.row(i);
    auto g = gamma_.row(0);
    auto gg = ggamma_.row(0);
    auto gb = gbeta_.row(0);

    // Parameter gradients.
    for (std::size_t j = 0; j < grad_out.cols(); ++j) {
      gg[j] += go[j] * xh[j];
      gb[j] += go[j];
    }

    // dL/dxhat and its projections.
    double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
    for (std::size_t j = 0; j < grad_out.cols(); ++j) {
      const double dxh = go[j] * g[j];
      sum_dxhat += dxh;
      sum_dxhat_xhat += dxh * xh[j];
    }
    auto out = gx.row(i);
    for (std::size_t j = 0; j < grad_out.cols(); ++j) {
      const double dxh = go[j] * g[j];
      out[j] = inv_std_cache_[i] *
               (dxh - sum_dxhat / d - xh[j] * sum_dxhat_xhat / d);
    }
  }
  return gx;
}

std::vector<Param> LayerNorm::params() {
  return {{&gamma_, &ggamma_}, {&beta_, &gbeta_}};
}

std::unique_ptr<Layer> LayerNorm::clone() const {
  auto c = std::make_unique<LayerNorm>(*this);
  c->xhat_cache_ = Matrix();
  c->inv_std_cache_.clear();
  return c;
}

}  // namespace cnd::nn
