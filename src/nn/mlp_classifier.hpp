// Supervised MLP classifier.
//
// Used only by the Fig-1 bench to reproduce the paper's motivating
// observation: supervised ML-IDS scores well on attacks it was trained on
// and collapses on unseen (zero-day) families.
#pragma once

#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"

namespace cnd::nn {

struct MlpClassifierConfig {
  std::size_t input_dim = 0;
  std::size_t hidden_dim = 128;
  std::size_t n_classes = 2;
  std::size_t epochs = 20;
  std::size_t batch_size = 128;
  double lr = 1e-3;
};

class MlpClassifier {
 public:
  MlpClassifier(const MlpClassifierConfig& cfg, Rng& rng);

  /// Mini-batch Adam training with softmax cross-entropy. Returns final
  /// epoch's mean loss.
  double fit(const Matrix& x, const std::vector<std::size_t>& y);

  /// Class index per row.
  std::vector<std::size_t> predict(const Matrix& x);

  /// Probability of class 1 per row (binary convenience for F1 sweeps).
  std::vector<double> predict_proba1(const Matrix& x);

 private:
  MlpClassifierConfig cfg_;
  Sequential net_;
  Adam opt_;
  Rng rng_;
};

}  // namespace cnd::nn
