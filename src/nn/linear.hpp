// Fully connected layer: y = x W + b.
#pragma once

#include "nn/layer.hpp"

namespace cnd::nn {

class Linear final : public Layer {
 public:
  /// Kaiming-uniform initialization, suitable for the ReLU nets used here.
  Linear(std::size_t in, std::size_t out, Rng& rng);

  Matrix forward(const Matrix& x, bool train) override;
  Matrix backward(const Matrix& grad_out) override;
  void forward_into(const Matrix& x, Matrix& y, bool train) override;
  void backward_into(const Matrix& grad_out, Matrix& grad_in) override;
  std::vector<Param> params() override;
  void zero_grad() override {
    gw_ *= 0.0;
    gb_ *= 0.0;
  }
  std::unique_ptr<Layer> clone() const override;

  std::size_t in_features() const { return w_.rows(); }
  std::size_t out_features() const { return w_.cols(); }

  const Matrix& weight() const { return w_; }
  const Matrix& bias() const { return b_; }

  /// Overwrite parameters (used when restoring serialized models).
  void set_weights(const Matrix& w, const Matrix& b);

 private:
  Matrix w_;   // in x out
  Matrix b_;   // 1 x out
  Matrix gw_;
  Matrix gb_;
  Matrix x_cache_;
};

}  // namespace cnd::nn
