// Regularization layers: inverted Dropout and LayerNorm.
//
// Optional components of the CFE autoencoder (AutoencoderConfig::dropout);
// exposed publicly because downstream users assembling their own extractors
// need them for deeper nets than the paper's 4-layer MLP.
#pragma once

#include "nn/layer.hpp"

namespace cnd::nn {

/// Inverted dropout: at train time each activation is zeroed with
/// probability p and survivors are scaled by 1/(1-p); inference is the
/// identity. The layer owns its RNG stream for reproducibility.
class Dropout final : public Layer {
 public:
  explicit Dropout(double p, std::uint64_t seed = 0xD20);

  Matrix forward(const Matrix& x, bool train) override;
  Matrix backward(const Matrix& grad_out) override;
  std::unique_ptr<Layer> clone() const override;

  double p() const { return p_; }

 private:
  double p_;
  Rng rng_;
  Matrix mask_;  ///< cached keep-mask (already scaled) from the last forward.
};

/// Layer normalization over the feature dimension with learnable gain/bias.
class LayerNorm final : public Layer {
 public:
  explicit LayerNorm(std::size_t dim, double eps = 1e-5);

  Matrix forward(const Matrix& x, bool train) override;
  Matrix backward(const Matrix& grad_out) override;
  std::vector<Param> params() override;
  std::unique_ptr<Layer> clone() const override;

 private:
  double eps_;
  Matrix gamma_, beta_;    // 1 x dim
  Matrix ggamma_, gbeta_;
  Matrix xhat_cache_;      // normalized input
  std::vector<double> inv_std_cache_;  // per-row 1/sigma
};

}  // namespace cnd::nn
