#include "nn/mlp_classifier.hpp"

#include <algorithm>
#include <cmath>

#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/losses.hpp"
#include "tensor/assert.hpp"

namespace cnd::nn {

MlpClassifier::MlpClassifier(const MlpClassifierConfig& cfg, Rng& rng)
    : cfg_(cfg), opt_(cfg.lr), rng_(rng.split(0xC1A551F1E5ULL)) {
  require(cfg.input_dim > 0, "MlpClassifier: input_dim must be > 0");
  require(cfg.n_classes >= 2, "MlpClassifier: need >= 2 classes");
  net_.add(std::make_unique<Linear>(cfg.input_dim, cfg.hidden_dim, rng));
  net_.add(std::make_unique<ReLU>());
  net_.add(std::make_unique<Linear>(cfg.hidden_dim, cfg.hidden_dim, rng));
  net_.add(std::make_unique<ReLU>());
  net_.add(std::make_unique<Linear>(cfg.hidden_dim, cfg.n_classes, rng));
}

double MlpClassifier::fit(const Matrix& x, const std::vector<std::size_t>& y) {
  require(x.rows() == y.size(), "MlpClassifier::fit: label count mismatch");
  require(x.rows() > 0, "MlpClassifier::fit: empty training set");
  double last_epoch_loss = 0.0;
  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    auto order = rng_.permutation(x.rows());
    double loss_sum = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size(); start += cfg_.batch_size) {
      const std::size_t end = std::min(start + cfg_.batch_size, order.size());
      std::vector<std::size_t> idx(order.begin() + static_cast<std::ptrdiff_t>(start),
                                   order.begin() + static_cast<std::ptrdiff_t>(end));
      Matrix xb = x.take_rows(idx);
      std::vector<std::size_t> yb(idx.size());
      for (std::size_t i = 0; i < idx.size(); ++i) yb[i] = y[idx[i]];

      Matrix logits = net_.forward(xb, /*train=*/true);
      LossGrad lg = softmax_cross_entropy(logits, yb);
      net_.backward(lg.grad);
      opt_.step(net_.params());
      loss_sum += lg.loss;
      ++batches;
    }
    last_epoch_loss = loss_sum / static_cast<double>(std::max<std::size_t>(batches, 1));
  }
  return last_epoch_loss;
}

std::vector<std::size_t> MlpClassifier::predict(const Matrix& x) {
  Matrix logits = net_.predict(x);
  std::vector<std::size_t> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    auto r = logits.row(i);
    out[i] = static_cast<std::size_t>(
        std::max_element(r.begin(), r.end()) - r.begin());
  }
  return out;
}

std::vector<double> MlpClassifier::predict_proba1(const Matrix& x) {
  require(cfg_.n_classes == 2, "predict_proba1: binary classifiers only");
  Matrix logits = net_.predict(x);
  std::vector<double> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double z0 = logits(i, 0);
    const double z1 = logits(i, 1);
    const double m = std::max(z0, z1);
    out[i] = std::exp(z1 - m) / (std::exp(z0 - m) + std::exp(z1 - m));
  }
  return out;
}

}  // namespace cnd::nn
