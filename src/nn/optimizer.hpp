// Gradient-descent optimizers.
//
// Optimizers operate on the Param list a network exposes; Adam keeps its
// moment state positionally, so a given optimizer instance must always be
// stepped with the same network.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace cnd::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Apply one update using the gradients currently accumulated in `params`,
  /// then zero those gradients.
  virtual void step(std::vector<Param> params) = 0;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr) : lr_(lr) {}
  void step(std::vector<Param> params) override;

 private:
  double lr_;
};

/// Adam (Kingma & Ba), the optimizer the paper trains the CFE with
/// (lr = 0.001 in the paper's setup).
class Adam final : public Optimizer {
 public:
  explicit Adam(double lr = 1e-3, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);
  void step(std::vector<Param> params) override;

 private:
  double lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  std::vector<Matrix> m_;  // first moments, positional per param
  std::vector<Matrix> v_;  // second moments
};

}  // namespace cnd::nn
