// MLP autoencoder — the paper's CFE backbone ("4-layer MLP with 256 neurons
// in the hidden layers"): encoder d -> H -> latent, decoder latent -> H -> d.
//
// The encoder and decoder are exposed separately because the CND loss
// injects gradients at the latent (triplet + continual-learning terms) and
// at the reconstruction (L_R) simultaneously.
#pragma once

#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"

namespace cnd::nn {

struct AutoencoderConfig {
  std::size_t input_dim = 0;
  std::size_t hidden_dim = 256;  ///< paper default
  std::size_t latent_dim = 32;
  double dropout = 0.0;          ///< hidden-layer dropout (0 = off).
};

class Autoencoder {
 public:
  Autoencoder() = default;
  Autoencoder(const AutoencoderConfig& cfg, Rng& rng);

  Matrix encode(const Matrix& x, bool train = false) { return encoder_.forward(x, train); }
  Matrix decode(const Matrix& h, bool train = false) { return decoder_.forward(h, train); }
  Matrix reconstruct(const Matrix& x, bool train = false) {
    return decode(encode(x, train), train);
  }

  Sequential& encoder() { return encoder_; }
  Sequential& decoder() { return decoder_; }

  /// Deep copy of the encoder (model snapshotting / serialization).
  Sequential encoder_copy() const { return encoder_; }

  /// Rebuild an inference-only autoencoder around a deserialized encoder.
  /// The decoder stays empty: restored models score, they never train.
  void restore_encoder(Sequential encoder, const AutoencoderConfig& cfg);

  /// Allocation-free encode through the encoder's forward_into chain;
  /// bit-identical to encode(x, /*train=*/false).
  void encode_into(const Matrix& x, Matrix& out) {
    encoder_.forward_into(x, out, /*train=*/false);
  }

  /// Encoder + decoder parameters, in a stable order.
  std::vector<Param> params();
  void zero_grad();

  const AutoencoderConfig& config() const { return cfg_; }
  bool initialized() const { return cfg_.input_dim != 0; }

 private:
  AutoencoderConfig cfg_;
  Sequential encoder_;
  Sequential decoder_;
};

}  // namespace cnd::nn
