#include "nn/linear.hpp"

#include <cmath>

#include "tensor/assert.hpp"
#include "tensor/check.hpp"

namespace cnd::nn {

Linear::Linear(std::size_t in, std::size_t out, Rng& rng)
    : w_(in, out), b_(1, out), gw_(in, out), gb_(1, out) {
  require(in > 0 && out > 0, "Linear: zero-sized layer");
  const double bound = std::sqrt(6.0 / static_cast<double>(in));
  for (std::size_t i = 0; i < in; ++i)
    for (std::size_t j = 0; j < out; ++j) w_(i, j) = rng.uniform(-bound, bound);
}

Matrix Linear::forward(const Matrix& x, bool train) {
  require(x.cols() == w_.rows(), "Linear::forward: input width mismatch");
  if (train) x_cache_ = x;
  Matrix y = matmul(x, w_);
  for (std::size_t i = 0; i < y.rows(); ++i) {
    auto r = y.row(i);
    auto b = b_.row(0);
    for (std::size_t j = 0; j < y.cols(); ++j) r[j] += b[j];
  }
  return y;
}

Matrix Linear::backward(const Matrix& grad_out) {
  require(!x_cache_.empty(), "Linear::backward: no cached forward pass");
  require(grad_out.rows() == x_cache_.rows() && grad_out.cols() == w_.cols(),
          "Linear::backward: gradient shape mismatch");
  CND_DCHECK_ALL_FINITE(grad_out, "Linear::backward: non-finite upstream gradient");
  gw_ += matmul_at(x_cache_, grad_out);
  for (std::size_t i = 0; i < grad_out.rows(); ++i) {
    auto g = grad_out.row(i);
    auto gb = gb_.row(0);
    for (std::size_t j = 0; j < grad_out.cols(); ++j) gb[j] += g[j];
  }
  return matmul_bt(grad_out, w_);
}

std::vector<Param> Linear::params() { return {{&w_, &gw_}, {&b_, &gb_}}; }

void Linear::set_weights(const Matrix& w, const Matrix& b) {
  require(w.same_shape(w_) && b.same_shape(b_), "Linear::set_weights: shape mismatch");
  w_ = w;
  b_ = b;
}

std::unique_ptr<Layer> Linear::clone() const {
  auto c = std::make_unique<Linear>(*this);
  c->x_cache_ = Matrix();
  return c;
}

}  // namespace cnd::nn
