#include "nn/linear.hpp"

#include <cmath>

#include "tensor/assert.hpp"
#include "tensor/check.hpp"
#include "tensor/kernels.hpp"

namespace cnd::nn {

Linear::Linear(std::size_t in, std::size_t out, Rng& rng)
    : w_(in, out), b_(1, out), gw_(in, out), gb_(1, out) {
  require(in > 0 && out > 0, "Linear: zero-sized layer");
  const double bound = std::sqrt(6.0 / static_cast<double>(in));
  for (std::size_t i = 0; i < in; ++i)
    for (std::size_t j = 0; j < out; ++j) w_(i, j) = rng.uniform(-bound, bound);
}

Matrix Linear::forward(const Matrix& x, bool train) {
  Matrix y;
  forward_into(x, y, train);
  return y;
}

Matrix Linear::backward(const Matrix& grad_out) {
  Matrix g;
  backward_into(grad_out, g);
  return g;
}

// cnd-hot
void Linear::forward_into(const Matrix& x, Matrix& y, bool train) {
  require(x.cols() == w_.rows(), "Linear::forward: input width mismatch");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  require(&y != &x, "Linear::forward_into: output aliases input");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  // vector copy-assignment reuses the cache's existing capacity, so at a
  // steady batch shape this caching copy performs no allocation.
  if (train) x_cache_ = x;
  matmul_into(y, x, w_);
  add_rowvec_inplace(y, b_.row(0));
}

// cnd-hot
void Linear::backward_into(const Matrix& grad_out, Matrix& grad_in) {
  require(!x_cache_.empty(), "Linear::backward: no cached forward pass");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  require(grad_out.rows() == x_cache_.rows() && grad_out.cols() == w_.cols(),  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
          "Linear::backward: gradient shape mismatch");
  require(&grad_in != &grad_out, "Linear::backward_into: output aliases input");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  CND_DCHECK_ALL_FINITE(grad_out, "Linear::backward: non-finite upstream gradient");
  matmul_at_add_into(gw_, x_cache_, grad_out);
  for (std::size_t i = 0; i < grad_out.rows(); ++i) {
    auto g = grad_out.row(i);
    auto gb = gb_.row(0);
    for (std::size_t j = 0; j < grad_out.cols(); ++j) gb[j] += g[j];
  }
  matmul_bt_into(grad_in, grad_out, w_);
}

std::vector<Param> Linear::params() { return {{&w_, &gw_}, {&b_, &gb_}}; }

void Linear::set_weights(const Matrix& w, const Matrix& b) {
  require(w.same_shape(w_) && b.same_shape(b_), "Linear::set_weights: shape mismatch");
  w_ = w;
  b_ = b;
}

std::unique_ptr<Layer> Linear::clone() const {
  auto c = std::make_unique<Linear>(*this);
  c->x_cache_ = Matrix();
  return c;
}

}  // namespace cnd::nn
