// Element-wise activation layers.
#pragma once

#include "nn/layer.hpp"

namespace cnd::nn {

class ReLU final : public Layer {
 public:
  Matrix forward(const Matrix& x, bool train) override;
  Matrix backward(const Matrix& grad_out) override;
  void forward_into(const Matrix& x, Matrix& y, bool train) override;
  void backward_into(const Matrix& grad_out, Matrix& grad_in) override;
  std::unique_ptr<Layer> clone() const override;

 private:
  Matrix x_cache_;
};

class Tanh final : public Layer {
 public:
  Matrix forward(const Matrix& x, bool train) override;
  Matrix backward(const Matrix& grad_out) override;
  void forward_into(const Matrix& x, Matrix& y, bool train) override;
  void backward_into(const Matrix& grad_out, Matrix& grad_in) override;
  std::unique_ptr<Layer> clone() const override;

 private:
  Matrix y_cache_;
};

class Sigmoid final : public Layer {
 public:
  Matrix forward(const Matrix& x, bool train) override;
  Matrix backward(const Matrix& grad_out) override;
  void forward_into(const Matrix& x, Matrix& y, bool train) override;
  void backward_into(const Matrix& grad_out, Matrix& grad_in) override;
  std::unique_ptr<Layer> clone() const override;

 private:
  Matrix y_cache_;
};

}  // namespace cnd::nn
