#include "nn/autoencoder.hpp"

#include "nn/regularization.hpp"

#include "tensor/assert.hpp"

namespace cnd::nn {

Autoencoder::Autoencoder(const AutoencoderConfig& cfg, Rng& rng) : cfg_(cfg) {
  require(cfg.input_dim > 0, "Autoencoder: input_dim must be > 0");
  require(cfg.hidden_dim > 0 && cfg.latent_dim > 0,
          "Autoencoder: hidden/latent dims must be > 0");
  require(cfg.dropout >= 0.0 && cfg.dropout < 1.0,
          "Autoencoder: dropout out of [0, 1)");
  encoder_.add(std::make_unique<Linear>(cfg.input_dim, cfg.hidden_dim, rng));
  encoder_.add(std::make_unique<ReLU>());
  if (cfg.dropout > 0.0)
    encoder_.add(std::make_unique<Dropout>(cfg.dropout, rng.split(1).draw_u64()));
  encoder_.add(std::make_unique<Linear>(cfg.hidden_dim, cfg.latent_dim, rng));
  decoder_.add(std::make_unique<Linear>(cfg.latent_dim, cfg.hidden_dim, rng));
  decoder_.add(std::make_unique<ReLU>());
  if (cfg.dropout > 0.0)
    decoder_.add(std::make_unique<Dropout>(cfg.dropout, rng.split(2).draw_u64()));
  decoder_.add(std::make_unique<Linear>(cfg.hidden_dim, cfg.input_dim, rng));
}

void Autoencoder::restore_encoder(Sequential encoder, const AutoencoderConfig& cfg) {
  require(cfg.input_dim > 0, "Autoencoder::restore_encoder: input_dim must be > 0");
  require(encoder.depth() > 0, "Autoencoder::restore_encoder: empty encoder");
  cfg_ = cfg;
  encoder_ = std::move(encoder);
  decoder_ = Sequential();
}

std::vector<Param> Autoencoder::params() {
  auto p = encoder_.params();
  auto d = decoder_.params();
  p.insert(p.end(), d.begin(), d.end());
  return p;
}

void Autoencoder::zero_grad() {
  encoder_.zero_grad();
  decoder_.zero_grad();
}

}  // namespace cnd::nn
