// Loss functions.
//
// Each returns the scalar loss and dL/d(prediction) so callers can chain
// into Layer::backward. The triplet-margin loss implements Eq. (2) of the
// CND-IDS paper over pseudo-labelled mini-batches.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace cnd::nn {

struct LossGrad {
  double loss = 0.0;
  Matrix grad;  ///< same shape as the prediction input.
};

/// Mean squared error over all elements: L = mean((pred - target)^2).
LossGrad mse_loss(const Matrix& pred, const Matrix& target);

/// Triplet margin loss (FaceNet, Eq. 2 of CND-IDS) on a batch of embeddings
/// with binary pseudo-labels. Samples up to `n_triplets` random
/// (anchor, positive, negative) triples with the anchor alternating between
/// classes; returns 0 loss (and zero grad) when either class is absent.
/// Distances are Euclidean; margin m > 0.
LossGrad triplet_margin_loss(const Matrix& embeddings,
                             const std::vector<int>& labels, double margin,
                             Rng& rng, std::size_t n_triplets);

/// Softmax cross-entropy for the supervised Fig-1 baseline. `labels` are
/// class indices in [0, logits.cols()).
LossGrad softmax_cross_entropy(const Matrix& logits,
                               const std::vector<std::size_t>& labels);

}  // namespace cnd::nn
