#include "nn/optimizer.hpp"

#include <cmath>

#include "tensor/assert.hpp"
#include "tensor/check.hpp"

namespace cnd::nn {

void Sgd::step(std::vector<Param> params) {
  for (auto& p : params) {
    CND_ASSERT(p.value->same_shape(*p.grad));
    CND_DCHECK_ALL_FINITE(*p.grad, "Sgd::step: non-finite gradient");
    for (std::size_t i = 0; i < p.value->rows(); ++i) {
      auto w = p.value->row(i);
      auto g = p.grad->row(i);
      for (std::size_t j = 0; j < p.value->cols(); ++j) w[j] -= lr_ * g[j];
    }
    *p.grad *= 0.0;
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  require(lr > 0.0, "Adam: lr must be > 0");
}

void Adam::step(std::vector<Param> params) {
  if (m_.empty()) {
    for (auto& p : params) {
      m_.emplace_back(p.value->rows(), p.value->cols());
      v_.emplace_back(p.value->rows(), p.value->cols());
    }
  }
  require(m_.size() == params.size(), "Adam: parameter list changed size");
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t k = 0; k < params.size(); ++k) {
    auto& p = params[k];
    CND_ASSERT(p.value->same_shape(*p.grad));
    CND_DCHECK_ALL_FINITE(*p.grad, "Adam::step: non-finite gradient");
    require(m_[k].same_shape(*p.value), "Adam: parameter shape changed");
    for (std::size_t i = 0; i < p.value->rows(); ++i) {
      auto w = p.value->row(i);
      auto g = p.grad->row(i);
      auto m = m_[k].row(i);
      auto v = v_[k].row(i);
      for (std::size_t j = 0; j < p.value->cols(); ++j) {
        m[j] = beta1_ * m[j] + (1.0 - beta1_) * g[j];
        v[j] = beta2_ * v[j] + (1.0 - beta2_) * g[j] * g[j];
        const double mhat = m[j] / bc1;
        const double vhat = v[j] / bc2;
        w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
      }
    }
    *p.grad *= 0.0;
  }
}

}  // namespace cnd::nn
