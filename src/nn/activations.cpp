#include "nn/activations.hpp"

#include <cmath>

#include "tensor/assert.hpp"

// All three activations are element-wise, so their _into overrides tolerate
// `&y == &x` / `&grad_in == &grad_out`: each output element depends only on
// the same-position input element (and the layer's own cache).

namespace cnd::nn {

Matrix ReLU::forward(const Matrix& x, bool train) {
  Matrix y;
  forward_into(x, y, train);
  return y;
}

Matrix ReLU::backward(const Matrix& grad_out) {
  Matrix g;
  backward_into(grad_out, g);
  return g;
}

void ReLU::forward_into(const Matrix& x, Matrix& y, bool train) {
  if (train) x_cache_ = x;
  y.resize(x.rows(), x.cols());
  for (std::size_t i = 0; i < y.rows(); ++i) {
    auto yr = y.row(i);
    auto xr = x.row(i);
    for (std::size_t j = 0; j < y.cols(); ++j) yr[j] = xr[j] > 0.0 ? xr[j] : 0.0;
  }
}

void ReLU::backward_into(const Matrix& grad_out, Matrix& grad_in) {
  require(grad_out.same_shape(x_cache_), "ReLU::backward: shape mismatch");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  grad_in.resize(grad_out.rows(), grad_out.cols());
  for (std::size_t i = 0; i < grad_in.rows(); ++i) {
    auto gr = grad_in.row(i);
    auto go = grad_out.row(i);
    auto xr = x_cache_.row(i);
    for (std::size_t j = 0; j < grad_in.cols(); ++j)
      gr[j] = xr[j] <= 0.0 ? 0.0 : go[j];
  }
}

std::unique_ptr<Layer> ReLU::clone() const { return std::make_unique<ReLU>(); }

Matrix Tanh::forward(const Matrix& x, bool train) {
  Matrix y;
  forward_into(x, y, train);
  return y;
}

Matrix Tanh::backward(const Matrix& grad_out) {
  Matrix g;
  backward_into(grad_out, g);
  return g;
}

void Tanh::forward_into(const Matrix& x, Matrix& y, bool train) {
  y.resize(x.rows(), x.cols());
  for (std::size_t i = 0; i < y.rows(); ++i) {
    auto yr = y.row(i);
    auto xr = x.row(i);
    for (std::size_t j = 0; j < y.cols(); ++j) yr[j] = std::tanh(xr[j]);
  }
  if (train) y_cache_ = y;
}

void Tanh::backward_into(const Matrix& grad_out, Matrix& grad_in) {
  require(grad_out.same_shape(y_cache_), "Tanh::backward: shape mismatch");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  grad_in.resize(grad_out.rows(), grad_out.cols());
  for (std::size_t i = 0; i < grad_in.rows(); ++i) {
    auto gr = grad_in.row(i);
    auto go = grad_out.row(i);
    auto yr = y_cache_.row(i);
    for (std::size_t j = 0; j < grad_in.cols(); ++j)
      gr[j] = go[j] * (1.0 - yr[j] * yr[j]);
  }
}

std::unique_ptr<Layer> Tanh::clone() const { return std::make_unique<Tanh>(); }

Matrix Sigmoid::forward(const Matrix& x, bool train) {
  Matrix y;
  forward_into(x, y, train);
  return y;
}

Matrix Sigmoid::backward(const Matrix& grad_out) {
  Matrix g;
  backward_into(grad_out, g);
  return g;
}

void Sigmoid::forward_into(const Matrix& x, Matrix& y, bool train) {
  y.resize(x.rows(), x.cols());
  for (std::size_t i = 0; i < y.rows(); ++i) {
    auto yr = y.row(i);
    auto xr = x.row(i);
    for (std::size_t j = 0; j < y.cols(); ++j)
      yr[j] = 1.0 / (1.0 + std::exp(-xr[j]));
  }
  if (train) y_cache_ = y;
}

void Sigmoid::backward_into(const Matrix& grad_out, Matrix& grad_in) {
  require(grad_out.same_shape(y_cache_), "Sigmoid::backward: shape mismatch");  // cnd-throw-ok(precondition on caller-supplied shapes/arguments — programmer error, not traffic)
  grad_in.resize(grad_out.rows(), grad_out.cols());
  for (std::size_t i = 0; i < grad_in.rows(); ++i) {
    auto gr = grad_in.row(i);
    auto go = grad_out.row(i);
    auto yr = y_cache_.row(i);
    for (std::size_t j = 0; j < grad_in.cols(); ++j)
      gr[j] = go[j] * yr[j] * (1.0 - yr[j]);
  }
}

std::unique_ptr<Layer> Sigmoid::clone() const { return std::make_unique<Sigmoid>(); }

}  // namespace cnd::nn
