#include "nn/activations.hpp"

#include <cmath>

#include "tensor/assert.hpp"

namespace cnd::nn {

Matrix ReLU::forward(const Matrix& x, bool train) {
  if (train) x_cache_ = x;
  Matrix y = x;
  for (std::size_t i = 0; i < y.rows(); ++i)
    for (double& v : y.row(i)) v = v > 0.0 ? v : 0.0;
  return y;
}

Matrix ReLU::backward(const Matrix& grad_out) {
  require(grad_out.same_shape(x_cache_), "ReLU::backward: shape mismatch");
  Matrix g = grad_out;
  for (std::size_t i = 0; i < g.rows(); ++i) {
    auto gr = g.row(i);
    auto xr = x_cache_.row(i);
    for (std::size_t j = 0; j < g.cols(); ++j)
      if (xr[j] <= 0.0) gr[j] = 0.0;
  }
  return g;
}

std::unique_ptr<Layer> ReLU::clone() const { return std::make_unique<ReLU>(); }

Matrix Tanh::forward(const Matrix& x, bool train) {
  Matrix y = x;
  for (std::size_t i = 0; i < y.rows(); ++i)
    for (double& v : y.row(i)) v = std::tanh(v);
  if (train) y_cache_ = y;
  return y;
}

Matrix Tanh::backward(const Matrix& grad_out) {
  require(grad_out.same_shape(y_cache_), "Tanh::backward: shape mismatch");
  Matrix g = grad_out;
  for (std::size_t i = 0; i < g.rows(); ++i) {
    auto gr = g.row(i);
    auto yr = y_cache_.row(i);
    for (std::size_t j = 0; j < g.cols(); ++j) gr[j] *= 1.0 - yr[j] * yr[j];
  }
  return g;
}

std::unique_ptr<Layer> Tanh::clone() const { return std::make_unique<Tanh>(); }

Matrix Sigmoid::forward(const Matrix& x, bool train) {
  Matrix y = x;
  for (std::size_t i = 0; i < y.rows(); ++i)
    for (double& v : y.row(i)) v = 1.0 / (1.0 + std::exp(-v));
  if (train) y_cache_ = y;
  return y;
}

Matrix Sigmoid::backward(const Matrix& grad_out) {
  require(grad_out.same_shape(y_cache_), "Sigmoid::backward: shape mismatch");
  Matrix g = grad_out;
  for (std::size_t i = 0; i < g.rows(); ++i) {
    auto gr = g.row(i);
    auto yr = y_cache_.row(i);
    for (std::size_t j = 0; j < g.cols(); ++j) gr[j] *= yr[j] * (1.0 - yr[j]);
  }
  return g;
}

std::unique_ptr<Layer> Sigmoid::clone() const { return std::make_unique<Sigmoid>(); }

}  // namespace cnd::nn
