// Layer interface for the from-scratch neural network library.
//
// Training uses explicit reverse-mode: forward() caches what backward()
// needs, backward() receives dL/d(output) and returns dL/d(input) while
// accumulating parameter gradients. Batches are Matrix rows.
#pragma once

#include <memory>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace cnd::nn {

/// A trainable parameter: the value and its accumulated gradient, both owned
/// by the layer. Optimizers mutate `value` and read/zero `grad`.
struct Param {
  Matrix* value;
  Matrix* grad;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass. When `train` is true the layer caches activations for a
  /// subsequent backward(); inference passes should use train = false.
  virtual Matrix forward(const Matrix& x, bool train) = 0;

  /// Backward pass for the most recent training forward(). Accumulates into
  /// parameter gradients and returns dL/d(input).
  virtual Matrix backward(const Matrix& grad_out) = 0;

  /// Trainable parameters (empty for activations).
  virtual std::vector<Param> params() { return {}; }

  /// Deep copy (used to snapshot past-experience models for the continual
  /// learning loss).
  virtual std::unique_ptr<Layer> clone() const = 0;

  void zero_grad() {
    for (auto p : params()) *p.grad *= 0.0;
  }
};

}  // namespace cnd::nn
