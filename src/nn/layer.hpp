// Layer interface for the from-scratch neural network library.
//
// Training uses explicit reverse-mode: forward() caches what backward()
// needs, backward() receives dL/d(output) and returns dL/d(input) while
// accumulating parameter gradients. Batches are Matrix rows.
#pragma once

#include <memory>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace cnd::nn {

/// A trainable parameter: the value and its accumulated gradient, both owned
/// by the layer. Optimizers mutate `value` and read/zero `grad`.
struct Param {
  Matrix* value;
  Matrix* grad;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass. When `train` is true the layer caches activations for a
  /// subsequent backward(); inference passes should use train = false.
  virtual Matrix forward(const Matrix& x, bool train) = 0;

  /// Backward pass for the most recent training forward(). Accumulates into
  /// parameter gradients and returns dL/d(input).
  virtual Matrix backward(const Matrix& grad_out) = 0;

  /// Forward pass into a caller-provided output, resized in place. Hot
  /// layers override this to reuse `y`'s allocation (zero heap traffic at a
  /// steady batch shape); the default adapter falls back to the allocating
  /// forward(). Element-wise layers tolerate `&y == &x`; layers that cannot
  /// (e.g. Linear) reject aliasing with `require`.
  // cnd-alloc-ok(default adapter delegates to the allocating forward(); hot layers override)
  virtual void forward_into(const Matrix& x, Matrix& y, bool train) {
    y = forward(x, train);
  }

  /// Backward counterpart of forward_into: writes dL/d(input) into
  /// `grad_in` (resized in place) while accumulating parameter gradients.
  // cnd-alloc-ok(default adapter delegates to the allocating backward(); hot layers override)
  virtual void backward_into(const Matrix& grad_out, Matrix& grad_in) {
    grad_in = backward(grad_out);
  }

  /// Trainable parameters (empty for activations).
  virtual std::vector<Param> params() { return {}; }

  /// Deep copy (used to snapshot past-experience models for the continual
  /// learning loss).
  virtual std::unique_ptr<Layer> clone() const = 0;

  /// Zero all parameter gradients. The default builds the params() vector;
  /// hot layers override it to hit their gradient matrices directly so a
  /// steady-state training step stays allocation-free.
  virtual void zero_grad() {
    for (auto p : params()) *p.grad *= 0.0;
  }
};

}  // namespace cnd::nn
