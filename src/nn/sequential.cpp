#include "nn/sequential.hpp"

#include "tensor/assert.hpp"

namespace cnd::nn {

Sequential::Sequential(const Sequential& o) {
  layers_.reserve(o.layers_.size());
  for (const auto& l : o.layers_) layers_.push_back(l->clone());
}

Sequential& Sequential::operator=(const Sequential& o) {
  if (this == &o) return *this;
  layers_.clear();
  layers_.reserve(o.layers_.size());
  for (const auto& l : o.layers_) layers_.push_back(l->clone());
  return *this;
}

void Sequential::add(std::unique_ptr<Layer> layer) {
  require(layer != nullptr, "Sequential::add: null layer");
  layers_.push_back(std::move(layer));
}

Matrix Sequential::forward(const Matrix& x, bool train) {
  Matrix h = x;
  for (auto& l : layers_) h = l->forward(h, train);
  return h;
}

Matrix Sequential::backward(const Matrix& grad_out) {
  Matrix g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

std::vector<Param> Sequential::params() {
  std::vector<Param> out;
  for (auto& l : layers_)
    for (auto p : l->params()) out.push_back(p);
  return out;
}

std::unique_ptr<Layer> Sequential::clone() const {
  return std::make_unique<Sequential>(*this);
}

}  // namespace cnd::nn
