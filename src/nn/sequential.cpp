#include "nn/sequential.hpp"

#include "tensor/assert.hpp"

namespace cnd::nn {

Sequential::Sequential(const Sequential& o) {
  layers_.reserve(o.layers_.size());
  for (const auto& l : o.layers_) layers_.push_back(l->clone());
}

Sequential& Sequential::operator=(const Sequential& o) {
  if (this == &o) return *this;
  layers_.clear();
  layers_.reserve(o.layers_.size());
  for (const auto& l : o.layers_) layers_.push_back(l->clone());
  return *this;
}

void Sequential::add(std::unique_ptr<Layer> layer) {
  require(layer != nullptr, "Sequential::add: null layer");
  layers_.push_back(std::move(layer));
}

Matrix Sequential::forward(const Matrix& x, bool train) {
  Matrix h;
  forward_into(x, h, train);
  return h;
}

Matrix Sequential::backward(const Matrix& grad_out) {
  Matrix g;
  backward_into(grad_out, g);
  return g;
}

// cnd-hot
void Sequential::forward_into(const Matrix& x, Matrix& y, bool train) {
  if (layers_.empty()) {
    y = x;
    return;
  }
  // Intermediates ping-pong between the two scratch slots; only the last
  // layer writes the caller's output, so `y` may alias `x`.
  const Matrix* in = &x;
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
    Matrix& out = scratch_[i % 2];
    layers_[i]->forward_into(*in, out, train);
    in = &out;
  }
  layers_.back()->forward_into(*in, y, train);
}

// cnd-hot
void Sequential::backward_into(const Matrix& grad_out, Matrix& grad_in) {
  if (layers_.empty()) {
    grad_in = grad_out;
    return;
  }
  // Layer i's input gradient has the shape of layer i-1's output, which is
  // exactly what scratch_[(i-1) % 2] held during the forward pass — so the
  // backward chain reuses the same slots with zero reshaping. Layers own
  // whatever forward state they need (x_cache_/y_cache_), so clobbering the
  // forward intermediates here is safe.
  const Matrix* g = &grad_out;
  for (std::size_t i = layers_.size(); i-- > 1;) {
    Matrix& out = scratch_[(i - 1) % 2];
    layers_[i]->backward_into(*g, out);
    g = &out;
  }
  layers_.front()->backward_into(*g, grad_in);
}

std::vector<Param> Sequential::params() {
  std::vector<Param> out;
  for (auto& l : layers_)
    for (auto p : l->params()) out.push_back(p);
  return out;
}

std::unique_ptr<Layer> Sequential::clone() const {
  return std::make_unique<Sequential>(*this);
}

}  // namespace cnd::nn
