// Ordered container of layers with chained forward/backward.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace cnd::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;
  Sequential(const Sequential& o);
  Sequential& operator=(const Sequential& o);
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  void add(std::unique_ptr<Layer> layer);
  std::size_t depth() const { return layers_.size(); }

  Matrix forward(const Matrix& x, bool train) override;
  Matrix backward(const Matrix& grad_out) override;
  std::vector<Param> params() override;
  std::unique_ptr<Layer> clone() const override;

  /// Inference shortcut (no caching).
  Matrix predict(const Matrix& x) { return forward(x, /*train=*/false); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace cnd::nn
