// Ordered container of layers with chained forward/backward.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace cnd::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;
  Sequential(const Sequential& o);
  Sequential& operator=(const Sequential& o);
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  void add(std::unique_ptr<Layer> layer);
  std::size_t depth() const { return layers_.size(); }

  Matrix forward(const Matrix& x, bool train) override;
  Matrix backward(const Matrix& grad_out) override;
  void forward_into(const Matrix& x, Matrix& y, bool train) override;
  void backward_into(const Matrix& grad_out, Matrix& grad_in) override;
  std::vector<Param> params() override;
  std::unique_ptr<Layer> clone() const override;
  void zero_grad() override {
    for (auto& l : layers_) l->zero_grad();
  }

  /// Inference shortcut (no caching).
  Matrix predict(const Matrix& x) { return forward(x, /*train=*/false); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  // Ping-pong buffers for intermediate activations/gradients inside
  // forward_into/backward_into. Layer i writes scratch_[i % 2] while reading
  // the other slot, so shapes are stable across iterations at a fixed batch
  // size and the chain runs allocation-free after warm-up. Pure scratch:
  // deliberately not cloned/copied with the model.
  Matrix scratch_[2];
};

}  // namespace cnd::nn
