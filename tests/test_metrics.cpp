// Unit tests for classification metrics, PR/ROC AUC, and the CL matrix.
#include "eval/metrics.hpp"

#include <gtest/gtest.h>

#include "eval/cl_metrics.hpp"

namespace cnd::eval {
namespace {

TEST(Confusion, Counts) {
  const std::vector<int> pred{1, 1, 0, 0, 1};
  const std::vector<int> truth{1, 0, 0, 1, 1};
  Confusion c = confusion(pred, truth);
  EXPECT_EQ(c.tp, 2u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tn, 1u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_THROW(confusion({1}, {1, 0}), std::invalid_argument);
  EXPECT_THROW(confusion({2}, {1}), std::invalid_argument);
}

TEST(F1, KnownValues) {
  // P = 2/3, R = 2/3 -> F1 = 2/3.
  Confusion c{.tp = 2, .fp = 1, .tn = 1, .fn = 1};
  EXPECT_NEAR(f1_score(c), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(precision(c), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(recall(c), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(accuracy(c), 0.6, 1e-12);
}

TEST(F1, DegenerateCases) {
  EXPECT_EQ(f1_score(Confusion{.tp = 0, .fp = 0, .tn = 5, .fn = 0}), 0.0);
  EXPECT_EQ(f1_score(Confusion{.tp = 0, .fp = 3, .tn = 0, .fn = 3}), 0.0);
  EXPECT_EQ(f1_score(Confusion{.tp = 4, .fp = 0, .tn = 4, .fn = 0}), 1.0);
}

TEST(PrAuc, PerfectRanking) {
  const std::vector<double> scores{0.9, 0.8, 0.2, 0.1};
  const std::vector<int> y{1, 1, 0, 0};
  EXPECT_NEAR(pr_auc(scores, y), 1.0, 1e-12);
}

TEST(PrAuc, WorstRanking) {
  const std::vector<double> scores{0.1, 0.2, 0.8, 0.9};
  const std::vector<int> y{1, 1, 0, 0};
  // Positives ranked last: precision at their recall points is 1/3 and 2/4.
  EXPECT_NEAR(pr_auc(scores, y), 0.5 * (1.0 / 3.0) + 0.5 * (2.0 / 4.0), 1e-12);
}

TEST(PrAuc, AllEqualScoresGivesPrevalence) {
  const std::vector<double> scores{0.5, 0.5, 0.5, 0.5};
  const std::vector<int> y{1, 0, 0, 0};
  EXPECT_NEAR(pr_auc(scores, y), 0.25, 1e-12);
}

TEST(PrAuc, NoPositivesIsZero) {
  EXPECT_EQ(pr_auc({0.1, 0.2}, {0, 0}), 0.0);
}

TEST(RocAuc, PerfectAndRandom) {
  EXPECT_NEAR(roc_auc({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}), 1.0, 1e-12);
  EXPECT_NEAR(roc_auc({0.5, 0.5, 0.5, 0.5}, {1, 0, 1, 0}), 0.5, 1e-12);
  EXPECT_NEAR(roc_auc({0.1, 0.2, 0.8, 0.9}, {1, 1, 0, 0}), 0.0, 1e-12);
}

TEST(RocAuc, InvariantToMonotoneTransform) {
  const std::vector<int> y{1, 0, 1, 0, 1, 0};
  const std::vector<double> s{3.0, 1.0, 2.5, 2.0, 0.5, 0.4};
  std::vector<double> s2;
  for (double v : s) s2.push_back(v * 10.0 + 100.0);
  EXPECT_DOUBLE_EQ(roc_auc(s, y), roc_auc(s2, y));
}

TEST(ClMatrix, MetricsFormulas) {
  // m = 3 with a hand-computed matrix.
  ClResultMatrix r(3);
  // R = [ .9 .5 .4
  //       .8 .9 .5
  //       .7 .8 .9 ]
  const double vals[3][3] = {{.9, .5, .4}, {.8, .9, .5}, {.7, .8, .9}};
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) r.set(i, j, vals[i][j]);

  EXPECT_NEAR(r.avg_current(), (0.9 + 0.9 + 0.9) / 3.0, 1e-12);
  EXPECT_NEAR(r.fwd_transfer(), (0.5 + 0.4 + 0.5) / 3.0, 1e-12);
  // BwdTrans = sum_i (R[2,i] - R[i,i]) / (m(m-1)/2) = ((.7-.9)+(.8-.9)+0)/3.
  EXPECT_NEAR(r.bwd_transfer(), (-0.2 - 0.1 + 0.0) / 3.0, 1e-9);
  EXPECT_NEAR(r.avg_all(), (0.9 + 0.5 + 0.4 + 0.8 + 0.9 + 0.5 + 0.7 + 0.8 + 0.9) / 9.0,
              1e-12);
}

TEST(ClMatrix, GemMetricsHandComputed) {
  // GEM/Avalanche-convention BWT, FWT, and forgetting on a hand-computed
  // m = 3 matrix (formulas in docs/SCENARIOS.md).
  ClResultMatrix r(3);
  const double vals[3][3] = {{0.8, 0.2, 0.1}, {0.7, 0.9, 0.3}, {0.6, 0.5, 0.95}};
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) r.set(i, j, vals[i][j]);

  // BWT = ((R(2,0)-R(0,0)) + (R(2,1)-R(1,1))) / 2 = ((.6-.8)+(.5-.9))/2.
  EXPECT_NEAR(r.bwt(), -0.3, 1e-12);
  // FWT (zero baseline) = (R(0,1) + R(1,2)) / 2 = (.2+.3)/2.
  EXPECT_NEAR(r.fwt(), 0.25, 1e-12);
  // FWT with an untrained-reference baseline b = {.1, .1}.
  EXPECT_NEAR(r.fwt({0.1, 0.1}), 0.15, 1e-12);
  // forgetting(0) = max(R(0,0), R(1,0)) - R(2,0) = .8 - .6.
  EXPECT_NEAR(r.forgetting(0), 0.2, 1e-12);
  // forgetting(1) = R(1,1) - R(2,1) = .9 - .5; forgetting(last) = 0.
  EXPECT_NEAR(r.forgetting(1), 0.4, 1e-12);
  EXPECT_EQ(r.forgetting(2), 0.0);
  EXPECT_NEAR(r.avg_forgetting(), 0.3, 1e-12);

  EXPECT_THROW(r.fwt({0.1}), std::invalid_argument);
  EXPECT_THROW(r.forgetting(3), std::invalid_argument);
}

TEST(ClMatrix, GemMetricsFrozenAndImprovingModels) {
  // A model that never changes has zero BWT and zero forgetting.
  ClResultMatrix frozen(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      frozen.set(i, j, 0.4 + 0.1 * static_cast<double>(j));
  EXPECT_NEAR(frozen.bwt(), 0.0, 1e-12);
  EXPECT_NEAR(frozen.avg_forgetting(), 0.0, 1e-12);

  // A model that keeps improving on old experiences: positive BWT,
  // negative forgetting.
  ClResultMatrix improving(2);
  improving.set(0, 0, 0.5);
  improving.set(0, 1, 0.2);
  improving.set(1, 0, 0.7);
  improving.set(1, 1, 0.6);
  EXPECT_NEAR(improving.bwt(), 0.2, 1e-12);
  EXPECT_NEAR(improving.forgetting(0), -0.2, 1e-12);
  EXPECT_NEAR(improving.fwt(), 0.2, 1e-12);
}

TEST(ClMatrix, FrozenModelHasZeroBwd) {
  // A model that never changes: every row identical -> BwdTrans = 0.
  ClResultMatrix r(4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) r.set(i, j, 0.3 + 0.1 * static_cast<double>(j));
  EXPECT_NEAR(r.bwd_transfer(), 0.0, 1e-12);
}

TEST(ClMatrix, RejectsBadIndices) {
  ClResultMatrix r(2);
  EXPECT_THROW(r.set(2, 0, 0.5), std::invalid_argument);
  EXPECT_THROW(r.get(0, 2), std::invalid_argument);
  EXPECT_THROW(ClResultMatrix(1), std::invalid_argument);
}

TEST(ClMatrix, ToStringContainsSummary) {
  ClResultMatrix r(2);
  r.set(0, 0, 0.5);
  const std::string s = r.to_string("demo");
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("AVG="), std::string::npos);
  EXPECT_NE(s.find("FwdTrans="), std::string::npos);
}

}  // namespace
}  // namespace cnd::eval
