// Unit tests for K-Means and the elbow method.
#include "ml/kmeans.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ml/elbow.hpp"

namespace cnd::ml {
namespace {

/// Three well-separated blobs of `per` points each.
Matrix three_blobs(std::size_t per, Rng& rng) {
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  Matrix x(3 * per, 2);
  for (std::size_t c = 0; c < 3; ++c)
    for (std::size_t i = 0; i < per; ++i) {
      x(c * per + i, 0) = rng.normal(centers[c][0], 0.5);
      x(c * per + i, 1) = rng.normal(centers[c][1], 0.5);
    }
  return x;
}

TEST(KMeans, RecoversBlobCentroids) {
  Rng rng(1);
  Matrix x = three_blobs(50, rng);
  KMeans km({.k = 3});
  km.fit(x, rng);

  // Every true center must be within 1.0 of some centroid.
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (const auto& c : centers) {
    double best = 1e18;
    for (std::size_t j = 0; j < 3; ++j) {
      const std::vector<double> ctr{km.centroids()(j, 0), km.centroids()(j, 1)};
      const std::vector<double> truth{c[0], c[1]};
      best = std::min(best, sq_dist(ctr, truth));
    }
    EXPECT_LT(best, 1.0);
  }
}

TEST(KMeans, AssignmentsConsistentWithinBlob) {
  Rng rng(2);
  Matrix x = three_blobs(40, rng);
  KMeans km({.k = 3});
  km.fit(x, rng);
  auto a = km.predict(x);
  // All points of one blob share a label; labels across blobs differ.
  std::set<std::size_t> blob_labels;
  for (std::size_t c = 0; c < 3; ++c) {
    const std::size_t lbl = a[c * 40];
    for (std::size_t i = 0; i < 40; ++i) EXPECT_EQ(a[c * 40 + i], lbl);
    blob_labels.insert(lbl);
  }
  EXPECT_EQ(blob_labels.size(), 3u);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  Rng rng(3);
  Matrix x = three_blobs(30, rng);
  double prev = 1e18;
  for (std::size_t k = 1; k <= 4; ++k) {
    KMeans km({.k = k});
    km.fit(x, rng);
    const double in = km.inertia(x);
    EXPECT_LE(in, prev + 1e-9);
    prev = in;
  }
}

TEST(KMeans, KEqualsNGivesZeroInertia) {
  Rng rng(4);
  Matrix x{{0, 0}, {5, 5}, {9, 1}};
  KMeans km({.k = 3});
  km.fit(x, rng);
  EXPECT_NEAR(km.inertia(x), 0.0, 1e-18);
}

TEST(KMeans, RejectsBadInputs) {
  Rng rng(5);
  KMeans km({.k = 5});
  EXPECT_THROW(km.fit(Matrix(3, 2), rng), std::invalid_argument);
  KMeans unfitted({.k = 2});
  EXPECT_THROW(unfitted.predict(Matrix(1, 2)), std::invalid_argument);
}

TEST(KMeans, PredictRejectsFeatureMismatch) {
  Rng rng(6);
  Matrix x = three_blobs(10, rng);
  KMeans km({.k = 2});
  km.fit(x, rng);
  EXPECT_THROW(km.predict(Matrix(1, 5)), std::invalid_argument);
}

TEST(Elbow, FindsThreeBlobs) {
  Rng rng(7);
  Matrix x = three_blobs(60, rng);
  const std::size_t k = elbow_k(x, rng, 2, 8);
  // The bend of the inertia curve for 3 crisp blobs is at k = 3.
  EXPECT_EQ(k, 3u);
}

TEST(Elbow, RespectsRangeBounds) {
  Rng rng(8);
  Matrix x = three_blobs(20, rng);
  const std::size_t k = elbow_k(x, rng, 4, 6);
  EXPECT_GE(k, 4u);
  EXPECT_LE(k, 6u);
  EXPECT_THROW(elbow_k(x, rng, 1, 5), std::invalid_argument);
}

}  // namespace
}  // namespace cnd::ml
