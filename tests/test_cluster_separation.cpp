// Unit tests for the cluster-separation pseudo-labeling (§III-C).
#include "core/cluster_separation.hpp"

#include <gtest/gtest.h>

namespace cnd::core {
namespace {

/// Training set = normal blob at origin + attack blob at distance 12;
/// N_c sampled from the normal blob only.
struct TwoBlob {
  Matrix x_train;
  Matrix n_clean;
  std::vector<int> truth;  ///< 0 for the normal blob, 1 for the attack blob.
};

TwoBlob make_two_blob(Rng& rng, std::size_t n_norm = 150, std::size_t n_att = 80) {
  TwoBlob t;
  t.x_train = Matrix(n_norm + n_att, 3);
  for (std::size_t i = 0; i < n_norm; ++i) {
    for (std::size_t j = 0; j < 3; ++j) t.x_train(i, j) = rng.normal(0.0, 1.0);
    t.truth.push_back(0);
  }
  for (std::size_t i = 0; i < n_att; ++i) {
    for (std::size_t j = 0; j < 3; ++j)
      t.x_train(n_norm + i, j) = rng.normal(j == 0 ? 12.0 : 0.0, 1.0);
    t.truth.push_back(1);
  }
  t.n_clean = Matrix(40, 3);
  for (std::size_t i = 0; i < 40; ++i)
    for (std::size_t j = 0; j < 3; ++j) t.n_clean(i, j) = rng.normal(0.0, 1.0);
  return t;
}

TEST(ClusterSeparation, RecoversPlantedClasses) {
  Rng rng(1);
  TwoBlob t = make_two_blob(rng);
  PseudoLabels pl = cluster_separation_labels(t.x_train, t.n_clean, 2, rng);
  ASSERT_EQ(pl.labels.size(), t.truth.size());
  std::size_t agree = 0;
  for (std::size_t i = 0; i < pl.labels.size(); ++i)
    agree += (pl.labels[i] == t.truth[i]);
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(pl.labels.size()), 0.98);
  EXPECT_EQ(pl.n_normal_clusters, 1u);
  EXPECT_EQ(pl.n_anomalous, 80u);
}

TEST(ClusterSeparation, ElbowPathProducesBothClasses) {
  Rng rng(2);
  TwoBlob t = make_two_blob(rng);
  PseudoLabels pl = cluster_separation_labels(t.x_train, t.n_clean, 0, rng);
  EXPECT_GE(pl.k, 2u);
  EXPECT_GT(pl.n_anomalous, 0u);
  EXPECT_LT(pl.n_anomalous, t.x_train.rows());
}

TEST(ClusterSeparation, AllNormalWhenNoAttackStructure) {
  // Training data drawn from the same distribution as N_c: with few
  // clusters every cluster will contain an N_c point -> everything normal.
  Rng rng(3);
  Matrix x(100, 2);
  for (std::size_t i = 0; i < 100; ++i)
    for (std::size_t j = 0; j < 2; ++j) x(i, j) = rng.normal();
  Matrix nc(50, 2);
  for (std::size_t i = 0; i < 50; ++i)
    for (std::size_t j = 0; j < 2; ++j) nc(i, j) = rng.normal();
  PseudoLabels pl = cluster_separation_labels(x, nc, 2, rng);
  EXPECT_EQ(pl.n_normal_clusters, 2u);
  EXPECT_EQ(pl.n_anomalous, 0u);
}

TEST(ClusterSeparation, RejectsBadInputs) {
  Rng rng(4);
  Matrix x(10, 2), nc(5, 3);
  EXPECT_THROW(cluster_separation_labels(x, nc, 2, rng), std::invalid_argument);
  EXPECT_THROW(cluster_separation_labels(Matrix(2, 2), Matrix(2, 2), 2, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace cnd::core
