// Unit tests for the CND_CHECK/CND_DCHECK invariant layer (tensor/check.hpp).
//
// CND_ENABLE_DCHECKS is defined for this translation unit before the header
// is included, so the dcheck macros are active here regardless of the build
// mode — the macro semantics are testable even in a plain Release build.
// Tests that need the *library* compiled with dchecks (sanitizer/Debug
// builds) are gated on whether the build set the flag globally.
#ifdef CND_ENABLE_DCHECKS
#define CND_LIB_HAS_DCHECKS 1
#endif
#ifndef CND_ENABLE_DCHECKS
#define CND_ENABLE_DCHECKS 1
#endif

#include "tensor/check.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace cnd {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Check, CndCheckPassesAndThrows) {
  EXPECT_NO_THROW(CND_CHECK(1 + 1 == 2, "arithmetic"));
  EXPECT_THROW(CND_CHECK(false, "must fire"), std::logic_error);
  try {
    CND_CHECK(2 < 1, "two is not less than one");
    FAIL() << "CND_CHECK did not throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("two is not less than one"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("2 < 1"), std::string::npos);
  }
}

TEST(Check, DcheckActiveInThisTu) {
  EXPECT_NO_THROW(CND_DCHECK(true, "fine"));
  EXPECT_THROW(CND_DCHECK(false, "fires"), std::logic_error);
}

TEST(Check, DcheckBounds) {
  const std::size_t i = 3, n = 5;
  EXPECT_NO_THROW(CND_DCHECK_BOUNDS(i, n));
  EXPECT_THROW(CND_DCHECK_BOUNDS(n, n), std::logic_error);
  EXPECT_THROW(CND_DCHECK_BOUNDS(std::size_t{7}, n), std::logic_error);
}

TEST(Check, DcheckFiniteScalar) {
  EXPECT_NO_THROW(CND_DCHECK_FINITE(0.0, "zero"));
  EXPECT_NO_THROW(CND_DCHECK_FINITE(-1e300, "large"));
  EXPECT_THROW(CND_DCHECK_FINITE(kNan, "nan"), std::logic_error);
  EXPECT_THROW(CND_DCHECK_FINITE(kInf, "inf"), std::logic_error);
  EXPECT_THROW(CND_DCHECK_FINITE(-kInf, "-inf"), std::logic_error);
}

TEST(Check, AllFiniteSpanAndMatrix) {
  const std::vector<double> ok{0.0, 1.5, -2.5};
  const std::vector<double> bad{0.0, kNan, 1.0};
  EXPECT_TRUE(check::all_finite(std::span<const double>(ok)));
  EXPECT_FALSE(check::all_finite(std::span<const double>(bad)));

  Matrix m(2, 2, 1.0);
  EXPECT_TRUE(check::all_finite(m));
  EXPECT_NO_THROW(CND_DCHECK_ALL_FINITE(m, "clean matrix"));
  m(1, 0) = kInf;
  EXPECT_FALSE(check::all_finite(m));
  EXPECT_THROW(CND_DCHECK_ALL_FINITE(m, "poisoned matrix"), std::logic_error);
}

TEST(Check, EmptyIsVacuouslyFinite) {
  EXPECT_TRUE(check::all_finite(Matrix()));
  EXPECT_TRUE(check::all_finite(std::span<const double>()));
}

#ifdef CND_LIB_HAS_DCHECKS
// Only meaningful when the cnd libraries themselves were compiled with
// CND_DCHECKS=ON (Debug / sanitizer builds): the matmul entry guard must
// reject a poisoned operand before the skip-zero inner loop can mask it.
TEST(Check, MatmulGuardRejectsNanInHardenedBuild) {
  Matrix a(4, 4, 1.0);
  Matrix b(4, 4, 2.0);
  a(2, 2) = kNan;
  EXPECT_THROW(matmul(a, b), std::logic_error);
  EXPECT_THROW(matmul_bt(a, b), std::logic_error);
  EXPECT_THROW(matmul_at(a, b), std::logic_error);
}
#endif

}  // namespace
}  // namespace cnd
