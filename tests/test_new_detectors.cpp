// Unit tests for the extended novelty-detector set: GMM, Mahalanobis,
// kNN-distance, HBOS, and the autoencoder-reconstruction detector.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/ae_detector.hpp"
#include "ml/gmm.hpp"
#include "ml/hbos.hpp"
#include "ml/knn_detector.hpp"
#include "ml/mahalanobis.hpp"
#include "tensor/rng.hpp"

namespace cnd::ml {
namespace {

struct Planted {
  Matrix train, inliers, outliers;
};

Planted make_planted(Rng& rng, std::size_t n_train = 400, std::size_t n_test = 40,
                     std::size_t d = 5, double out_dist = 7.0) {
  Planted p;
  p.train = Matrix(n_train, d);
  for (std::size_t i = 0; i < n_train; ++i)
    for (auto& v : p.train.row(i)) v = rng.normal();
  p.inliers = Matrix(n_test, d);
  for (std::size_t i = 0; i < n_test; ++i)
    for (auto& v : p.inliers.row(i)) v = rng.normal();
  p.outliers = Matrix(n_test, d);
  for (std::size_t i = 0; i < n_test; ++i)
    for (std::size_t j = 0; j < d; ++j)
      p.outliers(i, j) = rng.normal() + (j == 0 ? out_dist : 0.0);
  return p;
}

template <typename ScoreFn>
double separation_auc(ScoreFn&& score, const Planted& p) {
  const auto s_in = score(p.inliers);
  const auto s_out = score(p.outliers);
  std::size_t wins = 0;
  for (double o : s_out)
    for (double i : s_in) wins += (o > i);
  return static_cast<double>(wins) /
         static_cast<double>(s_in.size() * s_out.size());
}

// ---- GMM -------------------------------------------------------------------

TEST(Gmm, SeparatesPlantedOutliers) {
  Rng rng(1);
  Planted p = make_planted(rng);
  Gmm gmm({.n_components = 3});
  gmm.fit(p.train, rng);
  EXPECT_GT(separation_auc([&](const Matrix& x) { return gmm.score(x); }, p), 0.99);
}

TEST(Gmm, RecoversBimodalStructure) {
  // Two far-apart modes: a 2-component GMM should assign each ~half weight
  // and give both modes high likelihood.
  Rng rng(2);
  Matrix x(300, 2);
  for (std::size_t i = 0; i < 300; ++i) {
    const double c = i % 2 == 0 ? -8.0 : 8.0;
    x(i, 0) = rng.normal(c, 1.0);
    x(i, 1) = rng.normal(0.0, 1.0);
  }
  Gmm gmm({.n_components = 2});
  gmm.fit(x, rng);
  EXPECT_NEAR(gmm.weights()[0], 0.5, 0.1);
  // A point between the modes is less likely than points at either mode.
  Matrix probes{{-8, 0}, {0, 0}, {8, 0}};
  const auto ll = gmm.log_likelihood(probes);
  EXPECT_GT(ll[0], ll[1]);
  EXPECT_GT(ll[2], ll[1]);
}

TEST(Gmm, WeightsSumToOne) {
  Rng rng(3);
  Planted p = make_planted(rng);
  Gmm gmm({.n_components = 4});
  gmm.fit(p.train, rng);
  double s = 0.0;
  for (double w : gmm.weights()) s += w;
  EXPECT_NEAR(s, 1.0, 1e-9);
}

TEST(Gmm, RejectsMisuse) {
  Rng rng(4);
  Gmm gmm({.n_components = 10});
  EXPECT_THROW(gmm.fit(Matrix(5, 2), rng), std::invalid_argument);
  EXPECT_THROW(gmm.score(Matrix(1, 2)), std::invalid_argument);
}

// ---- Mahalanobis -----------------------------------------------------------

TEST(Mahalanobis, MatchesAnalyticDistanceOnIsotropicData) {
  // On ~N(0, I) training data the Mahalanobis distance approximates the
  // squared Euclidean norm.
  Rng rng(5);
  Matrix x(2000, 3);
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (auto& v : x.row(i)) v = rng.normal();
  MahalanobisDetector det;
  det.fit(x);
  Matrix probe{{2, 0, 0}, {0, 0, 0}};
  const auto s = det.score(probe);
  EXPECT_NEAR(s[0], 4.0, 0.5);
  EXPECT_NEAR(s[1], 0.0, 0.1);
}

TEST(Mahalanobis, AccountsForCorrelation) {
  // Strongly correlated 2-D data: a point off the correlation line is far
  // in Mahalanobis terms even though it is Euclidean-close.
  Rng rng(6);
  Matrix x(2000, 2);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double t = rng.normal();
    x(i, 0) = t + 0.05 * rng.normal();
    x(i, 1) = t + 0.05 * rng.normal();
  }
  MahalanobisDetector det;
  det.fit(x);
  Matrix probes{{1.0, 1.0}, {1.0, -1.0}};  // on-line vs off-line
  const auto s = det.score(probes);
  EXPECT_GT(s[1], s[0] * 50.0);
}

TEST(Mahalanobis, SeparatesPlantedOutliers) {
  Rng rng(7);
  Planted p = make_planted(rng);
  MahalanobisDetector det;
  det.fit(p.train);
  EXPECT_GT(separation_auc([&](const Matrix& x) { return det.score(x); }, p), 0.99);
}

// ---- kNN distance ----------------------------------------------------------

TEST(KnnDetector, SeparatesPlantedOutliers) {
  Rng rng(8);
  Planted p = make_planted(rng);
  KnnDetector det({.k = 10});
  det.fit(p.train);
  EXPECT_GT(separation_auc([&](const Matrix& x) { return det.score(x); }, p), 0.99);
}

TEST(KnnDetector, KthOnlyGreaterEqualMean) {
  Rng rng(9);
  Planted p = make_planted(rng);
  KnnDetector mean_det({.k = 10, .use_kth_only = false});
  KnnDetector kth_det({.k = 10, .use_kth_only = true});
  mean_det.fit(p.train);
  kth_det.fit(p.train);
  const auto sm = mean_det.score(p.inliers);
  const auto sk = kth_det.score(p.inliers);
  for (std::size_t i = 0; i < sm.size(); ++i) EXPECT_GE(sk[i], sm[i]);
}

TEST(KnnDetector, RejectsTooSmallReference) {
  KnnDetector det({.k = 10});
  EXPECT_THROW(det.fit(Matrix(5, 2)), std::invalid_argument);
}

// ---- HBOS ------------------------------------------------------------------

TEST(Hbos, SeparatesPlantedOutliers) {
  Rng rng(12);
  Planted p = make_planted(rng);
  Hbos det({.n_bins = 15});
  det.fit(p.train);
  EXPECT_GT(separation_auc([&](const Matrix& x) { return det.score(x); }, p), 0.95);
}

TEST(Hbos, OutOfRangeGetsMaxPenalty) {
  Rng rng(11);
  Matrix x(200, 1);
  for (std::size_t i = 0; i < 200; ++i) x(i, 0) = rng.uniform(0.0, 1.0);
  Hbos det;
  det.fit(x);
  Matrix probes{{0.5}, {100.0}};
  const auto s = det.score(probes);
  EXPECT_GT(s[1], s[0]);
}

TEST(Hbos, ScoresFiniteOnConstantFeature) {
  Matrix x(50, 2, 3.0);
  Hbos det;
  det.fit(x);
  for (double v : det.score(x)) EXPECT_TRUE(std::isfinite(v));
}

// ---- Autoencoder detector --------------------------------------------------

TEST(AeDetector, SeparatesPlantedOutliersOnLowRankData) {
  // AE reconstruction needs compressible normal data: rank-2 in 6 dims.
  Rng rng(12);
  Matrix basis(2, 6);
  for (std::size_t i = 0; i < 2; ++i)
    for (auto& v : basis.row(i)) v = rng.normal();
  auto sample = [&](std::size_t n, double off) {
    Matrix z(n, 2);
    for (std::size_t i = 0; i < n; ++i)
      for (auto& v : z.row(i)) v = rng.normal();
    Matrix x = matmul(z, basis);
    for (std::size_t i = 0; i < n; ++i) {
      auto r = x.row(i);
      for (std::size_t j = 0; j < 6; ++j) r[j] += rng.normal(0.0, 0.05) + (j == 5 ? off : 0.0);
    }
    return x;
  };
  Planted p;
  p.train = sample(400, 0.0);
  p.inliers = sample(40, 0.0);
  p.outliers = sample(40, 4.0);

  AeDetector det({.hidden_dim = 64, .latent_dim = 2, .epochs = 80, .lr = 3e-3});
  const double loss = det.fit(p.train);
  EXPECT_LT(loss, 0.5);
  EXPECT_GT(separation_auc([&](const Matrix& x) { return det.score(x); }, p), 0.95);
}

TEST(AeDetector, RejectsMisuse) {
  AeDetector det;
  EXPECT_THROW(det.score(Matrix(1, 3)), std::invalid_argument);
  EXPECT_THROW(det.fit(Matrix(2, 3)), std::invalid_argument);
}

}  // namespace
}  // namespace cnd::ml
