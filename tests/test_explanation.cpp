// Unit tests for FRE feature attribution and logistic regression.
#include <gtest/gtest.h>

#include "core/explanation.hpp"
#include "ml/logistic_regression.hpp"
#include "tensor/rng.hpp"

namespace cnd {
namespace {

TEST(ExplainFre, AttributesThePerturbedFeature) {
  // Normal data lives on a plane in 5-D; perturb feature 4 of one test row
  // far off the plane: the top attribution must be feature 4 with most of
  // the score.
  Rng rng(1);
  Matrix basis(2, 5);
  for (std::size_t i = 0; i < 2; ++i)
    for (auto& v : basis.row(i)) v = rng.normal();
  Matrix z(200, 2);
  for (std::size_t i = 0; i < 200; ++i)
    for (auto& v : z.row(i)) v = rng.normal(0.0, 2.0);
  Matrix train = matmul(z, basis);

  ml::Pca pca({.explained_variance = 0.99});
  pca.fit(train);

  Matrix probe(1, 5);
  probe.set_row(0, train.row(0));
  probe(0, 4) += 10.0;

  const auto attr = core::explain_fre(pca, probe, 3);
  ASSERT_EQ(attr.size(), 1u);
  ASSERT_FALSE(attr[0].empty());
  EXPECT_EQ(attr[0][0].feature, 4u);
  EXPECT_GT(attr[0][0].fraction, 0.5);
}

TEST(ExplainFre, ContributionsSumToScore) {
  Rng rng(2);
  Matrix train(100, 4);
  for (std::size_t i = 0; i < 100; ++i)
    for (auto& v : train.row(i)) v = rng.normal();
  ml::Pca pca({.explained_variance = 0.7});
  pca.fit(train);

  Matrix test(10, 4);
  for (std::size_t i = 0; i < 10; ++i)
    for (auto& v : test.row(i)) v = rng.normal(0.0, 3.0);
  const auto scores = pca.score(test);
  const auto attr = core::explain_fre(pca, test, /*top_k=*/0);
  for (std::size_t i = 0; i < 10; ++i) {
    double sum = 0.0;
    for (const auto& a : attr[i]) sum += a.contribution;
    EXPECT_NEAR(sum, scores[i], 1e-9);
  }
}

TEST(ExplainFre, FormatUsesNamesAndPercents) {
  std::vector<core::FeatureAttribution> attr{
      {.feature = 1, .contribution = 8.0, .fraction = 0.8},
      {.feature = 0, .contribution = 2.0, .fraction = 0.2}};
  const std::string s = core::format_attribution(attr, {"bytes", "pkts"});
  EXPECT_NE(s.find("pkts (80%)"), std::string::npos);
  EXPECT_NE(s.find("bytes (20%)"), std::string::npos);
  const std::string s2 = core::format_attribution(attr);
  EXPECT_NE(s2.find("f1 (80%)"), std::string::npos);
}

TEST(LogisticRegression, LearnsLinearBoundary) {
  Rng rng(3);
  const std::size_t n = 400;
  Matrix x(n, 2);
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = rng.normal();
    y[i] = (x(i, 0) + 2.0 * x(i, 1) > 0.0) ? 1 : 0;
  }
  ml::LogisticRegression lr;
  lr.fit(x, y, rng);
  const auto pred = lr.predict(x);
  std::size_t ok = 0;
  for (std::size_t i = 0; i < n; ++i) ok += (pred[i] == y[i]);
  EXPECT_GT(static_cast<double>(ok) / static_cast<double>(n), 0.97);
  // The learned direction matches (w1 ~ 2 * w0).
  EXPECT_GT(lr.weights()[1] / lr.weights()[0], 1.2);
}

TEST(LogisticRegression, ProbabilitiesBounded) {
  Rng rng(4);
  Matrix x(50, 3);
  std::vector<int> y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    for (auto& v : x.row(i)) v = rng.normal();
    y[i] = rng.bernoulli(0.5) ? 1 : 0;
  }
  ml::LogisticRegression lr({.epochs = 10});
  lr.fit(x, y, rng);
  for (double p : lr.predict_proba(x)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(LogisticRegression, RejectsBadLabels) {
  Rng rng(5);
  ml::LogisticRegression lr;
  EXPECT_THROW(lr.fit(Matrix(2, 2), {0, 2}, rng), std::invalid_argument);
  EXPECT_THROW(lr.predict(Matrix(1, 2)), std::invalid_argument);
}

}  // namespace
}  // namespace cnd
