// Negative snapshot tests across the whole detector registry: a truncated
// stream, another detector's bytes, or a bit-flipped payload must throw
// cleanly from restore() — and must not half-mutate the detector. The
// checksummed envelope (io::binary v2) is what makes the bit-flip sweep
// airtight: the payload is buffered and verified before any member moves.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/detector_factory.hpp"
#include "io/binary.hpp"
#include "tensor/rng.hpp"

namespace cnd {
namespace {

Matrix gaussian(Rng& rng, std::size_t n, std::size_t d, double shift = 0.0) {
  Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < d; ++j)
      x(i, j) = rng.normal(j == 0 ? shift : 0.0, 1.0);
  return x;
}

/// Small-but-real training config so every detector trains in milliseconds.
core::DetectorConfig tiny_cfg(std::uint64_t seed = 17) {
  core::DetectorConfig cfg;
  cfg.seed = seed;
  cfg.cnd.seed = seed;
  cfg.cnd.cfe.hidden_dim = 16;
  cfg.cnd.cfe.latent_dim = 8;
  cfg.cnd.cfe.epochs = 2;
  cfg.cnd.cfe.kmeans_k = 2;
  return cfg;
}

struct Trained {
  std::string name;
  std::string bytes;            // the valid snapshot artifact
  std::vector<double> want;     // scores of the trainer on x_test
};

/// Trains every supports_snapshot() registry detector once and snapshots it.
/// The sweep below runs against this list, so a new snapshot-capable
/// detector is covered the day it lands in the registry.
std::vector<Trained> train_capable(const Matrix& n_clean, const Matrix& stream,
                                   const Matrix& x_test) {
  std::vector<Trained> out;
  for (const std::string& name : core::detector_names()) {
    auto det = core::make_detector(name, tiny_cfg());
    if (!det->supports_snapshot()) continue;
    Matrix seed_x;
    std::vector<int> seed_y;
    det->setup(core::SetupContext{n_clean, seed_x, seed_y});
    det->observe_experience(stream);
    std::ostringstream os(std::ios::binary);
    det->snapshot(os);
    out.push_back({name, std::move(os).str(), det->score(x_test)});
  }
  return out;
}

void expect_restore_throws(const std::string& name, const std::string& bytes) {
  auto replica = core::make_detector(name, tiny_cfg());
  std::istringstream is(bytes, std::ios::binary);
  EXPECT_THROW(replica->restore(is), std::exception) << name;
}

TEST(SnapshotFuzz, Fnv1a64MatchesReferenceVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(io::fnv1a64("", 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(io::fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(io::fnv1a64("foobar", 6), 0x85944171f73967e8ull);
}

TEST(SnapshotFuzz, TruncatedStreamThrowsAtEveryCut) {
  Rng rng(5);
  const Matrix n_clean = gaussian(rng, 96, 6);
  const Matrix stream = gaussian(rng, 64, 6, 0.5);
  const Matrix x_test = gaussian(rng, 48, 6, 2.0);
  const auto capable = train_capable(n_clean, stream, x_test);
  ASSERT_GE(capable.size(), 2u);  // CND-IDS and Adaptive at minimum

  for (const Trained& t : capable) {
    ASSERT_GT(t.bytes.size(), 16u) << t.name;
    // Cuts through every region: empty, mid-header, mid-tag, mid-payload,
    // and one byte short of complete (drops into the checksum field).
    const std::size_t cuts[] = {0, 3, 11, t.bytes.size() / 2,
                                t.bytes.size() - 1};
    for (const std::size_t cut : cuts) {
      SCOPED_TRACE(t.name + " cut at " + std::to_string(cut));
      expect_restore_throws(t.name, t.bytes.substr(0, cut));
    }
  }
}

TEST(SnapshotFuzz, WrongDetectorTagThrowsForEveryPair) {
  Rng rng(6);
  const Matrix n_clean = gaussian(rng, 96, 6);
  const Matrix stream = gaussian(rng, 64, 6, 0.5);
  const Matrix x_test = gaussian(rng, 48, 6, 2.0);
  const auto capable = train_capable(n_clean, stream, x_test);
  ASSERT_GE(capable.size(), 2u);

  for (const Trained& src : capable)
    for (const Trained& dst : capable) {
      if (src.name == dst.name) continue;
      SCOPED_TRACE(src.name + " bytes into " + dst.name);
      expect_restore_throws(dst.name, src.bytes);
    }
}

TEST(SnapshotFuzz, BitFlippedPayloadThrowsEverywhere) {
  Rng rng(7);
  const Matrix n_clean = gaussian(rng, 96, 6);
  const Matrix stream = gaussian(rng, 64, 6, 0.5);
  const Matrix x_test = gaussian(rng, 48, 6, 2.0);
  const auto capable = train_capable(n_clean, stream, x_test);
  ASSERT_GE(capable.size(), 2u);

  for (const Trained& t : capable) {
    // A single flipped bit anywhere — header, tag, length, payload, or
    // checksum — must be rejected. Stride keeps the sweep fast while still
    // hitting every field of the envelope.
    for (std::size_t pos = 0; pos < t.bytes.size(); pos += 7) {
      std::string corrupt = t.bytes;
      corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x10);
      SCOPED_TRACE(t.name + " flip at byte " + std::to_string(pos));
      expect_restore_throws(t.name, corrupt);
    }
  }
}

TEST(SnapshotFuzz, FailedRestoreDoesNotClobberAReplica) {
  Rng rng(8);
  const Matrix n_clean = gaussian(rng, 96, 6);
  const Matrix stream = gaussian(rng, 64, 6, 0.5);
  const Matrix x_test = gaussian(rng, 48, 6, 2.0);
  const auto capable = train_capable(n_clean, stream, x_test);
  ASSERT_GE(capable.size(), 2u);

  for (const Trained& t : capable) {
    auto replica = core::make_detector(t.name, tiny_cfg());
    {
      std::istringstream is(t.bytes, std::ios::binary);
      replica->restore(is);
    }
    // A later corrupt restore throws before touching any member, so the
    // replica keeps serving the state it had.
    std::string corrupt = t.bytes;
    corrupt[corrupt.size() / 2] = static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x04);
    std::istringstream is(corrupt, std::ios::binary);
    EXPECT_THROW(replica->restore(is), std::exception) << t.name;
    EXPECT_EQ(replica->score(x_test), t.want) << t.name;
  }
}

}  // namespace
}  // namespace cnd
