// Serving layer tests: flow-record files, the admission queue, artifact
// snapshot/restore byte-identity, and hot-swap under load (docs/SERVING.md).
#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <sstream>
#include <thread>

#include "core/detector_factory.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/artifact.hpp"
#include "serve/flow_record.hpp"
#include "serve/ring_buffer.hpp"
#include "serve/service.hpp"
#include "tensor/rng.hpp"

namespace cnd {
namespace {

Matrix gaussian(Rng& rng, std::size_t n, std::size_t d, double shift = 0.0) {
  Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < d; ++j)
      x(i, j) = rng.normal(j == 0 ? shift : 0.0, 1.0);
  return x;
}

/// Small-but-real training config so every test trains in milliseconds.
core::DetectorConfig tiny_cfg(std::uint64_t seed = 11) {
  core::DetectorConfig cfg;
  cfg.seed = seed;
  cfg.cnd.seed = seed;
  cfg.cnd.cfe.hidden_dim = 16;
  cfg.cnd.cfe.latent_dim = 8;
  cfg.cnd.cfe.epochs = 2;
  cfg.cnd.cfe.kmeans_k = 2;
  return cfg;
}

void expect_bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]), std::bit_cast<std::uint64_t>(b[i]))
        << "score " << i << " differs: " << a[i] << " vs " << b[i];
}

// ---- FlowRecordFile / FlowRecordWriter --------------------------------------

TEST(FlowRecord, RoundTripsThroughFile) {
  Rng rng(1);
  const Matrix x = gaussian(rng, 37, 5);
  const std::string path = "test_flow_record.bin";
  {
    serve::FlowRecordWriter w(path, 5);
    w.append(x);
    EXPECT_EQ(w.rows_written(), 37u);
    w.close();
  }
  serve::FlowRecordFile f(path);
  EXPECT_EQ(f.rows(), 37u);
  EXPECT_EQ(f.dim(), 5u);
  // The payload is float32: reading back widens the narrowed value exactly.
  for (std::size_t i = 0; i < f.rows(); ++i) {
    const auto row = f.row(i);
    for (std::size_t j = 0; j < f.dim(); ++j)
      EXPECT_EQ(static_cast<double>(row[j]),
                static_cast<double>(static_cast<float>(x(i, j))));
  }
  Matrix batch;
  f.copy_rows_into(10, 20, batch);
  ASSERT_EQ(batch.rows(), 10u);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_EQ(batch(i, 3), static_cast<double>(f.row(10 + i)[3]));
  std::remove(path.c_str());
}

TEST(FlowRecord, RejectsGarbageAndTruncation) {
  const std::string path = "test_flow_bad.bin";
  {
    std::FILE* fp = std::fopen(path.c_str(), "wb");
    ASSERT_NE(fp, nullptr);
    std::fputs("not a flow record at all........", fp);
    std::fclose(fp);
  }
  EXPECT_THROW(serve::FlowRecordFile{path}, std::invalid_argument);
  std::remove(path.c_str());
  EXPECT_THROW(serve::FlowRecordFile{"no_such_file.bin"}, std::runtime_error);
}

TEST(FlowRecord, WriterRejectsMismatchedWidth) {
  serve::FlowRecordWriter w("test_flow_w.bin", 4);
  Rng rng(2);
  EXPECT_THROW(w.append(gaussian(rng, 3, 5)), std::invalid_argument);
  w.close();
  std::remove("test_flow_w.bin");
}

// ---- RingBuffer -------------------------------------------------------------

TEST(RingBuffer, RejectsWhenFullNeverBlocks) {
  serve::RingBuffer<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: reject, do not block
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_TRUE(q.try_push(3));  // slot freed
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(RingBuffer, CloseDrainsThenSignalsShutdown) {
  serve::RingBuffer<int> q(4);
  EXPECT_TRUE(q.try_push(7));
  q.close();
  EXPECT_FALSE(q.try_push(8));        // closed: no more admissions
  EXPECT_EQ(q.pop().value(), 7);      // existing items drain
  EXPECT_FALSE(q.pop().has_value());  // then shutdown
}

TEST(RingBuffer, PopBlocksUntilPush) {
  serve::RingBuffer<int> q(1);
  std::thread consumer([&] { EXPECT_EQ(q.pop().value(), 42); });
  EXPECT_TRUE(q.try_push(42));
  consumer.join();
}

TEST(RingBuffer, CapacityOneAlternatesPushPop) {
  serve::RingBuffer<int> q(1);
  EXPECT_EQ(q.capacity(), 1u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.try_push(i));
    EXPECT_FALSE(q.try_push(i + 100));  // a single slot: second push rejects
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.pop().value(), i);
    EXPECT_EQ(q.size(), 0u);
  }
}

TEST(RingBuffer, FullWraparoundPreservesFifoOrder) {
  // Interleave pushes and pops so head_ crosses the index wrap several
  // times; FIFO order must hold throughout.
  serve::RingBuffer<int> q(3);
  int next = 0, expect = 0;
  for (int round = 0; round < 4; ++round) {
    while (q.try_push(next)) ++next;  // fill to capacity
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop().value(), expect++);  // free one slot across the wrap
    EXPECT_EQ(q.pop().value(), expect++);
    EXPECT_TRUE(q.try_push(next++));  // re-admit into the wrapped slot
  }
  while (q.size() > 0) EXPECT_EQ(q.pop().value(), expect++);
  EXPECT_EQ(next, expect);  // every admitted item came out, in order
}

TEST(RingBuffer, TryPushAfterDrainingClosedBufferStillRejects) {
  serve::RingBuffer<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  q.close();
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());  // drained + closed: shutdown signal
  // Capacity is available again, but closed wins: admission stays shut.
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size(), 0u);
}

// ---- Snapshot/restore byte-identity across the registry ---------------------

// Every snapshot-capable registry detector must restore to a replica that
// scores byte-identically at any thread count; every other detector must
// refuse loudly. This test IS the registry-coverage sweep: a new detector
// either lands in the capable set and round-trips, or throws.
TEST(Snapshot, RegistryRoundTripsByteIdenticalAt1And4Threads) {
  Rng rng(3);
  const Matrix n_clean = gaussian(rng, 96, 6);
  const Matrix stream = gaussian(rng, 64, 6, 0.5);
  const Matrix x_test = gaussian(rng, 48, 6, 2.0);

  std::size_t capable = 0;
  for (const std::string& name : core::detector_names()) {
    auto det = core::make_detector(name, tiny_cfg());
    if (!det->supports_snapshot()) {
      std::ostringstream os;
      EXPECT_THROW(det->snapshot(os), std::logic_error) << name;
      continue;
    }
    ++capable;
    Matrix seed_x;
    std::vector<int> seed_y;
    det->setup(core::SetupContext{n_clean, seed_x, seed_y});
    det->observe_experience(stream);
    const std::vector<double> want = det->score(x_test);

    std::ostringstream os(std::ios::binary);
    det->snapshot(os);
    const std::string bytes = std::move(os).str();

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      runtime::set_threads(threads);
      auto replica = core::make_detector(name, tiny_cfg());
      std::istringstream is(bytes, std::ios::binary);
      replica->restore(is);
      expect_bits_equal(want, replica->score(x_test));
      // A replica's own snapshot reproduces the artifact bit-for-bit:
      // snapshot ∘ restore is idempotent.
      std::ostringstream os2(std::ios::binary);
      replica->snapshot(os2);
      EXPECT_EQ(bytes, std::move(os2).str()) << name;
    }
    runtime::set_threads(0);
  }
  EXPECT_GE(capable, 2u);  // CND-IDS and Adaptive at minimum
}

TEST(Snapshot, RestoredReplicaIsInferenceOnly) {
  Rng rng(4);
  const Matrix n_clean = gaussian(rng, 96, 6);
  auto det = core::make_detector("CND-IDS", tiny_cfg());
  Matrix seed_x;
  std::vector<int> seed_y;
  det->setup(core::SetupContext{n_clean, seed_x, seed_y});
  det->observe_experience(n_clean);

  const auto artifact = serve::make_artifact(1, "CND-IDS", 0.5, *det);
  auto replica = serve::restore_replica(*artifact, tiny_cfg());
  EXPECT_THROW(replica->observe_experience(n_clean), std::logic_error);
  // The trainer that produced the snapshot keeps training.
  EXPECT_NO_THROW(det->observe_experience(n_clean));
}

TEST(Snapshot, ArtifactFileRoundTrip) {
  Rng rng(5);
  const Matrix n_clean = gaussian(rng, 96, 6);
  auto det = core::make_detector("Adaptive", tiny_cfg());
  Matrix seed_x;
  std::vector<int> seed_y;
  det->setup(core::SetupContext{n_clean, seed_x, seed_y});
  det->observe_experience(n_clean);

  const auto artifact = serve::make_artifact(3, "Adaptive", 1.25, *det);
  const std::string path = "test_artifact.bin";
  serve::save_artifact(path, *artifact);
  const serve::ServingArtifact loaded = serve::load_artifact(path);
  EXPECT_EQ(loaded.version, 3u);
  EXPECT_EQ(loaded.detector, "Adaptive");
  EXPECT_EQ(loaded.threshold, 1.25);
  EXPECT_EQ(loaded.model_bytes, artifact->model_bytes);

  const Matrix x_test = gaussian(rng, 32, 6, 1.0);
  expect_bits_equal(det->score(x_test),
                    serve::restore_replica(loaded, tiny_cfg())->score(x_test));
  std::remove(path.c_str());
}

// ---- ScoringService ---------------------------------------------------------

serve::ServiceConfig tiny_service(std::size_t shards, std::size_t adapt_every = 0) {
  serve::ServiceConfig cfg;
  cfg.detector = "CND-IDS";
  cfg.detector_cfg = tiny_cfg();
  cfg.shards = shards;
  cfg.queue_capacity = 4;
  cfg.adapt_interval_flows = adapt_every;
  cfg.release_scored_inputs = false;
  return cfg;
}

TEST(ScoringService, SubmitBeforeBootstrapThrows) {
  serve::ScoringService svc(tiny_service(1));
  EXPECT_THROW(svc.try_submit(Matrix(4, 6, 0.0)), std::logic_error);
}

TEST(ScoringService, RejectsNonSnapshotDetector) {
  serve::ServiceConfig cfg = tiny_service(1);
  cfg.detector = "PCA";
  serve::ScoringService svc(cfg);
  Rng rng(6);
  EXPECT_THROW(svc.bootstrap(gaussian(rng, 96, 6)), std::invalid_argument);
}

/// Run `n_batches` batches through a service and return the concatenated
/// scores (admission order). Retries rejected submissions so the scored set
/// is the full stream regardless of queue pressure.
std::vector<double> run_service(const serve::ServiceConfig& cfg,
                                const Matrix& n_clean,
                                const std::vector<Matrix>& batches) {
  serve::ScoringService svc(cfg);
  svc.bootstrap(n_clean);
  for (const Matrix& b : batches)
    while (!svc.try_submit(b)) std::this_thread::yield();
  svc.drain();
  svc.shutdown();
  std::vector<double> scores;
  for (const auto& r : svc.results())
    scores.insert(scores.end(), r.scores.begin(), r.scores.end());
  return scores;
}

TEST(ScoringService, ScoresMatchTrainerWithoutAdaptation) {
  Rng rng(7);
  const Matrix n_clean = gaussian(rng, 96, 6);
  std::vector<Matrix> batches;
  for (int b = 0; b < 6; ++b) batches.push_back(gaussian(rng, 32, 6, 0.8));

  // Reference: the never-swapped detector, trained exactly like the
  // service's trainer and scoring the same batches directly.
  auto ref = core::make_detector("CND-IDS", tiny_cfg());
  Matrix seed_x;
  std::vector<int> seed_y;
  ref->setup(core::SetupContext{n_clean, seed_x, seed_y});
  ref->observe_experience(n_clean);
  std::vector<double> want;
  for (const Matrix& b : batches) {
    const auto s = ref->score(b);
    want.insert(want.end(), s.begin(), s.end());
  }

  expect_bits_equal(want, run_service(tiny_service(1), n_clean, batches));
  expect_bits_equal(want, run_service(tiny_service(3), n_clean, batches));
}

TEST(ScoringService, ShardCountNeverChangesScoresUnderHotSwap) {
  Rng rng(8);
  const Matrix n_clean = gaussian(rng, 96, 6);
  std::vector<Matrix> batches;
  for (int b = 0; b < 10; ++b) batches.push_back(gaussian(rng, 32, 6, 0.5));

  // Adaptation every 96 admitted flows: several hot swaps mid-stream.
  const auto one = run_service(tiny_service(1, 96), n_clean, batches);
  const auto four = run_service(tiny_service(4, 96), n_clean, batches);
  expect_bits_equal(one, four);
}

TEST(ScoringService, AdaptationPublishesNewVersionsAndSwapsReplicas) {
  Rng rng(9);
  const Matrix n_clean = gaussian(rng, 96, 6);
  serve::ScoringService svc(tiny_service(2, 64));
  svc.bootstrap(n_clean);
  EXPECT_EQ(svc.artifact_version(), 1u);
  for (int b = 0; b < 8; ++b) {
    const Matrix batch = gaussian(rng, 32, 6, 0.3);
    while (!svc.try_submit(batch)) std::this_thread::yield();
  }
  svc.drain();
  svc.shutdown();
  EXPECT_EQ(svc.adaptations(), 4u);  // 256 flows / 64 per round
  EXPECT_EQ(svc.artifact_version(), 5u);
  // Batches carry versions v1..v4 (v5 is published after the last batch),
  // and loading each version some worker actually scores with is a swap.
  // Which shard pops which batch is timing, so only the single-worker floor
  // is guaranteed: one shard consuming everything swaps exactly 4 times.
  EXPECT_GE(svc.swaps(), 4u);
  EXPECT_EQ(svc.flows_admitted(), 256u);
  ASSERT_EQ(svc.results().size(), 8u);
  for (const auto& r : svc.results()) EXPECT_EQ(r.scores.size(), 32u);
}

// Hot-swap under sustained load: small queue, real backpressure, several
// adaptation rounds, four shards swapping replicas while scoring. The TSan
// CI job runs this binary; any producer/worker race surfaces here.
TEST(ScoringService, HotSwapUnderLoadIsRaceFree) {
  Rng rng(10);
  const Matrix n_clean = gaussian(rng, 96, 6);
  serve::ServiceConfig cfg = tiny_service(4, 128);
  cfg.queue_capacity = 2;
  cfg.release_scored_inputs = true;
  serve::ScoringService svc(cfg);
  svc.bootstrap(n_clean);
  std::size_t rejected_retries = 0;
  for (int b = 0; b < 24; ++b) {
    const Matrix batch = gaussian(rng, 32, 6, 0.4);
    while (!svc.try_submit(batch)) {
      ++rejected_retries;
      std::this_thread::yield();
    }
  }
  svc.drain();
  svc.shutdown();
  EXPECT_EQ(svc.flows_admitted(), 24u * 32u);
  EXPECT_EQ(svc.rejected(), rejected_retries);
  EXPECT_EQ(svc.adaptations(), 6u);
  for (const auto& r : svc.results()) {
    ASSERT_EQ(r.scores.size(), 32u);
    ASSERT_EQ(r.verdicts.size(), 32u);
    EXPECT_EQ(r.input.rows(), 0u);  // released after scoring
  }
}

}  // namespace
}  // namespace cnd
