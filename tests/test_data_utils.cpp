// Unit tests for the data utilities: drift injection, replay buffer,
// contamination / label-noise.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "data/contamination.hpp"
#include "data/drift.hpp"
#include "data/replay_buffer.hpp"
#include "tensor/rng.hpp"

namespace cnd::data {
namespace {

Matrix zeros(std::size_t n, std::size_t d) { return Matrix(n, d); }

// ---- drift -----------------------------------------------------------------

TEST(Drift, SuddenProfileIsStep) {
  DriftSpec s{.kind = DriftKind::kSudden, .start_frac = 0.5};
  EXPECT_EQ(drift_profile(s, 0.0), 0.0);
  EXPECT_EQ(drift_profile(s, 0.49), 0.0);
  EXPECT_EQ(drift_profile(s, 0.5), 1.0);
  EXPECT_EQ(drift_profile(s, 1.0), 1.0);
}

TEST(Drift, GradualProfileRamps) {
  DriftSpec s{.kind = DriftKind::kGradual, .start_frac = 0.5};
  EXPECT_EQ(drift_profile(s, 0.25), 0.0);
  EXPECT_NEAR(drift_profile(s, 0.75), 0.5, 1e-12);
  EXPECT_NEAR(drift_profile(s, 1.0), 1.0, 1e-12);
}

TEST(Drift, RecurringProfileAlternates) {
  DriftSpec s{.kind = DriftKind::kRecurring, .period_frac = 0.25};
  EXPECT_EQ(drift_profile(s, 0.1), 0.0);
  EXPECT_EQ(drift_profile(s, 0.3), 1.0);
  EXPECT_EQ(drift_profile(s, 0.6), 0.0);
  EXPECT_EQ(drift_profile(s, 0.8), 1.0);
}

TEST(Drift, InjectMagnitudeAndDeterminism) {
  Matrix x = zeros(100, 6);
  DriftSpec s{.kind = DriftKind::kSudden, .magnitude = 3.0, .start_frac = 0.5};
  Matrix a = inject_drift(x, s);
  Matrix b = inject_drift(x, s);
  // Deterministic direction.
  for (std::size_t j = 0; j < 6; ++j) EXPECT_EQ(a(99, j), b(99, j));
  // Pre-drift rows untouched; post-drift rows moved by exactly `magnitude`.
  double pre = 0.0, post = 0.0;
  for (double v : a.row(0)) pre += v * v;
  for (double v : a.row(99)) post += v * v;
  EXPECT_EQ(pre, 0.0);
  EXPECT_NEAR(std::sqrt(post), 3.0, 1e-9);
}

// ---- replay buffer ----------------------------------------------------------

TEST(ReplayBuffer, FillsToCapacityThenHoldsSize) {
  ReplayBuffer buf(10);
  Matrix batch(7, 3, 1.0);
  buf.add(batch);
  EXPECT_EQ(buf.size(), 7u);
  buf.add(batch);
  EXPECT_EQ(buf.size(), 10u);
  buf.add(batch);
  EXPECT_EQ(buf.size(), 10u);
  EXPECT_EQ(buf.seen(), 21u);
}

TEST(ReplayBuffer, ReservoirIsApproximatelyUniform) {
  // Stream 1000 rows whose first feature is their index; with capacity 100
  // the mean kept index should be near the stream middle, not its start.
  ReplayBuffer buf(100, 99);
  for (std::size_t i = 0; i < 1000; ++i) {
    Matrix one(1, 1);
    one(0, 0) = static_cast<double>(i);
    buf.add(one);
  }
  double mean = 0.0;
  for (std::size_t i = 0; i < buf.size(); ++i) mean += buf.data()(i, 0);
  mean /= static_cast<double>(buf.size());
  EXPECT_NEAR(mean, 500.0, 120.0);
}

TEST(ReplayBuffer, SampleSizesClamped) {
  ReplayBuffer buf(5);
  buf.add(Matrix(3, 2, 1.0));
  Rng rng(1);
  EXPECT_EQ(buf.sample(10, rng).rows(), 3u);
  EXPECT_EQ(buf.sample(2, rng).rows(), 2u);
}

TEST(ReplayBuffer, RejectsMisuse) {
  EXPECT_THROW(ReplayBuffer(0), std::invalid_argument);
  ReplayBuffer buf(4);
  Rng rng(2);
  EXPECT_THROW(buf.sample(1, rng), std::invalid_argument);  // empty
  buf.add(Matrix(2, 3, 0.0));
  EXPECT_THROW(buf.add(Matrix(1, 2, 0.0)), std::invalid_argument);  // width
}

// ---- contamination ----------------------------------------------------------

TEST(Contaminate, ReplacesRequestedFraction) {
  Rng rng(3);
  Matrix clean(100, 2, 0.0);
  Matrix attacks(10, 2, 9.0);
  std::vector<std::size_t> poisoned;
  Matrix out = contaminate(clean, attacks, 0.2, rng, &poisoned);
  EXPECT_EQ(poisoned.size(), 20u);
  std::size_t changed = 0;
  for (std::size_t i = 0; i < out.rows(); ++i) changed += (out(i, 0) == 9.0);
  EXPECT_EQ(changed, 20u);
  // Poisoned indices are distinct.
  std::set<std::size_t> uniq(poisoned.begin(), poisoned.end());
  EXPECT_EQ(uniq.size(), poisoned.size());
}

TEST(Contaminate, ZeroFractionIsIdentity) {
  Rng rng(4);
  Matrix clean(20, 2, 1.5);
  Matrix attacks(5, 2, 9.0);
  Matrix out = contaminate(clean, attacks, 0.0, rng);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(out(i, 0), 1.5);
}

TEST(FlipLabels, FlipsExactCount) {
  Rng rng(5);
  std::vector<int> y(50, 0);
  auto flipped = flip_labels(y, 0.2, rng);
  std::size_t ones = 0;
  for (int v : flipped) ones += (v == 1);
  EXPECT_EQ(ones, 10u);
  EXPECT_THROW(flip_labels({2, 0}, 1.0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace cnd::data
