// Unit tests for loss functions, including finite-difference checks of the
// triplet-margin gradient (the heart of the cluster-separation loss).
#include "nn/losses.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cnd::nn {
namespace {

TEST(MseLoss, KnownValueAndGrad) {
  Matrix pred{{1, 2}, {3, 4}};
  Matrix target{{0, 2}, {3, 2}};
  LossGrad lg = mse_loss(pred, target);
  // Squared diffs: 1, 0, 0, 4 -> mean 1.25.
  EXPECT_DOUBLE_EQ(lg.loss, 1.25);
  // grad = 2*(pred-target)/n.
  EXPECT_DOUBLE_EQ(lg.grad(0, 0), 2.0 * 1.0 / 4.0);
  EXPECT_DOUBLE_EQ(lg.grad(1, 1), 2.0 * 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(lg.grad(0, 1), 0.0);
}

TEST(MseLoss, ZeroAtIdentity) {
  Matrix a{{1, 2, 3}};
  LossGrad lg = mse_loss(a, a);
  EXPECT_DOUBLE_EQ(lg.loss, 0.0);
}

TEST(TripletLoss, ZeroWhenSeparated) {
  // Two well-separated classes, margin small: loss should be ~0.
  Matrix emb{{0, 0}, {0.1, 0}, {100, 0}, {100.1, 0}};
  std::vector<int> labels{0, 0, 1, 1};
  Rng rng(1);
  LossGrad lg = triplet_margin_loss(emb, labels, 0.5, rng, 64);
  EXPECT_DOUBLE_EQ(lg.loss, 0.0);
  EXPECT_DOUBLE_EQ(frobenius_sq(lg.grad), 0.0);
}

TEST(TripletLoss, PositiveWhenInterleaved) {
  Matrix emb{{0, 0}, {1, 0}, {0.5, 0}, {1.5, 0}};
  std::vector<int> labels{0, 0, 1, 1};
  Rng rng(2);
  LossGrad lg = triplet_margin_loss(emb, labels, 1.0, rng, 128);
  EXPECT_GT(lg.loss, 0.0);
  EXPECT_GT(frobenius_sq(lg.grad), 0.0);
}

TEST(TripletLoss, SingleClassReturnsZero) {
  Matrix emb{{0, 0}, {1, 0}, {2, 0}};
  std::vector<int> labels{0, 0, 0};
  Rng rng(3);
  LossGrad lg = triplet_margin_loss(emb, labels, 1.0, rng, 32);
  EXPECT_DOUBLE_EQ(lg.loss, 0.0);
}

TEST(TripletLoss, GradientMatchesFiniteDifference) {
  Rng init(4);
  const std::size_t n = 6, d = 3;
  Matrix emb(n, d);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < d; ++j) emb(i, j) = init.normal();
  std::vector<int> labels{0, 0, 0, 1, 1, 1};

  // The loss is stochastic in its triplet sampling; use identical rng seeds
  // per evaluation so the sampled triplets match across perturbations.
  auto eval = [&](const Matrix& e) {
    Rng rng(77);
    return triplet_margin_loss(e, labels, 1.0, rng, 64);
  };
  LossGrad base = eval(emb);
  ASSERT_GT(base.loss, 0.0);

  const double h = 1e-6;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      Matrix ep = emb, em = emb;
      ep(i, j) += h;
      em(i, j) -= h;
      const double numeric = (eval(ep).loss - eval(em).loss) / (2.0 * h);
      EXPECT_NEAR(base.grad(i, j), numeric, 1e-5)
          << "embedding (" << i << "," << j << ")";
    }
  }
}

TEST(TripletLoss, RejectsBadArgs) {
  Matrix emb{{0, 0}};
  Rng rng(5);
  EXPECT_THROW(triplet_margin_loss(emb, {0, 1}, 1.0, rng, 8), std::invalid_argument);
  EXPECT_THROW(triplet_margin_loss(emb, {0}, 0.0, rng, 8), std::invalid_argument);
}

TEST(SoftmaxCrossEntropy, KnownValues) {
  // Logits strongly favoring the correct class -> small loss.
  Matrix logits{{10, 0}, {0, 10}};
  std::vector<std::size_t> labels{0, 1};
  LossGrad lg = softmax_cross_entropy(logits, labels);
  EXPECT_LT(lg.loss, 1e-3);

  // Uniform logits -> loss = log(2).
  Matrix uniform{{0, 0}};
  LossGrad lg2 = softmax_cross_entropy(uniform, {0});
  EXPECT_NEAR(lg2.loss, std::log(2.0), 1e-12);
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifference) {
  Rng rng(6);
  Matrix logits(4, 3);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 3; ++j) logits(i, j) = rng.normal();
  std::vector<std::size_t> labels{0, 1, 2, 1};
  LossGrad base = softmax_cross_entropy(logits, labels);
  const double h = 1e-6;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      Matrix lp = logits, lm = logits;
      lp(i, j) += h;
      lm(i, j) -= h;
      const double numeric = (softmax_cross_entropy(lp, labels).loss -
                              softmax_cross_entropy(lm, labels).loss) /
                             (2.0 * h);
      EXPECT_NEAR(base.grad(i, j), numeric, 1e-6);
    }
  }
}

TEST(SoftmaxCrossEntropy, RejectsOutOfRangeLabel) {
  Matrix logits{{0, 0}};
  EXPECT_THROW(softmax_cross_entropy(logits, {2}), std::invalid_argument);
}

}  // namespace
}  // namespace cnd::nn
