// Integration tests: the full experiment protocol end to end on a small
// synthetic dataset, for CND-IDS, both UCL baselines, and a static scorer.
#include "core/experience_runner.hpp"

#include <gtest/gtest.h>

#include "baselines/adcn.hpp"
#include "baselines/lwf.hpp"
#include "core/cnd_ids.hpp"
#include "data/synth.hpp"
#include "ml/pca.hpp"

namespace cnd::core {
namespace {

data::ExperienceSet small_experience_set(std::uint64_t seed = 3) {
  data::SynthSpec spec;
  spec.name = "tiny";
  spec.n_features = 12;
  spec.n_normal = 1200;
  spec.n_attack = 600;
  spec.n_attack_classes = 4;
  spec.seed = seed;
  const data::Dataset ds = data::make_synthetic(spec);
  return data::prepare_experiences(ds, {.n_experiences = 4, .seed = seed});
}

CndIdsConfig fast_cnd() {
  CndIdsConfig c;
  c.cfe.hidden_dim = 32;
  c.cfe.latent_dim = 8;
  c.cfe.epochs = 4;
  c.cfe.kmeans_k = 4;
  return c;
}

TEST(Runner, CndIdsFullProtocol) {
  auto es = small_experience_set();
  CndIds det(fast_cnd());
  RunResult res = run_protocol(det, es);

  EXPECT_EQ(res.detector_name, "CND-IDS");
  EXPECT_EQ(res.dataset_name, "tiny");
  EXPECT_TRUE(res.has_pr_auc);
  EXPECT_GT(res.fit_ms_total, 0.0);
  EXPECT_GT(res.infer_ms_per_sample, 0.0);

  // Every matrix entry is a valid F1 / PR-AUC.
  for (std::size_t i = 0; i < es.size(); ++i)
    for (std::size_t j = 0; j < es.size(); ++j) {
      EXPECT_GE(res.f1.get(i, j), 0.0);
      EXPECT_LE(res.f1.get(i, j), 1.0);
      EXPECT_GE(res.pr_auc.get(i, j), 0.0);
      EXPECT_LE(res.pr_auc.get(i, j), 1.0);
    }
  // On this easy synthetic problem the method should do clearly better than
  // chance on the current experience.
  EXPECT_GT(res.avg(), 0.5);
}

TEST(Runner, BaselinesCompleteProtocol) {
  auto es = small_experience_set(5);
  baselines::AdcnConfig ac;
  ac.hidden_dim = 32;
  ac.latent_dim = 8;
  ac.epochs = 3;
  ac.init_k = 4;
  baselines::Adcn adcn(ac);
  RunResult ra = run_protocol(adcn, es);
  EXPECT_FALSE(ra.has_pr_auc);
  EXPECT_GE(ra.avg(), 0.0);

  baselines::LwfConfig lc;
  lc.hidden_dim = 32;
  lc.latent_dim = 8;
  lc.epochs = 3;
  lc.k = 4;
  baselines::Lwf lwf(lc);
  RunResult rl = run_protocol(lwf, es);
  EXPECT_FALSE(rl.has_pr_auc);
  EXPECT_GE(rl.avg(), 0.0);
}

TEST(Runner, StaticScorerBroadcastsAcrossRows) {
  auto es = small_experience_set(7);
  ml::Pca pca({.explained_variance = 0.95});
  pca.fit(es.n_clean);
  RunResult res = run_static_scorer(
      "PCA", [&](const Matrix& x) { return pca.score(x); }, es);

  // Static model: every row of the matrix identical.
  for (std::size_t j = 0; j < es.size(); ++j)
    for (std::size_t i = 1; i < es.size(); ++i)
      EXPECT_DOUBLE_EQ(res.f1.get(i, j), res.f1.get(0, j));
  EXPECT_DOUBLE_EQ(res.f1.bwd_transfer(), 0.0);  // frozen model never forgets
}

TEST(Runner, CndIdsBeatsStaticPcaOnDriftingStream) {
  // The headline claim at miniature scale: on a drifting stream with new
  // attack families per experience, continual CND-IDS should not lose to a
  // frozen PCA on raw features, on the current-experience average.
  auto es = small_experience_set(20);
  CndIds det(fast_cnd());
  RunResult cnd = run_protocol(det, es);

  ml::Pca pca({.explained_variance = 0.95});
  pca.fit(es.n_clean);
  RunResult stat = run_static_scorer(
      "PCA", [&](const Matrix& x) { return pca.score(x); }, es);

  EXPECT_GT(cnd.avg() + 0.05, stat.avg());
}

TEST(Runner, ReplayAndEwcVariantsCompleteProtocol) {
  auto es = small_experience_set(17);
  for (core::ClMode mode : {core::ClMode::kReplay, core::ClMode::kEwc}) {
    CndIdsConfig cfg = fast_cnd();
    cfg.cfe.cl_mode = mode;
    cfg.cfe.replay_capacity = 128;
    CndIds det(cfg);
    RunResult res = run_protocol(det, es);
    EXPECT_GT(res.avg(), 0.4);
    for (std::size_t i = 0; i < es.size(); ++i)
      for (std::size_t j = 0; j < es.size(); ++j) {
        EXPECT_GE(res.f1.get(i, j), 0.0);
        EXPECT_LE(res.f1.get(i, j), 1.0);
      }
  }
}

TEST(Runner, RejectsTooFewExperiences) {
  auto es = small_experience_set(13);
  es.experiences.resize(1);
  CndIds det(fast_cnd());
  EXPECT_THROW(run_protocol(det, es), std::invalid_argument);
}

}  // namespace
}  // namespace cnd::core
