// Unit tests for the drift detectors and the streaming CND-IDS wrapper.
#include <gtest/gtest.h>

#include "core/streaming_cnd_ids.hpp"
#include "ml/drift_detector.hpp"
#include "tensor/rng.hpp"

namespace cnd {
namespace {

// ---- Page-Hinkley -----------------------------------------------------------

// Page-Hinkley consumes low-variance statistics (the streaming wrapper feeds
// it batch means); lambda is calibrated against that scale.

TEST(PageHinkley, SilentOnStationaryStream) {
  Rng rng(1);
  ml::PageHinkley ph(0.05, 50.0);
  for (int i = 0; i < 5000; ++i) EXPECT_FALSE(ph.update(rng.normal(0.0, 0.1)));
}

TEST(PageHinkley, DetectsUpwardShift) {
  Rng rng(2);
  ml::PageHinkley ph(0.05, 20.0);
  for (int i = 0; i < 200; ++i) ASSERT_FALSE(ph.update(rng.normal(0.0, 0.1)));
  bool fired = false;
  for (int i = 0; i < 300 && !fired; ++i) fired = ph.update(rng.normal(2.0, 0.1));
  EXPECT_TRUE(fired);
}

TEST(PageHinkley, ResetsAfterSignal) {
  // PH measures shifts relative to the stream's own history: establish a
  // baseline, then shift; after the alarm the detector state is fresh.
  Rng rng(3);
  ml::PageHinkley ph(0.0, 5.0, 8);
  for (int i = 0; i < 50; ++i) ASSERT_FALSE(ph.update(rng.normal(0.0, 0.1)));
  bool fired = false;
  for (int i = 0; i < 200 && !fired; ++i) fired = ph.update(rng.normal(1.0, 0.1));
  ASSERT_TRUE(fired);
  EXPECT_EQ(ph.n_seen(), 0u);
}

TEST(PageHinkley, RejectsBadConfig) {
  EXPECT_THROW(ml::PageHinkley(0.1, 0.0), std::invalid_argument);
}

// ---- WindowShiftDetector ----------------------------------------------------

TEST(WindowShift, SilentOnStationaryStream) {
  Rng rng(4);
  ml::WindowShiftDetector det(32, 4.0);
  int alarms = 0;
  for (int i = 0; i < 2000; ++i) alarms += det.update(rng.normal());
  EXPECT_LE(alarms, 2);  // rare false alarms tolerated at 4 sigma
}

TEST(WindowShift, DetectsStepChange) {
  Rng rng(5);
  ml::WindowShiftDetector det(32, 3.0);
  for (int i = 0; i < 100; ++i) ASSERT_FALSE(det.update(rng.normal(0.0, 0.5)));
  bool fired = false;
  for (int i = 0; i < 100 && !fired; ++i) fired = det.update(rng.normal(3.0, 0.5));
  EXPECT_TRUE(fired);
}

// ---- StreamingCndIds --------------------------------------------------------

core::StreamingConfig fast_stream_cfg() {
  core::StreamingConfig c;
  c.detector.cfe.hidden_dim = 32;
  c.detector.cfe.latent_dim = 16;
  c.detector.cfe.epochs = 3;
  c.detector.cfe.kmeans_k = 3;
  c.min_buffer_rows = 64;
  c.max_buffer_rows = 256;
  return c;
}

Matrix gaussian_batch(Rng& rng, std::size_t n, std::size_t d, double shift = 0.0) {
  Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < d; ++j)
      x(i, j) = rng.normal(j == 0 ? shift : 0.0, 1.0);
  return x;
}

TEST(StreamingCndIds, RequiresBootstrap) {
  // Misuse of the API (scoring before the detector exists) is a logic
  // error, distinct from the invalid_argument a malformed batch raises.
  core::StreamingCndIds mon(fast_stream_cfg());
  EXPECT_THROW(mon.process_batch(Matrix(4, 5, 0.0)), std::logic_error);
  EXPECT_THROW((void)mon.buffered(), std::logic_error);
  core::StreamBatchResult out;
  EXPECT_THROW(mon.process_batch_into(Matrix(4, 5, 0.0), out), std::logic_error);
}

TEST(StreamingCndIds, ScoresEveryBatchAndCountsFlows) {
  Rng rng(6);
  core::StreamingCndIds mon(fast_stream_cfg());
  mon.bootstrap(gaussian_batch(rng, 128, 5));
  std::size_t flows = 0;
  for (int b = 0; b < 5; ++b) {
    Matrix batch = gaussian_batch(rng, 32, 5);
    auto res = mon.process_batch(batch);
    EXPECT_EQ(res.scores.size(), 32u);
    EXPECT_EQ(res.verdicts.size(), 32u);
    flows += 32;
  }
  EXPECT_EQ(mon.flows_seen(), flows);
}

TEST(StreamingCndIds, BufferCapForcesAdaptation) {
  Rng rng(7);
  core::StreamingCndIds mon(fast_stream_cfg());  // cap 256
  mon.bootstrap(gaussian_batch(rng, 128, 5));
  std::size_t adaptations = 0;
  for (int b = 0; b < 20; ++b)
    adaptations += mon.process_batch(gaussian_batch(rng, 32, 5)).adapted;
  // 20 batches x 32 rows = 640 rows -> at least 2 cap-triggered adaptations.
  EXPECT_GE(adaptations, 2u);
  EXPECT_EQ(mon.adaptations(), adaptations);
  EXPECT_LT(mon.buffered(), 256u);
}

TEST(StreamingCndIds, AttackWaveRaisesAlarmRate) {
  Rng rng(8);
  // Freeze adaptation for this test (huge cap, insensitive drift detector):
  // adapting mid-wave would recalibrate the threshold on contaminated
  // scores, which is its own scenario (see DriftTriggersEarlyAdaptation).
  core::StreamingConfig cfg = fast_stream_cfg();
  cfg.max_buffer_rows = 1 << 20;
  cfg.ph_lambda = 1e9;
  core::StreamingCndIds mon(cfg);
  mon.bootstrap(gaussian_batch(rng, 192, 5));

  std::size_t normal_alarms = 0, attack_alarms = 0, n_normal = 0, n_attack = 0;
  for (int b = 0; b < 4; ++b) {
    auto res = mon.process_batch(gaussian_batch(rng, 48, 5));
    for (int v : res.verdicts) normal_alarms += static_cast<std::size_t>(v);
    n_normal += 48;
  }
  for (int b = 0; b < 4; ++b) {
    // Attack wave: large shift across several features.
    Matrix wave = gaussian_batch(rng, 48, 5);
    for (std::size_t i = 0; i < wave.rows(); ++i) {
      auto r = wave.row(i);
      for (std::size_t j = 0; j < 3; ++j) r[j] += 9.0;
    }
    auto res = mon.process_batch(wave);
    for (int v : res.verdicts) attack_alarms += static_cast<std::size_t>(v);
    n_attack += 48;
  }
  const double fpr = static_cast<double>(normal_alarms) / static_cast<double>(n_normal);
  const double tpr = static_cast<double>(attack_alarms) / static_cast<double>(n_attack);
  EXPECT_LT(fpr, 0.2);
  EXPECT_GT(tpr, 0.6);
}

TEST(StreamingCndIds, DriftTriggersEarlyAdaptation) {
  Rng rng(9);
  core::StreamingConfig cfg = fast_stream_cfg();
  cfg.max_buffer_rows = 100000;  // cap effectively off: only drift can trigger
  cfg.ph_lambda = 4.0;
  core::StreamingCndIds mon(cfg);
  mon.bootstrap(gaussian_batch(rng, 192, 5));

  for (int b = 0; b < 3; ++b) mon.process_batch(gaussian_batch(rng, 48, 5));
  EXPECT_EQ(mon.adaptations(), 0u);
  // Sustained covariate shift in the stream (all rows move): mean score
  // jumps, Page-Hinkley fires, adaptation runs.
  bool adapted = false;
  for (int b = 0; b < 20 && !adapted; ++b) {
    Matrix shifted = gaussian_batch(rng, 48, 5);
    for (std::size_t i = 0; i < shifted.rows(); ++i)
      for (auto& v : shifted.row(i)) v += 4.0;
    adapted = mon.process_batch(shifted).adapted;
  }
  EXPECT_TRUE(adapted);
}

TEST(StreamingCndIds, RejectsBadConfig) {
  core::StreamingConfig bad = fast_stream_cfg();
  bad.min_buffer_rows = 8;
  EXPECT_THROW(core::StreamingCndIds{bad}, std::invalid_argument);
  core::StreamingConfig bad2 = fast_stream_cfg();
  bad2.max_buffer_rows = 32;
  EXPECT_THROW(core::StreamingCndIds{bad2}, std::invalid_argument);
}

}  // namespace
}  // namespace cnd
