// Deliberate thread-safety violation: reads a guarded member without
// holding its mutex. This TU is EXCLUDE_FROM_ALL and must FAIL to compile
// under Clang's -Wthread-safety error gate — the thread_safety_negative_compile
// ctest case (tests/CMakeLists.txt) builds it and asserts the failure,
// proving the gate actually fires. It never links into anything.

#include "runtime/annotated_mutex.hpp"

namespace {

struct Violator {
  cnd::runtime::AnnotatedMutex mu_;
  int value_ CND_GUARDED_BY(mu_) = 0;

  // No lock: under -Wthread-safety this is "reading variable 'value_'
  // requires holding mutex 'mu_'" and the error gate rejects the TU.
  int racy_read() const { return value_; }
};

}  // namespace

int thread_safety_violation_entry() {
  Violator v;
  return v.racy_read();
}
