// Unit tests for the seeded RNG wrapper.
#include "tensor/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

namespace cnd {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.uniform() != b.uniform());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(Rng, RandintInclusiveBounds) {
  Rng r(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.randint(0, 5);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 0);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(r.randint(3, 2), std::invalid_argument);
}

TEST(Rng, BernoulliExtreme) {
  Rng r(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialPositive) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) EXPECT_GT(r.exponential(2.0), 0.0);
  EXPECT_THROW(r.exponential(0.0), std::invalid_argument);
}

TEST(Rng, HeavyTailHasOutliers) {
  // Student-t with 3 dof produces |v| > 4 far more often than a Gaussian.
  Rng r(23);
  int extreme_t = 0;
  for (int i = 0; i < 20000; ++i) extreme_t += (std::abs(r.heavy_tail(3.0)) > 4.0);
  int extreme_g = 0;
  for (int i = 0; i < 20000; ++i) extreme_g += (std::abs(r.normal()) > 4.0);
  EXPECT_GT(extreme_t, extreme_g + 20);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng r(29);
  const std::vector<double> w{0.0, 1.0, 9.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 5000; ++i) ++counts[r.categorical(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1] * 5);
  EXPECT_THROW(r.categorical({}), std::invalid_argument);
  EXPECT_THROW(r.categorical({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(r.categorical({-1.0, 2.0}), std::invalid_argument);
}

TEST(Rng, PermutationIsPermutation) {
  Rng r(31);
  auto p = r.permutation(50);
  std::sort(p.begin(), p.end());
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(p[i], i);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(41);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(1);  // same salt, later state -> still different
  Rng c3 = parent.split(2);
  EXPECT_NE(c1.uniform(), c2.uniform());
  EXPECT_NE(c1.uniform(), c3.uniform());
}

// ---------------------------------------------------------------------------
// Golden streams. Every draw algorithm in rng.cpp is written against raw
// mt19937_64 words (see the header comment there), so these exact values hold
// on any conforming platform and standard library. A mismatch means the
// stream changed: EVERY seeded experiment result shifts, and the note in
// EXPERIMENTS.md ("RNG stream compatibility") must be updated alongside the
// new constants here. Constants are hexfloat literals so equality is
// bit-exact, not round-trip-through-decimal.
// ---------------------------------------------------------------------------

TEST(RngGolden, RawWordsSeed1) {
  Rng r(1);
  EXPECT_EQ(r.draw_u64(), 2469588189546311528ULL);
  EXPECT_EQ(r.draw_u64(), 2516265689700432462ULL);
  EXPECT_EQ(r.draw_u64(), 8323445853463659930ULL);
  EXPECT_EQ(r.draw_u64(), 387828560950575246ULL);
}

TEST(RngGolden, UniformSeed42) {
  Rng r(42);
  EXPECT_EQ(r.uniform(), 0x1.82a3befaddcbcp-1);
  EXPECT_EQ(r.uniform(), 0x1.472f1f73724ap-1);
  EXPECT_EQ(r.uniform(), 0x1.81192cfe1cbcfp-1);
  EXPECT_EQ(r.uniform(), 0x1.171621fc50d68p-3);
}

TEST(RngGolden, NormalSeed7) {
  Rng r(7);
  EXPECT_EQ(r.normal(), 0x1.9765fb74c31bep+0);
  EXPECT_EQ(r.normal(), 0x1.8e3ca64978f4bp-2);
  EXPECT_EQ(r.normal(), 0x1.09d0f5cde98a5p-1);
  EXPECT_EQ(r.normal(), 0x1.88cb7c625b2adp+0);
}

TEST(RngGolden, RandintSeed13) {
  Rng r(13);
  const std::int64_t expect[8] = {6, 4, 0, 3, 2, 5, 9, 1};
  for (std::int64_t want : expect) EXPECT_EQ(r.randint(0, 9), want);
}

TEST(RngGolden, BernoulliSeed5) {
  Rng r(5);
  const bool expect[8] = {false, true, true, false, true, true, true, false};
  for (bool want : expect) EXPECT_EQ(r.bernoulli(0.3), want);
}

TEST(RngGolden, ExponentialSeed9) {
  Rng r(9);
  EXPECT_EQ(r.exponential(2.0), 0x1.76370bdc2c66fp-2);
  EXPECT_EQ(r.exponential(2.0), 0x1.627d38c7cfb25p-2);
  EXPECT_EQ(r.exponential(2.0), 0x1.09a0957bac483p+0);
  EXPECT_EQ(r.exponential(2.0), 0x1.c271f81e1fb7ap-1);
}

TEST(RngGolden, HeavyTailSeed21) {
  Rng r(21);
  EXPECT_EQ(r.heavy_tail(3.0), -0x1.27d75eb602838p+0);
  EXPECT_EQ(r.heavy_tail(3.0), 0x1.7ba521c009de8p-1);
  EXPECT_EQ(r.heavy_tail(3.0), 0x1.2e89d70493a8ap+0);
}

}  // namespace
}  // namespace cnd
