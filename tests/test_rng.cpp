// Unit tests for the seeded RNG wrapper.
#include "tensor/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace cnd {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.uniform() != b.uniform());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(Rng, RandintInclusiveBounds) {
  Rng r(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.randint(0, 5);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 0);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(r.randint(3, 2), std::invalid_argument);
}

TEST(Rng, BernoulliExtreme) {
  Rng r(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialPositive) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) EXPECT_GT(r.exponential(2.0), 0.0);
  EXPECT_THROW(r.exponential(0.0), std::invalid_argument);
}

TEST(Rng, HeavyTailHasOutliers) {
  // Student-t with 3 dof produces |v| > 4 far more often than a Gaussian.
  Rng r(23);
  int extreme_t = 0;
  for (int i = 0; i < 20000; ++i) extreme_t += (std::abs(r.heavy_tail(3.0)) > 4.0);
  int extreme_g = 0;
  for (int i = 0; i < 20000; ++i) extreme_g += (std::abs(r.normal()) > 4.0);
  EXPECT_GT(extreme_t, extreme_g + 20);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng r(29);
  const std::vector<double> w{0.0, 1.0, 9.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 5000; ++i) ++counts[r.categorical(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1] * 5);
  EXPECT_THROW(r.categorical({}), std::invalid_argument);
  EXPECT_THROW(r.categorical({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(r.categorical({-1.0, 2.0}), std::invalid_argument);
}

TEST(Rng, PermutationIsPermutation) {
  Rng r(31);
  auto p = r.permutation(50);
  std::sort(p.begin(), p.end());
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(p[i], i);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(41);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(1);  // same salt, later state -> still different
  Rng c3 = parent.split(2);
  EXPECT_NE(c1.uniform(), c2.uniform());
  EXPECT_NE(c1.uniform(), c3.uniform());
}

}  // namespace
}  // namespace cnd
