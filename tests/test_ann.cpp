// IVF approximate-neighbor index tests (linalg/ivf_index.{hpp,cpp},
// docs/ANN.md).
//
// The contract under test has three legs: exact mode (nprobe = 0) is
// byte-identical to brute-force linalg::knn; ANN mode (nprobe > 0) is
// approximate but bit-identical at any thread count, build and search; and
// the scratch-driven probe loop allocates nothing once warm. Edge cases —
// empty clusters after compaction, k larger than any single cluster — are
// pinned explicitly.
#include "linalg/ivf_index.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>
#include <vector>

#include "linalg/distance.hpp"
#include "ml/kmeans.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

// ---- Counting allocation probe (same shape as tests/test_kernels.cpp) ------
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::size_t> g_news{0};
}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace cnd {
namespace {

struct ThreadsGuard {
  explicit ThreadsGuard(std::size_t n) { runtime::set_threads(n); }
  ~ThreadsGuard() { runtime::set_threads(0); }
};

// Well-separated Gaussian clusters: the geometry the coarse quantizer is
// built for, so recall thresholds below are comfortably stable across
// platforms.
Matrix gaussian_clusters(std::size_t rows, std::size_t dim,
                         std::size_t n_clusters, std::uint64_t seed) {
  Rng rng(seed);
  Matrix centers(n_clusters, dim);
  for (std::size_t c = 0; c < n_clusters; ++c)
    for (auto& v : centers.row(c)) v = rng.uniform(-10.0, 10.0);
  Matrix x(rows, dim);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto c = static_cast<std::size_t>(
        rng.randint(0, static_cast<std::int64_t>(n_clusters) - 1));
    auto row = x.row(i);
    auto cen = centers.row(c);
    for (std::size_t p = 0; p < dim; ++p) row[p] = cen[p] + rng.normal();
  }
  return x;
}

bool knn_identical(const linalg::Knn& a, const linalg::Knn& b) {
  if (a.indices.size() != b.indices.size()) return false;
  for (std::size_t i = 0; i < a.indices.size(); ++i) {
    if (a.indices[i] != b.indices[i]) return false;
    if (a.distances[i].size() != b.distances[i].size()) return false;
    if (std::memcmp(a.distances[i].data(), b.distances[i].data(),
                    a.distances[i].size() * sizeof(double)) != 0)
      return false;
  }
  return true;
}

double recall_vs(const linalg::Knn& exact, const linalg::Knn& approx) {
  std::size_t hit = 0, total = 0;
  for (std::size_t i = 0; i < exact.indices.size(); ++i)
    for (std::size_t t : exact.indices[i]) {
      ++total;
      for (std::size_t a : approx.indices[i])
        if (a == t) {
          ++hit;
          break;
        }
    }
  return total == 0 ? 1.0 : static_cast<double>(hit) / static_cast<double>(total);
}

// ---- Recall ----------------------------------------------------------------

TEST(Ann, RecallAtTenOnGaussianClusters) {
  const Matrix ref = gaussian_clusters(4000, 16, 24, 3);
  const Matrix query = gaussian_clusters(400, 16, 24, 4);
  const linalg::Knn exact = linalg::knn(query, ref, 10, false);

  linalg::NeighborProvider prov;
  prov.bind(ref, {.nprobe = 8});
  const double r8 = recall_vs(exact, prov.knn(query, 10, false));
  EXPECT_GE(r8, 0.95) << "nprobe=8 recall@10 too low";

  // Recall is monotone in nprobe on this geometry.
  prov.bind(ref, {.nprobe = 2});
  const double r2 = recall_vs(exact, prov.knn(query, 10, false));
  EXPECT_LE(r2, r8 + 1e-12);
}

// ---- Exact mode == brute force, byte for byte ------------------------------

void expect_exact_identity() {
  const Matrix ref = gaussian_clusters(600, 9, 8, 11);
  const Matrix query = gaussian_clusters(70, 9, 8, 12);
  linalg::NeighborProvider prov;
  prov.bind(ref);  // nprobe = 0: exact contract
  ASSERT_TRUE(prov.exact());
  EXPECT_TRUE(knn_identical(prov.knn(query, 7, false),
                            linalg::knn(query, ref, 7, false)));
  EXPECT_TRUE(knn_identical(prov.knn(prov.ref(), 5, true),
                            linalg::knn(ref, ref, 5, true)));
}

TEST(Ann, ExactModeMatchesBruteForceSerial) {
  ThreadsGuard guard(1);
  expect_exact_identity();
}

TEST(Ann, ExactModeMatchesBruteForceFourThreads) {
  ThreadsGuard guard(4);
  expect_exact_identity();
}

// ---- Determinism across thread counts --------------------------------------

TEST(Ann, BuildDeterministicAcrossThreads) {
  const Matrix ref = gaussian_clusters(1200, 12, 16, 21);
  const linalg::AnnConfig cfg{.nprobe = 4};
  linalg::IvfIndex a, b;
  {
    ThreadsGuard guard(1);
    a.build_from(ref, cfg);
  }
  {
    ThreadsGuard guard(4);
    b.build_from(ref, cfg);
  }
  ASSERT_EQ(a.n_clusters(), b.n_clusters());
  ASSERT_EQ(a.rows(), b.rows());
  EXPECT_EQ(0, std::memcmp(a.centroids().data(), b.centroids().data(),
                           a.centroids().size() * sizeof(double)));
  for (std::size_t c = 0; c < a.n_clusters(); ++c) {
    ASSERT_EQ(a.cluster_size(c), b.cluster_size(c)) << "cluster " << c;
    const auto ia = a.cluster_ids(c);
    const auto ib = b.cluster_ids(c);
    EXPECT_EQ(0, std::memcmp(ia.data(), ib.data(),
                             ia.size() * sizeof(std::uint32_t)))
        << "cluster " << c;
  }
}

TEST(Ann, SearchDeterministicAcrossThreads) {
  const Matrix ref = gaussian_clusters(1500, 10, 12, 31);
  const Matrix query = gaussian_clusters(300, 10, 12, 32);
  linalg::NeighborProvider prov;
  prov.bind(ref, {.nprobe = 3});
  linalg::Knn t1, t4;
  {
    ThreadsGuard guard(1);
    t1 = prov.knn(query, 6, false);
  }
  {
    ThreadsGuard guard(4);
    t4 = prov.knn(query, 6, false);
  }
  EXPECT_TRUE(knn_identical(t1, t4));
}

// ---- Edge cases ------------------------------------------------------------

TEST(Ann, DuplicateRowsCompactEmptyClusters) {
  // 40 copies of 3 distinct points with 16 requested clusters: most clusters
  // go empty during Lloyd and must be compacted away, leaving a live index.
  Matrix ref(120, 4);
  for (std::size_t i = 0; i < ref.rows(); ++i) {
    const double v = static_cast<double>(i % 3) * 100.0;
    for (auto& x : ref.row(i)) x = v;
  }
  linalg::IvfIndex ix;
  ix.build_from(ref, {.nprobe = 1, .clusters = 16});
  ASSERT_TRUE(ix.built());
  EXPECT_LE(ix.n_clusters(), 3u);
  std::size_t members = 0;
  for (std::size_t c = 0; c < ix.n_clusters(); ++c) {
    EXPECT_GT(ix.cluster_size(c), 0u) << "empty cluster survived compaction";
    members += ix.cluster_size(c);
  }
  EXPECT_EQ(members, ref.rows());

  // Every returned neighbour of a duplicated point is at distance zero.
  linalg::NeighborProvider prov;
  prov.bind(ref, {.nprobe = 1, .clusters = 16});
  const linalg::Knn nn = prov.knn(prov.ref(), 5, true);
  for (std::size_t i = 0; i < ref.rows(); ++i)
    for (double d : nn.distances[i]) EXPECT_EQ(d, 0.0);
}

TEST(Ann, KLargerThanAnyClusterExpandsProbes) {
  const Matrix ref = gaussian_clusters(200, 6, 10, 41);
  linalg::NeighborProvider prov;
  prov.bind(ref, {.nprobe = 1, .clusters = 10});
  ASSERT_LT(prov.index()->max_cluster_size(), ref.rows());

  // k = rows forces the probe loop past nprobe until every cluster is
  // scanned, and the double re-rank then reproduces the exact answer.
  const Matrix query = gaussian_clusters(20, 6, 10, 42);
  const std::size_t k = ref.rows();
  EXPECT_TRUE(knn_identical(prov.knn(query, k, false),
                            linalg::knn(query, ref, k, false)));
}

// ---- Zero-allocation probe loop --------------------------------------------

TEST(Ann, ScratchSearchIsAllocationFreeOnceWarm) {
  ThreadsGuard guard(1);
  const Matrix ref = gaussian_clusters(800, 8, 8, 51);
  const Matrix query = gaussian_clusters(64, 8, 8, 52);
  linalg::IvfIndex ix;
  const linalg::AnnConfig cfg{.nprobe = 3};
  ix.build_from(ref, cfg);
  const std::vector<double> norms = [&] {
    std::vector<double> n;
    kernels::row_sq_norms(ref, 0, ref.rows(), n);
    return n;
  }();

  linalg::IvfIndex::Scratch sc;
  linalg::Knn out;
  for (int warm = 0; warm < 2; ++warm)
    ix.search(query, ref, norms, 5, cfg.nprobe, false, out, &sc);

  const std::size_t before = g_news.load();
  ix.search(query, ref, norms, 5, cfg.nprobe, false, out, &sc);
  EXPECT_EQ(g_news.load(), before)
      << "warm scratch-driven IVF search touched the heap";
}

// ---- Config validation and K-Means fast path -------------------------------

TEST(Ann, ValidateRejectsBadConfig) {
  linalg::AnnConfig ok;  // nprobe = 0: exact, nothing else checked
  ok.build_iters = 0;
  EXPECT_NO_THROW(ok.validate());
  linalg::AnnConfig bad{.nprobe = 2, .build_iters = 0};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(Ann, KMeansAnnPredictMatchesExactWhenAllClustersProbed) {
  const Matrix x = gaussian_clusters(500, 8, 6, 61);
  ml::KMeans exact({.k = 6});
  ml::KMeans ann({.k = 6, .ann = {.nprobe = 6}});
  Rng r1(9), r2(9);
  exact.fit(x, r1);  // identical RNG streams: fit is always exact, so the
  ann.fit(x, r2);    // two models share centroids bit for bit
  EXPECT_EQ(0, std::memcmp(exact.centroids().data(), ann.centroids().data(),
                           exact.centroids().size() * sizeof(double)));
  // Probing every centroid makes the IVF argmin total, hence exact.
  EXPECT_EQ(exact.predict(x), ann.predict(x));
}

}  // namespace
}  // namespace cnd
