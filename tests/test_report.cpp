// Unit tests for per-family reporting.
#include "eval/report.hpp"

#include <gtest/gtest.h>

namespace cnd::eval {
namespace {

TEST(FamilyReport, BreakdownCountsAndRecall) {
  //          normal  normal  fam0  fam0  fam1
  const std::vector<double> scores{0.1, 0.9, 0.8, 0.2, 0.7};
  const std::vector<int> y{0, 0, 1, 1, 1};
  const std::vector<int> fam{-1, -1, 0, 0, 1};
  const std::vector<std::string> names{"dos", "scan"};

  FamilyReport rep = family_breakdown(scores, y, fam, names, /*threshold=*/0.5);
  ASSERT_EQ(rep.families.size(), 3u);

  EXPECT_EQ(rep.families[0].name, "normal");
  EXPECT_EQ(rep.families[0].count, 2u);
  EXPECT_DOUBLE_EQ(rep.families[0].recall, 0.5);  // FPR: one normal flagged

  EXPECT_EQ(rep.families[1].name, "dos");
  EXPECT_DOUBLE_EQ(rep.families[1].recall, 0.5);
  EXPECT_DOUBLE_EQ(rep.families[1].mean_score, 0.5);

  EXPECT_EQ(rep.families[2].name, "scan");
  EXPECT_DOUBLE_EQ(rep.families[2].recall, 1.0);
}

TEST(FamilyReport, HardestFamilyPicksLowestRecall) {
  const std::vector<double> scores{0.9, 0.9, 0.1, 0.1, 0.9};
  const std::vector<int> y{1, 1, 1, 1, 0};
  const std::vector<int> fam{0, 0, 1, 1, -1};
  const std::vector<std::string> names{"easy", "hard"};
  FamilyReport rep = family_breakdown(scores, y, fam, names, 0.5);
  EXPECT_EQ(rep.hardest_family(), 1);
}

TEST(FamilyReport, HardestFamilyNegativeWithoutAttacks) {
  const std::vector<double> scores{0.1, 0.2};
  const std::vector<int> y{0, 0};
  const std::vector<int> fam{-1, -1};
  FamilyReport rep = family_breakdown(scores, y, fam, {}, 0.5);
  EXPECT_EQ(rep.hardest_family(), -1);
}

TEST(FamilyReport, MarkdownContainsAllFamilies) {
  const std::vector<double> scores{0.9, 0.1};
  const std::vector<int> y{1, 0};
  const std::vector<int> fam{0, -1};
  FamilyReport rep = family_breakdown(scores, y, fam, {"worm"}, 0.5);
  const std::string md = rep.to_markdown();
  EXPECT_NE(md.find("| worm |"), std::string::npos);
  EXPECT_NE(md.find("| normal |"), std::string::npos);
  EXPECT_NE(md.find("(FPR)"), std::string::npos);
}

TEST(FamilyReport, RejectsInconsistentInputs) {
  EXPECT_THROW(family_breakdown({0.1}, {1}, {-1}, {}, 0.5), std::logic_error);
  EXPECT_THROW(family_breakdown({0.1}, {1}, {3}, {"a"}, 0.5), std::logic_error);
  EXPECT_THROW(family_breakdown({}, {}, {}, {}, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace cnd::eval
