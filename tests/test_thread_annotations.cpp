// The thread-safety annotation layer (tensor/thread_annotations.hpp +
// runtime/annotated_mutex.hpp): the macros must be inert on non-Clang
// compilers, and the annotated wrappers must behave like the std primitives
// they wrap. The static analysis itself is exercised by the clang CI job
// (cnd_thread_safety targets) and by the thread_safety_negative_compile
// ctest case, which builds a deliberate violation and expects failure.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "runtime/annotated_mutex.hpp"

namespace cnd::runtime {
namespace {

#ifndef __clang__
// On GCC the annotation macros must expand to nothing: stringify the
// expansion and check it is empty. A non-empty expansion would be a syntax
// error in member declarations long before this assert, but the assert
// documents the contract where a reader will look for it.
#define CND_TA_STR_I(x) #x
#define CND_TA_STR(x) CND_TA_STR_I(x)
static_assert(sizeof(CND_TA_STR(CND_GUARDED_BY(m))) == 1,
              "annotation macros must be inert outside Clang");
static_assert(sizeof(CND_TA_STR(CND_REQUIRES(a, b))) == 1,
              "annotation macros must be inert outside Clang");
static_assert(sizeof(CND_TA_STR(CND_ACQUIRED_BEFORE(m))) == 1,
              "annotation macros must be inert outside Clang");
#undef CND_TA_STR
#undef CND_TA_STR_I
#endif

TEST(AnnotatedMutex, TryLockReportsContention) {
  AnnotatedMutex mu;
  ASSERT_TRUE(mu.try_lock());
  // A second holder must be refused; std::mutex is non-recursive, so probe
  // from another thread.
  bool second = true;
  std::thread probe([&] { second = mu.try_lock(); });
  probe.join();
  EXPECT_FALSE(second);
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

// Guarded state lives in annotated members (the only position Clang's
// analysis accepts the attribute in), mirroring how the library uses it.
struct Tally {
  AnnotatedMutex mu;
  long total CND_GUARDED_BY(mu) = 0;

  void bump() {
    MutexLock lk(mu);
    ++total;
  }
  long read() {
    MutexLock lk(mu);
    return total;
  }
};

TEST(AnnotatedMutex, MutexLockExcludesConcurrentIncrements) {
  Tally tally;
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) tally.bump();
    });
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(tally.read(), static_cast<long>(kThreads) * kIters);
}

struct Handshake {
  AnnotatedMutex mu;
  CondVar cv;
  bool ready CND_GUARDED_BY(mu) = false;
  int woken CND_GUARDED_BY(mu) = 0;

  void wait_ready() {
    MutexLock lk(mu);
    while (!ready) cv.wait(lk);
    ++woken;
  }
  void release() {
    {
      MutexLock lk(mu);
      ready = true;
    }
    cv.notify_all();
  }
  int woken_count() {
    MutexLock lk(mu);
    return woken;
  }
};

TEST(CondVar, WaitWakesOnNotifyWithPredicateLoop) {
  Handshake hs;
  std::thread consumer([&] { hs.wait_ready(); });
  hs.release();
  consumer.join();
  EXPECT_EQ(hs.woken_count(), 1);
}

TEST(CondVar, NotifyAllReleasesEveryWaiter) {
  Handshake hs;
  constexpr int kWaiters = 3;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t)
    waiters.emplace_back([&] { hs.wait_ready(); });
  hs.release();
  for (std::thread& w : waiters) w.join();
  EXPECT_EQ(hs.woken_count(), kWaiters);
}

}  // namespace
}  // namespace cnd::runtime
