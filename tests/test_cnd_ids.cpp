// Integration tests for the full CND-IDS detector (Algorithm 1).
#include "core/cnd_ids.hpp"

#include <gtest/gtest.h>

#include "eval/metrics.hpp"
#include "eval/threshold.hpp"

namespace cnd::core {
namespace {

CndIdsConfig fast_cfg(std::uint64_t seed = 1) {
  CndIdsConfig c;
  c.cfe.hidden_dim = 32;
  c.cfe.latent_dim = 8;
  c.cfe.epochs = 6;
  c.cfe.kmeans_k = 3;
  c.seed = seed;
  return c;
}

struct Toy {
  Matrix n_clean;
  Matrix x_train;
  Matrix x_test;
  std::vector<int> y_test;
};

Toy make_toy(Rng& rng, double attack_dist = 9.0) {
  Toy t;
  t.n_clean = Matrix(80, 5);
  for (std::size_t i = 0; i < 80; ++i)
    for (std::size_t j = 0; j < 5; ++j) t.n_clean(i, j) = rng.normal();
  t.x_train = Matrix(240, 5);
  for (std::size_t i = 0; i < 240; ++i) {
    const bool attack = i % 3 == 0;
    for (std::size_t j = 0; j < 5; ++j)
      t.x_train(i, j) = rng.normal(attack && j < 2 ? attack_dist : 0.0, 1.0);
  }
  t.x_test = Matrix(100, 5);
  for (std::size_t i = 0; i < 100; ++i) {
    const bool attack = i < 30;
    t.y_test.push_back(attack ? 1 : 0);
    for (std::size_t j = 0; j < 5; ++j)
      t.x_test(i, j) = rng.normal(attack && j < 2 ? attack_dist : 0.0, 1.0);
  }
  return t;
}

TEST(CndIds, NameReflectsAblationFlags) {
  CndIdsConfig c = fast_cfg();
  EXPECT_EQ(CndIds(c).name(), "CND-IDS");
  c.cfe.use_cs = false;
  EXPECT_EQ(CndIds(c).name(), "CND-IDS (w/o L_CS)");
  c.cfe.use_cs = true;
  c.cfe.use_r = false;
  EXPECT_EQ(CndIds(c).name(), "CND-IDS (w/o L_R)");
  c.cfe.use_cl = false;
  EXPECT_EQ(CndIds(c).name(), "CND-IDS (w/o L_R and L_CL)");
}

TEST(CndIds, LifecycleGuards) {
  CndIds det(fast_cfg());
  EXPECT_THROW(det.observe_experience(Matrix(10, 5)), std::invalid_argument);
  EXPECT_THROW(det.score(Matrix(1, 5)), std::invalid_argument);

  Rng rng(1);
  Toy t = make_toy(rng);
  Matrix seed_x;
  std::vector<int> seed_y;
  det.setup(SetupContext{t.n_clean, seed_x, seed_y});
  EXPECT_THROW(det.score(Matrix(1, 5)), std::invalid_argument);  // no experience yet
}

TEST(CndIds, DetectsPlantedAttacks) {
  Rng rng(2);
  Toy t = make_toy(rng);
  CndIds det(fast_cfg(7));
  Matrix seed_x;
  std::vector<int> seed_y;
  det.setup(SetupContext{t.n_clean, seed_x, seed_y});
  det.observe_experience(t.x_train);

  const auto s = det.score(t.x_test);
  ASSERT_EQ(s.size(), t.y_test.size());
  const double auc = eval::pr_auc(s, t.y_test);
  EXPECT_GT(auc, 0.9);

  const auto best = eval::best_f_threshold(s, t.y_test);
  EXPECT_GT(best.f1, 0.85);
}

TEST(CndIds, ScoresAreNonNegative) {
  Rng rng(3);
  Toy t = make_toy(rng);
  CndIds det(fast_cfg());
  Matrix seed_x;
  std::vector<int> seed_y;
  det.setup(SetupContext{t.n_clean, seed_x, seed_y});
  det.observe_experience(t.x_train);
  for (double v : det.score(t.x_test)) EXPECT_GE(v, 0.0);
}

TEST(CndIds, PcaRefitEachExperience) {
  Rng rng(4);
  Toy t1 = make_toy(rng);
  CndIds det(fast_cfg());
  Matrix seed_x;
  std::vector<int> seed_y;
  det.setup(SetupContext{t1.n_clean, seed_x, seed_y});
  det.observe_experience(t1.x_train);
  const std::size_t k1 = det.pca().n_components();
  Toy t2 = make_toy(rng, -9.0);
  det.observe_experience(t2.x_train);
  EXPECT_TRUE(det.pca().fitted());
  EXPECT_GE(det.pca().n_components(), 1u);
  EXPECT_EQ(det.cfe().n_experiences_seen(), 2u);
  (void)k1;
}

TEST(CndIds, DeterministicGivenSeed) {
  auto run = [&]() {
    Rng rng(5);
    Toy t = make_toy(rng);
    CndIds det(fast_cfg(123));
    Matrix seed_x;
    std::vector<int> seed_y;
    det.setup(SetupContext{t.n_clean, seed_x, seed_y});
    det.observe_experience(t.x_train);
    return det.score(t.x_test);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(CndIds, ZeroDayFamilyStillScoresHigh) {
  // Train with attacks along +x; a zero-day along -y must still be flagged
  // (PCA on normal data generalizes to any off-manifold direction).
  Rng rng(6);
  Toy t = make_toy(rng, 9.0);
  CndIds det(fast_cfg(11));
  Matrix seed_x;
  std::vector<int> seed_y;
  det.setup(SetupContext{t.n_clean, seed_x, seed_y});
  det.observe_experience(t.x_train);

  Matrix zero_day(30, 5);
  for (std::size_t i = 0; i < 30; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      zero_day(i, j) = rng.normal(j >= 3 ? -8.0 : 0.0, 1.0);
  Matrix normals(30, 5);
  for (std::size_t i = 0; i < 30; ++i)
    for (std::size_t j = 0; j < 5; ++j) normals(i, j) = rng.normal();

  const auto s_zd = det.score(zero_day);
  const auto s_n = det.score(normals);
  std::size_t wins = 0;
  for (double a : s_zd)
    for (double n : s_n) wins += (a > n);
  EXPECT_GT(static_cast<double>(wins) / (30.0 * 30.0), 0.9);
}

}  // namespace
}  // namespace cnd::core
