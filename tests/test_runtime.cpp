// Unit tests for the parallel runtime (src/runtime) and its determinism
// contract: parallel_for covers every index exactly once, exceptions
// propagate, nesting is safe, and the library hot paths (matmul, detector
// fit/score) are bit-identical for CND_THREADS in {1, 4}.
#include "runtime/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "ml/hbos.hpp"
#include "ml/isolation_forest.hpp"
#include "ml/knn_detector.hpp"
#include "ml/lof.hpp"
#include "ml/ocsvm.hpp"
#include "ml/random_forest.hpp"
#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace cnd {
namespace {

/// Pins the runtime to `n` lanes for one test and restores the default on
/// scope exit, so tests do not leak thread settings into each other.
struct ThreadsGuard {
  explicit ThreadsGuard(std::size_t n) { runtime::set_threads(n); }
  ~ThreadsGuard() { runtime::set_threads(0); }
};

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  return m;
}

bool bit_identical(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// ---- ThreadPool lifecycle --------------------------------------------------

TEST(ThreadPool, ConstructRunDestroy) {
  for (std::size_t workers : {1u, 2u, 4u}) {
    runtime::ThreadPool pool(workers);
    EXPECT_EQ(pool.n_workers(), workers);
    std::atomic<int> hits{0};
    pool.run(10, [&](std::size_t) { hits.fetch_add(1); });
    EXPECT_EQ(hits.load(), 10);
  }  // destructor joins cleanly
}

TEST(ThreadPool, ZeroChunksIsNoOp) {
  runtime::ThreadPool pool(2);
  pool.run(0, [&](std::size_t) { FAIL() << "chunk fn called for empty job"; });
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  runtime::ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> hits{0};
    pool.run(7, [&](std::size_t) { hits.fetch_add(1); });
    ASSERT_EQ(hits.load(), 7);
  }
}

TEST(ThreadPool, SetThreadsReconfigures) {
  {
    ThreadsGuard guard(3);
    EXPECT_EQ(runtime::threads(), 3u);
  }
  // Guard restored the default: CND_THREADS env or hardware concurrency.
  EXPECT_GE(runtime::threads(), 1u);
}

// ---- parallel_for coverage -------------------------------------------------

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadsGuard guard(4);
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    for (std::size_t grain : {0u, 1u, 3u, 64u, 5000u}) {
      std::vector<std::atomic<int>> counts(n);
      runtime::parallel_for(0, n, grain, [&](std::size_t lo, std::size_t hi) {
        ASSERT_LT(lo, hi);
        ASSERT_LE(hi, n);
        for (std::size_t i = lo; i < hi; ++i) counts[i].fetch_add(1);
      });
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(counts[i].load(), 1) << "index " << i << " n=" << n
                                       << " grain=" << grain;
    }
  }
}

TEST(ParallelFor, EmptyRangeDoesNothing) {
  ThreadsGuard guard(4);
  runtime::parallel_for(5, 5, 1, [&](std::size_t, std::size_t) {
    FAIL() << "fn called for empty range";
  });
  runtime::parallel_for(7, 3, 1, [&](std::size_t, std::size_t) {
    FAIL() << "fn called for inverted range";
  });
}

TEST(ParallelFor, NonZeroBeginCovered) {
  ThreadsGuard guard(4);
  std::vector<std::atomic<int>> counts(100);
  runtime::parallel_for(40, 100, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) counts[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < 40; ++i) ASSERT_EQ(counts[i].load(), 0);
  for (std::size_t i = 40; i < 100; ++i) ASSERT_EQ(counts[i].load(), 1);
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  ThreadsGuard guard(4);
  EXPECT_THROW(
      runtime::parallel_for(0, 100, 1,
                            [&](std::size_t lo, std::size_t) {
                              if (lo >= 50) throw std::runtime_error("boom");
                            }),
      std::runtime_error);
  // The pool survives a failed job and runs the next one normally.
  std::atomic<int> hits{0};
  runtime::parallel_for(0, 64, 1, [&](std::size_t lo, std::size_t hi) {
    hits.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(hits.load(), 64);
}

TEST(ParallelFor, NestedCallsRunSeriallyAndCover) {
  ThreadsGuard guard(4);
  constexpr std::size_t kOuter = 8, kInner = 200;
  std::vector<std::vector<int>> counts(kOuter, std::vector<int>(kInner, 0));
  runtime::parallel_for(0, kOuter, 1, [&](std::size_t olo, std::size_t ohi) {
    for (std::size_t o = olo; o < ohi; ++o) {
      EXPECT_TRUE(runtime::in_parallel_region());
      // Nested call: must execute inline (serially) on this thread and
      // still cover its whole range.
      runtime::parallel_for(0, kInner, 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) ++counts[o][i];
      });
    }
  });
  for (const auto& row : counts)
    for (int c : row) ASSERT_EQ(c, 1);
  EXPECT_FALSE(runtime::in_parallel_region());
}

TEST(ParallelFor, SerialFallbackGetsWholeRange) {
  ThreadsGuard guard(1);
  int calls = 0;
  runtime::parallel_for(3, 47, 1, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 3u);
    EXPECT_EQ(hi, 47u);
  });
  EXPECT_EQ(calls, 1);
}

// ---- determinism contract: bit-identical across thread counts --------------

TEST(Determinism, MatmulBitIdenticalAcrossThreadCounts) {
  Rng rng(123);
  const Matrix a = random_matrix(97, 64, rng);   // matmul / matmul_bt / _at lhs
  const Matrix b = random_matrix(64, 41, rng);   // matmul rhs
  const Matrix bt = random_matrix(41, 64, rng);  // matmul_bt rhs (n x k)
  const Matrix at = random_matrix(97, 29, rng);  // matmul_at rhs (k x n)

  Matrix c1, c1_bt, c1_at;
  {
    ThreadsGuard guard(1);
    c1 = matmul(a, b);
    c1_bt = matmul_bt(a, bt);
    c1_at = matmul_at(a, at);
  }
  {
    ThreadsGuard guard(4);
    EXPECT_TRUE(bit_identical(matmul(a, b), c1));
    EXPECT_TRUE(bit_identical(matmul_bt(a, bt), c1_bt));
    EXPECT_TRUE(bit_identical(matmul_at(a, at), c1_at));
  }
}

TEST(Determinism, DetectorFitAndScoreBitIdenticalAcrossThreadCounts) {
  Rng data_rng(7);
  const Matrix train = random_matrix(300, 12, data_rng);
  const Matrix test = random_matrix(120, 12, data_rng);

  auto run_all = [&]() {
    std::vector<std::vector<double>> scores;
    {
      ml::KnnDetector knn({.k = 5});
      knn.fit(train);
      scores.push_back(knn.score(test));
    }
    {
      ml::Lof lof({.k = 10});
      lof.fit(train);
      scores.push_back(lof.score(test));
    }
    {
      ml::Hbos hbos;
      hbos.fit(train);
      scores.push_back(hbos.score(test));
    }
    {
      ml::OcSvm svm({.nu = 0.1});
      svm.fit(train);
      scores.push_back(svm.score(test));
    }
    {
      Rng rng(99);
      ml::IsolationForest forest({.n_trees = 20, .subsample = 64});
      forest.fit(train, rng);
      scores.push_back(forest.score(test));
    }
    return scores;
  };

  std::vector<std::vector<double>> serial;
  {
    ThreadsGuard guard(1);
    serial = run_all();
  }
  {
    ThreadsGuard guard(4);
    const auto parallel = run_all();
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t d = 0; d < serial.size(); ++d)
      EXPECT_TRUE(bit_identical(parallel[d], serial[d])) << "detector " << d;
  }
}

TEST(Determinism, RandomForestBitIdenticalAcrossThreadCounts) {
  Rng data_rng(21);
  const Matrix x = random_matrix(200, 8, data_rng);
  std::vector<std::size_t> y(200);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = x(i, 0) > 0.0 ? 1 : 0;
  const Matrix q = random_matrix(50, 8, data_rng);

  auto fit_predict = [&]() {
    Rng rng(5);
    ml::RandomForest rf({.n_trees = 16, .max_depth = 6});
    rf.fit(x, y, 2, rng);
    return rf.predict_proba(q);
  };

  Matrix serial;
  {
    ThreadsGuard guard(1);
    serial = fit_predict();
  }
  {
    ThreadsGuard guard(4);
    EXPECT_TRUE(bit_identical(fit_predict(), serial));
  }
}

}  // namespace
}  // namespace cnd
