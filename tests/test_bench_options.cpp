// Regression tests for bench::parse_options: valid flags parse, malformed
// values throw std::invalid_argument instead of silently defaulting, and
// --threads applies to the parallel runtime.
#include "bench_common.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

namespace cnd {
namespace {

/// Build a (argc, argv) pair from string arguments; storage outlives the call.
struct Argv {
  explicit Argv(std::vector<std::string> args) : store(std::move(args)) {
    ptrs.push_back(prog);
    for (auto& s : store) ptrs.push_back(s.data());
  }
  int argc() { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }

  char prog[6] = "bench";
  std::vector<std::string> store;
  std::vector<char*> ptrs;
};

bench::BenchOptions parse(std::vector<std::string> args) {
  Argv a(std::move(args));
  return bench::parse_options(a.argc(), a.argv());
}

TEST(BenchOptions, Defaults) {
  const bench::BenchOptions o = parse({});
  EXPECT_DOUBLE_EQ(o.size_scale, 0.5);
  EXPECT_EQ(o.seed, 42u);
  EXPECT_FALSE(o.verbose);
  EXPECT_EQ(o.threads, 0u);
}

TEST(BenchOptions, ParsesAllFlags) {
  const bench::BenchOptions o =
      parse({"--scale=0.25", "--seed=7", "--verbose", "--threads=2"});
  EXPECT_DOUBLE_EQ(o.size_scale, 0.25);
  EXPECT_EQ(o.seed, 7u);
  EXPECT_TRUE(o.verbose);
  EXPECT_EQ(o.threads, 2u);
  // --threads was applied to the runtime.
  EXPECT_EQ(runtime::threads(), 2u);
  runtime::set_threads(0);  // restore the default for other tests
}

TEST(BenchOptions, UnknownFlagsAreIgnored) {
  // google-benchmark binaries forward their own --benchmark_* flags.
  const bench::BenchOptions o = parse({"--benchmark_filter=BM_Pca", "extra"});
  EXPECT_DOUBLE_EQ(o.size_scale, 0.5);
}

TEST(BenchOptions, MalformedScaleThrows) {
  EXPECT_THROW(parse({"--scale=abc"}), std::invalid_argument);
  EXPECT_THROW(parse({"--scale="}), std::invalid_argument);
  EXPECT_THROW(parse({"--scale=0.5x"}), std::invalid_argument);
  EXPECT_THROW(parse({"--scale=0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--scale=-1"}), std::invalid_argument);
}

TEST(BenchOptions, MalformedSeedThrows) {
  EXPECT_THROW(parse({"--seed=12x"}), std::invalid_argument);
  EXPECT_THROW(parse({"--seed="}), std::invalid_argument);
  EXPECT_THROW(parse({"--seed=abc"}), std::invalid_argument);
  EXPECT_THROW(parse({"--seed=-3"}), std::invalid_argument);
}

TEST(BenchOptions, MalformedThreadsThrows) {
  EXPECT_THROW(parse({"--threads=abc"}), std::invalid_argument);
  EXPECT_THROW(parse({"--threads="}), std::invalid_argument);
  EXPECT_THROW(parse({"--threads=0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--threads=2x"}), std::invalid_argument);
}

TEST(BenchOptions, MetricsOutRequiresAPath) {
  EXPECT_THROW(parse({"--metrics-out="}), std::invalid_argument);
  EXPECT_THROW(parse({"--metrics-out"}), std::invalid_argument);
}

TEST(BenchOptions, MetricsOutEnablesObservability) {
  const std::string path =
      ::testing::TempDir() + "/test_bench_options_metrics.jsonl";
  // Parsing --metrics-out turns observability on and attaches a file sink;
  // both the '=' and separate-argument spellings must work.
  for (const std::vector<std::string>& args :
       {std::vector<std::string>{"--metrics-out=" + path},
        std::vector<std::string>{"--metrics-out", path}}) {
    const bench::BenchOptions o = parse(args);
    EXPECT_EQ(o.metrics_out, path);
    EXPECT_TRUE(obs::enabled());
    EXPECT_TRUE(obs::events().enabled());
    obs::events().set_sink(nullptr);  // restore the null backend
    obs::set_enabled(false);
  }
  std::remove(path.c_str());
}

TEST(BenchOptions, StripHarnessFlagsRemovesMetricsOut) {
  Argv a({"--metrics-out=x.jsonl", "--keep1", "--metrics-out", "y.jsonl",
          "--keep2", "--scale=0.5"});
  int argc = a.argc();
  bench::strip_harness_flags(argc, a.argv());
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(a.argv()[1], "--keep1");
  EXPECT_STREQ(a.argv()[2], "--keep2");
}

}  // namespace
}  // namespace cnd
