// Unit tests for Dropout and LayerNorm (including gradient checks).
#include "nn/regularization.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/linear.hpp"
#include "nn/losses.hpp"
#include "nn/sequential.hpp"

namespace cnd::nn {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (auto& v : m.row(i)) v = rng.normal();
  return m;
}

TEST(Dropout, IdentityAtInference) {
  Dropout drop(0.5);
  Matrix x{{1, 2, 3}};
  Matrix y = drop.forward(x, /*train=*/false);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(y(0, j), x(0, j));
}

TEST(Dropout, DropRateApproximatelyP) {
  Dropout drop(0.3);
  Matrix x(100, 100, 1.0);
  Matrix y = drop.forward(x, /*train=*/true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.rows(); ++i)
    for (double v : y.row(i)) zeros += (v == 0.0);
  const double rate = static_cast<double>(zeros) / 10000.0;
  EXPECT_NEAR(rate, 0.3, 0.03);
}

TEST(Dropout, InvertedScalingPreservesExpectation) {
  Dropout drop(0.4);
  Matrix x(200, 50, 2.0);
  Matrix y = drop.forward(x, /*train=*/true);
  double mean = 0.0;
  for (std::size_t i = 0; i < y.rows(); ++i)
    for (double v : y.row(i)) mean += v;
  mean /= static_cast<double>(y.size());
  EXPECT_NEAR(mean, 2.0, 0.1);
}

TEST(Dropout, BackwardMatchesMask) {
  Dropout drop(0.5);
  Matrix x(4, 6, 1.0);
  Matrix y = drop.forward(x, /*train=*/true);
  Matrix g(4, 6, 1.0);
  Matrix gx = drop.backward(g);
  // Gradient flows exactly where activations survived (same scaled mask).
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 6; ++j) EXPECT_EQ(gx(i, j), y(i, j));
}

TEST(Dropout, RejectsBadP) {
  EXPECT_THROW(Dropout(1.0), std::invalid_argument);
  EXPECT_THROW(Dropout(-0.1), std::invalid_argument);
}

TEST(LayerNorm, NormalizesRows) {
  LayerNorm ln(5);
  Rng rng(1);
  Matrix x = random_matrix(8, 5, rng);
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (auto& v : x.row(i)) v = v * 7.0 + 3.0;  // arbitrary scale/shift
  Matrix y = ln.forward(x, false);
  for (std::size_t i = 0; i < y.rows(); ++i) {
    double mean = 0.0, var = 0.0;
    for (double v : y.row(i)) mean += v;
    mean /= 5.0;
    for (double v : y.row(i)) var += (v - mean) * (v - mean);
    var /= 5.0;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNorm, GradientCheckThroughNetwork) {
  Rng rng(2);
  Sequential net;
  net.add(std::make_unique<Linear>(4, 6, rng));
  net.add(std::make_unique<LayerNorm>(6));
  net.add(std::make_unique<Linear>(6, 3, rng));
  Matrix x = random_matrix(5, 4, rng);
  Matrix t = random_matrix(5, 3, rng);

  net.zero_grad();
  Matrix out = net.forward(x, true);
  LossGrad lg = mse_loss(out, t);
  net.backward(lg.grad);
  std::vector<Matrix> analytic;
  for (auto p : net.params()) analytic.push_back(*p.grad);

  const double h = 1e-6;
  auto params = net.params();
  for (std::size_t k = 0; k < params.size(); ++k) {
    Matrix* w = params[k].value;
    for (std::size_t i = 0; i < w->rows(); ++i)
      for (std::size_t j = 0; j < w->cols(); ++j) {
        const double orig = (*w)(i, j);
        (*w)(i, j) = orig + h;
        const double lp = mse_loss(net.forward(x, false), t).loss;
        (*w)(i, j) = orig - h;
        const double lm = mse_loss(net.forward(x, false), t).loss;
        (*w)(i, j) = orig;
        EXPECT_NEAR(analytic[k](i, j), (lp - lm) / (2.0 * h), 1e-5)
            << "param " << k << " (" << i << "," << j << ")";
      }
  }
}

TEST(LayerNorm, CloneIsIndependent) {
  LayerNorm ln(3);
  auto copy = ln.clone();
  Matrix x{{1, 2, 3}};
  Matrix a = ln.forward(x, false);
  (*ln.params()[0].value)(0, 0) = 5.0;  // scale gamma on the original
  Matrix b = copy->forward(x, false);
  EXPECT_DOUBLE_EQ(a(0, 0), b(0, 0));
}

TEST(LayerNorm, RejectsWidthMismatch) {
  LayerNorm ln(4);
  EXPECT_THROW(ln.forward(Matrix(2, 3), false), std::invalid_argument);
}

}  // namespace
}  // namespace cnd::nn
