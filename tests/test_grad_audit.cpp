// Finite-difference audit of the hand-derived backprop (ISSUE 3).
//
// Every analytic gradient the training loop consumes — the autoencoder
// chain (Linear + activations through encoder and decoder), softmax
// cross-entropy, and the triplet margin loss — is compared entry-by-entry
// against a central finite difference of the scalar loss. These tests carry
// the `sanitize` ctest label so CI runs them in the hardened ASan+UBSan
// configuration: the audit loops also sweep every parameter element, which
// gives the sanitizers dense coverage of the nn read/write paths.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "nn/autoencoder.hpp"
#include "nn/linear.hpp"
#include "nn/losses.hpp"
#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace cnd::nn {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng, double scale = 1.0) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal(0.0, scale);
  return m;
}

/// Central-difference check of `analytic_grad` (dL/d entry of `value`)
/// against the scalar `loss_fn`, for every element of `value`.
void audit_matrix_grad(Matrix& value, const Matrix& analytic_grad,
                       const std::function<double()>& loss_fn,
                       const std::string& what) {
  ASSERT_TRUE(value.same_shape(analytic_grad)) << what;
  const double eps = 1e-5;
  for (std::size_t i = 0; i < value.rows(); ++i) {
    for (std::size_t j = 0; j < value.cols(); ++j) {
      const double orig = value(i, j);
      value(i, j) = orig + eps;
      const double fp = loss_fn();
      value(i, j) = orig - eps;
      const double fm = loss_fn();
      value(i, j) = orig;
      const double fd = (fp - fm) / (2.0 * eps);
      const double g = analytic_grad(i, j);
      EXPECT_NEAR(g, fd, 2e-6 + 1e-4 * std::abs(fd))
          << what << " entry (" << i << "," << j << ")";
    }
  }
}

TEST(GradAudit, AutoencoderReconstructionChain) {
  Rng rng(123);
  Autoencoder ae({.input_dim = 5, .hidden_dim = 6, .latent_dim = 3,
                  .dropout = 0.0},
                 rng);
  const Matrix x = random_matrix(8, 5, rng);

  // Analytic pass: accumulate gradients for every parameter.
  ae.zero_grad();
  Matrix h = ae.encoder().forward(x, /*train=*/true);
  Matrix y = ae.decoder().forward(h, /*train=*/true);
  LossGrad lg = mse_loss(y, x);
  Matrix gh = ae.decoder().backward(lg.grad);
  ae.encoder().backward(gh);

  const auto loss_fn = [&] { return mse_loss(ae.reconstruct(x), x).loss; };
  std::size_t k = 0;
  for (Param p : ae.params()) {
    audit_matrix_grad(*p.value, *p.grad, loss_fn,
                      "autoencoder param " + std::to_string(k++));
  }
}

TEST(GradAudit, SoftmaxCrossEntropyThroughLinear) {
  Rng rng(7);
  Linear lin(4, 3, rng);
  const Matrix x = random_matrix(6, 4, rng);
  std::vector<std::size_t> labels(x.rows());
  for (auto& l : labels) l = static_cast<std::size_t>(rng.randint(0, 2));

  Matrix z = lin.forward(x, /*train=*/true);
  LossGrad lg = softmax_cross_entropy(z, labels);
  lin.backward(lg.grad);

  const auto loss_fn = [&] {
    return softmax_cross_entropy(lin.forward(x, /*train=*/false), labels).loss;
  };
  std::size_t k = 0;
  for (Param p : lin.params()) {
    audit_matrix_grad(*p.value, *p.grad, loss_fn,
                      "linear param " + std::to_string(k++));
  }
}

TEST(GradAudit, TripletMarginLossOnEmbeddings) {
  Rng data_rng(11);
  Matrix emb = random_matrix(10, 4, data_rng);
  std::vector<int> labels(emb.rows());
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = i % 2 == 0 ? 0 : 1;

  // The loss samples triplets from the Rng; every evaluation must see the
  // same draws, so each call works on a fresh copy of the same base stream.
  const Rng base_rng(99);
  const double margin = 1.0;
  const std::size_t n_triplets = 32;

  Rng r0 = base_rng;
  const LossGrad lg = triplet_margin_loss(emb, labels, margin, r0, n_triplets);
  ASSERT_GT(lg.loss, 0.0) << "seed produced no active triplets; audit vacuous";

  const auto loss_fn = [&] {
    Rng r = base_rng;
    return triplet_margin_loss(emb, labels, margin, r, n_triplets).loss;
  };
  audit_matrix_grad(emb, lg.grad, loss_fn, "triplet embeddings");
}

TEST(GradAudit, MseLossGradientDirect) {
  Rng rng(5);
  Matrix pred = random_matrix(4, 3, rng);
  const Matrix target = random_matrix(4, 3, rng);
  const LossGrad lg = mse_loss(pred, target);
  const auto loss_fn = [&] { return mse_loss(pred, target).loss; };
  audit_matrix_grad(pred, lg.grad, loss_fn, "mse pred");
}

}  // namespace
}  // namespace cnd::nn
