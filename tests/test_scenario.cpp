// Scenario generators (src/scenario) and the adaptive-trigger detector:
// registry behavior, stream shapes, and the determinism contract — every
// scenario replays bit-identically from a fixed seed at 1 and 4 threads.
#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <stdexcept>

#include "core/adaptive_cnd_ids.hpp"
#include "core/detector_factory.hpp"
#include "data/synth.hpp"
#include "runtime/thread_pool.hpp"

namespace cnd::scenario {
namespace {

data::Dataset small_dataset() { return data::make_unsw_nb15(11, 0.08); }

ScenarioOptions small_options() {
  ScenarioOptions opt;
  opt.n_experiences = 3;
  opt.seed = 5;
  return opt;
}

bool same_matrix(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     a.rows() * a.cols() * sizeof(double)) == 0;
}

bool same_set(const data::ExperienceSet& a, const data::ExperienceSet& b) {
  if (!same_matrix(a.n_clean, b.n_clean) || a.size() != b.size()) return false;
  for (std::size_t e = 0; e < a.size(); ++e) {
    const data::Experience& x = a.experiences[e];
    const data::Experience& y = b.experiences[e];
    if (!same_matrix(x.x_train, y.x_train) || !same_matrix(x.x_test, y.x_test) ||
        x.y_test != y.y_test || x.test_class != y.test_class ||
        x.attack_classes_here != y.attack_classes_here)
      return false;
  }
  return true;
}

TEST(ScenarioRegistry, NamesAndUnknown) {
  const std::vector<std::string> names = scenario_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const std::string& n : names) {
    auto s = make_scenario(n);
    EXPECT_EQ(s->name(), n);
    EXPECT_FALSE(s->summary().empty());
  }
  try {
    make_scenario("nope");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("domain-incremental"),
              std::string::npos);
  }
}

TEST(ScenarioRegistry, RejectsBadOptions) {
  ScenarioOptions opt = small_options();
  opt.max_contamination = 1.0;
  const data::Dataset ds = small_dataset();
  EXPECT_THROW(make_scenario("contamination-ramp")->build(ds, opt),
               std::invalid_argument);
  opt = small_options();
  opt.n_experiences = 1;
  EXPECT_THROW(make_scenario("class-incremental")->build(ds, opt),
               std::invalid_argument);
}

TEST(Scenario, ShapesAreCoherent) {
  const data::Dataset ds = small_dataset();
  const ScenarioOptions opt = small_options();
  for (const std::string& name : scenario_names()) {
    const data::ExperienceSet es = make_scenario(name)->build(ds, opt);
    EXPECT_EQ(es.size(), opt.n_experiences) << name;
    EXPECT_GT(es.n_clean.rows(), 0u) << name;
    for (const data::Experience& e : es.experiences) {
      EXPECT_GT(e.x_train.rows(), 0u) << name;
      EXPECT_EQ(e.x_test.rows(), e.y_test.size()) << name;
      EXPECT_EQ(e.y_test.size(), e.test_class.size()) << name;
      EXPECT_EQ(e.x_train.cols(), es.n_clean.cols()) << name;
    }
  }
}

TEST(Scenario, ClassIncrementalMatchesPaperProtocol) {
  // The class-incremental scenario IS the paper's §III-A preparation.
  const data::Dataset ds = small_dataset();
  const ScenarioOptions opt = small_options();
  const data::ExperienceSet from_scenario =
      make_scenario("class-incremental")->build(ds, opt);
  const data::ExperienceSet direct = data::prepare_experiences(
      ds, {.n_experiences = opt.n_experiences, .clean_frac = opt.clean_frac,
           .train_frac = opt.train_frac, .standardize = true,
           .seed = opt.seed});
  EXPECT_TRUE(same_set(from_scenario, direct));
}

TEST(Scenario, SpreadPartitionPutsFamiliesEverywhere) {
  const data::Dataset ds = small_dataset();
  const data::ExperienceSet es =
      make_scenario("domain-incremental")->build(ds, small_options());
  std::set<int> seen;
  for (const data::Experience& e : es.experiences) {
    EXPECT_FALSE(e.attack_classes_here.empty());
    seen.insert(e.attack_classes_here.begin(), e.attack_classes_here.end());
  }
  EXPECT_EQ(seen.size(), ds.n_attack_classes());
  // Experience 0 already holds attacks AND normals in its test split: the
  // label space never changes, only the domain does.
  const std::vector<int>& y = es.experiences.front().y_test;
  EXPECT_NE(std::count(y.begin(), y.end(), 1), 0);
  EXPECT_NE(std::count(y.begin(), y.end(), 0), 0);
}

TEST(Scenario, DomainIncrementalShiftsLaterExperiences) {
  const data::Dataset ds = small_dataset();
  ScenarioOptions opt = small_options();
  const data::ExperienceSet drifted =
      make_scenario("domain-incremental")->build(ds, opt);
  opt.drift_magnitude = 0.0;
  const data::ExperienceSet still =
      make_scenario("domain-incremental")->build(ds, opt);
  // Experience 0 sits at the origin in both; later experiences move.
  EXPECT_TRUE(same_matrix(drifted.experiences[0].x_test,
                          still.experiences[0].x_test));
  for (std::size_t e = 1; e < drifted.size(); ++e) {
    double max_abs = 0.0;
    const Matrix& a = drifted.experiences[e].x_test;
    const Matrix& b = still.experiences[e].x_test;
    ASSERT_EQ(a.rows(), b.rows());
    for (std::size_t r = 0; r < a.rows(); ++r)
      for (std::size_t c = 0; c < a.cols(); ++c)
        max_abs = std::max(max_abs, std::abs(a(r, c) - b(r, c)));
    EXPECT_GT(max_abs, 0.0) << "experience " << e;
  }
}

TEST(Scenario, RecurringRegimeAlternates) {
  const data::Dataset ds = small_dataset();
  ScenarioOptions opt = small_options();
  const data::ExperienceSet rec =
      make_scenario("task-free-recurring")->build(ds, opt);
  opt.drift_magnitude = 0.0;
  const data::ExperienceSet still =
      make_scenario("task-free-recurring")->build(ds, opt);
  // Even experiences are regime A (unshifted), odd ones regime B.
  for (std::size_t e = 0; e < rec.size(); ++e) {
    const bool same = same_matrix(rec.experiences[e].x_test,
                                  still.experiences[e].x_test);
    EXPECT_EQ(same, e % 2 == 0) << "experience " << e;
  }
}

TEST(Scenario, ContaminationRampLeavesTestAndFirstTrainAlone) {
  const data::Dataset ds = small_dataset();
  const ScenarioOptions opt = small_options();
  const data::ExperienceSet ramp =
      make_scenario("contamination-ramp")->build(ds, opt);
  const data::ExperienceSet clean =
      make_scenario("class-incremental")->build(ds, opt);
  // Experience 0 has ramp share 0, and test splits are never contaminated.
  EXPECT_TRUE(same_matrix(ramp.experiences[0].x_train,
                          clean.experiences[0].x_train));
  for (std::size_t e = 0; e < ramp.size(); ++e)
    EXPECT_TRUE(same_matrix(ramp.experiences[e].x_test,
                            clean.experiences[e].x_test))
        << "experience " << e;
  // The last experience's training stream did change.
  EXPECT_FALSE(same_matrix(ramp.experiences.back().x_train,
                           clean.experiences.back().x_train));
}

TEST(Scenario, ReplaysBitIdenticallyAcrossThreadCounts) {
  const data::Dataset ds = small_dataset();
  const ScenarioOptions opt = small_options();
  const std::size_t before = runtime::threads();
  for (const std::string& name : scenario_names()) {
    runtime::set_threads(1);
    const data::ExperienceSet t1 = make_scenario(name)->build(ds, opt);
    runtime::set_threads(4);
    const data::ExperienceSet t4 = make_scenario(name)->build(ds, opt);
    EXPECT_TRUE(same_set(t1, t4)) << name << " differs between 1 and 4 threads";

    ScenarioOptions other = opt;
    other.seed = opt.seed + 1;
    const data::ExperienceSet reseeded = make_scenario(name)->build(ds, other);
    EXPECT_FALSE(same_set(t1, reseeded)) << name << " ignores the seed";
  }
  runtime::set_threads(before);
}

TEST(AdaptiveDetector, RegisteredWithDescription) {
  const std::vector<std::string> names = core::detector_names();
  EXPECT_EQ(names.size(), 13u);
  EXPECT_NE(std::find(names.begin(), names.end(), "Adaptive"), names.end());
  EXPECT_EQ(core::detector_kind("Adaptive"), core::DetectorKind::kContinual);
  EXPECT_NE(core::detector_description("Adaptive").find("Page-Hinkley"),
            std::string::npos);
  for (const std::string& n : names)
    EXPECT_FALSE(core::detector_description(n).empty()) << n;
}

TEST(AdaptiveDetector, SkipsStableStreamsAndRefitsOnDrift) {
  // Train on a tight blob, then feed the same distribution (should skip)
  // and a strongly shifted one (should refit).
  Rng rng(3);
  const auto blob = [&](double mean, std::size_t rows) {
    Matrix x(rows, 6);
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < 6; ++c) x(r, c) = rng.normal(mean, 1.0);
    return x;
  };
  const Matrix n_clean = blob(0.0, 128);
  const Matrix stream_same = blob(0.0, 512);
  const Matrix stream_shifted = blob(8.0, 512);

  core::CndIdsConfig det;
  det.cfe.hidden_dim = 16;
  det.cfe.latent_dim = 8;
  det.cfe.epochs = 2;
  det.cfe.kmeans_k = 2;
  core::AdaptiveCndIds adaptive(det);
  Matrix seed_x;
  std::vector<int> seed_y;
  adaptive.setup(core::SetupContext{n_clean, seed_x, seed_y});

  adaptive.observe_experience(blob(0.0, 512));  // bootstrap: always fits
  EXPECT_EQ(adaptive.updates(), 1u);
  adaptive.observe_experience(stream_same);
  EXPECT_EQ(adaptive.updates(), 1u);
  EXPECT_EQ(adaptive.skips(), 1u);
  adaptive.observe_experience(stream_shifted);
  EXPECT_EQ(adaptive.updates(), 2u);
  EXPECT_EQ(adaptive.drift_signals(), 1u);

  const std::vector<double> scores = adaptive.score(n_clean);
  EXPECT_EQ(scores.size(), n_clean.rows());
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(AdaptiveDetector, RejectsBadTriggerConfig) {
  core::AdaptiveTriggerConfig bad;
  bad.ph_lambda = 0.0;
  EXPECT_THROW(core::AdaptiveCndIds({}, bad), std::invalid_argument);
  bad = {};
  bad.chunk_rows = 1;
  EXPECT_THROW(core::AdaptiveCndIds({}, bad), std::invalid_argument);
}

}  // namespace
}  // namespace cnd::scenario
