// Equivalence and allocation tests for the register-blocked kernels
// (tensor/kernels.{hpp,cpp}).
//
// The blocked kernels must be bit-identical to the naive reference kernels —
// that is the accumulation-order contract (docs/PARALLELISM.md) — at any
// thread count, over shapes that straddle every tile boundary. The second
// half of the file checks the zero-allocation promise of the `_into` hot
// paths with a counting global operator new.
#include "tensor/kernels.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "linalg/distance.hpp"
#include "ml/incremental_pca.hpp"
#include "ml/pca.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

// ---- Counting allocation probe ---------------------------------------------
//
// Replacing the global allocation functions is the only way to observe heap
// traffic without external tooling; the counter has no effect on behaviour.
// Sized/array forms all funnel through the same counter.
//
// GCC flags `new T` paired with the std::free inside our replaced delete as
// a mismatch once inlining exposes both; the pairing is in fact consistent
// (every form below allocates with malloc), so silence the false positive.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::size_t> g_news{0};
}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace cnd {
namespace {

struct ThreadsGuard {
  explicit ThreadsGuard(std::size_t n) { runtime::set_threads(n); }
  ~ThreadsGuard() { runtime::set_threads(0); }
};

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  return m;
}

bool bit_identical(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

struct Shape {
  std::size_t m, k, n;
};

// Straddles every tile boundary: below/at/above kMr (4) and kNr (8) in the
// output dimensions, below/at/above kKc (256) in the inner dimension, plus
// primes and off-by-ones around powers of two.
const std::vector<Shape>& sweep_shapes() {
  static const std::vector<Shape> shapes = {
      {1, 1, 1},    {1, 7, 1},     {2, 3, 5},     {3, 8, 9},    {4, 4, 4},
      {4, 8, 8},    {5, 9, 7},     {7, 5, 3},     {8, 8, 8},    {9, 17, 5},
      {12, 16, 8},  {16, 16, 16},  {17, 31, 9},   {31, 33, 17}, {33, 64, 31},
      {48, 48, 48}, {63, 65, 64},  {64, 257, 8},  {3, 256, 11}, {2, 255, 3},
      {5, 300, 12}, {100, 127, 33}, {65, 256, 9}, {2, 511, 3},  {128, 129, 127},
  };
  return shapes;
}

// ---- Blocked vs reference, bit-for-bit -------------------------------------

void sweep_all_kernels() {
  Rng rng(7);
  for (const auto& s : sweep_shapes()) {
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix b = random_matrix(s.k, s.n, rng);
    Matrix c, ref;

    matmul_into(c, a, b);
    kernels::matmul_ref(ref, a, b);
    EXPECT_TRUE(bit_identical(c, ref)) << "matmul " << s.m << "x" << s.k << "x" << s.n;

    const Matrix bt = random_matrix(s.n, s.k, rng);  // b^T layout: n x k
    matmul_bt_into(c, a, bt);
    kernels::matmul_bt_ref(ref, a, bt);
    EXPECT_TRUE(bit_identical(c, ref)) << "matmul_bt " << s.m << "x" << s.k << "x" << s.n;

    const Matrix at = random_matrix(s.k, s.m, rng);  // a^T layout: k x m
    matmul_at_into(c, at, b);
    kernels::matmul_at_ref(ref, at, b);
    EXPECT_TRUE(bit_identical(c, ref)) << "matmul_at " << s.m << "x" << s.k << "x" << s.n;

    c = random_matrix(s.m, s.n, rng);  // accumulation starts from existing c
    ref = c;
    matmul_at_add_into(c, at, b);
    kernels::matmul_at_add_ref(ref, at, b);
    EXPECT_TRUE(bit_identical(c, ref)) << "matmul_at_add " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(Kernels, MatchesReferenceSerial) {
  ThreadsGuard guard(1);
  sweep_all_kernels();
}

TEST(Kernels, MatchesReferenceFourThreads) {
  ThreadsGuard guard(4);
  sweep_all_kernels();
}

TEST(Kernels, RowSliceMatchesFullProduct) {
  Rng rng(11);
  const Matrix a = random_matrix(37, 19, rng);
  const Matrix b = random_matrix(23, 19, rng);
  Matrix full, slice;
  matmul_bt_into(full, a, b);
  const std::vector<std::pair<std::size_t, std::size_t>> ranges = {
      {0, 37}, {5, 12}, {0, 1}, {36, 37}, {8, 8}};
  for (auto [lo, hi] : ranges) {
    matmul_bt_rows_into(slice, a, lo, hi, b);
    ASSERT_EQ(slice.rows(), hi - lo);
    for (std::size_t i = lo; i < hi; ++i)
      for (std::size_t j = 0; j < b.rows(); ++j)
        EXPECT_EQ(slice(i - lo, j), full(i, j));
  }
}

TEST(Kernels, ElementwiseHelpers) {
  Rng rng(3);
  const Matrix a = random_matrix(9, 13, rng);
  const Matrix b = random_matrix(9, 13, rng);
  const std::vector<double> v = random_matrix(1, 13, rng).row_vec(0);

  Matrix out;
  sub_rowvec_into(out, a, v);
  EXPECT_TRUE(bit_identical(out, sub_rowvec(a, v)));

  hadamard_into(out, a, b);
  EXPECT_TRUE(bit_identical(out, hadamard(a, b)));

  Matrix inplace = a;
  add_rowvec_inplace(inplace, v);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      EXPECT_EQ(inplace(i, j), a(i, j) + v[j]);
}

TEST(Kernels, IntoVariantsRejectBadShapes) {
  Matrix a(3, 4), b(5, 2), c;
  EXPECT_THROW(matmul_into(c, a, b), std::invalid_argument);
  EXPECT_THROW(matmul_bt_into(c, a, Matrix(2, 5)), std::invalid_argument);
  EXPECT_THROW(matmul_at_into(c, a, Matrix(4, 2)), std::invalid_argument);
  Matrix acc(3, 3);  // wrong: a^T(4x3) * b(3x2) wants 4 x 2
  EXPECT_THROW(matmul_at_add_into(acc, a, Matrix(3, 2)), std::invalid_argument);
  EXPECT_THROW(sub_rowvec_into(c, a, std::vector<double>(3)), std::invalid_argument);
  EXPECT_THROW(hadamard_into(c, a, Matrix(4, 3)), std::invalid_argument);
  EXPECT_THROW(matmul_bt_rows_into(c, a, 2, 1, Matrix(5, 4)), std::invalid_argument);
}

TEST(Kernels, IntoVariantsRejectAliasedOutput) {
  Matrix a(4, 4, 1.0), b(4, 4, 2.0);
  EXPECT_THROW(matmul_into(a, a, b), std::invalid_argument);
  EXPECT_THROW(matmul_into(b, a, b), std::invalid_argument);
  EXPECT_THROW(matmul_bt_into(a, a, b), std::invalid_argument);
  EXPECT_THROW(matmul_at_into(a, a, b), std::invalid_argument);
  EXPECT_THROW(matmul_at_add_into(a, a, b), std::invalid_argument);
  EXPECT_THROW(hadamard_into(a, a, b), std::invalid_argument);
  EXPECT_THROW(sub_rowvec_into(a, a, std::vector<double>(4)), std::invalid_argument);
}

// ---- matmul wrappers stay on the blocked kernels ---------------------------

TEST(Kernels, AllocatingWrappersMatchReference) {
  Rng rng(19);
  const Matrix a = random_matrix(21, 34, rng);
  const Matrix b = random_matrix(34, 13, rng);
  Matrix ref;
  kernels::matmul_ref(ref, a, b);
  EXPECT_TRUE(bit_identical(matmul(a, b), ref));
  const Matrix bt = random_matrix(13, 34, rng);
  kernels::matmul_bt_ref(ref, a, bt);
  EXPECT_TRUE(bit_identical(matmul_bt(a, bt), ref));
  const Matrix at = random_matrix(34, 21, rng);
  kernels::matmul_at_ref(ref, at, b);
  EXPECT_TRUE(bit_identical(matmul_at(at, b), ref));
}

// ---- Fused distances -------------------------------------------------------

TEST(Kernels, FusedSelfDistanceIsExactlyZero) {
  Rng rng(23);
  const Matrix a = random_matrix(40, 17, rng);
  const Matrix d = linalg::pairwise_dist(a, a);
  for (std::size_t i = 0; i < a.rows(); ++i) EXPECT_EQ(d(i, i), 0.0);
}

TEST(Kernels, FusedDistanceMatchesScalarWithinTolerance) {
  Rng rng(29);
  const Matrix a = random_matrix(33, 21, rng);
  const Matrix b = random_matrix(27, 21, rng);
  Workspace ws;
  Matrix d2;
  linalg::pairwise_sq_dist_into(d2, a, b, ws);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double exact = sq_dist(a.row(i), b.row(j));
      EXPECT_NEAR(d2(i, j), exact, 1e-9 * (1.0 + exact));
    }
}

TEST(Kernels, DistancesThreadInvariant) {
  Rng rng(31);
  const Matrix a = random_matrix(70, 12, rng);
  Matrix d1, d4;
  linalg::Knn k1, k4;
  {
    ThreadsGuard guard(1);
    d1 = linalg::pairwise_dist(a, a);
    k1 = linalg::knn(a, a, 5, /*exclude_self=*/true);
  }
  {
    ThreadsGuard guard(4);
    d4 = linalg::pairwise_dist(a, a);
    k4 = linalg::knn(a, a, 5, /*exclude_self=*/true);
  }
  EXPECT_TRUE(bit_identical(d1, d4));
  EXPECT_EQ(k1.indices, k4.indices);
  for (std::size_t i = 0; i < a.rows(); ++i)
    EXPECT_EQ(k1.distances[i], k4.distances[i]);
}

TEST(Kernels, KnnBreaksDistanceTiesByAscendingIndex) {
  // Four reference points all at distance 1 from the origin query: the
  // bounded heap must keep the lowest indices, in ascending order.
  Matrix ref{{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
  Matrix q{{0, 0}};
  const auto nn = linalg::knn(q, ref, 3, /*exclude_self=*/false);
  EXPECT_EQ(nn.indices[0], (std::vector<std::size_t>{0, 1, 2}));
}

// ---- Zero-allocation steady state ------------------------------------------
//
// All probes pin the runtime to one lane: with threads() == 1 parallel_for
// runs inline with no pool, so any allocation observed belongs to the code
// under test. Two warm-up iterations size every cache/scratch buffer, after
// which the counter must stand still.

TEST(ZeroAlloc, LinearForwardBackwardSteadyState) {
  ThreadsGuard guard(1);
  Rng rng(5);
  nn::Linear lin(32, 16, rng);
  const Matrix x = random_matrix(8, 32, rng);
  const Matrix gout = random_matrix(8, 16, rng);
  Matrix y, gin;
  for (int i = 0; i < 2; ++i) {
    lin.forward_into(x, y, /*train=*/true);
    lin.backward_into(gout, gin);
  }
  const std::size_t before = g_news.load();
  for (int i = 0; i < 10; ++i) {
    lin.forward_into(x, y, /*train=*/true);
    lin.backward_into(gout, gin);
  }
  EXPECT_EQ(g_news.load() - before, 0u);
}

TEST(ZeroAlloc, SequentialAutoencoderStepSteadyState) {
  ThreadsGuard guard(1);
  Rng rng(9);
  nn::Sequential net;
  net.add(std::make_unique<nn::Linear>(24, 12, rng));
  net.add(std::make_unique<nn::ReLU>());
  net.add(std::make_unique<nn::Linear>(12, 24, rng));
  const Matrix x = random_matrix(16, 24, rng);
  const Matrix gout = random_matrix(16, 24, rng);
  Matrix y, gin;
  for (int i = 0; i < 2; ++i) {
    net.zero_grad();
    net.forward_into(x, y, /*train=*/true);
    net.backward_into(gout, gin);
  }
  const std::size_t before = g_news.load();
  for (int i = 0; i < 10; ++i) {
    net.zero_grad();
    net.forward_into(x, y, /*train=*/true);
    net.backward_into(gout, gin);
  }
  EXPECT_EQ(g_news.load() - before, 0u);
}

TEST(ZeroAlloc, PcaScoreIntoSteadyState) {
  ThreadsGuard guard(1);
  Rng rng(13);
  const Matrix train = random_matrix(64, 10, rng);
  ml::Pca pca({.explained_variance = 0.9});
  pca.fit(train);
  const Matrix x = random_matrix(32, 10, rng);
  Workspace ws;
  std::vector<double> scores;
  for (int i = 0; i < 2; ++i) pca.score_into(x, scores, ws);
  EXPECT_EQ(scores, pca.score(x));  // bit-identical to the allocating path
  const std::size_t before = g_news.load();
  for (int i = 0; i < 10; ++i) pca.score_into(x, scores, ws);
  EXPECT_EQ(g_news.load() - before, 0u);
}

TEST(ZeroAlloc, IncrementalPcaPartialFitSteadyState) {
  ThreadsGuard guard(1);
  Rng rng(17);
  ml::IncrementalPca ipca;
  const Matrix batch = random_matrix(32, 10, rng);
  for (int i = 0; i < 2; ++i) ipca.partial_fit(batch);
  const std::size_t before = g_news.load();
  for (int i = 0; i < 10; ++i) ipca.partial_fit(batch);
  EXPECT_EQ(g_news.load() - before, 0u);

  ipca.refresh();
  Workspace ws;
  std::vector<double> scores;
  for (int i = 0; i < 2; ++i) ipca.score_into(batch, scores, ws);
  EXPECT_EQ(scores, ipca.score(batch));
  const std::size_t before_score = g_news.load();
  for (int i = 0; i < 10; ++i) ipca.score_into(batch, scores, ws);
  EXPECT_EQ(g_news.load() - before_score, 0u);
}

TEST(ZeroAlloc, WorkspaceSlotsReuseAllocations) {
  Workspace ws;
  ws.mat(0, 8, 8);
  ws.vec(0, 64);
  const std::size_t before = g_news.load();
  for (int i = 0; i < 10; ++i) {
    ws.mat(0, 8, 8);
    ws.mat(0, 4, 4);  // shrinking reuses capacity
    ws.vec(0, 64);
    ws.vec(0, 16);
  }
  EXPECT_EQ(g_news.load() - before, 0u);
}

}  // namespace
}  // namespace cnd
