// Unit tests for the data layer: Dataset, flow generator, the four synthetic
// dataset constructors, CSV I/O, and the §III-A experience preparation.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "data/csv.hpp"
#include "data/experiences.hpp"
#include "data/flow_generator.hpp"
#include "data/synth.hpp"
#include "linalg/stats.hpp"

namespace cnd::data {
namespace {

TEST(Dataset, ValidateCatchesInconsistency) {
  Dataset ds;
  ds.x = Matrix(2, 2);
  ds.y = {0, 1};
  ds.attack_class = {-1, 0};
  ds.class_names = {"a"};
  EXPECT_NO_THROW(ds.validate());

  Dataset bad = ds;
  bad.attack_class = {0, 0};  // normal row with a class id
  EXPECT_THROW(bad.validate(), std::logic_error);

  Dataset bad2 = ds;
  bad2.attack_class = {-1, 5};  // out-of-range class
  EXPECT_THROW(bad2.validate(), std::logic_error);
}

TEST(Dataset, TakePreservesLabels) {
  Dataset ds;
  ds.x = Matrix{{1, 1}, {2, 2}, {3, 3}};
  ds.y = {0, 1, 0};
  ds.attack_class = {-1, 0, -1};
  ds.class_names = {"dos"};
  Dataset sub = ds.take({1, 2});
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.y[0], 1);
  EXPECT_EQ(sub.attack_class[0], 0);
  EXPECT_EQ(sub.x(0, 0), 2.0);
}

TEST(FlowGenerator, ProfilesAreSeparated) {
  Rng rng(1);
  FlowGenerator gen(10, 3, 0.5, rng);
  const auto normal = gen.add_profile("normal", 0.0, 1.0, 0.0, 0.0, 0.0, 0.5, 0.0, rng);
  const auto attack = gen.add_profile("attack", 10.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, rng);
  Matrix xn = gen.sample(normal, 100, 0.0, rng);
  Matrix xa = gen.sample(attack, 100, 0.0, rng);
  auto mn = col_mean(xn);
  auto ma = col_mean(xa);
  // The means must be far apart relative to the noise.
  EXPECT_GT(std::sqrt(sq_dist(mn, ma)), 5.0);
}

TEST(FlowGenerator, DriftMovesTheMean) {
  Rng rng(2);
  FlowGenerator gen(8, 2, 0.3, rng);
  const auto p = gen.add_profile("drifty", 0.0, 0.5, 0.0, /*drift=*/4.0, 0.0, 0.5, 0.0, rng);
  Matrix early = gen.sample(p, 300, 0.0, rng);
  Matrix late = gen.sample(p, 300, 1.0, rng);
  auto me = col_mean(early);
  auto ml = col_mean(late);
  EXPECT_NEAR(std::sqrt(sq_dist(me, ml)), 4.0, 1.0);
}

TEST(FlowGenerator, CorrelatedFeatures) {
  Rng rng(3);
  FlowGenerator gen(6, 1, 0.8, rng);  // rank-1 mixing dominating the noise
  const auto p = gen.add_profile("corr", 0.0, 0.2, 0.0, 0.0, 0.0, 0.5, 0.0, rng);
  Matrix x = gen.sample(p, 500, 0.0, rng);
  double max_corr = 0.0;
  for (std::size_t a = 0; a < 6; ++a)
    for (std::size_t b = a + 1; b < 6; ++b)
      max_corr = std::max(max_corr,
                          std::abs(linalg::pearson(x.col_vec(a), x.col_vec(b))));
  EXPECT_GT(max_corr, 0.8);
}

TEST(FlowGenerator, SubspaceShiftChangesCovarianceNotMean) {
  Rng rng(4);
  FlowGenerator gen(8, 3, 1.0, rng);
  const auto base = gen.add_profile("base", 0.0, 0.5, 0.0, 0.0, 0.0, 0.5, 0.0, rng);
  const auto shifted = gen.add_profile("shifted", 0.0, 0.5, 0.0, 0.0, 1.0, 0.5, 0.0, rng);
  Matrix xb = gen.sample(base, 800, 0.0, rng);
  Matrix xs = gen.sample(shifted, 800, 0.0, rng);
  // Means coincide (both at the origin)...
  EXPECT_LT(std::sqrt(sq_dist(col_mean(xb), col_mean(xs))), 1.0);
  // ...but the covariance structure differs measurably.
  Matrix cb = linalg::covariance(xb);
  Matrix cs = linalg::covariance(xs);
  EXPECT_GT(frobenius_sq(cb - cs), 1.0);
}

TEST(Synth, PaperDatasetShapesMatchTableI) {
  const Dataset xiiot = make_x_iiotid(1);
  EXPECT_EQ(xiiot.n_attack_classes(), 18u);
  EXPECT_GT(static_cast<double>(xiiot.n_normals()),
            static_cast<double>(xiiot.n_attacks()) * 0.9);  // ~51/49 split

  const Dataset wustl = make_wustl_iiot(1);
  EXPECT_EQ(wustl.n_attack_classes(), 4u);
  // WUSTL is ~7% attack.
  const double attack_frac = static_cast<double>(wustl.n_attacks()) /
                             static_cast<double>(wustl.size());
  EXPECT_LT(attack_frac, 0.12);
  EXPECT_GT(attack_frac, 0.03);

  const Dataset cicids = make_cicids2017(1);
  EXPECT_EQ(cicids.n_attack_classes(), 15u);

  const Dataset unsw = make_unsw_nb15(1);
  EXPECT_EQ(unsw.n_attack_classes(), 10u);
  EXPECT_EQ(unsw.n_features(), 40u);
}

TEST(Synth, DeterministicGivenSeed) {
  const Dataset a = make_unsw_nb15(7, 0.2);
  const Dataset b = make_unsw_nb15(7, 0.2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 97)
    for (std::size_t j = 0; j < a.n_features(); ++j)
      EXPECT_DOUBLE_EQ(a.x(i, j), b.x(i, j));
}

TEST(Synth, EveryAttackClassPresent) {
  const Dataset ds = make_cicids2017(3, 0.3);
  std::set<int> seen;
  for (int c : ds.attack_class)
    if (c >= 0) seen.insert(c);
  EXPECT_EQ(seen.size(), 15u);
}

TEST(Synth, AllDatasetsValidate) {
  for (const auto& ds : make_all_paper_datasets(5, 0.15)) {
    EXPECT_NO_THROW(ds.validate());
    EXPECT_GT(ds.n_attacks(), 0u);
    EXPECT_GT(ds.n_normals(), 0u);
  }
}

TEST(Csv, RoundTrip) {
  Dataset ds = make_wustl_iiot(11, 0.05);
  const std::string path = "/tmp/cnd_test_roundtrip.csv";
  save_csv(ds, path);
  Dataset back = load_csv(path, ds.name);
  ASSERT_EQ(back.size(), ds.size());
  ASSERT_EQ(back.n_features(), ds.n_features());
  for (std::size_t i = 0; i < ds.size(); i += 53) {
    EXPECT_EQ(back.y[i], ds.y[i]);
    EXPECT_EQ(back.attack_class[i], ds.attack_class[i]);
    for (std::size_t j = 0; j < ds.n_features(); ++j)
      EXPECT_NEAR(back.x(i, j), ds.x(i, j), 1e-6);
  }
  std::remove(path.c_str());
}

TEST(Csv, LoadRejectsMissingFile) {
  EXPECT_THROW(load_csv("/tmp/does_not_exist_cnd.csv"), std::invalid_argument);
}

TEST(Experiences, ProtocolStructure) {
  const Dataset ds = make_unsw_nb15(13, 0.4);
  const PrepConfig cfg{.n_experiences = 5, .clean_frac = 0.10, .train_frac = 0.7};
  const ExperienceSet es = prepare_experiences(ds, cfg);

  EXPECT_EQ(es.size(), 5u);
  // N_c is ~10% of normal rows.
  EXPECT_NEAR(static_cast<double>(es.n_clean.rows()),
              0.10 * static_cast<double>(ds.n_normals()),
              static_cast<double>(ds.n_normals()) * 0.01 + 2.0);

  // Every attack family appears in exactly one experience.
  std::set<int> seen;
  std::size_t total_classes = 0;
  for (const auto& e : es.experiences) {
    for (int c : e.attack_classes_here) {
      EXPECT_TRUE(seen.insert(c).second) << "family in two experiences";
      ++total_classes;
    }
  }
  EXPECT_EQ(total_classes, ds.n_attack_classes());

  // Test labels match the family column, and both classes appear.
  for (const auto& e : es.experiences) {
    ASSERT_EQ(e.y_test.size(), e.x_test.rows());
    ASSERT_EQ(e.test_class.size(), e.x_test.rows());
    bool has_normal = false, has_attack = false;
    for (std::size_t i = 0; i < e.y_test.size(); ++i) {
      EXPECT_EQ(e.y_test[i], e.test_class[i] >= 0 ? 1 : 0);
      has_normal |= (e.y_test[i] == 0);
      has_attack |= (e.y_test[i] == 1);
    }
    EXPECT_TRUE(has_normal);
    EXPECT_TRUE(has_attack);
    // Train/test proportions roughly honored.
    const double frac = static_cast<double>(e.x_train.rows()) /
                        static_cast<double>(e.x_train.rows() + e.x_test.rows());
    EXPECT_NEAR(frac, 0.7, 0.02);
  }
}

TEST(Experiences, AttackFamiliesOnlyInTheirExperience) {
  const Dataset ds = make_wustl_iiot(17, 0.4);
  const ExperienceSet es = prepare_experiences(ds, {.n_experiences = 4});
  for (std::size_t e = 0; e < es.size(); ++e) {
    const auto& here = es.experiences[e].attack_classes_here;
    const std::set<int> allowed(here.begin(), here.end());
    for (int c : es.experiences[e].test_class) {
      if (c >= 0) {
        EXPECT_TRUE(allowed.count(c)) << "foreign family in test set";
      }
    }
  }
}

TEST(Experiences, StandardizationUsesCleanStats) {
  const Dataset ds = make_unsw_nb15(19, 0.3);
  const ExperienceSet es = prepare_experiences(ds, {.n_experiences = 5});
  // N_c itself must be ~standard normal per column.
  auto mu = col_mean(es.n_clean);
  for (double v : mu) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Experiences, RejectsImpossibleSplits) {
  const Dataset ds = make_wustl_iiot(23, 0.3);  // 4 attack classes
  EXPECT_THROW(prepare_experiences(ds, {.n_experiences = 6}), std::invalid_argument);
  EXPECT_THROW(prepare_experiences(ds, {.n_experiences = 1}), std::invalid_argument);
  PrepConfig bad;
  bad.clean_frac = 0.0;
  EXPECT_THROW(prepare_experiences(ds, bad), std::invalid_argument);
}

}  // namespace
}  // namespace cnd::data
