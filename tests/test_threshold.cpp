// Unit tests for Best-F and quantile thresholding.
#include "eval/threshold.hpp"

#include <gtest/gtest.h>

#include "eval/metrics.hpp"

namespace cnd::eval {
namespace {

TEST(BestF, PerfectSeparationGivesF1One) {
  const std::vector<double> s{5.0, 4.0, 1.0, 0.5};
  const std::vector<int> y{1, 1, 0, 0};
  auto r = best_f_threshold(s, y);
  EXPECT_DOUBLE_EQ(r.f1, 1.0);
  // Threshold sits between the classes.
  EXPECT_GT(r.threshold, 1.0);
  EXPECT_LT(r.threshold, 4.0);
}

TEST(BestF, MatchesExhaustiveSearch) {
  const std::vector<double> s{0.1, 0.9, 0.3, 0.8, 0.5, 0.4, 0.7, 0.2};
  const std::vector<int> y{0, 1, 0, 0, 1, 1, 1, 0};
  auto r = best_f_threshold(s, y);

  // Brute-force over a fine grid.
  double best = 0.0;
  for (double t = -0.05; t <= 1.05; t += 0.001) {
    const double f1 = f1_score(apply_threshold(s, t), y);
    best = std::max(best, f1);
  }
  EXPECT_NEAR(r.f1, best, 1e-9);
  // The returned threshold reproduces the returned F1.
  EXPECT_NEAR(f1_score(apply_threshold(s, r.threshold), y), r.f1, 1e-12);
}

TEST(BestF, TiedScoresHandled) {
  const std::vector<double> s{1.0, 1.0, 1.0, 0.0};
  const std::vector<int> y{1, 1, 0, 0};
  auto r = best_f_threshold(s, y);
  // Cut below the tied block: P = 2/3, R = 1 -> F1 = 0.8.
  EXPECT_NEAR(r.f1, 0.8, 1e-12);
  EXPECT_NEAR(f1_score(apply_threshold(s, r.threshold), y), r.f1, 1e-12);
}

TEST(BestF, AllNegativeLabels) {
  const std::vector<double> s{0.3, 0.2};
  const std::vector<int> y{0, 0};
  auto r = best_f_threshold(s, y);
  // No positives: predicting nothing is optimal (F1 defined as 1 here since
  // there is nothing to find).
  EXPECT_DOUBLE_EQ(r.f1, 1.0);
  EXPECT_TRUE(apply_threshold(s, r.threshold) == (std::vector<int>{0, 0}));
}

TEST(BestF, RejectsEmpty) {
  EXPECT_THROW(best_f_threshold({}, {}), std::invalid_argument);
}

TEST(QuantileThreshold, InterpolatesAndBounds) {
  std::vector<double> cal{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(quantile_threshold(cal, 0.5), 5.0);
  EXPECT_NEAR(quantile_threshold(cal, 0.95), 9.5, 1e-12);
  EXPECT_THROW(quantile_threshold(cal, 0.0), std::invalid_argument);
  EXPECT_THROW(quantile_threshold({}, 0.5), std::invalid_argument);
}

TEST(ApplyThreshold, StrictInequality) {
  const std::vector<double> s{1.0, 2.0, 3.0};
  const auto p = apply_threshold(s, 2.0);
  EXPECT_EQ(p, (std::vector<int>{0, 0, 1}));
}

}  // namespace
}  // namespace cnd::eval
