// Unit tests for cnd::Matrix and its free-function algebra.
#include "tensor/matrix.hpp"

#include <gtest/gtest.h>

#include "tensor/assert.hpp"

namespace cnd {
namespace {

TEST(Matrix, ConstructZeroFilled) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(m(i, j), 0.0);
}

TEST(Matrix, ConstructFillValue) {
  Matrix m(2, 2, 7.5);
  EXPECT_EQ(m(0, 0), 7.5);
  EXPECT_EQ(m(1, 1), 7.5);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(0, 2), 3.0);
  EXPECT_EQ(m(1, 0), 4.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, OutOfBoundsAccessThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), std::logic_error);
  EXPECT_THROW(m(0, 2), std::logic_error);
}

TEST(Matrix, RowSpanWritesThrough) {
  Matrix m(2, 3);
  auto r = m.row(1);
  r[2] = 9.0;
  EXPECT_EQ(m(1, 2), 9.0);
}

TEST(Matrix, SetRowAndRowVec) {
  Matrix m(2, 3);
  const std::vector<double> v{1, 2, 3};
  m.set_row(0, v);
  EXPECT_EQ(m.row_vec(0), v);
  EXPECT_THROW(m.set_row(0, std::vector<double>{1, 2}), std::invalid_argument);
}

TEST(Matrix, ColVec) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.col_vec(1), (std::vector<double>{2, 4, 6}));
}

TEST(Matrix, TakeRows) {
  Matrix m{{1, 1}, {2, 2}, {3, 3}};
  Matrix t = m.take_rows({2, 0});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t(0, 0), 3.0);
  EXPECT_EQ(t(1, 0), 1.0);
  EXPECT_THROW(m.take_rows({5}), std::invalid_argument);
}

TEST(Matrix, AppendRows) {
  Matrix a{{1, 2}};
  Matrix b{{3, 4}, {5, 6}};
  a.append_rows(b);
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_EQ(a(2, 1), 6.0);
  Matrix empty;
  empty.append_rows(a);
  EXPECT_EQ(empty.rows(), 3u);
  Matrix mismatch{{1, 2, 3}};
  EXPECT_THROW(a.append_rows(mismatch), std::invalid_argument);
}

TEST(Matrix, ElementwiseArithmetic) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{10, 20}, {30, 40}};
  Matrix c = a + b;
  EXPECT_EQ(c(1, 1), 44.0);
  Matrix d = b - a;
  EXPECT_EQ(d(0, 0), 9.0);
  Matrix e = a * 2.0;
  EXPECT_EQ(e(1, 0), 6.0);
  Matrix f = 3.0 * a;
  EXPECT_EQ(f(0, 1), 6.0);
  EXPECT_THROW(a += Matrix(1, 2), std::invalid_argument);
}

TEST(Matrix, MatmulKnownProduct) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = matmul(a, b);
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatmulShapeMismatchThrows) {
  EXPECT_THROW(matmul(Matrix(2, 3), Matrix(2, 3)), std::invalid_argument);
}

TEST(Matrix, MatmulBtEqualsExplicitTranspose) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix b{{7, 8, 9}, {1, 2, 3}, {4, 5, 6}, {0, 1, 0}};
  Matrix expected = matmul(a, transpose(b));
  Matrix got = matmul_bt(a, b);
  ASSERT_TRUE(got.same_shape(expected));
  for (std::size_t i = 0; i < got.rows(); ++i)
    for (std::size_t j = 0; j < got.cols(); ++j)
      EXPECT_DOUBLE_EQ(got(i, j), expected(i, j));
}

TEST(Matrix, MatmulAtEqualsExplicitTranspose) {
  Matrix a{{1, 2}, {3, 4}, {5, 6}};
  Matrix b{{7, 8, 9}, {1, 2, 3}, {4, 5, 6}};
  Matrix expected = matmul(transpose(a), b);
  Matrix got = matmul_at(a, b);
  ASSERT_TRUE(got.same_shape(expected));
  for (std::size_t i = 0; i < got.rows(); ++i)
    for (std::size_t j = 0; j < got.cols(); ++j)
      EXPECT_DOUBLE_EQ(got(i, j), expected(i, j));
}

TEST(Matrix, TransposeInvolution) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix t = transpose(transpose(a));
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) EXPECT_EQ(t(i, j), a(i, j));
}

TEST(Matrix, Hadamard) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{2, 2}, {3, 3}};
  Matrix h = hadamard(a, b);
  EXPECT_EQ(h(0, 0), 2.0);
  EXPECT_EQ(h(1, 1), 12.0);
}

TEST(Matrix, ColMeanAndStddev) {
  Matrix m{{1, 10}, {3, 30}};
  auto mu = col_mean(m);
  EXPECT_DOUBLE_EQ(mu[0], 2.0);
  EXPECT_DOUBLE_EQ(mu[1], 20.0);
  auto sd = col_stddev(m, mu);
  EXPECT_DOUBLE_EQ(sd[0], 1.0);
  EXPECT_DOUBLE_EQ(sd[1], 10.0);
}

TEST(Matrix, SubRowvec) {
  Matrix m{{1, 2}, {3, 4}};
  const std::vector<double> v{1, 1};
  Matrix out = sub_rowvec(m, v);
  EXPECT_EQ(out(0, 0), 0.0);
  EXPECT_EQ(out(1, 1), 3.0);
}

TEST(Matrix, FrobeniusAndDistances) {
  Matrix m{{3, 4}};
  EXPECT_DOUBLE_EQ(frobenius_sq(m), 25.0);
  const std::vector<double> a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(sq_dist(a, b), 25.0);
  EXPECT_DOUBLE_EQ(dot(b, b), 25.0);
}

TEST(Matrix, IdentityProduct) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix p = matmul(a, identity(2));
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) EXPECT_DOUBLE_EQ(p(i, j), a(i, j));
}

TEST(Matrix, MseKnownValue) {
  Matrix a{{0, 0}, {0, 0}};
  Matrix b{{1, 1}, {1, 1}};
  EXPECT_DOUBLE_EQ(mse(a, b), 1.0);
  EXPECT_DOUBLE_EQ(mse(a, a), 0.0);
}

}  // namespace
}  // namespace cnd
