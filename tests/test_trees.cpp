// Unit tests for the decision tree and random forest classifiers.
#include <gtest/gtest.h>

#include "ml/decision_tree.hpp"
#include "ml/random_forest.hpp"
#include "tensor/rng.hpp"

namespace cnd::ml {
namespace {

struct Labeled {
  Matrix x;
  std::vector<std::size_t> y;
};

/// Axis-aligned two-class problem: class = (x0 > 0).
Labeled axis_split(Rng& rng, std::size_t n = 300) {
  Labeled d;
  d.x = Matrix(n, 3);
  d.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    d.x(i, 0) = rng.uniform(-1.0, 1.0);
    d.x(i, 1) = rng.normal();
    d.x(i, 2) = rng.normal();
    d.y[i] = d.x(i, 0) > 0.0 ? 1 : 0;
  }
  return d;
}

/// XOR of two features — requires depth >= 2, defeats any single split.
Labeled xor_problem(Rng& rng, std::size_t n = 400) {
  Labeled d;
  d.x = Matrix(n, 2);
  d.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    d.x(i, 0) = rng.uniform(-1.0, 1.0);
    d.x(i, 1) = rng.uniform(-1.0, 1.0);
    d.y[i] = (d.x(i, 0) > 0.0) != (d.x(i, 1) > 0.0) ? 1 : 0;
  }
  return d;
}

double accuracy(const std::vector<std::size_t>& pred,
                const std::vector<std::size_t>& truth) {
  std::size_t ok = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) ok += (pred[i] == truth[i]);
  return static_cast<double>(ok) / static_cast<double>(pred.size());
}

TEST(DecisionTree, LearnsAxisSplitPerfectly) {
  Rng rng(1);
  Labeled d = axis_split(rng);
  DecisionTree tree({.max_depth = 3});
  tree.fit(d.x, d.y, 2, rng);
  EXPECT_EQ(accuracy(tree.predict(d.x), d.y), 1.0);
  EXPECT_LE(tree.depth(), 3u);
}

TEST(DecisionTree, DeepTreeCarvesXorBlobs) {
  // Greedy Gini has zero first-level gain on XOR (every split looks
  // useless), so no CART solves uniform XOR shallowly; with separated blobs
  // and enough depth the tree carves the quadrants once early (noise-driven)
  // splits break the symmetry.
  Rng rng(2);
  const std::size_t n = 400;
  Labeled d;
  d.x = Matrix(n, 2);
  d.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool a = rng.bernoulli(0.5), b = rng.bernoulli(0.5);
    d.x(i, 0) = rng.normal(a ? 2.0 : -2.0, 0.4);
    d.x(i, 1) = rng.normal(b ? 2.0 : -2.0, 0.4);
    d.y[i] = (a != b) ? 1 : 0;
  }
  DecisionTree tree({.max_depth = 8});
  tree.fit(d.x, d.y, 2, rng);
  EXPECT_GT(accuracy(tree.predict(d.x), d.y), 0.9);
}

TEST(DecisionTree, DepthCapLimitsFit) {
  Rng rng(3);
  Labeled d = xor_problem(rng);
  DecisionTree stump({.max_depth = 1});
  stump.fit(d.x, d.y, 2, rng);
  // XOR is unlearnable at depth 1: accuracy near chance.
  EXPECT_LT(accuracy(stump.predict(d.x), d.y), 0.75);
}

TEST(DecisionTree, ProbabilitiesSumToOne) {
  Rng rng(4);
  Labeled d = axis_split(rng);
  DecisionTree tree;
  tree.fit(d.x, d.y, 2, rng);
  Matrix p = tree.predict_proba(d.x);
  for (std::size_t i = 0; i < p.rows(); ++i)
    EXPECT_NEAR(p(i, 0) + p(i, 1), 1.0, 1e-12);
}

TEST(DecisionTree, PureLeafOnConstantLabels) {
  Rng rng(5);
  Matrix x(20, 2, 1.0);
  std::vector<std::size_t> y(20, 1);
  DecisionTree tree;
  tree.fit(x, y, 2, rng);
  EXPECT_EQ(tree.n_nodes(), 1u);  // root leaf, no split possible
  auto pred = tree.predict(x);
  for (auto v : pred) EXPECT_EQ(v, 1u);
}

TEST(DecisionTree, RejectsBadInputs) {
  Rng rng(6);
  DecisionTree tree;
  EXPECT_THROW(tree.fit(Matrix(3, 2), {0, 1}, 2, rng), std::invalid_argument);
  EXPECT_THROW(tree.fit(Matrix(2, 2), {0, 5}, 2, rng), std::invalid_argument);
  EXPECT_THROW(tree.predict(Matrix(1, 2)), std::invalid_argument);
}

TEST(RandomForest, BeatsSingleStumpOnXor) {
  Rng rng(7);
  Labeled d = xor_problem(rng);
  RandomForest forest({.n_trees = 30, .max_depth = 6});
  forest.fit(d.x, d.y, 2, rng);
  EXPECT_GT(accuracy(forest.predict(d.x), d.y), 0.95);
  EXPECT_EQ(forest.n_trees(), 30u);
}

TEST(RandomForest, GeneralizesOnHeldOut) {
  Rng rng(8);
  Labeled train = axis_split(rng, 400);
  Labeled test = axis_split(rng, 200);
  RandomForest forest({.n_trees = 25, .max_depth = 8});
  forest.fit(train.x, train.y, 2, rng);
  EXPECT_GT(accuracy(forest.predict(test.x), test.y), 0.97);
}

TEST(RandomForest, ProbaAveragesTrees) {
  Rng rng(9);
  Labeled d = axis_split(rng);
  RandomForest forest({.n_trees = 10});
  forest.fit(d.x, d.y, 2, rng);
  Matrix p = forest.predict_proba(d.x);
  for (std::size_t i = 0; i < p.rows(); ++i) {
    EXPECT_NEAR(p(i, 0) + p(i, 1), 1.0, 1e-9);
    EXPECT_GE(p(i, 0), 0.0);
    EXPECT_LE(p(i, 0), 1.0);
  }
}

TEST(RandomForest, RejectsMisuse) {
  RandomForest forest;
  EXPECT_THROW(forest.predict(Matrix(1, 2)), std::invalid_argument);
}

}  // namespace
}  // namespace cnd::ml
