// Property sweeps shared by every novelty detector in the library:
//   - scores are finite,
//   - scoring is row-wise (a row's score does not depend on its neighbours),
//   - identical rows get identical scores,
//   - the detector is deterministic given its seed.
// Parameterized across detectors x data seeds.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "ml/ae_detector.hpp"
#include "ml/deep_isolation_forest.hpp"
#include "ml/gmm.hpp"
#include "ml/hbos.hpp"
#include "ml/isolation_forest.hpp"
#include "ml/knn_detector.hpp"
#include "ml/lof.hpp"
#include "ml/mahalanobis.hpp"
#include "ml/ocsvm.hpp"
#include "ml/pca.hpp"
#include "tensor/rng.hpp"

namespace cnd::ml {
namespace {

/// Type-erased detector: fit(train, seed) returns a scoring closure.
using ScorerFactory = std::function<std::function<std::vector<double>(const Matrix&)>(
    const Matrix&, std::uint64_t)>;

struct DetectorCase {
  const char* name;
  ScorerFactory make;
};

// NOLINTNEXTLINE(cert-err58-cpp)
const DetectorCase kDetectors[] = {
    {"pca",
     [](const Matrix& train, std::uint64_t) {
       auto d = std::make_shared<Pca>(PcaConfig{.explained_variance = 0.9});
       d->fit(train);
       return [d](const Matrix& x) { return d->score(x); };
     }},
    {"lof",
     [](const Matrix& train, std::uint64_t) {
       auto d = std::make_shared<Lof>(LofConfig{.k = 10});
       d->fit(train);
       return [d](const Matrix& x) { return d->score(x); };
     }},
    {"ocsvm",
     [](const Matrix& train, std::uint64_t) {
       auto d = std::make_shared<OcSvm>(OcSvmConfig{.nu = 0.1});
       d->fit(train);
       return [d](const Matrix& x) { return d->score(x); };
     }},
    {"iforest",
     [](const Matrix& train, std::uint64_t seed) {
       auto d = std::make_shared<IsolationForest>(
           IsolationForestConfig{.n_trees = 30});
       Rng rng(seed);
       d->fit(train, rng);
       return [d](const Matrix& x) { return d->score(x); };
     }},
    {"dif",
     [](const Matrix& train, std::uint64_t seed) {
       auto d = std::make_shared<DeepIsolationForest>(
           DeepIsolationForestConfig{.n_representations = 3, .trees_per_repr = 5});
       Rng rng(seed);
       d->fit(train, rng);
       return [d](const Matrix& x) { return d->score(x); };
     }},
    {"gmm",
     [](const Matrix& train, std::uint64_t seed) {
       auto d = std::make_shared<Gmm>(GmmConfig{.n_components = 3});
       Rng rng(seed);
       d->fit(train, rng);
       return [d](const Matrix& x) { return d->score(x); };
     }},
    {"mahalanobis",
     [](const Matrix& train, std::uint64_t) {
       auto d = std::make_shared<MahalanobisDetector>();
       d->fit(train);
       return [d](const Matrix& x) { return d->score(x); };
     }},
    {"knn",
     [](const Matrix& train, std::uint64_t) {
       auto d = std::make_shared<KnnDetector>(KnnDetectorConfig{.k = 5});
       d->fit(train);
       return [d](const Matrix& x) { return d->score(x); };
     }},
    {"hbos",
     [](const Matrix& train, std::uint64_t) {
       auto d = std::make_shared<Hbos>();
       d->fit(train);
       return [d](const Matrix& x) { return d->score(x); };
     }},
    {"ae",
     [](const Matrix& train, std::uint64_t seed) {
       auto d = std::make_shared<AeDetector>(
           AeDetectorConfig{.hidden_dim = 16, .latent_dim = 4, .epochs = 5}, seed);
       d->fit(train);
       return [d](const Matrix& x) { return d->score(x); };
     }},
};

struct CaseParam {
  std::size_t detector_idx;
  std::uint64_t seed;
};

class DetectorProperty : public ::testing::TestWithParam<CaseParam> {
 protected:
  Matrix make_train(std::uint64_t seed) {
    Rng rng(seed);
    Matrix x(150, 4);
    for (std::size_t i = 0; i < x.rows(); ++i)
      for (auto& v : x.row(i)) v = rng.normal();
    return x;
  }
  Matrix make_test(std::uint64_t seed) {
    Rng rng(seed ^ 0xFEED);
    Matrix x(30, 4);
    for (std::size_t i = 0; i < x.rows(); ++i)
      for (auto& v : x.row(i)) v = rng.normal(0.0, 2.0);
    return x;
  }
};

TEST_P(DetectorProperty, ScoresFiniteAndRowWise) {
  const auto [idx, seed] = GetParam();
  const auto& det = kDetectors[idx];
  Matrix train = make_train(seed);
  Matrix test = make_test(seed);
  auto scorer = det.make(train, seed);

  const auto full = scorer(test);
  ASSERT_EQ(full.size(), test.rows());
  for (double v : full) EXPECT_TRUE(std::isfinite(v)) << det.name;

  // Row-wise: scoring a subset matches the corresponding full-batch scores.
  const std::vector<std::size_t> subset{3, 17, 8};
  const auto part = scorer(test.take_rows(subset));
  for (std::size_t i = 0; i < subset.size(); ++i)
    EXPECT_NEAR(part[i], full[subset[i]], 1e-9) << det.name;
}

TEST_P(DetectorProperty, DuplicateRowsScoreIdentically) {
  const auto [idx, seed] = GetParam();
  const auto& det = kDetectors[idx];
  Matrix train = make_train(seed);
  auto scorer = det.make(train, seed);

  Matrix dup(2, 4);
  Rng rng(seed ^ 0xD0D0);
  for (std::size_t j = 0; j < 4; ++j) {
    dup(0, j) = rng.normal();
    dup(1, j) = dup(0, j);
  }
  const auto s = scorer(dup);
  EXPECT_DOUBLE_EQ(s[0], s[1]) << det.name;
}

TEST_P(DetectorProperty, DeterministicGivenSeed) {
  const auto [idx, seed] = GetParam();
  const auto& det = kDetectors[idx];
  Matrix train = make_train(seed);
  Matrix test = make_test(seed);
  const auto a = det.make(train, seed)(test);
  const auto b = det.make(train, seed)(test);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]) << det.name;
}

std::vector<CaseParam> all_cases() {
  std::vector<CaseParam> out;
  for (std::size_t d = 0; d < std::size(kDetectors); ++d)
    for (std::uint64_t seed : {11u, 77u}) out.push_back({d, seed});
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, DetectorProperty, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<CaseParam>& param_info) {
      return std::string(kDetectors[param_info.param.detector_idx].name) + "_s" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace cnd::ml
