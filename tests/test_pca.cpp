// Unit tests for PCA and its feature-reconstruction-error scoring.
#include "ml/pca.hpp"

#include <gtest/gtest.h>

#include "tensor/rng.hpp"

namespace cnd::ml {
namespace {

/// n points on a 2-D plane embedded in d dims, plus tiny noise.
Matrix planar_data(std::size_t n, std::size_t d, Rng& rng, double noise = 0.0) {
  Matrix basis(2, d);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < d; ++j) basis(i, j) = rng.normal();
  Matrix z(n, 2);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < 2; ++j) z(i, j) = rng.normal(0.0, 3.0);
  Matrix x = matmul(z, basis);
  if (noise > 0.0)
    for (std::size_t i = 0; i < n; ++i)
      for (auto& v : x.row(i)) v += rng.normal(0.0, noise);
  return x;
}

TEST(Pca, RecoversLowRankStructure) {
  Rng rng(1);
  Matrix x = planar_data(200, 8, rng);
  Pca pca({.explained_variance = 0.99});
  pca.fit(x);
  EXPECT_EQ(pca.n_components(), 2u);  // exactly rank 2
}

TEST(Pca, PerfectReconstructionOnSubspaceData) {
  Rng rng(2);
  Matrix x = planar_data(100, 6, rng);
  Pca pca({.explained_variance = 0.999});
  pca.fit(x);
  auto s = pca.score(x);
  for (double v : s) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Pca, OffSubspacePointsScoreHigher) {
  Rng rng(3);
  Matrix x = planar_data(150, 6, rng, 0.01);
  Pca pca({.explained_variance = 0.95});
  pca.fit(x);

  // Points far off the plane (isotropic noise) must score much higher.
  Matrix outliers(20, 6);
  for (std::size_t i = 0; i < 20; ++i)
    for (std::size_t j = 0; j < 6; ++j) outliers(i, j) = rng.normal(0.0, 5.0);

  const auto s_in = pca.score(x);
  const auto s_out = pca.score(outliers);
  double max_in = 0.0, min_out = 1e18;
  for (double v : s_in) max_in = std::max(max_in, v);
  double mean_out = 0.0;
  for (double v : s_out) {
    mean_out += v;
    min_out = std::min(min_out, v);
  }
  mean_out /= 20.0;
  EXPECT_GT(mean_out, max_in);
}

TEST(Pca, ScoresNonNegative) {
  Rng rng(4);
  Matrix x = planar_data(80, 5, rng, 0.5);
  Pca pca;
  pca.fit(x);
  for (double v : pca.score(x)) EXPECT_GE(v, 0.0);
}

TEST(Pca, TransformInverseRoundtripOnComponents) {
  Rng rng(5);
  Matrix x = planar_data(120, 7, rng, 0.3);
  Pca pca({.explained_variance = 0.8});
  pca.fit(x);
  Matrix l = pca.transform(x);
  EXPECT_EQ(l.cols(), pca.n_components());
  Matrix back = pca.inverse_transform(l);
  EXPECT_EQ(back.cols(), 7u);
  // transform(inverse_transform(l)) == l (projection is idempotent).
  Matrix l2 = pca.transform(back);
  for (std::size_t i = 0; i < l.rows(); ++i)
    for (std::size_t j = 0; j < l.cols(); ++j) EXPECT_NEAR(l2(i, j), l(i, j), 1e-9);
}

TEST(Pca, ExplainedVarianceThresholdControlsComponents) {
  Rng rng(6);
  Matrix x = planar_data(150, 10, rng, 1.0);  // noisy: full-rank-ish
  Pca loose({.explained_variance = 0.5});
  Pca strict({.explained_variance = 0.99});
  loose.fit(x);
  strict.fit(x);
  EXPECT_LE(loose.n_components(), strict.n_components());
}

TEST(Pca, MaxComponentsCap) {
  Rng rng(7);
  Matrix x = planar_data(100, 8, rng, 1.0);
  Pca pca({.explained_variance = 1.0, .max_components = 3});
  pca.fit(x);
  EXPECT_LE(pca.n_components(), 3u);
}

TEST(Pca, RejectsBadInputs) {
  Pca pca;
  EXPECT_THROW(pca.fit(Matrix(1, 3)), std::invalid_argument);
  EXPECT_THROW(pca.score(Matrix(2, 3)), std::invalid_argument);  // unfitted
  Pca bad({.explained_variance = 0.0});
  EXPECT_THROW(bad.fit(Matrix(10, 3)), std::invalid_argument);
}

TEST(Pca, ConstantDataHandled) {
  Matrix x(10, 4, 2.5);
  Pca pca;
  pca.fit(x);
  auto s = pca.score(x);
  for (double v : s) EXPECT_NEAR(v, 0.0, 1e-18);
}

}  // namespace
}  // namespace cnd::ml
