// Unit tests for the static novelty detectors: LOF, OC-SVM, Isolation
// Forest, Deep Isolation Forest. Each must rank planted outliers above
// inliers on canonical structures.
#include <gtest/gtest.h>

#include <algorithm>

#include "ml/deep_isolation_forest.hpp"
#include "ml/isolation_forest.hpp"
#include "ml/lof.hpp"
#include "ml/ocsvm.hpp"
#include "tensor/rng.hpp"

namespace cnd::ml {
namespace {

struct Planted {
  Matrix train;     ///< inlier cloud.
  Matrix inliers;   ///< held-out points from the same cloud.
  Matrix outliers;  ///< points far from the cloud.
};

Planted make_planted(Rng& rng, std::size_t n_train = 300, std::size_t n_test = 40,
                     std::size_t d = 4, double out_dist = 8.0) {
  Planted p;
  p.train = Matrix(n_train, d);
  for (std::size_t i = 0; i < n_train; ++i)
    for (std::size_t j = 0; j < d; ++j) p.train(i, j) = rng.normal();
  p.inliers = Matrix(n_test, d);
  for (std::size_t i = 0; i < n_test; ++i)
    for (std::size_t j = 0; j < d; ++j) p.inliers(i, j) = rng.normal();
  p.outliers = Matrix(n_test, d);
  for (std::size_t i = 0; i < n_test; ++i)
    for (std::size_t j = 0; j < d; ++j)
      p.outliers(i, j) = rng.normal() + (j == 0 ? out_dist : 0.0);
  return p;
}

/// Fraction of (outlier, inlier) pairs where the outlier scores higher —
/// i.e. the AUC of the detector on this planted problem.
template <typename Det>
double separation_auc(Det& det, const Planted& p) {
  const auto s_in = det.score(p.inliers);
  const auto s_out = det.score(p.outliers);
  std::size_t wins = 0, total = 0;
  for (double o : s_out)
    for (double i : s_in) {
      wins += (o > i);
      ++total;
    }
  return static_cast<double>(wins) / static_cast<double>(total);
}

TEST(Lof, SeparatesPlantedOutliers) {
  Rng rng(1);
  Planted p = make_planted(rng);
  Lof lof({.k = 15});
  lof.fit(p.train);
  EXPECT_GT(separation_auc(lof, p), 0.99);
}

TEST(Lof, InlierScoresNearOne) {
  Rng rng(2);
  Planted p = make_planted(rng);
  Lof lof({.k = 20});
  lof.fit(p.train);
  const auto s = lof.score(p.inliers);
  double mean = 0.0;
  for (double v : s) mean += v;
  mean /= static_cast<double>(s.size());
  EXPECT_NEAR(mean, 1.0, 0.3);
}

TEST(Lof, RejectsTooSmallReference) {
  Lof lof({.k = 10});
  EXPECT_THROW(lof.fit(Matrix(5, 2)), std::invalid_argument);
  EXPECT_THROW(lof.score(Matrix(1, 2)), std::invalid_argument);  // unfitted
}

TEST(OcSvm, SeparatesPlantedOutliers) {
  Rng rng(3);
  Planted p = make_planted(rng, 250);
  OcSvm svm({.nu = 0.1});
  svm.fit(p.train);
  EXPECT_GT(separation_auc(svm, p), 0.97);
}

TEST(OcSvm, NuBoundsRejectedFraction) {
  // With nu = 0.2, at most ~20% of training points lie outside the learned
  // boundary (the nu-property, allowing solver slack).
  Rng rng(4);
  Planted p = make_planted(rng, 400);
  OcSvm svm({.nu = 0.2});
  svm.fit(p.train);
  const auto s = svm.score(p.train);
  std::size_t outside = 0;
  for (double v : s) outside += (v > 0.0);
  EXPECT_LT(static_cast<double>(outside) / static_cast<double>(s.size()), 0.30);
  EXPECT_GT(svm.n_support(), 0u);
}

TEST(OcSvm, SubsampleCapRespected) {
  Rng rng(5);
  Planted p = make_planted(rng, 500);
  OcSvm svm({.nu = 0.1, .max_train = 100});
  svm.fit(p.train);  // must not blow up; kernel is 100x100
  EXPECT_LE(svm.n_support(), 100u);
  EXPECT_GT(separation_auc(svm, p), 0.9);
}

TEST(OcSvm, RejectsBadNu) {
  OcSvm svm({.nu = 0.0});
  EXPECT_THROW(svm.fit(Matrix(10, 2)), std::invalid_argument);
}

TEST(IsolationForest, SeparatesPlantedOutliers) {
  Rng rng(6);
  Planted p = make_planted(rng);
  // Axis-parallel splits see the outlier shift in only 1 of 4 features, so
  // iForest separates less crisply than LOF here; 0.9 AUC is its level.
  IsolationForest forest({.n_trees = 100, .subsample = 128});
  forest.fit(p.train, rng);
  EXPECT_GT(separation_auc(forest, p), 0.88);
}

TEST(IsolationForest, ScoresInUnitInterval) {
  Rng rng(7);
  Planted p = make_planted(rng);
  IsolationForest forest;
  forest.fit(p.train, rng);
  for (double v : forest.score(p.inliers)) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(IsolationForest, OutlierScoreAboveHalf) {
  Rng rng(8);
  Planted p = make_planted(rng, 300, 40, 4, 12.0);
  IsolationForest forest({.n_trees = 150});
  forest.fit(p.train, rng);
  const auto s = forest.score(p.outliers);
  double mean = 0.0;
  for (double v : s) mean += v;
  mean /= static_cast<double>(s.size());
  EXPECT_GT(mean, 0.55);
}

TEST(IsolationForest, CNormalizerKnownValues) {
  EXPECT_DOUBLE_EQ(iforest_c(1.0), 0.0);
  EXPECT_NEAR(iforest_c(2.0), 2.0 * (0.5772156649 + 0.0) - 1.0, 1e-6);
  EXPECT_GT(iforest_c(256.0), iforest_c(16.0));
}

TEST(IsolationForest, ConstantDataDoesNotCrash) {
  Rng rng(9);
  Matrix x(50, 3, 1.0);
  IsolationForest forest({.n_trees = 10});
  forest.fit(x, rng);
  const auto s = forest.score(x);
  // All points identical: identical (low) scores.
  for (double v : s) EXPECT_NEAR(v, s[0], 1e-12);
}

TEST(DeepIsolationForest, SeparatesPlantedOutliers) {
  Rng rng(12);
  Planted p = make_planted(rng);
  DeepIsolationForest dif({.n_representations = 4, .trees_per_repr = 25});
  dif.fit(p.train, rng);
  EXPECT_GT(separation_auc(dif, p), 0.95);
}

TEST(DeepIsolationForest, DeterministicGivenSeed) {
  Rng data_rng(11);
  Planted p = make_planted(data_rng);
  DeepIsolationForest a, b;
  Rng ra(99), rb(99);
  a.fit(p.train, ra);
  b.fit(p.train, rb);
  const auto sa = a.score(p.inliers);
  const auto sb = b.score(p.inliers);
  for (std::size_t i = 0; i < sa.size(); ++i) EXPECT_DOUBLE_EQ(sa[i], sb[i]);
}

TEST(DeepIsolationForest, RejectsUnfittedScore) {
  DeepIsolationForest dif;
  EXPECT_THROW(dif.score(Matrix(1, 2)), std::invalid_argument);
}

}  // namespace
}  // namespace cnd::ml
