// Unit tests for the feature scalers.
#include "ml/scaler.hpp"

#include <gtest/gtest.h>

#include "tensor/rng.hpp"

namespace cnd::ml {
namespace {

TEST(StandardScaler, ZeroMeanUnitVariance) {
  Rng rng(1);
  Matrix x(200, 3);
  for (std::size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.normal(5.0, 2.0);
    x(i, 1) = rng.normal(-10.0, 0.5);
    x(i, 2) = rng.normal(0.0, 100.0);
  }
  StandardScaler s;
  Matrix z = s.fit_transform(x);
  auto mu = col_mean(z);
  auto sd = col_stddev(z, mu);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(mu[j], 0.0, 1e-10);
    EXPECT_NEAR(sd[j], 1.0, 1e-10);
  }
}

TEST(StandardScaler, ConstantColumnMapsToZero) {
  Matrix x(10, 2);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = 7.0;
    x(i, 1) = static_cast<double>(i);
  }
  StandardScaler s;
  Matrix z = s.fit_transform(x);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(z(i, 0), 0.0);
}

TEST(StandardScaler, TransformUsesTrainStatistics) {
  Matrix train{{0.0}, {2.0}};  // mean 1, std 1
  Matrix test{{3.0}};
  StandardScaler s;
  s.fit(train);
  Matrix z = s.transform(test);
  EXPECT_DOUBLE_EQ(z(0, 0), 2.0);
}

TEST(StandardScaler, RejectsMisuse) {
  StandardScaler s;
  EXPECT_THROW(s.transform(Matrix(1, 2)), std::invalid_argument);
  s.fit(Matrix(3, 2, 1.0));
  EXPECT_THROW(s.transform(Matrix(1, 3)), std::invalid_argument);
}

TEST(MinMaxScaler, MapsToUnitInterval) {
  Matrix x{{0, -5}, {10, 5}, {5, 0}};
  MinMaxScaler s;
  Matrix z = s.fit_transform(x);
  EXPECT_DOUBLE_EQ(z(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(z(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(z(2, 0), 0.5);
  EXPECT_DOUBLE_EQ(z(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(z(1, 1), 1.0);
}

TEST(MinMaxScaler, ConstantColumnMapsToZero) {
  Matrix x(5, 1, 3.0);
  MinMaxScaler s;
  Matrix z = s.fit_transform(x);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(z(i, 0), 0.0);
}

}  // namespace
}  // namespace cnd::ml
