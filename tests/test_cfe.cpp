// Unit tests for the Continual Feature Extractor.
#include "core/cfe.hpp"

#include <gtest/gtest.h>

namespace cnd::core {
namespace {

struct StreamData {
  Matrix x_train;
  Matrix n_clean;
};

/// Normal blob + attack blob, small sizes for fast CFE training.
StreamData make_stream(Rng& rng, double attack_dist = 8.0, std::size_t n = 200) {
  StreamData s;
  s.x_train = Matrix(n, 6);
  for (std::size_t i = 0; i < n; ++i) {
    const bool attack = i % 4 == 0;  // 25% contamination
    for (std::size_t j = 0; j < 6; ++j)
      s.x_train(i, j) = rng.normal(attack && j < 2 ? attack_dist : 0.0, 1.0);
  }
  s.n_clean = Matrix(60, 6);
  for (std::size_t i = 0; i < 60; ++i)
    for (std::size_t j = 0; j < 6; ++j) s.n_clean(i, j) = rng.normal(0.0, 1.0);
  return s;
}

CfeConfig fast_cfg() {
  CfeConfig c;
  c.hidden_dim = 32;
  c.latent_dim = 8;
  c.epochs = 5;
  c.batch_size = 64;
  c.kmeans_k = 2;
  return c;
}

TEST(Cfe, EncodeBeforeFitThrows) {
  Cfe cfe(fast_cfg());
  EXPECT_THROW(cfe.encode(Matrix(1, 6)), std::invalid_argument);
}

TEST(Cfe, FitProducesLatentOfConfiguredWidth) {
  Rng rng(1);
  StreamData s = make_stream(rng);
  Cfe cfe(fast_cfg());
  CfeFitStats st = cfe.fit_experience(s.x_train, s.n_clean);
  EXPECT_EQ(cfe.n_experiences_seen(), 1u);
  EXPECT_EQ(st.pseudo_k, 2u);
  EXPECT_GT(st.pseudo_anomalous, 0u);
  Matrix h = cfe.encode(s.x_train);
  EXPECT_EQ(h.cols(), 8u);
  EXPECT_EQ(h.rows(), s.x_train.rows());
}

TEST(Cfe, SeparatesPseudoClassesInLatentSpace) {
  Rng rng(2);
  StreamData s = make_stream(rng);
  Cfe cfe(fast_cfg());
  cfe.fit_experience(s.x_train, s.n_clean);

  // Mean latent distance between normal and attack rows should exceed the
  // within-normal spread (the triplet loss pushed them apart).
  Matrix h = cfe.encode(s.x_train);
  std::vector<double> mean_n(h.cols(), 0.0), mean_a(h.cols(), 0.0);
  std::size_t cn = 0, ca = 0;
  for (std::size_t i = 0; i < h.rows(); ++i) {
    const bool attack = i % 4 == 0;
    auto r = h.row(i);
    for (std::size_t j = 0; j < h.cols(); ++j)
      (attack ? mean_a[j] : mean_n[j]) += r[j];
    (attack ? ca : cn)++;
  }
  for (auto& v : mean_n) v /= static_cast<double>(cn);
  for (auto& v : mean_a) v /= static_cast<double>(ca);
  EXPECT_GT(sq_dist(mean_n, mean_a), 0.5);
}

TEST(Cfe, SnapshotsAccumulatePerExperience) {
  Rng rng(3);
  Cfe cfe(fast_cfg());
  for (int e = 0; e < 3; ++e) {
    StreamData s = make_stream(rng);
    cfe.fit_experience(s.x_train, s.n_clean);
  }
  EXPECT_EQ(cfe.n_experiences_seen(), 3u);
}

TEST(Cfe, SnapshotCapBoundsMemory) {
  Rng rng(4);
  CfeConfig cfg = fast_cfg();
  cfg.max_snapshots = 2;
  Cfe cfe(cfg);
  for (int e = 0; e < 4; ++e) {
    StreamData s = make_stream(rng);
    cfe.fit_experience(s.x_train, s.n_clean);
  }
  EXPECT_EQ(cfe.n_experiences_seen(), 4u);
  EXPECT_EQ(cfe.n_snapshots(), 2u);
}

TEST(Cfe, EwcModeAnchorsParameters) {
  Rng rng(11);
  CfeConfig cfg = fast_cfg();
  cfg.cl_mode = ClMode::kEwc;
  cfg.ewc_strength = 1e4;  // strong anchor for an observable effect
  Cfe anchored(cfg, 7);

  CfeConfig free_cfg = fast_cfg();
  free_cfg.use_cl = false;
  Cfe free(free_cfg, 7);

  StreamData a = make_stream(rng, 8.0);
  anchored.fit_experience(a.x_train, a.n_clean);
  free.fit_experience(a.x_train, a.n_clean);
  Matrix ha0 = anchored.encode(a.x_train);
  Matrix hf0 = free.encode(a.x_train);

  // A strongly shifted second experience: the EWC-anchored encoder must
  // move its old-experience embeddings less than the unregularized one.
  StreamData b = make_stream(rng, -8.0);
  for (std::size_t i = 0; i < b.x_train.rows(); ++i)
    for (auto& v : b.x_train.row(i)) v += 3.0;
  anchored.fit_experience(b.x_train, b.n_clean);
  free.fit_experience(b.x_train, b.n_clean);

  const double drift_anchored = mse(ha0, anchored.encode(a.x_train));
  const double drift_free = mse(hf0, free.encode(a.x_train));
  EXPECT_LT(drift_anchored, drift_free);
  EXPECT_EQ(anchored.n_snapshots(), 0u);
  EXPECT_EQ(anchored.replay_rows_stored(), 0u);
}

TEST(Cfe, ReplayModeStoresDataNotSnapshots) {
  Rng rng(5);
  CfeConfig cfg = fast_cfg();
  cfg.cl_mode = ClMode::kReplay;
  cfg.replay_capacity = 64;
  Cfe cfe(cfg);
  for (int e = 0; e < 3; ++e) {
    StreamData s = make_stream(rng);
    cfe.fit_experience(s.x_train, s.n_clean);
  }
  EXPECT_EQ(cfe.n_experiences_seen(), 3u);
  EXPECT_EQ(cfe.n_snapshots(), 0u);
  EXPECT_EQ(cfe.replay_rows_stored(), 64u);  // reservoir at capacity
  Matrix h = cfe.encode(make_stream(rng).x_train);
  EXPECT_EQ(h.cols(), cfe.latent_dim());
}

TEST(Cfe, ContinualLossLimitsLatentDrift) {
  // Train on experience A, remember encodings; then train on a shifted
  // experience B with and without L_CL. With L_CL the old encodings must
  // move less.
  auto run = [&](bool use_cl) {
    Rng rng(5);
    StreamData a = make_stream(rng, 8.0);
    StreamData b = make_stream(rng, -8.0);  // different attack direction
    // Shift B's normals too (covariate drift).
    for (std::size_t i = 0; i < b.x_train.rows(); ++i)
      for (auto& v : b.x_train.row(i)) v += 2.0;

    CfeConfig cfg = fast_cfg();
    cfg.use_cl = use_cl;
    cfg.epochs = 8;
    Cfe cfe(cfg, 42);
    cfe.fit_experience(a.x_train, a.n_clean);
    Matrix h_before = cfe.encode(a.x_train);
    cfe.fit_experience(b.x_train, b.n_clean);
    Matrix h_after = cfe.encode(a.x_train);
    return mse(h_before, h_after);
  };
  const double drift_with = run(true);
  const double drift_without = run(false);
  EXPECT_LT(drift_with, drift_without);
}

TEST(Cfe, AblationFlagsZeroTheirLossTerms) {
  Rng rng(6);
  StreamData s = make_stream(rng);
  CfeConfig cfg = fast_cfg();
  cfg.use_cs = false;
  cfg.use_r = false;
  Cfe cfe(cfg);
  CfeFitStats st = cfe.fit_experience(s.x_train, s.n_clean);
  EXPECT_EQ(st.loss_cs, 0.0);
  EXPECT_EQ(st.loss_r, 0.0);
  EXPECT_EQ(st.pseudo_k, 0u);  // pseudo-labeling skipped entirely
}

TEST(Cfe, RejectsChangedInputWidth) {
  Rng rng(7);
  StreamData s = make_stream(rng);
  Cfe cfe(fast_cfg());
  cfe.fit_experience(s.x_train, s.n_clean);
  EXPECT_THROW(cfe.fit_experience(Matrix(50, 3), Matrix(10, 3)),
               std::invalid_argument);
}

TEST(Cfe, InvalidConfigRejected) {
  CfeConfig bad = fast_cfg();
  bad.lambda_r = 1.5;
  EXPECT_THROW(Cfe{bad}, std::invalid_argument);
  CfeConfig bad2 = fast_cfg();
  bad2.margin = 0.0;
  EXPECT_THROW(Cfe{bad2}, std::invalid_argument);
}

}  // namespace
}  // namespace cnd::core
