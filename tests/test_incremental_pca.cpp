// Unit tests for streaming/incremental PCA.
#include "ml/incremental_pca.hpp"

#include <gtest/gtest.h>

#include "linalg/stats.hpp"
#include "ml/pca.hpp"
#include "tensor/rng.hpp"

namespace cnd::ml {
namespace {

Matrix random_lowrank(std::size_t n, std::size_t d, Rng& rng, double noise = 0.1) {
  Matrix basis(3, d);
  for (std::size_t i = 0; i < 3; ++i)
    for (auto& v : basis.row(i)) v = rng.normal();
  Matrix z(n, 3);
  for (std::size_t i = 0; i < n; ++i)
    for (auto& v : z.row(i)) v = rng.normal(0.0, 2.0);
  Matrix x = matmul(z, basis);
  for (std::size_t i = 0; i < n; ++i)
    for (auto& v : x.row(i)) v += rng.normal(0.0, noise);
  return x;
}

TEST(IncrementalPca, MatchesBatchCovarianceExactly) {
  Rng rng(1);
  Matrix x = random_lowrank(257, 6, rng);  // odd size: uneven final batch
  IncrementalPca inc;
  // Feed in uneven chunks.
  std::size_t pos = 0;
  for (std::size_t chunk : {50, 1, 100, 106}) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < chunk; ++i) idx.push_back(pos + i);
    inc.partial_fit(x.take_rows(idx));
    pos += chunk;
  }
  ASSERT_EQ(inc.n_seen(), 257u);

  const Matrix cov_inc = inc.covariance();
  const Matrix cov_batch = linalg::covariance(x);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_NEAR(cov_inc(i, j), cov_batch(i, j), 1e-9);
}

TEST(IncrementalPca, ScoresAgreeWithBatchPca) {
  Rng rng(2);
  Matrix x = random_lowrank(300, 8, rng);
  IncrementalPca inc({.explained_variance = 0.95});
  inc.partial_fit(x);
  inc.refresh();

  Pca batch({.explained_variance = 0.95});
  batch.fit(x);

  ASSERT_EQ(inc.n_components(), batch.n_components());
  Matrix probe = random_lowrank(50, 8, rng);
  const auto si = inc.score(probe);
  const auto sb = batch.score(probe);
  for (std::size_t i = 0; i < si.size(); ++i) EXPECT_NEAR(si[i], sb[i], 1e-6);
}

TEST(IncrementalPca, RefreshRequiredBeforeScoring) {
  Rng rng(3);
  IncrementalPca inc;
  inc.partial_fit(random_lowrank(50, 4, rng));
  EXPECT_THROW(inc.score(Matrix(1, 4)), std::invalid_argument);
  inc.refresh();
  EXPECT_NO_THROW(inc.score(Matrix(1, 4)));
}

TEST(IncrementalPca, AdaptsToDistributionShift) {
  // Feed phase-1 data, refresh; then feed lots of shifted phase-2 data and
  // refresh again: phase-2 points must score much lower after the update.
  Rng rng(4);
  Matrix phase1 = random_lowrank(300, 6, rng);
  Matrix phase2 = random_lowrank(900, 6, rng);
  for (std::size_t i = 0; i < phase2.rows(); ++i)
    for (auto& v : phase2.row(i)) v += 6.0;

  IncrementalPca inc({.explained_variance = 0.95});
  inc.partial_fit(phase1);
  inc.refresh();
  double before = 0.0;
  for (double v : inc.score(phase2)) before += v;

  inc.partial_fit(phase2);
  inc.refresh();
  double after = 0.0;
  for (double v : inc.score(phase2)) after += v;
  EXPECT_LT(after, before * 0.8);
}

TEST(IncrementalPca, RejectsWidthChange) {
  Rng rng(5);
  IncrementalPca inc;
  inc.partial_fit(random_lowrank(20, 4, rng));
  EXPECT_THROW(inc.partial_fit(Matrix(5, 3)), std::invalid_argument);
}

}  // namespace
}  // namespace cnd::ml
