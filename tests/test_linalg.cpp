// Unit tests for eigendecomposition, SVD, statistics, and distances.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/distance.hpp"
#include "linalg/eigen.hpp"
#include "linalg/stats.hpp"
#include "linalg/svd.hpp"
#include "tensor/rng.hpp"

namespace cnd::linalg {
namespace {

TEST(Eigen, DiagonalMatrix) {
  Matrix a{{3, 0}, {0, 1}};
  auto e = eigen_symmetric(a);
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], 1.0, 1e-12);
  // Eigenvector for 3 is +-e0.
  EXPECT_NEAR(std::abs(e.vectors(0, 0)), 1.0, 1e-10);
  EXPECT_NEAR(std::abs(e.vectors(1, 0)), 0.0, 1e-10);
}

TEST(Eigen, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a{{2, 1}, {1, 2}};
  auto e = eigen_symmetric(a);
  EXPECT_NEAR(e.values[0], 3.0, 1e-10);
  EXPECT_NEAR(e.values[1], 1.0, 1e-10);
}

TEST(Eigen, ReconstructsMatrix) {
  Rng rng(5);
  const std::size_t n = 8;
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.normal();
  Matrix a = matmul_at(b, b);  // symmetric PSD
  auto e = eigen_symmetric(a);

  // A = V diag(lambda) V^T.
  Matrix vl = e.vectors;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) vl(i, j) *= e.values[j];
  Matrix recon = matmul_bt(vl, e.vectors);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) EXPECT_NEAR(recon(i, j), a(i, j), 1e-8);
}

TEST(Eigen, VectorsOrthonormal) {
  Rng rng(6);
  const std::size_t n = 6;
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.normal();
  Matrix a = matmul_at(b, b);
  auto e = eigen_symmetric(a);
  Matrix vtv = matmul_at(e.vectors, e.vectors);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(vtv(i, j), i == j ? 1.0 : 0.0, 1e-9);
}

TEST(Eigen, RejectsNonSymmetric) {
  Matrix a{{1, 2}, {0, 1}};
  EXPECT_THROW(eigen_symmetric(a), std::invalid_argument);
}

TEST(Eigen, RejectsNonSquare) {
  EXPECT_THROW(eigen_symmetric(Matrix(2, 3)), std::invalid_argument);
}

TEST(Svd, ReconstructsLowRank) {
  // Rank-2 matrix: outer products.
  Rng rng(9);
  Matrix u(6, 2), v(4, 2);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 2; ++j) u(i, j) = rng.normal();
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 2; ++j) v(i, j) = rng.normal();
  Matrix a = matmul_bt(u, v);

  auto s = svd_thin(a);
  EXPECT_LE(s.sigma.size(), 2u);
  // Reconstruct U S V^T.
  Matrix us = s.u;
  for (std::size_t i = 0; i < us.rows(); ++i)
    for (std::size_t j = 0; j < us.cols(); ++j) us(i, j) *= s.sigma[j];
  Matrix recon = matmul_bt(us, s.v);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) EXPECT_NEAR(recon(i, j), a(i, j), 1e-7);
}

TEST(Svd, SingularValuesDescending) {
  Rng rng(10);
  Matrix a(5, 7);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 7; ++j) a(i, j) = rng.normal();
  auto s = svd_thin(a);
  for (std::size_t i = 1; i < s.sigma.size(); ++i)
    EXPECT_GE(s.sigma[i - 1], s.sigma[i]);
}

TEST(Stats, CovarianceKnown) {
  // Perfectly anti-correlated columns.
  Matrix x{{1, -1}, {-1, 1}};
  Matrix c = covariance(x);
  EXPECT_NEAR(c(0, 0), 2.0, 1e-12);  // ddof=1
  EXPECT_NEAR(c(0, 1), -2.0, 1e-12);
  EXPECT_NEAR(c(1, 0), c(0, 1), 0.0);
}

TEST(Stats, CenterRemovesMean) {
  Matrix x{{1, 10}, {3, 20}};
  auto [c, mu] = center(x);
  EXPECT_DOUBLE_EQ(mu[0], 2.0);
  auto m2 = col_mean(c);
  EXPECT_NEAR(m2[0], 0.0, 1e-15);
  EXPECT_NEAR(m2[1], 0.0, 1e-15);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{2, 4, 6, 8};
  const std::vector<double> c{-1, -2, -3, -4};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
  const std::vector<double> flat{5, 5, 5, 5};
  EXPECT_EQ(pearson(a, flat), 0.0);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> v{0, 1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 1.0);
}

TEST(Distance, PairwiseKnown) {
  Matrix a{{0, 0}, {3, 4}};
  Matrix b{{0, 0}};
  Matrix d = pairwise_dist(a, b);
  EXPECT_DOUBLE_EQ(d(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 5.0);
}

TEST(Distance, KnnFindsNearest) {
  Matrix ref{{0, 0}, {1, 0}, {10, 0}, {11, 0}};
  Matrix q{{0.4, 0}};
  auto nn = knn(q, ref, 2, /*exclude_self=*/false);
  EXPECT_EQ(nn.indices[0][0], 0u);
  EXPECT_EQ(nn.indices[0][1], 1u);
  EXPECT_NEAR(nn.distances[0][0], 0.4, 1e-12);
}

TEST(Distance, KnnExcludesSelf) {
  Matrix ref{{0, 0}, {1, 0}, {2, 0}};
  auto nn = knn(ref, ref, 1, /*exclude_self=*/true);
  EXPECT_EQ(nn.indices[0][0], 1u);  // nearest non-self
  EXPECT_EQ(nn.indices[1].size(), 1u);
  EXPECT_GT(nn.distances[0][0], 0.0);
}

TEST(Distance, KnnRejectsTooLargeK) {
  Matrix ref{{0, 0}, {1, 0}};
  EXPECT_THROW(knn(ref, ref, 2, true), std::invalid_argument);
}

}  // namespace
}  // namespace cnd::linalg
