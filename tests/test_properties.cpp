// Property-based sweeps (parameterized gtest) over library invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/cl_metrics.hpp"
#include "eval/metrics.hpp"
#include "eval/threshold.hpp"
#include "linalg/eigen.hpp"
#include "linalg/stats.hpp"
#include "ml/kmeans.hpp"
#include "ml/pca.hpp"
#include "ml/scaler.hpp"
#include "tensor/rng.hpp"

namespace cnd {
namespace {

// ---- PCA invariants over random seeds and explained-variance levels -------

struct PcaCase {
  std::uint64_t seed;
  double ev;
};

class PcaProperty : public ::testing::TestWithParam<PcaCase> {};

TEST_P(PcaProperty, FreScoresNonNegativeAndProjectionIdempotent) {
  const auto [seed, ev] = GetParam();
  Rng rng(seed);
  Matrix x(120, 9);
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (auto& v : x.row(i)) v = rng.normal() + rng.heavy_tail(4.0) * 0.2;

  ml::Pca pca({.explained_variance = ev});
  pca.fit(x);
  EXPECT_GE(pca.n_components(), 1u);
  EXPECT_LE(pca.n_components(), 9u);

  const auto s = pca.score(x);
  for (double v : s) EXPECT_GE(v, -1e-12);

  // Projection idempotence: score of a reconstructed point is ~0.
  Matrix recon = pca.inverse_transform(pca.transform(x));
  const auto s2 = pca.score(recon);
  for (double v : s2) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST_P(PcaProperty, ReconstructionErrorShrinksWithMoreVariance) {
  const auto [seed, ev] = GetParam();
  Rng rng(seed ^ 0xABCD);
  Matrix x(100, 8);
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (auto& v : x.row(i)) v = rng.normal();

  ml::Pca small({.explained_variance = std::max(0.3, ev - 0.25)});
  ml::Pca large({.explained_variance = ev});
  small.fit(x);
  large.fit(x);
  double mean_small = 0.0, mean_large = 0.0;
  for (double v : small.score(x)) mean_small += v;
  for (double v : large.score(x)) mean_large += v;
  EXPECT_LE(mean_large, mean_small + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PcaProperty,
                         ::testing::Values(PcaCase{1, 0.80}, PcaCase{2, 0.90},
                                           PcaCase{3, 0.95}, PcaCase{4, 0.99},
                                           PcaCase{5, 0.85}, PcaCase{6, 0.95},
                                           PcaCase{7, 0.75}, PcaCase{8, 0.99}));

// ---- Metric invariants over random score vectors ---------------------------

class MetricProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricProperty, BoundsAndThresholdConsistency) {
  Rng rng(GetParam());
  const std::size_t n = 200;
  std::vector<double> scores(n);
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = rng.bernoulli(0.3) ? 1 : 0;
    scores[i] = rng.normal(y[i] == 1 ? 1.0 : 0.0, 1.0);
  }

  const double ap = eval::pr_auc(scores, y);
  const double roc = eval::roc_auc(scores, y);
  EXPECT_GE(ap, 0.0);
  EXPECT_LE(ap, 1.0);
  EXPECT_GE(roc, 0.0);
  EXPECT_LE(roc, 1.0);

  // Best-F F1 is attainable by its own threshold, and no grid threshold
  // beats it.
  const auto best = eval::best_f_threshold(scores, y);
  EXPECT_NEAR(eval::f1_score(eval::apply_threshold(scores, best.threshold), y),
              best.f1, 1e-12);
  for (double t = -3.0; t <= 4.0; t += 0.05)
    EXPECT_LE(eval::f1_score(eval::apply_threshold(scores, t), y), best.f1 + 1e-12);

  // Scores shifted/scaled monotonically leave rank metrics unchanged.
  std::vector<double> warped(n);
  for (std::size_t i = 0; i < n; ++i) warped[i] = 3.0 * scores[i] + 7.0;
  EXPECT_NEAR(eval::pr_auc(warped, y), ap, 1e-12);
  EXPECT_NEAR(eval::roc_auc(warped, y), roc, 1e-12);
  EXPECT_NEAR(eval::best_f_threshold(warped, y).f1, best.f1, 1e-12);
}

TEST_P(MetricProperty, F1SymmetryUnderPerfectPrediction) {
  Rng rng(GetParam() ^ 0xF00D);
  std::vector<int> y(50);
  for (auto& v : y) v = rng.bernoulli(0.5) ? 1 : 0;
  // Guarantee at least one positive so F1 is well-defined at 1.0.
  y[0] = 1;
  EXPECT_DOUBLE_EQ(eval::f1_score(y, y), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MetricProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u, 88u,
                                           99u, 111u));

// ---- Eigen invariants over random symmetric matrices -----------------------

class EigenProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EigenProperty, TraceAndPsdInvariants) {
  Rng rng(GetParam());
  const std::size_t n = 7;
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.normal();
  Matrix a = matmul_at(b, b);  // PSD

  auto e = linalg::eigen_symmetric(a);
  // Trace = sum of eigenvalues.
  double trace = 0.0, esum = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += a(i, i);
  for (double v : e.values) esum += v;
  EXPECT_NEAR(trace, esum, 1e-8 * std::max(1.0, std::abs(trace)));
  // PSD: all eigenvalues >= 0 (within tolerance).
  for (double v : e.values) EXPECT_GE(v, -1e-9);
  // Descending order.
  for (std::size_t i = 1; i < n; ++i) EXPECT_GE(e.values[i - 1], e.values[i] - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EigenProperty,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u, 606u));

// ---- K-Means invariants -----------------------------------------------------

struct KmCase {
  std::uint64_t seed;
  std::size_t k;
};

class KMeansProperty : public ::testing::TestWithParam<KmCase> {};

TEST_P(KMeansProperty, InertiaMonotoneInK) {
  const auto [seed, k] = GetParam();
  Rng rng(seed);
  Matrix x(150, 4);
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (auto& v : x.row(i)) v = rng.normal(static_cast<double>(i % 3) * 4.0, 1.0);

  ml::KMeans a({.k = k});
  ml::KMeans b({.k = k + 3});
  Rng ra(seed + 1), rb(seed + 1);
  a.fit(x, ra);
  b.fit(x, rb);
  // More clusters can only help (k-means++ makes this hold in practice on
  // this well-separated data; allow tiny slack for local optima).
  EXPECT_LE(b.inertia(x), a.inertia(x) * 1.05 + 1e-9);

  // Every predicted label < k; centroids finite.
  for (std::size_t c : a.predict(x)) EXPECT_LT(c, k);
  for (std::size_t i = 0; i < a.centroids().rows(); ++i)
    for (double v : a.centroids().row(i)) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(Sweep, KMeansProperty,
                         ::testing::Values(KmCase{1, 2}, KmCase{2, 3}, KmCase{3, 4},
                                           KmCase{4, 5}, KmCase{5, 2}, KmCase{6, 6}));

// ---- Scaler round-trip invariants ------------------------------------------

class ScalerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScalerProperty, StandardizationIsAffineInvertible) {
  Rng rng(GetParam());
  Matrix x(60, 5);
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (auto& v : x.row(i)) v = rng.normal(rng.uniform(-5, 5), rng.uniform(0.5, 3));

  ml::StandardScaler s;
  Matrix z = s.fit_transform(x);
  // Invert manually and compare.
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (std::size_t j = 0; j < x.cols(); ++j) {
      const double back = z(i, j) * s.stddev()[j] + s.mean()[j];
      EXPECT_NEAR(back, x(i, j), 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScalerProperty,
                         ::testing::Values(21u, 42u, 63u, 84u));

// ---- CL matrix identities ---------------------------------------------------

class ClIdentityProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ClIdentityProperty, ConstantMatrixIdentities) {
  const std::size_t m = GetParam();
  eval::ClResultMatrix r(m);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < m; ++j) r.set(i, j, 0.42);
  EXPECT_NEAR(r.avg_current(), 0.42, 1e-12);
  EXPECT_NEAR(r.fwd_transfer(), 0.42, 1e-12);
  EXPECT_NEAR(r.bwd_transfer(), 0.0, 1e-12);
  EXPECT_NEAR(r.avg_all(), 0.42, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ClIdentityProperty,
                         ::testing::Values(2u, 3u, 4u, 5u, 8u));

}  // namespace
}  // namespace cnd
