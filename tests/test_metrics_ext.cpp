// Unit tests for extended metrics and robust label-free thresholds.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics_ext.hpp"
#include "eval/robust_threshold.hpp"
#include "tensor/rng.hpp"

namespace cnd::eval {
namespace {

TEST(Mcc, KnownValues) {
  // Perfect prediction -> 1; inverted -> -1; all-one-class -> 0.
  EXPECT_DOUBLE_EQ(mcc({.tp = 5, .fp = 0, .tn = 5, .fn = 0}), 1.0);
  EXPECT_DOUBLE_EQ(mcc({.tp = 0, .fp = 5, .tn = 0, .fn = 5}), -1.0);
  EXPECT_DOUBLE_EQ(mcc({.tp = 5, .fp = 5, .tn = 0, .fn = 0}), 0.0);
}

TEST(BalancedAccuracy, HandlesImbalance) {
  // 90 TN + 0 FP, 5 TP + 5 FN: accuracy would be 0.95, balanced = 0.75.
  Confusion c{.tp = 5, .fp = 0, .tn = 90, .fn = 5};
  EXPECT_NEAR(balanced_accuracy(c), 0.75, 1e-12);
  EXPECT_NEAR(accuracy(c), 0.95, 1e-12);
}

TEST(FBeta, ReducesToF1AtBetaOne) {
  Confusion c{.tp = 6, .fp = 3, .tn = 10, .fn = 2};
  EXPECT_NEAR(f_beta(c, 1.0), f1_score(c), 1e-12);
  // beta = 2 weights recall: with recall > precision here, F2 > F1.
  EXPECT_GT(f_beta(c, 2.0), f1_score(c));
  EXPECT_THROW(f_beta(c, 0.0), std::invalid_argument);
}

TEST(FprAtTpr, PerfectSeparatorHasZeroFpr) {
  const std::vector<double> s{0.9, 0.8, 0.2, 0.1};
  const std::vector<int> y{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(fpr_at_tpr(s, y, 1.0), 0.0);
}

TEST(FprAtTpr, InterleavedCosts) {
  // Scores: pos .9, neg .8, pos .7, neg .6 — to catch both positives you
  // must accept one negative (FPR 0.5).
  const std::vector<double> s{0.9, 0.8, 0.7, 0.6};
  const std::vector<int> y{1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(fpr_at_tpr(s, y, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(fpr_at_tpr(s, y, 0.5), 0.0);
}

TEST(DetectionDelay, FindsFirstAlarm) {
  const std::vector<double> s{0.1, 0.1, 0.2, 0.9, 0.8};
  EXPECT_EQ(detection_delay(s, 0.5, 2), 1u);  // first alarm at index 3
  EXPECT_EQ(detection_delay(s, 0.5, 4), 0u);
  EXPECT_EQ(detection_delay(s, 2.0, 0), s.size());  // never flagged
  EXPECT_THROW(detection_delay(s, 0.5, 9), std::invalid_argument);
}

TEST(MadThreshold, RobustToOutliers) {
  // 100 scores at ~1.0 plus a wild outlier: the MAD threshold must stay
  // near the bulk (a stddev-based rule would be dragged up).
  std::vector<double> cal(100, 1.0);
  for (std::size_t i = 0; i < cal.size(); ++i)
    cal[i] += 0.01 * static_cast<double>(i % 10);
  cal.push_back(1e6);
  const double t = mad_threshold(cal, 3.0);
  EXPECT_LT(t, 2.0);
  EXPECT_GT(t, 1.0);
}

TEST(MadThreshold, ScalesWithK) {
  std::vector<double> cal{1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_LT(mad_threshold(cal, 1.0), mad_threshold(cal, 5.0));
  EXPECT_THROW(mad_threshold({}, 3.0), std::invalid_argument);
}

TEST(PotThreshold, CalibratesTailProbability) {
  // Exponential(1) scores: P(X > t) = exp(-t), so the 1e-3 threshold should
  // land near -ln(1e-3) ~ 6.9.
  Rng rng(1);
  std::vector<double> cal(20000);
  for (double& v : cal) v = rng.exponential(1.0);
  const double t = pot_threshold(cal, {.tail_quantile = 0.95, .target_prob = 1e-3});
  EXPECT_NEAR(t, 6.9, 1.0);
}

TEST(PotThreshold, AboveTailQuantile) {
  Rng rng(2);
  std::vector<double> cal(500);
  for (double& v : cal) v = rng.normal();
  const double t = pot_threshold(cal, {.tail_quantile = 0.9, .target_prob = 1e-3});
  std::size_t above = 0;
  for (double v : cal) above += (v > t);
  EXPECT_LT(static_cast<double>(above) / 500.0, 0.05);
}

TEST(BootstrapF1, IntervalContainsPointAndIsDeterministic) {
  Rng rng(9);
  std::vector<int> pred(300), truth(300);
  for (std::size_t i = 0; i < 300; ++i) {
    truth[i] = rng.bernoulli(0.3) ? 1 : 0;
    pred[i] = rng.bernoulli(0.85) ? truth[i] : 1 - truth[i];
  }
  const auto ci = bootstrap_f1_ci(pred, truth, 500, 0.05, 7);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
  EXPECT_GT(ci.hi - ci.lo, 0.0);
  EXPECT_LT(ci.hi - ci.lo, 0.3);  // 300 samples: interval should be tight-ish

  const auto ci2 = bootstrap_f1_ci(pred, truth, 500, 0.05, 7);
  EXPECT_DOUBLE_EQ(ci.lo, ci2.lo);
  EXPECT_DOUBLE_EQ(ci.hi, ci2.hi);
}

TEST(BootstrapF1, PerfectPredictorDegenerateInterval) {
  std::vector<int> y{1, 0, 1, 0, 1, 1, 0, 0};
  const auto ci = bootstrap_f1_ci(y, y, 200);
  EXPECT_DOUBLE_EQ(ci.point, 1.0);
  EXPECT_DOUBLE_EQ(ci.lo, 1.0);
  EXPECT_DOUBLE_EQ(ci.hi, 1.0);
}

TEST(BootstrapF1, RejectsBadArgs) {
  EXPECT_THROW(bootstrap_f1_ci({}, {}), std::invalid_argument);
  EXPECT_THROW(bootstrap_f1_ci({1}, {1}, 5), std::invalid_argument);
  EXPECT_THROW(bootstrap_f1_ci({1}, {1}, 100, 1.5), std::invalid_argument);
}

TEST(PotThreshold, RejectsBadConfig) {
  std::vector<double> cal(30, 1.0);
  EXPECT_THROW(pot_threshold(cal, {.tail_quantile = 0.9, .target_prob = 0.5}),
               std::invalid_argument);
  EXPECT_THROW(pot_threshold(std::vector<double>(5, 1.0), {}), std::invalid_argument);
}

}  // namespace
}  // namespace cnd::eval
