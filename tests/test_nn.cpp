// Unit tests for the NN library: layer semantics, finite-difference gradient
// checks, optimizer behaviour, and end-to-end training sanity.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"
#include "nn/autoencoder.hpp"
#include "nn/linear.hpp"
#include "nn/losses.hpp"
#include "nn/mlp_classifier.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"

namespace cnd::nn {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng, double scale = 1.0) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal(0.0, scale);
  return m;
}

/// Central-difference gradient check of a network trained with MSE loss:
/// verifies every parameter's analytic gradient.
void check_gradients(Sequential& net, const Matrix& x, const Matrix& target,
                     double tol = 1e-6) {
  // Analytic gradients.
  net.zero_grad();
  Matrix out = net.forward(x, true);
  LossGrad lg = mse_loss(out, target);
  net.backward(lg.grad);

  std::vector<Matrix> analytic;
  for (auto p : net.params()) analytic.push_back(*p.grad);

  const double h = 1e-6;
  auto params = net.params();
  for (std::size_t k = 0; k < params.size(); ++k) {
    Matrix* w = params[k].value;
    for (std::size_t i = 0; i < w->rows(); ++i) {
      for (std::size_t j = 0; j < w->cols(); ++j) {
        const double orig = (*w)(i, j);
        (*w)(i, j) = orig + h;
        const double lp = mse_loss(net.forward(x, false), target).loss;
        (*w)(i, j) = orig - h;
        const double lm = mse_loss(net.forward(x, false), target).loss;
        (*w)(i, j) = orig;
        const double numeric = (lp - lm) / (2.0 * h);
        EXPECT_NEAR(analytic[k](i, j), numeric, tol)
            << "param " << k << " at (" << i << "," << j << ")";
      }
    }
  }
}

TEST(Linear, ForwardKnownValues) {
  Rng rng(1);
  Linear l(2, 1, rng);
  // Overwrite weights for a deterministic check: y = 2*x0 + 3*x1 + 1.
  auto params = l.params();
  (*params[0].value)(0, 0) = 2.0;
  (*params[0].value)(1, 0) = 3.0;
  (*params[1].value)(0, 0) = 1.0;
  Matrix x{{1, 1}, {2, 0}};
  Matrix y = l.forward(x, false);
  EXPECT_DOUBLE_EQ(y(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(y(1, 0), 5.0);
}

TEST(Linear, GradientCheck) {
  Rng rng(2);
  Sequential net;
  net.add(std::make_unique<Linear>(3, 4, rng));
  Matrix x = random_matrix(5, 3, rng);
  Matrix t = random_matrix(5, 4, rng);
  check_gradients(net, x, t);
}

TEST(Linear, BackwardWithoutForwardThrows) {
  Rng rng(3);
  Linear l(2, 2, rng);
  EXPECT_THROW(l.backward(Matrix(1, 2)), std::invalid_argument);
}

TEST(Activations, ReluForward) {
  ReLU relu;
  Matrix x{{-1, 0, 2}};
  Matrix y = relu.forward(x, false);
  EXPECT_EQ(y(0, 0), 0.0);
  EXPECT_EQ(y(0, 1), 0.0);
  EXPECT_EQ(y(0, 2), 2.0);
}

TEST(Activations, TanhSigmoidRange) {
  Tanh th;
  Sigmoid sg;
  Matrix x{{-100, 0, 100}};
  Matrix yt = th.forward(x, false);
  Matrix ys = sg.forward(x, false);
  EXPECT_NEAR(yt(0, 0), -1.0, 1e-12);
  EXPECT_NEAR(yt(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(ys(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(ys(0, 1), 0.5, 1e-12);
  EXPECT_NEAR(ys(0, 2), 1.0, 1e-12);
}

TEST(Activations, ReluNetworkGradientCheck) {
  Rng rng(4);
  Sequential net;
  net.add(std::make_unique<Linear>(3, 8, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Linear>(8, 2, rng));
  Matrix x = random_matrix(6, 3, rng);
  Matrix t = random_matrix(6, 2, rng);
  check_gradients(net, x, t);
}

TEST(Activations, TanhNetworkGradientCheck) {
  Rng rng(5);
  Sequential net;
  net.add(std::make_unique<Linear>(2, 5, rng));
  net.add(std::make_unique<Tanh>());
  net.add(std::make_unique<Linear>(5, 2, rng));
  net.add(std::make_unique<Sigmoid>());
  Matrix x = random_matrix(4, 2, rng);
  Matrix t = random_matrix(4, 2, rng, 0.3);
  check_gradients(net, x, t, 1e-5);
}

TEST(Sequential, DeepCopyIsIndependent) {
  Rng rng(6);
  Sequential net;
  net.add(std::make_unique<Linear>(2, 2, rng));
  Sequential copy = net;
  Matrix x{{1, 1}};
  Matrix y0 = net.forward(x, false);

  // Mutate the original; the copy must not change.
  auto p = net.params();
  (*p[0].value)(0, 0) += 10.0;
  Matrix y_changed = net.forward(x, false);
  Matrix y_copy = copy.forward(x, false);
  EXPECT_NE(y_changed(0, 0), y0(0, 0));
  EXPECT_DOUBLE_EQ(y_copy(0, 0), y0(0, 0));
}

TEST(Optimizer, SgdStepDirection) {
  Rng rng(7);
  Sequential net;
  net.add(std::make_unique<Linear>(1, 1, rng));
  auto params = net.params();
  (*params[0].value)(0, 0) = 1.0;
  (*params[1].value)(0, 0) = 0.0;

  // Loss = (w*1 - 0)^2 -> grad wrt w positive, SGD must decrease w.
  Matrix x{{1}};
  Matrix t{{0}};
  Matrix out = net.forward(x, true);
  LossGrad lg = mse_loss(out, t);
  net.backward(lg.grad);
  Sgd opt(0.1);
  opt.step(net.params());
  EXPECT_LT((*net.params()[0].value)(0, 0), 1.0);
  // Gradients zeroed after step.
  EXPECT_EQ((*net.params()[0].grad)(0, 0), 0.0);
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  Rng rng(8);
  Sequential net;
  net.add(std::make_unique<Linear>(1, 1, rng));
  Adam opt(0.05);
  Matrix x{{1}};
  Matrix t{{3}};
  for (int i = 0; i < 500; ++i) {
    net.zero_grad();
    Matrix out = net.forward(x, true);
    LossGrad lg = mse_loss(out, t);
    net.backward(lg.grad);
    opt.step(net.params());
  }
  Matrix out = net.forward(x, false);
  EXPECT_NEAR(out(0, 0), 3.0, 1e-3);
}

TEST(Autoencoder, DropoutConfigAddsLayersAndStaysDeterministicAtInference) {
  Rng rng(21);
  Autoencoder ae({.input_dim = 6, .hidden_dim = 16, .latent_dim = 4, .dropout = 0.3},
                 rng);
  Matrix x = random_matrix(5, 6, rng);
  Matrix a = ae.encode(x);
  Matrix b = ae.encode(x);  // inference path: dropout is identity
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) EXPECT_DOUBLE_EQ(a(i, j), b(i, j));
  Rng rng2(22);
  EXPECT_THROW(Autoencoder({.input_dim = 4, .dropout = 1.0}, rng2),
               std::invalid_argument);
}

TEST(Autoencoder, ShapesAndRoundtrip) {
  Rng rng(9);
  Autoencoder ae({.input_dim = 10, .hidden_dim = 16, .latent_dim = 4}, rng);
  Matrix x = random_matrix(7, 10, rng);
  Matrix h = ae.encode(x);
  EXPECT_EQ(h.rows(), 7u);
  EXPECT_EQ(h.cols(), 4u);
  Matrix xhat = ae.decode(h);
  EXPECT_EQ(xhat.cols(), 10u);
  EXPECT_EQ(ae.params().size(), 8u);  // 4 Linear layers x (W, b)
}

TEST(Autoencoder, TrainingReducesReconstructionError) {
  Rng rng(10);
  Autoencoder ae({.input_dim = 6, .hidden_dim = 32, .latent_dim = 3}, rng);
  // Low-rank data is compressible to 3 dims.
  Matrix basis = random_matrix(3, 6, rng);
  Matrix z = random_matrix(64, 3, rng);
  Matrix x = matmul(z, basis);

  const double before = mse(ae.reconstruct(x), x);
  Adam opt(1e-2);
  for (int epoch = 0; epoch < 200; ++epoch) {
    ae.zero_grad();
    Matrix h = ae.encoder().forward(x, true);
    Matrix xhat = ae.decoder().forward(h, true);
    LossGrad lg = mse_loss(xhat, x);
    Matrix gh = ae.decoder().backward(lg.grad);
    ae.encoder().backward(gh);
    opt.step(ae.params());
  }
  const double after = mse(ae.reconstruct(x), x);
  EXPECT_LT(after, before * 0.1);
}

TEST(MlpClassifier, LearnsLinearlySeparableData) {
  Rng rng(11);
  const std::size_t n = 200;
  Matrix x(n, 2);
  std::vector<std::size_t> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool pos = i % 2 == 0;
    x(i, 0) = rng.normal(pos ? 2.0 : -2.0, 0.5);
    x(i, 1) = rng.normal(pos ? 2.0 : -2.0, 0.5);
    y[i] = pos ? 1 : 0;
  }
  MlpClassifier clf({.input_dim = 2, .hidden_dim = 16, .n_classes = 2,
                     .epochs = 30, .batch_size = 32, .lr = 1e-2},
                    rng);
  clf.fit(x, y);
  auto pred = clf.predict(x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < n; ++i) correct += (pred[i] == y[i]);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(n), 0.95);

  auto proba = clf.predict_proba1(x);
  for (double p : proba) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

}  // namespace
}  // namespace cnd::nn
