// Unit tests for the observability subsystem (metrics registry, scoped
// timers, JSONL event sink) and the detector factory/registry built on top
// of it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/detector_factory.hpp"
#include "core/streaming_cnd_ids.hpp"
#include "data/synth.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "runtime/parallel_for.hpp"

// ---- Global allocation counter for the zero-allocation assertions ----------
// Counts every operator-new in the process; tests diff the counter around the
// code under test. Only the delta matters, so gtest's own allocations between
// tests are harmless. Compiled out under sanitizer builds: ASan/TSan own the
// allocator there (replacing operator new with a malloc shim defeats their
// tracking, and GCC rejects the new/free pairing under -Werror), so the
// zero-allocation assertion degenerates to 0 == 0 in those configurations.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

#ifndef CND_SANITIZER_BUILD

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // CND_SANITIZER_BUILD

namespace cnd {
namespace {

/// Restores the global observability state a test mutated.
struct ObsGuard {
  ~ObsGuard() {
    obs::events().set_sink(nullptr);
    obs::set_enabled(false);
  }
};

// ---- MetricsRegistry --------------------------------------------------------

TEST(Metrics, CounterExactUnderParallelHammering) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("test.hammered");
  const std::size_t n_chunks = 64, adds_per_chunk = 1000;
  runtime::parallel_for(0, n_chunks, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      for (std::size_t k = 0; k < adds_per_chunk; ++k) c.add(1);
  });
  EXPECT_EQ(c.value(), n_chunks * adds_per_chunk);
}

TEST(Metrics, GaugeAddAndMaxExactUnderParallelHammering) {
  obs::MetricsRegistry reg;
  obs::Gauge& sum = reg.gauge("test.sum");
  obs::Gauge& hwm = reg.gauge("test.hwm");
  const std::size_t n = 128;
  runtime::parallel_for(0, n, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      sum.add(1.0);  // integers up to 128 are exact in double
      hwm.record_max(static_cast<double>(i));
    }
  });
  EXPECT_DOUBLE_EQ(sum.value(), static_cast<double>(n));
  EXPECT_DOUBLE_EQ(hwm.value(), static_cast<double>(n - 1));
}

TEST(Metrics, RegistryHandlesAreStable) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("same.name");
  obs::Counter& b = reg.counter("same.name");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Metrics, HistogramBucketEdgesAreInclusiveUpperBounds) {
  obs::Histogram h({1.0, 10.0, 100.0});
  ASSERT_EQ(h.n_buckets(), 4u);  // 3 bounds + overflow

  h.record(0.5);    // <= 1       -> bucket 0
  h.record(1.0);    // == 1       -> bucket 0 (inclusive edge)
  h.record(1.0001); // (1, 10]    -> bucket 1
  h.record(10.0);   // == 10      -> bucket 1
  h.record(99.0);   // (10, 100]  -> bucket 2
  h.record(100.5);  // > 100      -> overflow

  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 99.0 + 100.5, 1e-9);
}

TEST(Metrics, HistogramRejectsBadBounds) {
  EXPECT_THROW(obs::Histogram({}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Metrics, ResetZeroesValuesButKeepsRegistrations) {
  obs::MetricsRegistry reg;
  reg.counter("a").add(5);
  reg.gauge("b").set(2.5);
  reg.histogram("c", {1.0}).record(0.5);
  reg.reset();
  EXPECT_EQ(reg.counter("a").value(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("b").value(), 0.0);
  EXPECT_EQ(reg.histogram("c").count(), 0u);
  EXPECT_EQ(reg.counter_names(), std::vector<std::string>{"a"});
  EXPECT_EQ(reg.gauge_names(), std::vector<std::string>{"b"});
  EXPECT_EQ(reg.histogram_names(), std::vector<std::string>{"c"});
}

TEST(Metrics, ToJsonContainsAllFamilies) {
  obs::MetricsRegistry reg;
  reg.counter("runs").add(2);
  reg.gauge("threshold").set(1.5);
  reg.histogram("lat_ms", {1.0, 2.0}).record(1.5);
  const std::string js = reg.to_json();
  EXPECT_EQ(js.front(), '{');
  EXPECT_EQ(js.back(), '}');
  EXPECT_NE(js.find("\"runs\":2"), std::string::npos);
  EXPECT_NE(js.find("\"threshold\":1.5"), std::string::npos);
  EXPECT_NE(js.find("\"lat_ms\""), std::string::npos);
  EXPECT_NE(js.find("\"buckets\":[0,1,0]"), std::string::npos);
}

// ---- ScopedTimer ------------------------------------------------------------

TEST(ScopedTimer, RecordsOnlyWhenEnabled) {
  ObsGuard guard;
  obs::MetricsRegistry reg;

  obs::set_enabled(false);
  {
    obs::ScopedTimer t(reg, "t.off");
    EXPECT_DOUBLE_EQ(t.stop_ms(), 0.0);
  }
  EXPECT_TRUE(reg.histogram_names().empty());  // never touched the registry

  obs::set_enabled(true);
  {
    obs::ScopedTimer t(reg, "t.on");
  }
  EXPECT_EQ(reg.histogram("t.on").count(), 1u);
}

TEST(ScopedTimer, StopReturnsElapsedAndRecordsOnce) {
  ObsGuard guard;
  obs::set_enabled(true);
  obs::MetricsRegistry reg;
  obs::ScopedTimer t(reg, "t.stop");
  const double ms = t.stop_ms();
  EXPECT_GE(ms, 0.0);
  EXPECT_DOUBLE_EQ(t.stop_ms(), 0.0);         // second stop is a no-op
  EXPECT_EQ(reg.histogram("t.stop").count(), 1u);  // dtor must not double-record
}

// ---- EventLog ---------------------------------------------------------------

TEST(EventLog, NullBackendAllocatesNothing) {
  ObsGuard guard;
  obs::events().set_sink(nullptr);
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 100; ++i)
    obs::events().emit("ev.null", {{"i", i}, {"x", 1.5}, {"s", "str"}});
  EXPECT_EQ(g_allocations.load(), before);
}

TEST(EventLog, JsonlSchemaRoundTrip) {
  ObsGuard guard;
  auto sink = std::make_shared<obs::MemorySink>();
  obs::events().set_sink(sink);
  const double third = 1.0 / 3.0;
  obs::events().emit("ev.types", {{"d", third},
                                  {"i", -7},
                                  {"u", 42u},
                                  {"b", true},
                                  {"s", "quo\"te"}});
  obs::events().set_sink(nullptr);

  const auto lines = sink->lines();
  ASSERT_EQ(lines.size(), 1u);
  const std::string& l = lines.front();
  EXPECT_EQ(l.front(), '{');
  EXPECT_EQ(l.back(), '}');
  EXPECT_NE(l.find("\"event\":\"ev.types\""), std::string::npos);
  EXPECT_NE(l.find("\"seq\":"), std::string::npos);
  EXPECT_NE(l.find("\"i\":-7"), std::string::npos);
  EXPECT_NE(l.find("\"u\":42"), std::string::npos);
  EXPECT_NE(l.find("\"b\":true"), std::string::npos);
  EXPECT_NE(l.find("\"s\":\"quo\\\"te\""), std::string::npos);

  // %.17g round-trips doubles exactly.
  const auto pos = l.find("\"d\":");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_DOUBLE_EQ(std::strtod(l.c_str() + pos + 4, nullptr), third);
}

TEST(EventLog, SequenceNumbersAreMonotonic) {
  ObsGuard guard;
  auto sink = std::make_shared<obs::MemorySink>();
  obs::events().set_sink(sink);
  obs::events().emit("ev.a");
  obs::events().emit("ev.b");
  obs::events().set_sink(nullptr);

  const auto lines = sink->lines();
  ASSERT_EQ(lines.size(), 2u);
  const auto seq_of = [](const std::string& l) {
    const auto p = l.find("\"seq\":");
    return std::strtoull(l.c_str() + p + 6, nullptr, 10);
  };
  EXPECT_EQ(seq_of(lines[1]), seq_of(lines[0]) + 1);
}

TEST(EventLog, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json_escape("x\ny\tz\r"), "x\\ny\\tz\\r");
  EXPECT_EQ(obs::json_escape(std::string("\x01", 1)), "\\u0001");
}

// ---- Detector factory -------------------------------------------------------

data::ExperienceSet small_experience_set(std::uint64_t seed = 3) {
  data::SynthSpec spec;
  spec.name = "tiny";
  spec.n_features = 12;
  spec.n_normal = 1200;
  spec.n_attack = 600;
  spec.n_attack_classes = 4;
  spec.seed = seed;
  const data::Dataset ds = data::make_synthetic(spec);
  return data::prepare_experiences(ds, {.n_experiences = 4, .seed = seed});
}

/// Small network sizes so the all-detectors sweep stays fast.
core::DetectorConfig fast_detector_config(std::uint64_t seed = 7) {
  core::DetectorConfig c;
  c.seed = seed;
  c.cnd.cfe.hidden_dim = 32;
  c.cnd.cfe.latent_dim = 8;
  c.cnd.cfe.epochs = 2;
  c.cnd.cfe.kmeans_k = 4;
  c.adcn.hidden_dim = 32;
  c.adcn.latent_dim = 8;
  c.adcn.epochs = 2;
  c.lwf.hidden_dim = 32;
  c.lwf.latent_dim = 8;
  c.lwf.epochs = 2;
  c.dif.n_representations = 4;
  c.dif.trees_per_repr = 2;
  c.ae.hidden_dim = 16;
  c.ae.latent_dim = 4;
  c.ae.epochs = 2;
  return c;
}

TEST(DetectorFactory, UnknownNameThrowsAndListsRegistry) {
  try {
    core::make_detector("NoSuchDetector");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("NoSuchDetector"), std::string::npos);
    EXPECT_NE(msg.find("CND-IDS"), std::string::npos);  // lists what exists
  }
}

TEST(DetectorFactory, NamesAreSortedAndComplete) {
  const auto names = core::detector_names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* expected : {"CND-IDS", "ADCN", "LwF", "PCA", "DIF", "GMM",
                               "Maha", "kNN", "HBOS", "AE", "LOF", "OC-SVM"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
}

TEST(DetectorFactory, EveryRegisteredNameConstructsAndScores) {
  const auto es = small_experience_set();
  const auto cfg = fast_detector_config();
  for (const std::string& name : core::detector_names()) {
    SCOPED_TRACE(name);
    const core::RunResult res = core::run_detector(name, cfg, es);
    EXPECT_EQ(res.detector_name, name);
    const double avg = res.f1.avg_all();
    EXPECT_GE(avg, 0.0);
    EXPECT_LE(avg, 1.0);
  }
}

TEST(DetectorFactory, KindsMatchTheFitProtocol) {
  EXPECT_EQ(core::detector_kind("CND-IDS"), core::DetectorKind::kContinual);
  EXPECT_EQ(core::detector_kind("PCA"), core::DetectorKind::kStaticNovelty);
  EXPECT_EQ(core::detector_kind("LOF"), core::DetectorKind::kStaticOutlier);
}

TEST(DetectorFactory, CustomRegistrationAndReplacement) {
  const bool replaced_first = core::register_detector(
      "test-custom", core::DetectorKind::kStaticNovelty,
      [](const core::DetectorConfig& c) {
        return core::make_detector("PCA", c);
      });
  EXPECT_FALSE(replaced_first);
  const auto det = core::make_detector("test-custom");
  EXPECT_EQ(det->name(), "PCA");  // wraps the PCA entry
  EXPECT_TRUE(core::register_detector(
      "test-custom", core::DetectorKind::kStaticNovelty,
      [](const core::DetectorConfig& c) {
        return core::make_detector("Maha", c);
      }));
}

// ---- Config validation ------------------------------------------------------

TEST(ConfigValidation, CndIdsRejectsBadFields) {
  core::CndIdsConfig c;
  c.cfe.lr = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  EXPECT_THROW(core::CndIds{c}, std::invalid_argument);

  c = {};
  c.pca.explained_variance = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = {};
  c.cfe.dropout = 1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = {};
  EXPECT_NO_THROW(c.validate());
}

TEST(ConfigValidation, StreamingRejectsBadFieldsWithLayerPrefix) {
  core::StreamingConfig c;
  c.min_buffer_rows = 8;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  EXPECT_THROW(core::StreamingCndIds{c}, std::invalid_argument);

  c = {};
  c.detector.cfe.epochs = 0;
  try {
    c.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("detector."), std::string::npos);
  }

  c = {};
  EXPECT_NO_THROW(c.validate());
}

// ---- Streaming instrumentation ---------------------------------------------

core::StreamingConfig fast_stream_cfg() {
  core::StreamingConfig cfg;
  cfg.detector.cfe.hidden_dim = 32;
  cfg.detector.cfe.latent_dim = 16;
  cfg.detector.cfe.epochs = 3;
  cfg.detector.cfe.kmeans_k = 3;
  cfg.min_buffer_rows = 64;
  cfg.max_buffer_rows = 256;
  return cfg;
}

TEST(StreamingObs, RejectsColumnMismatchAgainstBootstrapWindow) {
  core::StreamingCndIds mon(fast_stream_cfg());
  Rng rng(11);
  Matrix clean(64, 6);
  for (std::size_t i = 0; i < clean.rows(); ++i)
    for (std::size_t j = 0; j < clean.cols(); ++j)
      clean(i, j) = rng.normal(0.0, 1.0);
  mon.bootstrap(clean);

  Matrix wrong(8, 7);
  EXPECT_THROW(mon.process_batch(wrong), std::invalid_argument);
}

TEST(StreamingObs, EmitsAdaptationEvent) {
  ObsGuard guard;
  auto sink = std::make_shared<obs::MemorySink>();
  obs::events().set_sink(sink);

  core::StreamingCndIds mon(fast_stream_cfg());
  Rng rng(12);
  Matrix clean(64, 6);
  for (std::size_t i = 0; i < clean.rows(); ++i)
    for (std::size_t j = 0; j < clean.cols(); ++j)
      clean(i, j) = rng.normal(0.0, 1.0);
  mon.bootstrap(clean);

  // Feed batches until the buffer cap forces one adaptation round.
  bool adapted = false;
  for (int b = 0; b < 10 && !adapted; ++b) {
    Matrix batch(32, 6);
    for (std::size_t i = 0; i < batch.rows(); ++i)
      for (std::size_t j = 0; j < batch.cols(); ++j)
        batch(i, j) = rng.normal(0.0, 1.0);
    adapted = mon.process_batch(batch).adapted;
  }
  obs::events().set_sink(nullptr);
  ASSERT_TRUE(adapted);

  bool saw_bootstrap = false, saw_adaptation = false;
  for (const auto& l : sink->lines()) {
    saw_bootstrap |= l.find("\"event\":\"stream.bootstrap\"") != std::string::npos;
    saw_adaptation |=
        l.find("\"event\":\"stream.adaptation\"") != std::string::npos;
  }
  EXPECT_TRUE(saw_bootstrap);
  EXPECT_TRUE(saw_adaptation);
}

// ---- Thread pool instrumentation -------------------------------------------

TEST(RuntimeObs, PoolCountsJobsAndChunks) {
  obs::MetricsRegistry& m = obs::metrics();
  const std::uint64_t jobs0 = m.counter("runtime.jobs_total").value();
  const std::uint64_t chunks0 = m.counter("runtime.chunks_total").value();
  const std::uint64_t tasks0 = m.counter("runtime.tasks_total").value();

  const std::size_t n = 40;
  std::atomic<std::size_t> executed{0};
  runtime::parallel_for(0, n, 1, [&](std::size_t lo, std::size_t hi) {
    executed.fetch_add(hi - lo);
  });

  EXPECT_EQ(executed.load(), n);
  if (runtime::threads() > 1) {
    // Multi-lane path goes through the pool: one job, one chunk per lane-
    // sized slice. Chunk and task totals advance by the same amount.
    EXPECT_EQ(m.counter("runtime.jobs_total").value(), jobs0 + 1);
    const std::uint64_t new_chunks =
        m.counter("runtime.chunks_total").value() - chunks0;
    EXPECT_GT(new_chunks, 0u);
    EXPECT_EQ(m.counter("runtime.tasks_total").value() - tasks0, new_chunks);
  } else {
    // Serial fallback never enters ThreadPool::run.
    EXPECT_EQ(m.counter("runtime.jobs_total").value(), jobs0);
  }
}

}  // namespace
}  // namespace cnd
