// Round-trip tests for model serialization (InferenceModel artifacts).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "io/binary.hpp"
#include "io/model_io.hpp"
#include "ml/scaler.hpp"

namespace cnd::io {
namespace {

// ---- binary primitives ------------------------------------------------------

TEST(BinaryIo, PrimitiveRoundTrip) {
  const std::string path = "/tmp/cnd_bin_prim.bin";
  {
    std::ofstream f(path, std::ios::binary);
    write_header(f);
    write_u64(f, 12345);
    write_f64(f, 3.14159);
    write_string(f, "hello artifact");
    write_vec(f, {1.0, 2.5, -3.0});
    write_matrix(f, Matrix{{1, 2}, {3, 4}});
  }
  std::ifstream f(path, std::ios::binary);
  read_header(f);
  EXPECT_EQ(read_u64(f), 12345u);
  EXPECT_DOUBLE_EQ(read_f64(f), 3.14159);
  EXPECT_EQ(read_string(f), "hello artifact");
  EXPECT_EQ(read_vec(f), (std::vector<double>{1.0, 2.5, -3.0}));
  Matrix m = read_matrix(f);
  EXPECT_EQ(m(1, 1), 4.0);
  std::remove(path.c_str());
}

TEST(BinaryIo, RejectsWrongMagic) {
  const std::string path = "/tmp/cnd_bin_bad.bin";
  {
    std::ofstream f(path, std::ios::binary);
    const std::uint32_t junk = 0xDEADBEEF;
    f.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
    f.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
  }
  std::ifstream f(path, std::ios::binary);
  EXPECT_THROW(read_header(f), std::runtime_error);
  std::remove(path.c_str());
}

// ---- InferenceModel ---------------------------------------------------------

struct TrainedFixture {
  core::CndIds detector{make_cfg()};
  ml::StandardScaler scaler;
  Matrix test;

  static core::CndIdsConfig make_cfg() {
    core::CndIdsConfig c;
    c.cfe.hidden_dim = 24;
    c.cfe.latent_dim = 12;
    c.cfe.epochs = 3;
    c.cfe.kmeans_k = 2;
    return c;
  }

  TrainedFixture() {
    Rng rng(5);
    Matrix raw_clean(120, 6);
    for (std::size_t i = 0; i < raw_clean.rows(); ++i)
      for (auto& v : raw_clean.row(i)) v = rng.normal(10.0, 3.0);
    scaler.fit(raw_clean);
    Matrix n_clean = scaler.transform(raw_clean);

    Matrix stream(200, 6);
    for (std::size_t i = 0; i < stream.rows(); ++i)
      for (std::size_t j = 0; j < 6; ++j)
        stream(i, j) = rng.normal(10.0 + (i % 4 == 0 && j < 2 ? 20.0 : 0.0), 3.0);
    Matrix seed_x;
    std::vector<int> seed_y;
    detector.setup(core::SetupContext{n_clean, seed_x, seed_y});
    detector.observe_experience(scaler.transform(stream));

    test = Matrix(40, 6);
    for (std::size_t i = 0; i < 40; ++i)
      for (std::size_t j = 0; j < 6; ++j)
        test(i, j) = rng.normal(10.0 + (i < 10 && j < 2 ? 20.0 : 0.0), 3.0);
  }
};

TEST(InferenceModel, ScoresMatchDetector) {
  TrainedFixture fx;
  InferenceModel model(fx.detector, fx.scaler, /*threshold=*/1.0);
  const auto from_model = model.score(fx.test);
  const auto from_detector = fx.detector.score(fx.scaler.transform(fx.test));
  ASSERT_EQ(from_model.size(), from_detector.size());
  for (std::size_t i = 0; i < from_model.size(); ++i)
    EXPECT_NEAR(from_model[i], from_detector[i], 1e-12);
}

TEST(InferenceModel, SaveLoadRoundTrip) {
  TrainedFixture fx;
  InferenceModel model(fx.detector, fx.scaler, 2.5);
  const std::string path = "/tmp/cnd_model_artifact.bin";
  model.save(path);

  InferenceModel back = InferenceModel::load(path);
  EXPECT_TRUE(back.ready());
  EXPECT_TRUE(back.has_scaler());
  EXPECT_DOUBLE_EQ(back.threshold(), 2.5);

  const auto a = model.score(fx.test);
  const auto b = back.score(fx.test);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);

  const auto pa = model.predict(fx.test);
  const auto pb = back.predict(fx.test);
  EXPECT_EQ(pa, pb);
  std::remove(path.c_str());
}

TEST(InferenceModel, PredictUsesThreshold) {
  TrainedFixture fx;
  InferenceModel lenient(fx.detector, fx.scaler, 1e12);
  InferenceModel strict(fx.detector, fx.scaler, -1.0);
  const auto none = lenient.predict(fx.test);
  const auto all = strict.predict(fx.test);
  for (int v : none) EXPECT_EQ(v, 0);
  for (int v : all) EXPECT_EQ(v, 1);
}

TEST(InferenceModel, LoadRejectsMissingFile) {
  EXPECT_THROW(InferenceModel::load("/tmp/definitely_missing_cnd.bin"),
               std::invalid_argument);
}

TEST(InferenceModel, EmptyModelRejectsScoring) {
  InferenceModel empty;
  EXPECT_THROW(empty.score(Matrix(1, 3)), std::invalid_argument);
}

}  // namespace
}  // namespace cnd::io
