// Unit tests for the ADCN and LwF UCL baselines.
#include <gtest/gtest.h>

#include "baselines/adcn.hpp"
#include "baselines/lwf.hpp"
#include "eval/metrics.hpp"

namespace cnd::baselines {
namespace {

struct Toy {
  Matrix n_clean;
  Matrix seed_x;
  std::vector<int> seed_y;
  Matrix x_train;
  Matrix x_test;
  std::vector<int> y_test;
};

Toy make_toy(Rng& rng) {
  Toy t;
  auto fill_normal = [&](Matrix& m) {
    for (std::size_t i = 0; i < m.rows(); ++i)
      for (auto& v : m.row(i)) v = rng.normal();
  };
  t.n_clean = Matrix(60, 4);
  fill_normal(t.n_clean);

  // Balanced labeled seed.
  t.seed_x = Matrix(40, 4);
  for (std::size_t i = 0; i < 40; ++i) {
    const bool attack = i >= 20;
    t.seed_y.push_back(attack ? 1 : 0);
    for (std::size_t j = 0; j < 4; ++j)
      t.seed_x(i, j) = rng.normal(attack && j < 2 ? 8.0 : 0.0, 1.0);
  }

  t.x_train = Matrix(200, 4);
  for (std::size_t i = 0; i < 200; ++i) {
    const bool attack = i % 4 == 0;
    for (std::size_t j = 0; j < 4; ++j)
      t.x_train(i, j) = rng.normal(attack && j < 2 ? 8.0 : 0.0, 1.0);
  }

  t.x_test = Matrix(80, 4);
  for (std::size_t i = 0; i < 80; ++i) {
    const bool attack = i < 24;
    t.y_test.push_back(attack ? 1 : 0);
    for (std::size_t j = 0; j < 4; ++j)
      t.x_test(i, j) = rng.normal(attack && j < 2 ? 8.0 : 0.0, 1.0);
  }
  return t;
}

AdcnConfig fast_adcn() {
  AdcnConfig c;
  c.hidden_dim = 32;
  c.latent_dim = 8;
  c.epochs = 5;
  c.init_k = 4;
  return c;
}

LwfConfig fast_lwf() {
  LwfConfig c;
  c.hidden_dim = 32;
  c.latent_dim = 8;
  c.epochs = 5;
  c.k = 4;
  return c;
}

TEST(Adcn, RequiresSeed) {
  Adcn det(fast_adcn());
  Matrix empty_x;
  std::vector<int> empty_y;
  Matrix nc(10, 4);
  EXPECT_THROW(det.setup(core::SetupContext{nc, empty_x, empty_y}),
               std::invalid_argument);
  EXPECT_THROW(det.observe_experience(Matrix(50, 4)), std::invalid_argument);
}

TEST(Adcn, LearnsSeparableToy) {
  Rng rng(1);
  Toy t = make_toy(rng);
  Adcn det(fast_adcn());
  det.setup(core::SetupContext{t.n_clean, t.seed_x, t.seed_y});
  det.observe_experience(t.x_train);

  const auto p = det.predict(t.x_test);
  ASSERT_EQ(p.size(), t.y_test.size());
  EXPECT_GT(eval::f1_score(p, t.y_test), 0.7);
  EXPECT_GE(det.n_clusters(), 4u);
}

TEST(Adcn, HasNoScores) {
  Adcn det(fast_adcn());
  EXPECT_FALSE(det.has_scores());
  EXPECT_THROW(det.score(Matrix(1, 4)), std::logic_error);
}

TEST(Adcn, ClusterGrowthAcrossExperiences) {
  Rng rng(2);
  Toy t = make_toy(rng);
  Adcn det(fast_adcn());
  det.setup(core::SetupContext{t.n_clean, t.seed_x, t.seed_y});
  det.observe_experience(t.x_train);
  const std::size_t k1 = det.n_clusters();

  // A second experience with a brand-new attack mode far away.
  Matrix x2 = t.x_train;
  for (std::size_t i = 0; i < x2.rows(); i += 5)
    for (std::size_t j = 2; j < 4; ++j) x2(i, j) += -12.0;
  det.observe_experience(x2);
  EXPECT_GE(det.n_clusters(), k1);  // never shrinks; may spawn
}

TEST(Lwf, RequiresSeed) {
  Lwf det(fast_lwf());
  Matrix empty_x;
  std::vector<int> empty_y;
  Matrix nc(10, 4);
  EXPECT_THROW(det.setup(core::SetupContext{nc, empty_x, empty_y}),
               std::invalid_argument);
}

TEST(Lwf, LearnsSeparableToy) {
  Rng rng(3);
  Toy t = make_toy(rng);
  Lwf det(fast_lwf());
  det.setup(core::SetupContext{t.n_clean, t.seed_x, t.seed_y});
  det.observe_experience(t.x_train);
  const auto p = det.predict(t.x_test);
  EXPECT_GT(eval::f1_score(p, t.y_test), 0.7);
}

TEST(Lwf, HasNoScores) {
  Lwf det(fast_lwf());
  EXPECT_FALSE(det.has_scores());
  EXPECT_THROW(det.score(Matrix(1, 4)), std::logic_error);
}

TEST(Lwf, PredictBeforeObserveThrows) {
  Rng rng(4);
  Toy t = make_toy(rng);
  Lwf det(fast_lwf());
  det.setup(core::SetupContext{t.n_clean, t.seed_x, t.seed_y});
  EXPECT_THROW(det.predict(t.x_test), std::invalid_argument);
}

TEST(Lwf, SurvivesSecondExperience) {
  Rng rng(5);
  Toy t = make_toy(rng);
  Lwf det(fast_lwf());
  det.setup(core::SetupContext{t.n_clean, t.seed_x, t.seed_y});
  det.observe_experience(t.x_train);
  det.observe_experience(t.x_train);  // distillation path exercised
  const auto p = det.predict(t.x_test);
  EXPECT_GT(eval::f1_score(p, t.y_test), 0.6);
}

}  // namespace
}  // namespace cnd::baselines
