#!/usr/bin/env python3
"""Merge SARIF 2.1.0 files by concatenating their runs arrays.

SARIF is multi-run by design — one run per tool — so merging cnd_analyze's
and cnd_lint's reports is just `runs = sum of inputs' runs`; each keeps its
own driver metadata and rule table. CI merges the two files and uploads one
artifact (github/codeql-action/upload-sarif takes a single file per
category).

Usage:
  merge_sarif.py -o merged.sarif a.sarif b.sarif [...]

Exit codes: 0 merged; 2 unreadable/malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("-o", "--output", required=True, help="merged SARIF file")
    ap.add_argument("inputs", nargs="+", help="SARIF files to merge")
    args = ap.parse_args()

    runs = []
    for path in args.inputs:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"merge_sarif: {path}: {e}", file=sys.stderr)
            return 2
        if not isinstance(doc, dict) or not isinstance(doc.get("runs"), list):
            print(f"merge_sarif: {path}: no runs array", file=sys.stderr)
            return 2
        runs.extend(doc["runs"])

    merged = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": runs,
    }
    with open(args.output, "w", encoding="utf-8") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    results = sum(len(r.get("results", [])) for r in runs)
    print(f"merge_sarif: {args.output}: {len(runs)} run(s), "
          f"{results} result(s) from {len(args.inputs)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
