// cnd-analyze-path: src/ml/timed.cpp
// A telemetry helper vouched with a header `// cnd-det-ok(<reason>)`:
// descent stops at the barrier, so the hot root stays clean.
namespace cnd::ml {

// cnd-det-ok(write-only telemetry — never feeds a result)
double now_ms() {
  return static_cast<double>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

// cnd-hot
double score(double x) {
  record_latency(now_ms());
  return x * 2.0;
}

}  // namespace cnd::ml
