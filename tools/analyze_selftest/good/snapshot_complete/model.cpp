// cnd-analyze-path: src/ml/model.cpp
// Every data member is referenced in both snapshot() and restore().
namespace cnd::ml {

class Model {
 public:
  void snapshot(std::ostream& os) const {
    write_f64(os, center_);
    write_f64(os, scale_);
  }
  void restore(std::istream& is) {
    center_ = read_f64(is);
    scale_ = read_f64(is);
  }

 private:
  double center_ = 0.0;
  double scale_ = 1.0;
};

}  // namespace cnd::ml
