// cnd-analyze-path: src/ml/boundary.cpp
// A guard helper vouched with a header `// cnd-throw-ok(<reason>)`:
// descent stops, so its require() does not taint the hot root.
namespace cnd::ml {

// cnd-throw-ok(batch-boundary guard — validates once before the batch runs)
void check_batch(double x) {
  require(x >= 0.0, "check_batch: negative input");
}

// cnd-hot
double score(double x) {
  check_batch(x);
  return x * 2.0;
}

}  // namespace cnd::ml
