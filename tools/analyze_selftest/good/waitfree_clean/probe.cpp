// cnd-analyze-path: src/serve/probe.cpp
// A wait-free root whose whole reachable set is pure arithmetic.
namespace cnd::serve {

double square(double x) { return x * x; }

// cnd-wait-free
double admit_score(double x) { return square(x) + 1.0; }

}  // namespace cnd::serve
