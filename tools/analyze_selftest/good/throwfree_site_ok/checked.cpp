// cnd-analyze-path: src/ml/checked.cpp
// A batch-boundary precondition waived at the site with a trailing
// `// cnd-throw-ok(<reason>)`.
namespace cnd::ml {

// cnd-hot
double score(double x) {
  require(x >= 0.0, "score: negative input");  // cnd-throw-ok(batch-boundary shape guard)
  return x * 2.0;
}

}  // namespace cnd::ml
