// cnd-analyze-path: src/ml/cache.cpp
// A scratch member vouched out of the snapshot contract with
// `// cnd-snapshot: skip(<reason>)`.
namespace cnd::ml {

class Cache {
 public:
  void snapshot(std::ostream& os) const { write_f64(os, center_); }
  void restore(std::istream& is) { center_ = read_f64(is); }

 private:
  double center_ = 0.0;
  double scratch_ = 0.0;  // cnd-snapshot: skip(recomputed on every batch)
};

}  // namespace cnd::ml
