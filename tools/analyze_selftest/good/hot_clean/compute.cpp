// cnd-analyze-path: src/ml/compute.cpp
// A hot function whose whole call tree is allocation-free: no finding.
namespace cnd::ml {

double helper(double x) { return x * 2.0; }

// cnd-hot
double score(double x) { return helper(x) + 1.0; }

}  // namespace cnd::ml
