// cnd-analyze-path: src/ml/refit.cpp
// A line-level escape hatch suppresses a single direct allocation.
#include <vector>

namespace cnd::ml {

// cnd-hot
void accumulate(std::vector<double>& acc, double v) {
  if (acc.empty())
    acc.assign(4, 0.0);  // cnd-analyze: allow(hot-path-alloc) — first batch only
  acc[0] += v;
}

}  // namespace cnd::ml
