// cnd-analyze-path: src/tensor/rng.cpp
// The RNG home file may use std facilities freely; the confinement rule
// exempts exactly this path.
#include <random>

namespace cnd {

double raw_draw(std::mt19937_64& g) {
  std::uniform_real_distribution<double> d(0.0, 1.0);
  return d(g);
}

}  // namespace cnd
