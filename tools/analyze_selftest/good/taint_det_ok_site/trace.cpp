// cnd-analyze-path: src/eval/trace.cpp
// A single sanctioned clock read waived at the site with a trailing
// `// cnd-det-ok(<reason>)`.
namespace cnd::eval {

void write_trace(double v) {
  const auto t = std::chrono::steady_clock::now();  // cnd-det-ok(timestamp column is documented as wall-clock)
  emit_row(t, v);
}

}  // namespace cnd::eval
