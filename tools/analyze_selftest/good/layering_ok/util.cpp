// cnd-analyze-path: src/tensor/util.cpp
namespace cnd::tensor {

double norm(double x) { return x < 0 ? -x : x; }

}  // namespace cnd::tensor
