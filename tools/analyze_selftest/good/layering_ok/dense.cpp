// cnd-analyze-path: src/nn/dense.cpp
// nn may call down into tensor: reachable in the layer DAG, no finding.
namespace cnd::nn {

double activate(double x) { return tensor::norm(x); }

}  // namespace cnd::nn
