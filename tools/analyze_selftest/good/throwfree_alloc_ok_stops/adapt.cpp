// cnd-analyze-path: src/ml/adapt.cpp
// An `// cnd-alloc-ok` function is vouched off the allocation-free steady
// state, so the throw-free walk stops there too: an allocating path can
// already throw bad_alloc, and the no-throw contract binds only the
// steady state the alloc rule proves.
namespace cnd::ml {

// cnd-alloc-ok(adaptation round — off the steady-state batch path)
void adapt(double x) {
  if (x < 0.0) throw std::runtime_error("bad adaptation input");
}

// cnd-hot
double score(double x) {
  adapt(x);
  return x * 2.0;
}

}  // namespace cnd::ml
