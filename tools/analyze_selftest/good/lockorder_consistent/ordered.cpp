// cnd-analyze-path: src/core/ordered.cpp
// Two paths acquire alpha before beta — edges exist, but no cycle.
namespace cnd::core {

void first_path() {
  runtime::MutexLock a(g_alpha_mutex);
  runtime::MutexLock b(g_beta_mutex);
}

void second_path() {
  runtime::MutexLock a(g_alpha_mutex);
  runtime::MutexLock b(g_beta_mutex);
}

}  // namespace cnd::core
