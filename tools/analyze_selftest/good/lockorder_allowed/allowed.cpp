// cnd-analyze-path: src/core/allowed.cpp
// One direction of an ABBA pair is vetted (only reachable before the worker
// threads exist); the trailing allow drops that acquisition's edges.
namespace cnd::core {

void forward() {
  runtime::MutexLock a(g_alpha_mutex);
  runtime::MutexLock b(g_beta_mutex);
}

void startup_only() {
  runtime::MutexLock b(g_beta_mutex);
  runtime::MutexLock a(g_alpha_mutex);  // cnd-analyze: allow(lock-order)
}

}  // namespace cnd::core
