// cnd-analyze-path: src/serve/depth.cpp
// The annotated barrier vouches for its bounded critical section; the
// wait-free caller stays clean.
namespace cnd::serve {

// cnd-block-ok(bounded O(1) depth probe under an uncontended mutex)
unsigned long depth_probe() {
  runtime::MutexLock lk(g_depth_mutex);
  return g_depth;
}

}  // namespace cnd::serve
