// cnd-analyze-path: src/serve/fast.cpp
// Reaches a lock only through the cnd-block-ok barrier in depth.cpp.
namespace cnd::serve {

unsigned long depth_probe();

// cnd-wait-free
bool has_room() { return depth_probe() < 8; }

}  // namespace cnd::serve
