// cnd-analyze-path: src/tensor/pool.cpp
// The annotated barrier owns its allocation; the hot caller stays clean.
#include <vector>

namespace cnd {

// cnd-alloc-ok(slot pool: grows on first use, then reuses storage)
double* slot(std::vector<double>& v, unsigned long n) {
  v.resize(n);
  return v.data();
}

}  // namespace cnd
