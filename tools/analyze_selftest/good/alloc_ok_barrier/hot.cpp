// cnd-analyze-path: src/tensor/hot.cpp
// Reaches the allocation only through the cnd-alloc-ok barrier in pool.cpp.
#include <vector>

namespace cnd {

double* slot(std::vector<double>& v, unsigned long n);

// cnd-hot
double first(std::vector<double>& v) { return *slot(v, 8); }

}  // namespace cnd
