// cnd-analyze-path: src/core/scoped.cpp
// Sibling scopes: each lock dies with its block, so the opposite textual
// orders never overlap and no edge forms.
namespace cnd::core {

void siblings() {
  {
    runtime::MutexLock a(g_alpha_mutex);
  }
  {
    runtime::MutexLock b(g_beta_mutex);
  }
}

void reverse_siblings() {
  {
    runtime::MutexLock b(g_beta_mutex);
  }
  {
    runtime::MutexLock a(g_alpha_mutex);
  }
}

}  // namespace cnd::core
