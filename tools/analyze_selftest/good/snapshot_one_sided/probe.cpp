// cnd-analyze-path: src/ml/probe.cpp
// A class with only a snapshot() dump and no restore() is not a
// snapshot/restore pair — the completeness rule does not apply.
namespace cnd::ml {

class Probe {
 public:
  void snapshot(std::ostream& os) const { write_f64(os, level_); }

 private:
  double level_ = 0.0;
  double scratch_ = 0.0;
};

}  // namespace cnd::ml
