// cnd-analyze-path: src/core/inversion.cpp
// cnd-analyze-expect: lock-order
// Classic ABBA: two threads running forward() and backward() can deadlock.
namespace cnd::core {

void forward() {
  runtime::MutexLock a(g_alpha_mutex);
  runtime::MutexLock b(g_beta_mutex);
}

void backward() {
  runtime::MutexLock b(g_beta_mutex);
  runtime::MutexLock a(g_alpha_mutex);
}

}  // namespace cnd::core
