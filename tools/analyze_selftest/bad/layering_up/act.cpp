// cnd-analyze-path: src/nn/act.cpp
namespace cnd::nn {

double relu(double x) { return x > 0 ? x : 0; }

}  // namespace cnd::nn
