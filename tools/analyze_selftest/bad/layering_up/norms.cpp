// cnd-analyze-path: src/tensor/norms.cpp
// cnd-analyze-expect: layering-transitive
// tensor may not reach up into nn, even through a forward declaration that
// the include-hygiene lint cannot see.
namespace cnd {

double squash(double x) { return nn::relu(x); }

}  // namespace cnd
