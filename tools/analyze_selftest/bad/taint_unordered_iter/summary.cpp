// cnd-analyze-path: src/eval/summary.cpp
// cnd-analyze-expect: determinism-taint
// Iterating an unordered container in an output root: the row order is
// unspecified, so the written bytes are not stable.
namespace cnd::eval {

void write_summary(const Rows& rows) {
  std::unordered_map<int, double> agg;
  for (const Row& r : rows) agg[r.id] += r.value;
  for (const auto& [id, total] : agg) emit_row(id, total);
}

}  // namespace cnd::eval
