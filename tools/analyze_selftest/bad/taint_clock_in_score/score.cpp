// cnd-analyze-path: src/ml/score.cpp
// cnd-analyze-expect: determinism-taint
// Add-a-clock-call regression: the hot scoring root reaches a wall-clock
// read, so repeated runs produce different bytes.
namespace cnd::ml {

double now_ms() {
  return static_cast<double>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

// cnd-hot
double score(double x) { return x + now_ms(); }

}  // namespace cnd::ml
