// cnd-analyze-path: src/eval/report.cpp
// cnd-analyze-expect: determinism-taint
// Hashing a pointer folds ASLR into the output — a CSV writer is an
// output root, so this taints the report bytes.
namespace cnd::eval {

void write_report(const double* row) {
  const unsigned long key = std::hash<const double*>{}(row);
  emit_cell(key);
}

}  // namespace cnd::eval
