// cnd-analyze-path: src/tensor/pool.cpp
// cnd-analyze-expect: hot-path-alloc
// Identical to good/alloc_ok_barrier with the annotation deleted: the
// resize is now charged to the hot root through slot().
#include <vector>

namespace cnd {

double* slot(std::vector<double>& v, unsigned long n) {
  v.resize(n);
  return v.data();
}

// cnd-hot
double first(std::vector<double>& v) { return *slot(v, 8); }

}  // namespace cnd
