// cnd-analyze-path: src/ml/spawn.cpp
// cnd-analyze-expect: hot-path-alloc
namespace cnd::ml {

// cnd-hot
double* scratch(unsigned long n) {
  return new double[n];
}

}  // namespace cnd::ml
