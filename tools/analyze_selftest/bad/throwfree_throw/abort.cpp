// cnd-analyze-path: src/ml/abort.cpp
// cnd-analyze-expect: throw-free-hot
// A hot root that throws directly: a shard worker would abort the batch.
namespace cnd::ml {

// cnd-hot
double score(double x) {
  if (x < 0.0) throw std::runtime_error("negative input");
  return x * 2.0;
}

}  // namespace cnd::ml
