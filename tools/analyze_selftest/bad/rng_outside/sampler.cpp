// cnd-analyze-path: src/ml/sampler.cpp
// cnd-analyze-expect: rng-confinement
// std distributions are not portable across standard libraries; draws must
// go through cnd::Rng (src/tensor/rng.cpp).
#include <random>

namespace cnd::ml {

double jitter(std::mt19937_64& g) {
  std::normal_distribution<double> d(0.0, 1.0);
  return d(g);
}

}  // namespace cnd::ml
