// cnd-analyze-path: src/serve/batch.cpp
// cnd-analyze-expect: wait-free
#include <vector>

namespace cnd::serve {

// cnd-wait-free
void widen(std::vector<double>& v, double x) {
  v.push_back(x);
}

}  // namespace cnd::serve
