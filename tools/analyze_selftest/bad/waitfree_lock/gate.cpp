// cnd-analyze-path: src/serve/gate.cpp
// cnd-analyze-expect: wait-free
namespace cnd::serve {

struct Gate {
  runtime::AnnotatedMutex mu_;
  bool open_ = false;

  // cnd-wait-free
  bool peek() {
    runtime::MutexLock lk(mu_);
    return open_;
  }
};

}  // namespace cnd::serve
