// cnd-analyze-path: src/ml/guard.cpp
// cnd-analyze-expect: throw-free-hot
// require() throws std::invalid_argument — unvouched, it can abort a
// batch mid-stream from the hot root.
namespace cnd::ml {

// cnd-hot
double score(double x) {
  require(x >= 0.0, "score: negative input");
  return x * 2.0;
}

}  // namespace cnd::ml
