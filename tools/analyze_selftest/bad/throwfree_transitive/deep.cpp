// cnd-analyze-path: src/ml/deep.cpp
// cnd-analyze-expect: throw-free-hot
// The throw is two calls below the hot root; reachability still finds it.
namespace cnd::ml {

double inner(double x) {
  if (x != x) throw std::runtime_error("nan input");
  return x;
}

double middle(double x) { return inner(x) + 1.0; }

// cnd-hot
double score(double x) { return middle(x) * 2.0; }

}  // namespace cnd::ml
