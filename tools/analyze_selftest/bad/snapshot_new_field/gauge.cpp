// cnd-analyze-path: src/ml/gauge.cpp
// cnd-analyze-expect: snapshot-completeness
// Add-a-field regression: bias_ was added after the snapshot format was
// written and appears in neither body.
namespace cnd::ml {

class Gauge {
 public:
  void snapshot(std::ostream& os) const { write_f64(os, level_); }
  void restore(std::istream& is) { level_ = read_f64(is); }

 private:
  double level_ = 0.0;
  double bias_ = 0.0;
};

}  // namespace cnd::ml
