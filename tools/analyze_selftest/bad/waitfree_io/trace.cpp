// cnd-analyze-path: src/serve/trace.cpp
// cnd-analyze-expect: wait-free
#include <cstdio>

namespace cnd::serve {

// cnd-wait-free
void trace_admit(int slot) {
  std::fprintf(stderr, "admit %d\n", slot);
}

}  // namespace cnd::serve
