// cnd-analyze-path: src/core/reentrant.cpp
// cnd-analyze-expect: lock-order
namespace cnd::core {

struct Counter {
  runtime::AnnotatedMutex mu_;
  int n_ = 0;

  void bump() {
    runtime::MutexLock lk(mu_);
    runtime::MutexLock again(mu_);  // re-entry deadlocks a non-recursive mutex
    ++n_;
  }
};

}  // namespace cnd::core
