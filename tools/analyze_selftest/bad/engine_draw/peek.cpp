// cnd-analyze-path: src/ml/peek.cpp
// cnd-analyze-expect: rng-confinement
// Drawing from the raw engine bypasses the portable stream algorithms.
namespace cnd::ml {

template <class R>
unsigned long long peek(R& rng) { return rng.engine()(); }

}  // namespace cnd::ml
