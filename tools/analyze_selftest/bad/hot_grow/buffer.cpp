// cnd-analyze-path: src/tensor/buffer.cpp
#include <vector>

namespace cnd {

void push_sample(std::vector<double>& v, double x) {
  v.push_back(x);
}

}  // namespace cnd
