// cnd-analyze-path: src/ml/stream.cpp
// cnd-analyze-expect: hot-path-alloc
// The growth happens two hops away in buffer.cpp; the hot root must still
// be charged for it.
#include <vector>

namespace cnd::ml {

// cnd-hot
void observe(std::vector<double>& v, double x) { push_sample(v, x); }

}  // namespace cnd::ml
