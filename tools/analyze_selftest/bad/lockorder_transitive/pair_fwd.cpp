// cnd-analyze-path: src/core/pair_fwd.cpp
// cnd-analyze-expect: lock-order
// The inversion only exists through the helpers: each caller holds one
// mutex while a qualified call acquires the other.
namespace cnd::core {

namespace sync {
void with_beta();
void with_alpha();
}  // namespace sync

void forward() {
  runtime::MutexLock a(g_alpha_mutex);
  sync::with_beta();
}

void backward() {
  runtime::MutexLock b(g_beta_mutex);
  sync::with_alpha();
}

}  // namespace cnd::core
