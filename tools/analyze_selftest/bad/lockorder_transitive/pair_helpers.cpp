// cnd-analyze-path: src/core/pair_helpers.cpp
namespace cnd::core::sync {

void with_beta() {
  runtime::MutexLock b(g_beta_mutex);
}

void with_alpha() {
  runtime::MutexLock a(g_alpha_mutex);
}

}  // namespace cnd::core::sync
