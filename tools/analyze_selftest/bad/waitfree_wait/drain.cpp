// cnd-analyze-path: src/serve/drain.cpp
// cnd-analyze-expect: wait-free
// The lock itself is waived at its site, but the cv wait parks the caller —
// that still violates the wait-free contract.
namespace cnd::serve {

struct Queue {
  runtime::AnnotatedMutex mu_;
  runtime::CondVar ready_;
  int n_ = 0;

  // cnd-wait-free
  int take() {
    // cnd-block-ok(bounded pop critical section)
    runtime::MutexLock lk(mu_);
    while (n_ == 0) ready_.wait(lk);
    return n_--;
  }
};

}  // namespace cnd::serve
