// cnd-analyze-path: src/ml/stats.cpp
// cnd-analyze-expect: snapshot-completeness
// Delete-a-member regression: scale_ is written by snapshot() but the
// restore() side was never updated — a restored replica diverges.
namespace cnd::ml {

class Stats {
 public:
  void snapshot(std::ostream& os) const {
    write_f64(os, center_);
    write_f64(os, scale_);
  }
  void restore(std::istream& is) {
    center_ = read_f64(is);
  }

 private:
  double center_ = 0.0;
  double scale_ = 1.0;
};

}  // namespace cnd::ml
