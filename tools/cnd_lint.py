#!/usr/bin/env python3
"""cnd_lint — repo-specific static checks for the CND-IDS determinism and
layering contracts (docs/STATIC_ANALYSIS.md).

The parallel runtime promises bit-identical results at any thread count
(docs/PARALLELISM.md) and the observability layer promises that telemetry
never perturbs results (docs/OBSERVABILITY.md). Those contracts are easy to
break with one stray `std::rand()`, clock read, or unordered-container
iteration feeding an output file. This tool makes the conventions
machine-checked:

  no-raw-rng        All randomness flows through cnd::Rng (src/tensor/rng.*).
                    std::rand/srand/std::random_device/raw std::mt19937 are
                    banned everywhere else; random_device and time-based
                    seeding break run-to-run reproducibility.
  no-std-distribution
                    std::*_distribution adapters are banned outside
                    src/tensor/rng.{hpp,cpp}: their algorithms are
                    implementation-defined, so the same seed draws different
                    values on different standard libraries. Draw through the
                    portable algorithms in cnd::Rng instead.
  no-clock          Clock reads live in src/obs only. Timing anywhere else
                    either belongs in the observability layer or is a
                    measurement surface that needs an explicit allow.
  no-unordered-iter Iterating std::unordered_{map,set} has unspecified order;
                    anything that feeds CSV/JSONL output or score ordering
                    must iterate a deterministically ordered container.
  no-pointer-hash   std::hash over a pointer type folds ASLR into the value,
                    so two identical runs disagree. First-line textual defense
                    mirroring cnd_analyze's determinism-taint source; hash a
                    stable id instead.
  no-float          float arithmetic in the bit-exactness layers (src/tensor,
                    src/linalg, src/nn, src/runtime) — the determinism
                    contract is stated for double accumulation; a float
                    reduction reorders rounding differently per platform.
  no-banned-fn      sprintf/strcpy/atoi-family: unbounded or silently
                    truncating C calls with safer repo idioms.
  no-naked-mutex    Raw std::mutex / std::lock_guard / std::condition_variable
                    outside runtime/annotated_mutex.hpp. All locking goes
                    through the Clang-thread-safety-annotated AnnotatedMutex /
                    MutexLock / CondVar wrappers so -Wthread-safety (and
                    cnd_analyze's lock-order and wait-free rules) can see it;
                    a naked primitive is invisible to every one of those
                    checkers.
  include-hygiene   No "../" includes, no <bits/...>, first-party headers
                    included with quotes ("layer/header.hpp"), not <>.
  layering          src/<layer> files include only from layers at or below
                    them in the dependency order declared in src/CMakeLists.
  registry-coverage tools/check_determinism.sh must name every detector
                    registered in core::make_detector, and every kernel case
                    bench_micro_substrate --dump-kernels emits, so the
                    end-to-end determinism check cannot silently skip a
                    detector or a blocked kernel.

Escape hatch: append `// cnd-lint: allow(<rule>[, <rule>...])` to the
offending line (or the line directly above it) with a short justification.

Usage:
  cnd_lint.py --root <repo-root>     lint the tree (exit 1 on findings)
  cnd_lint.py --self-test            run the known-good/known-bad corpus
  cnd_lint.py --root . --list-rules  print the rule table
  cnd_lint.py ... --sarif <file>     also write findings as SARIF 2.1.0
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass

# --- rule table ---------------------------------------------------------------

RULES = {
    "no-raw-rng": "raw RNG outside the cnd::Rng seed plumbing (src/tensor/rng.*)",
    "no-std-distribution": "std distribution outside src/tensor/rng.* (non-portable stream)",
    "no-clock": "clock read outside src/obs",
    "no-unordered-iter": "iteration over an unordered container (unspecified order)",
    "no-pointer-hash": "std::hash over a pointer type (ASLR leaks into the value)",
    "no-float": "float arithmetic in a bit-exactness layer (use double)",
    "no-banned-fn": "banned C function (unbounded/truncating)",
    "no-naked-mutex": "raw std lock primitive outside the annotated wrappers",
    "include-hygiene": "non-canonical #include form",
    "layering": "include crosses the layer dependency order upward",
    "registry-coverage": "check_determinism.sh misses a registered detector",
}

# Directories scanned in tree mode, relative to the repo root.
SCAN_DIRS = ("src", "bench", "tests", "tools", "examples")
SOURCE_EXTS = (".cpp", ".hpp", ".h", ".cc")

# Layer dependency order, mirroring the target graph in src/CMakeLists.txt.
# A file in src/<layer>/ may include first-party headers only from layers in
# its set (plus its own layer).
LAYER_DEPS = {
    "obs": set(),
    "runtime": {"obs"},
    "tensor": {"runtime", "obs"},
    "linalg": {"tensor", "runtime", "obs"},
    "nn": {"linalg", "tensor", "runtime", "obs"},
    "ml": {"nn", "linalg", "tensor", "runtime", "obs"},
    "data": {"ml", "nn", "linalg", "tensor", "runtime", "obs"},
    "scenario": {"data", "ml", "nn", "linalg", "tensor", "runtime", "obs"},
    "eval": {"tensor", "runtime", "obs"},
    "core": {"eval", "data", "ml", "nn", "linalg", "tensor", "runtime", "obs"},
    "io": {"core", "eval", "data", "ml", "nn", "linalg", "tensor", "runtime", "obs"},
    "baselines": {"core", "eval", "data", "ml", "nn", "linalg", "tensor",
                  "runtime", "obs"},
    "serve": {"io", "core", "eval", "data", "ml", "nn", "linalg", "tensor",
              "runtime", "obs"},
}
# cnd_factory spans core+baselines by design (see src/CMakeLists.txt); its
# sources live in src/core but may reach into baselines.
LAYERING_EXTRA = {
    "src/core/detector_factory.cpp": {"baselines"},
    "src/core/detector_factory.hpp": {"baselines"},
}

# Concurrency-contract headers that sit BELOW the layer DAG: dependency-free
# (standard library only), includable from any layer. src/obs — the bottom
# layer — guards its registries with the annotated wrappers, so these two
# cannot live inside the ordinary layer order. Keep this list to headers with
# zero first-party includes beyond each other.
LAYER_NEUTRAL_INCLUDES = {
    "tensor/thread_annotations.hpp",
    "runtime/annotated_mutex.hpp",
}

# Files where float arithmetic violates the bit-exactness contract.
FLOAT_BANNED_PREFIXES = ("src/tensor/", "src/linalg/", "src/nn/", "src/runtime/")

# The documented seed plumbing: the only place raw engines may appear.
RAW_RNG_ALLOWED = ("src/tensor/rng.hpp", "src/tensor/rng.cpp")

# The only directory that may read clocks without an explicit allow.
CLOCK_ALLOWED_PREFIXES = ("src/obs/",)

# The annotated wrappers' own storage: the one place raw lock primitives live.
NAKED_MUTEX_ALLOWED = ("src/runtime/annotated_mutex.hpp",)

RE_RAW_RNG = re.compile(
    r"std\s*::\s*rand\b|\bsrand\s*\(|\brandom_device\b|std\s*::\s*(mt19937|minstd_rand|ranlux)"
)
RE_STD_DISTRIBUTION = re.compile(r"\b\w+_distribution\b")
RE_CLOCK = re.compile(
    # `\w*clock` also catches type aliases like `using clock = steady_clock`.
    r"\b\w*clock\s*::\s*now\b"
    r"|\bclock_gettime\s*\(|\bgettimeofday\s*\(|\btime\s*\(\s*(NULL|nullptr|0)?\s*\)"
    r"|\bclock\s*\(\s*\)"
)
RE_UNORDERED_DECL = re.compile(
    r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s*[&*]*\s*(\w+)"
)
# Range-for only: the colon must not be part of a `::`, and a classic
# three-clause for contains `;` so the lazy prefix can never reach its colon.
RE_RANGE_FOR = re.compile(r"\bfor\s*\([^;()]*?(?<!:):(?!:)\s*([^)]+)\)")
RE_FLOAT = re.compile(r"\bfloat\b")
# `hash<...*...>`: std::hash specialized over any pointer type, including
# pointer-keyed unordered containers spelled with an explicit hasher.
RE_POINTER_HASH = re.compile(r"\bhash\s*<[^>;{}()]*\*")
RE_BANNED_FN = re.compile(
    r"\b(sprintf|vsprintf|strcpy|strcat|gets|tmpnam|atoi|atol|atof|asctime|ctime)\s*\("
)
RE_NAKED_MUTEX = re.compile(
    r"std\s*::\s*(timed_mutex|recursive_mutex|shared_mutex|shared_timed_mutex|"
    r"mutex|lock_guard|unique_lock|shared_lock|scoped_lock|"
    r"condition_variable_any|condition_variable)\b"
)
RE_INCLUDE = re.compile(r'^\s*#\s*include\s+(<[^>]+>|"[^"]+")')
RE_ALLOW = re.compile(r"cnd-lint:\s*allow\(([^)]*)\)")
RE_EXPECT = re.compile(r"cnd-lint-expect:\s*([\w,\s-]+)")
RE_VPATH = re.compile(r"cnd-lint-path:\s*(\S+)")
RE_FACTORY_ADD = re.compile(r'\badd\("([^"]+)"')
# Kernel case names in bench_micro_substrate's --dump-kernels writer: the
# dump_matrix("name", ...) calls plus raw fprintf rows ("name,%zu,...").
RE_KERNEL_DUMP = re.compile(r'dump_matrix\("([^"]+)"|fprintf\(f, "([a-z_]+),%zu')


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(lines: list[str]) -> list[str]:
    """Return lines with comments and string/char literals blanked out, so
    rule regexes never fire on prose or literal text. Annotations are read
    from the raw lines before this runs."""
    out = []
    in_block = False
    for raw in lines:
        # Preprocessor lines keep their quoted text: `#include "x.hpp"` must
        # survive for the include rules.
        preproc = not in_block and raw.lstrip().startswith("#")
        buf = []
        i = 0
        n = len(raw)
        while i < n:
            c = raw[i]
            nxt = raw[i + 1] if i + 1 < n else ""
            if in_block:
                if c == "*" and nxt == "/":
                    in_block = False
                    i += 2
                else:
                    i += 1
                continue
            if c == "/" and nxt == "/":
                break  # line comment: drop the rest
            if c == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if c in ('"', "'"):
                quote = c
                start = i
                i += 1
                while i < n:
                    if raw[i] == "\\":
                        i += 2
                        continue
                    if raw[i] == quote:
                        i += 1
                        break
                    i += 1
                if preproc:
                    buf.append(raw[start:i])  # keep include targets intact
                else:
                    buf.append(quote + quote)  # empty literal placeholder
                continue
            buf.append(c)
            i += 1
        out.append("".join(buf))
    return out


def allows_for_line(raw_lines: list[str], idx: int) -> set[str]:
    """Rules allowed for raw_lines[idx] via same-line or previous-line
    `// cnd-lint: allow(...)` annotations."""
    allowed: set[str] = set()
    for look in (idx, idx - 1):
        if 0 <= look < len(raw_lines):
            m = RE_ALLOW.search(raw_lines[look])
            if m:
                allowed.update(r.strip() for r in m.group(1).split(","))
    return allowed


def layer_of(vpath: str) -> str | None:
    parts = vpath.split("/")
    if len(parts) >= 3 and parts[0] == "src" and parts[1] in LAYER_DEPS:
        return parts[1]
    return None


def lint_file(vpath: str, text: str) -> list[Finding]:
    """Lint one file's contents as if it lived at repo-relative `vpath`."""
    raw_lines = text.splitlines()
    code = strip_code(raw_lines)
    findings: list[Finding] = []

    def report(idx: int, rule: str, message: str) -> None:
        if rule not in allows_for_line(raw_lines, idx):
            findings.append(Finding(vpath, idx + 1, rule, message))

    # Per-file context for the unordered-iteration rule.
    unordered_names: set[str] = set()
    for line in code:
        for m in RE_UNORDERED_DECL.finditer(line):
            unordered_names.add(m.group(1))

    layer = layer_of(vpath)
    allowed_layers = None
    if layer is not None:
        allowed_layers = {layer} | LAYER_DEPS[layer] | LAYERING_EXTRA.get(vpath, set())

    raw_rng_exempt = vpath in RAW_RNG_ALLOWED
    clock_exempt = vpath.startswith(CLOCK_ALLOWED_PREFIXES)
    float_banned = vpath.startswith(FLOAT_BANNED_PREFIXES)
    naked_mutex_exempt = vpath in NAKED_MUTEX_ALLOWED

    for idx, line in enumerate(code):
        if not raw_rng_exempt and RE_RAW_RNG.search(line):
            report(idx, "no-raw-rng",
                   "raw RNG primitive; derive a stream from cnd::Rng instead")

        if not raw_rng_exempt and RE_STD_DISTRIBUTION.search(line):
            report(idx, "no-std-distribution",
                   "std distribution adapters draw implementation-defined "
                   "streams; use the portable algorithms in cnd::Rng "
                   "(src/tensor/rng.cpp)")

        if not clock_exempt and RE_CLOCK.search(line):
            report(idx, "no-clock",
                   "clock read outside src/obs; route timing through the "
                   "observability layer")

        if RE_BANNED_FN.search(line):
            fn = RE_BANNED_FN.search(line).group(1)
            report(idx, "no-banned-fn", f"'{fn}' is banned; use the bounded/"
                   "checked alternative (snprintf, strtol/stod, std::string)")

        if not naked_mutex_exempt:
            mm = RE_NAKED_MUTEX.search(line)
            if mm:
                report(idx, "no-naked-mutex",
                       f"raw std::{mm.group(1)}; lock through runtime::"
                       "AnnotatedMutex / MutexLock / CondVar "
                       "(runtime/annotated_mutex.hpp) so the thread-safety "
                       "and cnd_analyze concurrency checks can see it")

        if float_banned and RE_FLOAT.search(line):
            report(idx, "no-float",
                   "float in a bit-exactness layer; the determinism contract "
                   "is stated for double accumulation")

        if RE_POINTER_HASH.search(line):
            report(idx, "no-pointer-hash",
                   "std::hash over a pointer type folds ASLR into the value; "
                   "hash a stable id (index, name, flow key) instead")

        m = RE_RANGE_FOR.search(line)
        if m:
            seq = m.group(1).strip()
            seq_id = re.sub(r"[&*\s]|const ", "", seq)
            if "unordered_" in seq or seq_id in unordered_names:
                report(idx, "no-unordered-iter",
                       f"iteration over unordered container '{seq}' has "
                       "unspecified order; use a sorted/ordered container or "
                       "sort before emitting")

        inc = RE_INCLUDE.match(line)
        if inc:
            tok = inc.group(1)
            target = tok[1:-1]
            if "../" in target:
                report(idx, "include-hygiene",
                       "parent-relative include; include repo headers by "
                       "their src-rooted path")
            if target.startswith("bits/"):
                report(idx, "include-hygiene",
                       "libstdc++ internal header <bits/...>")
            first_party = layer_of("src/" + target) is not None
            if tok.startswith("<") and first_party:
                report(idx, "include-hygiene",
                       f"first-party header <{target}> must use quotes")
            if (tok.startswith('"') and allowed_layers is not None
                    and target not in LAYER_NEUTRAL_INCLUDES):
                inc_layer = layer_of("src/" + target)
                if inc_layer is not None and inc_layer not in allowed_layers:
                    report(idx, "layering",
                           f"src/{layer} must not include from src/{inc_layer} "
                           "(layer order: see src/CMakeLists.txt and "
                           "docs/STATIC_ANALYSIS.md)")

    return findings


def check_registry_coverage(root: str) -> list[Finding]:
    """Every detector name registered in core::make_detector must appear in
    tools/check_determinism.sh, so the end-to-end determinism check can
    exercise the full registry."""
    factory = os.path.join(root, "src/core/detector_factory.cpp")
    script = os.path.join(root, "tools/check_determinism.sh")
    findings: list[Finding] = []
    try:
        with open(factory, encoding="utf-8") as f:
            names = RE_FACTORY_ADD.findall(f.read())
    except OSError as e:
        return [Finding("src/core/detector_factory.cpp", 1, "registry-coverage",
                        f"cannot read detector registry: {e}")]
    try:
        with open(script, encoding="utf-8") as f:
            script_text = f.read()
    except OSError as e:
        return [Finding("tools/check_determinism.sh", 1, "registry-coverage",
                        f"cannot read determinism script: {e}")]
    if not names:
        findings.append(Finding("src/core/detector_factory.cpp", 1,
                                "registry-coverage",
                                "no registered detectors found (parser drift?)"))
    for name in names:
        if name not in script_text:
            findings.append(Finding(
                "tools/check_determinism.sh", 1, "registry-coverage",
                f"registered detector '{name}' is not covered by "
                "check_determinism.sh"))

    # The kernel sweep side of the same contract: every --dump-kernels case
    # (and the bench binary itself) must be named by the determinism script.
    bench = os.path.join(root, "bench/bench_micro_substrate.cpp")
    try:
        with open(bench, encoding="utf-8") as f:
            matches = RE_KERNEL_DUMP.findall(f.read())
    except OSError as e:
        return findings + [Finding("bench/bench_micro_substrate.cpp", 1,
                                   "registry-coverage",
                                   f"cannot read kernel dump bench: {e}")]
    cases = list(dict.fromkeys(a or b for a, b in matches))
    if not cases:
        findings.append(Finding("bench/bench_micro_substrate.cpp", 1,
                                "registry-coverage",
                                "no --dump-kernels cases found (parser drift?)"))
    if "bench_micro_substrate" not in script_text:
        findings.append(Finding(
            "tools/check_determinism.sh", 1, "registry-coverage",
            "check_determinism.sh never runs bench_micro_substrate's "
            "kernel sweep"))
    for case in cases:
        if f'"{case}"' not in script_text:
            findings.append(Finding(
                "tools/check_determinism.sh", 1, "registry-coverage",
                f"kernel dump case '{case}' is not covered by "
                "check_determinism.sh"))
    return findings


def iter_tree_files(root: str):
    # Both fixture corpora exist to violate rules on purpose.
    skip_dirs = (os.path.join("tools", "lint_selftest"),
                 os.path.join("tools", "analyze_selftest"))
    for d in SCAN_DIRS:
        base = os.path.join(root, d)
        for dirpath, dirnames, filenames in os.walk(base):
            if os.path.relpath(dirpath, root).startswith(skip_dirs):
                dirnames[:] = []
                continue
            for fn in sorted(filenames):
                if fn.endswith(SOURCE_EXTS):
                    full = os.path.join(dirpath, fn)
                    yield os.path.relpath(full, root).replace(os.sep, "/"), full


def lint_tree(root: str) -> list[Finding]:
    findings: list[Finding] = []
    for vpath, full in iter_tree_files(root):
        with open(full, encoding="utf-8") as f:
            findings.extend(lint_file(vpath, f.read()))
    findings.extend(check_registry_coverage(root))
    return findings


def write_sarif(path: str, findings: list[Finding]) -> None:
    """SARIF 2.1.0, same driver shape as cnd_analyze's --sarif so the two
    files merge cleanly (tools/merge_sarif.py) for the CI upload."""
    doc = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "cnd_lint",
                "informationUri": "docs/STATIC_ANALYSIS.md",
                "rules": [{"id": rule, "shortDescription": {"text": desc}}
                          for rule, desc in RULES.items()],
            }},
            "results": [{
                "ruleId": f.rule,
                "level": "error",
                "message": {"text": f.message},
                "locations": [{"physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {"startLine": max(f.line, 1)},
                }}],
            } for f in findings],
        }],
    }
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(doc, fp, indent=2)
        fp.write("\n")


def run_self_test(root: str, sarif_path: str | None = None) -> int:
    """Corpus check: every file under tools/lint_selftest/good lints clean;
    every file under tools/lint_selftest/bad trips exactly the rules named in
    its `// cnd-lint-expect:` header. Files choose the path rules see via
    `// cnd-lint-path:` (defaults to src/core/<filename>). With --sarif the
    corpus findings are written out, giving the SARIF schema check a
    guaranteed-non-empty results array."""
    corpus = os.path.join(root, "tools", "lint_selftest")
    failures = 0
    cases = 0
    all_findings: list[Finding] = []
    for kind in ("good", "bad"):
        base = os.path.join(corpus, kind)
        if not os.path.isdir(base):
            print(f"self-test: missing corpus directory {base}", file=sys.stderr)
            return 1
        for fn in sorted(os.listdir(base)):
            if not fn.endswith(SOURCE_EXTS):
                continue
            cases += 1
            full = os.path.join(base, fn)
            with open(full, encoding="utf-8") as f:
                text = f.read()
            mpath = RE_VPATH.search(text)
            vpath = mpath.group(1) if mpath else f"src/core/{fn}"
            case_findings = lint_file(vpath, text)
            all_findings.extend(case_findings)
            got = {f.rule for f in case_findings}
            if kind == "good":
                if got:
                    print(f"SELF-TEST FAIL {fn}: expected clean, got {sorted(got)}")
                    failures += 1
            else:
                mexp = RE_EXPECT.search(text)
                expected = ({r.strip() for r in mexp.group(1).split(",")}
                            if mexp else set())
                if not expected:
                    print(f"SELF-TEST FAIL {fn}: bad-corpus file lacks "
                          "a cnd-lint-expect header")
                    failures += 1
                elif got != expected:
                    print(f"SELF-TEST FAIL {fn}: expected {sorted(expected)}, "
                          f"got {sorted(got)}")
                    failures += 1
    if sarif_path:
        all_findings.sort(key=lambda f: (f.path, f.line, f.rule))
        write_sarif(sarif_path, all_findings)
    if failures:
        print(f"self-test: {failures} of {cases} corpus cases failed")
        return 1
    print(f"self-test: all {cases} corpus cases behaved as expected")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".", help="repository root to lint")
    ap.add_argument("--self-test", action="store_true",
                    help="run the lint_selftest corpus instead of the tree")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--sarif", metavar="FILE",
                    help="also write findings as SARIF 2.1.0")
    args = ap.parse_args()

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:18} {desc}")
        return 0

    root = os.path.abspath(args.root)
    if args.self_test:
        return run_self_test(root, args.sarif)

    findings = lint_tree(root)
    for f in findings:
        print(f)
    if args.sarif:
        write_sarif(args.sarif, findings)
    if findings:
        print(f"cnd_lint: {len(findings)} finding(s)")
        return 1
    print("cnd_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
