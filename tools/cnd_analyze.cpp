// cnd_analyze — whole-program contract analyzer for the cnd tree.
//
// cnd_lint.py checks what a single line looks like; this tool checks what a
// call chain can *reach*. It tokenizes every first-party translation unit
// named in compile_commands.json (plus headers), extracts function
// definitions with qualified names using a pragmatic C++ heuristic parser
// (no libclang), links call sites to definitions by qualified-suffix name
// matching, and runs three reachability checks on the resulting approximate
// call graph:
//
//   hot-path-alloc       functions annotated `// cnd-hot` must not
//                        transitively reach heap allocation (operator new,
//                        make_unique/make_shared, malloc family, growing
//                        container calls) except through functions annotated
//                        `// cnd-alloc-ok(<reason>)`.
//   layering-transitive  the layer DAG from cnd_lint's include rule,
//                        re-checked edge-by-edge on the call graph, so a
//                        legal include cannot smuggle an illegal call.
//   rng-confinement      std distributions, raw engine types, and raw
//                        engine draws are errors outside src/tensor/rng.cpp
//                        (the portable-stream home, DESIGN.md §4).
//   wait-free            functions annotated `// cnd-wait-free` (the
//                        admission path and the shard-worker score path)
//                        must not transitively reach mutex acquisition,
//                        condition-variable waits, I/O / sleeps, or the
//                        hot-path alloc set, except through functions
//                        annotated `// cnd-block-ok(<reason>)` (which also
//                        waives a single site when placed on/above its line).
//   lock-order           an approximate mutex-acquisition graph is built
//                        from MutexLock/lock_guard construction sites (a
//                        lock held when another is taken adds an edge,
//                        including through followed calls); any cycle —
//                        an ABBA inversion or a re-acquisition of a held
//                        mutex — is a finding.
//   snapshot-completeness
//                        every class that implements both snapshot() and
//                        restore() must reference each of its data members
//                        in *both* bodies, or carry a
//                        `// cnd-snapshot: skip(<reason>)` annotation on the
//                        member — the add-a-field-forget-to-serialize bug.
//   determinism-taint    nothing reachable from an output root (cnd-hot /
//                        cnd-wait-free scoring, snapshot streams, CSV/JSONL
//                        writers) may read a nondeterminism source (wall
//                        clocks, pointer→integer casts, std::hash over a
//                        pointer, thread ids, unordered-container types)
//                        except through `// cnd-det-ok(<reason>)` barriers.
//   throw-free-hot       `// cnd-hot` roots must not reach `throw` or
//                        `require()` — a shard worker must not abort a
//                        batch mid-stream — except through
//                        `// cnd-throw-ok(<reason>)` barriers.
//
// Findings print as `file:line: rule: message`, one per line, to stdout.
// A finding on a specific line can be waived with a trailing
// `// cnd-analyze: allow(rule)` comment, mirroring cnd_lint's escape hatch.
// `--sarif <file>` additionally writes the findings as SARIF 2.1.0 for CI
// upload; `--rule=<name>` restricts the scan to one rule; `--json` appends a
// one-line machine-readable summary. Exit status: 0 clean, 1 findings (or
// self-test mismatch), 2 usage/IO error. See docs/STATIC_ANALYSIS.md for
// the annotation language and the limits of the heuristics.
//
// Usage:
//   cnd_analyze --compile-commands build/compile_commands.json --root .
//   cnd_analyze --selftest tools/analyze_selftest
#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

bool operator<(const Finding& a, const Finding& b) {
  return std::tie(a.file, a.line, a.rule, a.message) <
         std::tie(b.file, b.line, b.rule, b.message);
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class Tk { Ident, Number, Punct, Str };

struct Tok {
  Tk kind;
  std::string text;
  int line = 0;
};

/// Per-file annotation state, harvested from comments while lexing.
struct Annotations {
  std::set<int> hot_lines;                       // `cnd-hot`
  std::set<int> wait_free_lines;                 // `cnd-wait-free`
  std::map<int, std::string> alloc_ok_lines;     // `cnd-alloc-ok(reason)`
  std::map<int, std::string> block_ok_lines;     // `cnd-block-ok(reason)`
  std::map<int, std::string> det_ok_lines;       // `cnd-det-ok(reason)`
  std::map<int, std::string> throw_ok_lines;     // `cnd-throw-ok(reason)`
  std::map<int, std::string> snapshot_skips;     // `cnd-snapshot: skip(r)`
  std::map<int, std::set<std::string>> allows;   // `cnd-analyze: allow(r)`
  std::string fixture_path;                      // `cnd-analyze-path: p`
  std::set<std::string> expects;                 // `cnd-analyze-expect: r`
};

bool ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r'))
    --e;
  return std::string(s.substr(b, e - b));
}

/// True if `marker` occurs in `s` as a standalone word (no identifier or
/// hyphen characters butted up against either side).
bool has_marker(std::string_view s, std::string_view marker,
                std::size_t* at = nullptr) {
  std::size_t pos = 0;
  while ((pos = s.find(marker, pos)) != std::string_view::npos) {
    const bool left_ok =
        pos == 0 || (!ident_char(s[pos - 1]) && s[pos - 1] != '-');
    const std::size_t end = pos + marker.size();
    const bool right_ok =
        end >= s.size() || (!ident_char(s[end]) && s[end] != '-');
    if (left_ok && right_ok) {
      if (at) *at = pos;
      return true;
    }
    pos += marker.size();
  }
  return false;
}

/// Pull `(...)`-enclosed text that immediately follows position `at`.
std::string paren_payload(std::string_view s, std::size_t at) {
  const std::size_t open = s.find('(', at);
  if (open == std::string_view::npos) return {};
  // Balanced scan so free-text reasons may themselves mention `forward()`.
  int depth = 0;
  for (std::size_t k = open; k < s.size(); ++k) {
    if (s[k] == '(') ++depth;
    if (s[k] == ')' && --depth == 0)
      return trim(s.substr(open + 1, k - open - 1));
  }
  return trim(s.substr(open + 1));
}

void scan_comment(std::string_view text, int line, Annotations& ann) {
  std::size_t at = 0;
  if (has_marker(text, "cnd-hot")) ann.hot_lines.insert(line);
  if (has_marker(text, "cnd-wait-free")) ann.wait_free_lines.insert(line);
  if (has_marker(text, "cnd-alloc-ok", &at))
    ann.alloc_ok_lines[line] = paren_payload(text, at);
  if (has_marker(text, "cnd-block-ok", &at))
    ann.block_ok_lines[line] = paren_payload(text, at);
  if (has_marker(text, "cnd-det-ok", &at))
    ann.det_ok_lines[line] = paren_payload(text, at);
  if (has_marker(text, "cnd-throw-ok", &at))
    ann.throw_ok_lines[line] = paren_payload(text, at);
  if ((at = text.find("cnd-snapshot:")) != std::string_view::npos) {
    const std::size_t skip_at = text.find("skip", at);
    if (skip_at != std::string_view::npos)
      ann.snapshot_skips[line] = paren_payload(text, skip_at);
  }
  if ((at = text.find("cnd-analyze:")) != std::string_view::npos) {
    std::size_t allow_at = text.find("allow", at);
    if (allow_at != std::string_view::npos) {
      std::istringstream rules(paren_payload(text, allow_at));
      std::string rule;
      while (std::getline(rules, rule, ','))
        if (!trim(rule).empty()) ann.allows[line].insert(trim(rule));
    }
  }
  if ((at = text.find("cnd-analyze-path:")) != std::string_view::npos)
    ann.fixture_path = trim(text.substr(at + 17));
  if ((at = text.find("cnd-analyze-expect:")) != std::string_view::npos) {
    const std::string rule = trim(text.substr(at + 19));
    if (!rule.empty()) ann.expects.insert(rule);
  }
}

/// Tokenize one C++ source file. Comments feed the annotation maps and are
/// dropped; string/char literal *contents* are dropped (a bare Str token
/// remains); preprocessor lines are skipped entirely (with continuations).
void lex(const std::string& src, std::vector<Tok>& toks, Annotations& ann) {
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  bool line_start = true;  // only whitespace seen since last newline

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    if (c == '#' && line_start) {  // preprocessor line (+ continuations)
      while (i < n) {
        if (src[i] == '\\' && peek(1) == '\n') {
          i += 2;
          ++line;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    line_start = false;
    if (c == '/' && peek(1) == '/') {
      const std::size_t eol = src.find('\n', i);
      const std::size_t end = eol == std::string::npos ? n : eol;
      scan_comment(std::string_view(src).substr(i + 2, end - i - 2), line, ann);
      i = end;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        ++j;
      }
      scan_comment(std::string_view(src).substr(i + 2, j - i - 2), start_line,
                   ann);
      i = j + 2 > n ? n : j + 2;
      continue;
    }
    if (c == 'R' && peek(1) == '"') {  // raw string literal
      std::size_t d = i + 2;
      while (d < n && src[d] != '(') ++d;
      const std::string close =
          ")" + src.substr(i + 2, d - (i + 2)) + "\"";
      const std::size_t end = src.find(close, d);
      const std::size_t stop = end == std::string::npos ? n : end + close.size();
      for (std::size_t j = i; j < stop; ++j)
        if (src[j] == '\n') ++line;
      toks.push_back({Tk::Str, "", line});
      i = stop;
      continue;
    }
    if (c == '"' || c == '\'') {
      std::size_t j = i + 1;
      while (j < n && src[j] != c) {
        if (src[j] == '\\') ++j;
        if (src[j] == '\n') ++line;  // unterminated; stay sane
        ++j;
      }
      toks.push_back({Tk::Str, "", line});
      i = j + 1 > n ? n : j + 1;
      continue;
    }
    if (ident_char(c) && !(c >= '0' && c <= '9')) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      toks.push_back({Tk::Ident, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    if ((c >= '0' && c <= '9') ||
        (c == '.' && peek(1) >= '0' && peek(1) <= '9')) {
      std::size_t j = i;
      while (j < n && (ident_char(src[j]) || src[j] == '.' || src[j] == '\'' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P'))))
        ++j;
      toks.push_back({Tk::Number, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation. `::` and `->` are kept as single tokens (the parser
    // walks qualified names and member accesses); everything else is one
    // character so bracket/angle counting stays simple.
    if (c == ':' && peek(1) == ':') {
      toks.push_back({Tk::Punct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && peek(1) == '>') {
      toks.push_back({Tk::Punct, "->", line});
      i += 2;
      continue;
    }
    toks.push_back({Tk::Punct, std::string(1, c), line});
    ++i;
  }
}

// ---------------------------------------------------------------------------
// Parsed model
// ---------------------------------------------------------------------------

struct CallSite {
  std::vector<std::string> name;  // as written: {"kernels","matmul_into"}
  bool member = false;            // preceded by `.` or `->`
  bool grow = false;              // terminal is a container grow method
  int line = 0;
};

struct AllocSite {
  std::string what;
  int line = 0;
};

/// A site that can sleep the calling thread without taking a lock: a
/// condition-variable wait, file I/O, or an explicit sleep. Lock
/// acquisitions are carried by ConcEvent::kLock instead.
struct BlockSite {
  std::string what;
  int line = 0;
};

/// A site that can unwind: a `throw` expression or a `require()` precondition
/// check (which throws std::invalid_argument on failure). CND_ASSERT /
/// CND_DCHECK are macros and stay invisible to the token stream — by design:
/// dchecks vanish in Release, and CND_ASSERT marks programmer errors, not
/// data-dependent batch aborts.
struct ThrowSite {
  std::string what;
  int line = 0;
};

/// A read of something the determinism contract forbids in any result:
/// wall clocks, pointer→integer casts, pointer hashing, thread ids,
/// unordered-container iteration order.
struct TaintSite {
  std::string what;
  int line = 0;
};

/// One entry of a function's ordered concurrency-event stream, replayed by
/// the lock-order check to know which mutexes are held at each point.
struct ConcEvent {
  enum Kind {
    kLock,    // scoped-lock construction or manual `.lock()`
    kUnlock,  // manual `.unlock()`
    kClose,   // a `}` closed a block: scoped locks deeper than `depth` die
    kCall     // def.calls[call] happened here
  };
  Kind kind = kLock;
  std::string node;      // kLock/kUnlock: approximate mutex identity
  int line = 0;
  int depth = 0;         // brace depth at the site (kClose: depth after `}`)
  std::size_t call = 0;  // kCall: index into FuncDef::calls
};

struct FuncDef {
  std::vector<std::string> qname;  // {"cnd","nn","Linear","forward_into"}
  std::string display;             // qname joined with "::"
  int file = -1;                   // index into Model::files
  int line = 0;
  bool hot = false;
  bool wait_free = false;          // `// cnd-wait-free` root
  bool alloc_ok = false;
  std::string alloc_reason;
  bool block_ok = false;           // `// cnd-block-ok(reason)` barrier
  std::string block_reason;
  bool det_ok = false;             // `// cnd-det-ok(reason)` barrier
  std::string det_reason;
  bool throw_ok = false;           // `// cnd-throw-ok(reason)` barrier
  std::string throw_reason;
  std::vector<CallSite> calls;
  std::vector<AllocSite> allocs;
  std::vector<BlockSite> blocks;
  std::vector<ThrowSite> throws;
  std::vector<TaintSite> taints;
  std::vector<ConcEvent> events;
  std::set<std::string> idents;    // every identifier in the body
};

/// One data member of a parsed class definition (snapshot-completeness).
struct MemberVar {
  std::string name;
  int line = 0;
};

struct ClassInfo {
  std::vector<std::string> qname;  // {"cnd","core","CndIds"}
  std::string display;             // qname joined with "::"
  int file = -1;
  int line = 0;
  std::vector<MemberVar> members;
};

struct FileInfo {
  std::string vpath;  // repo-relative path used for layer / rule decisions
  Annotations ann;
  std::vector<Tok> toks;
};

struct Model {
  std::vector<FileInfo> files;
  std::vector<FuncDef> defs;
  std::vector<ClassInfo> classes;
  std::multimap<std::string, std::size_t> by_terminal;

  void index() {
    by_terminal.clear();
    for (std::size_t i = 0; i < defs.size(); ++i)
      by_terminal.insert({defs[i].qname.back(), i});
  }

  /// All definitions whose qualified name ends with the call's written
  /// name, component-wise. `A::b` matches `cnd::A::b` but not `cnd::X::b`.
  std::vector<std::size_t> candidates(const CallSite& c) const {
    std::vector<std::size_t> out;
    auto [lo, hi] = by_terminal.equal_range(c.name.back());
    for (auto it = lo; it != hi; ++it) {
      const auto& q = defs[it->second].qname;
      if (q.size() < c.name.size()) continue;
      bool match = true;
      for (std::size_t k = 0; k < c.name.size(); ++k)
        if (q[q.size() - 1 - k] != c.name[c.name.size() - 1 - k]) {
          match = false;
          break;
        }
      if (match) out.push_back(it->second);
    }
    return out;
  }
};

const std::set<std::string>& keywords_not_calls() {
  static const std::set<std::string> kw = {
      "if",       "for",      "while",    "switch",        "return",
      "sizeof",   "alignof",  "alignas",  "catch",         "throw",
      "new",      "delete",   "decltype", "noexcept",      "requires",
      "typeid",   "static_assert",        "co_await",      "co_yield",
      "co_return"};
  return kw;
}

/// Container methods that can grow the backing allocation. A grow call that
/// resolves to a first-party definition (e.g. Matrix::resize) is treated as
/// a call edge instead — the callee is then checked transitively.
const std::set<std::string>& grow_methods() {
  static const std::set<std::string> g = {
      "push_back", "emplace_back", "emplace",       "resize",
      "reserve",   "insert",       "append",        "assign",
      "push_front", "emplace_front"};
  return g;
}

/// Free functions / factory templates that allocate directly.
const std::set<std::string>& alloc_idents() {
  static const std::set<std::string> a = {"make_unique", "make_shared",
                                          "malloc",      "calloc",
                                          "realloc",     "strdup",
                                          "to_string"};
  return a;
}

/// C-level wall-clock reads (determinism-taint sources). `X::now()` reads
/// are matched structurally instead — any qualifier ending in "clock".
const std::set<std::string>& clock_fn_names() {
  static const std::set<std::string> c = {"clock_gettime", "gettimeofday",
                                          "timespec_get", "ftime",
                                          "__rdtsc", "_rdtsc"};
  return c;
}

/// Integer targets that make a `reinterpret_cast` a pointer-to-integer
/// conversion (the only cast form that turns an address into data).
const std::set<std::string>& int_type_names() {
  static const std::set<std::string> t = {
      "uintptr_t", "intptr_t", "size_t",   "ptrdiff_t", "uintmax_t",
      "intmax_t",  "uint64_t", "int64_t",  "uint32_t",  "int32_t",
      "uint16_t",  "int16_t",  "unsigned", "int",       "long",
      "short"};
  return t;
}

/// Containers whose iteration order is unspecified (determinism-taint
/// sources). Any appearance in a det-rooted call tree is flagged — a
/// token-level scan cannot prove the container is never iterated.
const std::set<std::string>& unordered_container_names() {
  static const std::set<std::string> u = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset", "unordered_flat_map", "unordered_flat_set"};
  return u;
}

// ---------------------------------------------------------------------------
// Heuristic parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  Parser(Model& model, int file_idx) : model_(model), file_(file_idx) {}

  void run() {
    const auto& toks = model_.files[static_cast<std::size_t>(file_)].toks;
    n_ = toks.size();
    i_ = 0;
    while (i_ < n_) parse_statement();
  }

 private:
  struct Scope {
    std::vector<std::string> comps;  // may be empty (anonymous)
    bool is_class = false;           // class/struct/union body
    std::size_t class_idx = 0;       // into Model::classes when is_class
  };

  const std::vector<Tok>& toks() const {
    return model_.files[static_cast<std::size_t>(file_)].toks;
  }
  const Annotations& ann() const {
    return model_.files[static_cast<std::size_t>(file_)].ann;
  }
  const Tok& at(std::size_t k) const { return toks()[k]; }
  bool is(std::size_t k, std::string_view t) const {
    return k < n_ && at(k).text == t;
  }

  void skip_balanced(std::string_view open, std::string_view close) {
    // Assumes toks()[i_] == open.
    int depth = 0;
    while (i_ < n_) {
      if (at(i_).text == open) ++depth;
      else if (at(i_).text == close && --depth == 0) {
        ++i_;
        return;
      }
      ++i_;
    }
  }

  /// Collect one statement's header tokens until a top-level `;` (discard)
  /// or `{` (classify). Tracks () and [] depth; template argument lists
  /// after the `template` keyword are skipped outright.
  void parse_statement() {
    std::vector<std::size_t> head;  // indices of header tokens
    int depth = 0;
    while (i_ < n_) {
      const Tok& t = at(i_);
      if (t.text == "}" && depth == 0) {  // scope close
        if (!scopes_.empty()) scopes_.pop_back();
        ++i_;
        if (is(i_, ";")) ++i_;
        return;
      }
      if (t.text == "template" && depth == 0) {
        ++i_;
        if (is(i_, "<")) skip_balanced("<", ">");
        continue;
      }
      if (t.text == ";" && depth == 0) {
        maybe_member(head);  // class-scope declaration → data member?
        ++i_;
        return;  // declaration / expression statement at scope level
      }
      if (t.text == ":" && depth == 0 && head.size() == 1 &&
          (at(head[0]).text == "public" || at(head[0]).text == "private" ||
           at(head[0]).text == "protected")) {
        head.clear();  // access specifier label
        ++i_;
        continue;
      }
      if (t.text == "{" && depth == 0) {
        classify_braced(head);
        return;
      }
      if (t.text == "(" || t.text == "[") ++depth;
      if (t.text == ")" || t.text == "]") --depth;
      head.push_back(i_);
      ++i_;
    }
  }

  void classify_braced(const std::vector<std::size_t>& head) {
    // i_ points at the `{`.
    if (head.empty()) {  // bare block at scope level
      scopes_.push_back({});
      ++i_;
      return;
    }
    if (at(head[0]).text == "namespace") {
      Scope s;
      for (std::size_t k = 1; k < head.size(); ++k)
        if (at(head[k]).kind == Tk::Ident) s.comps.push_back(at(head[k]).text);
      scopes_.push_back(std::move(s));
      ++i_;
      return;
    }
    if (at(head[0]).text == "enum") {  // enum bodies carry no calls
      skip_balanced("{", "}");
      if (is(i_, ";")) ++i_;
      return;
    }
    int depth = 0;
    bool has_eq = false, has_class = false;
    std::size_t class_kw = 0;
    for (std::size_t k = 0; k < head.size(); ++k) {
      const std::string& t = at(head[k]).text;
      if (t == "(" || t == "[") ++depth;
      if (t == ")" || t == "]") --depth;
      // Only a bare assignment `=` marks an initializer statement.
      // `operator=` / `operator==` headers are function definitions, and a
      // multi-char operator (`==`, `<=`, …) lexes as single chars here, so
      // an `=` adjacent to `operator` or another punctuator doesn't count.
      if (depth == 0 && t == "=") {
        static const std::set<std::string> not_assign = {
            "operator", "=", "!", "<", ">", "+", "-", "*", "/", "%",
            "&",        "|", "^"};
        const bool prev_op = k > 0 && not_assign.count(at(head[k - 1]).text) &&
                             at(head[k - 1]).kind != Tk::Ident;
        const bool prev_operator_kw =
            k > 0 && at(head[k - 1]).text == "operator";
        const bool next_eq = k + 1 < head.size() && at(head[k + 1]).text == "=";
        if (!prev_op && !prev_operator_kw && !next_eq) has_eq = true;
      }
      if (depth == 0 && !has_class &&
          (t == "class" || t == "struct" || t == "union")) {
        has_class = true;
        class_kw = k;
      }
    }
    if (has_class && !has_eq) {
      Scope s;
      for (std::size_t k = class_kw + 1; k < head.size(); ++k) {
        const Tok& t = at(head[k]);
        if (t.text == ":" || t.text == "final") break;
        // Thread-safety attribute macros (`class CND_CAPABILITY("mutex") M`)
        // sit between the keyword and the class name; skip them — and any
        // argument list they carry — so they neither name the scope nor
        // truncate the scan at their `(`.
        if (t.kind == Tk::Ident && t.text.rfind("CND_", 0) == 0) {
          if (k + 1 < head.size() && at(head[k + 1]).text == "(") {
            int pd = 0;
            ++k;
            for (; k < head.size(); ++k) {
              if (at(head[k]).text == "(") ++pd;
              if (at(head[k]).text == ")" && --pd == 0) break;
            }
          }
          continue;
        }
        if (t.kind == Tk::Ident && !is(head[k] + 1, "("))
          s.comps.push_back(t.text);
        if (t.text == "::") continue;
        if (t.kind == Tk::Punct && t.text != "::") break;
      }
      if (!s.comps.empty()) {
        ClassInfo ci;
        ci.file = file_;
        ci.line = at(head[0]).line;
        for (const Scope& sc : scopes_)
          for (const std::string& c : sc.comps) ci.qname.push_back(c);
        for (const std::string& c : s.comps) ci.qname.push_back(c);
        for (std::size_t q = 0; q < ci.qname.size(); ++q)
          ci.display += (q ? "::" : "") + ci.qname[q];
        s.is_class = true;
        s.class_idx = model_.classes.size();
        model_.classes.push_back(std::move(ci));
      }
      scopes_.push_back(std::move(s));
      ++i_;
      return;
    }
    if (!has_eq) {
      std::size_t paren = head.size();  // first top-level fn-name paren
      int d = 0;
      for (std::size_t k = 0; k < head.size(); ++k) {
        const std::string& t = at(head[k]).text;
        if (t == "(" && d == 0 && k > 0 && plausible_name_end(head, k)) {
          paren = k;
          break;
        }
        if (t == "(" || t == "[") ++d;
        if (t == ")" || t == "]") --d;
      }
      if (paren < head.size()) {
        parse_function(head, paren);
        return;
      }
    }
    // Initializer, lambda assignment, or something we don't model: swallow
    // the braces, then the rest of the statement. At class scope a
    // brace-initialized data member (`std::atomic<u64> swaps_{0};`) lands
    // here — record it before swallowing the initializer.
    maybe_member(head);
    skip_balanced("{", "}");
    int d2 = 0;
    while (i_ < n_) {
      const std::string& t = at(i_).text;
      if (t == ";" && d2 == 0) {
        ++i_;
        return;
      }
      if (t == "}" && d2 == 0) return;  // enclosing scope closes; don't eat it
      if (t == "{" && d2 == 0) {
        skip_balanced("{", "}");
        continue;
      }
      if (t == "(" || t == "[") ++d2;
      if (t == ")" || t == "]") --d2;
      ++i_;
    }
  }

  /// At class scope, decide whether a `;`- or `{`-terminated statement head
  /// declares a data member, and if so record it on the enclosing
  /// ClassInfo. Heuristic: drop default initializers (`= …`), trailing
  /// thread-safety attribute macros (`CND_GUARDED_BY(mu_)`) and array
  /// bounds; what remains must be `Type name` with no parameter list.
  /// Function declarations, using/typedef/friend/static statements, and
  /// nested type declarations are rejected. Bitfields and function-pointer
  /// members are unmodeled (none exist in the tree).
  void maybe_member(const std::vector<std::size_t>& head) {
    if (scopes_.empty() || !scopes_.back().is_class || head.empty()) return;
    static const std::set<std::string> skip_lead = {
        "using",    "typedef",  "friend",    "static",    "inline",
        "template", "explicit", "virtual",   "operator",  "enum",
        "class",    "struct",   "union",     "public",    "private",
        "protected", "constexpr", "consteval", "constinit", "extern"};
    if (skip_lead.count(at(head[0]).text)) return;
    // Truncate at the first top-level `=` (default member initializer).
    std::vector<std::size_t> h;
    int depth = 0;
    for (std::size_t k : head) {
      const std::string& t = at(k).text;
      if (t == "operator") return;  // any operator form is a function
      if (t == "(" || t == "[") ++depth;
      if (t == ")" || t == "]") --depth;
      if (depth == 0 && t == "=") break;
      h.push_back(k);
    }
    // Strip trailing `CND_*(…)` attribute groups and `[N]` array bounds.
    while (!h.empty()) {
      const std::string& last = at(h.back()).text;
      if (last == ")" || last == "]") {
        const std::string open = last == ")" ? "(" : "[";
        const std::string close = last;
        int d = 0;
        std::size_t j = h.size();
        while (j > 0) {
          --j;
          const std::string& t = at(h[j]).text;
          if (t == close) ++d;
          if (t == open && --d == 0) break;
        }
        if (d != 0 || j == 0) return;
        if (last == ")") {
          const Tok& before = at(h[j - 1]);
          if (before.kind != Tk::Ident || before.text.rfind("CND_", 0) != 0)
            return;  // a real parameter list: function declaration
          h.resize(j - 1);
        } else {
          h.resize(j);
        }
        continue;
      }
      break;
    }
    if (h.size() < 2) return;  // need at least `Type name`
    for (std::size_t k : h)
      if (at(k).text == "(") return;  // `T f() const;` and friends
    const Tok& nm = at(h.back());
    if (nm.kind != Tk::Ident || keywords_not_calls().count(nm.text)) return;
    model_.classes[scopes_.back().class_idx].members.push_back(
        {nm.text, nm.line});
  }

  /// Is the token before head[k] (a top-level `(`) the end of a function
  /// name — an identifier that is not a keyword, or an operator form?
  bool plausible_name_end(const std::vector<std::size_t>& head,
                          std::size_t k) const {
    const Tok& prev = at(head[k - 1]);
    if (prev.kind == Tk::Ident && !keywords_not_calls().count(prev.text) &&
        prev.text != "class" && prev.text != "struct" && prev.text != "union" &&
        prev.text != "void" && prev.text != "bool" && prev.text != "int" &&
        prev.text != "double" && prev.text != "char" && prev.text != "auto" &&
        prev.text != "float" && prev.text != "long" && prev.text != "short" &&
        prev.text != "unsigned" && prev.text != "signed" &&
        prev.text != "const" && prev.text != "constexpr")
      return true;
    // operator+, operator==, operator[], operator() …
    for (std::size_t back = 1; back <= 3 && back < k; ++back)
      if (at(head[k - back]).text == "operator") return true;
    return false;
  }

  void parse_function(const std::vector<std::size_t>& head, std::size_t paren) {
    FuncDef def;
    def.file = file_;
    def.line = at(head[0]).line;

    // Name: walk back from the paren through `ident (:: ident)*`, with
    // `operator…` and `~Dtor` forms.
    std::vector<std::string> name;
    std::size_t k = paren;  // head index just past the name
    bool is_operator = false;
    for (std::size_t back = 1; back <= 3 && back < paren; ++back)
      if (at(head[paren - back]).text == "operator") {
        is_operator = true;
        break;
      }
    if (is_operator) {
      name.push_back("operator()");
    } else {
      std::size_t j = paren;  // index of token after current name component
      while (j >= 1 && at(head[j - 1]).kind == Tk::Ident) {
        std::string comp = at(head[j - 1]).text;
        std::size_t step = 1;
        if (j >= 2 && at(head[j - 2]).text == "~") {
          comp = "~" + comp;
          ++step;
        }
        name.insert(name.begin(), comp);
        j -= step;
        if (j >= 2 && at(head[j - 1]).text == "::" &&
            at(head[j - 2]).kind == Tk::Ident)
          j -= 1;  // consume `::`, loop picks up the qualifier
        else
          break;
      }
      (void)k;
    }
    if (name.empty()) {  // could not name it; treat as opaque braces
      skip_balanced("{", "}");
      return;
    }
    for (const Scope& s : scopes_)
      for (const std::string& c : s.comps) def.qname.push_back(c);
    for (const std::string& c : name) def.qname.push_back(c);
    for (std::size_t q = 0; q < def.qname.size(); ++q)
      def.display += (q ? "::" : "") + def.qname[q];

    // Annotations bind to the header's line span (plus the line above).
    const int h0 = at(head[0]).line;
    const int h1 = at(i_).line;  // the `{`
    for (int ln = h0 - 1; ln <= h1; ++ln) {
      if (ann().hot_lines.count(ln)) def.hot = true;
      if (ann().wait_free_lines.count(ln)) def.wait_free = true;
      auto it = ann().alloc_ok_lines.find(ln);
      if (it != ann().alloc_ok_lines.end()) {
        def.alloc_ok = true;
        def.alloc_reason = it->second;
      }
      auto bo = ann().block_ok_lines.find(ln);
      if (bo != ann().block_ok_lines.end()) {
        def.block_ok = true;
        def.block_reason = bo->second;
      }
      auto det = ann().det_ok_lines.find(ln);
      if (det != ann().det_ok_lines.end()) {
        def.det_ok = true;
        def.det_reason = det->second;
      }
      auto th = ann().throw_ok_lines.find(ln);
      if (th != ann().throw_ok_lines.end()) {
        def.throw_ok = true;
        def.throw_reason = th->second;
      }
    }

    // Body: everything from the matching `)` of the parameter list to the
    // end of the braced body — so constructor init lists are covered, while
    // default-argument expressions inside the parameter list are not.
    scan_body(def);
    model_.defs.push_back(std::move(def));
  }

  void scan_body(FuncDef& def) {
    // i_ points at the `{` that opens the body; ctor-init calls between the
    // parameter list and the `{` were part of the header and are rescanned
    // here via `head` — simpler: scan from the `{` only, then walk the
    // header tail separately? The header tail tokens are already gone, so
    // scan the braced body plus nothing else. Ctor-init member "calls"
    // (`gen_(seed)`) carry no first-party definitions, so skipping them
    // loses nothing that the tests don't cover elsewhere.
    int depth = 0;
    while (i_ < n_) {
      const Tok& t = at(i_);
      if (t.text == "{") ++depth;
      if (t.text == "}") {
        if (--depth == 0) {
          ++i_;
          return;
        }
        // A block closed: scoped locks declared inside it are released. Only
        // functions that actually lock need the replay event.
        if (!def.events.empty())
          def.events.push_back(
              {ConcEvent::kClose, std::string{}, t.line, depth, 0});
      }
      if (t.kind == Tk::Ident) {
        def.idents.insert(t.text);
        record_ident(def, depth);
      }
      ++i_;
    }
  }

  /// Scoped-lock types whose construction acquires the mutex passed as the
  /// first argument. The std names are matched so fixtures (and any future
  /// backsliding) are seen too, even though first-party code goes through
  /// MutexLock.
  static const std::set<std::string>& scoped_lock_types() {
    static const std::set<std::string> s = {"MutexLock", "lock_guard",
                                            "unique_lock", "scoped_lock",
                                            "shared_lock"};
    return s;
  }

  static const std::set<std::string>& cv_wait_names() {
    static const std::set<std::string> s = {"wait", "wait_for", "wait_until"};
    return s;
  }

  /// Calls that sleep or do I/O — hostile to a wait-free contract even when
  /// no lock is involved.
  static const std::set<std::string>& io_call_names() {
    static const std::set<std::string> s = {
        "fopen",  "freopen", "fclose",  "fread",     "fwrite",   "fprintf",
        "vfprintf", "fscanf", "fgets",  "fputs",     "fputc",    "fgetc",
        "fflush", "printf",  "vprintf", "puts",      "getline",  "getchar",
        "system", "popen",   "sleep",   "usleep",    "nanosleep", "sleep_for",
        "sleep_until"};
    return s;
  }

  static const std::set<std::string>& io_stream_types() {
    static const std::set<std::string> s = {"ofstream", "ifstream", "fstream"};
    return s;
  }

  /// Approximate identity of a mutex expression from its trailing identifier
  /// chain (`mu_`, `r.mutex`, `g_config_mutex`). Members (trailing `_` by
  /// style) are qualified with the enclosing class so `RingBuffer::mu_` and
  /// `ThreadPool::mutex_` stay distinct across the whole tree; anything else
  /// is kept verbatim. Instance-level aliasing is deliberately ignored — the
  /// lock-order graph is class-granular.
  static std::string mutex_node(const FuncDef& def,
                                const std::vector<std::string>& chain) {
    const std::string& t = chain.back();
    if (!t.empty() && t.back() == '_' && def.qname.size() >= 2)
      return def.qname[def.qname.size() - 2] + "::" + t;
    return t;
  }

  void record_ident(FuncDef& def, int depth) {
    const Tok& t = at(i_);
    // `MutexLock lk(mu_)` / `std::lock_guard<std::mutex> lk(mu)`: a scoped
    // acquisition of the first constructor argument.
    if (scoped_lock_types().count(t.text)) {
      std::size_t k = i_ + 1;
      if (is(k, "<")) {  // template argument list
        int ad = 0;
        for (; k < n_; ++k) {
          if (at(k).text == "<") ++ad;
          if (at(k).text == ">" && --ad == 0) {
            ++k;
            break;
          }
        }
      }
      if (k < n_ && at(k).kind == Tk::Ident && is(k + 1, "(")) {
        // Trailing ident chain of the first argument only (defer_lock and
        // friends come after a comma).
        std::vector<std::string> chain;
        int pd = 0;
        for (std::size_t p = k + 1; p < n_; ++p) {
          const Tok& a = at(p);
          if (a.text == "(") {
            ++pd;
            continue;
          }
          if (a.text == ")") {
            if (--pd == 0) break;
            continue;
          }
          if (pd == 1 && a.text == ",") break;
          if (a.kind == Tk::Ident)
            chain.push_back(a.text);
          else if (a.text != "::" && a.text != "." && a.text != "->")
            chain.clear();
        }
        if (!chain.empty())
          def.events.push_back({ConcEvent::kLock, mutex_node(def, chain),
                                t.line, depth, 0});
      }
      return;
    }
    // Manual `x.lock()` / `x.unlock()`. Recorded as events, not calls: the
    // wrapper bodies add nothing the event stream doesn't already say.
    if ((t.text == "lock" || t.text == "unlock") && i_ >= 2 &&
        (at(i_ - 1).text == "." || at(i_ - 1).text == "->") &&
        is(i_ + 1, "(") && is(i_ + 2, ")")) {
      std::vector<std::string> chain;
      std::size_t p = i_ - 1;  // the `.` / `->`
      while (p >= 1 && at(p - 1).kind == Tk::Ident) {
        chain.insert(chain.begin(), at(p - 1).text);
        if (p >= 3 && (at(p - 2).text == "." || at(p - 2).text == "->" ||
                       at(p - 2).text == "::"))
          p -= 2;
        else
          break;
      }
      if (!chain.empty())
        def.events.push_back(
            {t.text == "lock" ? ConcEvent::kLock : ConcEvent::kUnlock,
             mutex_node(def, chain), t.line, depth, 0});
      return;
    }
    // `cv.wait(lk)` and friends: the thread parks. Not recorded as a call —
    // descending into the wrapper would double-report the same park.
    if (cv_wait_names().count(t.text) && i_ >= 1 &&
        (at(i_ - 1).text == "." || at(i_ - 1).text == "->") &&
        is(i_ + 1, "(")) {
      def.blocks.push_back(
          {"condition-variable " + t.text + "()", t.line});
      return;
    }
    if (io_call_names().count(t.text) && is(i_ + 1, "(")) {
      def.blocks.push_back({"I/O or sleep call '" + t.text + "()'", t.line});
      return;
    }
    if (io_stream_types().count(t.text)) {
      def.blocks.push_back({"file stream '" + t.text + "'", t.line});
      return;
    }
    // `throw` expressions and `require()` precondition checks unwind —
    // throw-free-hot sites. `require` is recorded as a site, not a call
    // edge: every require() funnels into one definition in
    // src/tensor/assert.hpp, and descending there would collapse every
    // violation onto that single `throw`.
    if (t.text == "throw") {
      def.throws.push_back({"'throw' expression", t.line});
      return;
    }
    if (t.text == "require" && is(i_ + 1, "(") &&
        !(i_ >= 1 && (at(i_ - 1).text == "." || at(i_ - 1).text == "->"))) {
      def.throws.push_back({"'require()' precondition check", t.line});
      return;
    }
    // Determinism-taint sources. A `X::now()` read only taints when X looks
    // like a clock; `Timer::now()`-style wrappers are followed as ordinary
    // calls instead, so the taint is reported inside the wrapper.
    if (t.text == "now" && is(i_ + 1, "(") && i_ >= 2 &&
        at(i_ - 1).text == "::" && at(i_ - 2).kind == Tk::Ident) {
      const std::string& q = at(i_ - 2).text;
      std::string tail = q.size() >= 5 ? q.substr(q.size() - 5) : q;
      for (char& ch : tail) ch = ch >= 'A' && ch <= 'Z' ? char(ch + 32) : ch;
      if (tail == "clock") {
        def.taints.push_back({"wall-clock read '" + q + "::now()'", t.line});
        return;
      }
    }
    if (clock_fn_names().count(t.text) && is(i_ + 1, "(")) {
      def.taints.push_back({"wall-clock read '" + t.text + "()'", t.line});
      return;
    }
    if (t.text == "get_id" && is(i_ + 1, "(") && i_ >= 1 &&
        (at(i_ - 1).text == "::" || at(i_ - 1).text == "." ||
         at(i_ - 1).text == "->")) {
      def.taints.push_back({"thread id 'get_id()'", t.line});
      return;
    }
    if (t.text == "reinterpret_cast" && is(i_ + 1, "<")) {
      // reinterpret_cast to an integer type is only valid from a pointer —
      // the address becomes data. Casts whose target mentions `*` or `&`
      // (pointer/reference targets, e.g. the byte views in src/io) carry no
      // address value into results.
      bool has_int = false, has_ptr = false;
      int ad = 0;
      for (std::size_t p = i_ + 1; p < n_; ++p) {
        const Tok& a = at(p);
        if (a.text == "<") ++ad;
        else if (a.text == ">" && --ad == 0) break;
        else if (a.text == "*" || a.text == "&") has_ptr = true;
        else if (a.kind == Tk::Ident && int_type_names().count(a.text))
          has_int = true;
      }
      if (has_int && !has_ptr)
        def.taints.push_back(
            {"pointer-to-integer 'reinterpret_cast' (addresses vary per run)",
             t.line});
      return;
    }
    if (t.text == "hash" && is(i_ + 1, "<") && i_ >= 1 &&
        at(i_ - 1).text == "::") {
      bool has_ptr = false;
      int ad = 0;
      for (std::size_t p = i_ + 1; p < n_; ++p) {
        const Tok& a = at(p);
        if (a.text == "<") ++ad;
        else if (a.text == ">" && --ad == 0) break;
        else if (a.text == "*") has_ptr = true;
      }
      if (has_ptr)
        def.taints.push_back(
            {"'std::hash' over a pointer type (addresses vary per run)",
             t.line});
      return;
    }
    if (unordered_container_names().count(t.text)) {
      def.taints.push_back(
          {"unordered container '" + t.text +
           "' (iteration order is unspecified)", t.line});
      return;
    }
    if (t.text == "new") {
      if (i_ == 0 || at(i_ - 1).text != "operator")
        def.allocs.push_back({"operator new", t.line});
      return;
    }
    if (alloc_idents().count(t.text) && (is(i_ + 1, "(") || is(i_ + 1, "<"))) {
      def.allocs.push_back({t.text + "()", t.line});
      return;
    }
    if (!is(i_ + 1, "(")) return;
    if (keywords_not_calls().count(t.text)) return;
    CallSite call;
    call.line = t.line;
    call.name.push_back(t.text);
    std::size_t j = i_;
    while (j >= 2 && at(j - 1).text == "::" && at(j - 2).kind == Tk::Ident) {
      call.name.insert(call.name.begin(), at(j - 2).text);
      j -= 2;
    }
    call.member =
        j >= 1 && (at(j - 1).text == "." || at(j - 1).text == "->");
    if (!call.member && j >= 1) {
      // `Type name(args)` is a local declaration, not a call: skip when the
      // (chain-leading) name is directly preceded by another identifier or
      // the closing `>` of a template argument list
      // (`std::vector<std::size_t> assign(x.rows())`). Keyword contexts
      // (`return f(x)`, `else f()`, …) still count as calls.
      static const std::set<std::string> call_ctx = {
          "return", "else",      "do",       "throw",    "case",
          "goto",   "co_return", "co_yield", "co_await", "new",
          "delete", "sizeof"};
      const Tok& before = at(j - 1);
      if ((before.kind == Tk::Ident && !call_ctx.count(before.text)) ||
          before.text == ">")
        return;
    }
    call.grow = grow_methods().count(call.name.back()) > 0;
    def.events.push_back(
        {ConcEvent::kCall, std::string{}, t.line, depth, def.calls.size()});
    def.calls.push_back(std::move(call));
  }

  Model& model_;
  int file_;
  std::size_t n_ = 0;
  std::size_t i_ = 0;
  std::vector<Scope> scopes_;
};

// ---------------------------------------------------------------------------
// Checks
// ---------------------------------------------------------------------------

bool line_allowed(const Model& m, int file, int line, const std::string& rule) {
  const auto& allows = m.files[static_cast<std::size_t>(file)].ann.allows;
  auto it = allows.find(line);
  return it != allows.end() && it->second.count(rule) > 0;
}

const std::string& vpath_of(const Model& m, int file) {
  return m.files[static_cast<std::size_t>(file)].vpath;
}

/// Layer of a repo-relative path, or "" when the file is outside the layer
/// DAG. Mirrors tools/cnd_lint.py (LAYER_DEPS) — keep the two in sync.
std::string layer_of(const std::string& vpath) {
  if (vpath.rfind("src/", 0) != 0) return {};
  const std::size_t slash = vpath.find('/', 4);
  if (slash == std::string::npos) return {};
  static const std::set<std::string> layers = {
      "obs",  "runtime", "tensor", "linalg",    "nn",
      "ml",   "data",    "scenario", "eval",    "core",
      "io",   "baselines", "serve"};
  const std::string layer = vpath.substr(4, slash - 4);
  return layers.count(layer) ? layer : std::string{};
}

const std::map<std::string, std::set<std::string>>& layer_deps() {
  static const std::map<std::string, std::set<std::string>> deps = {
      {"obs", {}},
      {"runtime", {"obs"}},
      {"tensor", {"runtime", "obs"}},
      {"linalg", {"tensor", "runtime", "obs"}},
      {"nn", {"linalg", "tensor", "runtime", "obs"}},
      {"ml", {"nn", "linalg", "tensor", "runtime", "obs"}},
      {"data", {"ml", "nn", "linalg", "tensor", "runtime", "obs"}},
      {"scenario", {"data", "ml", "nn", "linalg", "tensor", "runtime", "obs"}},
      {"eval", {"tensor", "runtime", "obs"}},
      {"core",
       {"eval", "data", "ml", "nn", "linalg", "tensor", "runtime", "obs"}},
      {"io",
       {"core", "eval", "data", "ml", "nn", "linalg", "tensor", "runtime",
        "obs"}},
      {"baselines",
       {"core", "eval", "data", "ml", "nn", "linalg", "tensor", "runtime",
        "obs"}},
      {"serve",
       {"io", "core", "eval", "data", "ml", "nn", "linalg", "tensor",
        "runtime", "obs"}},
  };
  return deps;
}

/// cnd_factory spans core+baselines by design (src/CMakeLists.txt).
bool layering_extra_ok(const std::string& vpath, const std::string& callee) {
  return callee == "baselines" &&
         (vpath == "src/core/detector_factory.cpp" ||
          vpath == "src/core/detector_factory.hpp");
}

void check_hot_paths(const Model& m, std::vector<Finding>& out) {
  const std::string rule = "hot-path-alloc";
  std::set<std::pair<std::string, int>> reported;
  for (std::size_t root = 0; root < m.defs.size(); ++root) {
    if (!m.defs[root].hot) continue;
    std::vector<std::size_t> stack = {root};
    std::set<std::size_t> visited = {root};
    while (!stack.empty()) {
      const std::size_t cur = stack.back();
      stack.pop_back();
      const FuncDef& d = m.defs[cur];
      for (const AllocSite& a : d.allocs) {
        if (line_allowed(m, d.file, a.line, rule)) continue;
        if (!reported.insert({vpath_of(m, d.file), a.line}).second) continue;
        out.push_back({vpath_of(m, d.file), a.line, rule,
                       "'" + d.display + "' (reachable from hot '" +
                           m.defs[root].display + "') allocates: " + a.what});
      }
      for (const CallSite& c : d.calls) {
        const auto cands = m.candidates(c);
        if (c.grow && cands.empty()) {
          if (line_allowed(m, d.file, c.line, rule)) continue;
          if (!reported.insert({vpath_of(m, d.file), c.line}).second) continue;
          std::string name;
          for (std::size_t q = 0; q < c.name.size(); ++q)
            name += (q ? "::" : "") + c.name[q];
          out.push_back({vpath_of(m, d.file), c.line, rule,
                         "'" + d.display + "' (reachable from hot '" +
                             m.defs[root].display +
                             "') calls growing container method '" + name +
                             "()'"});
          continue;
        }
        for (std::size_t cand : cands) {
          if (m.defs[cand].alloc_ok) continue;  // annotated barrier
          if (visited.insert(cand).second) stack.push_back(cand);
        }
      }
    }
  }
}

/// A site-level `// cnd-block-ok(reason)` waiver: on the site's line or the
/// line above. (The same marker on a function header is a descent barrier —
/// see check_wait_free.)
bool site_block_ok(const Model& m, int file, int line) {
  const auto& lines =
      m.files[static_cast<std::size_t>(file)].ann.block_ok_lines;
  return lines.count(line) > 0 || lines.count(line - 1) > 0;
}

/// Everything transitively reachable from a `// cnd-wait-free` root must be
/// free of mutex acquisition, condition-variable waits, I/O / sleeps, and
/// the hot-path alloc set. `// cnd-block-ok(reason)` on a function header
/// vouches for that whole subtree (descent stops); on a site's line it
/// waives just that site. A `// cnd-alloc-ok` function is vouched bounded
/// work off the steady-state path, so the walk stops there exactly as the
/// hot-path walk does — block-ok exists for the cases where only the
/// blocking contract, not the alloc contract, is being vouched.
void check_wait_free(const Model& m, std::vector<Finding>& out) {
  const std::string rule = "wait-free";
  std::set<std::pair<std::string, int>> reported;
  for (std::size_t root = 0; root < m.defs.size(); ++root) {
    if (!m.defs[root].wait_free) continue;
    std::vector<std::size_t> stack = {root};
    std::set<std::size_t> visited = {root};
    while (!stack.empty()) {
      const std::size_t cur = stack.back();
      stack.pop_back();
      const FuncDef& d = m.defs[cur];
      auto flag = [&](int line, const std::string& what) {
        if (site_block_ok(m, d.file, line)) return;
        if (line_allowed(m, d.file, line, rule)) return;
        if (!reported.insert({vpath_of(m, d.file), line}).second) return;
        out.push_back({vpath_of(m, d.file), line, rule,
                       "'" + d.display + "' (reachable from wait-free '" +
                           m.defs[root].display + "') " + what});
      };
      for (const ConcEvent& e : d.events)
        if (e.kind == ConcEvent::kLock)
          flag(e.line, "acquires mutex '" + e.node + "'");
      for (const BlockSite& b : d.blocks) flag(b.line, "may block: " + b.what);
      for (const AllocSite& a : d.allocs) flag(a.line, "allocates: " + a.what);
      for (const CallSite& c : d.calls) {
        const auto cands = m.candidates(c);
        if (c.grow && cands.empty()) {
          std::string name;
          for (std::size_t q = 0; q < c.name.size(); ++q)
            name += (q ? "::" : "") + c.name[q];
          flag(c.line, "calls growing container method '" + name + "()'");
          continue;
        }
        for (std::size_t cand : cands) {
          if (m.defs[cand].block_ok || m.defs[cand].alloc_ok)
            continue;  // vouched barrier
          if (visited.insert(cand).second) stack.push_back(cand);
        }
      }
    }
  }
}

/// Follow a call edge when propagating lock acquisitions? Single-name member
/// calls are excluded outright — `slots_.size()` would suffix-match an
/// unrelated first-party `size()` and fabricate edges — and ambiguous
/// single-name free calls likewise.
bool follow_for_locks(const CallSite& c,
                      const std::vector<std::size_t>& cands) {
  if (cands.empty()) return false;
  if (c.member && c.name.size() < 2) return false;
  if (c.name.size() < 2 && cands.size() > 1) return false;
  return true;
}

struct LockOrderCtx {
  const Model& m;
  std::vector<int> state;  // 0 = unvisited, 1 = in progress / done
  std::vector<std::set<std::string>> acq;
};

/// Memoized transitive acquire set of defs[f]. Call-graph cycles return the
/// partial in-progress set — an under-approximation that terminates.
const std::set<std::string>& trans_acquires(LockOrderCtx& ctx,
                                            std::size_t f) {
  if (ctx.state[f] != 0) return ctx.acq[f];
  ctx.state[f] = 1;
  const FuncDef& d = ctx.m.defs[f];
  for (const ConcEvent& e : d.events)
    if (e.kind == ConcEvent::kLock) ctx.acq[f].insert(e.node);
  for (const CallSite& c : d.calls) {
    const auto cands = ctx.m.candidates(c);
    if (!follow_for_locks(c, cands)) continue;
    for (std::size_t cand : cands) {
      if (cand == f) continue;
      const std::set<std::string>& sub = trans_acquires(ctx, cand);
      ctx.acq[f].insert(sub.begin(), sub.end());
    }
  }
  return ctx.acq[f];
}

/// Replay each function's event stream to learn which mutexes are held when
/// another is acquired (directly, or transitively through a followed call).
/// Every held→acquired pair is an edge; a cycle in the resulting graph is an
/// ABBA inversion (or a self-deadlock when both ends are the same mutex).
/// `// cnd-analyze: allow(lock-order)` on an acquisition site drops that
/// site's edges.
void check_lock_order(const Model& m, std::vector<Finding>& out) {
  const std::string rule = "lock-order";
  LockOrderCtx ctx{m, std::vector<int>(m.defs.size(), 0),
                   std::vector<std::set<std::string>>(m.defs.size())};

  struct EdgeSite {
    std::string file;
    int line = 0;
    std::string caller;
  };
  std::map<std::pair<std::string, std::string>, EdgeSite> edges;

  for (const FuncDef& d : m.defs) {
    std::vector<std::pair<std::string, int>> active;  // (node, depth)
    for (const ConcEvent& e : d.events) {
      switch (e.kind) {
        case ConcEvent::kClose:
          while (!active.empty() && active.back().second > e.depth)
            active.pop_back();
          break;
        case ConcEvent::kUnlock:
          for (auto it = active.rbegin(); it != active.rend(); ++it)
            if (it->first == e.node) {
              active.erase(std::next(it).base());
              break;
            }
          break;
        case ConcEvent::kLock:
          if (!line_allowed(m, d.file, e.line, rule))
            for (const auto& held : active)
              edges.emplace(std::make_pair(held.first, e.node),
                            EdgeSite{vpath_of(m, d.file), e.line, d.display});
          active.push_back({e.node, e.depth});
          break;
        case ConcEvent::kCall: {
          if (active.empty()) break;
          if (line_allowed(m, d.file, e.line, rule)) break;
          const CallSite& c = d.calls[e.call];
          const auto cands = m.candidates(c);
          if (!follow_for_locks(c, cands)) break;
          std::set<std::string> acquired;
          for (std::size_t cand : cands) {
            const std::set<std::string>& sub = trans_acquires(ctx, cand);
            acquired.insert(sub.begin(), sub.end());
          }
          for (const auto& held : active)
            for (const std::string& node : acquired)
              edges.emplace(std::make_pair(held.first, node),
                            EdgeSite{vpath_of(m, d.file), c.line, d.display});
          break;
        }
      }
    }
  }

  // Adjacency + a BFS cycle probe per edge; the graph has one node per
  // distinct mutex, so this stays tiny.
  std::map<std::string, std::set<std::string>> adj;
  for (const auto& [key, site] : edges) adj[key.first].insert(key.second);
  for (const auto& [key, site] : edges) {
    const std::string& from = key.first;
    const std::string& to = key.second;
    bool cyclic = from == to;
    if (!cyclic) {
      std::set<std::string> seen = {to};
      std::vector<std::string> stack = {to};
      while (!stack.empty()) {
        const std::string n = stack.back();
        stack.pop_back();
        if (n == from) {
          cyclic = true;
          break;
        }
        auto it = adj.find(n);
        if (it == adj.end()) continue;
        for (const std::string& nxt : it->second)
          if (seen.insert(nxt).second) stack.push_back(nxt);
      }
    }
    if (!cyclic) continue;
    const std::string msg =
        from == to
            ? "'" + site.caller + "' acquires '" + to +
                  "' while already holding it (self-deadlock)"
            : "'" + site.caller + "' acquires '" + to + "' while holding '" +
                  from +
                  "', and the reverse order exists elsewhere — lock-order "
                  "cycle (ABBA deadlock risk)";
    out.push_back({site.file, site.line, rule, msg});
  }
}

void check_layering(const Model& m, std::vector<Finding>& out) {
  const std::string rule = "layering-transitive";
  std::set<std::tuple<std::string, int, std::string>> reported;
  for (const FuncDef& d : m.defs) {
    const std::string caller_layer = layer_of(vpath_of(m, d.file));
    if (caller_layer.empty()) continue;
    const std::set<std::string>& allowed = layer_deps().at(caller_layer);
    for (const CallSite& c : d.calls) {
      // Unqualified single-name calls (`x.size()`, a local's `operator()`,
      // an ADL call) match any definition with that terminal name — pure
      // noise at layer granularity. Objects or functions of a cross-layer
      // type cannot appear without an illegal include, which cnd_lint's
      // include rule already catches; the call-graph check earns its keep
      // on qualified calls, including those through forward declarations
      // that the include rule cannot see.
      if (c.name.size() < 2) continue;
      const auto cands = m.candidates(c);
      if (cands.empty()) continue;
      // Flag only when *every* plausible target is illegal: name matching
      // is approximate, so one legal candidate vetoes the finding.
      bool all_bad = true;
      std::string example;
      for (std::size_t cand : cands) {
        const std::string callee_layer =
            layer_of(vpath_of(m, m.defs[cand].file));
        const bool ok = callee_layer.empty() || callee_layer == caller_layer ||
                        allowed.count(callee_layer) > 0 ||
                        layering_extra_ok(vpath_of(m, d.file), callee_layer);
        if (ok) {
          all_bad = false;
          break;
        }
        example = "'" + m.defs[cand].display + "' (layer " + callee_layer + ")";
      }
      if (!all_bad) continue;
      if (line_allowed(m, d.file, c.line, rule)) continue;
      if (!reported.insert({vpath_of(m, d.file), c.line, example}).second)
        continue;
      out.push_back({vpath_of(m, d.file), c.line, rule,
                     "'" + d.display + "' (layer " + caller_layer +
                         ") calls " + example +
                         ", not reachable in the layer DAG"});
    }
  }
}

void check_rng_confinement(const Model& m, std::vector<Finding>& out) {
  const std::string rule = "rng-confinement";
  // Names assembled from pieces so this tool's own source stays clean under
  // its own scan and under cnd_lint's regexes.
  static const std::string kDistSuffix = std::string("_distri") + "bution";
  static const std::set<std::string> engines = {
      std::string("mt19") + "937",       std::string("mt19") + "937_64",
      std::string("minstd_") + "rand",   std::string("minstd_") + "rand0",
      std::string("ranlux") + "24",      std::string("ranlux") + "48",
      std::string("ranlux") + "24_base", std::string("ranlux") + "48_base",
      std::string("knuth") + "_b",       std::string("default_random_") + "engine",
      std::string("random_") + "device"};
  for (std::size_t f = 0; f < m.files.size(); ++f) {
    const std::string& vpath = m.files[f].vpath;
    if (vpath == "src/tensor/rng.cpp" || vpath == "src/tensor/rng.hpp")
      continue;
    const auto& toks = m.files[f].toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != Tk::Ident) continue;
      const std::string& t = toks[i].text;
      std::string what;
      if (t.size() > kDistSuffix.size() &&
          t.compare(t.size() - kDistSuffix.size(), kDistSuffix.size(),
                    kDistSuffix) == 0)
        what = "std distribution '" + t + "'";
      else if (engines.count(t))
        what = "raw RNG engine '" + t + "'";
      else if (t == "engine" && i + 3 < toks.size() && i >= 1 &&
               (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
               toks[i + 1].text == "(" && toks[i + 2].text == ")" &&
               toks[i + 3].text == "(")
        what = "raw engine draw via '.engine()()'";
      if (what.empty()) continue;
      if (line_allowed(m, static_cast<int>(f), toks[i].line, rule)) continue;
      out.push_back({vpath, toks[i].line, rule,
                     what + " outside src/tensor/rng.cpp — portable streams "
                            "live there (DESIGN.md §4)"});
    }
  }
}

/// Site-level `// cnd-det-ok(reason)` / `// cnd-throw-ok(reason)` waivers:
/// on the site's line or the line above (the same convention as block-ok).
bool site_marked(const std::map<int, std::string>& lines, int line) {
  return lines.count(line) > 0 || lines.count(line - 1) > 0;
}

/// Do `class_q` (a class definition) and `def_q` (a member function
/// definition, terminal stripped by the caller) name the same class? The
/// shorter qualified name must be a component-wise suffix of the longer —
/// an out-of-line `cnd::core::CndIds::snapshot` matches the in-class
/// definition of `CndIds` seen under namespace scopes.
bool owner_matches(const std::vector<std::string>& class_q,
                   const std::vector<std::string>& owner_q) {
  if (class_q.empty() || owner_q.empty()) return false;
  const std::size_t n = std::min(class_q.size(), owner_q.size());
  for (std::size_t k = 0; k < n; ++k)
    if (class_q[class_q.size() - 1 - k] != owner_q[owner_q.size() - 1 - k])
      return false;
  return true;
}

/// snapshot-completeness: every class implementing both snapshot() and
/// restore() must reference each data member in *both* bodies (a direct
/// identifier mention — helpers that serialize a member wholesale should
/// keep the member name visible in the caller) or carry a
/// `// cnd-snapshot: skip(<reason>)` on or above the member's line.
void check_snapshot_completeness(const Model& m, std::vector<Finding>& out) {
  const std::string rule = "snapshot-completeness";
  for (const ClassInfo& ci : m.classes) {
    const FuncDef* snap = nullptr;
    const FuncDef* rest = nullptr;
    for (const FuncDef& d : m.defs) {
      const std::string& t = d.qname.back();
      if ((t != "snapshot" && t != "restore") || d.qname.size() < 2) continue;
      std::vector<std::string> owner(d.qname.begin(), d.qname.end() - 1);
      if (!owner_matches(ci.qname, owner)) continue;
      if (t == "snapshot") snap = &d;
      else rest = &d;
    }
    if (snap == nullptr || rest == nullptr) continue;
    const auto& skips =
        m.files[static_cast<std::size_t>(ci.file)].ann.snapshot_skips;
    for (const MemberVar& mv : ci.members) {
      if (site_marked(skips, mv.line)) continue;
      if (line_allowed(m, ci.file, mv.line, rule)) continue;
      const bool in_snap = snap->idents.count(mv.name) > 0;
      const bool in_rest = rest->idents.count(mv.name) > 0;
      if (in_snap && in_rest) continue;
      const std::string missing = !in_snap && !in_rest
                                      ? "snapshot() or restore()"
                                  : !in_snap ? "snapshot()"
                                             : "restore()";
      out.push_back(
          {vpath_of(m, ci.file), mv.line, rule,
           "data member '" + mv.name + "' of '" + ci.display +
               "' is not referenced in " + missing +
               " — a restored replica would diverge; serialize it or "
               "annotate `// cnd-snapshot: skip(<reason>)`"});
    }
  }
}

/// Output roots of the determinism-taint check: the scoring hot paths, the
/// wait-free admission/score paths, snapshot streams, and the CSV/JSONL
/// writer entry points (by naming convention).
bool det_taint_root(const FuncDef& d) {
  if (d.hot || d.wait_free) return true;
  const std::string& t = d.qname.back();
  if (t == "snapshot" || t == "emit" || t == "emit_raw") return true;
  if (t.rfind("write_", 0) == 0 || t.rfind("dump_", 0) == 0) return true;
  return t == "save_artifact";
}

/// determinism-taint: nothing reachable from an output root may read a
/// nondeterminism source. `// cnd-det-ok(reason)` on a function header
/// vouches that whole subtree (descent stops — e.g. obs-gated telemetry
/// that never feeds a result); on a site's line or the line above it waives
/// just that site.
void check_determinism_taint(const Model& m, std::vector<Finding>& out) {
  const std::string rule = "determinism-taint";
  std::set<std::pair<std::string, int>> reported;
  for (std::size_t root = 0; root < m.defs.size(); ++root) {
    if (!det_taint_root(m.defs[root]) || m.defs[root].det_ok) continue;
    std::vector<std::size_t> stack = {root};
    std::set<std::size_t> visited = {root};
    while (!stack.empty()) {
      const std::size_t cur = stack.back();
      stack.pop_back();
      const FuncDef& d = m.defs[cur];
      for (const TaintSite& s : d.taints) {
        const auto& ok =
            m.files[static_cast<std::size_t>(d.file)].ann.det_ok_lines;
        if (site_marked(ok, s.line)) continue;
        if (line_allowed(m, d.file, s.line, rule)) continue;
        if (!reported.insert({vpath_of(m, d.file), s.line}).second) continue;
        out.push_back(
            {vpath_of(m, d.file), s.line, rule,
             "'" + d.display + "' (reachable from output root '" +
                 m.defs[root].display + "') reads a nondeterminism source: " +
                 s.what + " — results must be bit-stable; vouch with "
                 "`// cnd-det-ok(<reason>)`"});
      }
      for (const CallSite& c : d.calls)
        for (std::size_t cand : m.candidates(c)) {
          if (m.defs[cand].det_ok) continue;  // vouched barrier
          if (visited.insert(cand).second) stack.push_back(cand);
        }
    }
  }
}

/// throw-free-hot: a `// cnd-hot` root must not reach a `throw` expression
/// or a `require()` check — a shard worker aborting a batch mid-stream is a
/// serving outage, not error handling. `// cnd-throw-ok(reason)` on a
/// function header vouches that subtree (descent stops — e.g. a
/// batch-boundary guard helper); on a site's line or the line above it
/// waives just that site. The walk also stops at `// cnd-alloc-ok`
/// functions: they are vouched off the steady-state batch path, and an
/// allocating path can already throw bad_alloc — the no-throw contract
/// only binds the allocation-free steady state the alloc rule proves.
void check_throw_free(const Model& m, std::vector<Finding>& out) {
  const std::string rule = "throw-free-hot";
  std::set<std::pair<std::string, int>> reported;
  for (std::size_t root = 0; root < m.defs.size(); ++root) {
    if (!m.defs[root].hot || m.defs[root].throw_ok) continue;
    std::vector<std::size_t> stack = {root};
    std::set<std::size_t> visited = {root};
    while (!stack.empty()) {
      const std::size_t cur = stack.back();
      stack.pop_back();
      const FuncDef& d = m.defs[cur];
      for (const ThrowSite& s : d.throws) {
        const auto& ok =
            m.files[static_cast<std::size_t>(d.file)].ann.throw_ok_lines;
        if (site_marked(ok, s.line)) continue;
        if (line_allowed(m, d.file, s.line, rule)) continue;
        if (!reported.insert({vpath_of(m, d.file), s.line}).second) continue;
        out.push_back({vpath_of(m, d.file), s.line, rule,
                       "'" + d.display + "' (reachable from hot '" +
                           m.defs[root].display + "') can abort the batch: " +
                           s.what + " — guard at the batch boundary or vouch "
                           "with `// cnd-throw-ok(<reason>)`"});
      }
      for (const CallSite& c : d.calls)
        for (std::size_t cand : m.candidates(c)) {
          // Vouched barriers: throw-ok subtrees, and alloc-ok functions —
          // already off the allocation-free steady state this rule binds.
          if (m.defs[cand].throw_ok || m.defs[cand].alloc_ok) continue;
          if (visited.insert(cand).second) stack.push_back(cand);
        }
    }
  }
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

int add_file(Model& m, const std::string& vpath, const std::string& text,
             bool parse_defs) {
  FileInfo fi;
  fi.vpath = vpath;
  lex(text, fi.toks, fi.ann);
  m.files.push_back(std::move(fi));
  const int idx = static_cast<int>(m.files.size()) - 1;
  if (parse_defs) Parser(m, idx).run();
  return idx;
}

/// Every rule this tool knows, with the one-line description used in SARIF
/// rule metadata and `--help`.
const std::vector<std::pair<std::string, std::string>>& rule_catalog() {
  static const std::vector<std::pair<std::string, std::string>> rules = {
      {"hot-path-alloc",
       "cnd-hot roots must not transitively reach heap allocation outside "
       "cnd-alloc-ok barriers"},
      {"wait-free",
       "cnd-wait-free roots must not reach locks, waits, I/O, or allocation "
       "outside cnd-block-ok barriers"},
      {"lock-order",
       "the mutex-acquisition graph must stay acyclic (no ABBA inversions, "
       "no re-acquisition of a held mutex)"},
      {"layering-transitive",
       "call edges must respect the layer DAG even through forward "
       "declarations"},
      {"rng-confinement",
       "std distributions and raw engines live in src/tensor/rng.cpp only"},
      {"snapshot-completeness",
       "every data member of a snapshot()/restore() class is referenced in "
       "both bodies or carries cnd-snapshot: skip(<reason>)"},
      {"determinism-taint",
       "no nondeterminism source (clocks, pointer casts/hashes, thread ids, "
       "unordered containers) reaches an output root outside cnd-det-ok "
       "barriers"},
      {"throw-free-hot",
       "cnd-hot roots must not reach throw/require outside cnd-throw-ok "
       "barriers"},
  };
  return rules;
}

bool known_rule(const std::string& name) {
  for (const auto& [r, desc] : rule_catalog())
    if (r == name) return true;
  return false;
}

std::vector<Finding> run_checks(Model& m, const std::string& only_rule = {}) {
  m.index();
  std::vector<Finding> findings;
  const auto want = [&](std::string_view r) {
    return only_rule.empty() || only_rule == r;
  };
  if (want("hot-path-alloc")) check_hot_paths(m, findings);
  if (want("wait-free")) check_wait_free(m, findings);
  if (want("lock-order")) check_lock_order(m, findings);
  if (want("layering-transitive")) check_layering(m, findings);
  if (want("rng-confinement")) check_rng_confinement(m, findings);
  if (want("snapshot-completeness")) check_snapshot_completeness(m, findings);
  if (want("determinism-taint")) check_determinism_taint(m, findings);
  if (want("throw-free-hot")) check_throw_free(m, findings);
  std::sort(findings.begin(), findings.end());
  return findings;
}

void print_findings(const std::vector<Finding>& findings) {
  for (const Finding& f : findings)
    std::printf("%s:%d: %s: %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
}

/// One machine-readable summary line (consumed by check_determinism.sh):
/// total finding count plus a per-rule breakdown.
void print_json_summary(const std::vector<Finding>& findings) {
  std::map<std::string, std::size_t> counts;
  for (const auto& [r, desc] : rule_catalog()) counts[r] = 0;
  for (const Finding& f : findings) ++counts[f.rule];
  std::string line = "{\"tool\":\"cnd_analyze\",\"findings\":" +
                     std::to_string(findings.size()) + ",\"rules\":{";
  bool first = true;
  for (const auto& [r, n] : counts) {
    if (!first) line += ",";
    first = false;
    line += "\"" + r + "\":" + std::to_string(n);
  }
  line += "}}";
  std::printf("%s\n", line.c_str());
}

// ---------------------------------------------------------------------------
// SARIF 2.1.0 output (tools/check_sarif.py validates the shape in CI)
// ---------------------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool write_sarif(const fs::path& path, const std::vector<Finding>& findings) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os << "{\n"
     << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n    {\n"
     << "      \"tool\": {\n        \"driver\": {\n"
     << "          \"name\": \"cnd_analyze\",\n"
     << "          \"informationUri\": "
        "\"docs/STATIC_ANALYSIS.md\",\n"
     << "          \"rules\": [\n";
  bool first = true;
  for (const auto& [r, desc] : rule_catalog()) {
    if (!first) os << ",\n";
    first = false;
    os << "            {\"id\": \"" << json_escape(r)
       << "\", \"shortDescription\": {\"text\": \"" << json_escape(desc)
       << "\"}}";
  }
  os << "\n          ]\n        }\n      },\n      \"results\": [\n";
  first = true;
  for (const Finding& f : findings) {
    if (!first) os << ",\n";
    first = false;
    os << "        {\"ruleId\": \"" << json_escape(f.rule)
       << "\", \"level\": \"error\", \"message\": {\"text\": \""
       << json_escape(f.message)
       << "\"}, \"locations\": [{\"physicalLocation\": "
          "{\"artifactLocation\": {\"uri\": \""
       << json_escape(f.file) << "\"}, \"region\": {\"startLine\": "
       << (f.line > 0 ? f.line : 1) << "}}}]}";
  }
  os << "\n      ]\n    }\n  ]\n}\n";
  os.flush();
  return os.good();
}

/// Pull every `"file": "…"` value out of compile_commands.json. The format
/// is machine-generated and flat, so a targeted scan beats a JSON library.
std::vector<std::string> compile_command_files(const std::string& json) {
  std::vector<std::string> out;
  const std::string key = "\"file\"";
  std::size_t pos = 0;
  while ((pos = json.find(key, pos)) != std::string::npos) {
    pos += key.size();
    while (pos < json.size() &&
           (json[pos] == ' ' || json[pos] == ':' || json[pos] == '\t'))
      ++pos;
    if (pos >= json.size() || json[pos] != '"') continue;
    ++pos;
    std::string val;
    while (pos < json.size() && json[pos] != '"') {
      if (json[pos] == '\\' && pos + 1 < json.size()) ++pos;
      val += json[pos++];
    }
    out.push_back(val);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool skip_vpath(const std::string& vpath) {
  return vpath.find("lint_selftest") != std::string::npos ||
         vpath.find("analyze_selftest") != std::string::npos ||
         vpath.rfind("build/", 0) == 0;
}

struct TreeOptions {
  bool list_hot = false;
  bool json_summary = false;
  std::string only_rule;   // empty = all rules
  std::string sarif_path;  // empty = no SARIF output
};

int run_tree(const fs::path& compile_commands, const fs::path& root,
             const TreeOptions& opt) {
  std::string json;
  if (!read_file(compile_commands, json)) {
    std::fprintf(stderr, "cnd_analyze: cannot read %s\n",
                 compile_commands.string().c_str());
    return 2;
  }
  const fs::path root_abs = fs::weakly_canonical(root);

  std::set<std::string> vpaths;  // repo-relative, deduped
  for (const std::string& f : compile_command_files(json)) {
    const fs::path p = fs::weakly_canonical(f);
    const fs::path rel = p.lexically_relative(root_abs);
    if (rel.empty() || rel.begin()->string() == "..") continue;
    const std::string vpath = rel.generic_string();
    if (!skip_vpath(vpath)) vpaths.insert(vpath);
  }
  // Headers never appear in compile_commands; pick them up directly so
  // inline hot-path code (layer defaults, parallel_for) is modeled too.
  for (const char* dir : {"src", "tests", "bench", "tools", "examples"}) {
    const fs::path base = root_abs / dir;
    if (!fs::exists(base)) continue;
    for (const auto& e : fs::recursive_directory_iterator(base)) {
      if (!e.is_regular_file()) continue;
      const std::string ext = e.path().extension().string();
      if (ext != ".hpp" && ext != ".h") continue;
      const std::string vpath =
          e.path().lexically_relative(root_abs).generic_string();
      if (!skip_vpath(vpath)) vpaths.insert(vpath);
    }
  }
  if (vpaths.empty()) {
    std::fprintf(stderr, "cnd_analyze: no first-party files found under %s\n",
                 root_abs.string().c_str());
    return 2;
  }

  Model m;
  for (const std::string& vpath : vpaths) {
    std::string text;
    if (!read_file(root_abs / vpath, text)) {
      std::fprintf(stderr, "cnd_analyze: cannot read %s\n", vpath.c_str());
      return 2;
    }
    // The call-graph model covers src/ — the library code the contracts
    // bind. Tests/bench/tools are still scanned for RNG confinement.
    add_file(m, vpath, text, vpath.rfind("src/", 0) == 0);
  }

  const std::vector<Finding> findings = run_checks(m, opt.only_rule);

  std::size_t hot = 0, barriers = 0, wait_free = 0, block_barriers = 0;
  for (const FuncDef& d : m.defs) {
    hot += d.hot ? 1 : 0;
    barriers += d.alloc_ok ? 1 : 0;
    wait_free += d.wait_free ? 1 : 0;
    block_barriers += d.block_ok ? 1 : 0;
  }
  if (hot == 0) {
    std::fprintf(stderr,
                 "cnd_analyze: no `cnd-hot` roots found — annotations "
                 "missing or parser regression\n");
    return 2;
  }
  if (wait_free == 0) {
    std::fprintf(stderr,
                 "cnd_analyze: no `cnd-wait-free` roots found — annotations "
                 "missing or parser regression\n");
    return 2;
  }
  if (opt.list_hot) {
    for (const FuncDef& d : m.defs) {
      if (d.hot)
        std::printf("hot       %s (%s:%d)\n", d.display.c_str(),
                    vpath_of(m, d.file).c_str(), d.line);
      if (d.wait_free)
        std::printf("wait-free %s (%s:%d)\n", d.display.c_str(),
                    vpath_of(m, d.file).c_str(), d.line);
      if (d.alloc_ok)
        std::printf("alloc-ok  %s (%s:%d) — %s\n", d.display.c_str(),
                    vpath_of(m, d.file).c_str(), d.line,
                    d.alloc_reason.c_str());
      if (d.block_ok)
        std::printf("block-ok  %s (%s:%d) — %s\n", d.display.c_str(),
                    vpath_of(m, d.file).c_str(), d.line,
                    d.block_reason.c_str());
      if (d.det_ok)
        std::printf("det-ok    %s (%s:%d) — %s\n", d.display.c_str(),
                    vpath_of(m, d.file).c_str(), d.line,
                    d.det_reason.c_str());
      if (d.throw_ok)
        std::printf("throw-ok  %s (%s:%d) — %s\n", d.display.c_str(),
                    vpath_of(m, d.file).c_str(), d.line,
                    d.throw_reason.c_str());
    }
  }
  print_findings(findings);
  if (!opt.sarif_path.empty() &&
      !write_sarif(opt.sarif_path, findings)) {
    std::fprintf(stderr, "cnd_analyze: cannot write SARIF to %s\n",
                 opt.sarif_path.c_str());
    return 2;
  }
  if (opt.json_summary) print_json_summary(findings);
  std::fprintf(stderr,
               "cnd_analyze: %zu files, %zu functions, %zu classes, %zu hot "
               "roots, %zu alloc-ok barriers, %zu wait-free roots, %zu "
               "block-ok barriers, %zu findings\n",
               m.files.size(), m.defs.size(), m.classes.size(), hot, barriers,
               wait_free, block_barriers, findings.size());
  return findings.empty() ? 0 : 1;
}

int run_selftest(const fs::path& dir, const std::string& sarif_path) {
  if (!fs::exists(dir)) {
    std::fprintf(stderr, "cnd_analyze: no such fixture dir %s\n",
                 dir.string().c_str());
    return 2;
  }
  std::size_t failures = 0, cases = 0;
  std::vector<Finding> all_findings;  // across cases, for --sarif
  for (const char* kind : {"good", "bad"}) {
    const fs::path base = dir / kind;
    if (!fs::exists(base)) continue;
    std::vector<fs::path> case_dirs;
    for (const auto& e : fs::directory_iterator(base))
      if (e.is_directory()) case_dirs.push_back(e.path());
    std::sort(case_dirs.begin(), case_dirs.end());
    for (const fs::path& cdir : case_dirs) {
      ++cases;
      Model m;
      std::set<std::string> expected;
      std::vector<fs::path> files;
      for (const auto& e : fs::directory_iterator(cdir))
        if (e.is_regular_file()) files.push_back(e.path());
      std::sort(files.begin(), files.end());
      bool io_error = false;
      for (const fs::path& f : files) {
        std::string text;
        if (!read_file(f, text)) {
          std::fprintf(stderr, "cnd_analyze: cannot read %s\n",
                       f.string().c_str());
          io_error = true;
          break;
        }
        const int idx = add_file(m, f.filename().string(), text, false);
        FileInfo& fi = m.files[static_cast<std::size_t>(idx)];
        // Fixtures declare the virtual path that drives layer / rng
        // decisions; re-parse under that identity.
        if (!fi.ann.fixture_path.empty()) fi.vpath = fi.ann.fixture_path;
        Parser(m, idx).run();
        for (const std::string& r : fi.ann.expects) expected.insert(r);
      }
      if (io_error) {
        ++failures;
        continue;
      }
      std::set<std::string> found;
      const std::vector<Finding> findings = run_checks(m);
      all_findings.insert(all_findings.end(), findings.begin(),
                          findings.end());
      for (const Finding& f : findings) found.insert(f.rule);
      const std::string label =
          std::string(kind) + "/" + cdir.filename().string();
      if (found == expected) {
        std::printf("[PASS] %s\n", label.c_str());
      } else {
        ++failures;
        auto join = [](const std::set<std::string>& s) {
          std::string out;
          for (const std::string& r : s) out += (out.empty() ? "" : ", ") + r;
          return out.empty() ? std::string("none") : out;
        };
        std::printf("[FAIL] %s: expected {%s}, found {%s}\n", label.c_str(),
                    join(expected).c_str(), join(found).c_str());
        print_findings(findings);
      }
    }
  }
  std::printf("cnd_analyze selftest: %zu cases, %zu failures\n", cases,
              failures);
  std::sort(all_findings.begin(), all_findings.end());
  if (!sarif_path.empty() && !write_sarif(sarif_path, all_findings)) {
    std::fprintf(stderr, "cnd_analyze: cannot write SARIF to %s\n",
                 sarif_path.c_str());
    return 2;
  }
  return failures == 0 ? 0 : 1;
}

void usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  cnd_analyze --compile-commands <json> --root <repo-root>\n"
      "              [--rule=<name>] [--sarif <file>] [--json] [--list-hot]\n"
      "  cnd_analyze --selftest <fixture-dir> [--sarif <file>]\n"
      "(--help for the rule list and exit codes)\n");
}

void help() {
  std::printf(
      "cnd_analyze — whole-program contract analyzer for the cnd tree.\n"
      "\n"
      "usage:\n"
      "  cnd_analyze --compile-commands <json> --root <repo-root>\n"
      "              [--rule=<name>] [--sarif <file>] [--json] [--list-hot]\n"
      "  cnd_analyze --selftest <fixture-dir> [--sarif <file>]\n"
      "\n"
      "options:\n"
      "  --compile-commands <json>  compile_commands.json naming the TUs\n"
      "  --root <dir>               repo root for repo-relative paths\n"
      "  --rule=<name>              run a single rule (tree scan only)\n"
      "  --sarif <file>             also write findings as SARIF 2.1.0\n"
      "  --json                     append a one-line JSON summary\n"
      "                             (rule -> finding count) to stdout\n"
      "  --list-hot                 list annotated roots and barriers\n"
      "  --selftest <dir>           run the good/bad fixture corpus; with\n"
      "                             --sarif, the corpus findings are written\n"
      "                             (schema-checked by tools/check_sarif.py)\n"
      "\n"
      "rules:\n");
  for (const auto& [r, desc] : rule_catalog())
    std::printf("  %-22s %s\n", r.c_str(), desc.c_str());
  std::printf(
      "\n"
      "exit codes:\n"
      "  0  clean — no findings (or self-test corpus fully green)\n"
      "  1  findings were reported (or a self-test case mismatched)\n"
      "  2  usage error, unreadable input, unknown --rule, unwritable\n"
      "     --sarif file, or an annotation/parser regression (zero cnd-hot\n"
      "     or cnd-wait-free roots found in a tree scan)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string compile_commands, root = ".", selftest;
  TreeOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--compile-commands") {
      const char* v = next();
      if (!v) {
        usage();
        return 2;
      }
      compile_commands = v;
    } else if (arg == "--root") {
      const char* v = next();
      if (!v) {
        usage();
        return 2;
      }
      root = v;
    } else if (arg == "--selftest") {
      const char* v = next();
      if (!v) {
        usage();
        return 2;
      }
      selftest = v;
    } else if (arg == "--sarif") {
      const char* v = next();
      if (!v) {
        usage();
        return 2;
      }
      opt.sarif_path = v;
    } else if (arg.rfind("--sarif=", 0) == 0) {
      opt.sarif_path = arg.substr(8);
    } else if (arg == "--rule") {
      const char* v = next();
      if (!v) {
        usage();
        return 2;
      }
      opt.only_rule = v;
    } else if (arg.rfind("--rule=", 0) == 0) {
      opt.only_rule = arg.substr(7);
    } else if (arg == "--json") {
      opt.json_summary = true;
    } else if (arg == "--list-hot") {
      opt.list_hot = true;
    } else if (arg == "--help" || arg == "-h") {
      help();
      return 0;
    } else {
      usage();
      return 2;
    }
  }
  if (!opt.only_rule.empty() && !known_rule(opt.only_rule)) {
    std::fprintf(stderr,
                 "cnd_analyze: unknown rule '%s' (--help lists them)\n",
                 opt.only_rule.c_str());
    return 2;
  }
  if (!selftest.empty()) return run_selftest(selftest, opt.sarif_path);
  if (compile_commands.empty()) {
    usage();
    return 2;
  }
  return run_tree(compile_commands, root, opt);
}
