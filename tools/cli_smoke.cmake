# End-to-end smoke test of the `cnd` CLI: gen -> run -> score(+save) -> apply.
# Invoked by ctest with -DCND_BIN=<path-to-binary>.
if(NOT DEFINED CND_BIN)
  message(FATAL_ERROR "CND_BIN not set")
endif()

set(work "${CMAKE_CURRENT_BINARY_DIR}/cli_smoke_work")
file(MAKE_DIRECTORY "${work}")
set(csv "${work}/smoke.csv")
set(model "${work}/smoke_model.bin")

function(run_step)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "step failed (${rc}): ${ARGN}\n${out}\n${err}")
  endif()
  set(last_out "${out}" PARENT_SCOPE)
endfunction()

run_step("${CND_BIN}" gen --dataset=wustl_iiot "--out=${csv}" --scale=0.05 --seed=3)
if(NOT EXISTS "${csv}")
  message(FATAL_ERROR "gen did not write ${csv}")
endif()

run_step("${CND_BIN}" run "--data=${csv}" --experiences=4 --epochs=2)
string(FIND "${last_out}" "AVG=" has_avg)
if(has_avg EQUAL -1)
  message(FATAL_ERROR "run output missing AVG metric:\n${last_out}")
endif()

run_step("${CND_BIN}" score "--train=${csv}" "--test=${csv}" --epochs=2
         "--save-model=${model}")
if(NOT EXISTS "${model}")
  message(FATAL_ERROR "score did not write the model artifact")
endif()

run_step("${CND_BIN}" apply "--model=${model}" "--test=${csv}" --explain)
string(FIND "${last_out}" "threshold=" has_thr)
if(has_thr EQUAL -1)
  message(FATAL_ERROR "apply output missing threshold:\n${last_out}")
endif()

message(STATUS "cli smoke test passed")
