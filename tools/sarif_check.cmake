# Drives the SARIF reporting layer end to end as a ctest case
# (docs/STATIC_ANALYSIS.md): emit from both tools, structurally validate
# with tools/check_sarif.py, and merge into the single artifact CI uploads.
#
# Inputs (all -D):
#   ANALYZE_BIN  path to the cnd_analyze binary
#   PYTHON       python3 interpreter
#   SRC_DIR      repository root
#   BIN_DIR      build directory (compile_commands.json lives here)
#   MODE         "selftest" — fixture-corpus reports, results required
#                "tree"     — real-tree reports (clean => empty results),
#                             plus --rule/--json single-rule smoke
cmake_minimum_required(VERSION 3.16)

function(run)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rv)
  if(NOT rv EQUAL 0)
    string(JOIN " " cmd ${ARGN})
    message(FATAL_ERROR "sarif_check: command failed (${rv}): ${cmd}")
  endif()
endfunction()

set(work ${BIN_DIR}/sarif_${MODE})
file(MAKE_DIRECTORY ${work})
set(check ${PYTHON} ${SRC_DIR}/tools/check_sarif.py)

if(MODE STREQUAL "selftest")
  # The corpora contain known-bad fixtures, so both reports must carry
  # results — this is the schema check over a non-trivial document.
  run(${ANALYZE_BIN} --selftest ${SRC_DIR}/tools/analyze_selftest
      --sarif ${work}/analyze.sarif)
  run(${PYTHON} ${SRC_DIR}/tools/cnd_lint.py --self-test --root ${SRC_DIR}
      --sarif ${work}/lint.sarif)
  run(${check} ${work}/analyze.sarif --require-results)
  run(${check} ${work}/lint.sarif --require-results)
elseif(MODE STREQUAL "tree")
  run(${ANALYZE_BIN} --compile-commands ${BIN_DIR}/compile_commands.json
      --root ${SRC_DIR} --sarif ${work}/analyze.sarif)
  run(${PYTHON} ${SRC_DIR}/tools/cnd_lint.py --root ${SRC_DIR}
      --sarif ${work}/lint.sarif)
  run(${check} ${work}/analyze.sarif)
  run(${check} ${work}/lint.sarif)
  run(${PYTHON} ${SRC_DIR}/tools/merge_sarif.py -o ${work}/merged.sarif
      ${work}/analyze.sarif ${work}/lint.sarif)
  run(${check} ${work}/merged.sarif)
  # Single-rule + machine-readable summary, the form check_determinism.sh
  # consumes.
  run(${ANALYZE_BIN} --compile-commands ${BIN_DIR}/compile_commands.json
      --root ${SRC_DIR} --rule=determinism-taint --json)
else()
  message(FATAL_ERROR "sarif_check: unknown MODE '${MODE}'")
endif()
