#!/usr/bin/env bash
# Verify the parallel runtime's determinism contract (docs/PARALLELISM.md,
# docs/OBSERVABILITY.md): the same bench run at CND_THREADS=1 and
# CND_THREADS=4 must produce byte-identical CSV output — with telemetry off
# AND with --metrics-out enabled. Metrics are a write-only side channel:
# turning them on must not perturb a single result byte.
#
# Usage: tools/check_determinism.sh [bench-binary] [bench-args...]
#   bench-binary  defaults to ${BUILD_DIR:-build}/bench/bench_multiseed
#   bench-args    default to --scale=0.1
#
# Environment:
#   BUILD_DIR       Release build directory (default: build)
#   TSAN_BUILD_DIR  optional: a -DCND_TSAN=ON build directory. The same bench
#                   binary from that tree is run at CND_THREADS=4 and its CSVs
#                   are diffed against the Release run — ThreadSanitizer
#                   instrumentation must not change a single result byte.
#   FULL_REGISTRY=1 optional: additionally run the benches that together
#                   exercise every detector in core::make_detector's registry
#                   (extended_nd + fig3 + a tiny scenario grid) at a small
#                   scale and verify each name in DETECTORS below appears in
#                   their CSV output.
#   KERNEL_SWEEP=0  opt out of the blocked-kernel sweep (on by default):
#                   bench_micro_substrate --dump-kernels writes fixed-seed
#                   outputs of every register-blocked kernel; the CSVs must
#                   be byte-identical at CND_THREADS=1 vs 4 (and in the TSan
#                   tree when TSAN_BUILD_DIR is set), and every name in
#                   KERNELS below must appear in them.
#   ANN_SWEEP=0     opt out of the ANN sweep (on by default): bench_ann
#                   --dump-ann first verifies in process that the
#                   NeighborProvider's exact mode reproduces brute-force
#                   linalg::knn and the pre-provider LOF / kNN-detector
#                   scores byte-for-byte, then writes exact-mode scores and
#                   IVF (nprobe>0) neighbours/scores to a CSV; the dump must
#                   be byte-identical at CND_THREADS=1 vs 4 (ANN answers are
#                   approximate, never nondeterministic — docs/ANN.md), and
#                   in the TSan tree when TSAN_BUILD_DIR is set.
#   SERVING_SWEEP=0 opt out of the serving sweep (on by default):
#                   bench_serving --dump-scores replays the same flow stream
#                   through the sharded scoring service at 1 and 4 shards
#                   with mid-stream hot-swap adaptation; the per-flow score
#                   dumps must be byte-identical — a batch's scores depend
#                   only on its admission index, never on worker timing
#                   (docs/SERVING.md) — and likewise at a fixed shard count
#                   with a 1-lane vs 4-lane thread pool (CND_THREADS), the
#                   orthogonal parallelism axis inside each shard. With
#                   TSAN_BUILD_DIR set the TSan tree's 4-shard dump must
#                   match too.
#   STATIC_SWEEP=0  opt out of the static determinism proof (on by default):
#                   cnd_analyze's determinism-taint rule is the
#                   compile-time-adjacent counterpart of the byte diffs
#                   above — no output root may reach a nondeterminism
#                   source. Consumes the analyzer's --json one-line summary;
#                   skips gracefully (with a note) when the analyzer binary
#                   or compile_commands.json is not in BUILD_DIR.
#
# Exit 0 when every comparison matches and the metrics JSONL is well-formed,
# 1 otherwise.
set -euo pipefail

# Every registered detector name in core::make_detector (detector_factory.cpp).
# tools/cnd_lint.py's registry-coverage rule fails the lint build if a
# detector is added to the factory without being listed here, so this script
# can never silently fall behind the registry.
DETECTORS=(
  "CND-IDS"
  "Adaptive"
  "ADCN"
  "LwF"
  "PCA"
  "DIF"
  "GMM"
  "Maha"
  "kNN"
  "HBOS"
  "AE"
  "LOF"
  "OC-SVM"
)

# Every kernel case bench_micro_substrate --dump-kernels emits. The lint
# registry-coverage rule cross-checks this list against the bench source, so
# a new kernel case cannot ship without the sweep below covering it.
KERNELS=(
  "matmul"
  "matmul_bt"
  "matmul_at"
  "pairwise_dist"
  "knn"
  "ivf_knn"
)

BUILD_DIR=${BUILD_DIR:-build}
BENCH=${1:-${BUILD_DIR}/bench/bench_multiseed}
shift || true
if [ "$#" -gt 0 ]; then ARGS=("$@"); else ARGS=(--scale=0.1); fi

if [ ! -x "${BENCH}" ]; then
  echo "check_determinism: bench binary '${BENCH}' not found or not executable" >&2
  echo "  (build first: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j)" >&2
  exit 1
fi
BENCH=$(readlink -f "${BENCH}")

WORK=$(mktemp -d)
trap 'rm -rf "${WORK}"' EXIT

run_bench_at() {
  local bin=$1 threads=$2 dir=$3
  shift 3
  mkdir -p "${dir}"
  echo "== CND_THREADS=${threads} $(basename "${bin}") ${ARGS[*]} $*"
  (cd "${dir}" && CND_THREADS=${threads} "${bin}" "${ARGS[@]}" "$@" > stdout.log)
}

run_at() {
  local threads=$1 dir=$2
  shift 2
  run_bench_at "${BENCH}" "${threads}" "${dir}" "$@"
}

# Plain runs, then runs with the observability pipeline fully enabled.
run_at 1 "${WORK}/t1"
run_at 4 "${WORK}/t4"
run_at 1 "${WORK}/t1m" --metrics-out=metrics.jsonl
run_at 4 "${WORK}/t4m" --metrics-out=metrics.jsonl

shopt -s nullglob
csvs=("${WORK}"/t1/*.csv)
if [ "${#csvs[@]}" -eq 0 ]; then
  echo "check_determinism: bench wrote no CSV files — nothing to compare" >&2
  exit 1
fi

status=0
for f in "${csvs[@]}"; do
  name=$(basename "${f}")
  for dir in t4 t1m t4m; do
    if diff -q "${WORK}/t1/${name}" "${WORK}/${dir}/${name}" > /dev/null; then
      echo "OK   ${name} identical between t1 and ${dir}"
    else
      echo "FAIL ${name} differs between t1 and ${dir}"
      diff "${WORK}/t1/${name}" "${WORK}/${dir}/${name}" | head -10 || true
      status=1
    fi
  done
done

# Optional cross-build check: a ThreadSanitizer build must reproduce the
# Release CSVs byte-for-byte. TSan adds instrumentation and scheduling noise
# but never changes IEEE arithmetic, so any diff here is a real data race or
# order dependence that the in-build comparison above could have masked.
if [ -n "${TSAN_BUILD_DIR:-}" ]; then
  rel=$(realpath --relative-to="$(readlink -f "${BUILD_DIR}")" "${BENCH}")
  TSAN_BENCH="${TSAN_BUILD_DIR}/${rel}"
  if [ ! -x "${TSAN_BENCH}" ]; then
    echo "FAIL TSAN_BUILD_DIR set but '${TSAN_BENCH}' is missing" >&2
    echo "  (build first: cmake -B ${TSAN_BUILD_DIR} -S . -DCND_TSAN=ON && cmake --build ${TSAN_BUILD_DIR} -j)" >&2
    status=1
  else
    run_bench_at "$(readlink -f "${TSAN_BENCH}")" 4 "${WORK}/tsan"
    for f in "${csvs[@]}"; do
      name=$(basename "${f}")
      if diff -q "${WORK}/t1/${name}" "${WORK}/tsan/${name}" > /dev/null; then
        echo "OK   ${name} identical between Release t1 and TSan t4"
      else
        echo "FAIL ${name} differs between Release t1 and TSan t4"
        diff "${WORK}/t1/${name}" "${WORK}/tsan/${name}" | head -10 || true
        status=1
      fi
    done
  fi
fi

# The metrics stream itself: non-empty, one JSON object per line, and a
# closing metrics_snapshot record from the atexit hook.
for dir in t1m t4m; do
  mfile="${WORK}/${dir}/metrics.jsonl"
  if [ ! -s "${mfile}" ]; then
    echo "FAIL ${dir}/metrics.jsonl missing or empty"
    status=1
    continue
  fi
  if grep -qvE '^\{.*\}$' "${mfile}"; then
    echo "FAIL ${dir}/metrics.jsonl has non-JSON-object lines:"
    grep -vE '^\{.*\}$' "${mfile}" | head -3
    status=1
  elif ! grep -q '"event":"metrics_snapshot"' "${mfile}"; then
    echo "FAIL ${dir}/metrics.jsonl lacks the closing metrics_snapshot record"
    status=1
  else
    echo "OK   ${dir}/metrics.jsonl well-formed ($(wc -l < "${mfile}") lines)"
  fi
done

# Blocked-kernel sweep (on by default; KERNEL_SWEEP=0 opts out): fixed-seed
# outputs of every register-blocked kernel, byte-compared between
# CND_THREADS=1 and 4 — the accumulation-order contract end to end. When
# TSAN_BUILD_DIR is set the TSan tree's dump must match too.
if [ "${KERNEL_SWEEP:-1}" = "1" ]; then
  MICRO="${BUILD_DIR}/bench/bench_micro_substrate"
  if [ ! -x "${MICRO}" ]; then
    echo "FAIL kernel sweep: '${MICRO}' is missing (KERNEL_SWEEP=0 to skip)"
    status=1
  else
    micro=$(readlink -f "${MICRO}")
    for t in 1 4; do
      mkdir -p "${WORK}/k${t}"
      echo "== CND_THREADS=${t} $(basename "${micro}") --dump-kernels=kernels.csv"
      (cd "${WORK}/k${t}" && CND_THREADS=${t} "${micro}" --dump-kernels=kernels.csv)
    done
    if diff -q "${WORK}/k1/kernels.csv" "${WORK}/k4/kernels.csv" > /dev/null; then
      echo "OK   kernels.csv identical between CND_THREADS=1 and 4"
    else
      echo "FAIL kernels.csv differs between CND_THREADS=1 and 4"
      diff "${WORK}/k1/kernels.csv" "${WORK}/k4/kernels.csv" | head -10 || true
      status=1
    fi
    for kernel in "${KERNELS[@]}"; do
      if grep -q "^${kernel}," "${WORK}/k1/kernels.csv"; then
        echo "OK   kernel case '${kernel}' present in sweep"
      else
        echo "FAIL kernel case '${kernel}' absent from kernels.csv"
        status=1
      fi
    done
    if [ -n "${TSAN_BUILD_DIR:-}" ]; then
      TSAN_MICRO="${TSAN_BUILD_DIR}/bench/bench_micro_substrate"
      if [ ! -x "${TSAN_MICRO}" ]; then
        echo "FAIL kernel sweep: TSAN_BUILD_DIR set but '${TSAN_MICRO}' is missing"
        status=1
      else
        tsan_micro=$(readlink -f "${TSAN_MICRO}")
        mkdir -p "${WORK}/ktsan"
        echo "== CND_THREADS=4 (TSan) $(basename "${tsan_micro}") --dump-kernels=kernels.csv"
        (cd "${WORK}/ktsan" && CND_THREADS=4 "${tsan_micro}" --dump-kernels=kernels.csv)
        if diff -q "${WORK}/k1/kernels.csv" "${WORK}/ktsan/kernels.csv" > /dev/null; then
          echo "OK   kernels.csv identical between Release t1 and TSan t4"
        else
          echo "FAIL kernels.csv differs between Release t1 and TSan t4"
          diff "${WORK}/k1/kernels.csv" "${WORK}/ktsan/kernels.csv" | head -10 || true
          status=1
        fi
      fi
    fi
  fi
fi

# ANN sweep (on by default; ANN_SWEEP=0 opts out): bench_ann --dump-ann
# checks the exact-fallback contract in process (provider exact mode ==
# brute force == pre-provider detector scoring, byte for byte) and dumps
# exact scores plus IVF neighbours/scores; the dump is then byte-compared
# between CND_THREADS=1 and 4 — approximate answers still follow the
# determinism contract — and against the TSan tree when available.
if [ "${ANN_SWEEP:-1}" = "1" ]; then
  ANN="${BUILD_DIR}/bench/bench_ann"
  if [ ! -x "${ANN}" ]; then
    echo "FAIL ann sweep: '${ANN}' is missing (ANN_SWEEP=0 to skip)"
    status=1
  else
    ann=$(readlink -f "${ANN}")
    for t in 1 4; do
      mkdir -p "${WORK}/a${t}"
      echo "== CND_THREADS=${t} $(basename "${ann}") --dump-ann=ann.csv"
      (cd "${WORK}/a${t}" && CND_THREADS=${t} "${ann}" --dump-ann=ann.csv > stdout.log)
    done
    if diff -q "${WORK}/a1/ann.csv" "${WORK}/a4/ann.csv" > /dev/null; then
      echo "OK   ann.csv identical between CND_THREADS=1 and 4"
    else
      echo "FAIL ann.csv differs between CND_THREADS=1 and 4"
      diff "${WORK}/a1/ann.csv" "${WORK}/a4/ann.csv" | head -10 || true
      status=1
    fi
    for case_name in exact_knn_scores exact_lof_scores ann_knn ann_knn_scores ann_lof_scores; do
      if grep -q "^${case_name}," "${WORK}/a1/ann.csv"; then
        echo "OK   ann case '${case_name}' present in dump"
      else
        echo "FAIL ann case '${case_name}' absent from ann.csv"
        status=1
      fi
    done
    if [ -n "${TSAN_BUILD_DIR:-}" ]; then
      TSAN_ANN="${TSAN_BUILD_DIR}/bench/bench_ann"
      if [ ! -x "${TSAN_ANN}" ]; then
        echo "FAIL ann sweep: TSAN_BUILD_DIR set but '${TSAN_ANN}' is missing"
        status=1
      else
        tsan_ann=$(readlink -f "${TSAN_ANN}")
        mkdir -p "${WORK}/atsan"
        echo "== CND_THREADS=4 (TSan) $(basename "${tsan_ann}") --dump-ann=ann.csv"
        (cd "${WORK}/atsan" && CND_THREADS=4 "${tsan_ann}" --dump-ann=ann.csv > stdout.log)
        if diff -q "${WORK}/a1/ann.csv" "${WORK}/atsan/ann.csv" > /dev/null; then
          echo "OK   ann.csv identical between Release t1 and TSan t4"
        else
          echo "FAIL ann.csv differs between Release t1 and TSan t4"
          diff "${WORK}/a1/ann.csv" "${WORK}/atsan/ann.csv" | head -10 || true
          status=1
        fi
      fi
    fi
  fi
fi

# Serving sweep (on by default; SERVING_SWEEP=0 opts out): the sharded
# scoring service must produce byte-identical per-flow scores at any shard
# count, including across hot-swap adaptation rounds and real backpressure
# (the queue holds 4 batches while 4 shards drain it).
if [ "${SERVING_SWEEP:-1}" = "1" ]; then
  SERVING="${BUILD_DIR}/bench/bench_serving"
  SERVING_ARGS=(--flows=8000 --batch=256 --queue=4 --adapt-every=3000 --seed=7)
  if [ ! -x "${SERVING}" ]; then
    echo "FAIL serving sweep: '${SERVING}' is missing (SERVING_SWEEP=0 to skip)"
    status=1
  else
    serving=$(readlink -f "${SERVING}")
    for s in 1 4; do
      mkdir -p "${WORK}/s${s}"
      echo "== shards=${s} $(basename "${serving}") ${SERVING_ARGS[*]}"
      (cd "${WORK}/s${s}" && "${serving}" "${SERVING_ARGS[@]}" --shards=${s} \
          --dump-scores=scores.txt > stdout.log)
    done
    if diff -q "${WORK}/s1/scores.txt" "${WORK}/s4/scores.txt" > /dev/null; then
      echo "OK   serving scores identical between 1 and 4 shards"
    else
      echo "FAIL serving scores differ between 1 and 4 shards"
      diff "${WORK}/s1/scores.txt" "${WORK}/s4/scores.txt" | head -10 || true
      status=1
    fi
    if ! grep -q '"adaptations": 2,' "${WORK}/s1/BENCH_serving.json"; then
      echo "FAIL serving sweep ran without hot-swap adaptation rounds"
      status=1
    fi
    # Thread-pool variation at a fixed shard count: each shard's score path
    # runs the parallel runtime internally, so scores must also be
    # byte-identical when the pool has 1 lane vs 4 (independent of the
    # shard-count axis above).
    for t in 1 4; do
      mkdir -p "${WORK}/t${t}"
      echo "== shards=2 CND_THREADS=${t} $(basename "${serving}") ${SERVING_ARGS[*]}"
      (cd "${WORK}/t${t}" && CND_THREADS=${t} "${serving}" "${SERVING_ARGS[@]}" \
          --shards=2 --dump-scores=scores.txt > stdout.log)
      if diff -q "${WORK}/s1/scores.txt" "${WORK}/t${t}/scores.txt" > /dev/null; then
        echo "OK   serving scores identical with a ${t}-lane thread pool"
      else
        echo "FAIL serving scores differ with a ${t}-lane thread pool"
        diff "${WORK}/s1/scores.txt" "${WORK}/t${t}/scores.txt" | head -10 || true
        status=1
      fi
    done
    if [ -n "${TSAN_BUILD_DIR:-}" ]; then
      TSAN_SERVING="${TSAN_BUILD_DIR}/bench/bench_serving"
      if [ ! -x "${TSAN_SERVING}" ]; then
        echo "FAIL serving sweep: TSAN_BUILD_DIR set but '${TSAN_SERVING}' is missing"
        status=1
      else
        tsan_serving=$(readlink -f "${TSAN_SERVING}")
        mkdir -p "${WORK}/stsan"
        echo "== shards=4 (TSan) $(basename "${tsan_serving}") ${SERVING_ARGS[*]}"
        (cd "${WORK}/stsan" && "${tsan_serving}" "${SERVING_ARGS[@]}" --shards=4 \
            --dump-scores=scores.txt > stdout.log)
        if diff -q "${WORK}/s1/scores.txt" "${WORK}/stsan/scores.txt" > /dev/null; then
          echo "OK   serving scores identical between Release 1-shard and TSan 4-shard"
        else
          echo "FAIL serving scores differ between Release 1-shard and TSan 4-shard"
          diff "${WORK}/s1/scores.txt" "${WORK}/stsan/scores.txt" | head -10 || true
          status=1
        fi
      fi
    fi
  fi
fi

# Optional full-registry sweep: bench_extended_nd + bench_fig3_cl_comparison
# + a tiny bench_scenarios grid together exercise all thirteen registered
# detectors; verify every name in DETECTORS shows up in their CSV output so
# no registry entry goes untested.
if [ "${FULL_REGISTRY:-0}" = "1" ]; then
  mkdir -p "${WORK}/reg"
  for bin in bench_extended_nd bench_fig3_cl_comparison; do
    if [ ! -x "${BUILD_DIR}/bench/${bin}" ]; then
      echo "FAIL FULL_REGISTRY=1 but '${BUILD_DIR}/bench/${bin}' is missing"
      status=1
      continue
    fi
    full=$(readlink -f "${BUILD_DIR}/bench/${bin}")  # resolve before the cd
    echo "== FULL_REGISTRY ${bin} --scale=0.05"
    (cd "${WORK}/reg" && CND_THREADS=4 "${full}" --scale=0.05 > "${bin}.log")
  done
  # bench_scenarios carries the drift-gated Adaptive detector, which no
  # fixed-protocol bench runs; one scenario at a tiny scale keeps it cheap.
  if [ ! -x "${BUILD_DIR}/bench/bench_scenarios" ]; then
    echo "FAIL FULL_REGISTRY=1 but '${BUILD_DIR}/bench/bench_scenarios' is missing"
    status=1
  else
    full=$(readlink -f "${BUILD_DIR}/bench/bench_scenarios")
    echo "== FULL_REGISTRY bench_scenarios --scale=0.05 (CND-IDS,Adaptive)"
    (cd "${WORK}/reg" && CND_THREADS=4 "${full}" --scale=0.05 \
        --scenarios=class-incremental --detectors=CND-IDS,Adaptive \
        > bench_scenarios.log)
  fi
  for det in "${DETECTORS[@]}"; do
    if grep -qF "${det}" "${WORK}"/reg/*.csv "${WORK}"/reg/*.log 2> /dev/null; then
      echo "OK   registry detector '${det}' exercised"
    else
      echo "FAIL registry detector '${det}' absent from full-registry run"
      status=1
    fi
  done
fi

# Static determinism proof (on by default; STATIC_SWEEP=0 opts out): the
# runtime byte-diffs above sample; the determinism-taint reachability scan
# proves. A graceful skip keeps bench-only invocations (custom BUILD_DIR
# without the tools targets) working.
if [ "${STATIC_SWEEP:-1}" = "1" ]; then
  ROOT_DIR=$(cd "$(dirname "$0")/.." && pwd)
  ANALYZE="${BUILD_DIR}/tools/cnd_analyze"
  CDB="${BUILD_DIR}/compile_commands.json"
  if [ ! -x "${ANALYZE}" ] || [ ! -f "${CDB}" ]; then
    echo "SKIP static determinism-taint scan ('${ANALYZE}' or '${CDB}' missing)"
  else
    echo "== cnd_analyze --rule=determinism-taint --json"
    summary=$("${ANALYZE}" --compile-commands "${CDB}" --root "${ROOT_DIR}" \
        --rule=determinism-taint --json 2> /dev/null | tail -1) || true
    case "${summary}" in
      *'"findings":0,'*)
        echo "OK   static determinism-taint scan clean: ${summary}"
        ;;
      *)
        echo "FAIL static determinism-taint scan: ${summary:-analyzer produced no summary}"
        status=1
        ;;
    esac
  fi
fi

exit ${status}
