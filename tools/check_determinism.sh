#!/usr/bin/env bash
# Verify the parallel runtime's determinism contract (docs/PARALLELISM.md,
# docs/OBSERVABILITY.md): the same bench run at CND_THREADS=1 and
# CND_THREADS=4 must produce byte-identical CSV output — with telemetry off
# AND with --metrics-out enabled. Metrics are a write-only side channel:
# turning them on must not perturb a single result byte.
#
# Usage: tools/check_determinism.sh [bench-binary] [bench-args...]
#   bench-binary  defaults to ${BUILD_DIR:-build}/bench/bench_multiseed
#   bench-args    default to --scale=0.1
#
# Exit 0 when every CSV matches across all four runs and the metrics JSONL
# is well-formed, 1 otherwise.
set -euo pipefail

BUILD_DIR=${BUILD_DIR:-build}
BENCH=${1:-${BUILD_DIR}/bench/bench_multiseed}
shift || true
if [ "$#" -gt 0 ]; then ARGS=("$@"); else ARGS=(--scale=0.1); fi

if [ ! -x "${BENCH}" ]; then
  echo "check_determinism: bench binary '${BENCH}' not found or not executable" >&2
  echo "  (build first: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j)" >&2
  exit 1
fi
BENCH=$(readlink -f "${BENCH}")

WORK=$(mktemp -d)
trap 'rm -rf "${WORK}"' EXIT

run_at() {
  local threads=$1 dir=$2
  shift 2
  mkdir -p "${dir}"
  echo "== CND_THREADS=${threads} $(basename "${BENCH}") ${ARGS[*]} $*"
  (cd "${dir}" && CND_THREADS=${threads} "${BENCH}" "${ARGS[@]}" "$@" > stdout.log)
}

# Plain runs, then runs with the observability pipeline fully enabled.
run_at 1 "${WORK}/t1"
run_at 4 "${WORK}/t4"
run_at 1 "${WORK}/t1m" --metrics-out=metrics.jsonl
run_at 4 "${WORK}/t4m" --metrics-out=metrics.jsonl

shopt -s nullglob
csvs=("${WORK}"/t1/*.csv)
if [ "${#csvs[@]}" -eq 0 ]; then
  echo "check_determinism: bench wrote no CSV files — nothing to compare" >&2
  exit 1
fi

status=0
for f in "${csvs[@]}"; do
  name=$(basename "${f}")
  for dir in t4 t1m t4m; do
    if diff -q "${WORK}/t1/${name}" "${WORK}/${dir}/${name}" > /dev/null; then
      echo "OK   ${name} identical between t1 and ${dir}"
    else
      echo "FAIL ${name} differs between t1 and ${dir}"
      diff "${WORK}/t1/${name}" "${WORK}/${dir}/${name}" | head -10 || true
      status=1
    fi
  done
done

# The metrics stream itself: non-empty, one JSON object per line, and a
# closing metrics_snapshot record from the atexit hook.
for dir in t1m t4m; do
  mfile="${WORK}/${dir}/metrics.jsonl"
  if [ ! -s "${mfile}" ]; then
    echo "FAIL ${dir}/metrics.jsonl missing or empty"
    status=1
    continue
  fi
  if grep -qvE '^\{.*\}$' "${mfile}"; then
    echo "FAIL ${dir}/metrics.jsonl has non-JSON-object lines:"
    grep -vE '^\{.*\}$' "${mfile}" | head -3
    status=1
  elif ! grep -q '"event":"metrics_snapshot"' "${mfile}"; then
    echo "FAIL ${dir}/metrics.jsonl lacks the closing metrics_snapshot record"
    status=1
  else
    echo "OK   ${dir}/metrics.jsonl well-formed ($(wc -l < "${mfile}") lines)"
  fi
done
exit ${status}
