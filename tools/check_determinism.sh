#!/usr/bin/env bash
# Verify the parallel runtime's determinism contract (docs/PARALLELISM.md):
# the same bench run at CND_THREADS=1 and CND_THREADS=4 must produce
# byte-identical CSV output.
#
# Usage: tools/check_determinism.sh [bench-binary] [bench-args...]
#   bench-binary  defaults to ${BUILD_DIR:-build}/bench/bench_multiseed
#   bench-args    default to --scale=0.1
#
# Exit 0 when every CSV matches, 1 on any difference.
set -euo pipefail

BUILD_DIR=${BUILD_DIR:-build}
BENCH=${1:-${BUILD_DIR}/bench/bench_multiseed}
shift || true
if [ "$#" -gt 0 ]; then ARGS=("$@"); else ARGS=(--scale=0.1); fi

if [ ! -x "${BENCH}" ]; then
  echo "check_determinism: bench binary '${BENCH}' not found or not executable" >&2
  echo "  (build first: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j)" >&2
  exit 1
fi
BENCH=$(readlink -f "${BENCH}")

WORK=$(mktemp -d)
trap 'rm -rf "${WORK}"' EXIT

run_at() {
  local threads=$1 dir=$2
  mkdir -p "${dir}"
  echo "== CND_THREADS=${threads} $(basename "${BENCH}") ${ARGS[*]}"
  (cd "${dir}" && CND_THREADS=${threads} "${BENCH}" "${ARGS[@]}" > stdout.log)
}

run_at 1 "${WORK}/t1"
run_at 4 "${WORK}/t4"

shopt -s nullglob
csvs=("${WORK}"/t1/*.csv)
if [ "${#csvs[@]}" -eq 0 ]; then
  echo "check_determinism: bench wrote no CSV files — nothing to compare" >&2
  exit 1
fi

status=0
for f in "${csvs[@]}"; do
  name=$(basename "${f}")
  if diff -q "${WORK}/t1/${name}" "${WORK}/t4/${name}" > /dev/null; then
    echo "OK   ${name} identical at CND_THREADS=1 and 4"
  else
    echo "FAIL ${name} differs between CND_THREADS=1 and 4"
    diff "${WORK}/t1/${name}" "${WORK}/t4/${name}" | head -10 || true
    status=1
  fi
done
exit ${status}
