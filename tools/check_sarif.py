#!/usr/bin/env python3
"""Structural validator for the SARIF 2.1.0 files cnd_analyze and cnd_lint
emit (docs/STATIC_ANALYSIS.md).

Stdlib-only on purpose: CI and the ctest `lint` label run it with a bare
python3, no jsonschema install. It checks the subset of the SARIF 2.1.0
schema the two emitters use — the fields GitHub code scanning actually
requires to render a finding — so a malformed writer fails the selftests
here instead of silently uploading an empty report.

Usage:
  check_sarif.py <file.sarif> [--require-results]

Exit codes: 0 valid; 1 structurally invalid (problems listed on stderr);
2 unreadable file / not JSON.
"""

from __future__ import annotations

import argparse
import json
import sys


def fail(problems: list[str], path: str) -> int:
    for p in problems:
        print(f"check_sarif: {path}: {p}", file=sys.stderr)
    return 1


def validate(doc: object, require_results: bool) -> list[str]:
    problems: list[str] = []

    def need(cond: bool, what: str) -> bool:
        if not cond:
            problems.append(what)
        return cond

    if not need(isinstance(doc, dict), "top level is not an object"):
        return problems
    need(doc.get("version") == "2.1.0",
         f"version is {doc.get('version')!r}, expected '2.1.0'")
    need(isinstance(doc.get("$schema"), str) and "sarif-2.1.0" in doc["$schema"],
         "$schema missing or not the SARIF 2.1.0 schema")
    runs = doc.get("runs")
    if not need(isinstance(runs, list) and runs, "runs is not a non-empty array"):
        return problems

    total_results = 0
    for ri, run in enumerate(runs):
        where = f"runs[{ri}]"
        if not need(isinstance(run, dict), f"{where} is not an object"):
            continue
        driver = run.get("tool", {}).get("driver") if isinstance(run.get("tool"), dict) else None
        if need(isinstance(driver, dict), f"{where}.tool.driver missing"):
            need(isinstance(driver.get("name"), str) and driver["name"],
                 f"{where}.tool.driver.name missing")
            rules = driver.get("rules", [])
            need(isinstance(rules, list), f"{where}.tool.driver.rules is not an array")
            rule_ids = set()
            for pi, rule in enumerate(rules if isinstance(rules, list) else []):
                rw = f"{where}.tool.driver.rules[{pi}]"
                if not need(isinstance(rule, dict) and isinstance(rule.get("id"), str),
                            f"{rw}.id missing"):
                    continue
                rule_ids.add(rule["id"])
                short = rule.get("shortDescription")
                need(isinstance(short, dict) and isinstance(short.get("text"), str),
                     f"{rw}.shortDescription.text missing")
        else:
            rule_ids = set()

        results = run.get("results")
        if not need(isinstance(results, list), f"{where}.results is not an array"):
            continue
        total_results += len(results)
        for si, res in enumerate(results):
            sw = f"{where}.results[{si}]"
            if not need(isinstance(res, dict), f"{sw} is not an object"):
                continue
            need(isinstance(res.get("ruleId"), str) and res["ruleId"],
                 f"{sw}.ruleId missing")
            if rule_ids and isinstance(res.get("ruleId"), str):
                need(res["ruleId"] in rule_ids,
                     f"{sw}.ruleId {res['ruleId']!r} is not in the driver's rules")
            need(res.get("level") in ("error", "warning", "note", "none"),
                 f"{sw}.level {res.get('level')!r} is not a SARIF level")
            msg = res.get("message")
            need(isinstance(msg, dict) and isinstance(msg.get("text"), str)
                 and msg["text"], f"{sw}.message.text missing")
            locs = res.get("locations")
            if not need(isinstance(locs, list) and locs,
                        f"{sw}.locations is not a non-empty array"):
                continue
            phys = locs[0].get("physicalLocation") if isinstance(locs[0], dict) else None
            if need(isinstance(phys, dict), f"{sw}.locations[0].physicalLocation missing"):
                art = phys.get("artifactLocation")
                need(isinstance(art, dict) and isinstance(art.get("uri"), str)
                     and art["uri"], f"{sw}...artifactLocation.uri missing")
                region = phys.get("region")
                need(isinstance(region, dict)
                     and isinstance(region.get("startLine"), int)
                     and region["startLine"] >= 1,
                     f"{sw}...region.startLine missing or < 1")

    if require_results:
        need(total_results > 0,
             "--require-results: no results in any run (emitter produced an "
             "empty report?)")
    return problems


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("sarif", help="SARIF file to validate")
    ap.add_argument("--require-results", action="store_true",
                    help="fail unless at least one result is present "
                    "(for selftest corpora, which always have findings)")
    args = ap.parse_args()

    try:
        with open(args.sarif, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_sarif: {args.sarif}: {e}", file=sys.stderr)
        return 2

    problems = validate(doc, args.require_results)
    if problems:
        return fail(problems, args.sarif)
    runs = doc["runs"]
    names = ", ".join(r["tool"]["driver"]["name"] for r in runs)
    results = sum(len(r["results"]) for r in runs)
    print(f"check_sarif: {args.sarif}: valid ({len(runs)} run(s) [{names}], "
          f"{results} result(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
