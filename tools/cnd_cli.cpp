// cnd — command-line interface to the CND-IDS library.
//
// Subcommands:
//   gen   --dataset=<x_iiotid|wustl_iiot|cicids2017|unsw_nb15> --out=<csv>
//         [--scale=0.25] [--seed=42]
//       Write a synthetic intrusion dataset in the library CSV format.
//
//   run   --data=<csv> [--detector=CND-IDS] [--experiences=5] [--seed=7]
//         [--epochs=8]
//       Run the full continual protocol (Algorithm 1) on a labeled CSV and
//       print the R matrix plus AVG / FwdTrans / BwdTrans. --detector
//       accepts any name from `cnd detectors` (the core registry).
//
//   detectors
//       List every registry detector name with its kind and a one-line
//       description (e.g. Adaptive — drift-gated CND-IDS).
//
//   score --train=<csv> --test=<csv> [--quantile=0.99] [--epochs=8]
//         [--save-model=<bin>]
//       Train CND-IDS on the train CSV (labels ignored — the method is
//       label-free; rows marked normal form N_c), then print one anomaly
//       score and verdict per test row. --save-model freezes the trained
//       scoring path into a deployable artifact.
//
//   apply --model=<bin> --test=<csv> [--explain]
//       Score a test CSV with a saved artifact (no training). --explain
//       appends the top latent-feature attributions for each alarmed row
//       (which directions of the learned representation drove the score).
//
//   pack  --data=<csv> --out=<bin>
//       Pack a CSV's feature columns into the binary flow-record format the
//       serving layer memory-maps (docs/SERVING.md; labels are dropped).
//
//   snapshot --data=<csv> --out=<artifact> [--detector=CND-IDS] [--seed=7]
//            [--epochs=8] [--fpr=0.01]
//       Train a snapshot-capable registry detector (normal rows form N_c,
//       the full file is the first stream), calibrate a POT threshold, and
//       save a versioned serving artifact.
//
//   restore --artifact=<bin> --test=<csv>
//       Rebuild an inference-only replica from a serving artifact and score
//       a test CSV against the artifact's threshold. Scores are
//       byte-identical to the detector that produced the snapshot.
//
//   serve --flows=<bin> --clean=<csv> [--detector=CND-IDS] [--shards=2]
//         [--batch=256] [--queue=8] [--adapt-every=0] [--seed=7] [--epochs=8]
//       Run the sharded scoring service over a packed flow-record file:
//       bootstrap on the clean CSV's normal rows, stream the file through
//       the admission queue, print throughput / latency / adaptation
//       summary. Flow files are assumed preprocessed to the clean CSV's
//       feature scale.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>

#include "core/cnd_ids.hpp"
#include "core/detector_factory.hpp"
#include "core/experience_runner.hpp"
#include "core/explanation.hpp"
#include "eval/robust_threshold.hpp"
#include "eval/timer.hpp"
#include "io/model_io.hpp"
#include "data/csv.hpp"
#include "data/experiences.hpp"
#include "data/synth.hpp"
#include "eval/threshold.hpp"
#include "ml/scaler.hpp"
#include "obs/metrics.hpp"
#include "serve/artifact.hpp"
#include "serve/flow_record.hpp"
#include "serve/service.hpp"

namespace {

using namespace cnd;

std::map<std::string, std::string> parse_flags(int argc, char** argv, int from) {
  std::map<std::string, std::string> out;
  for (int i = from; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) continue;
    const auto eq = a.find('=');
    std::string key, val;
    if (eq == std::string::npos) {
      key.assign(a, 2, std::string::npos);
      val.assign(1, '1');
    } else {
      key.assign(a, 2, eq - 2);
      val.assign(a, eq + 1, std::string::npos);
    }
    out.insert_or_assign(std::move(key), std::move(val));
  }
  return out;
}

std::string flag(const std::map<std::string, std::string>& f, const std::string& k,
                 const std::string& def) {
  auto it = f.find(k);
  return it == f.end() ? def : it->second;
}

int usage() {
  std::fprintf(stderr,
               "usage: cnd <gen|run|score|apply|pack|snapshot|restore|serve|"
               "detectors> [--flags]\n"
               "  gen       --dataset=x_iiotid|wustl_iiot|cicids2017|unsw_nb15 "
               "--out=FILE [--scale=0.25] [--seed=42]\n"
               "  run       --data=FILE [--detector=CND-IDS] [--experiences=5] "
               "[--seed=7] [--epochs=8] [--ann-nprobe=N]\n"
               "            --detector takes any name from `cnd detectors`, "
               "e.g. Adaptive (drift-gated CND-IDS: refits only when "
               "Page-Hinkley signals drift)\n"
               "            --ann-nprobe=N (N >= 1) probes N IVF clusters "
               "instead of exact neighbor search (docs/ANN.md); only LOF, "
               "kNN, CND-IDS, and Adaptive have a neighbor path\n"
               "  score     --train=FILE --test=FILE [--quantile=0.99] "
               "[--epochs=8] [--save-model=FILE]\n"
               "  apply     --model=FILE --test=FILE\n"
               "  pack      --data=FILE --out=FILE\n"
               "  snapshot  --data=FILE --out=FILE [--detector=CND-IDS] "
               "[--seed=7] [--epochs=8] [--fpr=0.01]\n"
               "  restore   --artifact=FILE --test=FILE\n"
               "  serve     --flows=FILE --clean=FILE [--detector=CND-IDS] "
               "[--shards=2] [--batch=256] [--queue=8] [--adapt-every=0] "
               "[--seed=7] [--epochs=8]\n"
               "  detectors\n");
  return 2;
}

int cmd_detectors() {
  for (const std::string& name : core::detector_names()) {
    const char* kind = "";
    switch (core::detector_kind(name)) {
      case core::DetectorKind::kContinual: kind = "continual"; break;
      case core::DetectorKind::kStaticNovelty: kind = "static (fit on N_c)"; break;
      case core::DetectorKind::kStaticOutlier:
        kind = "static (fit on first stream)";
        break;
    }
    // Snapshot capability decides which detectors `cnd snapshot`/`cnd serve`
    // accept; construction without training is cheap.
    const bool snap = core::make_detector(name)->supports_snapshot();
    std::printf("%-10s %-28s %-10s %s\n", name.c_str(), kind,
                snap ? "snapshot" : "-",
                core::detector_description(name).c_str());
  }
  return 0;
}

int cmd_gen(const std::map<std::string, std::string>& f) {
  const std::string name = flag(f, "dataset", "unsw_nb15");
  const std::string out = flag(f, "out", "");
  if (out.empty()) return usage();
  const double scale = std::stod(flag(f, "scale", "0.25"));
  const auto seed = static_cast<std::uint64_t>(std::stoull(flag(f, "seed", "42")));

  data::Dataset ds;
  if (name == "x_iiotid")
    ds = data::make_x_iiotid(seed, scale);
  else if (name == "wustl_iiot")
    ds = data::make_wustl_iiot(seed, scale);
  else if (name == "cicids2017")
    ds = data::make_cicids2017(seed, scale);
  else if (name == "unsw_nb15")
    ds = data::make_unsw_nb15(seed, scale);
  else
    return usage();

  data::save_csv(ds, out);
  std::printf("wrote %s: %zu rows, %zu features, %zu attack families\n",
              out.c_str(), ds.size(), ds.n_features(), ds.n_attack_classes());
  return 0;
}

int cmd_run(const std::map<std::string, std::string>& f) {
  const std::string path = flag(f, "data", "");
  if (path.empty()) return usage();
  const auto m = static_cast<std::size_t>(std::stoul(flag(f, "experiences", "5")));
  const auto seed = static_cast<std::uint64_t>(std::stoull(flag(f, "seed", "7")));

  data::Dataset ds = data::load_csv(path, "cli");
  data::ExperienceSet es =
      data::prepare_experiences(ds, {.n_experiences = m, .seed = seed});

  const std::string detector = flag(f, "detector", "CND-IDS");
  core::DetectorConfig cfg;
  cfg.seed = seed;
  cfg.cnd.cfe.epochs =
      static_cast<std::size_t>(std::stoul(flag(f, "epochs", "8")));
  cfg.cnd.seed = seed;
  const auto nprobe =
      static_cast<std::size_t>(std::stoul(flag(f, "ann-nprobe", "0")));
  if (f.count("ann-nprobe") != 0) {
    if (nprobe == 0) {
      std::fprintf(stderr,
                   "run: --ann-nprobe must be >= 1 (omit the flag for exact "
                   "neighbor search)\n");
      return 2;
    }
    cfg.lof.ann.nprobe = nprobe;
    cfg.knn.ann.nprobe = nprobe;
    cfg.cnd.cfe.ann.nprobe = nprobe;
    if (detector != "LOF" && detector != "kNN" && detector != "CND-IDS" &&
        detector != "Adaptive")
      std::fprintf(stderr,
                   "run: warning: --ann-nprobe has no effect on '%s' — only "
                   "LOF, kNN, CND-IDS, and Adaptive run neighbor queries\n",
                   detector.c_str());
  }
  const core::RunResult res =
      core::run_detector(detector, cfg, es, {.seed = seed, .verbose = true});

  std::printf("\nAVG=%.4f FwdTrans=%.4f BwdTrans=%+.4f  (fit %.0f ms, "
              "%.4f ms/sample inference)\n",
              res.avg(), res.fwd(), res.bwd(), res.fit_ms_total,
              res.infer_ms_per_sample);
  return 0;
}

int cmd_score(const std::map<std::string, std::string>& f) {
  const std::string train_path = flag(f, "train", "");
  const std::string test_path = flag(f, "test", "");
  if (train_path.empty() || test_path.empty()) return usage();
  const double q = std::stod(flag(f, "quantile", "0.99"));

  data::Dataset train = data::load_csv(train_path, "train");
  data::Dataset test = data::load_csv(test_path, "test");

  // N_c = rows labeled normal in the training file; the full (unlabeled)
  // training matrix is the stream CND-IDS adapts to.
  std::vector<std::size_t> normal_rows;
  for (std::size_t i = 0; i < train.size(); ++i)
    if (train.y[i] == 0) normal_rows.push_back(i);
  if (normal_rows.size() < 16) {
    std::fprintf(stderr, "score: need at least 16 normal rows in --train\n");
    return 1;
  }

  ml::StandardScaler scaler;
  Matrix n_clean = scaler.fit_transform(train.x.take_rows(normal_rows));
  Matrix x_stream = scaler.transform(train.x);
  Matrix x_test = scaler.transform(test.x);

  core::DetectorConfig cfg;
  cfg.cnd.cfe.epochs =
      static_cast<std::size_t>(std::stoul(flag(f, "epochs", "8")));
  const auto detp = core::make_detector("CND-IDS", cfg);
  // The artifact format freezes the concrete CND-IDS scoring path (CFE +
  // PCA), so this command needs the implementation, not just the interface.
  auto& det = dynamic_cast<core::CndIds&>(*detp);
  Matrix seed_x;
  std::vector<int> seed_y;
  det.setup(core::SetupContext{n_clean, seed_x, seed_y});
  det.observe_experience(x_stream);

  const double tau = eval::quantile_threshold(det.score(n_clean), q);

  const std::string model_path = flag(f, "save-model", "");
  if (!model_path.empty()) {
    io::InferenceModel(det, scaler, tau).save(model_path);
    std::fprintf(stderr, "saved model artifact to %s\n", model_path.c_str());
  }

  const auto scores = det.score(x_test);
  std::printf("# row,score,verdict  (threshold=%.6f at q=%.2f)\n", tau, q);
  for (std::size_t i = 0; i < scores.size(); ++i)
    std::printf("%zu,%.6f,%s\n", i, scores[i],
                scores[i] > tau ? "attack" : "normal");
  return 0;
}

int cmd_apply(const std::map<std::string, std::string>& f) {
  const std::string model_path = flag(f, "model", "");
  const std::string test_path = flag(f, "test", "");
  if (model_path.empty() || test_path.empty()) return usage();

  io::InferenceModel model = io::InferenceModel::load(model_path);
  data::Dataset test = data::load_csv(test_path, "test");
  const auto scores = model.score(test.x);
  const auto verdicts = model.predict(test.x);
  const bool explain = flag(f, "explain", "") == "1";

  std::vector<std::vector<core::FeatureAttribution>> attrs;
  if (explain)
    attrs = core::explain_fre(model.pca(), model.encode(test.x), /*top_k=*/3);

  std::printf("# row,score,verdict%s  (threshold=%.6f from artifact)\n",
              explain ? ",top_latent_features" : "", model.threshold());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    std::printf("%zu,%.6f,%s", i, scores[i], verdicts[i] ? "attack" : "normal");
    if (explain && verdicts[i])
      std::printf(",\"%s\"", core::format_attribution(attrs[i]).c_str());
    std::printf("\n");
  }
  return 0;
}

int cmd_pack(const std::map<std::string, std::string>& f) {
  const std::string data_path = flag(f, "data", "");
  const std::string out = flag(f, "out", "");
  if (data_path.empty() || out.empty()) return usage();

  data::Dataset ds = data::load_csv(data_path, "pack");
  serve::FlowRecordWriter writer(out, ds.x.cols());
  writer.append(ds.x);
  writer.close();
  std::printf("packed %zu flows x %zu features into %s\n", writer.rows_written(),
              ds.x.cols(), out.c_str());
  return 0;
}

/// Train a snapshot-capable registry detector the way `cnd score` trains
/// CND-IDS: normal rows form N_c, the full (unlabeled) file is the first
/// stream. Shared by `cnd snapshot` and `cnd serve`'s bootstrap.
std::unique_ptr<core::ContinualDetector> train_for_serving(
    const data::Dataset& train, const std::string& detector,
    const core::DetectorConfig& cfg, Matrix& n_clean_out) {
  std::vector<std::size_t> normal_rows;
  for (std::size_t i = 0; i < train.size(); ++i)
    if (train.y[i] == 0) normal_rows.push_back(i);
  if (normal_rows.size() < 32)
    throw std::invalid_argument("need at least 32 normal rows in the data file");
  n_clean_out = train.x.take_rows(normal_rows);

  auto det = core::make_detector(detector, cfg);
  if (!det->supports_snapshot())
    throw std::invalid_argument(
        detector + " does not support snapshots (see `cnd detectors`)");
  Matrix seed_x;
  std::vector<int> seed_y;
  det->setup(core::SetupContext{n_clean_out, seed_x, seed_y});
  det->observe_experience(train.x);
  return det;
}

int cmd_snapshot(const std::map<std::string, std::string>& f) {
  const std::string data_path = flag(f, "data", "");
  const std::string out = flag(f, "out", "");
  if (data_path.empty() || out.empty()) return usage();
  const std::string detector = flag(f, "detector", "CND-IDS");
  const auto seed = static_cast<std::uint64_t>(std::stoull(flag(f, "seed", "7")));
  const double fpr = std::stod(flag(f, "fpr", "0.01"));

  core::DetectorConfig cfg;
  cfg.seed = seed;
  cfg.cnd.seed = seed;
  cfg.cnd.cfe.epochs =
      static_cast<std::size_t>(std::stoul(flag(f, "epochs", "8")));

  data::Dataset train = data::load_csv(data_path, "snapshot");
  Matrix n_clean;
  const auto det = train_for_serving(train, detector, cfg, n_clean);
  const double tau = eval::pot_threshold(
      det->score(n_clean), {.tail_quantile = 0.9, .target_prob = fpr});

  const auto artifact = serve::make_artifact(1, detector, tau, *det);
  serve::save_artifact(out, *artifact);
  std::printf("saved %s artifact v%llu to %s (threshold %.6g, %zu model bytes)\n"
              "  %s\n",
              detector.c_str(),
              static_cast<unsigned long long>(artifact->version), out.c_str(),
              tau, artifact->model_bytes.size(),
              core::detector_description(detector).c_str());
  return 0;
}

int cmd_restore(const std::map<std::string, std::string>& f) {
  const std::string artifact_path = flag(f, "artifact", "");
  const std::string test_path = flag(f, "test", "");
  if (artifact_path.empty() || test_path.empty()) return usage();

  const serve::ServingArtifact artifact = serve::load_artifact(artifact_path);
  const auto replica = serve::restore_replica(artifact);
  std::fprintf(stderr, "restored %s replica from artifact v%llu\n  %s\n",
               artifact.detector.c_str(),
               static_cast<unsigned long long>(artifact.version),
               core::detector_description(artifact.detector).c_str());

  data::Dataset test = data::load_csv(test_path, "test");
  const auto scores = replica->score(test.x);
  std::printf("# row,score,verdict  (threshold=%.6f from artifact v%llu)\n",
              artifact.threshold,
              static_cast<unsigned long long>(artifact.version));
  for (std::size_t i = 0; i < scores.size(); ++i)
    std::printf("%zu,%.6f,%s\n", i, scores[i],
                scores[i] > artifact.threshold ? "attack" : "normal");
  return 0;
}

/// Upper bucket edge reaching q of the histogram's samples (the same
/// estimate bench_serving reports).
double hist_quantile(const obs::Histogram& h, double q) {
  const std::uint64_t total = h.count();
  if (total == 0) return 0.0;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(total) + 0.5);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < h.n_buckets(); ++i) {
    cum += h.bucket_count(i);
    if (cum >= target)
      return h.bounds()[i < h.bounds().size() ? i : h.bounds().size() - 1];
  }
  return h.bounds().back();
}

int cmd_serve(const std::map<std::string, std::string>& f) {
  const std::string flows_path = flag(f, "flows", "");
  const std::string clean_path = flag(f, "clean", "");
  if (flows_path.empty() || clean_path.empty()) return usage();
  const auto seed = static_cast<std::uint64_t>(std::stoull(flag(f, "seed", "7")));
  const auto batch_rows =
      static_cast<std::size_t>(std::stoul(flag(f, "batch", "256")));
  if (batch_rows == 0) return usage();

  serve::ServiceConfig cfg;
  cfg.detector = flag(f, "detector", "CND-IDS");
  cfg.detector_cfg.seed = seed;
  cfg.detector_cfg.cnd.seed = seed;
  cfg.detector_cfg.cnd.cfe.epochs =
      static_cast<std::size_t>(std::stoul(flag(f, "epochs", "8")));
  cfg.shards = static_cast<std::size_t>(std::stoul(flag(f, "shards", "2")));
  cfg.queue_capacity = static_cast<std::size_t>(std::stoul(flag(f, "queue", "8")));
  cfg.adapt_interval_flows =
      static_cast<std::size_t>(std::stoul(flag(f, "adapt-every", "0")));

  // Latency histograms need observability on; metrics are a write-only side
  // channel, so the scores are unaffected (docs/OBSERVABILITY.md).
  obs::set_enabled(true);

  serve::FlowRecordFile file(flows_path);
  data::Dataset clean = data::load_csv(clean_path, "clean");
  std::vector<std::size_t> normal_rows;
  for (std::size_t i = 0; i < clean.size(); ++i)
    if (clean.y[i] == 0) normal_rows.push_back(i);
  if (normal_rows.size() < 32) {
    std::fprintf(stderr, "serve: need at least 32 normal rows in --clean\n");
    return 1;
  }
  if (file.dim() != clean.x.cols()) {
    std::fprintf(stderr, "serve: flow file has %zu features, --clean has %zu\n",
                 file.dim(), clean.x.cols());
    return 1;
  }

  serve::ScoringService svc(cfg);
  eval::Timer boot_timer;
  svc.bootstrap(clean.x.take_rows(normal_rows));
  std::fprintf(stderr, "serve: bootstrapped %s on %zu clean rows (%.0f ms), "
               "threshold %.6g, %zu shard(s)\n",
               cfg.detector.c_str(), normal_rows.size(),
               boot_timer.elapsed_ms(), svc.threshold(), cfg.shards);

  Matrix batch;
  std::size_t retries = 0;
  eval::Timer soak_timer;
  for (std::size_t lo = 0; lo < file.rows(); lo += batch_rows) {
    file.copy_rows_into(lo, std::min(lo + batch_rows, file.rows()), batch);
    while (!svc.try_submit(batch)) {
      ++retries;
      std::this_thread::yield();
    }
  }
  svc.drain();
  const double soak_ms = soak_timer.elapsed_ms();
  svc.shutdown();

  std::size_t alarms = 0;
  for (const auto& b : svc.results())
    for (int v : b.verdicts) alarms += static_cast<std::size_t>(v);
  const obs::Histogram& score_ms = obs::metrics().histogram("serve.score_ms");

  std::printf("flows          %llu\n",
              static_cast<unsigned long long>(svc.flows_admitted()));
  std::printf("flows/sec      %.0f\n",
              static_cast<double>(svc.flows_admitted()) / (soak_ms / 1000.0));
  std::printf("latency        p50 <= %.3g ms, p99 <= %.3g ms per batch\n",
              hist_quantile(score_ms, 0.50), hist_quantile(score_ms, 0.99));
  std::printf("rejected       %llu (%zu producer retries)\n",
              static_cast<unsigned long long>(svc.rejected()), retries);
  std::printf("adaptations    %llu (artifact v%llu, %llu replica swaps)\n",
              static_cast<unsigned long long>(svc.adaptations()),
              static_cast<unsigned long long>(svc.artifact_version()),
              static_cast<unsigned long long>(svc.swaps()));
  std::printf("alarms         %zu (rate %.4f)\n", alarms,
              static_cast<double>(alarms) /
                  static_cast<double>(svc.flows_admitted()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const auto flags = parse_flags(argc, argv, 2);
  try {
    if (cmd == "gen") return cmd_gen(flags);
    if (cmd == "run") return cmd_run(flags);
    if (cmd == "score") return cmd_score(flags);
    if (cmd == "apply") return cmd_apply(flags);
    if (cmd == "pack") return cmd_pack(flags);
    if (cmd == "snapshot") return cmd_snapshot(flags);
    if (cmd == "restore") return cmd_restore(flags);
    if (cmd == "serve") return cmd_serve(flags);
    if (cmd == "detectors") return cmd_detectors();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cnd %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  return usage();
}
