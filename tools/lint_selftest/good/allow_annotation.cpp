// cnd-lint self-test corpus: the inline escape hatch silences a named rule
// on the annotated line (or the line directly below the annotation).
// cnd-lint-path: src/eval/allow_annotation.cpp
#include <chrono>

namespace cnd::eval {

double sanctioned_measurement() {
  const auto t0 = std::chrono::steady_clock::now();  // cnd-lint: allow(no-clock)
  // cnd-lint: allow(no-clock) — previous-line form
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// Prose mentioning std::rand() or strcpy( in a comment is not a finding, and
// neither is the string literal below.
const char* kDoc = "never call sprintf( or srand( in this codebase";

}  // namespace cnd::eval
