// cnd-lint self-test corpus: src/obs is the sanctioned home for clock reads.
// cnd-lint-path: src/obs/obs_clock.cpp
#include <chrono>

namespace cnd::obs {

double now_ms() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(t).count();
}

}  // namespace cnd::obs
