// Locking through the annotated wrappers: the sanctioned idiom, plus the
// escape hatch for a vetted interop site (e.g. handing a native handle to a
// third-party API).

#include "runtime/annotated_mutex.hpp"

namespace cnd::core {

struct Tally {
  runtime::AnnotatedMutex mu;
  long total CND_GUARDED_BY(mu) = 0;

  void add(long v) {
    runtime::MutexLock lk(mu);
    total += v;
  }
};

// cnd-lint: allow(no-naked-mutex) — vetted interop: external API wants the raw type
using NativeMutex = std::mutex;

}  // namespace cnd::core
