// cnd-lint self-test corpus: the documented seed plumbing may own a raw
// engine — this path is the one exemption for no-raw-rng and
// no-std-distribution.
// cnd-lint-path: src/tensor/rng.hpp
#pragma once

#include <cstdint>
#include <random>

namespace cnd {

class FakeRng {
 public:
  explicit FakeRng(std::uint64_t seed) : engine_(seed) {}

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace cnd
