// cnd-lint self-test corpus (known-good).
// cnd-lint-path: src/serve/stable_id_hash.cpp
#include <cstddef>
#include <cstdint>
#include <functional>

namespace cnd {

// Sharding by a stable id is deterministic across runs: std::hash over an
// integral key never sees an address.
std::size_t shard_of(std::uint64_t flow_id, std::size_t shards) {
  return std::hash<std::uint64_t>{}(flow_id) % shards;
}

}  // namespace cnd
