// cnd-lint self-test corpus: ordinary core-layer code that must lint clean.
// cnd-lint-path: src/core/clean_core.cpp
#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"
#include "linalg/distance.hpp"

#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace cnd {

// Ordered containers iterate deterministically: fine to feed output.
double emit_sorted(const std::map<std::string, double>& scores) {
  double total = 0.0;
  for (const auto& [name, s] : scores) total += s;
  return total;
}

// Seeded repo RNG is the sanctioned randomness source.
double sample(Rng& rng) { return rng.normal(0.0, 1.0); }

// Bounded formatting is allowed (the *unbounded* sprintf is banned).
void format_row(char* buf, std::size_t n, double v) {
  std::snprintf(buf, n, "%.17g", v);
}

}  // namespace cnd
