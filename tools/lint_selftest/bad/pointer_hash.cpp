// cnd-lint self-test corpus (known-bad).
// cnd-lint-expect: no-pointer-hash
// cnd-lint-path: src/serve/pointer_hash.cpp
#include <cstddef>
#include <functional>

namespace cnd {

struct Flow;

// Sharding by pointer identity: the same flow lands on a different shard
// every run because the heap address (ASLR) feeds the hash.
std::size_t shard_of(const Flow* flow, std::size_t shards) {
  return std::hash<const Flow*>{}(flow) % shards;
}

}  // namespace cnd
