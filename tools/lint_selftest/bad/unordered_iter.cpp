// cnd-lint self-test corpus (known-bad).
// cnd-lint-expect: no-unordered-iter
// cnd-lint-path: src/io/unordered_iter.cpp
#include <string>
#include <unordered_map>
#include <vector>

namespace cnd {

// Iteration order of unordered containers is unspecified: rows written from
// this loop land in a different order across platforms/runs.
std::vector<std::string> emit_rows(const std::unordered_map<std::string, double>& scores) {
  std::vector<std::string> rows;
  for (const auto& [name, s] : scores) {
    rows.push_back(name + "," + std::to_string(s));
  }
  return rows;
}

}  // namespace cnd
