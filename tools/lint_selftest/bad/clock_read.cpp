// cnd-lint self-test corpus (known-bad).
// cnd-lint-expect: no-clock
// cnd-lint-path: src/core/clock_read.cpp
#include <chrono>

namespace cnd {

// Clock reads outside src/obs, including through a type alias.
double naughty_elapsed() {
  using clock = std::chrono::high_resolution_clock;
  const auto t0 = clock::now();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace cnd
