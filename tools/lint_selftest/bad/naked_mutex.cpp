// cnd-lint-expect: no-naked-mutex
// A raw std::mutex + std::lock_guard pair: invisible to -Wthread-safety and
// to cnd_analyze's lock-order/wait-free rules. Must go through the annotated
// wrappers in runtime/annotated_mutex.hpp.

namespace cnd::core {

struct Tally {
  std::mutex mu;
  long total = 0;

  void add(long v) {
    std::lock_guard<std::mutex> lk(mu);
    total += v;
  }
};

}  // namespace cnd::core
