// cnd-lint self-test corpus (known-bad).
// cnd-lint-expect: no-std-distribution
// cnd-lint-path: src/ml/std_distribution.cpp
#include <random>

namespace cnd {

// The adapter's algorithm is implementation-defined: the same seed draws
// different values under libstdc++ vs libc++. Portable draws live in
// cnd::Rng (src/tensor/rng.cpp).
double bad_normal(unsigned long long& state) {
  std::normal_distribution<double> dist(0.0, 1.0);
  (void)dist;
  return static_cast<double>(state) * 0.0;
}

}  // namespace cnd
