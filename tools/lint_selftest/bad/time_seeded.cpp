// cnd-lint self-test corpus (known-bad): the classic time-seeded RNG trips
// both the RNG rule and the clock rule.
// cnd-lint-expect: no-raw-rng, no-clock
// cnd-lint-path: src/data/time_seeded.cpp
#include <cstdlib>
#include <ctime>

namespace cnd {

void seed_from_wall_clock() { std::srand(static_cast<unsigned>(time(nullptr))); }

}  // namespace cnd
