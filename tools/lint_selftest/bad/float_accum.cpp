// cnd-lint self-test corpus (known-bad).
// cnd-lint-expect: no-float
// cnd-lint-path: src/linalg/float_accum.cpp
#include <cstddef>
#include <vector>

namespace cnd {

// The bit-exactness contract is stated for double accumulation; a float
// accumulator rounds differently depending on vectorisation and order.
double lossy_sum(const std::vector<double>& xs) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < xs.size(); ++i) acc += static_cast<float>(xs[i]);
  return acc;
}

}  // namespace cnd
