// cnd-lint self-test corpus (known-bad).
// cnd-lint-expect: no-raw-rng
// cnd-lint-path: src/ml/raw_rng.cpp
#include <cstdlib>
#include <random>

namespace cnd {

// Unseeded/device randomness breaks run-to-run reproducibility.
double bad_sample() {
  std::random_device rd;
  std::mt19937 gen(rd());
  return static_cast<double>(std::rand()) / RAND_MAX;
}

}  // namespace cnd
