// cnd-lint self-test corpus (known-bad).
// cnd-lint-expect: no-banned-fn
// cnd-lint-path: src/io/banned_fn.cpp
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cnd {

int parse_and_format(char* dst, const char* src) {
  strcpy(dst, src);
  sprintf(dst, "%d", 42);
  return atoi(src);
}

}  // namespace cnd
