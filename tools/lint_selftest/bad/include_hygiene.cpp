// cnd-lint self-test corpus (known-bad).
// cnd-lint-expect: include-hygiene
// cnd-lint-path: src/core/include_hygiene.cpp
#include "../tensor/matrix.hpp"
#include <bits/stdc++.h>
#include <tensor/rng.hpp>

namespace cnd {
int unused() { return 0; }
}  // namespace cnd
