// cnd-lint self-test corpus (known-bad).
// cnd-lint-expect: layering
// cnd-lint-path: src/tensor/layering.cpp
#include "nn/linear.hpp"
#include "tensor/matrix.hpp"

namespace cnd {

// src/tensor sits below src/nn in the dependency order; reaching up inverts
// the layer graph declared in src/CMakeLists.txt.
int upward_dependency() { return 1; }

}  // namespace cnd
