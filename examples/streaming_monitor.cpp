// Streaming monitor: CND-IDS without experience boundaries.
//
// The paper's protocol hands the model whole experiences; a real monitor
// sees mini-batches. StreamingCndIds scores each batch immediately and
// decides for itself when to adapt: a Page-Hinkley detector watches the
// batch-mean anomaly score and triggers an adaptation round when the stream
// shifts (with a buffer-size cap as a fallback). This example replays a
// drifting CICIDS2017-like stream in 64-flow batches and logs every
// adaptation the monitor chose to make.
//
//   ./streaming_monitor [seed]
#include <cstdio>
#include <cstdlib>

#include "core/streaming_cnd_ids.hpp"
#include "data/experiences.hpp"
#include "data/synth.hpp"
#include "eval/metrics.hpp"

int main(int argc, char** argv) {
  using namespace cnd;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 21;

  // Build the drifting stream: reuse the experience machinery for the clean
  // window + a time-ordered labeled stream, then replay it batch by batch.
  data::Dataset ds = data::make_cicids2017(seed, /*size_scale=*/0.5);
  data::ExperienceSet es =
      data::prepare_experiences(ds, {.n_experiences = 5, .seed = seed});

  core::StreamingConfig cfg;
  cfg.detector.cfe.epochs = 6;
  cfg.detector.seed = seed;
  cfg.min_buffer_rows = 256;
  cfg.max_buffer_rows = 768;
  cfg.ph_delta = 0.5;   // FRE means are noisy; tolerate small wobble
  cfg.ph_lambda = 40.0;
  core::StreamingCndIds monitor(cfg);
  monitor.bootstrap(es.n_clean);
  std::printf("bootstrapped on %zu vouched flows\n\n", es.n_clean.rows());

  const std::size_t batch_rows = 64;
  std::size_t batch_no = 0;
  eval::Confusion total;
  for (const auto& exp : es.experiences) {
    // Replay this window's labeled test flows as the live stream.
    for (std::size_t start = 0; start + batch_rows <= exp.x_test.rows();
         start += batch_rows) {
      std::vector<std::size_t> idx;
      for (std::size_t i = 0; i < batch_rows; ++i) idx.push_back(start + i);
      Matrix batch = exp.x_test.take_rows(idx);
      std::vector<int> truth;
      for (std::size_t i : idx) truth.push_back(exp.y_test[i]);

      const core::StreamBatchResult r = monitor.process_batch(batch);
      const eval::Confusion c = eval::confusion(r.verdicts, truth);
      total.tp += c.tp;
      total.fp += c.fp;
      total.tn += c.tn;
      total.fn += c.fn;

      if (r.adapted)
        std::printf("batch %4zu: ADAPTED (%s, %zu adaptations so far, "
                    "threshold now %.2f)\n",
                    batch_no, r.drift_signal ? "drift signal" : "buffer cap",
                    monitor.adaptations(), r.threshold);
      ++batch_no;
    }
  }

  std::printf("\nstream replay done: %zu flows in %zu batches, %zu adaptations\n",
              monitor.flows_seen(), batch_no, monitor.adaptations());
  std::printf("online totals: precision %.3f recall %.3f F1 %.3f "
              "(label-free thresholds throughout)\n",
              eval::precision(total), eval::recall(total), eval::f1_score(total));
  return 0;
}
