// Deployment-style streaming scenario on WUSTL-IIoT-like traffic.
//
// Models an IIoT security monitor: the operator vouches for a window of
// pre-deployment traffic (N_c), then the monitor watches the live stream in
// windows ("experiences"). After each window it adapts its feature extractor
// to the unlabeled traffic it just saw, re-fits the PCA detector, and emits
// per-flow verdicts using a label-free quantile threshold calibrated on the
// window's own unlabeled stream (no Best-F oracle here — this is deployment,
// nobody hands you test labels). Calibrating on the live stream rather than
// the pre-deployment N_c keeps the threshold tracking normal drift; the
// quantile assumes attack prevalence stays below ~5% per window, which
// matches WUSTL-IIoT's 7% overall attack share spread over four windows.
//
//   ./iiot_stream [seed]
#include <cstdio>
#include <cstdlib>

#include "core/cnd_ids.hpp"
#include "data/experiences.hpp"
#include "data/synth.hpp"
#include "eval/metrics.hpp"
#include "eval/threshold.hpp"

int main(int argc, char** argv) {
  using namespace cnd;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  data::Dataset ds = data::make_wustl_iiot(seed, /*size_scale=*/0.25);
  data::ExperienceSet es =
      data::prepare_experiences(ds, {.n_experiences = 4, .seed = seed});

  core::CndIdsConfig cfg;
  cfg.cfe.epochs = 8;
  cfg.seed = seed;
  core::CndIds monitor(cfg);
  Matrix no_seed_x;
  std::vector<int> no_seed_y;
  monitor.setup(core::SetupContext{es.n_clean, no_seed_x, no_seed_y});

  std::printf("IIoT monitor online: %zu clean flows vouched, %zu stream windows\n\n",
              es.n_clean.rows(), es.size());

  for (std::size_t w = 0; w < es.size(); ++w) {
    const auto& win = es.experiences[w];

    // Adapt to the window's unlabeled traffic (normal drift + whatever new
    // attack family appeared), then recalibrate the alarm threshold on the
    // window's own (unlabeled, lightly contaminated) stream.
    monitor.observe_experience(win.x_train);
    const double tau =
        eval::quantile_threshold(monitor.score(win.x_train), /*q=*/0.95);

    // Verdicts for the window's held-out flows.
    const std::vector<double> scores = monitor.score(win.x_test);
    const std::vector<int> verdicts = eval::apply_threshold(scores, tau);
    const eval::Confusion c = eval::confusion(verdicts, win.y_test);

    std::size_t alarms = 0;
    for (int v : verdicts) alarms += static_cast<std::size_t>(v);
    std::printf("window %zu: new families {", w);
    for (std::size_t i = 0; i < win.attack_classes_here.size(); ++i)
      std::printf("%s%s", i ? ", " : "",
                  es.class_names[static_cast<std::size_t>(
                                     win.attack_classes_here[i])]
                      .c_str());
    std::printf("}\n");
    std::printf("  %zu/%zu flows alarmed | precision %.3f recall %.3f F1 %.3f\n",
                alarms, verdicts.size(), eval::precision(c), eval::recall(c),
                eval::f1_score(c));

    // Drift report: how far has this window's normal traffic moved from the
    // vouched baseline, in detector-score terms?
    double drift_score = 0.0;
    std::size_t n_norm = 0;
    for (std::size_t i = 0; i < scores.size(); ++i)
      if (win.y_test[i] == 0) {
        drift_score += scores[i];
        ++n_norm;
      }
    std::printf("  mean normal-flow score %.4f (threshold %.4f)\n\n",
                drift_score / static_cast<double>(n_norm), tau);
  }
  std::printf("monitor shut down after %zu windows, %zu encoder snapshots kept\n",
              es.size(), monitor.cfe().n_experiences_seen());
  return 0;
}
