// Zero-day detection: continual CND-IDS versus a frozen PCA detector.
//
// Both detectors see the same early traffic. Then waves of brand-new attack
// families (never present in any training window) hit the network while the
// normal traffic keeps drifting. The frozen detector was fit once on the
// vouched clean window; CND-IDS has been adapting its feature space to the
// unlabeled stream. The example prints both detectors' PR-AUC and Best-F F1
// on every future wave — the paper's FwdTrans story in one scenario.
//
//   ./zero_day_detection [seed]
#include <cstdio>
#include <cstdlib>

#include "core/cnd_ids.hpp"
#include "data/experiences.hpp"
#include "data/synth.hpp"
#include "eval/metrics.hpp"
#include "eval/threshold.hpp"
#include "ml/pca.hpp"

int main(int argc, char** argv) {
  using namespace cnd;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  // UNSW-NB15-like stream, 5 experiences. Both detectors only ever see the
  // first two; experiences 2-4 are successive zero-day waves.
  data::Dataset ds = data::make_unsw_nb15(seed, /*size_scale=*/0.25);
  data::ExperienceSet es =
      data::prepare_experiences(ds, {.n_experiences = 5, .seed = seed});
  const std::size_t n_train_windows = 2;

  // Frozen baseline: PCA fit once on the vouched clean window.
  ml::Pca frozen({.explained_variance = 0.95});
  frozen.fit(es.n_clean);

  // Continual: CND-IDS adapting to each deployment window it has seen.
  core::CndIdsConfig cfg;
  cfg.cfe.epochs = 8;
  cfg.seed = seed;
  core::CndIds cnd(cfg);
  Matrix no_seed_x;
  std::vector<int> no_seed_y;
  cnd.setup(core::SetupContext{es.n_clean, no_seed_x, no_seed_y});
  for (std::size_t w = 0; w < n_train_windows; ++w) {
    cnd.observe_experience(es.experiences[w].x_train);
    std::printf("adapted to window %zu (families", w);
    for (int c : es.experiences[w].attack_classes_here) std::printf(" %d", c);
    std::printf(")\n");
  }

  std::printf("\n  %-8s %-14s %9s %9s %9s %9s\n", "wave", "families",
              "PCA AP", "CND AP", "PCA F1", "CND F1");
  double sum_ap_frozen = 0.0, sum_ap_cnd = 0.0, sum_f1_frozen = 0.0,
         sum_f1_cnd = 0.0;
  const std::size_t n_waves = es.size() - n_train_windows;
  for (std::size_t w = n_train_windows; w < es.size(); ++w) {
    const auto& wave = es.experiences[w];
    const auto s_frozen = frozen.score(wave.x_test);
    const auto s_cnd = cnd.score(wave.x_test);

    const double ap_f = eval::pr_auc(s_frozen, wave.y_test);
    const double ap_c = eval::pr_auc(s_cnd, wave.y_test);
    const double f1_f = eval::best_f_threshold(s_frozen, wave.y_test).f1;
    const double f1_c = eval::best_f_threshold(s_cnd, wave.y_test).f1;
    sum_ap_frozen += ap_f;
    sum_ap_cnd += ap_c;
    sum_f1_frozen += f1_f;
    sum_f1_cnd += f1_c;

    std::string fams;
    for (int c : wave.attack_classes_here) {
      if (!fams.empty()) fams += ',';
      fams += std::to_string(c);
    }
    std::printf("  %-8zu %-14s %9.4f %9.4f %9.4f %9.4f\n", w, fams.c_str(),
                ap_f, ap_c, f1_f, f1_c);
  }
  const double n = static_cast<double>(n_waves);
  std::printf("  %-8s %-14s %9.4f %9.4f %9.4f %9.4f\n", "mean", "-",
              sum_ap_frozen / n, sum_ap_cnd / n, sum_f1_frozen / n,
              sum_f1_cnd / n);
  std::printf("\nCND-IDS vs frozen PCA across the zero-day waves: %+.1f%% "
              "PR-AUC, %+.1f%% F1\n",
              100.0 * (sum_ap_cnd - sum_ap_frozen) / n,
              100.0 * (sum_f1_cnd - sum_f1_frozen) / n);
  return 0;
}
