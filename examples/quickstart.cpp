// Quickstart: the smallest complete CND-IDS pipeline.
//
// Generates a synthetic intrusion dataset, prepares the continual-learning
// experiences exactly as the paper's protocol prescribes (clean-normal
// holdout, per-experience unlabeled train streams, labeled test splits),
// runs CND-IDS through every experience, and prints the continual-learning
// summary metrics.
//
//   ./quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "core/cnd_ids.hpp"
#include "core/experience_runner.hpp"
#include "data/experiences.hpp"
#include "data/synth.hpp"

int main(int argc, char** argv) {
  using namespace cnd;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 1. A UNSW-NB15-like dataset at small scale: ~2.5k flows, 10 attack
  //    families appearing over time, drifting normal traffic.
  data::Dataset ds = data::make_unsw_nb15(seed, /*size_scale=*/0.25);
  std::printf("dataset %s: %zu flows, %zu features, %zu attack families\n",
              ds.name.c_str(), ds.size(), ds.n_features(),
              ds.n_attack_classes());

  // 2. Continual-learning data preparation (paper section III-A): 10% of the
  //    normal stream becomes the clean holdout N_c; the rest is cut into 5
  //    experiences, each introducing new attack families.
  data::ExperienceSet es =
      data::prepare_experiences(ds, {.n_experiences = 5, .seed = seed});
  std::printf("prepared %zu experiences, |N_c| = %zu\n\n", es.size(),
              es.n_clean.rows());

  // 3. CND-IDS with the paper's hyperparameters (256-wide MLP autoencoder,
  //    lambda_R = lambda_CL = 0.1, elbow-method K, PCA @ 95%).
  core::CndIdsConfig cfg;
  cfg.cfe.epochs = 8;
  cfg.seed = seed;
  core::CndIds detector(cfg);

  // 4. Drive the full protocol: train on each experience's unlabeled stream,
  //    evaluate on every experience's labeled test set (Best-F threshold).
  core::RunResult result =
      core::run_protocol(detector, es, {.seed = seed, .verbose = true});

  std::printf("\nSummary on %s:\n", result.dataset_name.c_str());
  std::printf("  AVG       (seen attacks)    = %.4f\n", result.avg());
  std::printf("  FwdTrans  (zero-day attacks)= %.4f\n", result.fwd());
  std::printf("  BwdTrans  (forgetting)      = %+.4f\n", result.bwd());
  std::printf("  training  %.1f ms total, inference %.4f ms/sample\n",
              result.fit_ms_total, result.infer_ms_per_sample);
  return 0;
}
