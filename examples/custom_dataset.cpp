// Running CND-IDS on your own data.
//
// The pipeline consumes any CSV in the library's dataset format:
//   f0,f1,...,fN,label,attack_class
// with label in {0,1} and attack_class = -1 for normal rows (family ids are
// only used for the experience split and reporting — training never sees
// them). This example writes a small demo CSV, loads it back, and runs the
// full protocol, which is exactly what you would do with exported NetFlow /
// Zeek features.
//
//   ./custom_dataset [path.csv]   (writes+uses a demo file by default)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/cnd_ids.hpp"
#include "core/experience_runner.hpp"
#include "data/csv.hpp"
#include "data/experiences.hpp"
#include "data/synth.hpp"

int main(int argc, char** argv) {
  using namespace cnd;
  const std::string path = argc > 1 ? argv[1] : "custom_dataset_demo.csv";

  if (argc <= 1) {
    // No file given: write a demo CSV in the expected format first.
    data::Dataset demo = data::make_cicids2017(3, /*size_scale=*/0.1);
    data::save_csv(demo, path);
    std::printf("wrote demo dataset to %s (%zu rows, %zu features)\n",
                path.c_str(), demo.size(), demo.n_features());
  }

  data::Dataset ds = data::load_csv(path, "custom");
  std::printf("loaded %s: %zu rows, %zu features, %zu attack families, "
              "%.1f%% attacks\n",
              path.c_str(), ds.size(), ds.n_features(), ds.n_attack_classes(),
              100.0 * static_cast<double>(ds.n_attacks()) /
                  static_cast<double>(ds.size()));

  // Fewer experiences for small files; families must cover the split.
  const std::size_t m = std::min<std::size_t>(4, ds.n_attack_classes());
  data::ExperienceSet es =
      data::prepare_experiences(ds, {.n_experiences = m, .seed = 5});

  core::CndIdsConfig cfg;
  cfg.cfe.epochs = 6;
  core::CndIds det(cfg);
  core::RunResult res = core::run_protocol(det, es, {.seed = 5});

  std::printf("\n%s", res.f1.to_string("CND-IDS on " + ds.name).c_str());
  std::printf("\nTo use your own traffic: export one row per flow with "
              "numeric features,\na 0/1 label column and an attack-family "
              "column, then point this binary at it.\n");
  return 0;
}
