// Reproduces Table IV: average inference time (ms) per test sample for
// CND-IDS, ADCN, LwF, DIF, and PCA (google-benchmark timed).
//
// Paper shape to reproduce: PCA fastest; CND-IDS within a whisker of PCA
// and the fastest continual method; DIF slowest by orders of magnitude.
// Absolute numbers differ from the paper (RTX 3090 + batched PyTorch there,
// single CPU core here); the ordering is the claim under test.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.hpp"

namespace {

using namespace cnd;

/// Harness options, set by main() before any benchmark runs. The scale is
/// clamped to 0.25 (the fixture's historical size) so defaults reproduce
/// the committed numbers.
bench::BenchOptions g_opt;

/// Everything fit once, shared across timing runs. All five detectors come
/// from the core registry, so this bench times exactly what the factory
/// builds (DIF/PCA are the frozen wrappers, fit on N_c at setup()).
struct Fixture {
  data::ExperienceSet es;
  Matrix batch;                 // the timed scoring batch
  std::unique_ptr<core::ContinualDetector> cnd, adcn, lwf, dif, pca;

  Fixture() : es(make_es()) {
    batch = es.experiences.back().x_test;

    const core::DetectorConfig dc = bench::paper_detector_config(g_opt.seed);
    cnd = core::make_detector("CND-IDS", dc);
    adcn = core::make_detector("ADCN", dc);
    lwf = core::make_detector("LwF", dc);
    dif = core::make_detector("DIF", dc);
    pca = core::make_detector("PCA", dc);

    Matrix seed_x;
    std::vector<int> seed_y;
    // Build the baselines' labeled seed exactly as the runner does.
    const auto& e0 = es.experiences.front();
    std::vector<std::size_t> normals, attacks;
    for (std::size_t i = 0; i < e0.y_test.size(); ++i)
      (e0.y_test[i] == 0 ? normals : attacks).push_back(i);
    normals.resize(std::min<std::size_t>(32, normals.size()));
    attacks.resize(std::min<std::size_t>(32, attacks.size()));
    std::vector<std::size_t> rows = normals;
    rows.insert(rows.end(), attacks.begin(), attacks.end());
    seed_x = e0.x_test.take_rows(rows);
    for (std::size_t i = 0; i < normals.size(); ++i) seed_y.push_back(0);
    for (std::size_t i = 0; i < attacks.size(); ++i) seed_y.push_back(1);

    const core::SetupContext ctx{es.n_clean, seed_x, seed_y};
    for (auto* d : {&cnd, &adcn, &lwf, &dif, &pca}) (*d)->setup(ctx);
    cnd->observe_experience(e0.x_train);
    adcn->observe_experience(e0.x_train);
    lwf->observe_experience(e0.x_train);
  }

  static data::ExperienceSet make_es() {
    const double scale = std::min(g_opt.size_scale, 0.25);
    data::Dataset ds = data::make_unsw_nb15(g_opt.seed, scale);
    return bench::make_experience_set(ds, g_opt.seed);
  }

  static Fixture& instance() {
    static Fixture f;
    return f;
  }
};

void report_per_sample(benchmark::State& state, std::size_t batch_rows) {
  state.counters["ms_per_sample"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(batch_rows),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert,
      benchmark::Counter::kIs1000);
}

void BM_CndIds(benchmark::State& state) {
  auto& f = Fixture::instance();
  for (auto _ : state) benchmark::DoNotOptimize(f.cnd->score(f.batch));
  report_per_sample(state, f.batch.rows());
}
BENCHMARK(BM_CndIds)->Unit(benchmark::kMillisecond);

void BM_Adcn(benchmark::State& state) {
  auto& f = Fixture::instance();
  for (auto _ : state) benchmark::DoNotOptimize(f.adcn->predict(f.batch));
  report_per_sample(state, f.batch.rows());
}
BENCHMARK(BM_Adcn)->Unit(benchmark::kMillisecond);

void BM_Lwf(benchmark::State& state) {
  auto& f = Fixture::instance();
  for (auto _ : state) benchmark::DoNotOptimize(f.lwf->predict(f.batch));
  report_per_sample(state, f.batch.rows());
}
BENCHMARK(BM_Lwf)->Unit(benchmark::kMillisecond);

void BM_Dif(benchmark::State& state) {
  auto& f = Fixture::instance();
  for (auto _ : state) benchmark::DoNotOptimize(f.dif->score(f.batch));
  report_per_sample(state, f.batch.rows());
}
BENCHMARK(BM_Dif)->Unit(benchmark::kMillisecond);

void BM_Pca(benchmark::State& state) {
  auto& f = Fixture::instance();
  for (auto _ : state) benchmark::DoNotOptimize(f.pca->score(f.batch));
  report_per_sample(state, f.batch.rows());
}
BENCHMARK(BM_Pca)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: accept the shared harness flags (--scale/--seed/--threads),
// then strip them — google-benchmark aborts on flags it does not know.
int main(int argc, char** argv) {
  g_opt = cnd::bench::parse_options(argc, argv);
  cnd::bench::strip_harness_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
