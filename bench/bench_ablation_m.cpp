// Design-choice ablation (beyond the paper): number of experiences m.
//
// The paper fixes m per dataset (5, or 4 for WUSTL-IIoT). This bench sweeps
// m on UNSW-NB15 to show how the protocol's granularity affects the CL
// metrics: more experiences = fewer attack families (and less data) per
// experience, harder forward transfer, more chances to forget.
#include <cstdio>

#include "bench_common.hpp"
#include "data/csv.hpp"

int main(int argc, char** argv) {
  using namespace cnd;
  bench::BenchOptions opt = bench::parse_options(argc, argv);
  if (opt.size_scale > 0.3) opt.size_scale = 0.3;  // CND runs m times per m

  std::printf("=== Ablation: number of experiences m (UNSW-NB15) ===\n\n");
  std::printf("  %-4s %8s %10s %10s\n", "m", "AVG", "FwdTrans", "BwdTrans");

  std::vector<std::vector<double>> csv;
  std::vector<std::string> labels;
  for (std::size_t m : {2, 3, 5, 8}) {
    data::Dataset ds = data::make_unsw_nb15(opt.seed, opt.size_scale);
    const data::ExperienceSet es = data::prepare_experiences(
        ds, {.n_experiences = m, .seed = opt.seed});
    const core::RunResult r =
        bench::run_detector("CND-IDS", es, opt.seed, {.seed = opt.seed});
    std::printf("  %-4zu %8.4f %10.4f %+10.4f\n", m, r.avg(), r.fwd(), r.bwd());
    std::fflush(stdout);
    csv.push_back({static_cast<double>(m), r.avg(), r.fwd(), r.bwd()});
    labels.push_back("m=" + std::to_string(m));
  }
  data::save_table_csv("ablation_m.csv", {"label", "m", "avg", "fwd", "bwd"},
                       csv, labels);
  std::printf("Wrote ablation_m.csv\n");
  return 0;
}
