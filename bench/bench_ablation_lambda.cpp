// Design-choice ablation (beyond the paper): the lambda_R / lambda_CL grid.
//
// The paper sets both to 0.1 "after careful experimentation"; this bench
// regenerates that experimentation on X-IIoTID: lambda_R trades current-task
// fit against feature generality, lambda_CL trades plasticity against
// forgetting (watch BwdTrans drop as lambda_CL -> 0).
#include <cstdio>

#include "bench_common.hpp"
#include "data/csv.hpp"

int main(int argc, char** argv) {
  using namespace cnd;
  bench::BenchOptions opt = bench::parse_options(argc, argv);
  if (opt.size_scale > 0.25) opt.size_scale = 0.25;

  std::printf("=== Ablation: lambda_R x lambda_CL grid (X-IIoTID) ===\n\n");
  std::printf("  %-8s %-8s %8s %10s %10s\n", "l_R", "l_CL", "AVG", "FwdTrans",
              "BwdTrans");

  data::Dataset ds = data::make_x_iiotid(opt.seed, opt.size_scale);
  const data::ExperienceSet es = bench::make_experience_set(ds, opt.seed);

  std::vector<std::vector<double>> csv;
  for (double lr : {0.0, 0.1, 0.5}) {
    for (double lcl : {0.0, 0.1, 0.5}) {
      core::DetectorConfig cfg = bench::paper_detector_config(opt.seed);
      cfg.cnd.cfe.lambda_r = lr;
      cfg.cnd.cfe.lambda_cl = lcl;
      cfg.cnd.cfe.use_r = lr > 0.0;
      cfg.cnd.cfe.use_cl = lcl > 0.0;
      const core::RunResult r =
          core::run_detector("CND-IDS", cfg, es, {.seed = opt.seed});
      std::printf("  %-8.2f %-8.2f %8.4f %10.4f %+10.4f%s\n", lr, lcl, r.avg(),
                  r.fwd(), r.bwd(),
                  (lr == 0.1 && lcl == 0.1) ? "   <- paper setting" : "");
      std::fflush(stdout);
      csv.push_back({lr, lcl, r.avg(), r.fwd(), r.bwd()});
    }
  }
  data::save_table_csv("ablation_lambda.csv",
                       {"lambda_r", "lambda_cl", "avg", "fwd", "bwd"}, csv);
  std::printf("Wrote ablation_lambda.csv\n");
  return 0;
}
