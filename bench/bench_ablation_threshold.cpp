// Design-choice ablation (beyond the paper): thresholding method.
//
// The paper uses Best-F [24], which needs test labels to pick the
// F1-maximizing threshold. A deployed IDS cannot do that; this bench
// compares Best-F against label-free quantile thresholds calibrated on the
// encoded N_c scores, quantifying how much of the reported F1 is threshold
// oracle knowledge.
#include <cstdio>

#include "bench_common.hpp"
#include "data/csv.hpp"
#include "eval/metrics.hpp"
#include "eval/threshold.hpp"

int main(int argc, char** argv) {
  using namespace cnd;
  bench::BenchOptions opt = bench::parse_options(argc, argv);
  if (opt.size_scale > 0.25) opt.size_scale = 0.25;

  std::printf("=== Ablation: Best-F vs label-free quantile thresholding ===\n");
  std::printf("(UNSW-NB15; diagonal AVG of the CL protocol)\n\n");

  data::Dataset ds = data::make_unsw_nb15(opt.seed, opt.size_scale);
  const data::ExperienceSet es = bench::make_experience_set(ds, opt.seed);

  // One CND-IDS pass collecting raw scores per (train, test) pair on the
  // diagonal, then apply each thresholding rule offline.
  const auto detp = core::make_detector("CND-IDS",
                                        bench::paper_detector_config(opt.seed));
  core::ContinualDetector& det = *detp;
  Matrix seed_x;
  std::vector<int> seed_y;
  det.setup(core::SetupContext{es.n_clean, seed_x, seed_y});

  struct Diag {
    std::vector<double> test_scores;
    std::vector<double> calib_scores;  // encoded-N_c scores for quantiles
    std::vector<int> y;
  };
  std::vector<Diag> diags;
  for (std::size_t i = 0; i < es.size(); ++i) {
    det.observe_experience(es.experiences[i].x_train);
    Diag d;
    d.test_scores = det.score(es.experiences[i].x_test);
    d.calib_scores = det.score(es.n_clean);
    d.y = es.experiences[i].y_test;
    diags.push_back(std::move(d));
  }

  std::printf("  %-22s %8s\n", "thresholding", "AVG F1");
  std::vector<std::vector<double>> csv;
  std::vector<std::string> labels;

  // Best-F (the paper's method).
  double bestf = 0.0;
  for (const auto& d : diags)
    bestf += eval::best_f_threshold(d.test_scores, d.y).f1;
  bestf /= static_cast<double>(diags.size());
  std::printf("  %-22s %8.4f   <- paper setting\n", "Best-F (oracle)", bestf);
  csv.push_back({0.0, bestf});
  labels.push_back("best_f");

  // Label-free quantiles of the clean-normal calibration scores.
  for (double q : {0.90, 0.95, 0.99}) {
    double f1 = 0.0;
    for (const auto& d : diags) {
      const double tau = eval::quantile_threshold(d.calib_scores, q);
      f1 += eval::f1_score(eval::apply_threshold(d.test_scores, tau), d.y);
    }
    f1 /= static_cast<double>(diags.size());
    std::printf("  quantile q=%.2f        %8.4f\n", q, f1);
    csv.push_back({q, f1});
    labels.push_back("quantile");
  }

  data::save_table_csv("ablation_threshold.csv", {"method", "q", "avg_f1"}, csv,
                       labels);
  std::printf("Wrote ablation_threshold.csv\n");
  return 0;
}
